package repro

// The benchmark harness: one benchmark per experiment of the paper
// reproduction (the tables of EXPERIMENTS.md), plus micro-benchmarks of
// the simulator and protocol kernels. Experiment benchmarks run the
// reduced (Quick) ladders so `go test -bench=.` completes in seconds; the
// full tables are produced by `go run ./cmd/experiments -all`.

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/graph"
	"repro/internal/optical"
	"repro/internal/paths"
	"repro/internal/rng"
	"repro/internal/shardsim"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/optnet"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.Run(id, experiments.Options{Seed: 1, Quick: true, Trials: 2})
		if err != nil {
			b.Fatal(err)
		}
		tbl.Fprint(io.Discard)
	}
}

// One benchmark per experiment table (see DESIGN.md section 4).

func BenchmarkE1_LeveledUpperBound(b *testing.B)    { benchExperiment(b, "E1") }
func BenchmarkE2_StaggeredLowerBound(b *testing.B)  { benchExperiment(b, "E2") }
func BenchmarkE3_ShortcutFreeUpper(b *testing.B)    { benchExperiment(b, "E3") }
func BenchmarkE4_CyclicLowerBound(b *testing.B)     { benchExperiment(b, "E4") }
func BenchmarkE5_PriorityVsServeFirst(b *testing.B) { benchExperiment(b, "E5") }
func BenchmarkE6_CongestionDecay(b *testing.B)      { benchExperiment(b, "E6") }
func BenchmarkE7_NodeSymmetric(b *testing.B)        { benchExperiment(b, "E7") }
func BenchmarkE8_Meshes(b *testing.B)               { benchExperiment(b, "E8") }
func BenchmarkE9_ButterflyQ(b *testing.B)           { benchExperiment(b, "E9") }
func BenchmarkE10_Conversion(b *testing.B)          { benchExperiment(b, "E10") }
func BenchmarkE11_SparseConversion(b *testing.B)    { benchExperiment(b, "E11") }
func BenchmarkE12_MultiHop(b *testing.B)            { benchExperiment(b, "E12") }
func BenchmarkE13_RWAContrast(b *testing.B)         { benchExperiment(b, "E13") }
func BenchmarkE14_Lemma210(b *testing.B)            { benchExperiment(b, "E14") }
func BenchmarkE15_DynamicLoad(b *testing.B)         { benchExperiment(b, "E15") }
func BenchmarkE16_ElectronicBaseline(b *testing.B)  { benchExperiment(b, "E16") }
func BenchmarkE17_Adversarial(b *testing.B)         { benchExperiment(b, "E17") }
func BenchmarkA1_Schedules(b *testing.B)            { benchExperiment(b, "A1") }
func BenchmarkA2_Wreckage(b *testing.B)             { benchExperiment(b, "A2") }
func BenchmarkA3_Acks(b *testing.B)                 { benchExperiment(b, "A3") }
func BenchmarkA4_TiePolicy(b *testing.B)            { benchExperiment(b, "A4") }
func BenchmarkA5_Constants(b *testing.B)            { benchExperiment(b, "A5") }
func BenchmarkA6_WavelengthChoice(b *testing.B)     { benchExperiment(b, "A6") }
func BenchmarkA7_Synchronization(b *testing.B)      { benchExperiment(b, "A7") }
func BenchmarkF4_WitnessTrees(b *testing.B)         { benchExperiment(b, "F4") }
func BenchmarkF5_WitnessDepths(b *testing.B)        { benchExperiment(b, "F5") }
func BenchmarkS1_Scorecard(b *testing.B)            { benchExperiment(b, "S1") }

// Micro-benchmarks of the kernels.

// simRoundWorkload builds the standard kernel workload: 256 worms of a
// random permutation on a 16x16 torus, bandwidth 4 (the protocol's inner
// loop at its usual operating point).
func simRoundWorkload(tb testing.TB, side int) (*graph.Graph, []sim.Worm, sim.Config) {
	tor := topology.NewTorus(2, side)
	g := tor.Graph()
	src := rng.New(7)
	prs := paths.RandomPermutation(g.NumNodes(), src)
	col, err := paths.Build(g, prs, paths.DimOrderTorus(tor))
	if err != nil {
		tb.Fatal(err)
	}
	worms := make([]sim.Worm, col.Size())
	for i := range worms {
		worms[i] = sim.Worm{
			ID: i, Path: col.Path(i), Length: 8,
			Delay: src.Intn(64), Wavelength: src.Intn(4),
		}
	}
	return g, worms, sim.Config{Bandwidth: 4, Rule: optical.ServeFirst, AckLength: 1}
}

// BenchmarkSimRound measures one simulated round of 256 worms on a
// 16x16 torus through the package-level entry point (a fresh engine per
// call, as one-shot callers see it).
func BenchmarkSimRound(b *testing.B) {
	g, worms, cfg := simRoundWorkload(b, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(g, worms, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineSteadyState measures the same round on a reused Engine —
// the protocol's steady state, where buffers are warm and the hot path
// should allocate nothing. The probe=off variant is the baseline (and must
// stay at 0 allocs/op, see TestSteadyStateAllocFree); probe=on runs the
// same workload with a warmed telemetry Collector attached, bounding the
// full observability overhead. Compare against BenchmarkEngineFresh with
//
//	go test -bench BenchmarkEngine -benchmem .
func BenchmarkEngineSteadyState(b *testing.B) {
	for _, side := range []int{16, 24} {
		for _, probe := range []string{"off", "on"} {
			name := fmt.Sprintf("torus_side=%d/worms=%d/probe=%s", side, side*side, probe)
			b.Run(name, func(b *testing.B) {
				g, worms, cfg := simRoundWorkload(b, side)
				if probe == "on" {
					cfg.Probe = optnet.NewCollector()
				}
				eng := sim.NewEngine()
				if _, err := eng.Run(g, worms, cfg); err != nil { // warm the pools
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := eng.Run(g, worms, cfg); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// TestSteadyStateAllocFree pins the zero-overhead contract of the probe
// and fault seams: a warm engine with no probe attached performs zero
// allocations per round, attaching a warmed Collector keeps it that way
// (the enabled path only adds counter arithmetic), and so does attaching
// a compiled empty fault plan (the fault path is one nil branch).
func TestSteadyStateAllocFree(t *testing.T) {
	for _, tc := range []struct {
		name   string
		probe  *optnet.Collector
		faults bool
	}{
		{"probe=off", nil, false},
		{"probe=on", optnet.NewCollector(), false},
		{"faults=empty", nil, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g, worms, cfg := simRoundWorkload(t, 8)
			if tc.probe != nil {
				cfg.Probe = tc.probe
			}
			if tc.faults {
				cfg.Faults = (&optnet.FaultPlan{}).MustCompile(g, cfg.Bandwidth)
			}
			eng := sim.NewEngine()
			if _, err := eng.Run(g, worms, cfg); err != nil {
				t.Fatal(err)
			}
			avg := testing.AllocsPerRun(10, func() {
				if _, err := eng.Run(g, worms, cfg); err != nil {
					t.Fatal(err)
				}
			})
			if avg != 0 {
				t.Errorf("steady-state round allocates %v allocs/op, want 0", avg)
			}
		})
	}
}

// shardedWorkload builds the sharded-simulation benchmark workload:
// `worms` random dimension-order routes on a side x side torus — a large
// sparse network where per-shard step work dominates the lockstep
// barriers. Worm count is deliberately far below the node count so the
// active set, not the occupancy tables, is the hot state.
func shardedWorkload(tb testing.TB, side, worms int) (*graph.Graph, []sim.Worm, sim.Config) {
	tb.Helper()
	tor := topology.NewTorus(2, side)
	g := tor.Graph()
	sel := paths.DimOrderTorus(tor)
	src := rng.New(29)
	n := g.NumNodes()
	ws := make([]sim.Worm, 0, worms)
	for id := 0; len(ws) < worms; id++ {
		s, d := src.Intn(n), src.Intn(n)
		if s == d {
			continue
		}
		ws = append(ws, sim.Worm{
			ID: len(ws), Path: sel(s, d), Length: 8,
			Delay: src.Intn(256), Wavelength: src.Intn(4),
		})
	}
	return g, ws, sim.Config{Bandwidth: 4, Rule: optical.ServeFirst, AckLength: 1}
}

// BenchmarkShardedSteadyState measures one round of 2048 worms on a
// 512x512 torus through the cluster simulator at 1, 2, 4, and 8 shards
// (shards=1 is the plain single-engine path, the scaling baseline).
// Throughput scales with physical cores: on a multi-core host the
// sharded runs overlap release/collect/resolve work across shards, on a
// single-core host they serialize and only pay the barrier overhead.
func BenchmarkShardedSteadyState(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		name := fmt.Sprintf("torus_side=512/worms=2048/shards=%d", shards)
		b.Run(name, func(b *testing.B) {
			g, worms, cfg := shardedWorkload(b, 512, 2048)
			cs := shardsim.New(shards)
			if _, err := cs.Run(g, worms, cfg); err != nil { // warm pools + partition cache
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cs.Run(g, worms, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngineFresh measures the same round with a cold Engine per
// iteration, isolating the cost of first-run buffer growth.
func BenchmarkEngineFresh(b *testing.B) {
	g, worms, cfg := simRoundWorkload(b, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.NewEngine().Run(g, worms, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// TestEmitBenchTrajectory writes BENCH_sim.json with the simulator kernel
// numbers across a ladder of torus sizes. Gated on an env var so plain
// `go test` stays fast; emit with
//
//	BENCH_SIM_JSON=BENCH_sim.json go test -run TestEmitBenchTrajectory .
func TestEmitBenchTrajectory(t *testing.T) {
	path := os.Getenv("BENCH_SIM_JSON")
	if path == "" {
		t.Skip("set BENCH_SIM_JSON=<file> to emit the benchmark trajectory")
	}
	type point struct {
		Bench     string `json:"bench"`
		TorusSide int    `json:"torus_side"`
		Worms     int    `json:"worms"`
		Shards    int    `json:"shards,omitempty"`
		NsPerOp   int64  `json:"ns_per_op"`
		AllocsOp  int64  `json:"allocs_per_op"`
		BytesOp   int64  `json:"bytes_per_op"`
	}
	var points []point
	for _, side := range []int{8, 16, 24} {
		for _, mode := range []string{"steady", "fresh", "steady-probe"} {
			side, mode := side, mode
			r := testing.Benchmark(func(b *testing.B) {
				g, worms, cfg := simRoundWorkload(b, side)
				if mode == "steady-probe" {
					cfg.Probe = optnet.NewCollector()
				}
				eng := sim.NewEngine()
				if mode != "fresh" {
					if _, err := eng.Run(g, worms, cfg); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if mode == "fresh" {
						eng = sim.NewEngine()
					}
					if _, err := eng.Run(g, worms, cfg); err != nil {
						b.Fatal(err)
					}
				}
			})
			points = append(points, point{
				Bench:     "BenchmarkEngine/" + mode,
				TorusSide: side,
				Worms:     side * side,
				NsPerOp:   r.NsPerOp(),
				AllocsOp:  r.AllocsPerOp(),
				BytesOp:   r.AllocedBytesPerOp(),
			})
		}
	}
	for _, shards := range []int{1, 2, 4, 8} {
		shards := shards
		r := testing.Benchmark(func(b *testing.B) {
			g, worms, cfg := shardedWorkload(b, 512, 2048)
			cs := shardsim.New(shards)
			if _, err := cs.Run(g, worms, cfg); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cs.Run(g, worms, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
		points = append(points, point{
			Bench:     "BenchmarkShardedSteadyState",
			TorusSide: 512,
			Worms:     2048,
			Shards:    shards,
			NsPerOp:   r.NsPerOp(),
			AllocsOp:  r.AllocsPerOp(),
			BytesOp:   r.AllocedBytesPerOp(),
		})
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(points); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %d points to %s", len(points), path)
}

// TestBenchRegressionGuard re-measures the steady-state kernel points of
// the checked-in BENCH_sim.json baseline and fails if any regresses more
// than 15% in ns/op, or allocates when the baseline did not. It then
// re-measures the serving hot paths against BENCH_serve.json with a
// looser 50% slack (they are store-I/O and JSON bound, so they wobble
// more than the pure kernel), and the distributed hot paths against
// BENCH_cluster.json with the loosest slack of all (real HTTP, thief
// timing). Each point takes the best of three runs to damp scheduler
// noise. Gated on an env var so plain `go test` stays
// fast; run with
//
//	BENCH_GUARD=1 go test -run TestBenchRegressionGuard .
func TestBenchRegressionGuard(t *testing.T) {
	if os.Getenv("BENCH_GUARD") == "" {
		t.Skip("set BENCH_GUARD=1 to run the benchmark regression guard")
	}
	data, err := os.ReadFile("BENCH_sim.json")
	if err != nil {
		t.Fatalf("reading baseline: %v", err)
	}
	var points []struct {
		Bench     string `json:"bench"`
		TorusSide int    `json:"torus_side"`
		Worms     int    `json:"worms"`
		NsPerOp   int64  `json:"ns_per_op"`
		AllocsOp  int64  `json:"allocs_per_op"`
	}
	if err := json.Unmarshal(data, &points); err != nil {
		t.Fatalf("parsing baseline: %v", err)
	}
	const slackPct = 15
	for _, p := range points {
		if p.Bench != "BenchmarkEngine/steady" {
			continue // fresh and probe modes are informational, not contracts
		}
		side := p.TorusSide
		bestNs, bestAllocs := int64(math.MaxInt64), int64(math.MaxInt64)
		for run := 0; run < 3; run++ {
			r := testing.Benchmark(func(b *testing.B) {
				g, worms, cfg := simRoundWorkload(b, side)
				eng := sim.NewEngine()
				if _, err := eng.Run(g, worms, cfg); err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := eng.Run(g, worms, cfg); err != nil {
						b.Fatal(err)
					}
				}
			})
			if ns := r.NsPerOp(); ns < bestNs {
				bestNs = ns
			}
			if a := r.AllocsPerOp(); a < bestAllocs {
				bestAllocs = a
			}
		}
		limit := p.NsPerOp * (100 + slackPct) / 100
		t.Logf("torus_side=%d: %d ns/op (baseline %d, limit %d)", side, bestNs, p.NsPerOp, limit)
		if bestNs > limit {
			t.Errorf("torus_side=%d regressed: %d ns/op exceeds baseline %d by more than %d%%",
				side, bestNs, p.NsPerOp, slackPct)
		}
		if bestAllocs > p.AllocsOp {
			t.Errorf("torus_side=%d allocates %d allocs/op, baseline %d", side, bestAllocs, p.AllocsOp)
		}
	}

	// Sharded lockstep kernel: +25% ns slack (goroutine scheduling and
	// barrier timing wobble more than the single-threaded kernel) and +25%
	// allocs slack (per-run worker spin-up is real allocation, but bounded).
	var shardedPoints []struct {
		Bench    string `json:"bench"`
		Shards   int    `json:"shards"`
		NsPerOp  int64  `json:"ns_per_op"`
		AllocsOp int64  `json:"allocs_per_op"`
	}
	if err := json.Unmarshal(data, &shardedPoints); err != nil {
		t.Fatalf("parsing baseline: %v", err)
	}
	const shardSlackPct, shardAllocSlackPct = 25, 25
	for _, p := range shardedPoints {
		if p.Bench != "BenchmarkShardedSteadyState" {
			continue
		}
		shards := p.Shards
		bestNs, bestAllocs := int64(math.MaxInt64), int64(math.MaxInt64)
		for run := 0; run < 3; run++ {
			r := testing.Benchmark(func(b *testing.B) {
				g, worms, cfg := shardedWorkload(b, 512, 2048)
				cs := shardsim.New(shards)
				if _, err := cs.Run(g, worms, cfg); err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := cs.Run(g, worms, cfg); err != nil {
						b.Fatal(err)
					}
				}
			})
			if ns := r.NsPerOp(); ns < bestNs {
				bestNs = ns
			}
			if a := r.AllocsPerOp(); a < bestAllocs {
				bestAllocs = a
			}
		}
		limit := p.NsPerOp * (100 + shardSlackPct) / 100
		t.Logf("sharded shards=%d: %d ns/op (baseline %d, limit %d), %d allocs/op (baseline %d)",
			shards, bestNs, p.NsPerOp, limit, bestAllocs, p.AllocsOp)
		if bestNs > limit {
			t.Errorf("sharded shards=%d regressed: %d ns/op exceeds baseline %d by more than %d%%",
				shards, bestNs, p.NsPerOp, shardSlackPct)
		}
		if allocLimit := p.AllocsOp * (100 + shardAllocSlackPct) / 100; bestAllocs > allocLimit {
			t.Errorf("sharded shards=%d allocates %d allocs/op, baseline %d (+%d%% limit %d)",
				shards, bestAllocs, p.AllocsOp, shardAllocSlackPct, allocLimit)
		}
	}

	// Serving hot paths: wider ns slack (store I/O, JSON), and allocs may
	// drift a little with encoding details — guard at +10%.
	serveData, err := os.ReadFile("BENCH_serve.json")
	if err != nil {
		t.Fatalf("reading serving baseline: %v", err)
	}
	var servePoints []struct {
		Bench    string `json:"bench"`
		NsPerOp  int64  `json:"ns_per_op"`
		AllocsOp int64  `json:"allocs_per_op"`
	}
	if err := json.Unmarshal(serveData, &servePoints); err != nil {
		t.Fatalf("parsing serving baseline: %v", err)
	}
	serveBenches := map[string]func(*testing.B){
		"BenchmarkServeCacheHit":      BenchmarkServeCacheHit,
		"BenchmarkServeSubmit":        BenchmarkServeSubmit,
		"BenchmarkServeDynamicSubmit": BenchmarkServeDynamicSubmit,
	}
	const serveSlackPct, serveAllocSlackPct = 50, 10
	for _, p := range servePoints {
		fn, ok := serveBenches[p.Bench]
		if !ok {
			t.Errorf("serving baseline names unknown benchmark %q", p.Bench)
			continue
		}
		bestNs, bestAllocs := int64(math.MaxInt64), int64(math.MaxInt64)
		for run := 0; run < 3; run++ {
			r := testing.Benchmark(fn)
			if ns := r.NsPerOp(); ns < bestNs {
				bestNs = ns
			}
			if a := r.AllocsPerOp(); a < bestAllocs {
				bestAllocs = a
			}
		}
		limit := p.NsPerOp * (100 + serveSlackPct) / 100
		t.Logf("%s: %d ns/op (baseline %d, limit %d), %d allocs/op (baseline %d)",
			p.Bench, bestNs, p.NsPerOp, limit, bestAllocs, p.AllocsOp)
		if bestNs > limit {
			t.Errorf("%s regressed: %d ns/op exceeds baseline %d by more than %d%%",
				p.Bench, bestNs, p.NsPerOp, serveSlackPct)
		}
		if allocLimit := p.AllocsOp * (100 + serveAllocSlackPct) / 100; bestAllocs > allocLimit {
			t.Errorf("%s allocates %d allocs/op, baseline %d (+%d%% limit %d)",
				p.Bench, bestAllocs, p.AllocsOp, serveAllocSlackPct, allocLimit)
		}
	}

	// Distributed hot paths: the widest slack of all (+75% ns, +25%
	// allocs) — these cross real HTTP connections, thief poll timing, and
	// the replication queue, so they wobble far more than anything
	// in-process.
	clusterData, err := os.ReadFile("BENCH_cluster.json")
	if err != nil {
		t.Fatalf("reading cluster baseline: %v", err)
	}
	var clusterPoints []struct {
		Bench    string `json:"bench"`
		NsPerOp  int64  `json:"ns_per_op"`
		AllocsOp int64  `json:"allocs_per_op"`
	}
	if err := json.Unmarshal(clusterData, &clusterPoints); err != nil {
		t.Fatalf("parsing cluster baseline: %v", err)
	}
	clusterBenches := map[string]func(*testing.B){
		"BenchmarkForwardedSubmit":        BenchmarkForwardedSubmit,
		"BenchmarkClusterStealThroughput": BenchmarkClusterStealThroughput,
	}
	const clusterSlackPct, clusterAllocSlackPct = 75, 25
	for _, p := range clusterPoints {
		fn, ok := clusterBenches[p.Bench]
		if !ok {
			t.Errorf("cluster baseline names unknown benchmark %q", p.Bench)
			continue
		}
		bestNs, bestAllocs := int64(math.MaxInt64), int64(math.MaxInt64)
		for run := 0; run < 3; run++ {
			r := testing.Benchmark(fn)
			if ns := r.NsPerOp(); ns < bestNs {
				bestNs = ns
			}
			if a := r.AllocsPerOp(); a < bestAllocs {
				bestAllocs = a
			}
		}
		limit := p.NsPerOp * (100 + clusterSlackPct) / 100
		t.Logf("%s: %d ns/op (baseline %d, limit %d), %d allocs/op (baseline %d)",
			p.Bench, bestNs, p.NsPerOp, limit, bestAllocs, p.AllocsOp)
		if bestNs > limit {
			t.Errorf("%s regressed: %d ns/op exceeds baseline %d by more than %d%%",
				p.Bench, bestNs, p.NsPerOp, clusterSlackPct)
		}
		if allocLimit := p.AllocsOp * (100 + clusterAllocSlackPct) / 100; bestAllocs > allocLimit {
			t.Errorf("%s allocates %d allocs/op, baseline %d (+%d%% limit %d)",
				p.Bench, bestAllocs, p.AllocsOp, clusterAllocSlackPct, allocLimit)
		}
	}
}

// BenchmarkProtocolTorus measures a complete protocol run end to end.
func BenchmarkProtocolTorus(b *testing.B) {
	net := optnet.Torus(2, 16)
	wl := optnet.Permutation(net, 3)
	col, err := optnet.BuildCollection(net, wl)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := optnet.RouteCollection(col, optnet.Params{
			Bandwidth: 4, WormLength: 8, Seed: uint64(i), AckLength: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if !res.AllDelivered {
			b.Fatal("incomplete")
		}
	}
}

// BenchmarkPathSelection measures dimension-order selection throughput.
func BenchmarkPathSelection(b *testing.B) {
	tor := topology.NewTorus(2, 32)
	sel := paths.DimOrderTorus(tor)
	n := tor.Graph().NumNodes()
	src := rng.New(5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, d := src.Intn(n), src.Intn(n)
		if s != d {
			_ = sel(s, d)
		}
	}
}

// BenchmarkPathCongestion measures the C-tilde computation.
func BenchmarkPathCongestion(b *testing.B) {
	tor := topology.NewTorus(2, 16)
	src := rng.New(9)
	prs := paths.RandomFunction(tor.Graph().NumNodes(), src)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		col, err := paths.Build(tor.Graph(), prs, paths.DimOrderTorus(tor))
		if err != nil {
			b.Fatal(err)
		}
		_ = col.PathCongestion()
	}
}

// BenchmarkShortcutFreeCheck measures the exact classification predicate.
func BenchmarkShortcutFreeCheck(b *testing.B) {
	tor := topology.NewTorus(2, 8)
	src := rng.New(11)
	prs := paths.RandomPermutation(tor.Graph().NumNodes(), src)
	col, err := paths.Build(tor.Graph(), prs, paths.DimOrderTorus(tor))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !col.IsShortCutFree() {
			b.Fatal("unexpected shortcut")
		}
	}
}

// BenchmarkHalvingSchedule measures the delay-schedule computation.
func BenchmarkHalvingSchedule(b *testing.B) {
	p := core.Params{N: 4096, Dilation: 32, PathCongestion: 512, Length: 8, Bandwidth: 4}
	s := core.HalvingSchedule{}
	for i := 0; i < b.N; i++ {
		_ = s.Range(1+i%16, p)
	}
}
