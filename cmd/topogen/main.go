// Command topogen inspects topologies and path collections: node/link
// counts, diameter, degree, workload statistics (dilation, congestion,
// leveled / short-cut free classification), and optional DOT output.
//
// Usage:
//
//	topogen -topo butterfly -dim 4
//	topogen -topo torus -side 8 -workload perm -seed 3
//	topogen -topo hypercube -dim 3 -dot
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/optnet"
)

func main() {
	var (
		topo     = flag.String("topo", "torus", "topology: torus|mesh|hypercube|butterfly|ring|circulant")
		dims     = flag.Int("dims", 2, "dimensions (torus/mesh)")
		side     = flag.Int("side", 8, "side length (torus/mesh) or size (ring/circulant)")
		dim      = flag.Int("dim", 4, "dimension (hypercube/butterfly)")
		workload = flag.String("workload", "", "optional workload to analyze: perm|func|qfunc")
		q        = flag.Int("q", 2, "messages per node for qfunc")
		seed     = flag.Uint64("seed", 1, "workload seed")
		dot      = flag.Bool("dot", false, "emit the graph in DOT format")
	)
	flag.Parse()

	net, err := build(*topo, *dims, *side, *dim)
	if err != nil {
		fatal(err)
	}
	g := net.Graph()
	fmt.Printf("network:  %s\n", net.Name())
	fmt.Printf("routers:  %d\n", g.NumNodes())
	fmt.Printf("links:    %d directed (%d undirected edges)\n", g.NumLinks(), g.NumEdges())
	fmt.Printf("degree:   max %d\n", g.MaxDegree())
	if g.NumNodes() <= 4096 {
		fmt.Printf("diameter: %d\n", g.Diameter())
	}

	if *workload != "" {
		var wl optnet.Workload
		switch *workload {
		case "perm":
			wl = optnet.Permutation(net, *seed)
		case "func":
			wl = optnet.RandomFunction(net, *seed)
		case "qfunc":
			if *topo == "butterfly" {
				wl = optnet.ButterflyQFunction(net, *q, *seed)
			} else {
				wl = optnet.QFunction(net, *q, *seed)
			}
		default:
			fatal(fmt.Errorf("unknown workload %q", *workload))
		}
		stats, err := optnet.Analyze(net, wl)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("workload: %s\n", wl.Name)
		fmt.Printf("paths:    %s\n", stats)
	}

	if *dot {
		fmt.Println()
		g.WriteDot(os.Stdout, net.Name())
	}
}

func build(topo string, dims, side, dim int) (*optnet.Network, error) {
	switch topo {
	case "torus":
		return optnet.Torus(dims, side), nil
	case "mesh":
		return optnet.Mesh(dims, side), nil
	case "hypercube":
		return optnet.Hypercube(dim), nil
	case "butterfly":
		return optnet.Butterfly(dim), nil
	case "ring":
		return optnet.Ring(side), nil
	case "circulant":
		return optnet.Circulant(side, []int{1, 1 + side/4}), nil
	default:
		return nil, fmt.Errorf("unknown topology %q", topo)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "topogen:", err)
	os.Exit(1)
}
