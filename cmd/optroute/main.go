// Command optroute runs the Trial-and-Failure protocol on a chosen
// topology and workload and prints a per-round report.
//
// Usage:
//
//	optroute -topo torus -dims 2 -side 16 -workload perm -B 4 -L 8 -rule priority
//
// Topologies: torus, mesh, hypercube, butterfly, ring, circulant.
// Workloads: perm, func, qfunc (use -q).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/witness"
	"repro/optnet"
)

func main() {
	var (
		topo     = flag.String("topo", "torus", "topology: torus|mesh|hypercube|butterfly|ring|circulant")
		dims     = flag.Int("dims", 2, "dimensions (torus/mesh)")
		side     = flag.Int("side", 8, "side length (torus/mesh) or size (ring/circulant)")
		dim      = flag.Int("dim", 6, "dimension (hypercube/butterfly)")
		workload = flag.String("workload", "perm", "workload: perm|func|qfunc")
		q        = flag.Int("q", 2, "messages per node for qfunc")
		bandw    = flag.Int("B", 2, "bandwidth (wavelengths)")
		length   = flag.Int("L", 4, "worm length (flits)")
		rule     = flag.String("rule", "serve-first", "rule: serve-first|priority")
		seed     = flag.Uint64("seed", 1, "random seed")
		ackLen   = flag.Int("ack", 1, "ack length in flits (0 = oracle)")
		schedule = flag.String("schedule", "halving", "delay schedule: halving|paper|fixed|doubling")
		wreckage = flag.String("wreckage", "drain", "wreckage policy: drain|vanish")
		convert  = flag.Bool("convert", false, "enable wavelength conversion at every router")
		hops     = flag.Int("hops", 1, "optical hops per worm (electrical buffering between)")
		verbose  = flag.Bool("v", false, "print per-round details")
		witnessF = flag.Bool("witness", false, "analyze blocking graphs (Claim 2.6) from traces")
	)
	flag.Parse()

	net, err := buildNetwork(*topo, *dims, *side, *dim)
	if err != nil {
		fatal(err)
	}
	var wl optnet.Workload
	switch *workload {
	case "perm":
		wl = optnet.Permutation(net, *seed)
	case "func":
		wl = optnet.RandomFunction(net, *seed)
	case "qfunc":
		if *topo == "butterfly" {
			wl = optnet.ButterflyQFunction(net, *q, *seed)
		} else {
			wl = optnet.QFunction(net, *q, *seed)
		}
	default:
		fatal(fmt.Errorf("unknown workload %q", *workload))
	}
	if *topo == "butterfly" && *workload != "qfunc" {
		fatal(fmt.Errorf("the butterfly routes input-to-output workloads; use -workload qfunc"))
	}

	r := optnet.ServeFirst
	if *rule == "priority" {
		r = optnet.Priority
	}
	adv := &optnet.Advanced{TrackCongestion: *verbose, RecordCollisions: *witnessF}
	switch *schedule {
	case "halving":
	case "paper":
		adv.Schedule = core.PaperExact()
	case "fixed":
		adv.Schedule = core.FixedSchedule{}
	case "doubling":
		adv.Schedule = core.DoublingSchedule{}
	default:
		fatal(fmt.Errorf("unknown schedule %q", *schedule))
	}
	if *wreckage == "vanish" {
		adv.Wreckage = sim.Vanish
	}
	if *convert {
		adv.Conversion = sim.FullConversion
	}

	stats, err := optnet.Analyze(net, wl)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("network:   %s (%d routers, %d links)\n",
		net.Name(), net.Graph().NumNodes(), net.Graph().NumLinks())
	fmt.Printf("workload:  %s -> %s\n", wl.Name, stats)
	fmt.Printf("protocol:  B=%d L=%d rule=%s schedule=%s ack=%d wreckage=%s\n",
		*bandw, *length, r, *schedule, *ackLen, *wreckage)

	if *hops > 1 {
		runMultiHop(net, wl, *hops, *bandw, *length, r, *seed, *ackLen, adv)
		return
	}
	res, err := optnet.Route(net, wl, optnet.Params{
		Bandwidth:  *bandw,
		WormLength: *length,
		Rule:       r,
		Seed:       *seed,
		AckLength:  *ackLen,
		Advanced:   adv,
	})
	if err != nil {
		fatal(err)
	}

	fmt.Printf("\nrounds:    %d (all delivered: %t)\n", res.TotalRounds, res.AllDelivered)
	fmt.Printf("time:      %d steps accounted (paper), %d measured\n", res.TotalTime, res.MeasuredTime)
	if res.DuplicateAcks > 0 {
		fmt.Printf("dup acks:  %d deliveries retried because the ack was lost\n", res.DuplicateAcks)
	}
	if *witnessF {
		a := witness.Analyze(res.RoundTraces)
		tie := a.TotalCycles() - a.TotalProperCycles()
		fmt.Printf("witness:   %d tie cycles, %d proper blocking cycles, Claim 2.6 holds: %t\n",
			tie, a.TotalProperCycles(), a.SatisfiesClaim26())
	}
	if *verbose {
		fmt.Println("\nround  delta  active  delivered  acked  collisions  residualC  makespan")
		for _, rs := range res.Rounds {
			fmt.Printf("%5d  %5d  %6d  %9d  %5d  %10d  %9d  %8d\n",
				rs.Round, rs.DelayRange, rs.ActiveBefore, rs.Delivered, rs.Acked,
				rs.Collisions, rs.ResidualCongestion, rs.Makespan)
		}
	}
	if !res.AllDelivered {
		fmt.Printf("\nWARNING: %d worms still active after the round cap\n", len(res.StillActive))
		os.Exit(2)
	}
}

// runMultiHop routes the workload in several optical stages with
// electrical buffering between them (the Section 4 extension).
func runMultiHop(net *optnet.Network, wl optnet.Workload, hops, bandw, length int,
	r optnet.Rule, seed uint64, ackLen int, adv *optnet.Advanced) {
	col, err := optnet.BuildCollection(net, wl)
	if err != nil {
		fatal(err)
	}
	cfg := core.Config{
		Bandwidth:  bandw,
		Length:     length,
		Rule:       r,
		AckLength:  ackLen,
		Wreckage:   adv.Wreckage,
		Conversion: adv.Conversion,
	}
	mh, err := core.RunMultiHop(col, hops, cfg, rng.New(seed))
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\nhops:      %d stages (max segment dilation %d)\n", len(mh.Stages), mh.SegmentDilation)
	for i, st := range mh.Stages {
		fmt.Printf("  stage %d: %d rounds, %d steps, delivered=%t\n",
			i+1, st.TotalRounds, st.TotalTime, st.AllDelivered)
	}
	fmt.Printf("total:     %d rounds, %d steps, all delivered: %t\n",
		mh.TotalRounds, mh.TotalTime, mh.AllDelivered)
	if !mh.AllDelivered {
		os.Exit(2)
	}
}

func buildNetwork(topo string, dims, side, dim int) (*optnet.Network, error) {
	switch topo {
	case "torus":
		return optnet.Torus(dims, side), nil
	case "mesh":
		return optnet.Mesh(dims, side), nil
	case "hypercube":
		return optnet.Hypercube(dim), nil
	case "butterfly":
		return optnet.Butterfly(dim), nil
	case "ring":
		return optnet.Ring(side), nil
	case "circulant":
		return optnet.Circulant(side, []int{1, 1 + side/4}), nil
	default:
		return nil, fmt.Errorf("unknown topology %q", topo)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "optroute:", err)
	os.Exit(1)
}
