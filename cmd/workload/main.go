// Command workload generates, inspects, diffs and submits open-loop
// traffic traces (internal/workload). A trace is the replayable unit of
// the dynamic regime: its canonical encoding is its content address, so
// the same workload — regenerated or decoded from disk — dedupes to one
// optnetd job.
//
// Usage:
//
//	workload gen -nodes 64 -horizon 2000 -rate 2 -o trace.owtr
//	workload gen -spec spec.json -o trace.owtr
//	workload inspect trace.owtr
//	workload diff a.owtr b.owtr
//	workload job -trace trace.owtr -network torus:2:8 -B 2 -L 4
//	workload job -trace trace.owtr -network torus:2:8 -B 2 -L 4 -submit http://localhost:9090
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/canon"
	"repro/internal/jobs"
	"repro/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = cmdGen(os.Args[2:])
	case "inspect":
		err = cmdInspect(os.Args[2:])
	case "diff":
		err = cmdDiff(os.Args[2:])
	case "job":
		err = cmdJob(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "workload: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: workload gen|inspect|diff|job [flags]")
	os.Exit(2)
}

// cmdGen materializes a trace from a spec file or inline one-cohort
// flags and writes its versioned encoding.
func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	var (
		specFile = fs.String("spec", "", "workload spec JSON file (overrides the inline flags)")
		out      = fs.String("o", "trace.owtr", "output trace file (- for stdout)")
		nodes    = fs.Int("nodes", 64, "node count")
		horizon  = fs.Int("horizon", 1000, "generation horizon in steps")
		seed     = fs.Uint64("seed", 1, "generation seed")
		process  = fs.String("process", "poisson", "arrival process: poisson|onoff|diurnal|bursts")
		rate     = fs.Float64("rate", 1, "arrival rate in requests/step (see ArrivalSpec.Rate)")
		srcDist  = fs.String("src", "uniform", "source distribution: uniform|zipf")
		dstDist  = fs.String("dst", "uniform", "destination distribution: uniform|zipf|bitreverse|transpose")
		spots    = fs.Int("spots", 0, "zipf hotspot count (0 = default)")
		skew     = fs.Float64("skew", 0, "zipf skew exponent (0 = default)")
	)
	fs.Parse(args)
	var spec workload.Spec
	if *specFile != "" {
		data, err := os.ReadFile(*specFile)
		if err != nil {
			return err
		}
		if err := json.Unmarshal(data, &spec); err != nil {
			return fmt.Errorf("%s: %w", *specFile, err)
		}
	} else {
		spec = workload.Spec{
			Nodes:   *nodes,
			Horizon: *horizon,
			Seed:    *seed,
			Cohorts: []workload.Cohort{{
				Name:         "cli",
				Arrivals:     workload.ArrivalSpec{Kind: *process, Rate: *rate},
				Sources:      workload.Dist{Kind: *srcDist, Spots: *spots, Skew: *skew},
				Destinations: workload.Dist{Kind: *dstDist, Spots: *spots, Skew: *skew},
			}},
		}
	}
	tr, err := spec.Generate()
	if err != nil {
		return err
	}
	enc, err := tr.Encode()
	if err != nil {
		return err
	}
	if *out == "-" {
		if _, err := os.Stdout.Write(enc); err != nil {
			return err
		}
	} else if err := os.WriteFile(*out, enc, 0o644); err != nil {
		return err
	}
	key, err := tr.Key()
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "trace %s: %d arrivals over %d steps on %d nodes (%d bytes)\n",
		key[:12], len(tr.Arrivals), tr.Horizon, tr.Nodes, len(enc))
	return nil
}

// readTrace decodes one trace file.
func readTrace(path string) (*workload.Trace, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	tr, err := workload.Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return tr, nil
}

// cmdInspect prints a trace's content address, geometry and summary
// statistics (or, with -json, its canonical payload).
func cmdInspect(args []string) error {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	asJSON := fs.Bool("json", false, "print the canonical JSON payload instead of the summary")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("inspect needs exactly one trace file")
	}
	tr, err := readTrace(fs.Arg(0))
	if err != nil {
		return err
	}
	if *asJSON {
		b, err := canon.MarshalIndent(tr, "", "  ")
		if err != nil {
			return err
		}
		fmt.Printf("%s\n", b)
		return nil
	}
	key, err := tr.Key()
	if err != nil {
		return err
	}
	s := tr.Stats()
	fmt.Printf("key:          %s\n", key)
	fmt.Printf("version:      %d\n", tr.Version)
	fmt.Printf("nodes:        %d\n", tr.Nodes)
	fmt.Printf("horizon:      %d\n", tr.Horizon)
	fmt.Printf("arrivals:     %d (%.3f req/step)\n", s.Arrivals, s.OfferedLoad)
	fmt.Printf("peak:         %d arrivals at step %d\n", s.PeakCount, s.PeakStep)
	fmt.Printf("endpoints:    %d sources, %d destinations (top dest %.1f%%)\n",
		s.Sources, s.Destinations, 100*s.TopDestShare)
	if tr.Spec != nil {
		for i, c := range tr.Spec.Cohorts {
			n := 0
			if i < len(s.PerCohort) {
				n = s.PerCohort[i]
			}
			fmt.Printf("cohort %d:     %q %s rate=%g -> %d arrivals\n",
				i, c.Name, c.Arrivals.Kind, c.Arrivals.Rate, n)
		}
	}
	return nil
}

// cmdDiff compares two traces and exits nonzero when they differ.
func cmdDiff(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 2 {
		return fmt.Errorf("diff needs exactly two trace files")
	}
	a, err := readTrace(fs.Arg(0))
	if err != nil {
		return err
	}
	b, err := readTrace(fs.Arg(1))
	if err != nil {
		return err
	}
	ka, err := a.Key()
	if err != nil {
		return err
	}
	kb, err := b.Key()
	if err != nil {
		return err
	}
	if ka == kb {
		fmt.Printf("identical: %s\n", ka)
		return nil
	}
	fmt.Printf("keys differ: %s vs %s\n", ka[:12], kb[:12])
	if a.Nodes != b.Nodes || a.Horizon != b.Horizon {
		fmt.Printf("geometry: %d nodes/%d steps vs %d nodes/%d steps\n",
			a.Nodes, a.Horizon, b.Nodes, b.Horizon)
	}
	if len(a.Arrivals) != len(b.Arrivals) {
		fmt.Printf("arrivals: %d vs %d\n", len(a.Arrivals), len(b.Arrivals))
	}
	n := min(len(a.Arrivals), len(b.Arrivals))
	for i := 0; i < n; i++ {
		if a.Arrivals[i] != b.Arrivals[i] {
			fmt.Printf("first divergence at arrival %d: %+v vs %+v\n", i, a.Arrivals[i], b.Arrivals[i])
			break
		}
	}
	os.Exit(1)
	return nil
}

// parseNetwork parses the kind:params shorthand: torus:dims:side,
// mesh:dims:side, hypercube:dim, ccc:dim, star:dim, ring:size,
// circulant:size:o1,o2,...
func parseNetwork(s string) (jobs.NetworkSpec, error) {
	parts := strings.Split(s, ":")
	atoi := func(i int) (int, error) {
		if i >= len(parts) {
			return 0, fmt.Errorf("network %q: missing parameter %d", s, i)
		}
		return strconv.Atoi(parts[i])
	}
	var n jobs.NetworkSpec
	n.Kind = parts[0]
	var err error
	switch n.Kind {
	case "torus", "mesh":
		if n.Dims, err = atoi(1); err != nil {
			return n, err
		}
		if n.Side, err = atoi(2); err != nil {
			return n, err
		}
	case "hypercube", "ccc", "star":
		if n.Dim, err = atoi(1); err != nil {
			return n, err
		}
	case "ring":
		if n.Size, err = atoi(1); err != nil {
			return n, err
		}
	case "circulant":
		if n.Size, err = atoi(1); err != nil {
			return n, err
		}
		if len(parts) < 3 {
			return n, fmt.Errorf("network %q: circulant needs offsets", s)
		}
		for _, o := range strings.Split(parts[2], ",") {
			v, err := strconv.Atoi(o)
			if err != nil {
				return n, err
			}
			n.Offsets = append(n.Offsets, v)
		}
	default:
		return n, fmt.Errorf("unknown network kind %q", n.Kind)
	}
	return n, nil
}

// cmdJob wraps a trace into a dynamic job spec and prints the optnetd
// submission envelope — or submits it directly with -submit.
func cmdJob(args []string) error {
	fs := flag.NewFlagSet("job", flag.ExitOnError)
	var (
		traceFile = fs.String("trace", "", "trace file (required)")
		network   = fs.String("network", "torus:2:8", "network shorthand (torus:dims:side, hypercube:dim, ring:size, ...)")
		bandw     = fs.Int("B", 2, "bandwidth (wavelengths)")
		length    = fs.Int("L", 4, "worm length (flits)")
		rule      = fs.String("rule", "serve-first", "rule: serve-first|priority")
		acks      = fs.Int("ack", 1, "ack length (0 = oracle)")
		backoff   = fs.String("backoff", "exponential", "backoff policy: exponential|fixed")
		attempts  = fs.Int("attempts", 0, "attempt budget (0 = default)")
		seed      = fs.Uint64("seed", 1, "protocol seed")
		trials    = fs.Int("trials", 1, "replay count")
		priority  = fs.Int("priority", 0, "queue priority (higher first)")
		submit    = fs.String("submit", "", "optnetd base URL; submit instead of printing the envelope")
	)
	fs.Parse(args)
	if *traceFile == "" {
		return fmt.Errorf("job needs -trace")
	}
	tr, err := readTrace(*traceFile)
	if err != nil {
		return err
	}
	net, err := parseNetwork(*network)
	if err != nil {
		return err
	}
	spec := jobs.Spec{Dynamic: &jobs.DynamicSpec{
		Network: net,
		Trace:   tr,
		Protocol: jobs.DynamicProtocolSpec{
			Bandwidth:   *bandw,
			Length:      *length,
			Rule:        *rule,
			AckLength:   *acks,
			Backoff:     *backoff,
			MaxAttempts: *attempts,
		},
		Seed:   *seed,
		Trials: *trials,
	}}
	if _, err := spec.Key(); err != nil {
		return err
	}
	if *submit != "" {
		c := jobs.Client{BaseURL: *submit}
		st, err := c.Submit(spec, *priority)
		if err != nil {
			return err
		}
		b, err := json.MarshalIndent(st, "", "  ")
		if err != nil {
			return err
		}
		fmt.Printf("%s\n", b)
		return nil
	}
	env, err := canon.MarshalIndent(jobs.SubmitRequest{Spec: spec, Priority: *priority}, "", "  ")
	if err != nil {
		return err
	}
	fmt.Printf("%s\n", env)
	return nil
}
