// Command experiments regenerates the paper's result tables: one
// experiment per theorem, figure and ablation (see DESIGN.md and
// EXPERIMENTS.md for the index).
//
// Usage:
//
//	experiments -all                # run everything
//	experiments -run E5             # one experiment
//	experiments -run E5 -quick      # reduced ladder (seconds)
//	experiments -list               # show what exists
//	experiments -run E5 -store dir  # memoize via the job result store
//
// With -metrics-addr the process also serves live telemetry while the
// experiments run: Prometheus text format on /metrics and a JSON dump on
// /snapshot, aggregated across every simulated round so far.
//
// With -store the command routes each experiment through the optnetd
// result store: the table is keyed by its content address (experiment
// ID, seed, trials, quick), so rerunning the same invocation replays
// the stored output byte-for-byte instead of re-simulating. The same
// directory can be served by optnetd.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/experiments"
	"repro/internal/jobs"
	"repro/internal/telemetry"
)

func main() {
	var (
		run      = flag.String("run", "", "experiment ID (see -list)")
		all      = flag.Bool("all", false, "run every experiment")
		list     = flag.Bool("list", false, "list experiment IDs")
		quick    = flag.Bool("quick", false, "use reduced problem-size ladders")
		seed     = flag.Uint64("seed", 1, "master random seed")
		trials   = flag.Int("trials", 0, "Monte-Carlo trials per configuration (0 = default)")
		asJSON   = flag.Bool("json", false, "emit tables as JSON instead of text")
		maddr    = flag.String("metrics-addr", "", "serve live telemetry on this address (/metrics and /snapshot)")
		storeDir = flag.String("store", "", "memoize tables in this optnetd result-store directory")
		shards   = flag.Int("shards", 1, "lockstep engine shards per trial (1 = single engine; results are identical)")
	)
	flag.Parse()

	if *shards < 1 {
		fatal(fmt.Errorf("experiments: -shards %d < 1", *shards))
	}
	experiments.SetShards(*shards)

	if *maddr != "" {
		live := telemetry.NewLive()
		experiments.SetLive(live)
		exp := telemetry.NewExporter(live.Snapshot)
		go func() {
			if err := exp.ListenAndServe(*maddr); err != nil {
				log.Printf("experiments: metrics server: %v", err)
			}
		}()
	}

	// emit renders one experiment, optionally through the result store.
	var exec *jobs.Executor
	if *storeDir != "" {
		store, err := jobs.Open(*storeDir)
		if err != nil {
			fatal(err)
		}
		defer store.Close()
		exec = &jobs.Executor{Store: store, Experiments: experiments.JobRunner()}
	}
	opts := experiments.Options{Seed: *seed, Quick: *quick, Trials: *trials}
	emit := func(id string) error {
		if exec != nil {
			spec := jobs.Spec{Experiment: &jobs.ExperimentSpec{
				ID: id, Seed: *seed, Trials: *trials, Quick: *quick,
			}}
			res, fromCache, err := exec.Run(spec, nil, nil, nil)
			if err != nil {
				return err
			}
			if fromCache {
				log.Printf("experiments: %s replayed from store (key %s)", id, res.Key)
			}
			if *asJSON {
				_, err = os.Stdout.Write(append([]byte(nil), res.Table...))
				return err
			}
			_, err = os.Stdout.WriteString(res.Text)
			return err
		}
		tbl, err := experiments.Run(id, opts)
		if err != nil {
			return err
		}
		if *asJSON {
			return tbl.WriteJSON(os.Stdout)
		}
		tbl.Fprint(os.Stdout)
		return nil
	}

	switch {
	case *list:
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
	case *all:
		for _, id := range experiments.IDs() {
			if err := emit(id); err != nil {
				fatal(fmt.Errorf("%s: %w", id, err))
			}
		}
	case *run != "":
		if err := emit(*run); err != nil {
			fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
