// Command experiments regenerates the paper's result tables: one
// experiment per theorem, figure and ablation (see DESIGN.md and
// EXPERIMENTS.md for the index).
//
// Usage:
//
//	experiments -all                # run everything
//	experiments -run E5             # one experiment
//	experiments -run E5 -quick      # reduced ladder (seconds)
//	experiments -list               # show what exists
//
// With -metrics-addr the process also serves live telemetry while the
// experiments run: Prometheus text format on /metrics and a JSON dump on
// /snapshot, aggregated across every simulated round so far.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/experiments"
	"repro/internal/telemetry"
)

func main() {
	var (
		run    = flag.String("run", "", "experiment ID (see -list)")
		all    = flag.Bool("all", false, "run every experiment")
		list   = flag.Bool("list", false, "list experiment IDs")
		quick  = flag.Bool("quick", false, "use reduced problem-size ladders")
		seed   = flag.Uint64("seed", 1, "master random seed")
		trials = flag.Int("trials", 0, "Monte-Carlo trials per configuration (0 = default)")
		asJSON = flag.Bool("json", false, "emit tables as JSON instead of text")
		maddr  = flag.String("metrics-addr", "", "serve live telemetry on this address (/metrics and /snapshot)")
	)
	flag.Parse()

	if *maddr != "" {
		live := telemetry.NewLive()
		experiments.SetLive(live)
		exp := telemetry.NewExporter(live.Snapshot)
		go func() {
			if err := exp.ListenAndServe(*maddr); err != nil {
				log.Printf("experiments: metrics server: %v", err)
			}
		}()
	}

	opts := experiments.Options{Seed: *seed, Quick: *quick, Trials: *trials}
	switch {
	case *list:
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
	case *all:
		if *asJSON {
			for _, id := range experiments.IDs() {
				tbl, err := experiments.Run(id, opts)
				if err != nil {
					fatal(err)
				}
				if err := tbl.WriteJSON(os.Stdout); err != nil {
					fatal(err)
				}
			}
			return
		}
		if err := experiments.RunAll(opts, os.Stdout); err != nil {
			fatal(err)
		}
	case *run != "":
		tbl, err := experiments.Run(*run, opts)
		if err != nil {
			fatal(err)
		}
		if *asJSON {
			if err := tbl.WriteJSON(os.Stdout); err != nil {
				fatal(err)
			}
			return
		}
		tbl.Fprint(os.Stdout)
	default:
		flag.Usage()
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
