// Command lowerbound runs the paper's adversarial gadget collections
// (Figures 5 and 6, and the type-2 identical-path structures) directly,
// printing the per-round survivor counts that drive the lower-bound
// experiments E2/E4/E5/E6.
//
// Usage:
//
//	lowerbound -kind cyclic -structures 256 -L 4 -rule serve-first
//	lowerbound -kind staggered -structures 64 -per 5
//	lowerbound -kind identical -congestion 128
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/lowerbound"
	"repro/internal/optical"
	"repro/internal/rng"
)

func main() {
	var (
		kind       = flag.String("kind", "cyclic", "gadget: staggered|cyclic|identical")
		structures = flag.Int("structures", 64, "number of structures")
		per        = flag.Int("per", 4, "paths per staggered structure")
		congestion = flag.Int("congestion", 64, "paths per identical structure")
		dpth       = flag.Int("D", 0, "path length (0 = derive from L)")
		length     = flag.Int("L", 4, "worm length")
		bandw      = flag.Int("B", 1, "bandwidth")
		rule       = flag.String("rule", "serve-first", "rule: serve-first|priority")
		adversary  = flag.Bool("adversary", false, "use the adversarial rank assignment (staggered)")
		delta      = flag.Int("delta", 0, "fixed delay range (0 = paper halving schedule)")
		seed       = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	var b *lowerbound.Build
	switch *kind {
	case "staggered":
		d := (*length-1)/2 + 1
		D := *dpth
		if D == 0 {
			D = *per*d + 4
		}
		b = lowerbound.Staggered(*structures, *per, D, *length)
	case "cyclic":
		D := *dpth
		if D == 0 {
			D = *length/2 + 4
		}
		b = lowerbound.Cyclic(*structures, D, *length)
	case "identical":
		D := *dpth
		if D == 0 {
			D = 6
		}
		b = lowerbound.Identical(*structures, *congestion, D)
	default:
		fatal(fmt.Errorf("unknown gadget kind %q", *kind))
	}

	cfg := core.Config{
		Bandwidth:       *bandw,
		Length:          *length,
		Rule:            optical.ServeFirst,
		MaxRounds:       2000,
		TrackCongestion: *kind == "identical",
	}
	if *rule == "priority" {
		cfg.Rule = optical.Priority
		if *adversary {
			cfg.Priorities = core.ExplicitRanks{Ranks: b.Ranks}
		} else {
			cfg.Priorities = core.RandomRanks{}
		}
	}
	if *delta > 0 {
		cfg.Schedule = core.ConstantSchedule{Delta: *delta}
	}

	c := b.Collection
	fmt.Printf("gadget:   %s x%d (n=%d paths, D=%d, C~=%d)\n",
		*kind, *structures, c.Size(), c.Dilation(), c.PathCongestion())
	fmt.Printf("protocol: B=%d L=%d rule=%s delta=%s\n",
		*bandw, *length, cfg.Rule, deltaStr(*delta))

	res, err := core.Run(c, cfg, rng.New(*seed))
	if err != nil {
		fatal(err)
	}
	fmt.Println("\nround  delta  active  acked  residualC")
	for _, r := range res.Rounds {
		fmt.Printf("%5d  %5d  %6d  %5d  %9d\n",
			r.Round, r.DelayRange, r.ActiveBefore, r.Acked, r.ResidualCongestion)
	}
	fmt.Printf("\nrounds: %d, all delivered: %t, accounted time: %d\n",
		res.TotalRounds, res.AllDelivered, res.TotalTime)
	if !res.AllDelivered {
		os.Exit(2)
	}
}

func deltaStr(d int) string {
	if d == 0 {
		return "halving schedule"
	}
	return fmt.Sprintf("%d (fixed)", d)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lowerbound:", err)
	os.Exit(1)
}
