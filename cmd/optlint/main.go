// Command optlint runs the repo-specific static-analysis suite
// (internal/analysis) over the module and prints file:line:column
// diagnostics, exiting nonzero when there are findings.
//
// Usage, from the module root:
//
//	go run ./cmd/optlint ./...
//	go run ./cmd/optlint ./internal/sim ./internal/core
//
// A bare directory argument restricts the report to findings under that
// directory; ./... (the default) reports everything. Findings are
// suppressed at the source line with //optlint:allow <analyzer> and a
// justification; see the internal/analysis package documentation for the
// analyzer list and directive semantics.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "optlint:", err)
		os.Exit(2)
	}
}

func run(args []string) error {
	root := "."
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		return fmt.Errorf("must run from the module root (go.mod not found): %w", err)
	}
	modPath, err := analysis.ModulePath(root)
	if err != nil {
		return err
	}
	diags, err := analysis.LintModule(root, modPath, analysis.All())
	if err != nil {
		return err
	}
	diags = filterByPatterns(diags, args)
	for _, d := range diags {
		fmt.Println(d)
	}
	if n := len(diags); n > 0 {
		fmt.Fprintf(os.Stderr, "optlint: %d finding(s)\n", n)
		os.Exit(1)
	}
	return nil
}

// filterByPatterns keeps diagnostics under the given directory patterns.
// "./..." (or no arguments) keeps everything; "./dir" and "./dir/..."
// keep findings whose file path is under dir.
func filterByPatterns(diags []analysis.Diagnostic, patterns []string) []analysis.Diagnostic {
	var prefixes []string
	for _, p := range patterns {
		p = strings.TrimSuffix(p, "...")
		p = strings.TrimSuffix(p, "/")
		p = filepath.Clean(p)
		if p == "." {
			return diags
		}
		prefixes = append(prefixes, p+string(filepath.Separator))
	}
	if len(prefixes) == 0 {
		return diags
	}
	var kept []analysis.Diagnostic
	for _, d := range diags {
		name := filepath.Clean(d.Pos.Filename)
		for _, pre := range prefixes {
			if strings.HasPrefix(name, pre) {
				kept = append(kept, d)
				break
			}
		}
	}
	return kept
}
