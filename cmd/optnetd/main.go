// Command optnetd serves routing jobs over HTTP/JSON: clients submit a
// declarative job spec (a routed network sweep or a named experiment),
// the daemon simulates it on a pool of workers with reused engines, and
// a content-addressed result store memoizes completed jobs so identical
// submissions are answered without re-simulation. Sweeps checkpoint
// after every trial; a killed daemon resumes them byte-identically.
//
// Usage:
//
//	optnetd -addr :9090 -store ./results          # serve
//	optnetd -once job.json -store ./results       # run one spec, print, exit
//
// Endpoints: POST /jobs, GET /jobs/{key}, GET /jobs/{key}/result
// (?wait=1 blocks), GET /jobs/{key}/stream (NDJSON progress),
// DELETE /jobs/{key}, GET /metrics (Prometheus text), GET /snapshot.
//
// A full queue answers 429 with a Retry-After header; the job key in
// every response is the spec's content address (see README "Serving").
//
// With -peers, N daemons serve one logical namespace: submits forward
// to the job key's rendezvous owner, idle peers steal trial batches,
// and completed store segments replicate (see README "Distributed
// serving"):
//
//	optnetd -addr :9090 -self a -peers a=http://h1:9090,b=http://h2:9090 -store ./a
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/jobs"
	"repro/internal/shardsim"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

func main() {
	var (
		addr    = flag.String("addr", ":9090", "HTTP listen address")
		dir     = flag.String("store", "", "result-store directory (empty = no persistence)")
		workers = flag.Int("workers", 1, "worker goroutines, one reused engine each")
		shards  = flag.Int("shards", 1, "lockstep engine shards per simulation (1 = single engine; results are identical)")
		queue   = flag.Int("queue", 64, "bound on queued jobs before 429")
		retry   = flag.Duration("retry-after", time.Second, "Retry-After hint for 429 responses")
		once    = flag.String("once", "", "run the job spec in this file, print the result, exit")

		peers    = flag.String("peers", "", "cluster membership as name=url,name=url (empty = single node)")
		self     = flag.String("self", "", "this node's name in -peers")
		replicas = flag.Int("replicas", 1, "extra copies of each record/segment shipped to peers")
		stealIvl = flag.Duration("steal-interval", 250*time.Millisecond, "idle work-stealing poll period (<0 disables)")
		stealMax = flag.Int("steal-batch", 8, "max trials per stolen lease")
		maxHops  = flag.Int("max-hops", 2, "submit forwarding hop bound")
	)
	flag.Parse()

	var store *jobs.Store
	if *dir != "" {
		var err error
		store, err = jobs.Open(*dir)
		if err != nil {
			fatal(err)
		}
		defer func() {
			// Close seals the final segment with an fsync; a failure here is
			// the last chance to learn that results did not reach the disk.
			if err := store.Close(); err != nil {
				log.Printf("optnetd: closing store: %v", err)
			}
		}()
	}
	if *shards < 1 {
		fatal(fmt.Errorf("optnetd: -shards %d < 1", *shards))
	}
	live := telemetry.NewLive()
	experiments.SetLive(live) // experiment jobs report through the same aggregate
	experiments.SetShards(*shards)
	exec := &jobs.Executor{
		Store:       store,
		Experiments: experiments.JobRunner(),
		Live:        live,
	}

	if *once != "" {
		if err := runOnce(exec, *once, *shards); err != nil {
			fatal(err)
		}
		return
	}

	var node *cluster.Node
	if *peers != "" {
		list, err := parsePeers(*peers)
		if err != nil {
			fatal(err)
		}
		node, err = cluster.New(cluster.Config{
			Self:          *self,
			Peers:         list,
			Replicas:      *replicas,
			StealInterval: *stealIvl,
			StealBatch:    *stealMax,
			MaxHops:       *maxHops,
			Now:           time.Now,
		})
		if err != nil {
			fatal(err)
		}
		node.Wire(exec) // before the scheduler starts executing jobs
	}

	sched := jobs.NewScheduler(exec, jobs.Options{
		Workers:    *workers,
		Shards:     *shards,
		QueueSize:  *queue,
		RetryAfter: *retry,
		Now:        time.Now,
	})
	defer sched.Close()
	var handler http.Handler
	if node != nil {
		node.Start(sched, live)
		defer node.Close()
		handler = node.Handler()
		log.Printf("optnetd: serving on %s as cluster node %q (%d peers, workers=%d queue=%d store=%q)",
			*addr, *self, len(strings.Split(*peers, ",")), *workers, *queue, *dir)
	} else {
		srv := &jobs.Server{Sched: sched, Live: live}
		handler = srv.Handler()
		log.Printf("optnetd: serving on %s (workers=%d queue=%d store=%q)", *addr, *workers, *queue, *dir)
	}
	if err := http.ListenAndServe(*addr, handler); err != nil {
		fatal(err)
	}
}

// parsePeers parses the -peers flag: comma-separated name=url pairs.
func parsePeers(s string) ([]cluster.Peer, error) {
	var list []cluster.Peer
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, url, ok := strings.Cut(part, "=")
		if !ok || name == "" || url == "" {
			return nil, fmt.Errorf("optnetd: bad -peers entry %q (want name=url)", part)
		}
		list = append(list, cluster.Peer{Name: name, URL: strings.TrimSuffix(url, "/")})
	}
	return list, nil
}

// runOnce executes one job spec file inline — no scheduler, no HTTP —
// and prints the result JSON. With -store it still reads and writes the
// cache, so a repeated -once invocation is a cache hit.
func runOnce(exec *jobs.Executor, path string, shards int) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var spec jobs.Spec
	if err := json.Unmarshal(raw, &spec); err != nil {
		return fmt.Errorf("optnetd: bad spec %s: %w", path, err)
	}
	var eng jobs.Simulator = sim.NewEngine()
	if shards > 1 {
		eng = shardsim.New(shards)
	}
	res, fromCache, err := exec.Run(spec, eng, nil, nil)
	if err != nil {
		return err
	}
	log.Printf("optnetd: job %s done (from_cache=%v)", res.Key, fromCache)
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
