// Command optnetd serves routing jobs over HTTP/JSON: clients submit a
// declarative job spec (a routed network sweep or a named experiment),
// the daemon simulates it on a pool of workers with reused engines, and
// a content-addressed result store memoizes completed jobs so identical
// submissions are answered without re-simulation. Sweeps checkpoint
// after every trial; a killed daemon resumes them byte-identically.
//
// Usage:
//
//	optnetd -addr :9090 -store ./results          # serve
//	optnetd -once job.json -store ./results       # run one spec, print, exit
//
// Endpoints: POST /jobs, GET /jobs/{key}, GET /jobs/{key}/result
// (?wait=1 blocks), GET /jobs/{key}/stream (NDJSON progress),
// DELETE /jobs/{key}, GET /metrics (Prometheus text), GET /snapshot.
//
// A full queue answers 429 with a Retry-After header; the job key in
// every response is the spec's content address (see README "Serving").
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/jobs"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

func main() {
	var (
		addr    = flag.String("addr", ":9090", "HTTP listen address")
		dir     = flag.String("store", "", "result-store directory (empty = no persistence)")
		workers = flag.Int("workers", 1, "worker goroutines, one reused engine each")
		queue   = flag.Int("queue", 64, "bound on queued jobs before 429")
		retry   = flag.Duration("retry-after", time.Second, "Retry-After hint for 429 responses")
		once    = flag.String("once", "", "run the job spec in this file, print the result, exit")
	)
	flag.Parse()

	var store *jobs.Store
	if *dir != "" {
		var err error
		store, err = jobs.Open(*dir)
		if err != nil {
			fatal(err)
		}
		defer func() {
			// Close seals the final segment with an fsync; a failure here is
			// the last chance to learn that results did not reach the disk.
			if err := store.Close(); err != nil {
				log.Printf("optnetd: closing store: %v", err)
			}
		}()
	}
	live := telemetry.NewLive()
	experiments.SetLive(live) // experiment jobs report through the same aggregate
	exec := &jobs.Executor{
		Store:       store,
		Experiments: experiments.JobRunner(),
		Live:        live,
	}

	if *once != "" {
		if err := runOnce(exec, *once); err != nil {
			fatal(err)
		}
		return
	}

	sched := jobs.NewScheduler(exec, jobs.Options{
		Workers:    *workers,
		QueueSize:  *queue,
		RetryAfter: *retry,
		Now:        time.Now,
	})
	defer sched.Close()
	srv := &jobs.Server{Sched: sched, Live: live}
	log.Printf("optnetd: serving on %s (workers=%d queue=%d store=%q)", *addr, *workers, *queue, *dir)
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		fatal(err)
	}
}

// runOnce executes one job spec file inline — no scheduler, no HTTP —
// and prints the result JSON. With -store it still reads and writes the
// cache, so a repeated -once invocation is a cache hit.
func runOnce(exec *jobs.Executor, path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var spec jobs.Spec
	if err := json.Unmarshal(raw, &spec); err != nil {
		return fmt.Errorf("optnetd: bad spec %s: %w", path, err)
	}
	res, fromCache, err := exec.Run(spec, sim.NewEngine(), nil, nil)
	if err != nil {
		return err
	}
	log.Printf("optnetd: job %s done (from_cache=%v)", res.Key, fromCache)
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
