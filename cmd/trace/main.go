// Command trace renders an ASCII space-time diagram of one simulated
// round on a small network: which worm occupies which directed link on
// which wavelength at every step, with the per-worm outcomes underneath.
// It is the executable version of the paper's worm-kinematics pictures.
//
// Usage:
//
//	trace -topo ring -size 8 -worms 5 -L 3 -B 1 -delta 6
//	trace -topo hypercube -size 4 -worms 6 -L 2 -B 2
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/graph"
	"repro/internal/optical"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/topology"
)

func main() {
	var (
		topo   = flag.String("topo", "ring", "topology: ring|chain|torus|hypercube|butterfly")
		size   = flag.Int("size", 8, "nodes (ring/chain), side (torus) or dimension (hypercube/butterfly)")
		nworms = flag.Int("worms", 5, "number of worms")
		length = flag.Int("L", 3, "worm length (flits)")
		bandw  = flag.Int("B", 1, "bandwidth (wavelengths)")
		delta  = flag.Int("delta", 6, "startup delay range")
		rule   = flag.String("rule", "serve-first", "rule: serve-first|priority")
		acks   = flag.Int("ack", 0, "ack length (0 = oracle)")
		seed   = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	var g *graph.Graph
	switch *topo {
	case "ring":
		g = topology.NewRing(*size).Graph()
	case "chain":
		g = topology.NewChain(*size).Graph()
	case "torus":
		g = topology.NewTorus(2, *size).Graph()
	case "hypercube":
		g = topology.NewHypercube(*size).Graph()
	case "butterfly":
		g = topology.NewButterfly(*size).Graph()
	default:
		fmt.Fprintf(os.Stderr, "trace: unknown topology %q\n", *topo)
		os.Exit(1)
	}

	src := rng.New(*seed)
	ranks := src.Perm(*nworms)
	var worms []sim.Worm
	for id := 0; id < *nworms; id++ {
		s := src.Intn(g.NumNodes())
		d := src.Intn(g.NumNodes())
		if s == d {
			continue
		}
		worms = append(worms, sim.Worm{
			ID:         id,
			Path:       g.ShortestPath(s, d),
			Length:     *length,
			Delay:      src.Intn(*delta),
			Wavelength: src.Intn(*bandw),
			Rank:       ranks[id],
		})
	}
	r := optical.ServeFirst
	if *rule == "priority" {
		r = optical.Priority
	}
	res, tl, err := sim.Trace(g, worms, sim.Config{
		Bandwidth: *bandw,
		Rule:      r,
		AckLength: *acks,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "trace:", err)
		os.Exit(1)
	}
	tl.Render(os.Stdout, sim.MessageBand)
	if *acks > 0 {
		fmt.Println()
		tl.Render(os.Stdout, sim.AckBand)
	}
	fmt.Println()
	for i := range worms {
		fmt.Println(tl.WormEvents(i))
	}
	fmt.Printf("\ndelivered %d/%d worms in %d steps\n",
		res.DeliveredCount, len(worms), res.Makespan+1)
}
