package repro

// Serving benchmarks: the job layer's two hot paths. A cache hit must be
// dominated by one store lookup and a JSON decode (no simulation); a
// cold submit pays for the sweep itself. TestEmitBenchServe writes both
// as BENCH_serve.json for trend tracking, mirroring BENCH_sim.json.

import (
	"encoding/json"
	"os"
	"testing"

	"repro/internal/jobs"
	"repro/internal/sim"
)

// serveSpec is the benchmark job: a 4x4 torus permutation sweep.
func serveSpec(seed uint64, trials int) jobs.Spec {
	return jobs.Spec{Route: &jobs.RouteSpec{
		Network:  jobs.NetworkSpec{Kind: "torus", Dims: 2, Side: 4},
		Workload: jobs.WorkloadSpec{Kind: "permutation"},
		Protocol: jobs.ProtocolSpec{Bandwidth: 2, Length: 4},
		Seed:     seed,
		Trials:   trials,
	}}
}

// BenchmarkServeCacheHit measures answering an already-stored job: the
// content-address computation, the store lookup and the result decode.
func BenchmarkServeCacheHit(b *testing.B) {
	store, err := jobs.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()
	exec := &jobs.Executor{Store: store}
	spec := serveSpec(1, 2)
	if _, _, err := exec.Run(spec, sim.NewEngine(), nil, nil); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, fromCache, err := exec.Run(spec, nil, nil, nil)
		if err != nil {
			b.Fatal(err)
		}
		if !fromCache || res == nil {
			b.Fatal("benchmark job missed the cache")
		}
	}
}

// BenchmarkServeSubmit measures a cold submission end to end on a reused
// worker engine: simulate, checkpoint, store. Each iteration uses a
// distinct seed so nothing is ever cached.
func BenchmarkServeSubmit(b *testing.B) {
	store, err := jobs.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()
	exec := &jobs.Executor{Store: store}
	eng := sim.NewEngine()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, fromCache, err := exec.Run(serveSpec(uint64(i)+1, 2), eng, nil, nil)
		if err != nil {
			b.Fatal(err)
		}
		if fromCache || res == nil {
			b.Fatal("cold submission claimed a cache hit")
		}
	}
}

// TestEmitBenchServe writes BENCH_serve.json with the serving hot-path
// numbers. Run explicitly:
//
//	BENCH_SERVE_JSON=BENCH_serve.json go test -run TestEmitBenchServe .
func TestEmitBenchServe(t *testing.T) {
	path := os.Getenv("BENCH_SERVE_JSON")
	if path == "" {
		t.Skip("set BENCH_SERVE_JSON=<file> to emit the serving benchmarks")
	}
	type point struct {
		Bench    string `json:"bench"`
		Trials   int    `json:"trials"`
		NsPerOp  int64  `json:"ns_per_op"`
		AllocsOp int64  `json:"allocs_per_op"`
		BytesOp  int64  `json:"bytes_per_op"`
	}
	var points []point
	for _, bench := range []struct {
		name string
		fn   func(*testing.B)
	}{
		{"BenchmarkServeCacheHit", BenchmarkServeCacheHit},
		{"BenchmarkServeSubmit", BenchmarkServeSubmit},
	} {
		r := testing.Benchmark(bench.fn)
		points = append(points, point{
			Bench:    bench.name,
			Trials:   2,
			NsPerOp:  r.NsPerOp(),
			AllocsOp: r.AllocsPerOp(),
			BytesOp:  r.AllocedBytesPerOp(),
		})
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(points); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %d points to %s", len(points), path)
}
