package repro

// Serving benchmarks: the job layer's two hot paths. A cache hit must be
// dominated by one store lookup and a JSON decode (no simulation); a
// cold submit pays for the sweep itself. TestEmitBenchServe writes both
// as BENCH_serve.json for trend tracking, mirroring BENCH_sim.json.

import (
	"encoding/json"
	"os"
	"testing"

	"repro/internal/jobs"
	"repro/internal/sim"
	"repro/internal/workload"
)

// serveSpec is the benchmark job: a 4x4 torus permutation sweep.
func serveSpec(seed uint64, trials int) jobs.Spec {
	return jobs.Spec{Route: &jobs.RouteSpec{
		Network:  jobs.NetworkSpec{Kind: "torus", Dims: 2, Side: 4},
		Workload: jobs.WorkloadSpec{Kind: "permutation"},
		Protocol: jobs.ProtocolSpec{Bandwidth: 2, Length: 4},
		Seed:     seed,
		Trials:   trials,
	}}
}

// BenchmarkServeCacheHit measures answering an already-stored job: the
// content-address computation, the store lookup and the result decode.
func BenchmarkServeCacheHit(b *testing.B) {
	store, err := jobs.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()
	exec := &jobs.Executor{Store: store}
	spec := serveSpec(1, 2)
	if _, _, err := exec.Run(spec, sim.NewEngine(), nil, nil); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, fromCache, err := exec.Run(spec, nil, nil, nil)
		if err != nil {
			b.Fatal(err)
		}
		if !fromCache || res == nil {
			b.Fatal("benchmark job missed the cache")
		}
	}
}

// serveDynamicSpec is the trace-replay benchmark job: a generated
// Poisson trace replayed once on a 4x4 torus. The trace is generated
// per call from a fixed workload spec — deterministic, so every
// invocation builds the same job key.
func serveDynamicSpec(tb testing.TB, seed uint64) jobs.Spec {
	tb.Helper()
	tr, err := workload.Spec{
		Nodes:   16,
		Horizon: 120,
		Seed:    7,
		Cohorts: []workload.Cohort{{
			Name:     "bench",
			Arrivals: workload.ArrivalSpec{Kind: workload.KindPoisson, Rate: 0.5},
		}},
	}.Generate()
	if err != nil {
		tb.Fatal(err)
	}
	return jobs.Spec{Dynamic: &jobs.DynamicSpec{
		Network:  jobs.NetworkSpec{Kind: "torus", Dims: 2, Side: 4},
		Trace:    tr,
		Protocol: jobs.DynamicProtocolSpec{Bandwidth: 2, Length: 4, AckLength: 1},
		Seed:     seed,
		Trials:   1,
	}}
}

// BenchmarkServeDynamicSubmit measures a cold trace-replay submission:
// hash the trace-bearing spec, replay it, checkpoint and store. Each
// iteration uses a distinct protocol seed so nothing is ever cached.
func BenchmarkServeDynamicSubmit(b *testing.B) {
	store, err := jobs.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()
	exec := &jobs.Executor{Store: store}
	eng := sim.NewEngine()
	spec := serveDynamicSpec(b, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := spec
		s.Dynamic = &jobs.DynamicSpec{
			Network: spec.Dynamic.Network, Trace: spec.Dynamic.Trace,
			Protocol: spec.Dynamic.Protocol, Seed: uint64(i) + 1, Trials: 1,
		}
		res, fromCache, err := exec.Run(s, eng, nil, nil)
		if err != nil {
			b.Fatal(err)
		}
		if fromCache || res == nil {
			b.Fatal("cold dynamic submission claimed a cache hit")
		}
	}
}

// BenchmarkServeSubmit measures a cold submission end to end on a reused
// worker engine: simulate, checkpoint, store. Each iteration uses a
// distinct seed so nothing is ever cached.
func BenchmarkServeSubmit(b *testing.B) {
	store, err := jobs.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()
	exec := &jobs.Executor{Store: store}
	eng := sim.NewEngine()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, fromCache, err := exec.Run(serveSpec(uint64(i)+1, 2), eng, nil, nil)
		if err != nil {
			b.Fatal(err)
		}
		if fromCache || res == nil {
			b.Fatal("cold submission claimed a cache hit")
		}
	}
}

// TestEmitBenchServe writes BENCH_serve.json with the serving hot-path
// numbers. Run explicitly:
//
//	BENCH_SERVE_JSON=BENCH_serve.json go test -run TestEmitBenchServe .
func TestEmitBenchServe(t *testing.T) {
	path := os.Getenv("BENCH_SERVE_JSON")
	if path == "" {
		t.Skip("set BENCH_SERVE_JSON=<file> to emit the serving benchmarks")
	}
	type point struct {
		Bench    string `json:"bench"`
		Trials   int    `json:"trials"`
		NsPerOp  int64  `json:"ns_per_op"`
		AllocsOp int64  `json:"allocs_per_op"`
		BytesOp  int64  `json:"bytes_per_op"`
	}
	var points []point
	for _, bench := range []struct {
		name string
		fn   func(*testing.B)
	}{
		{"BenchmarkServeCacheHit", BenchmarkServeCacheHit},
		{"BenchmarkServeSubmit", BenchmarkServeSubmit},
		{"BenchmarkServeDynamicSubmit", BenchmarkServeDynamicSubmit},
	} {
		r := testing.Benchmark(bench.fn)
		points = append(points, point{
			Bench:    bench.name,
			Trials:   2,
			NsPerOp:  r.NsPerOp(),
			AllocsOp: r.AllocsPerOp(),
			BytesOp:  r.AllocedBytesPerOp(),
		})
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(points); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %d points to %s", len(points), path)
}
