package repro

// Cluster benchmarks: the two distributed hot paths. A forwarded submit
// pays one proxy hop to the owner plus the owner's cache hit; a stolen
// sweep pays the full distributed execution — lease, remote trials,
// snapshot merge — end to end. TestEmitBenchCluster writes both as
// BENCH_cluster.json for trend tracking, mirroring BENCH_serve.json.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/jobs"
	"repro/internal/telemetry"
)

// benchLateHandler lets an httptest server start before the node behind
// it exists (peer URLs are needed to construct the nodes).
type benchLateHandler struct {
	mu sync.RWMutex
	h  http.Handler //optlint:guardedby mu
}

// set installs the real handler.
func (l *benchLateHandler) set(h http.Handler) {
	l.mu.Lock()
	l.h = h
	l.mu.Unlock()
}

// ServeHTTP delegates to the installed handler.
func (l *benchLateHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	l.mu.RLock()
	h := l.h
	l.mu.RUnlock()
	if h == nil {
		http.Error(w, "node not ready", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

// benchClusterNode is one in-process member of a benchmark cluster.
type benchClusterNode struct {
	name  string
	srv   *httptest.Server
	node  *cluster.Node
	sched *jobs.Scheduler
	store *jobs.Store
}

// startBenchCluster boots a two-node in-process cluster. Replication is
// on (defaults); tweak adjusts each node's config before construction.
func startBenchCluster(b *testing.B, tweak func(*cluster.Config)) []*benchClusterNode {
	b.Helper()
	names := []string{"a", "b"}
	handlers := make([]*benchLateHandler, len(names))
	nodes := make([]*benchClusterNode, len(names))
	var peers []cluster.Peer
	for i, name := range names {
		handlers[i] = &benchLateHandler{}
		srv := httptest.NewServer(handlers[i])
		nodes[i] = &benchClusterNode{name: name, srv: srv}
		peers = append(peers, cluster.Peer{Name: name, URL: srv.URL})
	}
	for i, name := range names {
		store, err := jobs.Open(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		live := telemetry.NewLive()
		exec := &jobs.Executor{Store: store, Live: live}
		cfg := cluster.Config{Self: name, Peers: peers, Now: time.Now}
		if tweak != nil {
			tweak(&cfg)
		}
		node, err := cluster.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		node.Wire(exec)
		sched := jobs.NewScheduler(exec, jobs.Options{Workers: 1, QueueSize: 64})
		node.Start(sched, live)
		handlers[i].set(node.Handler())
		nodes[i].store, nodes[i].node, nodes[i].sched = store, node, sched
	}
	b.Cleanup(func() {
		for _, n := range nodes {
			n.srv.Close()
			n.node.Close()
			n.sched.Close()
			if err := n.store.Close(); err != nil {
				b.Errorf("closing %s store: %v", n.name, err)
			}
		}
	})
	return nodes
}

// clusterBenchSpec is the benchmark job: a permutation sweep on a 2-D
// torus, sized so a sweep outlives at least a few thief polls.
func clusterBenchSpec(seed uint64, trials, side int) jobs.Spec {
	return jobs.Spec{Route: &jobs.RouteSpec{
		Network:  jobs.NetworkSpec{Kind: "torus", Dims: 2, Side: side},
		Workload: jobs.WorkloadSpec{Kind: "permutation"},
		Protocol: jobs.ProtocolSpec{Bandwidth: 2, Length: 4},
		Seed:     seed,
		Trials:   trials,
	}}
}

// BenchmarkForwardedSubmit measures serving an already-computed job
// through the wrong node: one proxy hop to the rendezvous owner, whose
// answer is a store hit. The steady-state cost of clients that do not
// know the ownership map.
func BenchmarkForwardedSubmit(b *testing.B) {
	nodes := startBenchCluster(b, func(c *cluster.Config) {
		c.StealInterval = -1 // pure forwarding, no stealing
	})
	// Find a spec owned by node b so a submit to node a must forward.
	var spec jobs.Spec
	var key string
	for seed := uint64(1); ; seed++ {
		spec = clusterBenchSpec(seed, 2, 4)
		k, err := spec.Key()
		if err != nil {
			b.Fatal(err)
		}
		peers := []cluster.Peer{{Name: nodes[0].name, URL: nodes[0].srv.URL}, {Name: nodes[1].name, URL: nodes[1].srv.URL}}
		if o, ok := cluster.Owner(peers, k); ok && o.Name == nodes[1].name {
			key = k
			break
		}
	}
	client := &jobs.Client{BaseURL: nodes[0].srv.URL}
	if _, err := client.Submit(spec, 0); err != nil {
		b.Fatal(err)
	}
	if _, err := client.Result(key); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := client.Submit(spec, 0)
		if err != nil {
			b.Fatal(err)
		}
		if st.State != jobs.StateDone {
			b.Fatalf("forwarded submit state %s, want done", st.State)
		}
	}
}

// BenchmarkClusterStealThroughput measures a distributed sweep end to
// end: submit to one node, the peer steals trial batches, the owner
// folds and serves the result. Each iteration uses a distinct seed so
// nothing is ever cached.
func BenchmarkClusterStealThroughput(b *testing.B) {
	nodes := startBenchCluster(b, func(c *cluster.Config) {
		c.StealInterval = time.Millisecond
		c.StealBatch = 4
	})
	client := &jobs.Client{BaseURL: nodes[0].srv.URL}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spec := clusterBenchSpec(uint64(i)+1, 32, 16)
		key, err := spec.Key()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := client.Submit(spec, 0); err != nil {
			b.Fatal(err)
		}
		res, err := client.Result(key)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Trials) != 32 {
			b.Fatalf("result has %d trials, want 32", len(res.Trials))
		}
	}
}

// TestEmitBenchCluster writes BENCH_cluster.json with the distributed
// hot-path numbers. Run explicitly:
//
//	BENCH_CLUSTER_JSON=BENCH_cluster.json go test -run TestEmitBenchCluster .
func TestEmitBenchCluster(t *testing.T) {
	path := os.Getenv("BENCH_CLUSTER_JSON")
	if path == "" {
		t.Skip("set BENCH_CLUSTER_JSON=<file> to emit the cluster benchmarks")
	}
	type point struct {
		Bench    string `json:"bench"`
		Trials   int    `json:"trials"`
		NsPerOp  int64  `json:"ns_per_op"`
		AllocsOp int64  `json:"allocs_per_op"`
		BytesOp  int64  `json:"bytes_per_op"`
	}
	var points []point
	for _, bench := range []struct {
		name   string
		trials int
		fn     func(*testing.B)
	}{
		{"BenchmarkForwardedSubmit", 2, BenchmarkForwardedSubmit},
		{"BenchmarkClusterStealThroughput", 32, BenchmarkClusterStealThroughput},
	} {
		r := testing.Benchmark(bench.fn)
		points = append(points, point{
			Bench:    bench.name,
			Trials:   bench.trials,
			NsPerOp:  r.NsPerOp(),
			AllocsOp: r.AllocsPerOp(),
			BytesOp:  r.AllocedBytesPerOp(),
		})
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(points); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %d points to %s", len(points), path)
}
