// Package repro reproduces Flammini & Scheideler, "Simple, Efficient
// Routing Schemes for All-Optical Networks" (SPAA 1997): the
// Trial-and-Failure protocol for bufferless wavelength-division optical
// wormhole routing, the serve-first and priority router models, the
// lower-bound gadget families, and experiments verifying the shape of
// every bound in the paper.
//
// The public API lives in package optnet; the benchmark harness that
// regenerates the paper's results is the experiments command (see
// cmd/experiments and bench_test.go); DESIGN.md and EXPERIMENTS.md
// document the system inventory and the paper-vs-measured comparison.
package repro
