package paths

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/topology"
)

func TestGreedyAssignmentIdenticalPaths(t *testing.T) {
	g := lineGraph(5)
	ps := make([]graph.Path, 6)
	for i := range ps {
		ps[i] = graph.Path{0, 1, 2, 3}
	}
	c := MustCollection(g, ps)
	colors, used := c.GreedyWavelengthAssignment()
	if used != 6 {
		t.Fatalf("identical paths need one wavelength each: used = %d", used)
	}
	if !c.ValidWavelengthAssignment(colors) {
		t.Fatal("invalid assignment")
	}
}

func TestGreedyAssignmentDisjointPaths(t *testing.T) {
	g := lineGraph(9)
	c := MustCollection(g, []graph.Path{{0, 1, 2}, {3, 4, 5}, {6, 7, 8}})
	colors, used := c.GreedyWavelengthAssignment()
	if used != 1 {
		t.Fatalf("disjoint paths share one wavelength: used = %d", used)
	}
	if !c.ValidWavelengthAssignment(colors) {
		t.Fatal("invalid assignment")
	}
}

func TestGreedyAssignmentBounds(t *testing.T) {
	check := func(seed uint16) bool {
		src := rng.New(uint64(seed))
		tor := topology.NewTorus(2, 5)
		prs := RandomFunction(tor.Graph().NumNodes(), src)
		c, err := Build(tor.Graph(), prs, DimOrderTorus(tor))
		if err != nil {
			return false
		}
		colors, used := c.GreedyWavelengthAssignment()
		if !c.ValidWavelengthAssignment(colors) {
			return false
		}
		// Lower bound: edge congestion; upper bound: max degree + 1.
		return used >= c.EdgeCongestion() && used <= c.MaxConflictDegree()+1
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestValidWavelengthAssignmentRejects(t *testing.T) {
	g := lineGraph(4)
	c := MustCollection(g, []graph.Path{{0, 1, 2}, {1, 2, 3}})
	if c.ValidWavelengthAssignment([]int{0, 0}) {
		t.Error("conflicting colors accepted")
	}
	if !c.ValidWavelengthAssignment([]int{0, 1}) {
		t.Error("valid coloring rejected")
	}
	if c.ValidWavelengthAssignment([]int{0}) {
		t.Error("wrong length accepted")
	}
}

func TestConflictDegree(t *testing.T) {
	g := lineGraph(4)
	c := MustCollection(g, []graph.Path{{0, 1, 2}, {1, 2, 3}, {0, 1}})
	deg := c.ConflictDegree()
	// Path 0 conflicts with both others; paths 1 and 2 only with path 0.
	if deg[0] != 2 || deg[1] != 1 || deg[2] != 1 {
		t.Errorf("degrees = %v, want [2 1 1]", deg)
	}
	if c.MaxConflictDegree() != 2 {
		t.Errorf("max degree = %d", c.MaxConflictDegree())
	}
}

func TestGreedyPrefersLongPathsFirst(t *testing.T) {
	// Deterministic order: the longest path gets color 0.
	g := lineGraph(6)
	c := MustCollection(g, []graph.Path{{0, 1}, {0, 1, 2, 3, 4, 5}})
	colors, used := c.GreedyWavelengthAssignment()
	if colors[1] != 0 {
		t.Errorf("longest path should be colored first: colors = %v", colors)
	}
	if used != 2 {
		t.Errorf("used = %d", used)
	}
}

func TestChainOptimalAssignment(t *testing.T) {
	g := lineGraph(10)
	ps := []graph.Path{
		{0, 1, 2, 3},    // fwd [0,3)
		{2, 3, 4, 5, 6}, // fwd [2,6) overlaps first
		{5, 6, 7},       // fwd [5,7) overlaps second
		{9, 8, 7, 6},    // bwd: reverse direction, shares no color space
		{3, 2, 1},       // bwd
	}
	c := MustCollection(g, ps)
	colors, used, err := c.ChainOptimalAssignment()
	if err != nil {
		t.Fatal(err)
	}
	if !c.ValidWavelengthAssignment(colors) {
		t.Fatalf("invalid assignment %v", colors)
	}
	// Optimality: exactly the edge congestion.
	if used != c.EdgeCongestion() {
		t.Errorf("used %d, want edge congestion %d", used, c.EdgeCongestion())
	}
}

func TestChainOptimalMatchesCongestionProperty(t *testing.T) {
	check := func(seed uint16) bool {
		src := rng.New(uint64(seed))
		g := lineGraph(16)
		var ps []graph.Path
		for k := 0; k < 20; k++ {
			a, b := src.Intn(16), src.Intn(16)
			if a == b {
				continue
			}
			p := graph.Path{}
			step := 1
			if b < a {
				step = -1
			}
			for u := a; u != b+step; u += step {
				p = append(p, u)
			}
			ps = append(ps, p)
		}
		if len(ps) == 0 {
			return true
		}
		c := MustCollection(g, ps)
		colors, used, err := c.ChainOptimalAssignment()
		if err != nil {
			return false
		}
		if !c.ValidWavelengthAssignment(colors) {
			return false
		}
		// Optimal = edge congestion; also never worse than greedy.
		_, greedy := c.GreedyWavelengthAssignment()
		return used == c.EdgeCongestion() && used <= greedy
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestChainOptimalRejectsNonChainPaths(t *testing.T) {
	tor := topology.NewTorus(1, 6) // a ring: wrap path is non-monotone in ids
	c := MustCollection(tor.Graph(), []graph.Path{{5, 0}})
	if _, _, err := c.ChainOptimalAssignment(); err == nil {
		t.Error("wrap-around path accepted as chain path")
	}
}
