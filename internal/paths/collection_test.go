package paths

import (
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/topology"
)

// lineGraph builds a chain 0-1-...-n-1 and returns its graph.
func lineGraph(n int) *graph.Graph {
	return topology.NewChain(n).Graph()
}

func TestNewCollectionValidation(t *testing.T) {
	g := lineGraph(5)
	if _, err := NewCollection(g, []graph.Path{{0, 1, 2}}); err != nil {
		t.Fatalf("valid collection rejected: %v", err)
	}
	if _, err := NewCollection(g, []graph.Path{{0, 2}}); err == nil {
		t.Error("invalid path accepted")
	}
	if _, err := NewCollection(g, []graph.Path{{3}}); err == nil {
		t.Error("zero-length path accepted")
	}
	if _, err := NewCollection(g, nil); err != nil {
		t.Errorf("empty collection rejected: %v", err)
	}
}

func TestMustCollectionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustCollection did not panic on invalid input")
		}
	}()
	MustCollection(lineGraph(3), []graph.Path{{0, 2}})
}

func TestDilation(t *testing.T) {
	g := lineGraph(6)
	c := MustCollection(g, []graph.Path{{0, 1}, {0, 1, 2, 3}, {2, 3, 4}})
	if d := c.Dilation(); d != 3 {
		t.Errorf("dilation = %d, want 3", d)
	}
	empty, _ := NewCollection(g, nil)
	if empty.Dilation() != 0 {
		t.Error("empty dilation should be 0")
	}
}

func TestEdgeCongestionDirected(t *testing.T) {
	g := lineGraph(4)
	// Two paths left-to-right and one right-to-left over the same edge:
	// opposite directions use different links and must not add up.
	c := MustCollection(g, []graph.Path{{0, 1, 2}, {1, 2}, {2, 1}})
	if got := c.EdgeCongestion(); got != 2 {
		t.Errorf("edge congestion = %d, want 2 (directions are separate links)", got)
	}
}

func TestPathCongestionIdenticalPaths(t *testing.T) {
	// A type-2 structure: k identical paths has path congestion exactly k.
	g := lineGraph(5)
	k := 7
	ps := make([]graph.Path, k)
	for i := range ps {
		ps[i] = graph.Path{0, 1, 2, 3}
	}
	c := MustCollection(g, ps)
	if got := c.PathCongestion(); got != k {
		t.Errorf("path congestion of %d identical paths = %d, want %d", k, got, k)
	}
}

func TestPathCongestionDisjoint(t *testing.T) {
	g := lineGraph(9)
	c := MustCollection(g, []graph.Path{{0, 1, 2}, {3, 4, 5}, {6, 7, 8}})
	if got := c.PathCongestion(); got != 1 {
		t.Errorf("path congestion of disjoint paths = %d, want 1", got)
	}
}

func TestPathCongestionVsEdgeCongestion(t *testing.T) {
	// A "star of paths": k paths each sharing a distinct edge with one hub
	// path but not with each other. Edge congestion stays 2, while the hub
	// path's congestion is k+1.
	k := 5
	// Hub path 0-1-2-...-k; spoke i covers edge (i, i+1) and then departs
	// to a private node.
	n := (k + 1) + k
	g := graph.New(n)
	for i := 0; i < k; i++ {
		g.AddEdge(i, i+1)
	}
	for i := 0; i < k; i++ {
		g.AddEdge(i+1, k+1+i) // private exits
	}
	hub := make(graph.Path, k+1)
	for i := range hub {
		hub[i] = i
	}
	ps := []graph.Path{hub}
	for i := 0; i < k; i++ {
		ps = append(ps, graph.Path{i, i + 1, k + 1 + i})
	}
	c := MustCollection(g, ps)
	if got := c.EdgeCongestion(); got != 2 {
		t.Errorf("edge congestion = %d, want 2", got)
	}
	if got := c.PathCongestion(); got != k+1 {
		t.Errorf("path congestion = %d, want %d", got, k+1)
	}
	cong := c.PathCongestions()
	if cong[0] != k+1 {
		t.Errorf("hub congestion = %d, want %d", cong[0], k+1)
	}
	for i := 1; i <= k; i++ {
		if cong[i] != 2 {
			t.Errorf("spoke %d congestion = %d, want 2", i, cong[i])
		}
	}
}

func TestLinkUsersAndSharePairs(t *testing.T) {
	g := lineGraph(4)
	c := MustCollection(g, []graph.Path{{0, 1, 2}, {1, 2, 3}, {0, 1}})
	id, _ := g.LinkBetween(1, 2)
	users := c.LinkUsers(id)
	if len(users) != 2 {
		t.Fatalf("link users = %v", users)
	}
	var pairs [][2]int
	c.SharePairs(func(i, j int) { pairs = append(pairs, [2]int{i, j}) })
	// Pairs sharing a link: (0,1) via 1->2, (0,2) via 0->1.
	if len(pairs) != 2 {
		t.Fatalf("share pairs = %v", pairs)
	}
	seen := map[[2]int]bool{}
	for _, p := range pairs {
		seen[p] = true
	}
	if !seen[[2]int{0, 1}] || !seen[[2]int{0, 2}] {
		t.Errorf("share pairs = %v, want (0,1) and (0,2)", pairs)
	}
}

func TestComputeStatsAndString(t *testing.T) {
	g := lineGraph(4)
	c := MustCollection(g, []graph.Path{{0, 1, 2, 3}, {0, 1}})
	s := c.ComputeStats()
	if s.N != 2 || s.Dilation != 3 || s.EdgeCongestion != 2 || s.PathCongestion != 2 {
		t.Errorf("stats = %+v", s)
	}
	if !s.Leveled {
		t.Error("chain collection should be leveled")
	}
	if !s.ShortCutFree {
		t.Error("chain collection should be short-cut free")
	}
	if str := s.String(); !strings.Contains(str, "n=2") || !strings.Contains(str, "D=3") {
		t.Errorf("String = %q", str)
	}
}

func TestPathLinksCached(t *testing.T) {
	g := lineGraph(3)
	c := MustCollection(g, []graph.Path{{0, 1, 2}})
	a := c.PathLinks(0)
	b := c.PathLinks(0)
	if &a[0] != &b[0] {
		t.Error("PathLinks should return the cached slice")
	}
	if len(a) != 2 {
		t.Errorf("links = %v", a)
	}
}

func TestAccessors(t *testing.T) {
	g := lineGraph(3)
	ps := []graph.Path{{0, 1}, {1, 2}}
	c := MustCollection(g, ps)
	if c.Size() != 2 || c.Graph() != g {
		t.Error("Size/Graph accessors")
	}
	if c.Path(1).Source() != 1 {
		t.Error("Path accessor")
	}
	if len(c.Paths()) != 2 {
		t.Error("Paths accessor")
	}
}

func TestSubset(t *testing.T) {
	g := lineGraph(6)
	c := MustCollection(g, []graph.Path{{0, 1, 2}, {2, 3, 4}, {0, 1}})
	sub := c.Subset([]int{2, 0})
	if sub.Size() != 2 {
		t.Fatalf("size = %d", sub.Size())
	}
	if sub.Path(0).Len() != 1 || sub.Path(1).Len() != 2 {
		t.Error("wrong paths selected")
	}
	if sub.Dilation() != 2 {
		t.Errorf("subset dilation = %d", sub.Dilation())
	}
	// Subset metrics are independent of the parent.
	if sub.PathCongestion() != 2 { // the two paths share link 0->1
		t.Errorf("subset path congestion = %d, want 2", sub.PathCongestion())
	}
}
