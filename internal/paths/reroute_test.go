package paths

import (
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/topology"
)

func TestShortestPathAvoidingMatchesShortestPath(t *testing.T) {
	g := topology.NewTorus(3, 3).Graph()
	none := func(graph.LinkID) bool { return false }
	for u := 0; u < g.NumNodes(); u++ {
		for v := 0; v < g.NumNodes(); v++ {
			want := g.ShortestPath(graph.NodeID(u), graph.NodeID(v))
			got := ShortestPathAvoiding(g, graph.NodeID(u), graph.NodeID(v), none)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%d->%d: avoid-nothing path %v != shortest path %v", u, v, got, want)
			}
			nilPred := ShortestPathAvoiding(g, graph.NodeID(u), graph.NodeID(v), nil)
			if !reflect.DeepEqual(nilPred, want) {
				t.Fatalf("%d->%d: nil-predicate path %v != shortest path %v", u, v, nilPred, want)
			}
		}
	}
}

func TestShortestPathAvoidingDetours(t *testing.T) {
	// Ring of 4: 0-1-2-3-0. Blocking 0->1 forces the long way around.
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 0)
	direct, ok := g.LinkBetween(0, 1)
	if !ok {
		t.Fatal("missing link")
	}
	p := ShortestPathAvoiding(g, 0, 2, func(id graph.LinkID) bool { return id == direct })
	want := graph.Path{0, 3, 2}
	if !reflect.DeepEqual(p, want) {
		t.Fatalf("detour = %v, want %v", p, want)
	}
	if err := p.Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestShortestPathAvoidingUnreachable(t *testing.T) {
	// Chain 0-1-2: blocking both directions of edge {1,2} cuts node 2 off.
	g := graph.New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	l12, _ := g.LinkBetween(1, 2)
	l21, _ := g.LinkBetween(2, 1)
	blocked := func(id graph.LinkID) bool { return id == l12 || id == l21 }
	if p := ShortestPathAvoiding(g, 0, 2, blocked); p != nil {
		t.Fatalf("found a path %v through a cut", p)
	}
	if p := ShortestPathAvoiding(g, 2, 2, blocked); !reflect.DeepEqual(p, graph.Path{2}) {
		t.Fatalf("self path = %v", p)
	}
}
