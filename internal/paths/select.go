package paths

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/topology"
)

// Selector produces a routing path from src to dst in a fixed network.
// Selectors are the "first part" of a routing scheme in the paper's
// terminology: the strategy that picks the path collection.
type Selector func(src, dst graph.NodeID) graph.Path

// Pair is one (source, destination) routing request.
type Pair struct {
	Src, Dst graph.NodeID
}

// Build applies the selector to every pair with Src != Dst and returns the
// resulting collection. Pairs with Src == Dst are skipped (nothing to
// route).
func Build(g *graph.Graph, pairs []Pair, sel Selector) (*Collection, error) {
	ps := make([]graph.Path, 0, len(pairs))
	for _, pr := range pairs {
		if pr.Src == pr.Dst {
			continue
		}
		p := sel(pr.Src, pr.Dst)
		if p == nil {
			return nil, fmt.Errorf("paths: selector returned nil for %d->%d", pr.Src, pr.Dst)
		}
		ps = append(ps, p)
	}
	return NewCollection(g, ps)
}

// DimOrderMesh returns the dimension-order (e-cube) selector for a mesh:
// the path corrects coordinates dimension by dimension, lowest dimension
// first. Every produced path is a shortest path, so every collection built
// from this selector is short-cut free.
func DimOrderMesh(m *topology.Mesh) Selector {
	return func(src, dst graph.NodeID) graph.Path {
		cs, cd := m.Coord(src), m.Coord(dst)
		p := graph.Path{src}
		cur := append([]int(nil), cs...)
		for d := 0; d < m.Dims(); d++ {
			step := 1
			if cd[d] < cur[d] {
				step = -1
			}
			for cur[d] != cd[d] {
				cur[d] += step
				p = append(p, m.NodeAt(cur))
			}
		}
		return p
	}
}

// DimOrderTorus returns the dimension-order selector for a torus, taking
// the shorter wrap direction in each dimension (positive direction on
// ties). Every path is a torus shortest path, hence collections are
// short-cut free; the selector is translation-invariant, making it the
// constructive path system behind Theorem 1.5 on tori.
func DimOrderTorus(t *topology.Torus) Selector {
	side := t.Side()
	return func(src, dst graph.NodeID) graph.Path {
		cs, cd := t.Coord(src), t.Coord(dst)
		p := graph.Path{src}
		cur := append([]int(nil), cs...)
		for d := 0; d < t.Dims(); d++ {
			fwd := (cd[d] - cur[d] + side) % side
			step := 1
			steps := fwd
			if fwd > side-fwd {
				step = -1
				steps = side - fwd
			}
			for k := 0; k < steps; k++ {
				cur[d] = ((cur[d]+step)%side + side) % side
				p = append(p, t.NodeAt(cur))
			}
		}
		return p
	}
}

// BitFixing returns the bit-fixing selector for a hypercube: correct
// differing address bits from lowest to highest. Paths are shortest, so
// collections are short-cut free; the selector is XOR-translation
// invariant.
func BitFixing(h *topology.Hypercube) Selector {
	dim := h.Dim()
	return func(src, dst graph.NodeID) graph.Path {
		p := graph.Path{src}
		cur := src
		for b := 0; b < dim; b++ {
			if (cur^dst)&(1<<b) != 0 {
				cur ^= 1 << b
				p = append(p, cur)
			}
		}
		return p
	}
}

// ButterflySelector returns the unique input-output path selector of the
// plain butterfly (Theorem 1.7). src must be a level-0 node and dst a
// level-k node; the selector panics otherwise. The resulting collections
// are leveled by construction.
func ButterflySelector(b *topology.Butterfly) Selector {
	return func(src, dst graph.NodeID) graph.Path {
		if b.LevelOf(src) != 0 {
			panic(fmt.Sprintf("paths: butterfly source %d not at level 0", src))
		}
		if b.LevelOf(dst) != b.Dim() {
			panic(fmt.Sprintf("paths: butterfly destination %d not at level %d", dst, b.Dim()))
		}
		return b.UniquePath(b.RowOf(src), b.RowOf(dst))
	}
}

// TranslationSystem returns a translation-invariant selector for a
// vertex-transitive network: a canonical shortest path from node 0 to each
// difference class is fixed once (via BFS), and the path from src to dst
// is the image of the canonical path to phi^-1(dst) under the automorphism
// phi mapping 0 to src. This realizes, constructively, the path system
// from [27] used by Theorem 1.5: by symmetry every edge has the same
// expected load under a random function, which is at most the dilation D.
//
// The canonical paths form a BFS tree from node 0, and images of shortest
// paths are shortest paths, so the resulting collections are short-cut
// free.
func TranslationSystem(vt topology.VertexTransitive) Selector {
	g := vt.Graph()
	n := g.NumNodes()
	canonical := make([]graph.Path, n)
	for v := 0; v < n; v++ {
		canonical[v] = g.ShortestPath(0, v)
		if canonical[v] == nil {
			panic("paths: TranslationSystem requires a connected network")
		}
	}
	// The inverse permutation of each source's automorphism is computed
	// once and cached, so building a whole collection costs O(n) per
	// distinct source rather than O(n) per pair.
	type entry struct {
		phi func(graph.NodeID) graph.NodeID
		inv []graph.NodeID
	}
	cache := make(map[graph.NodeID]entry)
	lookup := func(src graph.NodeID) entry {
		if e, ok := cache[src]; ok {
			return e
		}
		phi := vt.AutomorphismTo(src)
		inv := make([]graph.NodeID, n)
		for c := 0; c < n; c++ {
			inv[phi(c)] = c
		}
		e := entry{phi: phi, inv: inv}
		cache[src] = e
		return e
	}
	return func(src, dst graph.NodeID) graph.Path {
		e := lookup(src)
		base := canonical[e.inv[dst]]
		img := make(graph.Path, len(base))
		for i, u := range base {
			img[i] = e.phi(u)
		}
		return img
	}
}

// BFSSelector returns a generic shortest-path selector with deterministic
// tie-breaking, usable on any connected network. Collections built from it
// are short-cut free (all paths are shortest paths).
func BFSSelector(g *graph.Graph) Selector {
	return func(src, dst graph.NodeID) graph.Path {
		p := g.ShortestPath(src, dst)
		if p == nil {
			panic(fmt.Sprintf("paths: no path %d->%d", src, dst))
		}
		return p
	}
}

// RandomShortestPath returns a selector that picks, per request, a
// uniformly random shortest path by randomized backtracking over the BFS
// distance field. Collections remain short-cut free (shortest paths) while
// spreading load more evenly than deterministic tie-breaking.
func RandomShortestPath(g *graph.Graph, src *rng.Source) Selector {
	return func(s, d graph.NodeID) graph.Path {
		distToD := g.BFS(d)
		if distToD[s] < 0 {
			panic(fmt.Sprintf("paths: no path %d->%d", s, d))
		}
		p := graph.Path{s}
		cur := s
		for cur != d {
			var choices []graph.NodeID
			for _, v := range g.Neighbors(cur) {
				if distToD[v] == distToD[cur]-1 {
					choices = append(choices, v)
				}
			}
			cur = choices[src.Intn(len(choices))]
			p = append(p, cur)
		}
		return p
	}
}

// Valiant returns the two-phase randomized selector: route to a uniformly
// random intermediate node by the inner selector, then to the destination.
// The concatenation is generally not a shortest path and may not be
// short-cut free; it is provided as the classic load-balancing baseline.
func Valiant(g *graph.Graph, inner Selector, src *rng.Source) Selector {
	n := g.NumNodes()
	return func(s, d graph.NodeID) graph.Path {
		mid := src.Intn(n)
		first := inner(s, mid)
		second := inner(mid, d)
		out := append(graph.Path{}, first...)
		return append(out, second[1:]...)
	}
}

// RandomDimOrder returns a selector for a torus that corrects the
// dimensions in a per-request random order (still taking the shorter wrap
// per dimension). Paths remain shortest — hence collections remain
// short-cut free — while the randomized order spreads load off the
// deterministic e-cube hot edges, the classic decongestion variant.
func RandomDimOrder(t *topology.Torus, src *rng.Source) Selector {
	side := t.Side()
	return func(srcN, dst graph.NodeID) graph.Path {
		cs, cd := t.Coord(srcN), t.Coord(dst)
		order := src.Perm(t.Dims())
		p := graph.Path{srcN}
		cur := append([]int(nil), cs...)
		for _, d := range order {
			fwd := (cd[d] - cur[d] + side) % side
			step := 1
			steps := fwd
			if fwd > side-fwd {
				step = -1
				steps = side - fwd
			}
			for k := 0; k < steps; k++ {
				cur[d] = ((cur[d]+step)%side + side) % side
				p = append(p, t.NodeAt(cur))
			}
		}
		return p
	}
}

// EdgeLoadStats estimates, by Monte-Carlo over random functions, the mean
// and maximum expected load a selector places on a directed link. The
// path system of [27] behind Theorem 1.5 has expected load at most the
// diameter D on every link under a random function; use this to check a
// selector empirically.
func EdgeLoadStats(g *graph.Graph, sel Selector, trials int, src *rng.Source) (meanLoad, maxLoad float64) {
	if trials < 1 {
		trials = 1
	}
	n := g.NumNodes()
	counts := make([]float64, g.NumLinks())
	for t := 0; t < trials; t++ {
		for s := 0; s < n; s++ {
			d := src.Intn(n)
			if d == s {
				continue
			}
			for _, id := range sel(s, d).Links(g) {
				counts[id]++
			}
		}
	}
	total := 0.0
	for _, c := range counts {
		load := c / float64(trials)
		total += load
		if load > maxLoad {
			maxLoad = load
		}
	}
	meanLoad = total / float64(len(counts))
	return meanLoad, maxLoad
}
