package paths

import (
	"sort"

	"repro/internal/graph"
)

// LevelAssignment attempts to assign a level to every node used by the
// collection such that every directed link of every path leads from a node
// at level i to one at level i+1 (the paper's definition of a leveled path
// collection). It returns the assignment (levels for unused nodes are 0)
// and whether one exists. Levels within each connected component of the
// constraint graph are shifted so their minimum is 0.
func (c *Collection) LevelAssignment() (levels []int, ok bool) {
	g := c.g
	n := g.NumNodes()
	levels = make([]int, n)
	assigned := make([]bool, n)

	// Constraint adjacency: for each link u->v used by some path,
	// level(v) = level(u)+1. Build from the collection's links only.
	c.ensureLinkUsers()
	type constraint struct {
		to    graph.NodeID
		delta int
	}
	// Iterate links in sorted ID order (the map's random order would vary
	// the BFS visit order below; the levels are forced either way, but the
	// traversal should be deterministic by construction).
	ids := make([]graph.LinkID, 0, len(c.linkUsers))
	for id := range c.linkUsers {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	adj := make(map[graph.NodeID][]constraint)
	for _, id := range ids {
		l := g.Link(id)
		adj[l.From] = append(adj[l.From], constraint{to: l.To, delta: 1})
		adj[l.To] = append(adj[l.To], constraint{to: l.From, delta: -1})
	}

	for s := 0; s < n; s++ {
		start := graph.NodeID(s)
		if _, ok := adj[start]; !ok {
			continue
		}
		if assigned[start] {
			continue
		}
		// BFS the constraint component with relative levels.
		assigned[start] = true
		levels[start] = 0
		comp := []graph.NodeID{start}
		queue := []graph.NodeID{start}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, cs := range adj[u] {
				want := levels[u] + cs.delta
				if !assigned[cs.to] {
					assigned[cs.to] = true
					levels[cs.to] = want
					comp = append(comp, cs.to)
					queue = append(queue, cs.to)
				} else if levels[cs.to] != want {
					return nil, false
				}
			}
		}
		// Shift the component to non-negative levels starting at 0.
		min := levels[comp[0]]
		for _, u := range comp {
			if levels[u] < min {
				min = levels[u]
			}
		}
		for _, u := range comp {
			levels[u] -= min
		}
	}
	return levels, true
}

// IsLeveled reports whether the collection admits a level assignment.
func (c *Collection) IsLeveled() bool {
	_, ok := c.LevelAssignment()
	return ok
}

// IsShortCutFree checks the paper's exact definition: no subpath of a path
// is short-cut by a subpath of another path in the collection. Formally,
// for any two paths p and q (including p = q at distinct positions) and
// nodes u, v visited in that order by both, the traversed lengths must be
// equal — a strictly shorter q-subpath would short-cut p's.
//
// The check visits only pairs of paths that share a node, but is quadratic
// in the number of common-node occurrences of a pair; use it on the
// moderate collections of the experiments, not on huge ones.
func (c *Collection) IsShortCutFree() bool {
	// Node -> list of (path index, position) occurrences.
	type occ struct{ path, pos int }
	occs := make(map[graph.NodeID][]occ)
	for i, p := range c.paths {
		for pos, u := range p {
			occs[u] = append(occs[u], occ{path: i, pos: pos})
		}
	}
	// Candidate path pairs: those sharing at least one node.
	type pair struct{ a, b int }
	cand := make(map[pair]bool)
	//optlint:allow mapiter order-independent candidate-set build
	for _, os := range occs {
		for x := 0; x < len(os); x++ {
			for y := 0; y < len(os); y++ {
				if x == y {
					continue
				}
				cand[pair{os[x].path, os[y].path}] = true
			}
		}
	}
	// Self pairs for non-simple paths can self-short-cut.
	for i, p := range c.paths {
		if !p.IsSimple() {
			cand[pair{i, i}] = true
		}
	}
	//optlint:allow mapiter pure conjunctive predicate: result independent of visit order
	for pr := range cand {
		if !shortcutFreePair(c.paths[pr.a], c.paths[pr.b], pr.a == pr.b) {
			return false
		}
	}
	return true
}

// shortcutFreePair reports whether no subpath of p is short-cut by a
// subpath of q. When self is true, p and q are the same path and identical
// subpaths are skipped.
func shortcutFreePair(p, q graph.Path, self bool) bool {
	// Positions of each node in q.
	posQ := make(map[graph.NodeID][]int)
	for j, u := range q {
		posQ[u] = append(posQ[u], j)
	}
	// For every ordered pair of positions (i1 < i2) in p whose nodes both
	// occur in q in the same order, compare lengths.
	for i1 := 0; i1 < len(p); i1++ {
		q1s, ok := posQ[p[i1]]
		if !ok {
			continue
		}
		for i2 := i1 + 1; i2 < len(p); i2++ {
			q2s, ok := posQ[p[i2]]
			if !ok {
				continue
			}
			lenP := i2 - i1
			for _, j1 := range q1s {
				for _, j2 := range q2s {
					if j2 <= j1 {
						continue
					}
					if self && j1 == i1 && j2 == i2 {
						continue
					}
					if j2-j1 < lenP {
						return false
					}
				}
			}
		}
	}
	return true
}

// MeetSeparateMeetFree reports whether no two distinct paths meet,
// separate, and meet again (tracking node visits in order). The paper
// notes a collection is always short-cut free if this holds, and that it
// holds for most practical path systems.
func (c *Collection) MeetSeparateMeetFree() bool {
	ok := true
	c.SharePairs(func(i, j int) {
		if !ok {
			return
		}
		if meetsSeparatesMeets(c.paths[i], c.paths[j]) {
			ok = false
		}
	})
	if !ok {
		return false
	}
	// SharePairs only visits pairs sharing a link; meet-separate-meet can
	// also happen via shared nodes without shared links, so scan node-based
	// candidates as well.
	type pair struct{ a, b int }
	seen := make(map[pair]bool)
	occ := make(map[graph.NodeID][]int)
	for i, p := range c.paths {
		for _, u := range p {
			occ[u] = append(occ[u], i)
		}
	}
	//optlint:allow mapiter pure conjunctive predicate: result independent of visit order
	for _, ps := range occ {
		for x := 0; x < len(ps); x++ {
			for y := x + 1; y < len(ps); y++ {
				a, b := ps[x], ps[y]
				if a == b {
					continue
				}
				if a > b {
					a, b = b, a
				}
				pr := pair{a, b}
				if seen[pr] {
					continue
				}
				seen[pr] = true
				if meetsSeparatesMeets(c.paths[a], c.paths[b]) {
					return false
				}
			}
		}
	}
	return true
}

// meetsSeparatesMeets reports whether p and q share a node, then visit
// non-shared nodes, then share a node again — scanning p in order against
// membership in q.
func meetsSeparatesMeets(p, q graph.Path) bool {
	inQ := make(map[graph.NodeID]bool, len(q))
	for _, u := range q {
		inQ[u] = true
	}
	met, separated := false, false
	for _, u := range p {
		if inQ[u] {
			if met && separated {
				return true
			}
			met = true
		} else if met {
			separated = true
		}
	}
	return false
}
