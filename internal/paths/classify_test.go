package paths

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/topology"
)

func TestLevelAssignmentChain(t *testing.T) {
	g := lineGraph(5)
	c := MustCollection(g, []graph.Path{{0, 1, 2}, {2, 3, 4}})
	levels, ok := c.LevelAssignment()
	if !ok {
		t.Fatal("chain collection should be leveled")
	}
	for i := 0; i+1 < 5; i++ {
		if levels[i+1] != levels[i]+1 {
			t.Fatalf("levels not consecutive: %v", levels)
		}
	}
	if levels[0] != 0 {
		t.Errorf("component minimum should be 0: %v", levels)
	}
}

func TestLevelAssignmentConflict(t *testing.T) {
	// Two paths traversing the same edge in opposite directions force
	// level(v) = level(u)+1 and level(u) = level(v)+1 simultaneously.
	g := lineGraph(3)
	c := MustCollection(g, []graph.Path{{0, 1}, {1, 0}})
	if c.IsLeveled() {
		t.Fatal("opposite directions over one edge cannot be leveled")
	}
}

func TestLevelAssignmentOddCycle(t *testing.T) {
	// Going around an odd cycle in one direction: levels must increase by
	// 1 each step around a cycle of length 5 -> conflict.
	g := topology.NewRing(5).Graph()
	c := MustCollection(g, []graph.Path{{0, 1, 2, 3, 4, 0}})
	if c.IsLeveled() {
		t.Fatal("directed cycle cannot be leveled")
	}
}

func TestButterflyCollectionIsLeveled(t *testing.T) {
	b := topology.NewButterfly(3)
	src := rng.New(1)
	prs := ButterflyRandomQFunction(b, 2, src)
	c, err := Build(b.Graph(), prs, ButterflySelector(b))
	if err != nil {
		t.Fatal(err)
	}
	levels, ok := c.LevelAssignment()
	if !ok {
		t.Fatal("butterfly unique-path collection must be leveled")
	}
	// Levels must agree with butterfly levels on used nodes.
	for i := 0; i < c.Size(); i++ {
		for _, u := range c.Path(i) {
			if levels[u] != b.LevelOf(u) {
				t.Fatalf("node %d: assigned level %d, butterfly level %d",
					u, levels[u], b.LevelOf(u))
			}
		}
	}
}

func TestMeshDimOrderNotNecessarilyLeveled(t *testing.T) {
	// Opposite-direction traffic on a mesh breaks leveling.
	m := topology.NewMesh(1, 4)
	c, err := Build(m.Graph(), []Pair{{Src: 0, Dst: 3}, {Src: 3, Dst: 0}}, DimOrderMesh(m))
	if err != nil {
		t.Fatal(err)
	}
	if c.IsLeveled() {
		t.Fatal("bidirectional chain traffic should not be leveled")
	}
}

func TestIsShortCutFreeBasic(t *testing.T) {
	g := lineGraph(6)
	c := MustCollection(g, []graph.Path{{0, 1, 2, 3}, {1, 2, 3, 4}})
	if !c.IsShortCutFree() {
		t.Fatal("overlapping chain subpaths are not shortcuts")
	}
}

func TestIsShortCutFreeViolation(t *testing.T) {
	// p goes u ... v the long way; q goes u -> v directly.
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(0, 3) // chord
	c := MustCollection(g, []graph.Path{{0, 1, 2, 3}, {0, 3}})
	if c.IsShortCutFree() {
		t.Fatal("chord path short-cuts the long path; must be detected")
	}
}

func TestIsShortCutFreeDirectionMatters(t *testing.T) {
	// q visits v before u, so it does not short-cut p's u..v subpath.
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(0, 3)
	c := MustCollection(g, []graph.Path{{0, 1, 2, 3}, {3, 0}})
	if !c.IsShortCutFree() {
		t.Fatal("reverse-direction chord is not a shortcut")
	}
}

func TestSelfShortcutNonSimplePath(t *testing.T) {
	// A non-simple path that revisits a node with a shorter return leg
	// short-cuts itself: 0-1-2-0 has subpath 0..0? Use 0-1-2-3-1: the
	// subpath 1..1 (length 3) is "short-cut" by the trivial... build a
	// clear case: p = 0-1-2-3 and also q = 0-1-2-3 via p=q: no violation.
	// Non-simple: 0-1-2-0-3: subpath from 1 to 0 has length 2; within the
	// same path the edge 0->... there is no shorter 1..0 subpath, so it is
	// fine. Construct a true self-shortcut: 0-1-2-3-0-1 where the second
	// visit to 1 gives subpath 0..1 of length 1 shortcutting nothing, but
	// subpath 1..0 (positions 1..4, length 3) vs ... we need two u..v
	// subpaths of different lengths: node 0 at positions 0 and 4, node 1
	// at positions 1 and 5: subpath 0..1 appears with lengths 1 (pos 0->1),
	// 5 (pos 0->5), and 1 (pos 4->5): lengths differ -> self-shortcut.
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 0)
	c := MustCollection(g, []graph.Path{{0, 1, 2, 3, 0, 1}})
	if c.IsShortCutFree() {
		t.Fatal("self-shortcut through repeated visits must be detected")
	}
}

func TestShortestPathCollectionsAreShortCutFree(t *testing.T) {
	// Property: any collection of shortest paths is short-cut free,
	// because subpaths of shortest paths are shortest.
	tor := topology.NewTorus(2, 5)
	src := rng.New(9)
	check := func(seed uint16) bool {
		s := rng.New(uint64(seed))
		prs := RandomFunction(tor.Graph().NumNodes(), s)[:10]
		c, err := Build(tor.Graph(), prs, BFSSelector(tor.Graph()))
		if err != nil {
			return false
		}
		return c.IsShortCutFree()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
	_ = src
}

func TestDimOrderTorusShortCutFree(t *testing.T) {
	tor := topology.NewTorus(2, 6)
	src := rng.New(12)
	prs := RandomPermutation(tor.Graph().NumNodes(), src)
	c, err := Build(tor.Graph(), prs, DimOrderTorus(tor))
	if err != nil {
		t.Fatal(err)
	}
	if !c.IsShortCutFree() {
		t.Fatal("dimension-order torus paths must be short-cut free")
	}
}

func TestMeetSeparateMeetFree(t *testing.T) {
	g := lineGraph(8)
	ok := MustCollection(g, []graph.Path{{0, 1, 2, 3}, {2, 3, 4}})
	if !ok.MeetSeparateMeetFree() {
		t.Error("single contiguous overlap misdetected")
	}
	// Meet at 1, separate, meet again at 3 via a detour.
	g2 := graph.New(6)
	g2.AddEdge(0, 1)
	g2.AddEdge(1, 2)
	g2.AddEdge(2, 3)
	g2.AddEdge(3, 4)
	g2.AddEdge(1, 5)
	g2.AddEdge(5, 3)
	bad := MustCollection(g2, []graph.Path{{0, 1, 2, 3, 4}, {1, 5, 3}})
	if bad.MeetSeparateMeetFree() {
		t.Error("meet-separate-meet not detected")
	}
	// Meet-separate-meet implies a potential shortcut here (2 vs 2 equal
	// length: actually both 1..3 subpaths have length 2 -> still shortcut
	// free). Check consistency:
	if !bad.IsShortCutFree() {
		t.Error("equal-length detour is not a shortcut")
	}
}

func TestButterflyQFunctionShortCutFree(t *testing.T) {
	b := topology.NewButterfly(3)
	src := rng.New(4)
	prs := ButterflyRandomQFunction(b, 1, src)
	c, err := Build(b.Graph(), prs, ButterflySelector(b))
	if err != nil {
		t.Fatal(err)
	}
	if !c.IsShortCutFree() {
		t.Error("butterfly unique paths must be short-cut free")
	}
}

func TestLeveledImpliesConsistentOnSharedStructure(t *testing.T) {
	// Identical paths: leveled and shortcut-free.
	g := lineGraph(5)
	ps := []graph.Path{{0, 1, 2, 3}, {0, 1, 2, 3}, {0, 1, 2, 3}}
	c := MustCollection(g, ps)
	if !c.IsLeveled() || !c.IsShortCutFree() {
		t.Error("identical paths must be leveled and shortcut free")
	}
}
