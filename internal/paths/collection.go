// Package paths implements path collections — the routing problems of the
// paper. A path collection P is a multiset of paths in a network; the
// Trial-and-Failure protocol routes one worm along each path of P.
//
// The package provides the paper's problem parameters (size n, dilation D,
// path congestion C-tilde), the classification predicates (leveled,
// short-cut free), the path-selection strategies used by the application
// theorems (dimension-order for meshes/tori, bit-fixing for hypercubes,
// unique butterfly paths, translation-invariant systems for node-symmetric
// networks), and the standard workload generators (permutations, random
// functions, random q-functions).
package paths

import (
	"fmt"
	"sync"

	"repro/internal/graph"
)

// Collection is a multiset of validated paths in one network. The lazy
// metric caches are guarded, so a Collection may be shared by concurrent
// readers (e.g. parallel Monte-Carlo trials).
type Collection struct {
	g     *graph.Graph
	paths []graph.Path

	mu        sync.Mutex
	linkUsers map[graph.LinkID][]int // lazy: link -> indices of paths using it
	links     [][]graph.LinkID       // lazy: per-path link IDs
}

// NewCollection validates every path against g and returns the collection.
// Paths of length zero (single nodes) are rejected: a worm needs at least
// one link to traverse.
func NewCollection(g *graph.Graph, ps []graph.Path) (*Collection, error) {
	for i, p := range ps {
		if err := p.Validate(g); err != nil {
			return nil, fmt.Errorf("paths: path %d invalid: %w", i, err)
		}
		if p.Len() == 0 {
			return nil, fmt.Errorf("paths: path %d has zero length", i)
		}
	}
	return &Collection{g: g, paths: ps}, nil
}

// MustCollection is NewCollection that panics on error; intended for
// generators whose output is correct by construction.
func MustCollection(g *graph.Graph, ps []graph.Path) *Collection {
	c, err := NewCollection(g, ps)
	if err != nil {
		panic(err)
	}
	return c
}

// Graph returns the underlying network.
func (c *Collection) Graph() *graph.Graph { return c.g }

// Size returns n, the number of paths (and of worms to route).
func (c *Collection) Size() int { return len(c.paths) }

// Path returns the i-th path. The caller must not modify it.
func (c *Collection) Path(i int) graph.Path { return c.paths[i] }

// Paths returns the backing slice. The caller must not modify it.
func (c *Collection) Paths() []graph.Path { return c.paths }

// PathLinks returns the directed link IDs of path i (cached).
func (c *Collection) PathLinks(i int) []graph.LinkID {
	c.ensureLinks()
	return c.links[i]
}

func (c *Collection) ensureLinks() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ensureLinksLocked()
}

func (c *Collection) ensureLinksLocked() {
	if c.links != nil {
		return
	}
	c.links = make([][]graph.LinkID, len(c.paths))
	for i, p := range c.paths {
		c.links[i] = p.Links(c.g)
	}
}

func (c *Collection) ensureLinkUsers() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.linkUsers != nil {
		return
	}
	c.ensureLinksLocked()
	c.linkUsers = make(map[graph.LinkID][]int)
	for i, ids := range c.links {
		for _, id := range ids {
			c.linkUsers[id] = append(c.linkUsers[id], i)
		}
	}
}

// Dilation returns D, the number of links of the longest path (0 for an
// empty collection).
func (c *Collection) Dilation() int {
	d := 0
	for _, p := range c.paths {
		if l := p.Len(); l > d {
			d = l
		}
	}
	return d
}

// EdgeCongestion returns the commonly used congestion: the maximum, over
// all directed links, of the number of paths using that link. (The paper
// points out this is *not* its C-tilde; see PathCongestion.)
func (c *Collection) EdgeCongestion() int {
	c.ensureLinkUsers()
	max := 0
	//optlint:allow mapiter order-independent max-reduction
	for _, users := range c.linkUsers {
		if len(users) > max {
			max = len(users)
		}
	}
	return max
}

// PathCongestion returns C-tilde, the paper's path congestion: the maximum
// over all paths p of the number of paths that share a directed link with
// p, counting p itself. (Counting p itself makes a structure of k
// identical paths have path congestion exactly k, matching the paper's
// type-2 lower-bound structures.) A collection of pairwise link-disjoint
// paths has path congestion 1.
func (c *Collection) PathCongestion() int {
	cong := c.PathCongestions()
	max := 0
	for _, k := range cong {
		if k > max {
			max = k
		}
	}
	return max
}

// PathCongestions returns, for every path p, the number of paths sharing a
// directed link with p (including p itself).
func (c *Collection) PathCongestions() []int {
	c.ensureLinkUsers()
	out := make([]int, len(c.paths))
	mark := make([]int, len(c.paths)) // mark[j] = i+1 when j already counted for path i
	for i := range c.paths {
		count := 0
		for _, id := range c.links[i] {
			for _, j := range c.linkUsers[id] {
				if mark[j] != i+1 {
					mark[j] = i + 1
					count++
				}
			}
		}
		out[i] = count
	}
	return out
}

// LinkUsers returns the indices of paths using the given directed link.
// The caller must not modify the result.
func (c *Collection) LinkUsers(id graph.LinkID) []int {
	c.ensureLinkUsers()
	return c.linkUsers[id]
}

// SharePairs calls fn for every unordered pair (i, j), i < j, of distinct
// paths that share at least one directed link. Each pair is reported once,
// in a deterministic order: ascending i, then the order in which j's
// shared links appear along path i.
func (c *Collection) SharePairs(fn func(i, j int)) {
	c.ensureLinkUsers()
	seen := make(map[uint64]bool)
	for i := range c.paths {
		for _, id := range c.links[i] {
			for _, j := range c.linkUsers[id] {
				if j <= i {
					continue
				}
				key := uint64(i)<<32 | uint64(uint32(j))
				if !seen[key] {
					seen[key] = true
					fn(i, j)
				}
			}
		}
	}
}

// Stats summarizes the paper's problem parameters for a collection.
type Stats struct {
	N              int // number of paths
	Dilation       int // D
	EdgeCongestion int // max paths per directed link
	PathCongestion int // C-tilde
	Leveled        bool
	ShortCutFree   bool
}

// ComputeStats evaluates all parameters. The short-cut free check is
// quadratic in the number of interacting path pairs; for very large
// collections prefer calling the individual accessors.
func (c *Collection) ComputeStats() Stats {
	return Stats{
		N:              c.Size(),
		Dilation:       c.Dilation(),
		EdgeCongestion: c.EdgeCongestion(),
		PathCongestion: c.PathCongestion(),
		Leveled:        c.IsLeveled(),
		ShortCutFree:   c.IsShortCutFree(),
	}
}

// String renders the stats in one line.
func (s Stats) String() string {
	return fmt.Sprintf("n=%d D=%d C=%d C~=%d leveled=%t shortcutfree=%t",
		s.N, s.Dilation, s.EdgeCongestion, s.PathCongestion, s.Leveled, s.ShortCutFree)
}

// Subset returns a new collection containing the paths at the given
// indices (in the given order, duplicates allowed). It shares the path
// slices with the parent but computes its own metrics.
func (c *Collection) Subset(indices []int) *Collection {
	ps := make([]graph.Path, len(indices))
	for i, idx := range indices {
		ps[i] = c.paths[idx]
	}
	return &Collection{g: c.g, paths: ps}
}
