package paths

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/topology"
)

func TestBuildSkipsFixedPoints(t *testing.T) {
	g := lineGraph(4)
	c, err := Build(g, []Pair{{0, 0}, {0, 3}, {2, 2}}, BFSSelector(g))
	if err != nil {
		t.Fatal(err)
	}
	if c.Size() != 1 {
		t.Fatalf("size = %d, want 1 (fixed points skipped)", c.Size())
	}
}

func TestBuildRejectsNilSelector(t *testing.T) {
	g := lineGraph(3)
	if _, err := Build(g, []Pair{{0, 2}}, func(s, d graph.NodeID) graph.Path { return nil }); err == nil {
		t.Fatal("nil selector result accepted")
	}
}

func TestDimOrderMesh(t *testing.T) {
	m := topology.NewMesh(2, 4)
	sel := DimOrderMesh(m)
	p := sel(m.NodeAt([]int{0, 0}), m.NodeAt([]int{3, 2}))
	if p.Len() != 5 {
		t.Fatalf("path length = %d, want 5 (L1 distance)", p.Len())
	}
	if err := p.Validate(m.Graph()); err != nil {
		t.Fatal(err)
	}
	// First dimension corrected first.
	if m.Coord(p[1])[0] != 1 || m.Coord(p[1])[1] != 0 {
		t.Errorf("second node = %v, want [1 0]", m.Coord(p[1]))
	}
	// Negative direction too.
	p2 := sel(m.NodeAt([]int{3, 3}), m.NodeAt([]int{0, 0}))
	if p2.Len() != 6 {
		t.Errorf("reverse path length = %d, want 6", p2.Len())
	}
}

func TestDimOrderMeshIsShortest(t *testing.T) {
	m := topology.NewMesh(2, 5)
	g := m.Graph()
	sel := DimOrderMesh(m)
	check := func(a, b uint8) bool {
		s, d := int(a)%25, int(b)%25
		if s == d {
			return true
		}
		p := sel(s, d)
		return p.Validate(g) == nil && p.Len() == g.BFS(s)[d]
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDimOrderTorusIsShortest(t *testing.T) {
	tor := topology.NewTorus(2, 5)
	g := tor.Graph()
	sel := DimOrderTorus(tor)
	check := func(a, b uint8) bool {
		s, d := int(a)%25, int(b)%25
		if s == d {
			return true
		}
		p := sel(s, d)
		return p.Validate(g) == nil && p.Len() == g.BFS(s)[d]
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDimOrderTorusWrap(t *testing.T) {
	tor := topology.NewTorus(1, 6)
	sel := DimOrderTorus(tor)
	// 0 -> 5 should wrap backwards in 1 step.
	p := sel(0, 5)
	if p.Len() != 1 {
		t.Fatalf("0->5 on ring6: length %d, want 1 (wrap)", p.Len())
	}
	// 0 -> 3 tie: positive direction chosen.
	p2 := sel(0, 3)
	if p2.Len() != 3 || p2[1] != 1 {
		t.Errorf("tie not broken positively: %v", p2)
	}
}

func TestBitFixing(t *testing.T) {
	h := topology.NewHypercube(4)
	g := h.Graph()
	sel := BitFixing(h)
	p := sel(0b0000, 0b1011)
	if p.Len() != 3 {
		t.Fatalf("path length = %d, want 3 (Hamming distance)", p.Len())
	}
	if err := p.Validate(g); err != nil {
		t.Fatal(err)
	}
	// Bits fixed lowest first.
	if p[1] != 0b0001 || p[2] != 0b0011 || p[3] != 0b1011 {
		t.Errorf("bit-fixing order wrong: %v", p)
	}
}

func TestBitFixingIsShortestProperty(t *testing.T) {
	h := topology.NewHypercube(5)
	g := h.Graph()
	sel := BitFixing(h)
	check := func(a, b uint8) bool {
		s, d := int(a)%32, int(b)%32
		if s == d {
			return true
		}
		p := sel(s, d)
		return p.Validate(g) == nil && p.Len() == g.BFS(s)[d]
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestButterflySelectorPanics(t *testing.T) {
	b := topology.NewButterfly(3)
	sel := ButterflySelector(b)
	for name, f := range map[string]func(){
		"src not level 0": func() { sel(b.Node(1, 0), b.Node(3, 0)) },
		"dst not level k": func() { sel(b.Node(0, 0), b.Node(2, 0)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestTranslationSystemTorus(t *testing.T) {
	tor := topology.NewTorus(2, 5)
	g := tor.Graph()
	sel := TranslationSystem(tor)
	check := func(a, b uint8) bool {
		s, d := int(a)%25, int(b)%25
		if s == d {
			return true
		}
		p := sel(s, d)
		return p.Validate(g) == nil &&
			p.Source() == s && p.Dest() == d &&
			p.Len() == g.BFS(s)[d]
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTranslationSystemTranslationInvariance(t *testing.T) {
	tor := topology.NewTorus(2, 4)
	sel := TranslationSystem(tor)
	// The path s->d must be the translate of the path 0->(d-s).
	s := tor.NodeAt([]int{1, 2})
	d := tor.NodeAt([]int{3, 3})
	diff := tor.NodeAt([]int{(3 - 1 + 4) % 4, (3 - 2 + 4) % 4})
	phi := tor.AutomorphismTo(s)
	base := sel(0, diff)
	img := sel(s, d)
	if len(base) != len(img) {
		t.Fatal("translated path has different length")
	}
	for i := range base {
		if phi(base[i]) != img[i] {
			t.Fatalf("position %d: translate mismatch", i)
		}
	}
}

func TestTranslationSystemHypercube(t *testing.T) {
	h := topology.NewHypercube(4)
	g := h.Graph()
	sel := TranslationSystem(h)
	src := rng.New(5)
	prs := RandomFunction(g.NumNodes(), src)
	c, err := Build(g, prs, sel)
	if err != nil {
		t.Fatal(err)
	}
	if !c.IsShortCutFree() {
		t.Error("translation system (shortest paths) must be shortcut free")
	}
}

func TestBFSSelectorUnreachablePanics(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1)
	sel := BFSSelector(g)
	defer func() {
		if recover() == nil {
			t.Fatal("unreachable destination did not panic")
		}
	}()
	sel(0, 2)
}

func TestRandomShortestPath(t *testing.T) {
	tor := topology.NewTorus(2, 5)
	g := tor.Graph()
	src := rng.New(33)
	sel := RandomShortestPath(g, src)
	for i := 0; i < 50; i++ {
		s, d := src.Intn(25), src.Intn(25)
		if s == d {
			continue
		}
		p := sel(s, d)
		if err := p.Validate(g); err != nil {
			t.Fatal(err)
		}
		if p.Len() != g.BFS(s)[d] {
			t.Fatalf("random shortest path %d->%d not shortest", s, d)
		}
	}
}

func TestValiant(t *testing.T) {
	m := topology.NewMesh(2, 4)
	g := m.Graph()
	src := rng.New(21)
	sel := Valiant(g, DimOrderMesh(m), src)
	for i := 0; i < 30; i++ {
		s, d := src.Intn(16), src.Intn(16)
		if s == d {
			continue
		}
		p := sel(s, d)
		if err := p.Validate(g); err != nil {
			t.Fatal(err)
		}
		if p.Source() != s || p.Dest() != d {
			t.Fatalf("valiant endpoints wrong: %v for %d->%d", p, s, d)
		}
	}
}

func TestWorkloadGenerators(t *testing.T) {
	src := rng.New(2)
	perm := RandomPermutation(10, src)
	if len(perm) != 10 {
		t.Fatal("permutation size")
	}
	seen := make([]bool, 10)
	for _, pr := range perm {
		if seen[pr.Dst] {
			t.Fatal("permutation repeats a destination")
		}
		seen[pr.Dst] = true
	}
	fn := RandomFunction(10, src)
	if len(fn) != 10 {
		t.Fatal("function size")
	}
	for i, pr := range fn {
		if pr.Src != i || pr.Dst < 0 || pr.Dst >= 10 {
			t.Fatalf("function pair %d: %+v", i, pr)
		}
	}
	qf := RandomQFunction(3, 10, src)
	if len(qf) != 30 {
		t.Fatal("q-function size")
	}
	counts := make([]int, 10)
	for _, pr := range qf {
		counts[pr.Src]++
	}
	for i, c := range counts {
		if c != 3 {
			t.Fatalf("node %d is source of %d messages, want 3", i, c)
		}
	}
}

func TestBitReversal(t *testing.T) {
	prs := BitReversal(3)
	if len(prs) != 8 {
		t.Fatal("size")
	}
	if prs[0b001].Dst != 0b100 {
		t.Errorf("reversal of 001 = %03b", prs[1].Dst)
	}
	if prs[0b110].Dst != 0b011 {
		t.Errorf("reversal of 110 = %03b", prs[6].Dst)
	}
	// Involution: reversing twice is the identity.
	for _, pr := range prs {
		if prs[pr.Dst].Dst != pr.Src {
			t.Fatal("bit reversal is not an involution")
		}
	}
}

func TestTranspose(t *testing.T) {
	prs := Transpose(3)
	if len(prs) != 9 {
		t.Fatal("size")
	}
	for _, pr := range prs {
		x, y := pr.Src%3, pr.Src/3
		if pr.Dst != x*3+y {
			t.Fatalf("transpose of (%d,%d) wrong: %d", x, y, pr.Dst)
		}
	}
}

func TestAllToOne(t *testing.T) {
	prs := AllToOne(5, 2)
	if len(prs) != 4 {
		t.Fatal("size")
	}
	for _, pr := range prs {
		if pr.Dst != 2 || pr.Src == 2 {
			t.Fatalf("bad pair %+v", pr)
		}
	}
}

func TestButterflyWorkloads(t *testing.T) {
	b := topology.NewButterfly(3)
	src := rng.New(6)
	qf := ButterflyRandomQFunction(b, 2, src)
	if len(qf) != 16 {
		t.Fatal("size")
	}
	for _, pr := range qf {
		if b.LevelOf(pr.Src) != 0 || b.LevelOf(pr.Dst) != 3 {
			t.Fatalf("bad levels in pair %+v", pr)
		}
	}
	perm := ButterflyPermutation(b, []int{1, 0, 3, 2, 5, 4, 7, 6})
	if len(perm) != 8 {
		t.Fatal("perm size")
	}
	if b.RowOf(perm[0].Dst) != 1 {
		t.Error("perm mapping wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("wrong-length permutation did not panic")
		}
	}()
	ButterflyPermutation(b, []int{0, 1})
}

func TestRandomDimOrder(t *testing.T) {
	tor := topology.NewTorus(3, 5)
	g := tor.Graph()
	src := rng.New(71)
	sel := RandomDimOrder(tor, src)
	for i := 0; i < 60; i++ {
		a, b := src.Intn(125), src.Intn(125)
		if a == b {
			continue
		}
		p := sel(a, b)
		if err := p.Validate(g); err != nil {
			t.Fatal(err)
		}
		if p.Len() != g.BFS(a)[b] {
			t.Fatalf("random dim order path %d->%d not shortest", a, b)
		}
	}
	// The order actually varies: collect first-step dimensions for one
	// fixed far-apart pair.
	a := tor.NodeAt([]int{0, 0, 0})
	b := tor.NodeAt([]int{2, 2, 2})
	dims := map[int]bool{}
	for i := 0; i < 40; i++ {
		p := sel(a, b)
		c0, c1 := tor.Coord(p[0]), tor.Coord(p[1])
		for d := range c0 {
			if c0[d] != c1[d] {
				dims[d] = true
			}
		}
	}
	if len(dims) < 2 {
		t.Errorf("dimension order never varied: %v", dims)
	}
}

// TestTranslationSystemEdgeLoad validates the premise of Theorem 1.5: the
// translation-invariant path system places expected load at most ~D on
// every directed link under a random function (the [27] property).
func TestTranslationSystemEdgeLoad(t *testing.T) {
	cases := []struct {
		name string
		vt   topology.VertexTransitive
		diam int
	}{
		{"torus(2,6)", topology.NewTorus(2, 6), 6},
		{"hypercube(5)", topology.NewHypercube(5), 5},
		{"circulant(64,{1,8})", topology.NewCirculant(64, []int{1, 8}), 8},
	}
	for _, tc := range cases {
		g := tc.vt.Graph()
		sel := TranslationSystem(tc.vt)
		src := rng.New(404)
		_, maxLoad := EdgeLoadStats(g, sel, 30, src)
		// Expected load <= D, with Monte-Carlo slack.
		if limit := 1.5 * float64(tc.diam); maxLoad > limit {
			t.Errorf("%s: max expected edge load %.2f exceeds 1.5*D = %.1f",
				tc.name, maxLoad, limit)
		}
	}
}

// TestEdgeLoadStatsSymmetric: on a vertex-transitive network the loads
// should be near-uniform — the per-link spread stays small.
func TestEdgeLoadStatsSymmetric(t *testing.T) {
	tor := topology.NewTorus(2, 5)
	sel := TranslationSystem(tor)
	src := rng.New(505)
	mean, max := EdgeLoadStats(tor.Graph(), sel, 50, src)
	if max > 3*mean {
		t.Errorf("edge loads too skewed for a symmetric system: mean %.2f max %.2f", mean, max)
	}
}
