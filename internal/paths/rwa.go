package paths

import (
	"fmt"
	"sort"
)

// Static routing-and-wavelength-assignment (RWA) is the problem most of
// the paper's related work addresses (Section 1.2): assign each path a
// wavelength so that no two paths sharing a directed link use the same
// one — then all messages can be launched simultaneously and collisions
// never occur. The price is the number of wavelengths, which must be at
// least the edge congestion. The Trial-and-Failure protocol's selling
// point is working with ANY bandwidth B; the RWA helpers here quantify
// the contrast (experiment E13).

// GreedyWavelengthAssignment colors the collection's conflict graph
// (paths adjacent iff they share a directed link) with first-fit greedy
// in order of decreasing path length. It returns one wavelength per path
// and the number of wavelengths used. The result is always conflict-free;
// the count is at most the maximum conflict degree plus one and at least
// the edge congestion.
func (c *Collection) GreedyWavelengthAssignment() (colors []int, used int) {
	n := c.Size()
	colors = make([]int, n)
	for i := range colors {
		colors[i] = -1
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		pa, pb := c.Path(order[a]).Len(), c.Path(order[b]).Len()
		if pa != pb {
			return pa > pb
		}
		return order[a] < order[b]
	})
	c.ensureLinkUsers()
	taken := make(map[int]bool)
	for _, i := range order {
		// Collect colors taken by conflicting, already-colored paths.
		clear(taken)
		for _, id := range c.links[i] {
			for _, j := range c.linkUsers[id] {
				if j != i && colors[j] >= 0 {
					taken[colors[j]] = true
				}
			}
		}
		col := 0
		for taken[col] {
			col++
		}
		colors[i] = col
		if col+1 > used {
			used = col + 1
		}
	}
	return colors, used
}

// ValidWavelengthAssignment reports whether no two paths sharing a
// directed link have the same color.
func (c *Collection) ValidWavelengthAssignment(colors []int) bool {
	if len(colors) != c.Size() {
		return false
	}
	ok := true
	c.SharePairs(func(i, j int) {
		if colors[i] == colors[j] {
			ok = false
		}
	})
	return ok
}

// ConflictDegree returns, for each path, the number of other paths it
// shares a directed link with (its degree in the conflict graph).
func (c *Collection) ConflictDegree() []int {
	deg := c.PathCongestions()
	out := make([]int, len(deg))
	for i, d := range deg {
		out[i] = d - 1 // PathCongestions counts the path itself
	}
	return out
}

// MaxConflictDegree returns the largest conflict degree.
func (c *Collection) MaxConflictDegree() int {
	max := 0
	for _, d := range c.ConflictDegree() {
		if d > max {
			max = d
		}
	}
	return max
}

// ChainOptimalAssignment computes an OPTIMAL wavelength assignment for a
// collection routed along a chain network (nodes 0..n-1 in a line): paths
// in one direction form an interval graph, so the classic interval-
// partitioning sweep colors them with exactly the edge congestion many
// wavelengths — the optimum (Gerstel & Zaks study such chain layouts).
// Opposite directions use disjoint directed links and share colors.
// It returns an error if some path is not monotone along the chain.
func (c *Collection) ChainOptimalAssignment() (colors []int, used int, err error) {
	n := c.Size()
	colors = make([]int, n)
	type interval struct {
		idx, lo, hi int // occupies links [lo, hi) of its direction
	}
	var fwd, bwd []interval
	for i := 0; i < n; i++ {
		p := c.Path(i)
		increasing := p[1] > p[0]
		for k := 0; k+1 < len(p); k++ {
			step := p[k+1] - p[k]
			if step != 1 && step != -1 {
				return nil, 0, fmt.Errorf("paths: path %d is not a chain path", i)
			}
			if (step == 1) != increasing {
				return nil, 0, fmt.Errorf("paths: path %d is not monotone on the chain", i)
			}
		}
		if increasing {
			fwd = append(fwd, interval{idx: i, lo: p[0], hi: p[len(p)-1]})
		} else {
			bwd = append(bwd, interval{idx: i, lo: p[len(p)-1], hi: p[0]})
		}
	}
	sweep := func(ivs []interval) int {
		sort.Slice(ivs, func(a, b int) bool {
			if ivs[a].lo != ivs[b].lo {
				return ivs[a].lo < ivs[b].lo
			}
			return ivs[a].idx < ivs[b].idx
		})
		// free colors, smallest first; busy: color -> right endpoint.
		type busyEntry struct{ hi, color int }
		var busy []busyEntry
		var free []int
		next := 0
		for _, iv := range ivs {
			// Release colors whose interval ended at or before iv.lo.
			kept := busy[:0]
			for _, b := range busy {
				if b.hi <= iv.lo {
					free = append(free, b.color)
				} else {
					kept = append(kept, b)
				}
			}
			busy = kept
			col := -1
			if len(free) > 0 {
				// Smallest free color for determinism.
				best := 0
				for x := 1; x < len(free); x++ {
					if free[x] < free[best] {
						best = x
					}
				}
				col = free[best]
				free = append(free[:best], free[best+1:]...)
			} else {
				col = next
				next++
			}
			colors[iv.idx] = col
			busy = append(busy, busyEntry{hi: iv.hi, color: col})
		}
		return next
	}
	uf := sweep(fwd)
	ub := sweep(bwd)
	used = uf
	if ub > used {
		used = ub
	}
	return colors, used, nil
}
