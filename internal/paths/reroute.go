package paths

import "repro/internal/graph"

// ShortestPathAvoiding returns a shortest src -> dst path that uses no
// link for which blocked returns true, or nil when every route is cut.
// The BFS explores links in insertion order exactly like
// graph.ShortestPath, so the selection is deterministic and a nil
// blocked predicate reproduces graph.ShortestPath's answer. The
// degraded-mode protocol rounds use it to steer still-active worms
// around links a fault plan has taken down.
func ShortestPathAvoiding(g *graph.Graph, src, dst graph.NodeID, blocked func(graph.LinkID) bool) graph.Path {
	if blocked == nil {
		return g.ShortestPath(src, dst)
	}
	if src == dst {
		return graph.Path{src}
	}
	parent := make([]graph.NodeID, g.NumNodes())
	for i := range parent {
		parent[i] = -1
	}
	parent[src] = src
	queue := []graph.NodeID{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, id := range g.Out(u) {
			if blocked(id) {
				continue
			}
			v := g.Link(id).To
			if parent[v] < 0 {
				parent[v] = u
				if v == dst {
					return rebuild(parent, src, dst)
				}
				queue = append(queue, v)
			}
		}
	}
	return nil
}

// rebuild walks the BFS parents back from dst and reverses the walk.
func rebuild(parent []graph.NodeID, src, dst graph.NodeID) graph.Path {
	var rev []graph.NodeID
	for v := dst; ; v = parent[v] {
		rev = append(rev, v)
		if v == src {
			break
		}
	}
	p := make(graph.Path, len(rev))
	for i, v := range rev {
		p[len(rev)-1-i] = v
	}
	return p
}
