package paths

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/topology"
)

// Workload generators produce the (source, destination) request sets the
// paper's applications route: permutations, random functions ("routing a
// function": node i sends one message to f(i)") and random q-functions
// (each node is the source of q messages).

// RandomPermutation returns the pairs (i, pi(i)) for a uniformly random
// permutation pi of [n]. Fixed points are included (Build skips them).
func RandomPermutation(n int, src *rng.Source) []Pair {
	perm := src.Perm(n)
	prs := make([]Pair, n)
	for i, d := range perm {
		prs[i] = Pair{Src: i, Dst: d}
	}
	return prs
}

// RandomFunction returns the pairs (i, f(i)) for a uniformly random
// function f: [n] -> [n].
func RandomFunction(n int, src *rng.Source) []Pair {
	prs := make([]Pair, n)
	for i := range prs {
		prs[i] = Pair{Src: i, Dst: src.Intn(n)}
	}
	return prs
}

// RandomQFunction returns q*n pairs: each node is the source of q messages
// with independently uniform destinations (the paper's random q-function).
func RandomQFunction(q, n int, src *rng.Source) []Pair {
	prs := make([]Pair, 0, q*n)
	for k := 0; k < q; k++ {
		for i := 0; i < n; i++ {
			prs = append(prs, Pair{Src: i, Dst: src.Intn(n)})
		}
	}
	return prs
}

// ButterflyRandomQFunction returns q*2^k pairs from the butterfly's inputs
// to uniformly random outputs, the workload of Theorem 1.7.
func ButterflyRandomQFunction(b *topology.Butterfly, q int, src *rng.Source) []Pair {
	ins, outs := b.Inputs(), b.Outputs()
	prs := make([]Pair, 0, q*len(ins))
	for k := 0; k < q; k++ {
		for _, in := range ins {
			prs = append(prs, Pair{Src: in, Dst: outs[src.Intn(len(outs))]})
		}
	}
	return prs
}

// ButterflyPermutation returns pairs from butterfly input r to output
// perm[r].
func ButterflyPermutation(b *topology.Butterfly, perm []int) []Pair {
	ins, outs := b.Inputs(), b.Outputs()
	if len(perm) != len(ins) {
		panic(fmt.Sprintf("paths: permutation length %d != %d rows", len(perm), len(ins)))
	}
	prs := make([]Pair, len(ins))
	for r, in := range ins {
		prs[r] = Pair{Src: in, Dst: outs[perm[r]]}
	}
	return prs
}

// BitReversal returns the bit-reversal permutation pairs on a 2^k-node
// network: node u sends to the node whose k-bit address is u reversed.
// A classic adversarial permutation for meshes and butterflies.
func BitReversal(k int) []Pair {
	n := 1 << k
	prs := make([]Pair, n)
	for u := 0; u < n; u++ {
		r := 0
		for b := 0; b < k; b++ {
			if u&(1<<b) != 0 {
				r |= 1 << (k - 1 - b)
			}
		}
		prs[u] = Pair{Src: u, Dst: r}
	}
	return prs
}

// Transpose returns the matrix-transpose permutation on a 2-dimensional
// side x side mesh or torus node set: (x, y) sends to (y, x), with node
// ids in row-major order as produced by the mesh/torus generators.
func Transpose(side int) []Pair {
	prs := make([]Pair, 0, side*side)
	for y := 0; y < side; y++ {
		for x := 0; x < side; x++ {
			prs = append(prs, Pair{Src: y*side + x, Dst: x*side + y})
		}
	}
	return prs
}

// AllToOne returns the pairs (i, dst) for every i != dst: the maximal
// congestion stress workload.
func AllToOne(n int, dst graph.NodeID) []Pair {
	prs := make([]Pair, 0, n-1)
	for i := 0; i < n; i++ {
		if i != dst {
			prs = append(prs, Pair{Src: i, Dst: dst})
		}
	}
	return prs
}
