// Package baseline implements the electronic store-and-forward router the
// paper's introduction positions all-optical routing against: messages
// are converted to electrical form at every hop, so they can be buffered
// in per-link output queues and never eliminated. The price the paper
// avoids is the conversion overhead and the per-hop serialization — a
// message of L flits takes L steps per link instead of pipelining
// wormhole-style — plus unbounded buffer memory.
//
// The simulator is deliberately simple and deterministic: per directed
// link there are B wavelength channels; each channel carries one message
// at a time for L steps; waiting messages queue FIFO at the link. It
// provides the reference times for experiment E16 (optical
// trial-and-failure vs buffered electronic routing).
package baseline

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/paths"
)

// Message is one store-and-forward routing job.
type Message struct {
	// ID identifies the message; IDs must be distinct and >= 0.
	ID int
	// Path is the fixed route.
	Path graph.Path
	// Length is L >= 1 flits; each hop takes Length steps of link time.
	Length int
	// Release is the step at which the message becomes available.
	Release int
}

// Config parameterizes a store-and-forward run.
type Config struct {
	// Bandwidth is the number of parallel channels per directed link.
	Bandwidth int
	// MaxSteps bounds the simulation (0 derives a generous bound).
	MaxSteps int
}

// Outcome reports one message's fate.
type Outcome struct {
	DeliveredAt int // step at which the last flit reached the destination
	MaxQueued   int // most messages ever waiting with it at one link
}

// Result aggregates a run.
type Result struct {
	Outcomes []Outcome
	// Makespan is the delivery time of the last message.
	Makespan int
	// PeakQueue is the largest queue length observed at any link.
	PeakQueue int
}

// Run simulates the store-and-forward routing of all messages. Every
// message is eventually delivered (buffers are unbounded), so only the
// timing is in question. Arbitration is FIFO per link with ties broken by
// message ID, making runs deterministic.
func Run(g *graph.Graph, msgs []Message, cfg Config) (*Result, error) {
	if cfg.Bandwidth < 1 {
		return nil, fmt.Errorf("baseline: bandwidth %d < 1", cfg.Bandwidth)
	}
	seen := make(map[int]bool, len(msgs))
	totalHops := 0
	maxRelease := 0
	for i, m := range msgs {
		if m.ID < 0 || seen[m.ID] {
			return nil, fmt.Errorf("baseline: message %d has invalid or duplicate ID %d", i, m.ID)
		}
		seen[m.ID] = true
		if err := m.Path.Validate(g); err != nil {
			return nil, fmt.Errorf("baseline: message %d: %w", m.ID, err)
		}
		if m.Path.Len() == 0 || m.Length < 1 || m.Release < 0 {
			return nil, fmt.Errorf("baseline: message %d has invalid parameters", m.ID)
		}
		totalHops += m.Path.Len() * m.Length
		if m.Release > maxRelease {
			maxRelease = m.Release
		}
	}
	maxSteps := cfg.MaxSteps
	if maxSteps == 0 {
		// Every (link, message) transfer takes Length steps and at least
		// one transfer completes per busy step per link; a loose but safe
		// bound is release horizon + total serialized work.
		maxSteps = maxRelease + totalHops + 16
	}

	type job struct {
		idx int // index into msgs / outcomes
		hop int // next link index to traverse
	}
	// queues[link] = FIFO of jobs waiting for a channel.
	queues := make(map[graph.LinkID][]job)
	// busyUntil[link] = per-channel completion times.
	busy := make(map[graph.LinkID][]int)
	// completions[t] = jobs whose current transfer finishes at t.
	completions := make(map[int][]job)

	res := &Result{Outcomes: make([]Outcome, len(msgs))}
	for i := range res.Outcomes {
		res.Outcomes[i] = Outcome{DeliveredAt: -1}
	}
	links := make([][]graph.LinkID, len(msgs))
	for i, m := range msgs {
		links[i] = m.Path.Links(g)
		completions[m.Release] = append(completions[m.Release], job{idx: i, hop: 0})
	}

	pending := len(msgs)
	for t := 0; pending > 0; t++ {
		if t > maxSteps {
			return nil, fmt.Errorf("baseline: exceeded %d steps (internal bug guard)", maxSteps)
		}
		// 1. Jobs arriving at their next queue (released or finished a hop).
		if js, ok := completions[t]; ok {
			for _, j := range js {
				if j.hop >= len(links[j.idx]) {
					res.Outcomes[j.idx].DeliveredAt = t
					if t > res.Makespan {
						res.Makespan = t
					}
					pending--
					continue
				}
				l := links[j.idx][j.hop]
				queues[l] = append(queues[l], j)
				if q := len(queues[l]); q > res.PeakQueue {
					res.PeakQueue = q
				}
				if q := len(queues[l]); q > res.Outcomes[j.idx].MaxQueued {
					res.Outcomes[j.idx].MaxQueued = q
				}
			}
			delete(completions, t)
		}
		// 2. Assign free channels to queued jobs, FIFO per link; links are
		// processed in sorted order so the run is deterministic.
		linkIDs := make([]graph.LinkID, 0, len(queues))
		for l := range queues {
			linkIDs = append(linkIDs, l)
		}
		sort.Ints(linkIDs)
		for _, l := range linkIDs {
			q := queues[l]
			if len(q) == 0 {
				continue
			}
			ch := busy[l]
			if ch == nil {
				ch = make([]int, cfg.Bandwidth)
				busy[l] = ch
			}
			for c := 0; c < cfg.Bandwidth && len(q) > 0; c++ {
				if ch[c] > t {
					continue
				}
				j := q[0]
				q = q[1:]
				done := t + msgs[j.idx].Length
				ch[c] = done
				completions[done] = append(completions[done], job{idx: j.idx, hop: j.hop + 1})
			}
			if len(q) == 0 {
				delete(queues, l)
			} else {
				queues[l] = q
			}
		}
	}
	return res, nil
}

// RunCollection routes one message of the given length along every path
// of the collection, all released at step 0.
func RunCollection(c *paths.Collection, length, bandwidth int) (*Result, error) {
	msgs := make([]Message, c.Size())
	for i := range msgs {
		msgs[i] = Message{ID: i, Path: c.Path(i), Length: length}
	}
	return Run(c.Graph(), msgs, Config{Bandwidth: bandwidth})
}
