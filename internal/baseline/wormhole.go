package baseline

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/paths"
)

// Buffered wormhole routing is the second electronic reference point: the
// worm pipelines through the network like the optical protocol's worms,
// but a blocked head STALLS in place — its flits wait in per-router
// buffers and the worm keeps its links — instead of being eliminated.
// Stalling requires buffering and flow control (the electrical-domain
// machinery the paper's all-optical routers avoid) and is only
// deadlock-free for acyclic channel dependencies, e.g. dimension-order
// routing on meshes; the simulator detects deadlocks and reports them.
//
// Timing model: a worm advances one link per step while its next link has
// a free channel (B channels per directed link; electronic routers can
// reassign channels per hop). Released capacity becomes available on the
// following step, so back-to-back worms travel with one-step bubbles.
// Arbitration per link is FIFO by stall time, ties by message ID.

// WormholeResult aggregates a buffered-wormhole run.
type WormholeResult struct {
	Outcomes []Outcome
	Makespan int
	// Deadlocked lists the messages caught in a cyclic wait when the run
	// stopped making progress (empty = all delivered).
	Deadlocked []int
}

// RunWormhole simulates buffered wormhole routing of all messages.
func RunWormhole(g *graph.Graph, msgs []Message, cfg Config) (*WormholeResult, error) {
	if cfg.Bandwidth < 1 {
		return nil, fmt.Errorf("baseline: bandwidth %d < 1", cfg.Bandwidth)
	}
	seen := make(map[int]bool, len(msgs))
	total := 0
	maxRelease := 0
	for i, m := range msgs {
		if m.ID < 0 || seen[m.ID] {
			return nil, fmt.Errorf("baseline: message %d has invalid or duplicate ID %d", i, m.ID)
		}
		seen[m.ID] = true
		if err := m.Path.Validate(g); err != nil {
			return nil, fmt.Errorf("baseline: message %d: %w", m.ID, err)
		}
		if m.Path.Len() == 0 || m.Length < 1 || m.Release < 0 {
			return nil, fmt.Errorf("baseline: message %d has invalid parameters", m.ID)
		}
		total += m.Path.Len() + m.Length
		if m.Release > maxRelease {
			maxRelease = m.Release
		}
	}
	maxSteps := cfg.MaxSteps
	if maxSteps == 0 {
		maxSteps = maxRelease + 4*total + 64
	}

	type state struct {
		links     []graph.LinkID
		p         int // advancement count; -1 = not injected
		waitSince int
		done      bool
	}
	sts := make([]*state, len(msgs))
	busy := make(map[graph.LinkID]int)
	res := &WormholeResult{Outcomes: make([]Outcome, len(msgs))}
	for i, m := range msgs {
		sts[i] = &state{links: m.Path.Links(g), p: -1, waitSince: m.Release}
		res.Outcomes[i] = Outcome{DeliveredAt: -1}
	}

	pending := len(msgs)
	idleSteps := 0
	for t := 0; pending > 0; t++ {
		if t > maxSteps {
			return nil, fmt.Errorf("baseline: wormhole exceeded %d steps (internal bug guard)", maxSteps)
		}
		// Collect this step's link-entry requests and unconditional
		// (draining) advances.
		type request struct {
			idx  int
			link graph.LinkID
		}
		var requests []request
		var draining []int
		for i, st := range sts {
			if st.done || msgs[i].Release > t {
				continue
			}
			k := len(st.links)
			next := st.p + 1
			if next < k {
				requests = append(requests, request{idx: i, link: st.links[next]})
			} else {
				draining = append(draining, i)
			}
		}
		// Group by link; grant FIFO by (waitSince, id) within capacity.
		byLink := make(map[graph.LinkID][]int)
		for _, r := range requests {
			byLink[r.link] = append(byLink[r.link], r.idx)
		}
		linkIDs := make([]graph.LinkID, 0, len(byLink))
		for l := range byLink {
			linkIDs = append(linkIDs, l)
		}
		sort.Ints(linkIDs)
		moved := 0
		var releases []graph.LinkID
		advance := func(i int) {
			st := sts[i]
			st.p++
			moved++
			// Tail leaves link p-Length (if it is a real link index).
			if tail := st.p - msgs[i].Length; tail >= 0 && tail < len(st.links) {
				releases = append(releases, st.links[tail])
			}
			if st.p == len(st.links)+msgs[i].Length-2 {
				st.done = true
				// The tail exits the last link as the worm completes.
				releases = append(releases, st.links[len(st.links)-1])
				res.Outcomes[i].DeliveredAt = t
				if t > res.Makespan {
					res.Makespan = t
				}
				pending--
			}
		}
		for _, l := range linkIDs {
			waiters := byLink[l]
			sort.Slice(waiters, func(a, b int) bool {
				wa, wb := sts[waiters[a]], sts[waiters[b]]
				if wa.waitSince != wb.waitSince {
					return wa.waitSince < wb.waitSince
				}
				return msgs[waiters[a]].ID < msgs[waiters[b]].ID
			})
			free := cfg.Bandwidth - busy[l]
			for _, i := range waiters {
				if free <= 0 {
					sts[i].waitSince = minInt(sts[i].waitSince, t)
					continue
				}
				free--
				busy[l]++
				advance(i)
				sts[i].waitSince = t + 1
			}
		}
		for _, i := range draining {
			advance(i)
		}
		// Releases become visible next step (the bubble).
		for _, l := range releases {
			busy[l]--
		}
		// Deadlock detection: two consecutive steps without any movement
		// while work remains (bubbles clear within one step).
		if moved == 0 && pending > 0 {
			idleSteps++
			if idleSteps >= 2 && t >= maxRelease {
				for i, st := range sts {
					if !st.done {
						res.Deadlocked = append(res.Deadlocked, msgs[i].ID)
					}
				}
				return res, nil
			}
		} else {
			idleSteps = 0
		}
	}
	return res, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// RunWormholeCollection routes one worm of the given length along every
// path of the collection, all released at step 0.
func RunWormholeCollection(c *paths.Collection, length, bandwidth int) (*WormholeResult, error) {
	msgs := make([]Message, c.Size())
	for i := range msgs {
		msgs[i] = Message{ID: i, Path: c.Path(i), Length: length}
	}
	return RunWormhole(c.Graph(), msgs, Config{Bandwidth: bandwidth})
}
