package baseline

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/paths"
	"repro/internal/rng"
	"repro/internal/topology"
)

func TestWormholeSingleWorm(t *testing.T) {
	g := topology.NewChain(5).Graph()
	res, err := RunWormhole(g, []Message{
		{ID: 0, Path: graph.Path{0, 1, 2, 3, 4}, Length: 3, Release: 1},
	}, Config{Bandwidth: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Pipelined: k + L - 1 = 6 advances, first at step 1 (release):
	// delivered at step 1 + 6 - 1 = 6.
	if got := res.Outcomes[0].DeliveredAt; got != 6 {
		t.Errorf("DeliveredAt = %d, want 6", got)
	}
	if len(res.Deadlocked) != 0 {
		t.Error("unexpected deadlock")
	}
}

func TestWormholePipeliningBeatsStoreAndForward(t *testing.T) {
	// Wormhole pipelines: delivered at k+L-2 = 14; store-and-forward
	// serializes per hop: k*L = 64.
	g := topology.NewChain(9).Graph()
	p := make(graph.Path, 9)
	for i := range p {
		p[i] = i
	}
	msgs := []Message{{ID: 0, Path: p, Length: 8}}
	wh, err := RunWormhole(g, msgs, Config{Bandwidth: 1})
	if err != nil {
		t.Fatal(err)
	}
	saf, err := Run(g, msgs, Config{Bandwidth: 1})
	if err != nil {
		t.Fatal(err)
	}
	if wh.Makespan >= saf.Makespan {
		t.Errorf("wormhole %d should beat store-and-forward %d", wh.Makespan, saf.Makespan)
	}
	if wh.Makespan != 14 {
		t.Errorf("wormhole makespan = %d, want 14", wh.Makespan)
	}
}

func TestWormholeStallInsteadOfLoss(t *testing.T) {
	// Two worms over one shared link, B=1: the second stalls and follows;
	// both are delivered (unlike the optical serve-first elimination).
	g := topology.NewChain(4).Graph()
	res, err := RunWormhole(g, []Message{
		{ID: 0, Path: graph.Path{0, 1, 2, 3}, Length: 3},
		{ID: 1, Path: graph.Path{0, 1, 2, 3}, Length: 3},
	}, Config{Bandwidth: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range res.Outcomes {
		if o.DeliveredAt < 0 {
			t.Fatalf("worm %d not delivered", i)
		}
	}
	if res.Outcomes[1].DeliveredAt <= res.Outcomes[0].DeliveredAt {
		t.Error("second worm should finish after the first")
	}
}

func TestWormholeMeshNoDeadlock(t *testing.T) {
	// Dimension-order routing on a mesh has acyclic channel dependencies:
	// never deadlocks.
	m := topology.NewMesh(2, 5)
	src := rng.New(9)
	prs := paths.RandomQFunction(2, m.Graph().NumNodes(), src)
	c, err := paths.Build(m.Graph(), prs, paths.DimOrderMesh(m))
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunWormholeCollection(c, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Deadlocked) != 0 {
		t.Fatalf("mesh dimension-order deadlocked: %v", res.Deadlocked)
	}
	for i, o := range res.Outcomes {
		if o.DeliveredAt < 0 {
			t.Fatalf("worm %d not delivered", i)
		}
	}
}

func TestWormholeDeadlockDetected(t *testing.T) {
	// A classic cyclic wait on a ring: four long worms each holding links
	// the next one needs. Worm i goes two hops clockwise starting at i;
	// with L >= 2 and B = 1 all four stall on each other forever.
	g := topology.NewRing(4).Graph()
	var msgs []Message
	for i := 0; i < 4; i++ {
		msgs = append(msgs, Message{
			ID:     i,
			Path:   graph.Path{i, (i + 1) % 4, (i + 2) % 4},
			Length: 3,
		})
	}
	res, err := RunWormhole(g, msgs, Config{Bandwidth: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Deadlocked) == 0 {
		t.Fatal("cyclic wait not detected as deadlock")
	}
}

func TestWormholeValidation(t *testing.T) {
	g := topology.NewChain(3).Graph()
	if _, err := RunWormhole(g, nil, Config{Bandwidth: 0}); err == nil {
		t.Error("bandwidth 0 accepted")
	}
	if _, err := RunWormhole(g, []Message{{ID: 0, Path: graph.Path{0, 2}, Length: 1}}, Config{Bandwidth: 1}); err == nil {
		t.Error("bad path accepted")
	}
}

func TestWormholeDeterministic(t *testing.T) {
	m := topology.NewMesh(2, 4)
	src := rng.New(3)
	prs := paths.RandomFunction(m.Graph().NumNodes(), src)
	c, err := paths.Build(m.Graph(), prs, paths.DimOrderMesh(m))
	if err != nil {
		t.Fatal(err)
	}
	a, _ := RunWormholeCollection(c, 3, 1)
	b, _ := RunWormholeCollection(c, 3, 1)
	for i := range a.Outcomes {
		if a.Outcomes[i] != b.Outcomes[i] {
			t.Fatal("nondeterministic wormhole run")
		}
	}
}
