package baseline

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/paths"
	"repro/internal/rng"
	"repro/internal/topology"
)

func TestSingleMessage(t *testing.T) {
	g := topology.NewChain(5).Graph()
	res, err := Run(g, []Message{
		{ID: 0, Path: graph.Path{0, 1, 2, 3, 4}, Length: 3, Release: 2},
	}, Config{Bandwidth: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Store-and-forward: 4 hops * 3 steps each, starting at release 2.
	if got := res.Outcomes[0].DeliveredAt; got != 2+4*3 {
		t.Errorf("DeliveredAt = %d, want 14", got)
	}
	if res.Makespan != 14 {
		t.Errorf("makespan = %d", res.Makespan)
	}
}

func TestSerializationOnSharedLink(t *testing.T) {
	// Two messages over one link with B=1: the second waits L steps.
	g := topology.NewChain(2).Graph()
	res, err := Run(g, []Message{
		{ID: 0, Path: graph.Path{0, 1}, Length: 4},
		{ID: 1, Path: graph.Path{0, 1}, Length: 4},
	}, Config{Bandwidth: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcomes[0].DeliveredAt != 4 {
		t.Errorf("first message at %d, want 4", res.Outcomes[0].DeliveredAt)
	}
	if res.Outcomes[1].DeliveredAt != 8 {
		t.Errorf("second message at %d, want 8 (queued behind)", res.Outcomes[1].DeliveredAt)
	}
	if res.PeakQueue != 2 {
		t.Errorf("peak queue = %d, want 2", res.PeakQueue)
	}
	// With B=2 both run in parallel.
	res, err = Run(g, []Message{
		{ID: 0, Path: graph.Path{0, 1}, Length: 4},
		{ID: 1, Path: graph.Path{0, 1}, Length: 4},
	}, Config{Bandwidth: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcomes[1].DeliveredAt != 4 {
		t.Errorf("parallel channels: second at %d, want 4", res.Outcomes[1].DeliveredAt)
	}
}

func TestAllDeliveredEventually(t *testing.T) {
	tor := topology.NewTorus(2, 6)
	src := rng.New(3)
	prs := paths.RandomQFunction(3, tor.Graph().NumNodes(), src)
	c, err := paths.Build(tor.Graph(), prs, paths.DimOrderTorus(tor))
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunCollection(c, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range res.Outcomes {
		if o.DeliveredAt < 0 {
			t.Fatalf("message %d never delivered", i)
		}
		// Lower bound: hops * L.
		if min := c.Path(i).Len() * 4; o.DeliveredAt < min {
			t.Fatalf("message %d delivered at %d, below serialization floor %d",
				i, o.DeliveredAt, min)
		}
	}
}

func TestDeterministic(t *testing.T) {
	tor := topology.NewTorus(2, 5)
	src := rng.New(9)
	prs := paths.RandomFunction(tor.Graph().NumNodes(), src)
	c, err := paths.Build(tor.Graph(), prs, paths.DimOrderTorus(tor))
	if err != nil {
		t.Fatal(err)
	}
	a, err := RunCollection(c, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCollection(c, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Outcomes {
		if a.Outcomes[i] != b.Outcomes[i] {
			t.Fatalf("outcome %d differs between identical runs", i)
		}
	}
}

func TestValidation(t *testing.T) {
	g := topology.NewChain(3).Graph()
	cases := map[string][]Message{
		"dup id":      {{ID: 0, Path: graph.Path{0, 1}, Length: 1}, {ID: 0, Path: graph.Path{1, 2}, Length: 1}},
		"bad path":    {{ID: 0, Path: graph.Path{0, 2}, Length: 1}},
		"zero len":    {{ID: 0, Path: graph.Path{0, 1}, Length: 0}},
		"neg release": {{ID: 0, Path: graph.Path{0, 1}, Length: 1, Release: -1}},
	}
	for name, msgs := range cases {
		if _, err := Run(g, msgs, Config{Bandwidth: 1}); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	if _, err := Run(g, nil, Config{Bandwidth: 0}); err == nil {
		t.Error("bandwidth 0 accepted")
	}
}

func TestConvoyThroughNode(t *testing.T) {
	// A convoy on a Y graph: three senders into one sink link, B=1, L=2.
	g := graph.New(5)
	g.AddEdge(0, 3)
	g.AddEdge(1, 3)
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	res, err := Run(g, []Message{
		{ID: 0, Path: graph.Path{0, 3, 4}, Length: 2},
		{ID: 1, Path: graph.Path{1, 3, 4}, Length: 2},
		{ID: 2, Path: graph.Path{2, 3, 4}, Length: 2},
	}, Config{Bandwidth: 1})
	if err != nil {
		t.Fatal(err)
	}
	// All reach node 3 at step 2, then serialize over 3->4: deliveries at
	// 4, 6, 8 in FIFO (ID) order.
	want := []int{4, 6, 8}
	for i, o := range res.Outcomes {
		if o.DeliveredAt != want[i] {
			t.Errorf("message %d delivered at %d, want %d", i, o.DeliveredAt, want[i])
		}
	}
}
