// Package rng provides a small, deterministic, splittable pseudo-random
// number generator for reproducible simulation experiments.
//
// The protocol and the experiment harness need independent random streams
// per worm, per round, and per trial so that (a) results are reproducible
// from a single master seed, and (b) changing the number of consumers of
// one stream does not perturb the others. The generator is a SplitMix64
// seeder feeding a xoshiro256** core, following the reference designs by
// Blackman and Vigna. Only the standard library is used.
package rng

import "math"

// splitmix64 advances a SplitMix64 state and returns the next output.
// It is used both to seed xoshiro256** and to derive child seeds.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Source is a deterministic xoshiro256** generator. The zero value is not
// a valid source; use New or Split to obtain one.
type Source struct {
	s [4]uint64
}

// New returns a Source seeded from the given seed. Distinct seeds yield
// streams that are statistically independent for simulation purposes.
func New(seed uint64) *Source {
	var src Source
	sm := seed
	for i := range src.s {
		src.s[i] = splitmix64(&sm)
	}
	// Avoid the (astronomically unlikely) all-zero state.
	if src.s[0]|src.s[1]|src.s[2]|src.s[3] == 0 {
		src.s[0] = 0x9e3779b97f4a7c15
	}
	return &src
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Source) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Split derives a new independent Source from r. The child stream is a
// deterministic function of r's state at the time of the call, and calling
// Split advances r, so successive Splits yield distinct children.
func (r *Source) Split() *Source {
	seed := r.Uint64()
	return New(seed ^ 0x6a09e667f3bcc909)
}

// SplitN derives n independent child sources in one call.
func (r *Source) SplitN(n int) []*Source {
	children := make([]*Source, n)
	for i := range children {
		children[i] = r.Split()
	}
	return children
}

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0.
// Lemire's multiply-shift rejection method avoids modulo bias.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo) without
// importing math/bits semantics beyond the standard language.
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aLo * bLo
	lo = t & mask
	c := t >> 32
	t = aHi*bLo + c
	mid := t & mask
	hiPart := t >> 32
	t = aLo*bHi + mid
	lo |= (t & mask) << 32
	hi = aHi*bHi + hiPart + t>>32
	return hi, lo
}

// Int63 returns a non-negative 63-bit integer.
func (r *Source) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a uniformly random permutation of [0, n) as a slice,
// generated with the Fisher-Yates shuffle.
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle randomizes the order of n elements using the given swap function.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// NormFloat64 returns a normally distributed float64 with mean 0 and
// standard deviation 1, using the polar Box-Muller transform.
func (r *Source) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Geometric returns a sample from the geometric distribution with success
// probability p: the number of failures before the first success.
// It panics unless 0 < p <= 1.
func (r *Source) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("rng: Geometric requires 0 < p <= 1")
	}
	if p == 1 {
		return 0
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return int(math.Floor(math.Log(u) / math.Log(1-p)))
}
