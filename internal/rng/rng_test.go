package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("step %d: same seed diverged: %d != %d", i, got, want)
		}
	}
}

func TestNewDistinctSeeds(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("distinct seeds produced %d identical outputs in 100 draws", same)
	}
}

func TestZeroSeedValid(t *testing.T) {
	r := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 95 {
		t.Fatalf("seed 0 produced only %d distinct values in 100 draws", len(seen))
	}
}

func TestIntnRange(t *testing.T) {
	r := New(7)
	for _, n := range []int{1, 2, 3, 10, 1000, 1 << 30} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(99)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: count %d too far from expected %.0f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	sum := 0.0
	const draws = 100000
	for i := 0; i < draws; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
		sum += f
	}
	if mean := sum / draws; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(5)
	check := func(n uint8) bool {
		p := r.Perm(int(n))
		if len(p) != int(n) {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= int(n) || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPermUniformFirstElement(t *testing.T) {
	r := New(11)
	const n, draws = 5, 50000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Perm(n)[0]]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("first element %d appeared %d times, expected ~%.0f", i, c, want)
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(123)
	a := parent.Split()
	b := parent.Split()
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split children produced %d identical outputs", same)
	}
}

func TestSplitDeterministic(t *testing.T) {
	p1 := New(55)
	p2 := New(55)
	c1 := p1.Split()
	c2 := p2.Split()
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatal("Split is not deterministic given identical parent state")
		}
	}
}

func TestSplitN(t *testing.T) {
	children := New(9).SplitN(8)
	if len(children) != 8 {
		t.Fatalf("SplitN(8) returned %d children", len(children))
	}
	outs := map[uint64]bool{}
	for _, c := range children {
		outs[c.Uint64()] = true
	}
	if len(outs) != 8 {
		t.Fatalf("children first outputs collide: %d distinct of 8", len(outs))
	}
}

func TestShuffle(t *testing.T) {
	r := New(77)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make([]bool, len(xs))
	for _, v := range xs {
		seen[v] = true
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("value %d lost by Shuffle", i)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(31)
	const draws = 200000
	var sum, sumSq float64
	for i := 0; i < draws; i++ {
		x := r.NormFloat64()
		sum += x
		sumSq += x * x
	}
	mean := sum / draws
	variance := sumSq/draws - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(13)
	const p, draws = 0.25, 100000
	sum := 0
	for i := 0; i < draws; i++ {
		sum += r.Geometric(p)
	}
	mean := float64(sum) / draws
	want := (1 - p) / p // mean of failures-before-success geometric
	if math.Abs(mean-want) > 0.1 {
		t.Errorf("geometric mean = %v, want ~%v", mean, want)
	}
}

func TestGeometricP1(t *testing.T) {
	r := New(17)
	for i := 0; i < 100; i++ {
		if v := r.Geometric(1); v != 0 {
			t.Fatalf("Geometric(1) = %d, want 0", v)
		}
	}
}

func TestGeometricPanics(t *testing.T) {
	for _, p := range []float64{0, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Geometric(%v) did not panic", p)
				}
			}()
			New(1).Geometric(p)
		}()
	}
}

func TestInt63NonNegative(t *testing.T) {
	r := New(21)
	for i := 0; i < 10000; i++ {
		if v := r.Int63(); v < 0 {
			t.Fatalf("Int63 returned negative %d", v)
		}
	}
}

func TestMul64(t *testing.T) {
	cases := []struct {
		a, b, hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Intn(1000)
	}
}
