package telemetry

// Collector is the concrete Probe: it folds engine and protocol events
// into counters, per-slot collision heatmaps, per-link busy integrals and
// fixed-bucket histograms. All state is sized in BeginRun (growing only
// when a larger graph appears), so the per-event path is allocation-free
// in steady state. A Collector is single-goroutine like any Probe; use
// Merge or Live to combine collectors from concurrent workers.
//
// Per-link state is indexed by physical directed link ID, so a collector
// fed runs on different graphs mixes their heatmaps; use one collector
// per topology (or Reset between them) for meaningful per-link data.
type Collector struct {
	links     int // per-link state currently provisioned
	bandwidth int

	runs           uint64
	steps          uint64
	msgBusy        uint64 // busy-slot-steps, message band (from StepAdvanced)
	ackBusy        uint64 // busy-slot-steps, ack band
	cuts           [NumBands]uint64
	splits         uint64
	delivered      uint64
	acked          uint64
	wormsLaunched  uint64
	roundsObserved uint64
	faultsStarted  uint64
	faultsEnded    uint64
	faultKills     [NumBands]uint64

	// boundaryHandoffs counts worm heads crossing a shard boundary and
	// boundaryWords the packed occupancy words exchanged between shards;
	// both are fed by the sharded runner via AddBoundaryTraffic and stay
	// zero on single-engine runs.
	boundaryHandoffs uint64
	boundaryWords    uint64

	// collisions is the cut heatmap, indexed (band*links + link)*B + wave.
	collisions []uint64
	// linkBusy integrates per-(band, link) busy-slot time from the
	// claim/release event stream, indexed band*links + link.
	linkBusy []linkBusyState

	retries     Histogram // rounds before the successful one, per acked worm
	roundsToAck Histogram // 1-based round of the acknowledgement
	delivery    Histogram // steps from launch to full delivery
	ackLatency  Histogram // ack-train residence steps (0 = oracle)
	makespan    Histogram // per-run makespan

	// rounds keeps the most recent per-round summaries up to its fixed
	// capacity; older entries are dropped and counted in roundsDropped so
	// the protocol path stays allocation-free.
	rounds        []RoundInfo
	roundsDropped uint64
	curRound      int // 1-based round in flight; 0 = outside a protocol
}

// linkBusyState integrates one (band, link)'s busy-slot time: occupied
// holds the current number of busy wavelength slots, lastT the step of
// the last transition, and busySteps the integral so far.
type linkBusyState struct {
	occupied  int
	lastT     int
	busySteps uint64
}

// maxTrackedRounds bounds the per-round summary buffer of one Collector.
const maxTrackedRounds = 512

// NewCollector returns a collector with the default histogram layouts:
// power-of-two buckets for latencies and makespans, linear buckets for
// round counts.
func NewCollector() *Collector {
	return &Collector{
		retries:     NewHistogram(LinearBuckets(0, 1, 16)),
		roundsToAck: NewHistogram(LinearBuckets(1, 1, 16)),
		delivery:    NewHistogram(ExpBuckets(1, 2, 20)),
		ackLatency:  NewHistogram(ExpBuckets(1, 2, 20)),
		makespan:    NewHistogram(ExpBuckets(1, 2, 24)),
		rounds:      make([]RoundInfo, 0, maxTrackedRounds),
	}
}

// BeginRun implements Probe: it (re)provisions the per-slot and per-link
// state for the run's dimensions. Growth allocates; a steady state of
// same-sized runs does not.
func (c *Collector) BeginRun(meta RunMeta) {
	c.runs++
	c.wormsLaunched += uint64(meta.Worms)
	c.provision(meta.Links, meta.Bandwidth)
}

// Provision grows the per-slot and per-link tables to cover at least the
// given geometry without recording a run. The sharded runner uses it to
// pre-size per-shard collectors that observe slot events for a run whose
// BeginRun is delivered to the primary probe only.
func (c *Collector) Provision(links, bandwidth int) { c.provision(links, bandwidth) }

// AddBoundaryTraffic accounts one run's cross-shard exchange volume:
// handoffs counts worm heads that crossed a shard boundary, words the
// packed occupancy words shipped between shards. Single-engine runs never
// call this.
func (c *Collector) AddBoundaryTraffic(handoffs, words uint64) {
	c.boundaryHandoffs += handoffs
	c.boundaryWords += words
}

// provision grows the per-slot and per-link tables to cover at least the
// given geometry. Per-link data survives growth; the per-wavelength
// collision heatmap survives only while the wavelength stride (bandwidth)
// is unchanged — re-binning counts across strides is not meaningful, and
// mixed-geometry collectors are documented as per-topology anyway.
func (c *Collector) provision(links, bandwidth int) {
	if links <= c.links && bandwidth <= c.bandwidth {
		return
	}
	links = max(links, c.links)
	bandwidth = max(bandwidth, c.bandwidth)
	collisions := make([]uint64, NumBands*links*bandwidth)
	linkBusy := make([]linkBusyState, NumBands*links)
	for band := 0; band < NumBands && c.links > 0; band++ {
		copy(linkBusy[band*links:], c.linkBusy[band*c.links:(band+1)*c.links])
		if bandwidth == c.bandwidth {
			copy(collisions[band*links*bandwidth:], c.collisions[band*c.links*bandwidth:(band+1)*c.links*bandwidth])
		}
	}
	c.collisions = collisions
	c.linkBusy = linkBusy
	c.links, c.bandwidth = links, bandwidth
}

// StepAdvanced implements Probe.
func (c *Collector) StepAdvanced(t, msgBusy, ackBusy int) {
	c.steps++
	c.msgBusy += uint64(msgBusy)
	c.ackBusy += uint64(ackBusy)
}

// SlotClaimed implements Probe.
func (c *Collector) SlotClaimed(t, band, link, wavelength int) {
	lb := &c.linkBusy[band*c.links+link]
	lb.busySteps += uint64(lb.occupied) * uint64(t-lb.lastT)
	lb.lastT = t
	lb.occupied++
}

// SlotReleased implements Probe.
func (c *Collector) SlotReleased(t, band, link, wavelength int) {
	lb := &c.linkBusy[band*c.links+link]
	lb.busySteps += uint64(lb.occupied) * uint64(t-lb.lastT)
	lb.lastT = t
	lb.occupied--
}

// WormCut implements Probe.
func (c *Collector) WormCut(t, band, link, wavelength, worm int, isAck bool) {
	c.cuts[band]++
	c.collisions[(band*c.links+link)*c.bandwidth+wavelength]++
}

// FragmentSplit implements Probe.
func (c *Collector) FragmentSplit(t, worm int) { c.splits++ }

// WormDelivered implements Probe.
func (c *Collector) WormDelivered(t, worm, pathLen, residence int) {
	c.delivered++
	c.delivery.Observe(residence)
}

// AckCompleted implements Probe.
func (c *Collector) AckCompleted(t, worm, residence int) {
	c.acked++
	c.ackLatency.Observe(residence)
	if c.curRound > 0 {
		c.roundsToAck.Observe(c.curRound)
		c.retries.Observe(c.curRound - 1)
	}
}

// FaultStarted implements Probe.
func (c *Collector) FaultStarted(t, kind, target int) { c.faultsStarted++ }

// FaultEnded implements Probe.
func (c *Collector) FaultEnded(t, kind, target int) { c.faultsEnded++ }

// WormKilledByFault implements Probe.
func (c *Collector) WormKilledByFault(t, band, link, worm int, isAck bool) {
	c.faultKills[band]++
}

// EndRun implements Probe.
func (c *Collector) EndRun(makespan int) { c.makespan.Observe(makespan) }

// RoundStarted implements Probe.
func (c *Collector) RoundStarted(round, delayRange, active int) {
	c.curRound = round
}

// RoundFinished implements Probe.
func (c *Collector) RoundFinished(info RoundInfo) {
	c.roundsObserved++
	c.curRound = 0
	if len(c.rounds) < cap(c.rounds) {
		c.rounds = append(c.rounds, info)
	} else {
		c.roundsDropped++
	}
}

// Merge folds o's observations into c; o is left untouched. Histograms
// must share layouts (true for NewCollector-built collectors). Per-link
// tables grow to the larger geometry following the BeginRun rules.
func (c *Collector) Merge(o *Collector) {
	c.provision(o.links, o.bandwidth)
	c.runs += o.runs
	c.steps += o.steps
	c.msgBusy += o.msgBusy
	c.ackBusy += o.ackBusy
	for b := range c.cuts {
		c.cuts[b] += o.cuts[b]
	}
	c.splits += o.splits
	c.delivered += o.delivered
	c.acked += o.acked
	c.wormsLaunched += o.wormsLaunched
	c.roundsObserved += o.roundsObserved
	c.faultsStarted += o.faultsStarted
	c.faultsEnded += o.faultsEnded
	for b := range c.faultKills {
		c.faultKills[b] += o.faultKills[b]
	}
	c.boundaryHandoffs += o.boundaryHandoffs
	c.boundaryWords += o.boundaryWords
	if o.links > 0 && c.bandwidth == o.bandwidth {
		for band := 0; band < NumBands; band++ {
			for l := 0; l < o.links; l++ {
				c.linkBusy[band*c.links+l].busySteps += o.linkBusy[band*o.links+l].busySteps
				for w := 0; w < o.bandwidth; w++ {
					c.collisions[(band*c.links+l)*c.bandwidth+w] +=
						o.collisions[(band*o.links+l)*o.bandwidth+w]
				}
			}
		}
	}
	c.retries.Merge(&o.retries)
	c.roundsToAck.Merge(&o.roundsToAck)
	c.delivery.Merge(&o.delivery)
	c.ackLatency.Merge(&o.ackLatency)
	c.makespan.Merge(&o.makespan)
	for _, r := range o.rounds {
		if len(c.rounds) < cap(c.rounds) {
			c.rounds = append(c.rounds, r)
		} else {
			c.roundsDropped++
		}
	}
	c.roundsDropped += o.roundsDropped
}

// Reset zeroes all observations, keeping every buffer's capacity so the
// collector can be reused without reallocating.
func (c *Collector) Reset() {
	c.runs, c.steps, c.msgBusy, c.ackBusy = 0, 0, 0, 0
	c.cuts = [NumBands]uint64{}
	c.splits, c.delivered, c.acked = 0, 0, 0
	c.wormsLaunched, c.roundsObserved = 0, 0
	c.faultsStarted, c.faultsEnded = 0, 0
	c.faultKills = [NumBands]uint64{}
	c.boundaryHandoffs, c.boundaryWords = 0, 0
	for i := range c.collisions {
		c.collisions[i] = 0
	}
	for i := range c.linkBusy {
		c.linkBusy[i] = linkBusyState{}
	}
	c.retries.Reset()
	c.roundsToAck.Reset()
	c.delivery.Reset()
	c.ackLatency.Reset()
	c.makespan.Reset()
	c.rounds = c.rounds[:0]
	c.roundsDropped = 0
	c.curRound = 0
}

// SlotCount is one nonzero cell of the collision heatmap.
type SlotCount struct {
	// Band is MessageBand or AckBand.
	Band int `json:"band"`
	// Link is the physical directed link ID.
	Link int `json:"link"`
	// Wavelength indexes the band's wavelengths.
	Wavelength int `json:"wavelength"`
	// Count is the number of cuts at this slot.
	Count uint64 `json:"count"`
}

// LinkBusy is one nonzero cell of the per-link busy integral.
type LinkBusy struct {
	// Band is MessageBand or AckBand.
	Band int `json:"band"`
	// Link is the physical directed link ID.
	Link int `json:"link"`
	// BusySlotSteps is the link's occupied (wavelength, step) slot count.
	BusySlotSteps uint64 `json:"busy_slot_steps"`
}

// Snapshot is a self-contained, serializable copy of a Collector's
// state, safe to hold after the collector moves on.
type Snapshot struct {
	// Links and Bandwidth give the provisioned heatmap geometry.
	Links int `json:"links"`
	// Bandwidth is the number of wavelengths per band.
	Bandwidth int `json:"bandwidth"`
	// Runs counts simulation runs observed (protocol rounds each count
	// one run).
	Runs uint64 `json:"runs"`
	// Steps counts executed simulation steps.
	Steps uint64 `json:"steps"`
	// WormsLaunched counts worms launched across runs.
	WormsLaunched uint64 `json:"worms_launched"`
	// MessageBusySlotSteps and AckBusySlotSteps total the occupied
	// (link, wavelength, step) slots per band.
	MessageBusySlotSteps uint64 `json:"message_busy_slot_steps"`
	// AckBusySlotSteps is the ack-band total.
	AckBusySlotSteps uint64 `json:"ack_busy_slot_steps"`
	// MessageCuts and AckCuts count lost conflicts per band.
	MessageCuts uint64 `json:"message_cuts"`
	// AckCuts counts ack-band cuts.
	AckCuts uint64 `json:"ack_cuts"`
	// FragmentSplits counts wreckage splits (Drain-policy cuts).
	FragmentSplits uint64 `json:"fragment_splits"`
	// Delivered and Acked count worm completions.
	Delivered uint64 `json:"delivered"`
	// Acked counts acknowledged worms.
	Acked uint64 `json:"acked"`
	// RoundsObserved counts finished protocol rounds.
	RoundsObserved uint64 `json:"rounds_observed"`
	// FaultsStarted and FaultsEnded count injected fault activations and
	// repairs observed across runs.
	FaultsStarted uint64 `json:"faults_started"`
	// FaultsEnded counts fault repairs.
	FaultsEnded uint64 `json:"faults_ended"`
	// MessageFaultKills and AckFaultKills count trains destroyed by
	// injected faults per band — kept apart from MessageCuts/AckCuts,
	// which count only lost contentions.
	MessageFaultKills uint64 `json:"message_fault_kills"`
	// AckFaultKills is the ack-band fault-kill total.
	AckFaultKills uint64 `json:"ack_fault_kills"`
	// BoundaryHandoffs counts worm heads that crossed a shard boundary in
	// sharded runs; zero for single-engine runs.
	BoundaryHandoffs uint64 `json:"boundary_handoffs,omitempty"`
	// BoundaryWords counts packed occupancy words exchanged between shards.
	BoundaryWords uint64 `json:"boundary_words,omitempty"`
	// Collisions lists the nonzero cut-heatmap cells.
	Collisions []SlotCount `json:"collisions,omitempty"`
	// LinkBusySteps lists the nonzero per-link busy integrals.
	LinkBusySteps []LinkBusy `json:"link_busy_steps,omitempty"`
	// Retries is the per-acked-worm failed-round count distribution.
	Retries HistogramSnapshot `json:"retries"`
	// RoundsToAck is the 1-based acknowledgement round distribution.
	RoundsToAck HistogramSnapshot `json:"rounds_to_ack"`
	// StepsToDelivery is the launch-to-delivery residence distribution.
	StepsToDelivery HistogramSnapshot `json:"steps_to_delivery"`
	// AckResidence is the ack-train residence distribution.
	AckResidence HistogramSnapshot `json:"ack_residence"`
	// Makespan is the per-run makespan distribution.
	Makespan HistogramSnapshot `json:"makespan"`
	// Rounds holds the retained per-round summaries (newest runs last).
	Rounds []RoundInfo `json:"rounds,omitempty"`
	// RoundsDropped counts summaries dropped beyond the retention cap.
	RoundsDropped uint64 `json:"rounds_dropped"`
}

// Snapshot copies the collector's state into a Snapshot. It allocates
// (it is the cold read path) and may be called between runs or after
// Merge; it must not race with hooks on the same collector.
func (c *Collector) Snapshot() *Snapshot {
	s := &Snapshot{
		Links:                c.links,
		Bandwidth:            c.bandwidth,
		Runs:                 c.runs,
		Steps:                c.steps,
		WormsLaunched:        c.wormsLaunched,
		MessageBusySlotSteps: c.msgBusy,
		AckBusySlotSteps:     c.ackBusy,
		MessageCuts:          c.cuts[MessageBand],
		AckCuts:              c.cuts[AckBand],
		FragmentSplits:       c.splits,
		Delivered:            c.delivered,
		Acked:                c.acked,
		RoundsObserved:       c.roundsObserved,
		FaultsStarted:        c.faultsStarted,
		FaultsEnded:          c.faultsEnded,
		MessageFaultKills:    c.faultKills[MessageBand],
		AckFaultKills:        c.faultKills[AckBand],
		BoundaryHandoffs:     c.boundaryHandoffs,
		BoundaryWords:        c.boundaryWords,
		Retries:              c.retries.Snapshot(),
		RoundsToAck:          c.roundsToAck.Snapshot(),
		StepsToDelivery:      c.delivery.Snapshot(),
		AckResidence:         c.ackLatency.Snapshot(),
		Makespan:             c.makespan.Snapshot(),
		Rounds:               append([]RoundInfo(nil), c.rounds...),
		RoundsDropped:        c.roundsDropped,
	}
	for band := 0; band < NumBands; band++ {
		for l := 0; l < c.links; l++ {
			for w := 0; w < c.bandwidth; w++ {
				if n := c.collisions[(band*c.links+l)*c.bandwidth+w]; n > 0 {
					s.Collisions = append(s.Collisions, SlotCount{Band: band, Link: l, Wavelength: w, Count: n})
				}
			}
			if lb := c.linkBusy[band*c.links+l]; lb.busySteps > 0 {
				s.LinkBusySteps = append(s.LinkBusySteps, LinkBusy{Band: band, Link: l, BusySlotSteps: lb.busySteps})
			}
		}
	}
	return s
}
