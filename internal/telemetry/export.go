package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
)

// bandName maps a band index to its Prometheus label value.
func bandName(band int) string {
	if band == AckBand {
		return "ack"
	}
	return "message"
}

// WriteJSON serializes the snapshot as indented JSON.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WritePrometheus serializes the snapshot in the Prometheus text
// exposition format under the optnet_ metric namespace: run/step/cut
// counters, the per-slot collision heatmap and per-link busy integrals as
// labeled series, and the latency distributions as cumulative-bucket
// histograms.
func (s *Snapshot) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(bw, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("optnet_runs_total", "Simulation runs observed.", s.Runs)
	counter("optnet_steps_total", "Executed simulation steps.", s.Steps)
	counter("optnet_worms_launched_total", "Worms launched across runs.", s.WormsLaunched)
	counter("optnet_worms_delivered_total", "Worms fully delivered.", s.Delivered)
	counter("optnet_worms_acked_total", "Worms acknowledged.", s.Acked)
	counter("optnet_fragment_splits_total", "Wreckage splits after cuts.", s.FragmentSplits)
	counter("optnet_rounds_observed_total", "Finished protocol rounds.", s.RoundsObserved)

	fmt.Fprintf(bw, "# HELP optnet_busy_slot_steps_total Occupied (link, wavelength) slots summed over steps.\n")
	fmt.Fprintf(bw, "# TYPE optnet_busy_slot_steps_total counter\n")
	fmt.Fprintf(bw, "optnet_busy_slot_steps_total{band=\"message\"} %d\n", s.MessageBusySlotSteps)
	fmt.Fprintf(bw, "optnet_busy_slot_steps_total{band=\"ack\"} %d\n", s.AckBusySlotSteps)

	fmt.Fprintf(bw, "# HELP optnet_cuts_total Lost conflicts by band.\n# TYPE optnet_cuts_total counter\n")
	fmt.Fprintf(bw, "optnet_cuts_total{band=\"message\"} %d\n", s.MessageCuts)
	fmt.Fprintf(bw, "optnet_cuts_total{band=\"ack\"} %d\n", s.AckCuts)

	counter("optnet_faults_started_total", "Injected fault activations.", s.FaultsStarted)
	counter("optnet_faults_ended_total", "Injected fault repairs.", s.FaultsEnded)
	fmt.Fprintf(bw, "# HELP optnet_fault_kills_total Trains destroyed by injected faults, by band.\n")
	fmt.Fprintf(bw, "# TYPE optnet_fault_kills_total counter\n")
	fmt.Fprintf(bw, "optnet_fault_kills_total{band=\"message\"} %d\n", s.MessageFaultKills)
	fmt.Fprintf(bw, "optnet_fault_kills_total{band=\"ack\"} %d\n", s.AckFaultKills)

	counter("optnet_boundary_handoffs_total", "Worm heads crossing shard boundaries (sharded runs).", s.BoundaryHandoffs)
	counter("optnet_boundary_words_total", "Packed occupancy words exchanged between shards.", s.BoundaryWords)

	if len(s.Collisions) > 0 {
		fmt.Fprintf(bw, "# HELP optnet_link_cuts_total Cut heatmap by band, link and wavelength.\n")
		fmt.Fprintf(bw, "# TYPE optnet_link_cuts_total counter\n")
		for _, cell := range s.Collisions {
			fmt.Fprintf(bw, "optnet_link_cuts_total{band=%q,link=\"%d\",wavelength=\"%d\"} %d\n",
				bandName(cell.Band), cell.Link, cell.Wavelength, cell.Count)
		}
	}
	if len(s.LinkBusySteps) > 0 {
		fmt.Fprintf(bw, "# HELP optnet_link_busy_slot_steps_total Per-link occupied slot-steps by band.\n")
		fmt.Fprintf(bw, "# TYPE optnet_link_busy_slot_steps_total counter\n")
		for _, cell := range s.LinkBusySteps {
			fmt.Fprintf(bw, "optnet_link_busy_slot_steps_total{band=%q,link=\"%d\"} %d\n",
				bandName(cell.Band), cell.Link, cell.BusySlotSteps)
		}
	}

	writeHistogram(bw, "optnet_retries", "Failed rounds before the acknowledgement, per acked worm.", &s.Retries)
	writeHistogram(bw, "optnet_rounds_to_ack", "Round (1-based) in which each worm was acknowledged.", &s.RoundsToAck)
	writeHistogram(bw, "optnet_steps_to_delivery", "Steps from launch to full delivery.", &s.StepsToDelivery)
	writeHistogram(bw, "optnet_ack_residence_steps", "Ack-train residence steps (0 for oracle acks).", &s.AckResidence)
	writeHistogram(bw, "optnet_run_makespan_steps", "Per-run makespan in steps.", &s.Makespan)
	return bw.Flush()
}

// writeHistogram emits one snapshot histogram with Prometheus cumulative
// le buckets. It takes the concrete *bufio.Writer rather than io.Writer
// on purpose: buffered writes cannot fail here — errors are sticky and
// surface at the caller's checked Flush.
func writeHistogram(w *bufio.Writer, name, help string, h *HistogramSnapshot) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	cum := uint64(0)
	for i, b := range h.Bounds {
		cum += h.Counts[i]
		fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, b, cum)
	}
	if n := len(h.Bounds); n < len(h.Counts) {
		cum += h.Counts[n]
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", name, h.Sum, name, h.Count)
}

// Live is a mutex-guarded telemetry aggregate for concurrent producers:
// worker goroutines Absorb their per-goroutine collectors into it while
// an Exporter serves Snapshot to scrapers. Snapshots received from
// remote workers fold in through AddSnapshot. The zero value is not
// usable; call NewLive.
type Live struct {
	mu    sync.Mutex
	agg   *Collector //optlint:guardedby mu
	extra *Snapshot  //optlint:guardedby mu
}

// NewLive returns an empty live aggregate.
func NewLive() *Live { return &Live{agg: NewCollector(), extra: &Snapshot{}} }

// Absorb merges the collector's observations into the aggregate and
// resets the collector, so repeated Absorb calls publish deltas.
func (l *Live) Absorb(c *Collector) {
	l.mu.Lock()
	l.agg.Merge(c)
	l.mu.Unlock()
	c.Reset()
}

// AddSnapshot folds an already-snapshotted delta — typically telemetry
// returned by a remote peer that executed stolen trials — into the live
// aggregate. Mixed-geometry snapshots return an error and leave the
// aggregate unchanged, matching Snapshot.Add.
func (l *Live) AddSnapshot(s *Snapshot) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	// Fold into a fresh copy first so a mid-Add mismatch (histogram
	// layouts diverging after the geometry check passed) cannot leave a
	// half-applied delta behind. Adding into an empty snapshot deep-copies
	// every slice, so the scratch shares no state with l.extra.
	scratch := &Snapshot{}
	if err := scratch.Add(l.extra); err != nil {
		return err
	}
	if err := scratch.Add(s); err != nil {
		return err
	}
	l.extra = scratch
	return nil
}

// Snapshot returns a consistent copy of the aggregate, including
// remotely contributed snapshots.
func (l *Live) Snapshot() *Snapshot {
	l.mu.Lock()
	defer l.mu.Unlock()
	snap := l.agg.Snapshot()
	if l.extra.Runs > 0 || l.extra.Steps > 0 {
		if err := snap.Add(l.extra); err != nil {
			// Geometry drifted between local and remote trials; serve the
			// local view rather than fail the scrape.
			return l.agg.Snapshot()
		}
	}
	return snap
}

// Exporter serves telemetry snapshots over HTTP: /metrics in Prometheus
// text format and /snapshot as JSON. The source function is called per
// request and must be safe for concurrent use (Live.Snapshot is).
type Exporter struct {
	source func() *Snapshot
}

// NewExporter returns an exporter reading from the given snapshot
// source.
func NewExporter(source func() *Snapshot) *Exporter {
	return &Exporter{source: source}
}

// Handler returns the exporter's HTTP handler with the /metrics and
// /snapshot routes.
func (e *Exporter) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := e.source().WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := e.source().WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	return mux
}

// ListenAndServe serves the exporter's handler on addr; it blocks like
// http.ListenAndServe.
func (e *Exporter) ListenAndServe(addr string) error {
	return http.ListenAndServe(addr, e.Handler())
}
