package telemetry

import "fmt"

// Add folds o's observations into s, mirroring Collector.Merge at the
// snapshot level. It exists for the job layer's checkpointed sweeps: a
// resumed sweep replays the per-trial snapshots persisted before the
// kill and folds them, in trial order, with the snapshots of the trials
// it re-runs — producing the same aggregate bytes an uninterrupted run
// would have produced.
//
// Both snapshots must come from same-geometry collectors (equal Links
// and Bandwidth, equal histogram bucket layouts) unless one side is
// empty; Add returns an error otherwise. Rounds are retained up to the
// collector's cap, surplus counted in RoundsDropped, exactly like
// Collector.Merge.
func (s *Snapshot) Add(o *Snapshot) error {
	switch {
	case o.Links == 0 && o.Bandwidth == 0:
		// Empty geometry: nothing per-link to reconcile.
	case s.Links == 0 && s.Bandwidth == 0:
		s.Links, s.Bandwidth = o.Links, o.Bandwidth
	case s.Links != o.Links || s.Bandwidth != o.Bandwidth:
		return fmt.Errorf("telemetry: cannot add snapshot with geometry %dx%d to %dx%d",
			o.Links, o.Bandwidth, s.Links, s.Bandwidth)
	}
	s.Runs += o.Runs
	s.Steps += o.Steps
	s.WormsLaunched += o.WormsLaunched
	s.MessageBusySlotSteps += o.MessageBusySlotSteps
	s.AckBusySlotSteps += o.AckBusySlotSteps
	s.MessageCuts += o.MessageCuts
	s.AckCuts += o.AckCuts
	s.FragmentSplits += o.FragmentSplits
	s.Delivered += o.Delivered
	s.Acked += o.Acked
	s.RoundsObserved += o.RoundsObserved
	s.FaultsStarted += o.FaultsStarted
	s.FaultsEnded += o.FaultsEnded
	s.MessageFaultKills += o.MessageFaultKills
	s.AckFaultKills += o.AckFaultKills
	s.BoundaryHandoffs += o.BoundaryHandoffs
	s.BoundaryWords += o.BoundaryWords
	s.Collisions = mergeSlotCounts(s.Collisions, o.Collisions)
	s.LinkBusySteps = mergeLinkBusy(s.LinkBusySteps, o.LinkBusySteps)
	if err := s.Retries.add(&o.Retries); err != nil {
		return err
	}
	if err := s.RoundsToAck.add(&o.RoundsToAck); err != nil {
		return err
	}
	if err := s.StepsToDelivery.add(&o.StepsToDelivery); err != nil {
		return err
	}
	if err := s.AckResidence.add(&o.AckResidence); err != nil {
		return err
	}
	if err := s.Makespan.add(&o.Makespan); err != nil {
		return err
	}
	for _, r := range o.Rounds {
		if len(s.Rounds) < maxTrackedRounds {
			s.Rounds = append(s.Rounds, r)
		} else {
			s.RoundsDropped++
		}
	}
	s.RoundsDropped += o.RoundsDropped
	return nil
}

// add folds o into h; empty sides pass through, mismatched layouts error
// (Histogram.Merge panics instead, but snapshots cross process and disk
// boundaries, so corrupt input must surface as an error).
func (h *HistogramSnapshot) add(o *HistogramSnapshot) error {
	if o.Count == 0 && len(o.Bounds) == 0 {
		return nil
	}
	if h.Count == 0 && len(h.Bounds) == 0 {
		*h = HistogramSnapshot{
			Bounds: append([]int(nil), o.Bounds...),
			Counts: append([]uint64(nil), o.Counts...),
			Count:  o.Count, Sum: o.Sum, Min: o.Min, Max: o.Max,
		}
		return nil
	}
	if len(h.Bounds) != len(o.Bounds) || len(h.Counts) != len(o.Counts) {
		return fmt.Errorf("telemetry: cannot add histograms with different layouts (%d vs %d bounds)",
			len(h.Bounds), len(o.Bounds))
	}
	for i, b := range o.Bounds {
		if h.Bounds[i] != b {
			return fmt.Errorf("telemetry: cannot add histograms with different bounds at %d: %d vs %d", i, h.Bounds[i], b)
		}
	}
	for i, c := range o.Counts {
		h.Counts[i] += c
	}
	h.Count += o.Count
	h.Sum += o.Sum
	if o.Count > 0 {
		if h.Min < 0 || (o.Min >= 0 && o.Min < h.Min) {
			h.Min = o.Min
		}
		if o.Max > h.Max {
			h.Max = o.Max
		}
	}
	return nil
}

// mergeSlotCounts merges two (band, link, wavelength)-sorted heatmap cell
// lists, summing counts of equal cells. Snapshot emits cells in that
// order, so a linear merge keeps the result sorted and deterministic.
func mergeSlotCounts(a, b []SlotCount) []SlotCount {
	if len(b) == 0 {
		return a
	}
	out := make([]SlotCount, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case slotKey(a[i]) < slotKey(b[j]):
			out = append(out, a[i])
			i++
		case slotKey(a[i]) > slotKey(b[j]):
			out = append(out, b[j])
			j++
		default:
			c := a[i]
			c.Count += b[j].Count
			out = append(out, c)
			i, j = i+1, j+1
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// slotKey orders heatmap cells by (band, link, wavelength).
func slotKey(c SlotCount) uint64 {
	return (uint64(c.Band)<<62 | uint64(uint32(c.Link))<<24) + uint64(uint32(c.Wavelength))
}

// mergeLinkBusy merges two (band, link)-sorted busy-integral cell lists,
// summing equal cells.
func mergeLinkBusy(a, b []LinkBusy) []LinkBusy {
	if len(b) == 0 {
		return a
	}
	out := make([]LinkBusy, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		ka := uint64(a[i].Band)<<32 + uint64(uint32(a[i].Link))
		kb := uint64(b[j].Band)<<32 + uint64(uint32(b[j].Link))
		switch {
		case ka < kb:
			out = append(out, a[i])
			i++
		case ka > kb:
			out = append(out, b[j])
			j++
		default:
			c := a[i]
			c.BusySlotSteps += b[j].BusySlotSteps
			out = append(out, c)
			i, j = i+1, j+1
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}
