package telemetry

// Histogram is a fixed-bucket histogram of non-negative integers. The
// bucket layout is chosen at construction and never changes, so Observe
// is a branch-light loop with no allocation; Prometheus-style cumulative
// buckets are materialized only at snapshot time.
type Histogram struct {
	bounds []int    // inclusive upper bounds, strictly increasing
	counts []uint64 // len(bounds)+1; the last bucket is +Inf
	count  uint64
	sum    uint64
	min    int
	max    int
}

// NewHistogram returns a histogram with the given inclusive upper bucket
// bounds (strictly increasing); an implicit +Inf bucket is appended. It
// panics on an empty or non-increasing bounds slice.
func NewHistogram(bounds []int) Histogram {
	if len(bounds) == 0 {
		panic("telemetry: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("telemetry: histogram bounds must be strictly increasing")
		}
	}
	return Histogram{
		bounds: append([]int(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
		min:    -1,
	}
}

// ExpBuckets returns n strictly increasing bounds start, start*factor,
// start*factor^2, ... (rounded up to stay strictly increasing). It
// panics on start < 1, factor < 2 or n < 1.
func ExpBuckets(start, factor, n int) []int {
	if start < 1 || factor < 2 || n < 1 {
		panic("telemetry: ExpBuckets needs start >= 1, factor >= 2, n >= 1")
	}
	bounds := make([]int, n)
	v := start
	for i := 0; i < n; i++ {
		bounds[i] = v
		v *= factor
	}
	return bounds
}

// LinearBuckets returns n bounds start, start+width, start+2*width, ...
// It panics on width < 1 or n < 1.
func LinearBuckets(start, width, n int) []int {
	if width < 1 || n < 1 {
		panic("telemetry: LinearBuckets needs width >= 1, n >= 1")
	}
	bounds := make([]int, n)
	for i := 0; i < n; i++ {
		bounds[i] = start + i*width
	}
	return bounds
}

// Observe records value v (negative values clamp to 0).
func (h *Histogram) Observe(v int) {
	if v < 0 {
		v = 0
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.count++
	h.sum += uint64(v)
	if h.min < 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() uint64 { return h.sum }

// Mean returns the mean observed value (0 with no observations).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Merge adds o's observations into h. The two histograms must share the
// same bucket layout (which they do when built by the same constructor);
// Merge panics otherwise.
func (h *Histogram) Merge(o *Histogram) {
	if len(h.bounds) != len(o.bounds) {
		panic("telemetry: merging histograms with different bucket layouts")
	}
	for i, b := range o.bounds {
		if h.bounds[i] != b {
			panic("telemetry: merging histograms with different bucket layouts")
		}
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.count += o.count
	h.sum += o.sum
	if o.count > 0 {
		if h.min < 0 || (o.min >= 0 && o.min < h.min) {
			h.min = o.min
		}
		if o.max > h.max {
			h.max = o.max
		}
	}
}

// Reset zeroes all observations, keeping the bucket layout.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.count, h.sum, h.min, h.max = 0, 0, -1, 0
}

// Snapshot returns a copy of the histogram's state for serialization.
func (h *Histogram) Snapshot() HistogramSnapshot {
	return HistogramSnapshot{
		Bounds: append([]int(nil), h.bounds...),
		Counts: append([]uint64(nil), h.counts...),
		Count:  h.count,
		Sum:    h.sum,
		Min:    h.min,
		Max:    h.max,
	}
}

// HistogramSnapshot is a serializable copy of a Histogram.
type HistogramSnapshot struct {
	// Bounds are the inclusive upper bucket bounds; an implicit +Inf
	// bucket follows the last bound.
	Bounds []int `json:"bounds"`
	// Counts[i] counts observations in bucket i (len(Bounds)+1 buckets).
	Counts []uint64 `json:"counts"`
	// Count is the total number of observations.
	Count uint64 `json:"count"`
	// Sum is the sum of all observed values.
	Sum uint64 `json:"sum"`
	// Min is the smallest observed value (-1 with no observations).
	Min int `json:"min"`
	// Max is the largest observed value.
	Max int `json:"max"`
}

// Mean returns the snapshot's mean observed value (0 with no
// observations).
func (s *HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile estimates the q-quantile (0 <= q <= 1) from the bucket
// counts by linear interpolation inside the bucket holding the target
// rank, the standard Prometheus-style estimator. The estimate is
// clamped to the exact observed [Min, Max] range, so Quantile(0) is Min,
// Quantile(1) is Max, and tail quantiles landing in the +Inf bucket
// degrade to Max instead of inventing mass beyond it. With no
// observations it returns 0.
func (s *HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 || len(s.Counts) != len(s.Bounds)+1 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	cum := 0.0
	for i, c := range s.Counts {
		prev := cum
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		// Bucket i holds the target rank. Interpolate between its bounds;
		// the first bucket starts at 0 and the +Inf bucket is clamped to
		// the observed Max below.
		lo, hi := 0.0, float64(s.Max)
		if i > 0 {
			lo = float64(s.Bounds[i-1])
		}
		if i < len(s.Bounds) {
			hi = float64(s.Bounds[i])
		}
		// Tighten the interpolation range to the observed extremes.
		if lo < float64(s.Min) {
			lo = float64(s.Min)
		}
		if hi > float64(s.Max) {
			hi = float64(s.Max)
		}
		v := lo
		if c > 0 && hi > lo {
			v = lo + (hi-lo)*(rank-prev)/float64(c)
		}
		if v < float64(s.Min) {
			v = float64(s.Min)
		}
		if v > float64(s.Max) {
			v = float64(s.Max)
		}
		return v
	}
	return float64(s.Max)
}
