package telemetry

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHistogramObserve(t *testing.T) {
	h := NewHistogram([]int{1, 2, 4, 8})
	for _, v := range []int{0, 1, 2, 3, 5, 9, 100, -7} {
		h.Observe(v)
	}
	// -7 clamps to 0; buckets (<=1, <=2, <=4, <=8, +Inf).
	want := []uint64{3, 1, 1, 1, 2}
	s := h.Snapshot()
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d: got %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if h.Count() != 8 {
		t.Errorf("count = %d, want 8", h.Count())
	}
	if h.Sum() != 0+1+2+3+5+9+100+0 {
		t.Errorf("sum = %d", h.Sum())
	}
	if s.Min != 0 || s.Max != 100 {
		t.Errorf("min/max = %d/%d, want 0/100", s.Min, s.Max)
	}
	if got := h.Mean(); got != 15 {
		t.Errorf("mean = %v, want 15", got)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram([]int{1})
	if h.Mean() != 0 {
		t.Error("empty mean must be 0")
	}
	s := h.Snapshot()
	if s.Min != -1 || s.Max != 0 || s.Mean() != 0 {
		t.Errorf("empty snapshot min/max/mean = %d/%d/%v", s.Min, s.Max, s.Mean())
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram([]int{2, 4})
	b := NewHistogram([]int{2, 4})
	a.Observe(1)
	a.Observe(5)
	b.Observe(3)
	a.Merge(&b)
	if a.Count() != 3 || a.Sum() != 9 {
		t.Errorf("merged count/sum = %d/%d, want 3/9", a.Count(), a.Sum())
	}
	s := a.Snapshot()
	if s.Min != 1 || s.Max != 5 {
		t.Errorf("merged min/max = %d/%d", s.Min, s.Max)
	}
	// Merging an empty histogram must not disturb min.
	empty := NewHistogram([]int{2, 4})
	a.Merge(&empty)
	if a.Snapshot().Min != 1 {
		t.Error("merging empty histogram changed min")
	}
}

func TestHistogramMergeLayoutPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("merging different layouts must panic")
		}
	}()
	a := NewHistogram([]int{1, 2})
	b := NewHistogram([]int{1, 3})
	a.Merge(&b)
}

func TestBucketConstructors(t *testing.T) {
	if got := ExpBuckets(1, 2, 5); len(got) != 5 || got[0] != 1 || got[4] != 16 {
		t.Errorf("ExpBuckets(1,2,5) = %v", got)
	}
	if got := LinearBuckets(3, 2, 4); got[0] != 3 || got[3] != 9 {
		t.Errorf("LinearBuckets(3,2,4) = %v", got)
	}
}

// drive feeds a collector a tiny synthetic run: two links, one wavelength,
// one worm delivered and acked over four steps, one cut on link 1, and one
// injected fault window killing an ack train.
func drive(c *Collector) {
	c.BeginRun(RunMeta{Links: 2, Bandwidth: 1, Worms: 1})
	c.SlotClaimed(0, MessageBand, 0, 0)
	c.StepAdvanced(0, 1, 0)
	c.FaultStarted(1, 0, 1)
	c.SlotClaimed(1, MessageBand, 1, 0)
	c.StepAdvanced(1, 2, 0)
	c.SlotReleased(2, MessageBand, 0, 0)
	c.WormCut(2, MessageBand, 1, 0, 7, false)
	c.FragmentSplit(2, 7)
	c.WormKilledByFault(2, AckBand, 1, 7, true)
	c.StepAdvanced(2, 1, 0)
	c.FaultEnded(3, 0, 1)
	c.SlotReleased(3, MessageBand, 1, 0)
	c.WormDelivered(3, 0, 2, 3)
	c.AckCompleted(3, 0, 0)
	c.StepAdvanced(3, 0, 0)
	c.EndRun(3)
}

func TestCollectorCounters(t *testing.T) {
	c := NewCollector()
	drive(c)
	s := c.Snapshot()
	if s.Runs != 1 || s.Steps != 4 || s.WormsLaunched != 1 {
		t.Errorf("runs/steps/worms = %d/%d/%d", s.Runs, s.Steps, s.WormsLaunched)
	}
	if s.MessageBusySlotSteps != 4 || s.AckBusySlotSteps != 0 {
		t.Errorf("busy = %d/%d, want 4/0", s.MessageBusySlotSteps, s.AckBusySlotSteps)
	}
	if s.MessageCuts != 1 || s.AckCuts != 0 || s.FragmentSplits != 1 {
		t.Errorf("cuts/splits = %d/%d/%d", s.MessageCuts, s.AckCuts, s.FragmentSplits)
	}
	if s.Delivered != 1 || s.Acked != 1 {
		t.Errorf("delivered/acked = %d/%d", s.Delivered, s.Acked)
	}
	if s.FaultsStarted != 1 || s.FaultsEnded != 1 {
		t.Errorf("faults started/ended = %d/%d, want 1/1", s.FaultsStarted, s.FaultsEnded)
	}
	if s.MessageFaultKills != 0 || s.AckFaultKills != 1 {
		t.Errorf("fault kills message/ack = %d/%d, want 0/1", s.MessageFaultKills, s.AckFaultKills)
	}
	if len(s.Collisions) != 1 || s.Collisions[0] != (SlotCount{Band: MessageBand, Link: 1, Wavelength: 0, Count: 1}) {
		t.Errorf("collisions = %+v", s.Collisions)
	}
	if s.Makespan.Count != 1 || s.Makespan.Sum != 3 {
		t.Errorf("makespan histogram = %+v", s.Makespan)
	}
	if s.StepsToDelivery.Sum != 3 || s.StepsToDelivery.Count != 1 {
		t.Errorf("delivery histogram = %+v", s.StepsToDelivery)
	}
}

// TestCollectorLinkBusyIntegral pins the claim/release busy-time math:
// claim at t1, release at t2 contributes exactly t2-t1 slot-steps, which
// matches the engine's end-of-step occupancy counting.
func TestCollectorLinkBusyIntegral(t *testing.T) {
	c := NewCollector()
	drive(c)
	s := c.Snapshot()
	// Link 0 busy over [0,2) = 2, link 1 over [1,3) = 2.
	want := map[int]uint64{0: 2, 1: 2}
	if len(s.LinkBusySteps) != 2 {
		t.Fatalf("link busy cells = %+v", s.LinkBusySteps)
	}
	var sum uint64
	for _, lb := range s.LinkBusySteps {
		if lb.Band != MessageBand || lb.BusySlotSteps != want[lb.Link] {
			t.Errorf("link %d busy = %d, want %d", lb.Link, lb.BusySlotSteps, want[lb.Link])
		}
		sum += lb.BusySlotSteps
	}
	// The per-link integrals must sum to the per-band step counter.
	if sum != s.MessageBusySlotSteps {
		t.Errorf("per-link sum %d != band total %d", sum, s.MessageBusySlotSteps)
	}
}

func TestCollectorRoundHooks(t *testing.T) {
	c := NewCollector()
	c.RoundStarted(1, 64, 10)
	c.BeginRun(RunMeta{Links: 2, Bandwidth: 1, Worms: 10})
	c.AckCompleted(5, 0, 2)
	c.EndRun(5)
	c.RoundFinished(RoundInfo{Round: 1, DelayRange: 64, Active: 10, Acked: 1, Makespan: 5, ResidualCongestion: -1})
	c.RoundStarted(2, 32, 9)
	c.BeginRun(RunMeta{Links: 2, Bandwidth: 1, Worms: 9})
	c.AckCompleted(4, 1, 2)
	c.EndRun(4)
	c.RoundFinished(RoundInfo{Round: 2, DelayRange: 32, Active: 9, Acked: 1, Makespan: 4, ResidualCongestion: -1})

	s := c.Snapshot()
	if s.RoundsObserved != 2 || len(s.Rounds) != 2 {
		t.Fatalf("rounds observed/kept = %d/%d", s.RoundsObserved, len(s.Rounds))
	}
	if s.Rounds[1].DelayRange != 32 {
		t.Errorf("round 2 info = %+v", s.Rounds[1])
	}
	// Worm 0 acked in round 1 (0 retries), worm 1 in round 2 (1 retry).
	if s.Retries.Sum != 1 || s.Retries.Count != 2 {
		t.Errorf("retries histogram = %+v", s.Retries)
	}
	if s.RoundsToAck.Sum != 3 {
		t.Errorf("rounds-to-ack sum = %d, want 3", s.RoundsToAck.Sum)
	}
}

func TestCollectorRoundRetention(t *testing.T) {
	c := NewCollector()
	for r := 1; r <= maxTrackedRounds+3; r++ {
		c.RoundFinished(RoundInfo{Round: r})
	}
	s := c.Snapshot()
	if len(s.Rounds) != maxTrackedRounds || s.RoundsDropped != 3 {
		t.Errorf("kept %d rounds, dropped %d", len(s.Rounds), s.RoundsDropped)
	}
}

func TestCollectorMerge(t *testing.T) {
	a, b := NewCollector(), NewCollector()
	drive(a)
	drive(b)
	a.Merge(b)
	s := a.Snapshot()
	if s.Runs != 2 || s.Steps != 8 || s.Delivered != 2 {
		t.Errorf("merged runs/steps/delivered = %d/%d/%d", s.Runs, s.Steps, s.Delivered)
	}
	if s.MessageBusySlotSteps != 8 {
		t.Errorf("merged busy = %d, want 8", s.MessageBusySlotSteps)
	}
	if len(s.Collisions) != 1 || s.Collisions[0].Count != 2 {
		t.Errorf("merged collisions = %+v", s.Collisions)
	}
	if s.StepsToDelivery.Count != 2 {
		t.Errorf("merged delivery count = %d", s.StepsToDelivery.Count)
	}
	if s.FaultsStarted != 2 || s.FaultsEnded != 2 || s.AckFaultKills != 2 {
		t.Errorf("merged fault counters = %d/%d/%d, want 2/2/2",
			s.FaultsStarted, s.FaultsEnded, s.AckFaultKills)
	}
	// b is untouched by Merge.
	if b.Snapshot().Runs != 1 {
		t.Error("Merge must not modify its argument")
	}
}

func TestCollectorReset(t *testing.T) {
	c := NewCollector()
	drive(c)
	c.Reset()
	s := c.Snapshot()
	if s.Runs != 0 || s.Steps != 0 || len(s.Collisions) != 0 || len(s.LinkBusySteps) != 0 {
		t.Errorf("reset left state behind: %+v", s)
	}
	if s.FaultsStarted != 0 || s.FaultsEnded != 0 || s.MessageFaultKills != 0 || s.AckFaultKills != 0 {
		t.Errorf("reset left fault counters behind: %+v", s)
	}
	// The geometry stays provisioned, so reuse does not reallocate.
	if s.Links != 2 || s.Bandwidth != 1 {
		t.Errorf("reset must keep provisioned geometry, got %d/%d", s.Links, s.Bandwidth)
	}
}

// TestCollectorHooksAllocationFree pins the tentpole's core promise: once
// provisioned, the per-event path performs zero allocations.
func TestCollectorHooksAllocationFree(t *testing.T) {
	c := NewCollector()
	drive(c) // warm up: provisions tables for this geometry
	if avg := testing.AllocsPerRun(100, func() { drive(c) }); avg != 0 {
		t.Errorf("collector hooks allocate %v allocs per run, want 0", avg)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	c := NewCollector()
	drive(c)
	var buf bytes.Buffer
	if err := c.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("round-trip decode: %v\n%s", err, buf.String())
	}
	if back.Runs != 1 || back.MessageBusySlotSteps != 4 || len(back.Collisions) != 1 {
		t.Errorf("round-tripped snapshot = %+v", back)
	}
	if back.Makespan.Count != 1 {
		t.Errorf("round-tripped histogram = %+v", back.Makespan)
	}
}

func TestWritePrometheus(t *testing.T) {
	c := NewCollector()
	drive(c)
	var buf bytes.Buffer
	if err := c.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"optnet_runs_total 1\n",
		"optnet_steps_total 4\n",
		"optnet_busy_slot_steps_total{band=\"message\"} 4\n",
		"optnet_cuts_total{band=\"message\"} 1\n",
		"optnet_link_cuts_total{band=\"message\",link=\"1\",wavelength=\"0\"} 1\n",
		"optnet_link_busy_slot_steps_total{band=\"message\",link=\"0\"} 2\n",
		"optnet_faults_started_total 1\n",
		"optnet_faults_ended_total 1\n",
		"optnet_fault_kills_total{band=\"ack\"} 1\n",
		"optnet_steps_to_delivery_count 1\n",
		"optnet_run_makespan_steps_sum 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output:\n%s", want, out)
		}
	}
	// Histogram buckets must be cumulative and end at +Inf == count.
	if !strings.Contains(out, "optnet_run_makespan_steps_bucket{le=\"+Inf\"} 1\n") {
		t.Errorf("missing +Inf bucket:\n%s", out)
	}
}

func TestLiveAbsorbAndExporter(t *testing.T) {
	live := NewLive()
	c := NewCollector()
	drive(c)
	live.Absorb(c)
	if c.Snapshot().Runs != 0 {
		t.Error("Absorb must reset the source collector")
	}
	drive(c)
	live.Absorb(c) // second delta accumulates

	srv := httptest.NewServer(NewExporter(live.Snapshot).Handler())
	defer srv.Close()

	get := func(path string) (string, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d", path, resp.StatusCode)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	metrics, ctype := get("/metrics")
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Errorf("/metrics content type = %q", ctype)
	}
	if !strings.Contains(metrics, "optnet_runs_total 2\n") {
		t.Errorf("aggregated metrics missing runs=2:\n%s", metrics)
	}

	snap, ctype := get("/snapshot")
	if ctype != "application/json" {
		t.Errorf("/snapshot content type = %q", ctype)
	}
	var s Snapshot
	if err := json.Unmarshal([]byte(snap), &s); err != nil {
		t.Fatalf("/snapshot is not JSON: %v", err)
	}
	if s.Runs != 2 || s.Delivered != 2 {
		t.Errorf("aggregated snapshot runs/delivered = %d/%d", s.Runs, s.Delivered)
	}
}

func TestHistogramSnapshotQuantile(t *testing.T) {
	h := NewHistogram(LinearBuckets(10, 10, 10)) // bounds 10..100
	// 100 observations of 1..100: quantiles are predictable.
	for v := 1; v <= 100; v++ {
		h.Observe(v)
	}
	s := h.Snapshot()
	cases := []struct {
		q    float64
		lo   float64
		hi   float64
		name string
	}{
		{0, 1, 1, "q0 is min"},
		{0.5, 45, 55, "median near 50"},
		{0.95, 90, 100, "p95 near 95"},
		{1, 100, 100, "q1 is max"},
		{-0.5, 1, 1, "clamped below"},
		{1.5, 100, 100, "clamped above"},
	}
	for _, tc := range cases {
		got := s.Quantile(tc.q)
		if got < tc.lo || got > tc.hi {
			t.Errorf("%s: Quantile(%v) = %v, want in [%v, %v]", tc.name, tc.q, got, tc.lo, tc.hi)
		}
	}

	// Empty snapshot.
	emptyH := NewHistogram([]int{8})
	empty := emptyH.Snapshot()
	if got := empty.Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile = %v, want 0", got)
	}

	// All mass in the +Inf bucket clamps to the observed max.
	over := NewHistogram([]int{4})
	over.Observe(1000)
	over.Observe(2000)
	os := over.Snapshot()
	if got := os.Quantile(0.99); got < 1000 || got > 2000 {
		t.Errorf("+Inf-bucket Quantile = %v, want within observed [1000, 2000]", got)
	}
	if got := os.Quantile(1); got != 2000 {
		t.Errorf("+Inf-bucket Quantile(1) = %v, want 2000 (observed max)", got)
	}
	if got := os.Quantile(0); got != 1000 {
		t.Errorf("+Inf-bucket Quantile(0) = %v, want 1000 (observed min)", got)
	}

	// A single observation answers every quantile exactly.
	one := NewHistogram([]int{8, 16})
	one.Observe(5)
	ones := one.Snapshot()
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := ones.Quantile(q); got != 5 {
			t.Errorf("single-observation Quantile(%v) = %v, want 5", q, got)
		}
	}
}

// brokenWriter fails every write, standing in for a scraper that hung up.
type brokenWriter struct{}

func (brokenWriter) Write([]byte) (int, error) {
	return 0, errors.New("pipe closed")
}

// TestWritePrometheusPropagatesWriteError pins the error path of the
// buffered exposition writer: every byte goes through one *bufio.Writer
// whose sticky error must surface at the final Flush, never be dropped.
func TestWritePrometheusPropagatesWriteError(t *testing.T) {
	c := NewCollector()
	if err := c.Snapshot().WritePrometheus(brokenWriter{}); err == nil {
		t.Fatal("WritePrometheus to a failing writer returned nil error")
	}
}
