package telemetry

import (
	"encoding/json"
	"reflect"
	"testing"
)

// feedTrial drives one synthetic trial's worth of events into c. The
// trial index varies the event mix so merged snapshots actually exercise
// cell merging (overlapping and disjoint heatmap cells, distinct
// histogram buckets).
func feedTrial(c *Collector, trial int) {
	c.BeginRun(RunMeta{Links: 8, Bandwidth: 2, Worms: 4})
	c.RoundStarted(trial+1, 3, 4)
	c.StepAdvanced(0, 3, 1)
	c.SlotClaimed(0, MessageBand, trial%4, 0)
	c.SlotClaimed(0, MessageBand, 5, 1)
	c.SlotReleased(3+trial, MessageBand, trial%4, 0)
	c.WormCut(2, MessageBand, trial%4, 0, 1, false)
	c.WormCut(2, AckBand, 6, 1, 2, true)
	c.FragmentSplit(2, 1)
	c.WormDelivered(4, 2, 3, 4+trial)
	c.AckCompleted(5, 2, trial)
	c.FaultStarted(1, 0, trial%4)
	if trial%2 == 0 {
		c.FaultEnded(6, 0, trial%4)
		c.WormKilledByFault(3, MessageBand, 2, 3, false)
	}
	c.SlotReleased(7+trial, MessageBand, 5, 1)
	c.RoundFinished(RoundInfo{Round: trial + 1, Acked: 1, Active: 4})
	c.EndRun(8 + trial)
}

// TestSnapshotAddMatchesCollectorMerge is the checkpoint-resume identity:
// folding per-trial snapshots with Add must reproduce, field for field,
// the snapshot of a collector that merged the same trials directly.
func TestSnapshotAddMatchesCollectorMerge(t *testing.T) {
	const trials = 5
	live := NewCollector()
	folded := &Snapshot{}
	for trial := 0; trial < trials; trial++ {
		c := NewCollector()
		feedTrial(c, trial)
		live.Merge(c)
		if err := folded.Add(c.Snapshot()); err != nil {
			t.Fatalf("Add trial %d: %v", trial, err)
		}
	}
	want := live.Snapshot()
	if !reflect.DeepEqual(folded, want) {
		fb, _ := json.Marshal(folded)
		wb, _ := json.Marshal(want)
		t.Errorf("folded snapshot diverges from merged collector:\n got %s\nwant %s", fb, wb)
	}
}

// TestSnapshotAddJSONRoundTrip: Add must produce the same result when the
// per-trial snapshots have been through a JSON round trip, which is
// exactly what the job store's checkpoints do.
func TestSnapshotAddJSONRoundTrip(t *testing.T) {
	direct := &Snapshot{}
	viaJSON := &Snapshot{}
	for trial := 0; trial < 3; trial++ {
		c := NewCollector()
		feedTrial(c, trial)
		snap := c.Snapshot()
		if err := direct.Add(snap); err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(snap)
		if err != nil {
			t.Fatal(err)
		}
		var back Snapshot
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatal(err)
		}
		if err := viaJSON.Add(&back); err != nil {
			t.Fatal(err)
		}
	}
	db, _ := json.Marshal(direct)
	jb, _ := json.Marshal(viaJSON)
	if string(db) != string(jb) {
		t.Errorf("JSON round trip changed the fold:\n got %s\nwant %s", jb, db)
	}
}

// TestSnapshotAddGeometryMismatch: differently provisioned snapshots must
// refuse to merge rather than mix per-link tables.
func TestSnapshotAddGeometryMismatch(t *testing.T) {
	a := NewCollector()
	a.BeginRun(RunMeta{Links: 4, Bandwidth: 2})
	b := NewCollector()
	b.BeginRun(RunMeta{Links: 8, Bandwidth: 2})
	s := a.Snapshot()
	if err := s.Add(b.Snapshot()); err == nil {
		t.Fatal("adding mismatched geometries must error")
	}
	// Empty snapshots adopt the other side's geometry instead.
	empty := &Snapshot{}
	if err := empty.Add(b.Snapshot()); err != nil {
		t.Fatalf("empty += provisioned: %v", err)
	}
	if empty.Links != 8 || empty.Bandwidth != 2 {
		t.Errorf("empty snapshot did not adopt geometry: %dx%d", empty.Links, empty.Bandwidth)
	}
	if err := empty.Add(&Snapshot{}); err != nil {
		t.Fatalf("provisioned += empty: %v", err)
	}
}

// TestSnapshotAddHistogramMismatch: corrupt checkpoints with a different
// bucket layout must surface as errors, not silent misfolds.
func TestSnapshotAddHistogramMismatch(t *testing.T) {
	a := NewCollector()
	feedTrial(a, 0)
	s := a.Snapshot()
	o := a.Snapshot()
	o.Retries.Bounds[0]++
	if err := s.Add(o); err == nil {
		t.Fatal("adding histograms with different bounds must error")
	}
	o2 := a.Snapshot()
	o2.Makespan.Bounds = o2.Makespan.Bounds[:3]
	o2.Makespan.Counts = o2.Makespan.Counts[:4]
	if err := s.Add(o2); err == nil {
		t.Fatal("adding histograms with different layouts must error")
	}
}

// TestSnapshotAddRoundsCap: the fold honors the collector's round
// retention cap and accounts for the surplus in RoundsDropped.
func TestSnapshotAddRoundsCap(t *testing.T) {
	s := &Snapshot{}
	per := maxTrackedRounds/2 + 10
	for i := 0; i < 3; i++ {
		o := &Snapshot{Rounds: make([]RoundInfo, per)}
		for j := range o.Rounds {
			o.Rounds[j] = RoundInfo{Round: i*per + j}
		}
		if err := s.Add(o); err != nil {
			t.Fatal(err)
		}
	}
	if len(s.Rounds) != maxTrackedRounds {
		t.Errorf("retained %d rounds, want cap %d", len(s.Rounds), maxTrackedRounds)
	}
	if want := uint64(3*per - maxTrackedRounds); s.RoundsDropped != want {
		t.Errorf("RoundsDropped = %d, want %d", s.RoundsDropped, want)
	}
	if s.Rounds[0].Round != 0 || s.Rounds[maxTrackedRounds-1].Round != maxTrackedRounds-1 {
		t.Error("rounds not retained in fold order")
	}
}

// TestMergeCellLists pins the sorted-merge helpers on overlapping and
// disjoint cells.
func TestMergeCellLists(t *testing.T) {
	a := []SlotCount{{Band: 0, Link: 1, Wavelength: 0, Count: 2}, {Band: 1, Link: 0, Wavelength: 1, Count: 1}}
	b := []SlotCount{{Band: 0, Link: 1, Wavelength: 0, Count: 3}, {Band: 0, Link: 2, Wavelength: 1, Count: 4}}
	got := mergeSlotCounts(a, b)
	want := []SlotCount{
		{Band: 0, Link: 1, Wavelength: 0, Count: 5},
		{Band: 0, Link: 2, Wavelength: 1, Count: 4},
		{Band: 1, Link: 0, Wavelength: 1, Count: 1},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("mergeSlotCounts = %+v, want %+v", got, want)
	}
	la := []LinkBusy{{Band: 0, Link: 3, BusySlotSteps: 7}}
	lb := []LinkBusy{{Band: 0, Link: 2, BusySlotSteps: 1}, {Band: 0, Link: 3, BusySlotSteps: 2}}
	lgot := mergeLinkBusy(la, lb)
	lwant := []LinkBusy{{Band: 0, Link: 2, BusySlotSteps: 1}, {Band: 0, Link: 3, BusySlotSteps: 9}}
	if !reflect.DeepEqual(lgot, lwant) {
		t.Errorf("mergeLinkBusy = %+v, want %+v", lgot, lwant)
	}
}
