// Package telemetry is the observability layer of the routing system: a
// Probe interface the simulator engine and the protocol core invoke at
// well-defined event points, a Collector that turns those events into
// counters, heatmaps and fixed-bucket histograms without allocating in
// steady state, and exporters that publish snapshots in Prometheus
// text format and JSON (optionally over HTTP, for scraping long runs).
//
// The hook surface is deliberately flat — small integers only, no
// simulator types — so the package has no dependency on the engine and
// the engine pays one predictable nil-check branch per hook site when no
// probe is attached. Attaching a probe never changes simulation results;
// probes observe, they do not steer.
//
// Concurrency: a Probe attached to one engine is driven from that
// engine's goroutine only and must not be shared. Monte-Carlo harnesses
// give each worker its own Collector and either Merge them at the end or
// publish deltas into a mutex-guarded Live aggregate as they go.
package telemetry

// Band indices mirror the simulator's two wavelength bands. They are
// plain ints so this package stays independent of the engine's types.
const (
	// MessageBand is the band carrying message worms (sim.MessageBand).
	MessageBand = 0
	// AckBand is the reserved acknowledgement band (sim.AckBand).
	AckBand = 1
	// NumBands is the number of wavelength bands.
	NumBands = 2
)

// RunMeta describes the simulation a probe is about to observe; it gives
// collectors the dimensions they need to pre-size their state so the
// per-event path allocates nothing.
type RunMeta struct {
	// Links is the number of directed links in the graph.
	Links int
	// Bandwidth is B, the number of wavelengths per band.
	Bandwidth int
	// Worms is the number of worms launched this run (0 when the run is
	// driven incrementally, as in dynamic operation).
	Worms int
}

// RoundInfo summarizes one finished protocol round for RoundFinished.
type RoundInfo struct {
	// Round is the 1-based protocol round number.
	Round int `json:"round"`
	// DelayRange is Delta_t, the round's startup-delay range.
	DelayRange int `json:"delay_range"`
	// Active is the number of worms launched this round.
	Active int `json:"active"`
	// Delivered counts worms fully delivered this round.
	Delivered int `json:"delivered"`
	// Acked counts worms acknowledged this round (they become inactive).
	Acked int `json:"acked"`
	// Collisions counts lost conflicts in the round's simulation.
	Collisions int `json:"collisions"`
	// Makespan is the round simulation's last busy step.
	Makespan int `json:"makespan"`
	// ResidualCongestion is the active sub-collection's path congestion at
	// round start; -1 when the protocol run does not track it.
	ResidualCongestion int `json:"residual_congestion"`
	// FaultKills counts trains destroyed by injected faults in the round's
	// simulation (zero when no fault plan is attached). Fault kills are
	// accounted separately from Collisions: they are component failures,
	// not lost contentions.
	FaultKills int `json:"fault_kills,omitempty"`
	// Rerouted counts worms launched on a detour around links down at
	// round start (degraded-mode path re-selection).
	Rerouted int `json:"rerouted,omitempty"`
}

// Probe receives simulation and protocol events. All hooks are invoked
// synchronously from the hot loop, so implementations must be O(1),
// allocation-free after warm-up, and must not block or retain arguments.
//
// Engine-level hooks fire for every simulated round (including rounds
// driven by the dynamic-operation loop); protocol-level hooks fire only
// when a protocol (core.RunWithEngine) drives the engine. Hooks are never
// invoked concurrently for one probe instance.
type Probe interface {
	// BeginRun announces a new simulation run; collectors size their
	// state from meta here so later hooks never allocate.
	BeginRun(meta RunMeta)
	// StepAdvanced fires once per executed simulation step with the
	// number of occupied (link, wavelength) slots per band at step end.
	StepAdvanced(t, msgBusy, ackBusy int)
	// SlotClaimed fires when a free (band, link, wavelength) slot becomes
	// occupied during step t. Together with SlotReleased it lets a
	// collector integrate exact per-link busy time in O(1) per event.
	SlotClaimed(t, band, link, wavelength int)
	// SlotReleased fires when an occupied slot becomes free during step t.
	// A slot handed from one fragment to another without going free (a
	// preemption, a same-train reassignment) emits no events.
	SlotReleased(t, band, link, wavelength int)
	// WormCut fires for every lost conflict: train worm (an ack train
	// when isAck) lost a flit entering the physical link on the given
	// band and wavelength at step t.
	WormCut(t, band, link, wavelength, worm int, isAck bool)
	// FragmentSplit fires when a cut splits a train's surviving flits
	// into wreckage fragments (once per cut, before the split).
	FragmentSplit(t, worm int)
	// WormDelivered fires when a message worm's flits all reach the
	// destination: pathLen links traversed, residence steps after launch.
	WormDelivered(t, worm, pathLen, residence int)
	// AckCompleted fires when the source learns of a delivery: residence
	// is the ack train's steps after launch (0 for oracle acks).
	AckCompleted(t, worm, residence int)
	// FaultStarted fires when an injected fault becomes active at step t.
	// kind is the faults.Kind as a small integer; target is the directed
	// link ID for link-scoped faults and the node ID for stuck couplers.
	FaultStarted(t, kind, target int)
	// FaultEnded fires when an injected fault is repaired at step t, with
	// the same kind/target coordinates as FaultStarted.
	FaultEnded(t, kind, target int)
	// WormKilledByFault fires when an injected fault destroys flits of
	// train worm (an ack train when isAck) on the given band and physical
	// link at step t. Fault kills never fire WormCut; the two streams
	// separate component failures from lost contentions.
	WormKilledByFault(t, band, link, worm int, isAck bool)
	// EndRun closes the run opened by BeginRun with its final makespan.
	EndRun(makespan int)
	// RoundStarted announces protocol round `round` launching `active`
	// worms with startup delays drawn from [0, delayRange).
	RoundStarted(round, delayRange, active int)
	// RoundFinished reports the finished round's summary.
	RoundFinished(info RoundInfo)
}
