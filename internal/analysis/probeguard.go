package analysis

import (
	"go/ast"
	"go/token"
)

// ProbeGuard reports calls through a telemetry probe — any method call
// whose receiver is a field or variable named probe/Probe — that are not
// dominated by a nil check on that exact receiver. The telemetry contract
// (PR 2) is that a nil probe costs one predictable branch per hook site
// and never panics; an unguarded call breaks both halves.
var ProbeGuard = &Analyzer{
	Name: "probeguard",
	Doc:  "every Probe method call must be dominated by a nil check",
	Run:  runProbeGuard,
}

func runProbeGuard(p *Pass) {
	for _, f := range p.Files {
		walkStack(f, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			recv := sel.X
			if !isProbeExpr(recv) {
				return true
			}
			if !dominatedByNilCheck(call, recv, stack) {
				p.Reportf(call.Pos(),
					"call to %s.%s is not dominated by an `if %s != nil` check; a nil probe must cost one branch, not a panic",
					exprString(recv), sel.Sel.Name, exprString(recv))
			}
			return true
		})
	}
}

// isProbeExpr reports whether the expression names a probe: a bare
// identifier or a field selector whose final name is probe or Probe.
func isProbeExpr(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name == "probe" || x.Name == "Probe"
	case *ast.SelectorExpr:
		return x.Sel.Name == "probe" || x.Sel.Name == "Probe"
	case *ast.ParenExpr:
		return isProbeExpr(x.X)
	}
	return false
}

// dominatedByNilCheck reports whether the call lies inside the then-branch
// of an if whose condition is `recv != nil` (possibly conjoined with other
// conditions via &&), or the else-branch of `recv == nil`.
func dominatedByNilCheck(call *ast.CallExpr, recv ast.Expr, stack []ast.Node) bool {
	want := exprString(recv)
	for i := len(stack) - 1; i >= 0; i-- {
		ifs, ok := stack[i].(*ast.IfStmt)
		if !ok {
			continue
		}
		inBody := within(call, ifs.Body)
		inElse := ifs.Else != nil && within(call, ifs.Else)
		if inBody && condChecksNotNil(ifs.Cond, want) {
			return true
		}
		if inElse && condChecksIsNil(ifs.Cond, want) {
			return true
		}
	}
	return false
}

// within reports whether node n's source range lies inside container's.
func within(n, container ast.Node) bool {
	return n.Pos() >= container.Pos() && n.End() <= container.End()
}

// condChecksNotNil reports whether cond guarantees `want != nil` when it
// evaluates true: the comparison itself, or an && conjunction containing it.
func condChecksNotNil(cond ast.Expr, want string) bool {
	switch c := cond.(type) {
	case *ast.BinaryExpr:
		switch c.Op {
		case token.NEQ:
			return isNilCompare(c, want)
		case token.LAND:
			return condChecksNotNil(c.X, want) || condChecksNotNil(c.Y, want)
		}
	case *ast.ParenExpr:
		return condChecksNotNil(c.X, want)
	}
	return false
}

// condChecksIsNil reports whether cond is exactly `want == nil`, so the
// else branch guarantees non-nil.
func condChecksIsNil(cond ast.Expr, want string) bool {
	c, ok := cond.(*ast.BinaryExpr)
	return ok && c.Op == token.EQL && isNilCompare(c, want)
}

// isNilCompare reports whether the binary comparison has nil on one side
// and an expression printing as want on the other.
func isNilCompare(c *ast.BinaryExpr, want string) bool {
	isNil := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && id.Name == "nil"
	}
	if isNil(c.Y) {
		return exprString(c.X) == want
	}
	if isNil(c.X) {
		return exprString(c.Y) == want
	}
	return false
}
