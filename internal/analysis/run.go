package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// ModulePath reads the module path from root/go.mod.
func ModulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s/go.mod", root)
}

// LintModule walks every package directory under root (skipping hidden
// directories and testdata), parses the non-test Go files, type-checks
// the packages in dependency order (module-internal imports resolve from
// the packages checked earlier in the same run, everything else from the
// shared stdlib importer), and runs the given analyzers. modulePath
// anchors the per-package import paths that package-scoped analyzers
// match against. Diagnostics come back sorted by directory, then
// position.
func LintModule(root, modulePath string, analyzers []*Analyzer) ([]Diagnostic, error) {
	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var pkgs []*parsedPackage
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		pkgPath := modulePath
		if rel != "." {
			pkgPath = modulePath + "/" + filepath.ToSlash(rel)
		}
		files, err := parseDir(fset, dir)
		if err != nil {
			return nil, err
		}
		if len(files) == 0 {
			continue
		}
		pkgs = append(pkgs, &parsedPackage{
			path:    pkgPath,
			files:   files,
			imports: moduleImports(files, modulePath),
		})
	}

	module := make(map[string]*types.Package, len(pkgs))
	typed := make(map[string]*types.Info, len(pkgs))
	for _, p := range checkOrder(pkgs) {
		pkg, info, err := checkPackage(fset, p.path, p.files, module)
		if err != nil {
			return nil, err
		}
		module[p.path] = pkg
		typed[p.path] = info
	}

	var diags []Diagnostic
	for _, p := range pkgs {
		diags = append(diags, lintTyped(fset, p.files, p.path, module[p.path], typed[p.path], analyzers)...)
	}
	return diags, nil
}

// packageDirs returns every directory under root containing non-test Go
// files, in sorted order.
func packageDirs(root string) ([]string, error) {
	dirSet := map[string]bool{}
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() {
			name := info.Name()
			if strings.HasPrefix(name, ".") && path != root {
				return filepath.SkipDir
			}
			if name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dirSet[filepath.Dir(path)] = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	dirs := make([]string, 0, len(dirSet))
	for d := range dirSet {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	return dirs, nil
}

// parseDir parses the non-test Go files of one directory, sorted by file
// name so diagnostics and package-comment attribution are deterministic.
func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}
