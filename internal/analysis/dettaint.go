package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// DetTaint tracks nondeterministic values into the determinism-critical
// encoders. Sources are calls whose results differ across identical
// fixed-seed runs: the time package (wall clock, timers), math/rand
// (ambient randomness), os.Getenv/Environ/Hostname/Getpid (ambient
// environment), and receives bound inside a select with more than one
// communication clause (which order goroutine completions). Sinks are
// calls into internal/canon — the canonical encoder behind job keys,
// store values and workload trace envelopes — plus any function
// annotated //optlint:sink. A tainted value reaching a sink argument
// means two byte-identical submissions could hash differently, silently
// breaking content-addressed memoization.
//
// Propagation is intra-function and flow-insensitive: assignments,
// declarations and ranges transfer taint from right to left until a
// fixpoint; a call with a tainted argument taints its result. Map
// iteration order — the remaining nondeterminism source — is enforced
// separately by the mapiter analyzer's collect-and-sort discipline in
// every deterministic package.
var DetTaint = &Analyzer{
	Name: "dettaint",
	Doc:  "nondeterministic values must not reach canon encoding or //optlint:sink functions",
	Run:  runDetTaint,
}

func runDetTaint(p *Pass) {
	sinks := collectSinkFuncs(p)
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			t := &taintTracker{pass: p, tainted: map[types.Object]string{}}
			t.markSelectReceives(fn.Body)
			t.propagate(fn.Body)
			t.checkSinks(fn.Body, sinks)
		}
	}
}

// collectSinkFuncs returns the objects of functions annotated
// //optlint:sink in this package.
func collectSinkFuncs(p *Pass) map[types.Object]bool {
	sinks := map[types.Object]bool{}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Doc == nil {
				continue
			}
			for _, c := range fn.Doc.List {
				if _, ok := directiveArgs(c.Text, sinkMarker); ok {
					if obj := p.Info.Defs[fn.Name]; obj != nil {
						sinks[obj] = true
					}
				}
			}
		}
	}
	return sinks
}

// taintTracker carries one function's taint map: object -> description
// of the nondeterministic source it derives from.
type taintTracker struct {
	pass    *Pass
	tainted map[types.Object]string
}

// sourceDesc reports whether the call is itself a nondeterministic
// source, and describes it.
func (t *taintTracker) sourceDesc(call *ast.CallExpr) string {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = t.pass.Info.ObjectOf(fun)
	case *ast.SelectorExpr:
		obj = t.pass.Info.ObjectOf(fun.Sel)
	}
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	switch obj.Pkg().Path() {
	case "time":
		return "time." + obj.Name()
	case "math/rand", "math/rand/v2":
		return "math/rand." + obj.Name()
	case "os":
		switch obj.Name() {
		case "Getenv", "LookupEnv", "Environ", "Hostname", "Getpid":
			return "os." + obj.Name()
		}
	}
	return ""
}

// markSelectReceives taints variables bound by receives inside selects
// with more than one communication clause: which clause fires first is
// scheduler-dependent.
func (t *taintTracker) markSelectReceives(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok || len(sel.Body.List) < 2 {
			return true
		}
		for _, c := range sel.Body.List {
			comm, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			as, ok := comm.Comm.(*ast.AssignStmt)
			if !ok {
				continue
			}
			for _, lhs := range as.Lhs {
				if obj := t.objectOfTarget(lhs); obj != nil {
					t.tainted[obj] = "multi-case select receive (goroutine completion order)"
				}
			}
		}
		return true
	})
}

// propagate runs the assignment transfer to a fixpoint.
func (t *taintTracker) propagate(body *ast.BlockStmt) {
	for changed, rounds := true, 0; changed && rounds < 32; rounds++ {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				changed = t.transferAssign(n.Lhs, n.Rhs) || changed
			case *ast.ValueSpec:
				lhs := make([]ast.Expr, len(n.Names))
				for i, name := range n.Names {
					lhs[i] = name
				}
				changed = t.transferAssign(lhs, n.Values) || changed
			case *ast.RangeStmt:
				if desc, ok := t.taintOf(n.X); ok {
					changed = t.taintTarget(n.Key, desc) || changed
					changed = t.taintTarget(n.Value, desc) || changed
				}
			}
			return true
		})
	}
}

// transferAssign moves taint right to left: pairwise when the counts
// match, from the single tuple expression to every target otherwise.
func (t *taintTracker) transferAssign(lhs, rhs []ast.Expr) (changed bool) {
	if len(rhs) == 0 {
		return false
	}
	if len(lhs) == len(rhs) {
		for i := range lhs {
			if desc, ok := t.taintOf(rhs[i]); ok {
				changed = t.taintTarget(lhs[i], desc) || changed
			}
		}
		return changed
	}
	if desc, ok := t.taintOf(rhs[0]); ok {
		for _, l := range lhs {
			changed = t.taintTarget(l, desc) || changed
		}
	}
	return changed
}

// taintTarget taints the object behind an assignment target; field
// targets taint the field object itself (coarse: every instance within
// this function), which errs toward reporting.
func (t *taintTracker) taintTarget(e ast.Expr, desc string) bool {
	obj := t.objectOfTarget(e)
	if obj == nil {
		return false
	}
	if _, ok := t.tainted[obj]; ok {
		return false
	}
	t.tainted[obj] = desc
	return true
}

// objectOfTarget resolves an assignment target to its variable object,
// unwrapping index/dereference/selector forms.
func (t *taintTracker) objectOfTarget(e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return t.pass.Info.ObjectOf(e)
	case *ast.SelectorExpr:
		if sel := t.pass.Info.Selections[e]; sel != nil && sel.Kind() == types.FieldVal {
			return sel.Obj()
		}
		return t.pass.Info.ObjectOf(e.Sel)
	case *ast.IndexExpr:
		return t.objectOfTarget(e.X)
	case *ast.StarExpr:
		return t.objectOfTarget(e.X)
	}
	return nil
}

// taintOf reports whether any part of the expression derives from a
// nondeterministic source, with its description.
func (t *taintTracker) taintOf(e ast.Expr) (string, bool) {
	if e == nil {
		return "", false
	}
	switch e := e.(type) {
	case *ast.Ident:
		if obj := t.pass.Info.ObjectOf(e); obj != nil {
			if desc, ok := t.tainted[obj]; ok {
				return desc, true
			}
		}
		return "", false
	case *ast.CallExpr:
		if desc := t.sourceDesc(e); desc != "" {
			return desc, true
		}
		// A call over tainted operands returns a tainted value (sorting,
		// formatting or arithmetic does not launder nondeterminism).
		if desc, ok := t.taintOf(e.Fun); ok {
			return desc, true
		}
		for _, a := range e.Args {
			if desc, ok := t.taintOf(a); ok {
				return desc, true
			}
		}
		return "", false
	case *ast.SelectorExpr:
		if sel := t.pass.Info.Selections[e]; sel != nil && sel.Kind() == types.FieldVal {
			if desc, ok := t.tainted[sel.Obj()]; ok {
				return desc, true
			}
		}
		return t.taintOf(e.X)
	case *ast.FuncLit:
		return "", false
	}
	// Generic expressions: tainted if any operand is.
	var desc string
	found := false
	for _, child := range exprChildren(e) {
		if d, ok := t.taintOf(child); ok && !found {
			desc, found = d, true
		}
	}
	return desc, found
}

// exprChildren returns the direct operand expressions of a composite
// expression node.
func exprChildren(e ast.Expr) []ast.Expr {
	var kids []ast.Expr
	switch e := e.(type) {
	case *ast.ParenExpr:
		kids = append(kids, e.X)
	case *ast.UnaryExpr:
		kids = append(kids, e.X)
	case *ast.StarExpr:
		kids = append(kids, e.X)
	case *ast.BinaryExpr:
		kids = append(kids, e.X, e.Y)
	case *ast.IndexExpr:
		kids = append(kids, e.X, e.Index)
	case *ast.SliceExpr:
		kids = append(kids, e.X, e.Low, e.High, e.Max)
	case *ast.CompositeLit:
		kids = append(kids, e.Elts...)
	case *ast.KeyValueExpr:
		kids = append(kids, e.Value)
	case *ast.TypeAssertExpr:
		kids = append(kids, e.X)
	}
	n := 0
	for _, k := range kids {
		if k != nil {
			kids[n] = k
			n++
		}
	}
	return kids[:n]
}

// checkSinks reports tainted arguments flowing into canon calls or
// //optlint:sink functions.
func (t *taintTracker) checkSinks(body *ast.BlockStmt, sinks map[types.Object]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name, isSink := t.sinkName(call, sinks)
		if !isSink {
			return true
		}
		for i, a := range call.Args {
			if desc, ok := t.taintOf(a); ok {
				t.pass.Reportf(a.Pos(),
					"argument %d of %s derives from %s: nondeterministic values must not reach canonical encoding (fixed-seed runs would stop being byte-identical)",
					i+1, name, desc)
			}
		}
		return true
	})
}

// sinkName reports whether the call targets a determinism sink and how
// to name it in the diagnostic.
func (t *taintTracker) sinkName(call *ast.CallExpr, sinks map[types.Object]bool) (string, bool) {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = t.pass.Info.ObjectOf(fun)
	case *ast.SelectorExpr:
		obj = t.pass.Info.ObjectOf(fun.Sel)
	}
	if obj == nil {
		return "", false
	}
	if sinks[obj] {
		return obj.Name() + " (//optlint:sink)", true
	}
	if fn, ok := obj.(*types.Func); ok && fn.Pkg() != nil {
		path := fn.Pkg().Path()
		if path == "internal/canon" || strings.HasSuffix(path, "/internal/canon") {
			return fmt.Sprintf("canon.%s", fn.Name()), true
		}
	}
	return "", false
}
