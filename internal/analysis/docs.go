package analysis

import (
	"go/ast"
	"go/token"
)

// Docs enforces the repo's documentation gate, migrated from the original
// lint_test.go: every exported declaration carries a doc comment, and
// every package carries a package comment on at least one file. This
// keeps the "documented public API" deliverable honest through refactors.
var Docs = &Analyzer{
	Name: "docs",
	Doc:  "exported symbols and packages must have doc comments",
	Run:  runDocs,
}

func runDocs(p *Pass) {
	documented := false
	for _, f := range p.Files {
		if f.Doc != nil {
			documented = true
		}
		for _, decl := range f.Decls {
			checkDeclDocs(p, decl)
		}
	}
	if !documented && len(p.Files) > 0 {
		p.Reportf(p.Files[0].Name.Pos(), "package %s has no package comment", p.PkgName)
	}
}

func checkDeclDocs(p *Pass, decl ast.Decl) {
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if d.Name.IsExported() && d.Doc == nil {
			p.Reportf(d.Pos(), "exported func %s has no doc comment", d.Name.Name)
		}
	case *ast.GenDecl:
		if d.Tok != token.TYPE && d.Tok != token.VAR && d.Tok != token.CONST {
			return
		}
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
					p.Reportf(s.Pos(), "exported type %s has no doc comment", s.Name.Name)
				}
			case *ast.ValueSpec:
				for _, name := range s.Names {
					if name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
						p.Reportf(name.Pos(), "exported %s %s has no doc comment", d.Tok, name.Name)
					}
				}
			}
		}
	}
}
