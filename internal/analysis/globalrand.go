package analysis

import (
	"go/ast"
	"strconv"
)

// GlobalRand reports ambient-nondeterminism sources inside the
// deterministic engine packages: importing math/rand (v1 or v2), and
// calls to time.Now or the os environment getters. The protocol's only
// legitimate randomness is the splittable internal/rng stream, which is
// reproducible from a master seed; anything else would unpin the
// differential and fuzz suites.
var GlobalRand = &Analyzer{
	Name:     "globalrand",
	Doc:      "no math/rand, time.Now, or os.Getenv in deterministic packages; use internal/rng",
	Packages: deterministicPackages,
	Run:      runGlobalRand,
}

// bannedCalls maps an import path to the selector names that are banned
// when called through that import.
var bannedCalls = map[string]map[string]bool{
	"time": {"Now": true},
	"os":   {"Getenv": true, "LookupEnv": true, "Environ": true},
}

func runGlobalRand(p *Pass) {
	for _, f := range p.Files {
		// Import-path -> in-source package name, for the banned-call scan.
		names := map[string]string{}
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				p.Reportf(imp.Pos(),
					"deterministic package %s imports %s: all randomness must flow through internal/rng (reproducible from the master seed)",
					p.PkgPath, path)
			}
			names[path] = importName(imp)
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkg, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			for path, banned := range bannedCalls {
				if names[path] == pkg.Name && banned[sel.Sel.Name] {
					p.Reportf(call.Pos(),
						"deterministic package %s calls %s.%s: ambient state breaks reproducibility; thread the value in explicitly",
						p.PkgPath, pkg.Name, sel.Sel.Name)
				}
			}
			return true
		})
	}
}
