package analysis

import (
	"go/ast"
	"go/token"
)

// deterministicPackages are the engine packages whose behavior the
// differential / fuzz suites pin byte-for-byte to the reference model;
// any map-iteration-order dependence there is a latent nondeterminism bug.
var deterministicPackages = []string{
	"internal/sim",
	"internal/shardsim",
	"internal/core",
	"internal/witness",
	"internal/paths",
	"internal/faults",
	"internal/jobs",
	"internal/workload",
	"internal/cluster",
}

// MapIter reports `range` statements over maps in the deterministic
// engine packages. The canonical collect-keys-then-sort idiom — a loop
// whose body is exactly `keys = append(keys, k)` followed later in the
// same block by a sort call on keys — is recognized and allowed; every
// other site needs an //optlint:allow mapiter directive with a
// justification (typically an order-independent reduction).
var MapIter = &Analyzer{
	Name:     "mapiter",
	Doc:      "no map iteration in deterministic packages unless keys are sorted first",
	Packages: deterministicPackages,
	Run:      runMapIter,
}

func runMapIter(p *Pass) {
	maps := collectMapNames(p.Files)
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			locals := collectLocalMapNames(fn)
			checkStmtLists(fn.Body, func(list []ast.Stmt) {
				for i, st := range list {
					rs, ok := unwrapLabel(st).(*ast.RangeStmt)
					if !ok {
						continue
					}
					if !isMapExprByName(rs.X, locals, maps) {
						continue
					}
					if isCollectAndSort(rs, list[i+1:]) {
						continue
					}
					p.Reportf(rs.Pos(),
						"range over map %s in deterministic package %s: iteration order is randomized; collect and sort the keys, or annotate //optlint:allow mapiter with why order cannot matter",
						exprString(rs.X), p.PkgPath)
				}
			})
		}
	}
}

// mapNames is the package-level best-effort map-typed name sets: struct
// field names and package-level variable names whose declared type or
// initializer is a map.
type mapNames struct {
	fields  map[string]bool
	pkgVars map[string]bool
}

// collectMapNames scans the package for struct fields and package-level
// vars of map type. Matching is by name only — purely syntactic — which
// is precise enough in this repo and errs toward reporting.
func collectMapNames(files []*ast.File) *mapNames {
	m := &mapNames{fields: map[string]bool{}, pkgVars: map[string]bool{}}
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			for _, fld := range st.Fields.List {
				if !isMapTypeExpr(fld.Type) {
					continue
				}
				for _, name := range fld.Names {
					m.fields[name.Name] = true
				}
			}
			return true
		})
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				isMap := vs.Type != nil && isMapTypeExpr(vs.Type)
				for i, name := range vs.Names {
					if isMap || (i < len(vs.Values) && isMapValueExpr(vs.Values[i])) {
						m.pkgVars[name.Name] = true
					}
				}
			}
		}
	}
	return m
}

// collectLocalMapNames gathers names declared with a map type inside fn:
// parameters, results, receivers, := definitions from make(map...) or map
// literals, and var declarations.
func collectLocalMapNames(fn *ast.FuncDecl) map[string]bool {
	locals := map[string]bool{}
	addFieldList := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, fld := range fl.List {
			if !isMapTypeExpr(fld.Type) {
				continue
			}
			for _, name := range fld.Names {
				locals[name.Name] = true
			}
		}
	}
	addFieldList(fn.Recv)
	addFieldList(fn.Type.Params)
	addFieldList(fn.Type.Results)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE || len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if ok && isMapValueExpr(n.Rhs[i]) {
					locals[id.Name] = true
				}
			}
		case *ast.DeclStmt:
			gd, ok := n.Decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if (vs.Type != nil && isMapTypeExpr(vs.Type)) ||
						(i < len(vs.Values) && isMapValueExpr(vs.Values[i])) {
						locals[name.Name] = true
					}
				}
			}
		}
		return true
	})
	return locals
}

// isMapTypeExpr reports whether the type expression is literally a map
// type (pointers and parens unwrapped).
func isMapTypeExpr(e ast.Expr) bool {
	switch t := e.(type) {
	case *ast.MapType:
		return true
	case *ast.ParenExpr:
		return isMapTypeExpr(t.X)
	}
	return false
}

// isMapValueExpr reports whether the value expression evidently produces
// a map: make(map[...]...) or a map composite literal.
func isMapValueExpr(e ast.Expr) bool {
	switch v := e.(type) {
	case *ast.CallExpr:
		id, ok := v.Fun.(*ast.Ident)
		return ok && id.Name == "make" && len(v.Args) > 0 && isMapTypeExpr(v.Args[0])
	case *ast.CompositeLit:
		return v.Type != nil && isMapTypeExpr(v.Type)
	}
	return false
}

// isMapExprByName resolves a range target against the local and
// package-level map name sets.
func isMapExprByName(e ast.Expr, locals map[string]bool, m *mapNames) bool {
	switch x := e.(type) {
	case *ast.Ident:
		return locals[x.Name] || m.pkgVars[x.Name]
	case *ast.SelectorExpr:
		return m.fields[x.Sel.Name]
	case *ast.ParenExpr:
		return isMapExprByName(x.X, locals, m)
	case *ast.CompositeLit:
		return x.Type != nil && isMapTypeExpr(x.Type)
	}
	return false
}

// checkStmtLists invokes f on every statement list in the subtree: block
// bodies plus switch/select clause bodies.
func checkStmtLists(root ast.Node, f func([]ast.Stmt)) {
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BlockStmt:
			f(n.List)
		case *ast.CaseClause:
			f(n.Body)
		case *ast.CommClause:
			f(n.Body)
		}
		return true
	})
}

func unwrapLabel(st ast.Stmt) ast.Stmt {
	for {
		ls, ok := st.(*ast.LabeledStmt)
		if !ok {
			return st
		}
		st = ls.Stmt
	}
}

// isCollectAndSort recognizes the allowed key-collection idiom: the range
// body is exactly `s = append(s, k)` (where k is the range key and the
// value is absent or blank), and a later statement in the same block
// sorts s via the sort or slices package.
func isCollectAndSort(rs *ast.RangeStmt, rest []ast.Stmt) bool {
	key, ok := rs.Key.(*ast.Ident)
	if !ok || key.Name == "_" {
		return false
	}
	if v, ok := rs.Value.(*ast.Ident); rs.Value != nil && (!ok || v.Name != "_") {
		return false
	}
	if rs.Body == nil || len(rs.Body.List) != 1 {
		return false
	}
	as, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	if as.Tok != token.ASSIGN && as.Tok != token.DEFINE {
		return false
	}
	dst, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	if fn, ok := call.Fun.(*ast.Ident); !ok || fn.Name != "append" {
		return false
	}
	if base, ok := call.Args[0].(*ast.Ident); !ok || base.Name != dst.Name {
		return false
	}
	if arg, ok := call.Args[1].(*ast.Ident); !ok || arg.Name != key.Name {
		return false
	}
	for _, st := range rest {
		es, ok := unwrapLabel(st).(*ast.ExprStmt)
		if !ok {
			continue
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			continue
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			continue
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok || (pkg.Name != "sort" && pkg.Name != "slices") {
			continue
		}
		for _, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok && id.Name == dst.Name {
				return true
			}
		}
	}
	return false
}
