package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// directiveAnalyzerName labels diagnostics produced by the directive
// parser itself (malformed or unknown //optlint: directives). They cannot
// be suppressed.
const directiveAnalyzerName = "optlint"

const (
	allowPrefix     = "//optlint:allow"
	hotpathMarker   = "//optlint:hotpath"
	guardedbyMarker = "//optlint:guardedby"
	lockedMarker    = "//optlint:locked"
	sinkMarker      = "//optlint:sink"
)

// directiveArgs splits a marker directive's arguments: the fields after
// the marker prefix. ok is false when text is not that directive at all.
func directiveArgs(text, marker string) (args []string, ok bool) {
	rest, ok := strings.CutPrefix(text, marker)
	if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
		return nil, false
	}
	return strings.Fields(rest), true
}

// suppressions records which analyzer names are allowed where: per whole
// file, and per (file, line). A line directive covers its own line and
// the one immediately below it, so it works both trailing the offending
// statement and on a comment line directly above it.
type suppressions struct {
	file map[string]map[string]bool
	line map[string]map[int]map[string]bool
}

// suppressed reports whether diagnostic d is covered by a directive.
func (s *suppressions) suppressed(d Diagnostic) bool {
	if s.file[d.Pos.Filename][d.Analyzer] {
		return true
	}
	return s.line[d.Pos.Filename][d.Pos.Line][d.Analyzer]
}

// collectDirectives parses every //optlint: comment in the files. Allow
// directives before the package clause scope to the whole file; all
// others scope to their line and the next. Unknown analyzer names,
// missing names, and unrecognized //optlint: verbs are reported through
// report so suppressions can never silently outlive their analyzer.
func collectDirectives(fset *token.FileSet, files []*ast.File, known map[string]bool, report func(Diagnostic)) *suppressions {
	sup := &suppressions{
		file: map[string]map[string]bool{},
		line: map[string]map[int]map[string]bool{},
	}
	bad := func(pos token.Pos, format string, args ...any) {
		report(Diagnostic{
			Pos:      fset.Position(pos),
			Analyzer: directiveAnalyzerName,
			Message:  fmt.Sprintf(format, args...),
		})
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, "//optlint:") {
					continue
				}
				if args, ok := directiveArgs(text, hotpathMarker); ok {
					// Consumed by the hotpath analyzer; the only argument it
					// understands is `packed`, so anything else is a typo that
					// would otherwise silently mark nothing.
					if len(args) > 0 && !(len(args) == 1 && args[0] == "packed") {
						bad(c.Pos(), "optlint:hotpath argument %q not recognized (known: packed)", strings.Join(args, " "))
					}
					continue
				}
				if args, ok := directiveArgs(text, guardedbyMarker); ok {
					// Consumed by the guardedby analyzer from struct-field
					// comments; it needs exactly one guard name.
					if len(args) != 1 {
						bad(c.Pos(), "optlint:guardedby wants exactly one guard name, got %d", len(args))
					}
					continue
				}
				if args, ok := directiveArgs(text, lockedMarker); ok {
					// Consumed by the guardedby analyzer from function doc
					// comments: the function runs with the named guard held.
					if len(args) != 1 {
						bad(c.Pos(), "optlint:locked wants exactly one guard name, got %d", len(args))
					}
					continue
				}
				if _, ok := directiveArgs(text, sinkMarker); ok {
					// Consumed by the dettaint analyzer from function doc
					// comments; any trailing words are rationale.
					continue
				}
				rest, ok := strings.CutPrefix(text, allowPrefix)
				if !ok {
					verb := strings.TrimPrefix(text, "//optlint:")
					if i := strings.IndexAny(verb, " \t"); i >= 0 {
						verb = verb[:i]
					}
					bad(c.Pos(), "unknown optlint directive %q (known: allow, hotpath, guardedby, locked, sink)", verb)
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					bad(c.Pos(), "optlint:allow directive names no analyzer")
					continue
				}
				names := strings.Split(fields[0], ",")
				pos := fset.Position(c.Pos())
				fileScoped := c.End() < f.Package
				for _, name := range names {
					if !known[name] {
						bad(c.Pos(), "optlint:allow names unknown analyzer %q", name)
						continue
					}
					if fileScoped {
						m := sup.file[pos.Filename]
						if m == nil {
							m = map[string]bool{}
							sup.file[pos.Filename] = m
						}
						m[name] = true
						continue
					}
					lines := sup.line[pos.Filename]
					if lines == nil {
						lines = map[int]map[string]bool{}
						sup.line[pos.Filename] = lines
					}
					for _, ln := range []int{pos.Line, pos.Line + 1} {
						m := lines[ln]
						if m == nil {
							m = map[string]bool{}
							lines[ln] = m
						}
						m[name] = true
					}
				}
			}
		}
	}
	return sup
}
