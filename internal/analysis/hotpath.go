package analysis

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// HotPath reports heap-allocating constructs inside functions whose doc
// comment carries the //optlint:hotpath directive — the engine step path
// that TestSteadyStateAllocFree pins to 0 allocs/op. Flagged: make, new,
// map and slice literals, closures that capture variables (non-capturing
// function literals are static and free), and append calls that are not
// the self-append reuse idiom `x = append(x, ...)` (growth of a pooled
// buffer is amortized; growth of a fresh slice is a per-call allocation).
//
// The `//optlint:hotpath packed` variant marks word-packed kernels —
// functions whose occupancy keys are composed with shift/mask on
// power-of-two strides. In those, integer division and modulo are also
// flagged: a stray % or / on the key path silently reintroduces the
// DIV-latency the padded layout exists to avoid.
var HotPath = &Analyzer{
	Name: "hotpath",
	Doc:  "no allocating constructs in //optlint:hotpath functions",
	Run:  runHotPath,
}

func runHotPath(p *Pass) {
	decls := packageDecls(p.Files)
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			hot, packed := hotPathDirective(fn)
			if !hot {
				continue
			}
			checkHotFunc(p, fn, decls, packed)
		}
	}
}

// hotPathDirective reports whether fn's doc comment contains the
// //optlint:hotpath marker line, and whether it carries the `packed`
// argument.
func hotPathDirective(fn *ast.FuncDecl) (hot, packed bool) {
	if fn.Doc == nil {
		return false, false
	}
	for _, c := range fn.Doc.List {
		switch strings.Join(strings.Fields(c.Text), " ") {
		case hotpathMarker:
			hot = true
		case hotpathMarker + " packed":
			hot, packed = true, true
		}
	}
	return hot, packed
}

func checkHotFunc(p *Pass, fn *ast.FuncDecl, decls map[string]bool, packed bool) {
	name := fn.Name.Name
	walkStack(fn.Body, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if packed && (n.Op == token.QUO || n.Op == token.REM) {
				p.Reportf(n.OpPos, "packed kernel %s uses %s: compose keys with shift/mask on the power-of-two stride instead", name, n.Op)
			}
		case *ast.AssignStmt:
			if packed && (n.Tok == token.QUO_ASSIGN || n.Tok == token.REM_ASSIGN) {
				p.Reportf(n.TokPos, "packed kernel %s uses %s: compose keys with shift/mask on the power-of-two stride instead", name, n.Tok)
			}
		case *ast.CallExpr:
			id, ok := n.Fun.(*ast.Ident)
			if !ok {
				return true
			}
			switch id.Name {
			case "make":
				p.Reportf(n.Pos(), "hot path %s calls make: allocates every call; reuse a pooled buffer", name)
			case "new":
				p.Reportf(n.Pos(), "hot path %s calls new: allocates every call; reuse a pooled object", name)
			case "append":
				if !isSelfAppend(n, stack) {
					p.Reportf(n.Pos(), "hot path %s: append is not the self-append reuse idiom `x = append(x, ...)`; growth of a fresh slice allocates", name)
				}
			}
		case *ast.CompositeLit:
			switch t := n.Type.(type) {
			case *ast.MapType:
				p.Reportf(n.Pos(), "hot path %s: map literal allocates", name)
			case *ast.ArrayType:
				if t.Len == nil {
					p.Reportf(n.Pos(), "hot path %s: slice literal allocates", name)
				}
			}
		case *ast.FuncLit:
			if caps := capturedVars(n, decls); len(caps) > 0 {
				p.Reportf(n.Pos(), "hot path %s: closure captures %s and may allocate; hoist the state or pass it as a parameter", name, strings.Join(caps, ", "))
			}
		}
		return true
	})
}

// isSelfAppend reports whether the append call sits in a statement of the
// form `x = append(x, ...)` (or `x := append(x, ...)`), the capacity-reuse
// idiom whose growth is amortized across runs.
func isSelfAppend(call *ast.CallExpr, stack []ast.Node) bool {
	if len(call.Args) == 0 {
		return false
	}
	for i := len(stack) - 1; i >= 0; i-- {
		as, ok := stack[i].(*ast.AssignStmt)
		if !ok {
			continue
		}
		if len(as.Lhs) != 1 || len(as.Rhs) != 1 || as.Rhs[0] != ast.Expr(call) {
			return false
		}
		if as.Tok != token.ASSIGN && as.Tok != token.DEFINE {
			return false
		}
		return exprString(as.Lhs[0]) == exprString(call.Args[0])
	}
	return false
}

// capturedVars returns the free variables of the function literal: names
// used inside it that are neither declared within it, nor predeclared,
// nor package-level. A closure with no free variables compiles to a
// static function value and never allocates.
func capturedVars(fl *ast.FuncLit, pkgDecls map[string]bool) []string {
	declared := map[string]bool{}
	addFieldList := func(list *ast.FieldList) {
		if list == nil {
			return
		}
		for _, fld := range list.List {
			for _, name := range fld.Names {
				declared[name.Name] = true
			}
		}
	}
	addFieldList(fl.Type.Params)
	addFieldList(fl.Type.Results)
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				for _, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						declared[id.Name] = true
					}
				}
			}
		case *ast.RangeStmt:
			if n.Tok == token.DEFINE {
				if id, ok := n.Key.(*ast.Ident); ok {
					declared[id.Name] = true
				}
				if id, ok := n.Value.(*ast.Ident); ok {
					declared[id.Name] = true
				}
			}
		case *ast.ValueSpec:
			for _, name := range n.Names {
				declared[name.Name] = true
			}
		case *ast.FuncLit:
			addFieldList(n.Type.Params)
			addFieldList(n.Type.Results)
		}
		return true
	})

	used := map[string]bool{}
	var scan func(n ast.Node)
	scan = func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.SelectorExpr:
				scan(m.X) // never treat the .Sel field name as a variable
				return false
			case *ast.KeyValueExpr:
				// Struct-literal field keys are not variable uses; map keys
				// that are idents are rare enough to accept the miss.
				scan(m.Value)
				return false
			case *ast.Ident:
				used[m.Name] = true
			}
			return true
		})
	}
	scan(fl.Body)

	var caps []string
	for name := range used {
		if declared[name] || universe[name] || pkgDecls[name] {
			continue
		}
		caps = append(caps, name)
	}
	sort.Strings(caps)
	return caps
}
