package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// HotPath reports constructs that allocate — or force heap escapes —
// inside functions whose doc comment carries the //optlint:hotpath
// directive: the engine step path that TestSteadyStateAllocFree pins to
// 0 allocs/op. Flagged, all type-resolved:
//
//   - make, new, map and slice literals; append calls that are not the
//     self-append reuse idiom `x = append(x, ...)` (growth of a pooled
//     buffer is amortized; growth of a fresh slice is a per-call
//     allocation);
//   - closures that capture variables of the enclosing function (a
//     captured variable moves to the heap with the closure; a
//     non-capturing literal compiles to a static function value);
//   - any call into package fmt (every fmt call boxes its operands and
//     walks reflection);
//   - interface boxing: passing, assigning, returning or converting a
//     concrete value into an interface-typed slot forces the value to
//     escape (or at minimum materializes an iface pair per call).
//
// The `//optlint:hotpath packed` variant marks word-packed kernels —
// functions whose occupancy keys are composed with shift/mask on
// power-of-two strides. In those, integer division and modulo are also
// flagged: a stray % or / on the key path silently reintroduces the
// DIV-latency the padded layout exists to avoid.
var HotPath = &Analyzer{
	Name: "hotpath",
	Doc:  "no allocating or boxing constructs in //optlint:hotpath functions",
	Run:  runHotPath,
}

func runHotPath(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			hot, packed := hotPathDirective(fn)
			if !hot {
				continue
			}
			p.checkHotFunc(fn, packed)
		}
	}
}

// hotPathDirective reports whether fn's doc comment contains the
// //optlint:hotpath marker line, and whether it carries the `packed`
// argument.
func hotPathDirective(fn *ast.FuncDecl) (hot, packed bool) {
	if fn.Doc == nil {
		return false, false
	}
	for _, c := range fn.Doc.List {
		args, ok := directiveArgs(c.Text, hotpathMarker)
		if !ok {
			continue
		}
		hot = true
		if len(args) == 1 && args[0] == "packed" {
			packed = true
		}
	}
	return hot, packed
}

func (p *Pass) checkHotFunc(fn *ast.FuncDecl, packed bool) {
	name := fn.Name.Name
	walkStack(fn.Body, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if packed && (n.Op == token.QUO || n.Op == token.REM) && isIntegerExpr(p, n.X) {
				p.Reportf(n.OpPos, "packed kernel %s uses %s: compose keys with shift/mask on the power-of-two stride instead", name, n.Op)
			}
		case *ast.AssignStmt:
			if packed && (n.Tok == token.QUO_ASSIGN || n.Tok == token.REM_ASSIGN) && isIntegerExpr(p, n.Lhs[0]) {
				p.Reportf(n.TokPos, "packed kernel %s uses %s: compose keys with shift/mask on the power-of-two stride instead", name, n.Tok)
			}
			p.checkBoxedAssign(name, n.Lhs, n.Rhs)
		case *ast.ValueSpec:
			lhs := make([]ast.Expr, len(n.Names))
			for i, id := range n.Names {
				lhs[i] = id
			}
			p.checkBoxedAssign(name, lhs, n.Values)
		case *ast.ReturnStmt:
			p.checkBoxedReturn(name, fn, n)
		case *ast.CallExpr:
			p.checkHotCall(name, n, stack)
		case *ast.CompositeLit:
			switch t := n.Type.(type) {
			case *ast.MapType:
				p.Reportf(n.Pos(), "hot path %s: map literal allocates", name)
			case *ast.ArrayType:
				if t.Len == nil {
					p.Reportf(n.Pos(), "hot path %s: slice literal allocates", name)
				}
			}
		case *ast.FuncLit:
			if caps := p.capturedVars(fn, n); len(caps) > 0 {
				p.Reportf(n.Pos(), "hot path %s: closure captures %s and may allocate; hoist the state or pass it as a parameter", name, strings.Join(caps, ", "))
			}
		}
		return true
	})
}

// checkHotCall reports allocating builtins, fmt calls, interface
// conversions and boxing call arguments inside a hot function.
func (p *Pass) checkHotCall(name string, call *ast.CallExpr, stack []ast.Node) {
	// Conversions: T(x) with T an interface type boxes x.
	if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 && types.IsInterface(tv.Type) && !isInterfaceValue(p, call.Args[0]) {
			p.Reportf(call.Pos(), "hot path %s: conversion to interface %s boxes its operand onto the heap", name, tv.Type.String())
		}
		return
	}

	if id, ok := call.Fun.(*ast.Ident); ok {
		switch id.Name {
		case "make":
			p.Reportf(call.Pos(), "hot path %s calls make: allocates every call; reuse a pooled buffer", name)
			return
		case "new":
			p.Reportf(call.Pos(), "hot path %s calls new: allocates every call; reuse a pooled object", name)
			return
		case "append":
			if !isSelfAppend(call, stack) {
				p.Reportf(call.Pos(), "hot path %s: append is not the self-append reuse idiom `x = append(x, ...)`; growth of a fresh slice allocates", name)
			}
			return
		}
	}

	if fn := calleeFunc(p, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		p.Reportf(call.Pos(), "hot path %s calls fmt.%s: fmt boxes every operand and reflects over it; format off the hot path or hand-roll the digits", name, fn.Name())
		return
	}

	sig, ok := p.Info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		pt := paramType(sig, i, call.Ellipsis.IsValid())
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		if isInterfaceValue(p, arg) {
			continue
		}
		p.Reportf(arg.Pos(), "hot path %s: argument %s boxes into interface parameter %s; take a concrete type or hoist the call", name, exprString(arg), pt.String())
	}
}

// checkBoxedAssign reports assignments storing a concrete value into an
// interface-typed target.
func (p *Pass) checkBoxedAssign(name string, lhs, rhs []ast.Expr) {
	if len(lhs) != len(rhs) {
		return // tuple assignment from a call: boxing happened at the callee
	}
	for i := range lhs {
		lt := p.Info.TypeOf(lhs[i])
		if lt == nil || !types.IsInterface(lt) {
			continue
		}
		if isInterfaceValue(p, rhs[i]) {
			continue
		}
		p.Reportf(rhs[i].Pos(), "hot path %s: assigning %s into interface-typed %s boxes it onto the heap", name, exprString(rhs[i]), exprString(lhs[i]))
	}
}

// checkBoxedReturn reports returns that box concrete values into
// interface-typed results of the hot function.
func (p *Pass) checkBoxedReturn(name string, fn *ast.FuncDecl, ret *ast.ReturnStmt) {
	obj, ok := p.Info.Defs[fn.Name].(*types.Func)
	if !ok {
		return
	}
	res := obj.Type().(*types.Signature).Results()
	if res.Len() != len(ret.Results) {
		return
	}
	for i, r := range ret.Results {
		if !types.IsInterface(res.At(i).Type()) || isInterfaceValue(p, r) {
			continue
		}
		p.Reportf(r.Pos(), "hot path %s: returning %s as interface %s boxes it onto the heap", name, exprString(r), res.At(i).Type().String())
	}
}

// calleeFunc resolves the called function or method object, nil for
// builtins, type conversions and indirect calls.
func calleeFunc(p *Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := p.Info.ObjectOf(fun).(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := p.Info.ObjectOf(fun.Sel).(*types.Func)
		return fn
	}
	return nil
}

// paramType returns the type of parameter i of sig, unrolling variadics;
// spread marks an explicit `...` call, whose final argument is passed
// through unboxed.
func paramType(sig *types.Signature, i int, spread bool) types.Type {
	params := sig.Params()
	if sig.Variadic() {
		last := params.Len() - 1
		if i < last {
			return params.At(i).Type()
		}
		if spread {
			return nil // the slice is passed as-is
		}
		slice, ok := params.At(last).Type().(*types.Slice)
		if !ok {
			return nil
		}
		return slice.Elem()
	}
	if i >= params.Len() {
		return nil
	}
	return params.At(i).Type()
}

// isInterfaceValue reports whether the expression already has interface
// type (no boxing on the way into another interface slot) or is the
// untyped nil.
func isInterfaceValue(p *Pass, e ast.Expr) bool {
	t := p.Info.TypeOf(e)
	if t == nil {
		return true // be quiet rather than wrong
	}
	if b, ok := t.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return true
	}
	return types.IsInterface(t)
}

// isIntegerExpr reports whether the expression's static type is an
// integer — the packed-kernel / and % rule does not apply to float math.
func isIntegerExpr(p *Pass, e ast.Expr) bool {
	t := p.Info.TypeOf(e)
	if t == nil {
		return true // unresolved: keep the old syntactic behavior
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// isSelfAppend reports whether the append call sits in a statement of the
// form `x = append(x, ...)` (or `x := append(x, ...)`), the capacity-reuse
// idiom whose growth is amortized across runs.
func isSelfAppend(call *ast.CallExpr, stack []ast.Node) bool {
	if len(call.Args) == 0 {
		return false
	}
	for i := len(stack) - 1; i >= 0; i-- {
		as, ok := stack[i].(*ast.AssignStmt)
		if !ok {
			continue
		}
		if len(as.Lhs) != 1 || len(as.Rhs) != 1 || as.Rhs[0] != ast.Expr(call) {
			return false
		}
		if as.Tok != token.ASSIGN && as.Tok != token.DEFINE {
			return false
		}
		return exprString(as.Lhs[0]) == exprString(call.Args[0])
	}
	return false
}

// capturedVars returns the free variables of the function literal,
// resolved through the type checker: objects used inside the literal
// that are declared in the enclosing function but outside the literal.
// Package-level and predeclared names are not captures, and a closure
// with no captures compiles to a static function value.
func (p *Pass) capturedVars(fn *ast.FuncDecl, fl *ast.FuncLit) []string {
	seen := map[string]bool{}
	var caps []string
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := p.Info.Uses[id]
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		pos := v.Pos()
		if pos < fn.Pos() || pos > fn.End() { // not local to the enclosing function
			return true
		}
		if pos >= fl.Pos() && pos <= fl.End() { // declared inside the literal
			return true
		}
		if !seen[v.Name()] {
			seen[v.Name()] = true
			caps = append(caps, v.Name())
		}
		return true
	})
	sort.Strings(caps)
	return caps
}
