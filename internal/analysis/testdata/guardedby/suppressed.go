package fixtures

import "sync"

type snapshotter struct {
	mu    sync.Mutex
	state int //optlint:guardedby mu
}

// newSnapshotter initializes the guarded field before the value can
// escape to another goroutine; the suppression records that contract.
func newSnapshotter() *snapshotter {
	s := &snapshotter{}
	//optlint:allow guardedby construction: the value has not escaped to another goroutine yet
	s.state = 1
	return s
}
