// Package fixtures exercises the guardedby analyzer: fields annotated
// //optlint:guardedby mu may only be touched while mu is held on every
// path, and writes need the exclusive lock.
package fixtures

import "sync"

type gauge struct {
	mu  sync.RWMutex
	val int //optlint:guardedby mu
}

// racyRead touches the field with no lock at all.
func (g *gauge) racyRead() int {
	return g.val
}

// racyWrite holds only the read lock across a write.
func (g *gauge) racyWrite(v int) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	g.val = v
}

// halfGuarded locks on one branch only; the must-join drops the guard.
func (g *gauge) halfGuarded(v int) {
	if v > 0 {
		g.mu.Lock()
		defer g.mu.Unlock()
	}
	g.val = v
}

// setLocked runs with mu held by contract.
//
//optlint:locked mu
func (g *gauge) setLocked(v int) {
	g.val = v
}

// callsHelperUnlocked violates the helper's contract.
func (g *gauge) callsHelperUnlocked(v int) {
	g.setLocked(v)
}

// leakToGoroutine holds the lock, but the goroutine it launches does not.
func (g *gauge) leakToGoroutine() {
	g.mu.Lock()
	defer g.mu.Unlock()
	go func() {
		g.val++
	}()
}
