package fixtures

import "sync"

type table struct {
	mu   sync.RWMutex
	rows map[string]int //optlint:guardedby mu
}

// lookup reads under the read lock, released by defer.
func (t *table) lookup(k string) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.rows[k]
}

// store writes under the exclusive lock with paired unlock.
func (t *table) store(k string, v int) {
	t.mu.Lock()
	t.rows[k] = v
	t.mu.Unlock()
}

// bumpLocked is a helper running with mu already held.
//
//optlint:locked mu
func (t *table) bumpLocked(k string) {
	t.rows[k]++
}

// bump takes the lock and delegates to the locked helper.
func (t *table) bump(k string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.bumpLocked(k)
}

// bothBranches locks on every path, so the must-join keeps the guard.
func (t *table) bothBranches(k string, wide bool) int {
	if wide {
		t.mu.Lock()
	} else {
		t.mu.Lock()
	}
	defer t.mu.Unlock()
	return t.rows[k]
}
