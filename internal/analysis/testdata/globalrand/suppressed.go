package fixtures

import "time"

func wallClockLabel() int64 {
	//optlint:allow globalrand wall-clock value labels log output only; never enters the engine
	return time.Now().Unix()
}
