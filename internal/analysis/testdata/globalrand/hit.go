// Package fixtures exercises the globalrand analyzer: math/rand imports
// and ambient-state calls in a deterministic package must be reported.
package fixtures

import (
	"math/rand"
	"os"
	"time"
)

func seedFromAmbientState() int64 {
	if os.Getenv("SEED") != "" {
		return time.Now().UnixNano()
	}
	return rand.Int63()
}
