package fixtures

func deterministicDraw(state *uint64) uint64 {
	*state ^= *state << 13
	*state ^= *state >> 7
	*state ^= *state << 17
	return *state
}
