// Package fixtures exercises the optlint directive parser itself: dead
// suppressions, nameless directives, and unknown verbs are diagnostics.
package fixtures

//optlint:allow nosuchanalyzer this suppression is dead and must be reported
func deadSuppression() {}

//optlint:allow
func namelessDirective() {}

//optlint:frobnicate
func unknownVerb() {}

//optlint:allow optlint directive diagnostics themselves cannot be silenced
func selfSuppression() {}

//optlint:allow mapiter,probeguard two known names parse fine and report nothing
func knownNames() {}
