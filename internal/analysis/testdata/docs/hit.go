package fixtures

const Exported = 2

type Widget struct{}

func Run() {}

var Count int
