// Package fixtures exercises the docs analyzer: exported declarations
// without doc comments must be reported.
package fixtures

// Documented is exported and carries a doc comment.
const Documented = 1

// Helper is exported and carries a doc comment.
func Helper() {}

func unexportedNeedsNoDoc() {}
