package fixtures

//optlint:allow docs internal experiment knob, deliberately undocumented
var Knob int
