package fixtures

// tick is hot and allocation-free: self-append reuse and a non-capturing
// function literal are both allowed.
//
//optlint:hotpath
func tick(buf []int, x int) []int {
	buf = buf[:0]
	buf = append(buf, x)
	less := func(a, b int) bool { return a < b }
	if less(x, 0) {
		buf[0] = -x
	}
	return buf
}

// setup is not marked hot; allocations here are nobody's business.
func setup(n int) []int {
	out := make([]int, n)
	return append(out, n)
}
