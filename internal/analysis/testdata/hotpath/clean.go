package fixtures

import "io"

// tick is hot and allocation-free: self-append reuse and a non-capturing
// function literal are both allowed.
//
//optlint:hotpath
func tick(buf []int, x int) []int {
	buf = buf[:0]
	buf = append(buf, x)
	less := func(a, b int) bool { return a < b }
	if less(x, 0) {
		buf[0] = -x
	}
	return buf
}

// setup is not marked hot; allocations here are nobody's business.
func setup(n int) []int {
	out := make([]int, n)
	return append(out, n)
}

// maskWord is the compliant form of a packed kernel: shift and mask only.
//
//optlint:hotpath packed
func maskWord(words []uint64, key int) int {
	wi := key >> 6
	bit := key & 63
	return int(words[wi] >> uint(bit))
}

// ratio is hot but NOT packed: division is allowed, only allocation rules
// apply.
//
//optlint:hotpath
func ratio(a, b int) int {
	return a / b
}

// emit is hot; forwarding an existing interface value boxes nothing, and
// writing concrete bytes through it allocates nothing new.
//
//optlint:hotpath
func emit(w io.Writer, p []byte) {
	_, _ = w.Write(p)
	use(w)
}
