// Package fixtures exercises the hotpath analyzer: every allocating
// construct inside a //optlint:hotpath function must be reported.
package fixtures

// step is marked hot and violates every allocation rule once.
//
//optlint:hotpath
func step(buf []int, n int) int {
	tmp := make([]int, n)
	seen := map[int]bool{n: true}
	pair := []int{n, n + 1}
	grown := append(tmp, pair...)
	ptr := new(int)
	capture := func() int { return n }
	if seen[n] {
		*ptr = grown[0]
	}
	buf = append(buf, capture())
	return buf[0] + *ptr
}
