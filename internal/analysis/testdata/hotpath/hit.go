// Package fixtures exercises the hotpath analyzer: every allocating
// construct inside a //optlint:hotpath function must be reported.
package fixtures

import (
	"fmt"
	"io"
)

// step is marked hot and violates every allocation rule once.
//
//optlint:hotpath
func step(buf []int, n int) int {
	tmp := make([]int, n)
	seen := map[int]bool{n: true}
	pair := []int{n, n + 1}
	grown := append(tmp, pair...)
	ptr := new(int)
	capture := func() int { return n }
	if seen[n] {
		*ptr = grown[0]
	}
	buf = append(buf, capture())
	return buf[0] + *ptr
}

// scanWord is a packed kernel and leaks division back onto the key path:
// every / and % (including the compound assignments) must be reported,
// alongside the usual allocation rules.
//
//optlint:hotpath packed
func scanWord(words []uint64, key, stride int) int {
	wi := key / 64
	bit := key % stride
	wi /= 2
	bit %= 3
	return int(words[wi]>>uint(bit)) + wi + bit
}

// box is hot and escapes through every boxing channel v2 watches: a fmt
// call, a concrete argument to an interface parameter, an interface
// assignment, an interface conversion and an interface return.
//
//optlint:hotpath
func box(w io.Writer, n int) any {
	fmt.Fprintf(w, "step %d\n", n)
	record(n)
	var v any = n
	v = any(n + 1)
	use(v)
	return n
}

func record(v any) {}

func use(v any) {}
