package fixtures

// grow is hot; its one allocation is capacity-guarded and justified.
//
//optlint:hotpath
func grow(buf []byte, need int) []byte {
	if cap(buf) < need {
		//optlint:allow hotpath capacity-guarded growth happens once per larger run
		buf = make([]byte, need)
	}
	return buf[:need]
}
