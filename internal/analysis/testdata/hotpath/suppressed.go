package fixtures

import "fmt"

// grow is hot; its one allocation is capacity-guarded and justified.
//
//optlint:hotpath
func grow(buf []byte, need int) []byte {
	if cap(buf) < need {
		//optlint:allow hotpath capacity-guarded growth happens once per larger run
		buf = make([]byte, need)
	}
	return buf[:need]
}

// sanctioned is packed with a justified division, suppressed in place.
//
//optlint:hotpath packed
func sanctioned(n, parts int) int {
	//optlint:allow hotpath cold setup branch: runs once per geometry, not per step
	return n / parts
}

// report is hot but its fmt call sits on the cold panic path, sanctioned
// in place.
//
//optlint:hotpath
func report(n int) {
	if n < 0 {
		//optlint:allow hotpath cold panic path: formatting the message once is fine
		panic(fmt.Sprintf("negative step %d", n))
	}
}
