package fixtures

func suppressedSum(counts map[string]int) int {
	n := 0
	//optlint:allow mapiter order-independent sum reduction
	for _, v := range counts {
		n += v
	}
	return n
}
