// Package fixtures exercises the mapiter analyzer: ranging over a map in
// a deterministic package without sorting the keys first must be reported.
package fixtures

type registry struct {
	weights map[string]int
}

func (r *registry) total() int {
	sum := 0
	// Hit: iteration over a map-typed struct field, order-dependent or not.
	for _, w := range r.weights {
		sum += w
	}
	return sum
}

func collectedButNeverSorted() []string {
	m := make(map[string]bool)
	var out []string
	// Hit: keys are collected but no sort call follows in this block.
	for k := range m {
		out = append(out, k)
	}
	return out
}
