package fixtures

import "sort"

func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sliceRange(xs []int) int {
	n := 0
	for _, x := range xs {
		n += x
	}
	return n
}
