// Package fixtures exercises the dettaint analyzer: values derived from
// nondeterministic sources must not reach //optlint:sink functions.
package fixtures

import (
	"strconv"
	"time"
)

// encodeKey stands in for canon.Encode: the job-key boundary where every
// byte must be reproducible across fixed-seed runs.
//
//optlint:sink job keys must be byte-identical across runs
func encodeKey(parts ...string) string {
	out := ""
	for _, p := range parts {
		out += p
	}
	return out
}

// stampedKey folds the wall clock into a job key: two identical
// submissions would hash differently.
func stampedKey(name string) string {
	now := time.Now().UnixNano()
	stamp := strconv.FormatInt(now, 10)
	return encodeKey(name, stamp)
}

// racedKey keys off whichever worker answers first.
func racedKey(a, b chan string) string {
	var first string
	select {
	case first = <-a:
	case first = <-b:
	}
	return encodeKey(first)
}
