package fixtures

import (
	"strconv"
	"time"
)

// sessionKey intentionally embeds the wall clock: the contract here is
// uniqueness per run, not replayability, and the suppression records it.
func sessionKey(name string) string {
	nonce := time.Now().UnixNano()
	//optlint:allow dettaint session keys are unique-per-run by design, never replayed
	return encodeKey(name, strconv.FormatInt(nonce, 10))
}
