package fixtures

import (
	"strconv"
	"time"
)

// stableKey feeds only deterministic inputs to the sink.
func stableKey(name string, trial int) string {
	return encodeKey(name, strconv.Itoa(trial))
}

// logLatency uses the clock freely: timing that never reaches the sink
// is not a finding.
func logLatency(start time.Time) int64 {
	return time.Since(start).Nanoseconds()
}

// singleReceive binds from one channel; with a lone communication clause
// there is no completion-order race to taint the value.
func singleReceive(c chan string) string {
	var v string
	select {
	case v = <-c:
	}
	return encodeKey(v)
}
