package fixtures

import "os"

// readOnlyClose closes a descriptor that was only ever read; there is no
// buffered write to lose, and the suppression records that.
func readOnlyClose(f *os.File) {
	//optlint:allow errsink read-only descriptor: close cannot lose buffered data
	f.Close()
}
