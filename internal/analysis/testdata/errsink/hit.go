// Package fixtures exercises the errsink analyzer: discarded errors on
// the flush-and-close path lose the only signal that data reached disk,
// and fmt.Fprint* to an abstract writer hides mid-response failures.
package fixtures

import (
	"fmt"
	"io"
	"os"
)

// persist drops the error of every call that matters.
func persist(f *os.File, line string) {
	f.WriteString(line)
	f.Sync()
	f.Close()
}

// deferredClose drops the close error at function exit.
func deferredClose(f *os.File) {
	defer f.Close()
}

// respond writes a response body and never learns whether it arrived.
func respond(w io.Writer, n int) {
	fmt.Fprintf(w, "count=%d\n", n)
}
