package fixtures

import (
	"bufio"
	"fmt"
	"os"
)

// persistChecked propagates every failure on the durability path.
func persistChecked(f *os.File, line string) error {
	if _, err := f.WriteString(line); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	return f.Close()
}

// buffered writes through a concrete *bufio.Writer: errors are sticky
// and surface at the checked Flush, so the Fprintf itself is exempt.
func buffered(w *bufio.Writer, n int) error {
	fmt.Fprintf(w, "count=%d\n", n)
	return w.Flush()
}

// bestEffortClose discards explicitly; `_ =` states intent.
func bestEffortClose(f *os.File) {
	_ = f.Close()
}
