package fixtures

func (e *engine) guarded() {
	if e.probe != nil {
		e.probe.OnStep(e.tick)
	}
	if e.tick > 0 && e.probe != nil {
		e.probe.OnStep(0)
	}
	if e.probe == nil {
		e.tick = 0
	} else {
		e.probe.OnStep(1)
	}
}
