package fixtures

func fireSuppressed(probe tracer) {
	//optlint:allow probeguard constructor guarantees a non-nil probe here
	probe.OnStep(0)
}
