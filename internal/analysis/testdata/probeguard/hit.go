// Package fixtures exercises the probeguard analyzer: a call through a
// probe field or variable must be dominated by a nil check on it.
package fixtures

type tracer interface {
	OnStep(tick int)
}

type engine struct {
	probe tracer
	tick  int
}

func (e *engine) step() {
	e.tick++
	e.probe.OnStep(e.tick)
}

func fireUnchecked(probe tracer) {
	probe.OnStep(0)
}

func wrongGuard(e *engine, other *engine) {
	if other.probe != nil {
		e.probe.OnStep(0)
	}
}
