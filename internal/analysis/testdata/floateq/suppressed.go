package fixtures

func exactZeroGuard(sum float64) bool {
	//optlint:allow floateq sum of squares is exactly zero iff every term is zero
	return sum == 0
}
