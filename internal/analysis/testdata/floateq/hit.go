// Package fixtures exercises the floateq analyzer: exact ==/!= with a
// floating-point operand in stats/experiments code must be reported.
package fixtures

type summary struct {
	Mean float64
}

func degenerate(x float64, s summary) bool {
	if x == 0.5 {
		return true
	}
	return s.Mean != x
}
