package fixtures

func near(a, b, eps float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < eps
}

func intEq(a, b int) bool {
	return a == b
}
