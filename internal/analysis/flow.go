package analysis

import (
	"go/ast"
	"go/token"
)

// This file is the framework's lightweight intra-function control-flow
// walk: an abstract interpretation of one function body that evaluates
// statements in rough execution order, forks the abstract state at
// branches, and joins it where control re-merges (must-analysis: the
// join keeps only facts true on every incoming path). It is deliberately
// not a full CFG — there are no basic blocks and `goto` is treated as
// terminating — but it models the shapes that matter for lock discipline:
// sequential lock/unlock, defer-unlock, early returns, if/else, loops,
// switch/select arms, and goroutine launches (which start from an empty
// state: a new goroutine inherits no locks).
//
// The abstract state is a lockSet. The walker itself knows nothing about
// sync or about guarded fields; the analyzer supplies that through
// flowHooks.

// lockMode is the strength of a held guard.
type lockMode int

// Lock strengths, ordered so the must-join is min().
const (
	lockNone  lockMode = iota
	lockRead           // RLock held: shared reads are safe
	lockWrite          // Lock held: exclusive, writes are safe
)

// lockSet maps guard names (the final selector component of the mutex
// expression: "mu" for s.mu.Lock()) to the strongest mode held on every
// path reaching the current point.
type lockSet map[string]lockMode

// clone returns an independent copy.
func (s lockSet) clone() lockSet {
	c := make(lockSet, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// setTo replaces s's contents with o's, in place (the walker mutates one
// map per path so callers keep their reference).
func (s lockSet) setTo(o lockSet) {
	clear(s)
	for k, v := range o {
		s[k] = v
	}
}

// intersect narrows s to the facts also present in o: guards held on
// both paths, at the weaker of the two modes.
func (s lockSet) intersect(o lockSet) {
	for k, v := range s {
		ov, ok := o[k]
		if !ok {
			delete(s, k)
			continue
		}
		if ov < v {
			s[k] = ov
		}
	}
}

// flowHooks are the analyzer-specific callbacks of a flow walk.
type flowHooks struct {
	// call is invoked for every call expression in evaluation position,
	// after its operands were visited. deferred marks calls inside a
	// defer (including calls textually inside a deferred function
	// literal). The hook may mutate state (a Lock acquires, an Unlock
	// releases — except deferred unlocks, which hold to function end).
	call func(call *ast.CallExpr, deferred bool, state lockSet)
	// access is invoked for every expression evaluated, with the state
	// in effect and whether the expression is the target of a write
	// (assignment, ++/--, address-taken, or the base of a written index).
	access func(e ast.Expr, write bool, state lockSet)
}

// flowWalker evaluates one function body against the hooks.
type flowWalker struct {
	hooks flowHooks
}

// walkBody runs the walk from the given entry state.
func (w *flowWalker) walkBody(body *ast.BlockStmt, entry lockSet) {
	w.block(body, entry)
}

// block evaluates a statement list sequentially; the walk stops at the
// first terminating statement (anything after it is unreachable).
func (w *flowWalker) block(b *ast.BlockStmt, state lockSet) (terminated bool) {
	if b == nil {
		return false
	}
	return w.stmtList(b.List, state)
}

func (w *flowWalker) stmtList(list []ast.Stmt, state lockSet) (terminated bool) {
	for _, s := range list {
		if w.stmt(s, state) {
			return true
		}
	}
	return false
}

// stmt evaluates one statement, mutating state in place, and reports
// whether control cannot continue past it.
func (w *flowWalker) stmt(s ast.Stmt, state lockSet) (terminated bool) {
	switch s := s.(type) {
	case nil:
		return false
	case *ast.BlockStmt:
		return w.block(s, state)
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, state)
	case *ast.ExprStmt:
		w.expr(s.X, false, state)
		return isPanicCall(s.X)
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			w.expr(r, false, state)
		}
		for _, l := range s.Lhs {
			w.lvalue(l, state)
		}
		return false
	case *ast.IncDecStmt:
		w.lvalue(s.X, state)
		return false
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v, false, state)
					}
				}
			}
		}
		return false
	case *ast.SendStmt:
		w.expr(s.Chan, false, state)
		w.expr(s.Value, false, state)
		return false
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.expr(r, false, state)
		}
		return true
	case *ast.BranchStmt:
		// break/continue/goto end the current straight-line path; their
		// state is conservatively dropped rather than merged at the
		// target. fallthrough continues into the next case body, which
		// the switch join already covers.
		return s.Tok != token.FALLTHROUGH
	case *ast.DeferStmt:
		w.deferredCall(s.Call, state)
		return false
	case *ast.GoStmt:
		// Arguments evaluate now, under the current state; the launched
		// body runs on a fresh goroutine holding nothing.
		w.expr(s.Call.Fun, false, state)
		for _, a := range s.Call.Args {
			if fl, ok := a.(*ast.FuncLit); ok {
				w.block(fl.Body, lockSet{})
				continue
			}
			w.expr(a, false, state)
		}
		if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
			w.block(fl.Body, lockSet{})
		}
		return false
	case *ast.IfStmt:
		w.stmt(s.Init, state)
		w.expr(s.Cond, false, state)
		thenState := state.clone()
		thenTerm := w.block(s.Body, thenState)
		elseState := state.clone()
		elseTerm := false
		if s.Else != nil {
			elseTerm = w.stmt(s.Else, elseState)
		}
		switch {
		case thenTerm && elseTerm:
			return true
		case thenTerm:
			state.setTo(elseState)
		case elseTerm:
			state.setTo(thenState)
		default:
			thenState.intersect(elseState)
			state.setTo(thenState)
		}
		return false
	case *ast.ForStmt:
		w.stmt(s.Init, state)
		if s.Cond != nil {
			w.expr(s.Cond, false, state)
		}
		bodyState := state.clone()
		bodyTerm := w.block(s.Body, bodyState)
		if !bodyTerm {
			w.stmt(s.Post, bodyState)
			// The loop may run zero times, so the after-loop state is
			// what held before intersected with what one iteration left.
			state.intersect(bodyState)
		}
		return false
	case *ast.RangeStmt:
		w.expr(s.X, false, state)
		bodyState := state.clone()
		if !w.block(s.Body, bodyState) {
			state.intersect(bodyState)
		}
		return false
	case *ast.SwitchStmt:
		w.stmt(s.Init, state)
		if s.Tag != nil {
			w.expr(s.Tag, false, state)
		}
		return w.caseBodies(s.Body, state, hasDefaultCase(s.Body))
	case *ast.TypeSwitchStmt:
		w.stmt(s.Init, state)
		w.stmt(s.Assign, state)
		return w.caseBodies(s.Body, state, hasDefaultCase(s.Body))
	case *ast.SelectStmt:
		// Exactly one comm clause runs, so the join spans the clauses
		// only — but a select with no default may also be the last thing
		// a function does; keep the pre-state in the join for safety.
		return w.caseBodies(s.Body, state, hasDefaultCase(s.Body))
	}
	return false
}

// caseBodies evaluates each case clause of a switch/select body from a
// fork of the incoming state and joins the survivors. When no default
// exists the incoming state joins too (the switch may select nothing).
func (w *flowWalker) caseBodies(body *ast.BlockStmt, state lockSet, exhaustive bool) bool {
	var joined lockSet
	join := func(s lockSet) {
		if joined == nil {
			joined = s
			return
		}
		joined.intersect(s)
	}
	allTerminated := true
	for _, c := range body.List {
		caseState := state.clone()
		var stmts []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				w.expr(e, false, caseState)
			}
			stmts = c.Body
		case *ast.CommClause:
			w.stmt(c.Comm, caseState)
			stmts = c.Body
		}
		if !w.stmtList(stmts, caseState) {
			allTerminated = false
			join(caseState)
		}
	}
	if !exhaustive {
		allTerminated = false
		join(state.clone())
	}
	if allTerminated && len(body.List) > 0 {
		return true
	}
	if joined != nil {
		state.setTo(joined)
	}
	return false
}

func hasDefaultCase(body *ast.BlockStmt) bool {
	for _, c := range body.List {
		switch c := c.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				return true
			}
		case *ast.CommClause:
			if c.Comm == nil {
				return true
			}
		}
	}
	return false
}

// lvalue visits a write target, propagating the write through index and
// dereference wrappers to the selector or identifier being mutated.
func (w *flowWalker) lvalue(e ast.Expr, state lockSet) {
	switch e := e.(type) {
	case *ast.ParenExpr:
		w.lvalue(e.X, state)
	case *ast.IndexExpr:
		// m[k] = v mutates m.
		w.expr(e.Index, false, state)
		w.lvalue(e.X, state)
	case *ast.StarExpr:
		// *p = v reads the pointer, mutates the pointee.
		w.expr(e.X, false, state)
	case *ast.SelectorExpr:
		w.hooks.access(e, true, state)
		w.expr(e.X, false, state)
	default:
		w.expr(e, false, state)
	}
}

// expr visits an expression read, invoking the access hook on it and
// recursing into its operands; calls additionally invoke the call hook.
func (w *flowWalker) expr(e ast.Expr, write bool, state lockSet) {
	if e == nil {
		return
	}
	w.hooks.access(e, write, state)
	switch e := e.(type) {
	case *ast.ParenExpr:
		w.expr(e.X, write, state)
	case *ast.SelectorExpr:
		w.expr(e.X, false, state)
	case *ast.IndexExpr:
		w.expr(e.X, false, state)
		w.expr(e.Index, false, state)
	case *ast.IndexListExpr:
		w.expr(e.X, false, state)
		for _, i := range e.Indices {
			w.expr(i, false, state)
		}
	case *ast.SliceExpr:
		w.expr(e.X, false, state)
		w.expr(e.Low, false, state)
		w.expr(e.High, false, state)
		w.expr(e.Max, false, state)
	case *ast.StarExpr:
		w.expr(e.X, false, state)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			// Taking a field's address hands out a mutable alias; treat
			// it as a write so guards cover it.
			w.lvalue(e.X, state)
			return
		}
		w.expr(e.X, false, state)
	case *ast.BinaryExpr:
		w.expr(e.X, false, state)
		w.expr(e.Y, false, state)
	case *ast.KeyValueExpr:
		w.expr(e.Value, false, state)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			w.expr(el, false, state)
		}
	case *ast.TypeAssertExpr:
		w.expr(e.X, false, state)
	case *ast.CallExpr:
		w.expr(e.Fun, false, state)
		for _, a := range e.Args {
			w.expr(a, false, state)
		}
		w.hooks.call(e, false, state)
	case *ast.FuncLit:
		// A literal not launched via go is either invoked here or stored
		// and called later from a similar context; analyze its body under
		// the current state, discarding its effects.
		w.block(e.Body, state.clone())
	}
}

// deferredCall evaluates a deferred call: operands now, the call itself
// flagged deferred (a deferred unlock keeps its guard held to function
// end). A deferred function literal's body is scanned in deferred mode
// too, so `defer func() { mu.Unlock() }()` behaves like the direct form.
func (w *flowWalker) deferredCall(call *ast.CallExpr, state lockSet) {
	if fl, ok := call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(fl.Body, func(n ast.Node) bool {
			if c, ok := n.(*ast.CallExpr); ok {
				w.hooks.call(c, true, state)
			}
			return true
		})
		return
	}
	w.expr(call.Fun, false, state)
	for _, a := range call.Args {
		w.expr(a, false, state)
	}
	w.hooks.call(call, true, state)
}

// isPanicCall reports whether the expression statement is a bare call to
// the predeclared panic.
func isPanicCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}
