// Package analysis is a small, zero-dependency static-analysis framework
// (stdlib go/ast + go/parser + go/token only) carrying the repo-specific
// analyzers that mechanically enforce the simulator's invariants:
//
//   - mapiter: no ranging over maps in the deterministic engine packages
//     (internal/sim, internal/core, internal/witness, internal/paths)
//     unless the keys are collected and sorted first — the paper's
//     guarantees are proved for a deterministic contention-resolution
//     machine, and map iteration order would silently break the
//     byte-for-byte engine == reference pinning.
//   - globalrand: no math/rand, time.Now, or os.Getenv in the
//     deterministic packages; all randomness flows through internal/rng.
//   - hotpath: no make / new / map or slice literals / capturing closures
//     / non-self appends inside functions marked //optlint:hotpath — the
//     engine step path pinned to 0 allocs/op by TestSteadyStateAllocFree.
//   - probeguard: every call through a telemetry Probe field is dominated
//     by a nil check, preserving the nil-probe zero-cost contract.
//   - floateq: no == or != on floating-point operands in internal/stats
//     and internal/experiments.
//   - docs: every exported symbol has a doc comment and every package has
//     a package comment (migrated from the original lint_test.go).
//
// Findings are suppressed with //optlint:allow directives (see suppress.go):
// a directive above or on the offending line scopes to that line; a
// directive before the package clause scopes to the whole file. Directives
// naming an unknown analyzer are themselves diagnostics, so suppressions
// cannot silently outlive the checks they disable.
//
// Run the suite with `go run ./cmd/optlint ./...`; the repo-wide
// TestOptlintClean gate keeps `go test ./...` enforcing it.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
)

// Diagnostic is one finding: a position, the analyzer that produced it,
// and a human-readable message.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String formats the diagnostic as "file:line:col: [analyzer] message".
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Pass is one analyzer's view of one package: the parsed files plus
// reporting plumbing. Analyzers are purely syntactic; PkgPath carries the
// import path so package-scoped rules can be expressed by the runner.
type Pass struct {
	Fset    *token.FileSet
	Files   []*ast.File
	PkgName string
	PkgPath string

	analyzer *Analyzer
	report   func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzer is one named check. Packages restricts where it runs: a list
// of import-path suffixes (e.g. "internal/sim"); empty means every
// package.
type Analyzer struct {
	Name     string
	Doc      string
	Packages []string
	Run      func(*Pass)
}

// appliesTo reports whether the analyzer runs on the given import path.
func (a *Analyzer) appliesTo(pkgPath string) bool {
	if len(a.Packages) == 0 {
		return true
	}
	for _, suffix := range a.Packages {
		if pkgPath == suffix || hasPathSuffix(pkgPath, suffix) {
			return true
		}
	}
	return false
}

func hasPathSuffix(path, suffix string) bool {
	return len(path) > len(suffix) && path[len(path)-len(suffix):] == suffix &&
		path[len(path)-len(suffix)-1] == '/'
}

// All returns the full registered analyzer suite, in stable order.
func All() []*Analyzer {
	return []*Analyzer{MapIter, GlobalRand, HotPath, ProbeGuard, FloatEq, Docs}
}

// Lint runs the given analyzers over one package's files, applies the
// //optlint:allow suppression directives, checks directives for unknown
// analyzer names, and returns the surviving diagnostics sorted by
// position. The known-name check always uses the full registry from All,
// so a fixture run of a single analyzer still accepts suppressions naming
// the others.
func Lint(fset *token.FileSet, files []*ast.File, pkgPath string, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	report := func(d Diagnostic) { diags = append(diags, d) }

	known := map[string]bool{}
	for _, a := range All() {
		known[a.Name] = true
	}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	sup := collectDirectives(fset, files, known, report)

	pkgName := ""
	if len(files) > 0 {
		pkgName = files[0].Name.Name
	}
	for _, a := range analyzers {
		if !a.appliesTo(pkgPath) {
			continue
		}
		pass := &Pass{
			Fset:     fset,
			Files:    files,
			PkgName:  pkgName,
			PkgPath:  pkgPath,
			analyzer: a,
			report:   report,
		}
		a.Run(pass)
	}

	kept := diags[:0]
	for _, d := range diags {
		if d.Analyzer != directiveAnalyzerName && sup.suppressed(d) {
			continue
		}
		kept = append(kept, d)
	}
	diags = kept
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// exprString renders the identifier / selector chains the analyzers care
// about ("e.probe", "cfg.Probe", "m"); other expressions collapse to a
// placeholder, which is fine for message text and receiver matching.
func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.BasicLit:
		return x.Value
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.ParenExpr:
		return exprString(x.X)
	case *ast.StarExpr:
		return "*" + exprString(x.X)
	case *ast.IndexExpr:
		return exprString(x.X) + "[...]"
	case *ast.CallExpr:
		return exprString(x.Fun) + "(...)"
	}
	return "<expr>"
}

// walkStack visits every node under root, passing the ancestor stack
// (outermost first, not including n itself). Return false from f to skip
// the node's children.
func walkStack(root ast.Node, f func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		descend := f(n, stack)
		if descend {
			stack = append(stack, n)
		}
		return descend
	})
}

// universe is the set of predeclared Go identifiers, used by the
// free-variable scan in the hotpath closure check.
var universe = map[string]bool{
	"append": true, "cap": true, "clear": true, "close": true,
	"complex": true, "copy": true, "delete": true, "imag": true,
	"len": true, "make": true, "max": true, "min": true, "new": true,
	"panic": true, "print": true, "println": true, "real": true,
	"recover": true, "bool": true, "byte": true, "comparable": true,
	"complex64": true, "complex128": true, "error": true, "float32": true,
	"float64": true, "int": true, "int8": true, "int16": true,
	"int32": true, "int64": true, "rune": true, "string": true,
	"uint": true, "uint8": true, "uint16": true, "uint32": true,
	"uint64": true, "uintptr": true, "any": true, "true": true,
	"false": true, "iota": true, "nil": true, "_": true,
}

// packageDecls returns every top-level declared name plus the per-file
// import names across the pass's files; identifiers in this set are not
// closure captures.
func packageDecls(files []*ast.File) map[string]bool {
	decls := map[string]bool{}
	for _, f := range files {
		for _, imp := range f.Imports {
			decls[importName(imp)] = true
		}
		for _, d := range f.Decls {
			switch d := d.(type) {
			case *ast.FuncDecl:
				if d.Recv == nil {
					decls[d.Name.Name] = true
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						decls[s.Name.Name] = true
					case *ast.ValueSpec:
						for _, n := range s.Names {
							decls[n.Name] = true
						}
					}
				}
			}
		}
	}
	return decls
}

// importName returns the name an import is referred to by in source.
func importName(imp *ast.ImportSpec) string {
	if imp.Name != nil {
		return imp.Name.Name
	}
	path := imp.Path.Value
	path = path[1 : len(path)-1] // strip quotes
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}
