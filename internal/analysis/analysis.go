// Package analysis is a small, zero-dependency static-analysis framework
// (stdlib go/ast + go/parser + go/token + go/types only) carrying the
// repo-specific analyzers that mechanically enforce the simulator's
// invariants. Every linted package is type-checked first (see
// typecheck.go), so analyzers resolve selector targets and static types
// instead of guessing from names; flow-aware analyzers additionally walk
// an intra-function control-flow approximation (see flow.go):
//
//   - mapiter: no ranging over maps in the deterministic engine packages
//     (internal/sim, internal/core, internal/witness, internal/paths)
//     unless the keys are collected and sorted first — the paper's
//     guarantees are proved for a deterministic contention-resolution
//     machine, and map iteration order would silently break the
//     byte-for-byte engine == reference pinning.
//   - globalrand: no math/rand, time.Now, or os.Getenv in the
//     deterministic packages; all randomness flows through internal/rng.
//   - hotpath: no make / new / map or slice literals / capturing closures
//     / non-self appends inside functions marked //optlint:hotpath — the
//     engine step path pinned to 0 allocs/op by TestSteadyStateAllocFree.
//   - probeguard: every call through a telemetry Probe field is dominated
//     by a nil check, preserving the nil-probe zero-cost contract.
//   - floateq: no == or != on floating-point operands in internal/stats
//     and internal/experiments.
//   - docs: every exported symbol has a doc comment and every package has
//     a package comment (migrated from the original lint_test.go).
//   - guardedby: struct fields annotated //optlint:guardedby mu may only
//     be accessed while a lock named mu is held on every path (defer
//     unlocks and //optlint:locked helper contracts included).
//   - dettaint: values derived from nondeterministic sources (time,
//     os.Getenv, math/rand, multi-case selects) must not reach the
//     canonical encoder or any //optlint:sink function.
//   - errsink: no discarded error results from Close/Sync/Flush/Write
//     (and fmt.Fprint* to abstract writers) in the store and serving
//     layers.
//
// Findings are suppressed with //optlint:allow directives (see suppress.go):
// a directive above or on the offending line scopes to that line; a
// directive before the package clause scopes to the whole file. Directives
// naming an unknown analyzer are themselves diagnostics, so suppressions
// cannot silently outlive the checks they disable.
//
// Run the suite with `go run ./cmd/optlint ./...`; the repo-wide
// TestOptlintClean gate keeps `go test ./...` enforcing it.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Diagnostic is one finding: a position, the analyzer that produced it,
// and a human-readable message.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String formats the diagnostic as "file:line:col: [analyzer] message".
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Pass is one analyzer's view of one package: the parsed files, the
// type-checked package and its resolution maps, plus reporting plumbing.
// PkgPath carries the import path so package-scoped rules can be
// expressed by the runner.
type Pass struct {
	Fset    *token.FileSet
	Files   []*ast.File
	PkgName string
	PkgPath string

	// Pkg is the type-checked package and Info its resolution maps
	// (Types, Defs, Uses, Selections, Implicits, Scopes — all filled).
	Pkg  *types.Package
	Info *types.Info

	analyzer *Analyzer
	report   func(Diagnostic)
}

// TypeOf returns the static type of e, or nil when the expression is not
// recorded (which for a successfully checked package means e is not an
// expression at all).
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.Info.TypeOf(e)
}

// ObjectOf returns the object denoted by id (definition or use), or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	return p.Info.ObjectOf(id)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzer is one named check. Packages restricts where it runs: a list
// of import-path suffixes (e.g. "internal/sim"); empty means every
// package.
type Analyzer struct {
	Name     string
	Doc      string
	Packages []string
	Run      func(*Pass)
}

// appliesTo reports whether the analyzer runs on the given import path.
func (a *Analyzer) appliesTo(pkgPath string) bool {
	if len(a.Packages) == 0 {
		return true
	}
	for _, suffix := range a.Packages {
		if pkgPath == suffix || hasPathSuffix(pkgPath, suffix) {
			return true
		}
	}
	return false
}

func hasPathSuffix(path, suffix string) bool {
	return len(path) > len(suffix) && path[len(path)-len(suffix):] == suffix &&
		path[len(path)-len(suffix)-1] == '/'
}

// All returns the full registered analyzer suite, in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		MapIter, GlobalRand, HotPath, ProbeGuard, FloatEq, Docs,
		GuardedBy, DetTaint, ErrSink,
	}
}

// Lint type-checks one package's files and runs the given analyzers over
// it, applying the //optlint:allow suppression directives. The package
// must type-check (its module-internal imports resolved from nothing, so
// standalone callers lint self-contained or stdlib-only packages; the
// module walker in LintModule supplies cross-package types). Surviving
// diagnostics come back sorted by position.
func Lint(fset *token.FileSet, files []*ast.File, pkgPath string, analyzers []*Analyzer) ([]Diagnostic, error) {
	pkg, info, err := checkPackage(fset, pkgPath, files, nil)
	if err != nil {
		return nil, err
	}
	return lintTyped(fset, files, pkgPath, pkg, info, analyzers), nil
}

// lintTyped runs the given analyzers over one type-checked package,
// applies the //optlint:allow suppression directives, checks directives
// for unknown analyzer names, and returns the surviving diagnostics
// sorted by position. The known-name check always uses the full registry
// from All, so a fixture run of a single analyzer still accepts
// suppressions naming the others.
func lintTyped(fset *token.FileSet, files []*ast.File, pkgPath string, pkg *types.Package, info *types.Info, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	report := func(d Diagnostic) { diags = append(diags, d) }

	known := map[string]bool{}
	for _, a := range All() {
		known[a.Name] = true
	}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	sup := collectDirectives(fset, files, known, report)

	pkgName := ""
	if len(files) > 0 {
		pkgName = files[0].Name.Name
	}
	for _, a := range analyzers {
		if !a.appliesTo(pkgPath) {
			continue
		}
		pass := &Pass{
			Fset:     fset,
			Files:    files,
			PkgName:  pkgName,
			PkgPath:  pkgPath,
			Pkg:      pkg,
			Info:     info,
			analyzer: a,
			report:   report,
		}
		a.Run(pass)
	}

	kept := diags[:0]
	for _, d := range diags {
		if d.Analyzer != directiveAnalyzerName && sup.suppressed(d) {
			continue
		}
		kept = append(kept, d)
	}
	diags = kept
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// exprString renders the identifier / selector chains the analyzers care
// about ("e.probe", "cfg.Probe", "m"); other expressions collapse to a
// placeholder, which is fine for message text and receiver matching.
func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.BasicLit:
		return x.Value
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.ParenExpr:
		return exprString(x.X)
	case *ast.StarExpr:
		return "*" + exprString(x.X)
	case *ast.IndexExpr:
		return exprString(x.X) + "[...]"
	case *ast.CallExpr:
		return exprString(x.Fun) + "(...)"
	}
	return "<expr>"
}

// walkStack visits every node under root, passing the ancestor stack
// (outermost first, not including n itself). Return false from f to skip
// the node's children.
func walkStack(root ast.Node, f func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		descend := f(n, stack)
		if descend {
			stack = append(stack, n)
		}
		return descend
	})
}

// importName returns the name an import is referred to by in source.
func importName(imp *ast.ImportSpec) string {
	if imp.Name != nil {
		return imp.Name.Name
	}
	path := imp.Path.Value
	path = path[1 : len(path)-1] // strip quotes
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}
