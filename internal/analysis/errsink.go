package analysis

import (
	"go/ast"
	"go/types"
)

// ErrSink reports discarded error results on the calls whose failure
// means data loss in the persistence and serving layers: Close, Sync,
// Flush, Write and WriteString called as bare statements (including
// deferred), and fmt.Fprint* writing to an abstract writer (io.Writer,
// http.ResponseWriter — sinks that really can fail mid-response).
// Writes into concrete in-memory buffers (bytes.Buffer, strings.Builder,
// *bufio.Writer before its checked Flush) never fail, so passing a
// concrete type is both documentation and the fix.
//
// An explicit `_ = f.Close()` states intent and is not reported; a bare
// `f.Close()` in a JSONL store or a defer silently drops the one signal
// that an fsync'd segment did not actually reach the disk.
var ErrSink = &Analyzer{
	Name: "errsink",
	Doc:  "no discarded errors from Close/Sync/Flush/Write or fmt.Fprint* to abstract writers",
	Packages: []string{
		"internal/jobs",
		"internal/shardsim",
		"internal/telemetry",
		"internal/workload",
		"internal/cluster",
		"cmd/optnetd",
	},
	Run: runErrSink,
}

// errSinkMethods are the method names whose dropped error is a data-loss
// signal.
var errSinkMethods = map[string]bool{
	"Close":       true,
	"Sync":        true,
	"Flush":       true,
	"Write":       true,
	"WriteString": true,
}

func runErrSink(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					p.checkErrSinkCall(call, false)
				}
			case *ast.DeferStmt:
				p.checkErrSinkCall(n.Call, true)
			case *ast.GoStmt:
				p.checkErrSinkCall(n.Call, false)
			}
			return true
		})
	}
}

// checkErrSinkCall reports the call if it discards a watched error.
func (p *Pass) checkErrSinkCall(call *ast.CallExpr, deferred bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := p.Info.ObjectOf(sel.Sel).(*types.Func)
	if !ok {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || !lastResultIsError(sig) {
		return
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		p.checkFprint(call, fn)
		return
	}
	if sig.Recv() == nil || !errSinkMethods[fn.Name()] {
		return
	}
	how := "call"
	if deferred {
		how = "deferred call"
	}
	p.Reportf(call.Pos(),
		"%s to %s.%s discards its error: handle it, or write `_ = %s.%s(...)` with an //optlint:allow errsink justification if the failure truly cannot matter",
		how, exprString(sel.X), fn.Name(), exprString(sel.X), fn.Name())
}

// checkFprint reports fmt.Fprint* statements writing to an abstract
// writer type; a concrete in-memory writer is exempt because its writes
// cannot fail.
func (p *Pass) checkFprint(call *ast.CallExpr, fn *types.Func) {
	switch fn.Name() {
	case "Fprint", "Fprintf", "Fprintln":
	default:
		return
	}
	if len(call.Args) == 0 {
		return
	}
	t := p.Info.TypeOf(call.Args[0])
	if t == nil || !types.IsInterface(t) {
		return
	}
	p.Reportf(call.Pos(),
		"fmt.%s writes to abstract writer type %s and discards the error: a failed mid-response write goes unnoticed; check the error or pass a concrete in-memory writer",
		fn.Name(), t.String())
}

// lastResultIsError reports whether the signature's final result is the
// predeclared error type.
func lastResultIsError(sig *types.Signature) bool {
	res := sig.Results()
	if res.Len() == 0 {
		return false
	}
	last := res.At(res.Len() - 1).Type()
	named, ok := last.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}
