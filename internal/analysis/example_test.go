package analysis_test

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"

	"repro/internal/analysis"
)

// ExampleLint runs the mapiter analyzer over one file of a deterministic
// engine package and prints the findings.
func ExampleLint() {
	const src = `package sim

type engine struct {
	waiting map[int]bool
}

func (e *engine) count() int {
	n := 0
	for range e.waiting {
		n++
	}
	return n
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "engine.go", src, parser.ParseComments)
	if err != nil {
		panic(err)
	}
	diags, err := analysis.Lint(fset, []*ast.File{f}, "example.com/mod/internal/sim",
		[]*analysis.Analyzer{analysis.MapIter})
	if err != nil {
		panic(err)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	// Output:
	// engine.go:9:2: [mapiter] range over map e.waiting in deterministic package example.com/mod/internal/sim: iteration order is randomized; collect and sort the keys, or annotate //optlint:allow mapiter with why order cannot matter
}
