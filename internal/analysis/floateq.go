package analysis

import (
	"go/ast"
	"go/token"
)

// FloatEq reports == and != comparisons with floating-point operands in
// the statistics and experiment packages, where accumulated rounding makes
// exact equality a latent bug (a threshold computed two ways can differ in
// the last ulp and silently flip a table row). Detection is syntactic:
// float literals, and identifiers or fields declared float32/float64 in
// the surrounding function or package.
var FloatEq = &Analyzer{
	Name:     "floateq",
	Doc:      "no ==/!= on floats in stats/experiments; compare with a tolerance",
	Packages: []string{"internal/stats", "internal/experiments"},
	Run:      runFloatEq,
}

func runFloatEq(p *Pass) {
	fields := collectFloatFieldNames(p.Files)
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			floats := collectLocalFloatNames(fn)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				be, ok := n.(*ast.BinaryExpr)
				if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
					return true
				}
				if isFloatOperand(be.X, floats, fields) || isFloatOperand(be.Y, floats, fields) {
					p.Reportf(be.Pos(),
						"%s on floating-point operands (%s %s %s): compare with a tolerance or annotate //optlint:allow floateq",
						be.Op, exprString(be.X), be.Op, exprString(be.Y))
				}
				return true
			})
		}
	}
}

// collectFloatFieldNames gathers struct field names declared float32 or
// float64 anywhere in the package.
func collectFloatFieldNames(files []*ast.File) map[string]bool {
	fields := map[string]bool{}
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			for _, fld := range st.Fields.List {
				if !isFloatTypeExpr(fld.Type) {
					continue
				}
				for _, name := range fld.Names {
					fields[name.Name] = true
				}
			}
			return true
		})
	}
	return fields
}

// collectLocalFloatNames gathers fn's parameters, results, and locals
// declared with an explicit float type or defined from a float literal.
func collectLocalFloatNames(fn *ast.FuncDecl) map[string]bool {
	floats := map[string]bool{}
	addFieldList := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, fld := range fl.List {
			if !isFloatTypeExpr(fld.Type) {
				continue
			}
			for _, name := range fld.Names {
				floats[name.Name] = true
			}
		}
	}
	addFieldList(fn.Type.Params)
	addFieldList(fn.Type.Results)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE || len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && isFloatValueExpr(n.Rhs[i]) {
					floats[id.Name] = true
				}
			}
		case *ast.DeclStmt:
			gd, ok := n.Decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || vs.Type == nil || !isFloatTypeExpr(vs.Type) {
					continue
				}
				for _, name := range vs.Names {
					floats[name.Name] = true
				}
			}
		}
		return true
	})
	return floats
}

func isFloatTypeExpr(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && (id.Name == "float64" || id.Name == "float32")
}

// isFloatValueExpr reports whether the expression is evidently a float:
// a float literal or a float conversion.
func isFloatValueExpr(e ast.Expr) bool {
	switch v := e.(type) {
	case *ast.BasicLit:
		return v.Kind == token.FLOAT
	case *ast.CallExpr:
		return isFloatTypeExpr(v.Fun)
	}
	return false
}

// isFloatOperand resolves a comparison operand against the known float
// names: literals, locals/params, and package struct fields.
func isFloatOperand(e ast.Expr, locals, fields map[string]bool) bool {
	switch x := e.(type) {
	case *ast.BasicLit:
		return x.Kind == token.FLOAT
	case *ast.Ident:
		return locals[x.Name]
	case *ast.SelectorExpr:
		return fields[x.Sel.Name]
	case *ast.ParenExpr:
		return isFloatOperand(x.X, locals, fields)
	case *ast.CallExpr:
		return isFloatTypeExpr(x.Fun)
	}
	return false
}
