package analysis

import (
	"go/ast"
	"go/types"
)

// GuardedBy enforces lock discipline on annotated fields: a struct field
// whose comment carries //optlint:guardedby mu may only be read while a
// lock named mu is held (Lock or RLock) on every path reaching the
// access, and only be written under the exclusive Lock. Held state is
// computed by the intra-function flow walk: sequential Lock/Unlock,
// defer-unlock (direct or inside a deferred function literal), branches
// (must-join), loops, switch/select arms, and goroutine launches (a new
// goroutine holds nothing).
//
// Helper methods are part of the contract: a function whose doc comment
// carries //optlint:locked mu is checked assuming mu is held at entry,
// and every direct call to it must itself happen with mu held — the
// sched.go statusLocked / rollLocked idiom, mechanized.
//
// Guards are matched by name (the final selector component of the mutex
// expression), not by object identity: s.mu.Lock() satisfies a field
// guarded by "mu" regardless of which struct s is. That keeps the checker
// lightweight; packages with two unrelated mutexes of the same name
// should rename one.
var GuardedBy = &Analyzer{
	Name: "guardedby",
	Doc:  "fields annotated //optlint:guardedby mu are only touched with mu held",
	Run:  runGuardedBy,
}

func runGuardedBy(p *Pass) {
	guards := collectGuardedFields(p)
	locked := collectLockedFuncs(p)
	if len(guards) == 0 && len(locked) == 0 {
		return
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			entry := lockSet{}
			if g, ok := locked[p.Info.Defs[fn.Name]]; ok {
				entry[g] = lockWrite
			}
			w := &flowWalker{hooks: flowHooks{
				call: func(call *ast.CallExpr, deferred bool, state lockSet) {
					p.applyLockCall(call, deferred, state)
					p.checkLockedCallee(call, locked, state)
				},
				access: func(e ast.Expr, write bool, state lockSet) {
					p.checkGuardedAccess(e, write, guards, state)
				},
			}}
			w.walkBody(fn.Body, entry)
		}
	}
}

// collectGuardedFields maps each annotated struct field's object to its
// guard name. Annotations live in the field's own doc or trailing
// comment: //optlint:guardedby <guard>.
func collectGuardedFields(p *Pass) map[*types.Var]string {
	guards := map[*types.Var]string{}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			for _, field := range st.Fields.List {
				guard := fieldGuardName(field)
				if guard == "" {
					continue
				}
				for _, name := range field.Names {
					if v, ok := p.Info.Defs[name].(*types.Var); ok {
						guards[v] = guard
					}
				}
			}
			return true
		})
	}
	return guards
}

// fieldGuardName extracts the guard from a field's guardedby directive.
func fieldGuardName(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if args, ok := directiveArgs(c.Text, guardedbyMarker); ok && len(args) == 1 {
				return args[0]
			}
		}
	}
	return ""
}

// collectLockedFuncs maps functions annotated //optlint:locked <guard>
// to their guard: they run with it held and may only be called with it
// held.
func collectLockedFuncs(p *Pass) map[types.Object]string {
	locked := map[types.Object]string{}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Doc == nil {
				continue
			}
			for _, c := range fn.Doc.List {
				if args, ok := directiveArgs(c.Text, lockedMarker); ok && len(args) == 1 {
					if obj := p.Info.Defs[fn.Name]; obj != nil {
						locked[obj] = args[0]
					}
				}
			}
		}
	}
	return locked
}

// applyLockCall updates the lock state for mutex method calls. The
// method must resolve to package sync (so a local type's Lock method
// does not count), and the guard is the final name of the receiver
// expression: s.mu.Lock() acquires "mu".
func (p *Pass) applyLockCall(call *ast.CallExpr, deferred bool, state lockSet) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	obj := p.Info.ObjectOf(sel.Sel)
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return
	}
	guard := finalName(sel.X)
	if guard == "" {
		return
	}
	switch sel.Sel.Name {
	case "Lock":
		if !deferred {
			state[guard] = lockWrite
		}
	case "RLock":
		if !deferred && state[guard] < lockRead {
			state[guard] = lockRead
		}
	case "Unlock", "RUnlock":
		// A deferred unlock releases at return, so the guard stays held
		// for the rest of the walk.
		if !deferred {
			delete(state, guard)
		}
	}
}

// checkLockedCallee reports direct calls to //optlint:locked functions
// made without their guard held.
func (p *Pass) checkLockedCallee(call *ast.CallExpr, locked map[types.Object]string, state lockSet) {
	if len(locked) == 0 {
		return
	}
	var callee types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		callee = p.Info.ObjectOf(fun)
	case *ast.SelectorExpr:
		callee = p.Info.ObjectOf(fun.Sel)
	}
	if callee == nil {
		return
	}
	guard, ok := locked[callee]
	if !ok {
		return
	}
	if state[guard] == lockNone {
		p.Reportf(call.Pos(),
			"call to %s requires %s held (//optlint:locked %s), but no path to this call locks it",
			callee.Name(), guard, guard)
	}
}

// checkGuardedAccess reports reads of guarded fields without the guard
// and writes without the exclusive lock.
func (p *Pass) checkGuardedAccess(e ast.Expr, write bool, guards map[*types.Var]string, state lockSet) {
	if len(guards) == 0 {
		return
	}
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return
	}
	selection := p.Info.Selections[sel]
	if selection == nil || selection.Kind() != types.FieldVal {
		return
	}
	v, ok := selection.Obj().(*types.Var)
	if !ok {
		return
	}
	guard, ok := guards[v]
	if !ok {
		return
	}
	held := state[guard]
	switch {
	case held == lockNone:
		p.Reportf(sel.Sel.Pos(),
			"field %s is guarded by %s (//optlint:guardedby) but accessed without holding it on every path",
			v.Name(), guard)
	case write && held < lockWrite:
		p.Reportf(sel.Sel.Pos(),
			"write to field %s needs the exclusive %s.Lock, but only %s.RLock is held",
			v.Name(), guard, guard)
	}
}

// finalName returns the last identifier of a selector chain ("mu" for
// s.inner.mu), or "" when the expression is not a plain chain.
func finalName(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	}
	return ""
}
