package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/token"
	"go/types"
	"sync"
)

// The typed layer: every linted package is run through the stdlib
// go/types checker before the analyzers see it, so passes can resolve
// selector targets (which struct field, which package's function) and
// static types instead of pattern-matching on names. The zero-dependency
// rule holds — imports resolve through go/importer's source importer,
// which type-checks dependencies from GOROOT source; module-internal
// imports are served from the packages already checked earlier in the
// same LintModule run (packageDirs returns dependency-closed, sorted
// directories, and checkOrder topologically orders them).
//
// Type-checking is mandatory, not best-effort: a package that fails to
// type-check fails the lint run with an error rather than silently
// degrading the typed analyzers to no-ops.

// stdImporter is the process-wide source importer for stdlib packages.
// It caches every package it checks, so the expensive dependencies
// (net/http, encoding/json) are type-checked once per process no matter
// how many packages of the module import them — the package-load cache
// that keeps repo-wide lint runs fast.
var stdImporter = struct {
	mu   sync.Mutex
	fset *token.FileSet
	imp  types.Importer
}{}

func stdlibImport(path string) (*types.Package, error) {
	stdImporter.mu.Lock()
	defer stdImporter.mu.Unlock()
	if stdImporter.imp == nil {
		// The importer keeps its own FileSet: positions inside imported
		// packages are never rendered in diagnostics, which always point
		// into the linted package's own FileSet.
		stdImporter.fset = token.NewFileSet()
		stdImporter.imp = importer.ForCompiler(stdImporter.fset, "source", nil)
	}
	return stdImporter.imp.Import(path)
}

// moduleImporter resolves module-internal import paths from the packages
// type-checked earlier in the run and everything else from the shared
// stdlib importer.
type moduleImporter struct {
	module map[string]*types.Package
}

// Import implements types.Importer.
func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := m.module[path]; ok {
		return pkg, nil
	}
	return stdlibImport(path)
}

// newTypesInfo returns a types.Info with every map the analyzers read
// allocated.
func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// checkPackage type-checks one package's parsed files. module maps the
// import paths of already-checked module packages to their types; nil is
// fine for self-contained packages (fixtures, examples in tests).
func checkPackage(fset *token.FileSet, pkgPath string, files []*ast.File, module map[string]*types.Package) (*types.Package, *types.Info, error) {
	info := newTypesInfo()
	var firstErr error
	conf := types.Config{
		Importer: &moduleImporter{module: module},
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	pkg, err := conf.Check(pkgPath, fset, files, info)
	if firstErr != nil {
		return nil, nil, fmt.Errorf("analysis: type-checking %s: %w", pkgPath, firstErr)
	}
	if err != nil {
		return nil, nil, fmt.Errorf("analysis: type-checking %s: %w", pkgPath, err)
	}
	return pkg, info, nil
}

// parsedPackage is one module package awaiting type-checking: its
// directory-derived import path, parsed files, and the module-internal
// paths it imports.
type parsedPackage struct {
	path    string
	files   []*ast.File
	imports []string
}

// checkOrder topologically orders the parsed packages so every package
// is checked after its module-internal dependencies. Ties (and the
// starting order) follow the sorted path order packageDirs produced, so
// diagnostics stay deterministic. An import cycle would be a build error
// anyway; it surfaces here as a missing dependency at check time.
func checkOrder(pkgs []*parsedPackage) []*parsedPackage {
	byPath := make(map[string]*parsedPackage, len(pkgs))
	for _, p := range pkgs {
		byPath[p.path] = p
	}
	ordered := make([]*parsedPackage, 0, len(pkgs))
	state := make(map[string]int, len(pkgs)) // 0 unvisited, 1 visiting, 2 done
	var visit func(p *parsedPackage)
	visit = func(p *parsedPackage) {
		if state[p.path] != 0 {
			return
		}
		state[p.path] = 1
		for _, imp := range p.imports {
			if dep, ok := byPath[imp]; ok && state[dep.path] == 0 {
				visit(dep)
			}
		}
		state[p.path] = 2
		ordered = append(ordered, p)
	}
	for _, p := range pkgs {
		visit(p)
	}
	return ordered
}

// moduleImports returns the module-internal import paths of the files.
func moduleImports(files []*ast.File, modulePath string) []string {
	var paths []string
	seen := map[string]bool{}
	for _, f := range files {
		for _, imp := range f.Imports {
			path := imp.Path.Value
			path = path[1 : len(path)-1] // strip quotes
			if path != modulePath && !hasPathPrefix(path, modulePath) {
				continue
			}
			if !seen[path] {
				seen[path] = true
				paths = append(paths, path)
			}
		}
	}
	return paths
}

func hasPathPrefix(path, prefix string) bool {
	return len(path) > len(prefix) && path[:len(prefix)] == prefix &&
		path[len(prefix)] == '/'
}
