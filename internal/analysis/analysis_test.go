package analysis_test

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/analysis"
)

var update = flag.Bool("update", false, "rewrite the expected.golden fixture files")

// fixtureRuns pairs each testdata directory with the analyzer under test
// and the synthetic import path the fixture package pretends to live at
// (package-scoped analyzers match on import-path suffixes).
var fixtureRuns = []struct {
	dir       string
	pkgPath   string
	analyzers []*analysis.Analyzer
}{
	{"mapiter", "example.com/mod/internal/sim", []*analysis.Analyzer{analysis.MapIter}},
	{"globalrand", "example.com/mod/internal/core", []*analysis.Analyzer{analysis.GlobalRand}},
	{"hotpath", "example.com/mod/internal/sim", []*analysis.Analyzer{analysis.HotPath}},
	{"probeguard", "example.com/mod/internal/telemetry", []*analysis.Analyzer{analysis.ProbeGuard}},
	{"floateq", "example.com/mod/internal/stats", []*analysis.Analyzer{analysis.FloatEq}},
	{"docs", "example.com/mod/internal/fixtures", []*analysis.Analyzer{analysis.Docs}},
	{"directives", "example.com/mod/internal/fixtures", nil},
	{"guardedby", "example.com/mod/internal/jobs", []*analysis.Analyzer{analysis.GuardedBy}},
	{"dettaint", "example.com/mod/internal/jobs", []*analysis.Analyzer{analysis.DetTaint}},
	{"errsink", "example.com/mod/internal/jobs", []*analysis.Analyzer{analysis.ErrSink}},
}

// lintFixtureDir parses every .go file of one testdata directory (with
// base-name filenames, so golden positions are path-independent) and runs
// Lint over them as a single package.
func lintFixtureDir(t *testing.T, dir, pkgPath string, analyzers []*analysis.Analyzer) []analysis.Diagnostic {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		t.Fatalf("no fixture files in %s", dir)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range names {
		src, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		f, err := parser.ParseFile(fset, name, src, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		files = append(files, f)
	}
	diags, err := analysis.Lint(fset, files, pkgPath, analyzers)
	if err != nil {
		t.Fatalf("Lint %s: %v", dir, err)
	}
	return diags
}

// TestAnalyzerGoldenFiles lints each fixture package and compares the
// rendered diagnostics to its expected.golden, byte for byte. Run with
// -update to regenerate the golden files after changing an analyzer.
func TestAnalyzerGoldenFiles(t *testing.T) {
	for _, run := range fixtureRuns {
		t.Run(run.dir, func(t *testing.T) {
			dir := filepath.Join("testdata", run.dir)
			diags := lintFixtureDir(t, dir, run.pkgPath, run.analyzers)
			var b strings.Builder
			for _, d := range diags {
				fmt.Fprintln(&b, d)
			}
			got := b.String()

			golden := filepath.Join(dir, "expected.golden")
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics mismatch for %s\n--- got ---\n%s--- want ---\n%s", run.dir, got, want)
			}

			// Structural guards against fixture rot: hits must come from
			// hit.go only — never from clean.go or suppressed.go.
			sawHit := false
			for _, d := range diags {
				switch d.Pos.Filename {
				case "hit.go":
					sawHit = true
				default:
					t.Errorf("diagnostic attributed to %s; all fixture hits belong in hit.go: %s", d.Pos.Filename, d)
				}
			}
			if !sawHit {
				t.Errorf("fixture %s produced no diagnostics from hit.go", run.dir)
			}
		})
	}
}

// TestUnknownAllowNameIsDiagnostic pins the no-dead-suppressions rule: an
// //optlint:allow naming an analyzer that does not exist is itself a
// finding, so suppressions cannot silently outlive their checks.
func TestUnknownAllowNameIsDiagnostic(t *testing.T) {
	const src = `package p

//optlint:allow vanished this analyzer was deleted long ago
func f() {}
`
	diags := lintSource(t, "p.go", src, "example.com/p", nil)
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %v", len(diags), diags)
	}
	d := diags[0]
	if d.Analyzer != "optlint" {
		t.Errorf("diagnostic analyzer = %q, want %q", d.Analyzer, "optlint")
	}
	if !strings.Contains(d.Message, `unknown analyzer "vanished"`) {
		t.Errorf("diagnostic message %q does not name the unknown analyzer", d.Message)
	}
}

// TestDirectiveDiagnosticsCannotBeSuppressed checks that an allow naming
// "optlint" does not silence the directive checker — it is reported as an
// unknown analyzer name instead.
func TestDirectiveDiagnosticsCannotBeSuppressed(t *testing.T) {
	const src = `package p

//optlint:allow optlint quiet please
func f() {}
`
	diags := lintSource(t, "p.go", src, "example.com/p", nil)
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %v", len(diags), diags)
	}
	if !strings.Contains(diags[0].Message, `unknown analyzer "optlint"`) {
		t.Errorf("diagnostic message %q, want unknown-analyzer report", diags[0].Message)
	}
}

// TestFileScopedAllowDirective checks that a directive placed before the
// package clause suppresses the named analyzer for the whole file.
func TestFileScopedAllowDirective(t *testing.T) {
	const src = `//optlint:allow floateq fixture-wide: exact comparisons are the point here

// Package p is a float-comparison playground.
package p

func f(a float64) bool { return a == 1.0 }

func g(b float64) bool { return b != 2.0 }
`
	diags := lintSource(t, "p.go", src, "example.com/mod/internal/stats",
		[]*analysis.Analyzer{analysis.FloatEq})
	if len(diags) != 0 {
		t.Errorf("file-scoped allow left %d diagnostics: %v", len(diags), diags)
	}
}

// TestMissingPackageComment checks the docs analyzer's package-level rule.
func TestMissingPackageComment(t *testing.T) {
	const src = `package p

// f is documented but the package is not.
func f() {}
`
	diags := lintSource(t, "p.go", src, "example.com/p",
		[]*analysis.Analyzer{analysis.Docs})
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "no package comment") {
		t.Errorf("got %v, want one missing-package-comment diagnostic", diags)
	}
}

func lintSource(t *testing.T, filename, src, pkgPath string, analyzers []*analysis.Analyzer) []analysis.Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, filename, src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.Lint(fset, []*ast.File{f}, pkgPath, analyzers)
	if err != nil {
		t.Fatalf("Lint: %v", err)
	}
	return diags
}
