package topology

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestMesh2D(t *testing.T) {
	m := NewMesh(2, 4)
	g := m.Graph()
	if g.NumNodes() != 16 {
		t.Fatalf("mesh(2,4) nodes = %d", g.NumNodes())
	}
	// Edge count: 2 * side^(d-1) * (side-1) * ... = d * (side-1) * side^(d-1).
	if want := 2 * 3 * 4; g.NumEdges() != want {
		t.Fatalf("mesh(2,4) edges = %d, want %d", g.NumEdges(), want)
	}
	if g.Diameter() != 6 {
		t.Errorf("mesh(2,4) diameter = %d, want 6", g.Diameter())
	}
	// Corner degree 2, edge degree 3, inner degree 4.
	if g.Degree(m.NodeAt([]int{0, 0})) != 2 {
		t.Error("corner degree")
	}
	if g.Degree(m.NodeAt([]int{1, 0})) != 3 {
		t.Error("border degree")
	}
	if g.Degree(m.NodeAt([]int{1, 1})) != 4 {
		t.Error("inner degree")
	}
}

func TestMeshCoordRoundTrip(t *testing.T) {
	m := NewMesh(3, 5)
	check := func(u uint16) bool {
		id := int(u) % m.Graph().NumNodes()
		return m.NodeAt(m.Coord(id)) == id
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
	if m.Dims() != 3 || m.Side() != 5 {
		t.Error("accessors")
	}
}

func TestMeshEdgesAreUnitSteps(t *testing.T) {
	m := NewMesh(3, 3)
	g := m.Graph()
	for u := 0; u < g.NumNodes(); u++ {
		cu := m.Coord(u)
		for _, v := range g.Neighbors(u) {
			cv := m.Coord(v)
			diff := 0
			for d := range cu {
				if cu[d] != cv[d] {
					diff++
					if cu[d]-cv[d] != 1 && cv[d]-cu[d] != 1 {
						t.Fatalf("edge %v-%v is not a unit step", cu, cv)
					}
				}
			}
			if diff != 1 {
				t.Fatalf("edge %v-%v changes %d coordinates", cu, cv, diff)
			}
		}
	}
}

func TestTorus(t *testing.T) {
	tor := NewTorus(2, 5)
	g := tor.Graph()
	if g.NumNodes() != 25 {
		t.Fatalf("torus(2,5) nodes = %d", g.NumNodes())
	}
	if want := 2 * 25; g.NumEdges() != want { // d * n edges
		t.Fatalf("torus(2,5) edges = %d, want %d", g.NumEdges(), want)
	}
	for u := 0; u < 25; u++ {
		if g.Degree(u) != 4 {
			t.Fatalf("torus degree at %d = %d", u, g.Degree(u))
		}
	}
	if g.Diameter() != 4 { // 2 * floor(5/2)
		t.Errorf("torus(2,5) diameter = %d, want 4", g.Diameter())
	}
	checkVertexTransitive(t, tor)
	if tor.Dims() != 2 || tor.Side() != 5 {
		t.Error("accessors")
	}
}

func TestTorusWrapEdges(t *testing.T) {
	tor := NewTorus(1, 6)
	g := tor.Graph()
	if !g.HasEdge(tor.NodeAt([]int{5}), tor.NodeAt([]int{0})) {
		t.Error("wrap-around edge missing")
	}
}

func TestTorusCoordRoundTrip(t *testing.T) {
	tor := NewTorus(2, 7)
	for u := 0; u < tor.Graph().NumNodes(); u++ {
		if tor.NodeAt(tor.Coord(u)) != u {
			t.Fatalf("coord round trip failed at %d", u)
		}
	}
}

func TestMeshTorusPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"mesh dims 0":     func() { NewMesh(0, 4) },
		"mesh side 1":     func() { NewMesh(2, 1) },
		"torus side 2":    func() { NewTorus(2, 2) },
		"nodeAt range":    func() { NewMesh(2, 3).NodeAt([]int{0, 5}) },
		"nodeAt dims":     func() { NewMesh(2, 3).NodeAt([]int{0}) },
		"nodeAt negative": func() { NewMesh(2, 3).NodeAt([]int{-1, 0}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestHypercube(t *testing.T) {
	h := NewHypercube(4)
	g := h.Graph()
	if g.NumNodes() != 16 || g.NumEdges() != 32 {
		t.Fatalf("Q4: %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	for u := 0; u < 16; u++ {
		if g.Degree(u) != 4 {
			t.Fatalf("Q4 degree at %d = %d", u, g.Degree(u))
		}
	}
	if g.Diameter() != 4 {
		t.Errorf("Q4 diameter = %d", g.Diameter())
	}
	checkVertexTransitive(t, h)
	if h.Dim() != 4 {
		t.Error("Dim accessor")
	}
}

func TestHypercubeDistanceIsHamming(t *testing.T) {
	h := NewHypercube(5)
	g := h.Graph()
	dist := g.BFS(0)
	for u := 0; u < g.NumNodes(); u++ {
		pop := 0
		for x := u; x != 0; x &= x - 1 {
			pop++
		}
		if dist[u] != pop {
			t.Fatalf("dist(0,%b) = %d, want popcount %d", u, dist[u], pop)
		}
	}
}

func TestTorusAutomorphismComposition(t *testing.T) {
	tor := NewTorus(2, 4)
	// phi_u followed by phi_v equals phi_{u+v} in the translation group.
	u := tor.NodeAt([]int{1, 2})
	v := tor.NodeAt([]int{3, 1})
	w := tor.NodeAt([]int{(1 + 3) % 4, (2 + 1) % 4})
	pu, pv, pw := tor.AutomorphismTo(u), tor.AutomorphismTo(v), tor.AutomorphismTo(w)
	for x := 0; x < tor.Graph().NumNodes(); x++ {
		if pv(pu(x)) != pw(x) {
			t.Fatalf("translation composition failed at node %d", x)
		}
	}
}

func TestMeshSideTwoAllowed(t *testing.T) {
	m := NewMesh(3, 2) // the 3-cube as a mesh
	if m.Graph().NumNodes() != 8 || m.Graph().NumEdges() != 12 {
		t.Errorf("mesh(3,2): %d nodes %d edges", m.Graph().NumNodes(), m.Graph().NumEdges())
	}
}

func TestMeshLabels(t *testing.T) {
	m := NewMesh(2, 3)
	if m.Graph().NodeLabel(4) != "[1 1]" {
		t.Errorf("label = %q", m.Graph().NodeLabel(4))
	}
}

var _ = rng.New // keep import if unused in future edits
