package topology

import (
	"fmt"

	"repro/internal/graph"
)

// StarGraph is the Akers-Krishnamurthy star graph S_k: vertices are the
// permutations of k symbols, and p is adjacent to p composed with the
// transposition of positions 1 and i for every i in 2..k. S_k is
// (k-1)-regular, vertex-transitive, and has diameter floor(3(k-1)/2) —
// another classic bounded-degree node-symmetric network for Theorem 1.5
// (not to be confused with the K_{1,n-1} Star hub topology).
type StarGraph struct {
	base
	k     int
	perms [][]int // perms[id] = permutation of [0,k)
	index map[string]int
}

// NewStarGraph builds S_k on k! vertices. It panics unless 3 <= k <= 7
// (k = 7 is already 5040 routers).
func NewStarGraph(k int) *StarGraph {
	if k < 3 || k > 7 {
		panic("topology: star graph needs 3 <= k <= 7")
	}
	s := &StarGraph{k: k, index: make(map[string]int)}
	s.perms = allPerms(k)
	for id, p := range s.perms {
		s.index[permKey(p)] = id
	}
	g := graph.New(len(s.perms))
	for id, p := range s.perms {
		for i := 1; i < k; i++ {
			q := append([]int(nil), p...)
			q[0], q[i] = q[i], q[0]
			g.AddEdge(id, s.index[permKey(q)])
		}
	}
	g.SetLabeler(func(u graph.NodeID) string { return fmt.Sprint(s.perms[u]) })
	s.base = base{g: g, name: fmt.Sprintf("star-graph(%d)", k)}
	return s
}

func allPerms(k int) [][]int {
	var out [][]int
	p := make([]int, k)
	for i := range p {
		p[i] = i
	}
	var rec func(i int)
	rec = func(i int) {
		if i == k {
			out = append(out, append([]int(nil), p...))
			return
		}
		for j := i; j < k; j++ {
			p[i], p[j] = p[j], p[i]
			rec(i + 1)
			p[i], p[j] = p[j], p[i]
		}
	}
	rec(0)
	return out
}

func permKey(p []int) string {
	b := make([]byte, len(p))
	for i, v := range p {
		b[i] = byte(v)
	}
	return string(b)
}

// K returns the symbol count k.
func (s *StarGraph) K() int { return s.k }

// Perm returns the permutation labelling node u. The caller must not
// modify it.
func (s *StarGraph) Perm(u graph.NodeID) []int { return s.perms[u] }

// NodeOf returns the node labelled by the given permutation.
func (s *StarGraph) NodeOf(p []int) graph.NodeID {
	id, ok := s.index[permKey(p)]
	if !ok {
		panic(fmt.Sprintf("topology: %v is not a permutation of [0,%d)", p, s.k))
	}
	return id
}

// AutomorphismTo implements VertexTransitive: left multiplication by a
// fixed permutation maps edges to edges, because the star generators act
// on positions (on the right): q(p tau_i) = (qp) tau_i. Choosing q as the
// target's permutation maps the identity (node of [0..k-1]) to u.
func (s *StarGraph) AutomorphismTo(u graph.NodeID) func(graph.NodeID) graph.NodeID {
	q := s.perms[u]
	// phi(p) = q o p, i.e. (q o p)[i] = q[p[i]].
	return func(x graph.NodeID) graph.NodeID {
		p := s.perms[x]
		qp := make([]int, s.k)
		for i := range qp {
			qp[i] = q[p[i]]
		}
		return s.index[permKey(qp)]
	}
}
