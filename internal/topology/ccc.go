package topology

import (
	"fmt"

	"repro/internal/graph"
)

// CCC is the cube-connected-cycles network of dimension k: each hypercube
// node w in [0, 2^k) is replaced by a cycle of k routers (w, 0)..(w, k-1);
// router (w, i) has cycle edges to (w, i±1 mod k) and a cube edge to
// (w XOR 2^i, i). CCC(k) is 3-regular and vertex-transitive — a classic
// bounded-degree node-symmetric network for Theorem 1.5.
type CCC struct {
	base
	dim int
}

// NewCCC builds the cube-connected cycles of dimension k (k * 2^k
// routers). It panics if k < 3 (smaller instances degenerate into
// multi-edges).
func NewCCC(k int) *CCC {
	if k < 3 {
		panic("topology: CCC needs dimension >= 3")
	}
	if k > 20 {
		panic("topology: CCC too large")
	}
	rows := 1 << k
	c := &CCC{dim: k}
	g := graph.New(k * rows)
	for w := 0; w < rows; w++ {
		for i := 0; i < k; i++ {
			u := c.nodeAt(w, i)
			g.AddEdge(u, c.nodeAt(w, (i+1)%k))  // cycle edge
			g.AddEdge(u, c.nodeAt(w^(1<<i), i)) // cube edge
		}
	}
	g.SetLabeler(func(u graph.NodeID) string {
		return fmt.Sprintf("(%0*b,%d)", k, c.CubeOf(u), c.PosOf(u))
	})
	c.base = base{g: g, name: fmt.Sprintf("ccc(%d)", k)}
	return c
}

// Dim returns the cube dimension k.
func (c *CCC) Dim() int { return c.dim }

// Node returns the router at cube address w, cycle position i.
func (c *CCC) Node(w, i int) graph.NodeID {
	if w < 0 || w >= 1<<c.dim || i < 0 || i >= c.dim {
		panic(fmt.Sprintf("topology: CCC node (%d,%d) out of range", w, i))
	}
	return c.nodeAt(w, i)
}

func (c *CCC) nodeAt(w, i int) graph.NodeID { return w*c.dim + i }

// CubeOf returns the cube address of router u.
func (c *CCC) CubeOf(u graph.NodeID) int { return u / c.dim }

// PosOf returns the cycle position of router u.
func (c *CCC) PosOf(u graph.NodeID) int { return u % c.dim }

// AutomorphismTo implements VertexTransitive: the automorphism group of
// CCC(k) contains the maps phi(w, i) = (rotl(w, s) XOR w0, i + s mod k)
// (rotating the cube coordinates together with the cycle positions, then
// translating the cube address). Choosing s = i0 and w0 = r0 maps (0, 0)
// to the target (r0, i0).
func (c *CCC) AutomorphismTo(u graph.NodeID) func(graph.NodeID) graph.NodeID {
	w0, i0 := c.CubeOf(u), c.PosOf(u)
	k := c.dim
	return func(x graph.NodeID) graph.NodeID {
		w, i := c.CubeOf(x), c.PosOf(x)
		return c.nodeAt(rotlBits(w, i0, k)^w0, (i+i0)%k)
	}
}
