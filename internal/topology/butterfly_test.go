package topology

import (
	"testing"
	"testing/quick"
)

func TestButterflyStructure(t *testing.T) {
	b := NewButterfly(3)
	g := b.Graph()
	if g.NumNodes() != 4*8 {
		t.Fatalf("butterfly(3) nodes = %d, want 32", g.NumNodes())
	}
	// Each of the k levels contributes 2 edges per row.
	if want := 3 * 8 * 2; g.NumEdges() != want {
		t.Fatalf("butterfly(3) edges = %d, want %d", g.NumEdges(), want)
	}
	if b.Levels() != 4 || b.Rows() != 8 || b.Dim() != 3 || b.Wrapped() {
		t.Error("accessors wrong")
	}
	// Straight and cross edges at level 0.
	if !g.HasEdge(b.Node(0, 5), b.Node(1, 5)) {
		t.Error("straight edge missing")
	}
	if !g.HasEdge(b.Node(0, 5), b.Node(1, 4)) { // flips bit 0
		t.Error("cross edge missing")
	}
	if g.HasEdge(b.Node(0, 5), b.Node(1, 7)) { // would flip bit 1
		t.Error("wrong cross edge present")
	}
}

func TestButterflyLevelRowRoundTrip(t *testing.T) {
	b := NewButterfly(4)
	for l := 0; l < b.Levels(); l++ {
		for r := 0; r < b.Rows(); r++ {
			u := b.Node(l, r)
			if b.LevelOf(u) != l || b.RowOf(u) != r {
				t.Fatalf("round trip failed at (%d,%d)", l, r)
			}
		}
	}
}

func TestButterflyInputsOutputs(t *testing.T) {
	b := NewButterfly(3)
	ins, outs := b.Inputs(), b.Outputs()
	if len(ins) != 8 || len(outs) != 8 {
		t.Fatal("inputs/outputs size")
	}
	for r, u := range ins {
		if b.LevelOf(u) != 0 || b.RowOf(u) != r {
			t.Fatalf("input %d wrong: %d", r, u)
		}
	}
	for r, u := range outs {
		if b.LevelOf(u) != 3 || b.RowOf(u) != r {
			t.Fatalf("output %d wrong: %d", r, u)
		}
	}
}

func TestButterflyUniquePath(t *testing.T) {
	b := NewButterfly(4)
	g := b.Graph()
	check := func(src, dst uint8) bool {
		s, d := int(src)%16, int(dst)%16
		p := b.UniquePath(s, d)
		if p.Len() != 4 {
			return false
		}
		if p.Validate(g) != nil {
			return false
		}
		if b.LevelOf(p.Source()) != 0 || b.RowOf(p.Source()) != s {
			return false
		}
		return b.LevelOf(p.Dest()) == 4 && b.RowOf(p.Dest()) == d
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestButterflyUniquePathMonotoneLevels(t *testing.T) {
	b := NewButterfly(5)
	p := b.UniquePath(3, 28)
	for i, u := range p {
		if b.LevelOf(u) != i {
			t.Fatalf("path node %d at level %d, want %d", i, b.LevelOf(u), i)
		}
	}
}

func TestButterflyConnected(t *testing.T) {
	if !NewButterfly(3).Graph().Connected() {
		t.Error("plain butterfly not connected")
	}
	if !NewWrappedButterfly(3).Graph().Connected() {
		t.Error("wrapped butterfly not connected")
	}
}

func TestWrappedButterfly(t *testing.T) {
	b := NewWrappedButterfly(3)
	g := b.Graph()
	if g.NumNodes() != 3*8 {
		t.Fatalf("wrapped butterfly(3) nodes = %d, want 24", g.NumNodes())
	}
	if b.Levels() != 3 || !b.Wrapped() {
		t.Error("accessors")
	}
	// Wrap edges: level 2 connects to level 0.
	if !g.HasEdge(b.Node(2, 1), b.Node(0, 1)) {
		t.Error("straight wrap edge missing")
	}
	if !g.HasEdge(b.Node(2, 1), b.Node(0, 5)) { // flips bit 2
		t.Error("cross wrap edge missing")
	}
	// 4-regular everywhere.
	for u := 0; u < g.NumNodes(); u++ {
		if g.Degree(u) != 4 {
			t.Fatalf("wrapped butterfly degree at %d = %d", u, g.Degree(u))
		}
	}
	checkVertexTransitive(t, b)
}

func TestWrappedButterflyAutomorphismAllTargets(t *testing.T) {
	b := NewWrappedButterfly(3)
	g := b.Graph()
	for u := 0; u < g.NumNodes(); u++ {
		phi := b.AutomorphismTo(u)
		if phi(0) != u {
			t.Fatalf("phi(0) = %d, want %d", phi(0), u)
		}
	}
	// Full automorphism check on a couple of targets beyond the generic
	// ones in checkVertexTransitive.
	checkAutomorphism(t, g, b.AutomorphismTo(b.Node(2, 5)))
	checkAutomorphism(t, g, b.AutomorphismTo(b.Node(1, 7)))
}

func TestButterflyPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"dim 0":            func() { NewButterfly(0) },
		"wrapped dim 2":    func() { NewWrappedButterfly(2) },
		"node range":       func() { NewButterfly(2).Node(5, 0) },
		"outputs wrapped":  func() { NewWrappedButterfly(3).Outputs() },
		"unique wrapped":   func() { NewWrappedButterfly(3).UniquePath(0, 1) },
		"unique row range": func() { NewButterfly(2).UniquePath(0, 9) },
		"aut plain":        func() { NewButterfly(2).AutomorphismTo(1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestRotlBits(t *testing.T) {
	cases := []struct{ r, s, k, want int }{
		{0b001, 1, 3, 0b010},
		{0b100, 1, 3, 0b001},
		{0b101, 0, 3, 0b101},
		{0b101, 3, 3, 0b101},
		{0b1100, 2, 4, 0b0011},
	}
	for _, c := range cases {
		if got := rotlBits(c.r, c.s, c.k); got != c.want {
			t.Errorf("rotlBits(%b,%d,%d) = %b, want %b", c.r, c.s, c.k, got, c.want)
		}
	}
}
