package topology

import (
	"runtime"
	"testing"

	"repro/internal/graph"
)

// The builder-backed constructors must produce graphs indistinguishable —
// link IDs, adjacency order, everything — from replaying the same edge
// sequence through the incremental graph.New/AddEdge path that built them
// before the CSR conversion.
func TestCSRConstructorsMatchIncremental(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"mesh(2,7)", NewMesh(2, 7).Graph()},
		{"mesh(3,4)", NewMesh(3, 4).Graph()},
		{"torus(2,8)", NewTorus(2, 8).Graph()},
		{"torus(3,3)", NewTorus(3, 3).Graph()},
		{"hypercube(5)", NewHypercube(5).Graph()},
		{"butterfly(3)", NewButterfly(3).Graph()},
		{"wrapped-butterfly(4)", NewWrappedButterfly(4).Graph()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want := graph.New(tc.g.NumNodes())
			for id := 0; id < tc.g.NumLinks(); id += 2 {
				l := tc.g.Link(id)
				want.AddEdge(l.From, l.To)
			}
			if tc.g.NumLinks() != want.NumLinks() {
				t.Fatalf("link count %d != incremental %d (duplicate edge fed to builder?)",
					tc.g.NumLinks(), want.NumLinks())
			}
			for u := 0; u < want.NumNodes(); u++ {
				gOut, wOut := tc.g.Out(u), want.Out(u)
				if len(gOut) != len(wOut) {
					t.Fatalf("node %d out degree %d want %d", u, len(gOut), len(wOut))
				}
				for i := range wOut {
					if gOut[i] != wOut[i] {
						t.Fatalf("node %d out[%d] = %d want %d", u, i, gOut[i], wOut[i])
					}
				}
				gIn, wIn := tc.g.In(u), want.In(u)
				for i := range wIn {
					if gIn[i] != wIn[i] {
						t.Fatalf("node %d in[%d] = %d want %d", u, i, gIn[i], wIn[i])
					}
				}
				for _, id := range wOut {
					v := want.Link(id).To
					if got, ok := tc.g.LinkBetween(u, v); !ok || got != id {
						t.Fatalf("LinkBetween(%d,%d) = %d,%v want %d", u, v, got, ok, id)
					}
				}
			}
		})
	}
}

func TestCSRGeometryRecorded(t *testing.T) {
	if geo := NewTorus(2, 5).Graph().Geometry(); geo.Kind != "torus" ||
		len(geo.Dims) != 2 || geo.Dims[0] != 5 || geo.Dims[1] != 5 {
		t.Fatalf("torus geometry: %+v", geo)
	}
	if geo := NewMesh(3, 4).Graph().Geometry(); geo.Kind != "mesh" || len(geo.Dims) != 3 {
		t.Fatalf("mesh geometry: %+v", geo)
	}
	if geo := NewHypercube(6).Graph().Geometry(); geo.Kind != "mesh" ||
		len(geo.Dims) != 6 || geo.Dims[0] != 2 {
		t.Fatalf("hypercube geometry: %+v", geo)
	}
	geo := NewWrappedButterfly(4).Graph().Geometry()
	if geo.Kind != "butterfly" || geo.Levels != 4 || geo.Rows != 16 || !geo.Wrapped {
		t.Fatalf("wrapped butterfly geometry: %+v", geo)
	}
	if geo := NewButterfly(3).Graph().Geometry(); geo.Levels != 4 || geo.Wrapped {
		t.Fatalf("butterfly geometry: %+v", geo)
	}
}

// Building a million-node torus must stay within a flat-CSR-sized memory
// budget and a constant-ish allocation count. Before the builder
// conversion this build cost >600 MB (pair-index map, three growing
// slices per node) and millions of allocations; the CSR layout needs
// ~240 MB and a few dozen allocations.
func TestTorusMillionNodeMemoryBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation inflates heap and alloc counts")
	}
	if testing.Short() {
		t.Skip("1024x1024 torus build in -short mode")
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	tor := NewTorus(2, 1024)
	runtime.GC()
	runtime.ReadMemStats(&after)
	g := tor.Graph()
	if g.NumNodes() != 1024*1024 || g.NumLinks() != 4*1024*1024 {
		t.Fatalf("unexpected size: %d nodes %d links", g.NumNodes(), g.NumLinks())
	}
	const heapBudget = 340 << 20 // bytes; legacy layout needed roughly 2x
	if grew := after.HeapAlloc - before.HeapAlloc; grew > heapBudget {
		t.Errorf("heap grew %d MiB, budget %d MiB", grew>>20, heapBudget>>20)
	}
	// Allocation count: the flat layout allocates O(1) blocks. A per-node
	// scheme costs millions; anything under a few thousand proves flatness
	// while leaving room for runtime bookkeeping.
	if allocs := after.Mallocs - before.Mallocs; allocs > 2000 {
		t.Errorf("build made %d allocations, budget 2000", allocs)
	}
	runtime.KeepAlive(tor)
}
