package topology

import (
	"testing"
)

func TestStarGraphStructure(t *testing.T) {
	s := NewStarGraph(4)
	g := s.Graph()
	if g.NumNodes() != 24 { // 4!
		t.Fatalf("S4 nodes = %d, want 24", g.NumNodes())
	}
	// (k-1)-regular.
	for u := 0; u < g.NumNodes(); u++ {
		if g.Degree(u) != 3 {
			t.Fatalf("S4 degree at %d = %d, want 3", u, g.Degree(u))
		}
	}
	if !g.Connected() {
		t.Fatal("star graph not connected")
	}
	// Diameter of S_k is floor(3(k-1)/2): S4 -> 4.
	if d := g.Diameter(); d != 4 {
		t.Errorf("S4 diameter = %d, want 4", d)
	}
	if s.K() != 4 {
		t.Error("K accessor")
	}
}

func TestStarGraphEdges(t *testing.T) {
	s := NewStarGraph(4)
	g := s.Graph()
	id := s.NodeOf([]int{0, 1, 2, 3})
	// Neighbors: swap position 0 with positions 1..3.
	for _, want := range [][]int{{1, 0, 2, 3}, {2, 1, 0, 3}, {3, 1, 2, 0}} {
		if !g.HasEdge(id, s.NodeOf(want)) {
			t.Errorf("edge to %v missing", want)
		}
	}
	// Not adjacent: a swap not involving position 0.
	if g.HasEdge(id, s.NodeOf([]int{0, 2, 1, 3})) {
		t.Error("non-generator edge present")
	}
}

func TestStarGraphVertexTransitive(t *testing.T) {
	s := NewStarGraph(4)
	checkVertexTransitive(t, s)
}

func TestStarGraphPermRoundTrip(t *testing.T) {
	s := NewStarGraph(5)
	for u := 0; u < s.Graph().NumNodes(); u += 7 {
		if s.NodeOf(s.Perm(u)) != u {
			t.Fatalf("perm round trip failed at %d", u)
		}
	}
}

func TestStarGraphPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"k too small": func() { NewStarGraph(2) },
		"k too big":   func() { NewStarGraph(8) },
		"bad perm":    func() { NewStarGraph(3).NodeOf([]int{0, 0, 1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}
