package topology

import (
	"fmt"

	"repro/internal/graph"
)

// Butterfly is the k-dimensional butterfly network. Nodes are (level, row)
// pairs with row in [0, 2^k). In the plain butterfly there are k+1 levels
// (0..k); level l and l+1 are joined by a straight edge (same row) and a
// cross edge (rows differing exactly in bit l). In the wrap-around
// butterfly level k is identified with level 0, leaving k levels; the
// wrap-around butterfly is vertex-transitive (a standard node-symmetric
// network, cf. the paper's Section 1.4).
//
// Theorem 1.7 routes random q-functions from the inputs (level 0) to the
// outputs (level k) of the plain butterfly along its unique leveled paths.
type Butterfly struct {
	base
	dim     int
	wrapped bool
	rows    int
}

// NewButterfly builds the plain k-dimensional butterfly ((k+1)*2^k nodes).
// It panics if k < 1 or the network would be unreasonably large.
func NewButterfly(k int) *Butterfly { return newButterfly(k, false) }

// NewWrappedButterfly builds the wrap-around k-dimensional butterfly
// (k*2^k nodes). It panics if k < 3 (smaller wrapped butterflies collapse
// to multi-edges).
func NewWrappedButterfly(k int) *Butterfly {
	if k < 3 {
		panic("topology: wrapped butterfly needs dimension >= 3")
	}
	return newButterfly(k, true)
}

func newButterfly(k int, wrapped bool) *Butterfly {
	if k < 1 {
		panic("topology: butterfly needs dimension >= 1")
	}
	if k > 20 {
		panic("topology: butterfly too large")
	}
	rows := 1 << k
	levels := k + 1
	if wrapped {
		levels = k
	}
	b := &Butterfly{dim: k, wrapped: wrapped, rows: rows}
	// Every edge joins level l to the next level and is emitted only from
	// the lower level, so each undirected edge appears exactly once:
	// builder-eligible (straight and cross edges never coincide, r^1<<l != r).
	bld := graph.NewBuilder(levels * rows)
	bld.Grow(2 * k * rows)
	for l := 0; l < k; l++ {
		nextLevel := l + 1
		if wrapped && nextLevel == k {
			nextLevel = 0
		}
		for r := 0; r < rows; r++ {
			u := b.nodeAt(l, r)
			bld.AddEdge(u, nextLevel*rows+r)        // straight
			bld.AddEdge(u, nextLevel*rows+(r^1<<l)) // cross: flips bit l
		}
	}
	g := bld.Finalize()
	g.SetGeometry(graph.Geometry{Kind: "butterfly", Levels: levels, Rows: rows, Wrapped: wrapped})
	name := fmt.Sprintf("butterfly(%d)", k)
	if wrapped {
		name = fmt.Sprintf("wrapped-butterfly(%d)", k)
	}
	g.SetLabeler(func(u graph.NodeID) string {
		return fmt.Sprintf("(%d,%0*b)", b.LevelOf(u), k, b.RowOf(u))
	})
	b.base = base{g: g, name: name}
	return b
}

// Dim returns the butterfly dimension k.
func (b *Butterfly) Dim() int { return b.dim }

// Wrapped reports whether level k is identified with level 0.
func (b *Butterfly) Wrapped() bool { return b.wrapped }

// Levels returns the number of distinct levels (k+1 plain, k wrapped).
func (b *Butterfly) Levels() int {
	if b.wrapped {
		return b.dim
	}
	return b.dim + 1
}

// Rows returns the number of rows, 2^k.
func (b *Butterfly) Rows() int { return b.rows }

// Node returns the node at (level, row). It panics on out-of-range input.
func (b *Butterfly) Node(level, row int) graph.NodeID {
	if level < 0 || level >= b.Levels() || row < 0 || row >= b.rows {
		panic(fmt.Sprintf("topology: butterfly node (%d,%d) out of range", level, row))
	}
	return b.nodeAt(level, row)
}

func (b *Butterfly) nodeAt(level, row int) graph.NodeID { return level*b.rows + row }

// LevelOf returns the level of node u.
func (b *Butterfly) LevelOf(u graph.NodeID) int { return u / b.rows }

// RowOf returns the row of node u.
func (b *Butterfly) RowOf(u graph.NodeID) int { return u % b.rows }

// Inputs returns the level-0 nodes in row order.
func (b *Butterfly) Inputs() []graph.NodeID {
	ins := make([]graph.NodeID, b.rows)
	for r := range ins {
		ins[r] = b.nodeAt(0, r)
	}
	return ins
}

// Outputs returns the level-k nodes in row order for the plain butterfly.
// It panics on a wrapped butterfly, which has no distinguished outputs.
func (b *Butterfly) Outputs() []graph.NodeID {
	if b.wrapped {
		panic("topology: wrapped butterfly has no output level")
	}
	outs := make([]graph.NodeID, b.rows)
	for r := range outs {
		outs[r] = b.nodeAt(b.dim, r)
	}
	return outs
}

// UniquePath returns the unique input-to-output path from input row
// srcRow to output row dstRow in the plain butterfly: at level l the path
// takes the cross edge exactly when bit l of srcRow and dstRow differ.
// The resulting collection over all (src,dst) pairs is leveled. It panics
// on a wrapped butterfly.
func (b *Butterfly) UniquePath(srcRow, dstRow int) graph.Path {
	if b.wrapped {
		panic("topology: UniquePath requires the plain butterfly")
	}
	if srcRow < 0 || srcRow >= b.rows || dstRow < 0 || dstRow >= b.rows {
		panic("topology: butterfly row out of range")
	}
	p := make(graph.Path, 0, b.dim+1)
	row := srcRow
	p = append(p, b.nodeAt(0, row))
	for l := 0; l < b.dim; l++ {
		if (row^dstRow)&(1<<l) != 0 {
			row ^= 1 << l
		}
		p = append(p, b.nodeAt(l+1, row))
	}
	return p
}

// rotlBits rotates the low k bits of r left by s positions.
func rotlBits(r, s, k int) int {
	s %= k
	mask := 1<<k - 1
	return ((r << s) | (r >> (k - s))) & mask
}

// AutomorphismTo implements VertexTransitive for the wrap-around
// butterfly: the automorphism group is generated by level rotation
// combined with a bit rotation of the row, and XOR translation of rows.
// It panics on a plain butterfly, which is not vertex-transitive.
func (b *Butterfly) AutomorphismTo(u graph.NodeID) func(graph.NodeID) graph.NodeID {
	if !b.wrapped {
		panic("topology: plain butterfly is not vertex-transitive")
	}
	l0, r0 := b.LevelOf(u), b.RowOf(u)
	k := b.dim
	return func(x graph.NodeID) graph.NodeID {
		l, r := b.LevelOf(x), b.RowOf(x)
		return b.nodeAt((l+l0)%k, rotlBits(r, l0, k)^r0)
	}
}
