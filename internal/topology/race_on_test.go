//go:build race

package topology

// raceEnabled reports whether the race detector instruments this build.
const raceEnabled = true
