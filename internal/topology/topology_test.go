package topology

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

// checkAutomorphism verifies that phi is a graph automorphism of g: a
// bijection on nodes mapping edges to edges.
func checkAutomorphism(t *testing.T, g *graph.Graph, phi func(graph.NodeID) graph.NodeID) {
	t.Helper()
	n := g.NumNodes()
	seen := make([]bool, n)
	for u := 0; u < n; u++ {
		v := phi(u)
		if v < 0 || v >= n || seen[v] {
			t.Fatalf("phi is not a bijection: phi(%d) = %d", u, v)
		}
		seen[v] = true
	}
	for u := 0; u < n; u++ {
		for _, w := range g.Neighbors(u) {
			if !g.HasEdge(phi(u), phi(w)) {
				t.Fatalf("phi does not preserve edge {%d,%d}: image {%d,%d} missing",
					u, w, phi(u), phi(w))
			}
		}
	}
}

// checkVertexTransitive verifies AutomorphismTo for a sample of targets.
func checkVertexTransitive(t *testing.T, vt VertexTransitive) {
	t.Helper()
	g := vt.Graph()
	n := g.NumNodes()
	targets := []int{0, 1, n / 2, n - 1}
	for _, u := range targets {
		phi := vt.AutomorphismTo(u)
		if phi(0) != u {
			t.Fatalf("%s: AutomorphismTo(%d) maps 0 to %d", vt.Name(), u, phi(0))
		}
		checkAutomorphism(t, g, phi)
	}
}

func TestChain(t *testing.T) {
	c := NewChain(5)
	g := c.Graph()
	if g.NumNodes() != 5 || g.NumEdges() != 4 {
		t.Fatalf("chain(5): %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	if g.Diameter() != 4 {
		t.Errorf("chain(5) diameter = %d", g.Diameter())
	}
	if c.Name() != "chain(5)" {
		t.Errorf("name = %q", c.Name())
	}
}

func TestRing(t *testing.T) {
	r := NewRing(8)
	g := r.Graph()
	if g.NumNodes() != 8 || g.NumEdges() != 8 {
		t.Fatalf("ring(8): %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	if g.Diameter() != 4 {
		t.Errorf("ring(8) diameter = %d", g.Diameter())
	}
	for u := 0; u < 8; u++ {
		if g.Degree(u) != 2 {
			t.Errorf("ring degree at %d = %d", u, g.Degree(u))
		}
	}
	checkVertexTransitive(t, r)
}

func TestComplete(t *testing.T) {
	c := NewComplete(6)
	g := c.Graph()
	if g.NumEdges() != 15 {
		t.Fatalf("K6 edges = %d", g.NumEdges())
	}
	if g.Diameter() != 1 {
		t.Errorf("K6 diameter = %d", g.Diameter())
	}
	checkVertexTransitive(t, c)
}

func TestStar(t *testing.T) {
	s := NewStar(7)
	g := s.Graph()
	if g.Degree(0) != 6 {
		t.Errorf("star center degree = %d", g.Degree(0))
	}
	for u := 1; u < 7; u++ {
		if g.Degree(u) != 1 {
			t.Errorf("star leaf degree = %d", g.Degree(u))
		}
	}
	if g.Diameter() != 2 {
		t.Errorf("star diameter = %d", g.Diameter())
	}
}

func TestCirculant(t *testing.T) {
	c := NewCirculant(12, []int{1, 3})
	g := c.Graph()
	if g.NumNodes() != 12 {
		t.Fatal("node count")
	}
	for u := 0; u < 12; u++ {
		if g.Degree(u) != 4 {
			t.Errorf("circulant degree at %d = %d", u, g.Degree(u))
		}
	}
	checkVertexTransitive(t, c)
	if !g.HasEdge(0, 3) || !g.HasEdge(0, 11) {
		t.Error("offset edges missing")
	}
}

func TestCirculantPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"too small":      func() { NewCirculant(2, []int{1}) },
		"no offsets":     func() { NewCirculant(5, nil) },
		"offset too big": func() { NewCirculant(10, []int{6}) },
		"offset zero":    func() { NewCirculant(10, []int{0}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestDeBruijn(t *testing.T) {
	d := NewDeBruijn(4)
	g := d.Graph()
	if g.NumNodes() != 16 {
		t.Fatalf("debruijn(4) nodes = %d", g.NumNodes())
	}
	if !g.Connected() {
		t.Error("de Bruijn not connected")
	}
	// Node u adjacent to 2u and 2u+1 mod n.
	if !g.HasEdge(3, 6) || !g.HasEdge(3, 7) {
		t.Error("de Bruijn shift edges missing")
	}
	if g.MaxDegree() > 4 {
		t.Errorf("de Bruijn max degree = %d, want <= 4", g.MaxDegree())
	}
}

func TestShuffleExchange(t *testing.T) {
	s := NewShuffleExchange(4)
	g := s.Graph()
	if g.NumNodes() != 16 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	if !g.Connected() {
		t.Error("shuffle-exchange not connected")
	}
	if !g.HasEdge(5, 4) { // exchange edge: 0101 - 0100
		t.Error("exchange edge missing")
	}
	if !g.HasEdge(5, 10) { // shuffle edge: 0101 -> 1010
		t.Error("shuffle edge missing")
	}
}

func TestRandomRegular(t *testing.T) {
	src := rng.New(42)
	r := NewRandomRegular(20, 4, src)
	g := r.Graph()
	if g.NumNodes() != 20 {
		t.Fatal("node count")
	}
	for u := 0; u < 20; u++ {
		if g.Degree(u) != 4 {
			t.Fatalf("degree at %d = %d, want 4", u, g.Degree(u))
		}
	}
	if !g.Connected() {
		t.Error("random regular graph not connected")
	}
}

func TestRandomRegularPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"odd product": func() { NewRandomRegular(5, 3, rng.New(1)) },
		"d too small": func() { NewRandomRegular(5, 1, rng.New(1)) },
		"d too big":   func() { NewRandomRegular(4, 4, rng.New(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestRandomRegularDeterministic(t *testing.T) {
	a := NewRandomRegular(16, 3, rng.New(7)).Graph()
	b := NewRandomRegular(16, 3, rng.New(7)).Graph()
	for u := 0; u < 16; u++ {
		na, nb := a.Neighbors(u), b.Neighbors(u)
		if len(na) != len(nb) {
			t.Fatal("same seed produced different graphs")
		}
		for i := range na {
			if na[i] != nb[i] {
				t.Fatal("same seed produced different graphs")
			}
		}
	}
}
