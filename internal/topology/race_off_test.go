//go:build !race

package topology

// raceEnabled reports whether the race detector instruments this build;
// memory-budget tests skip under it (instrumentation multiplies both the
// heap footprint and the allocation count).
const raceEnabled = false
