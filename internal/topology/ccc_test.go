package topology

import (
	"testing"
)

func TestCCCStructure(t *testing.T) {
	c := NewCCC(3)
	g := c.Graph()
	if g.NumNodes() != 3*8 {
		t.Fatalf("ccc(3) nodes = %d, want 24", g.NumNodes())
	}
	// 3-regular everywhere.
	for u := 0; u < g.NumNodes(); u++ {
		if g.Degree(u) != 3 {
			t.Fatalf("ccc degree at %d = %d, want 3", u, g.Degree(u))
		}
	}
	if !g.Connected() {
		t.Fatal("ccc not connected")
	}
	// Cycle and cube edges.
	if !g.HasEdge(c.Node(5, 0), c.Node(5, 1)) {
		t.Error("cycle edge missing")
	}
	if !g.HasEdge(c.Node(5, 1), c.Node(7, 1)) { // flips bit 1: 101 -> 111
		t.Error("cube edge missing")
	}
	if g.HasEdge(c.Node(5, 0), c.Node(7, 0)) { // bit 1 flip at position 0
		t.Error("wrong cube edge present")
	}
}

func TestCCCRoundTrip(t *testing.T) {
	c := NewCCC(4)
	for w := 0; w < 16; w++ {
		for i := 0; i < 4; i++ {
			u := c.Node(w, i)
			if c.CubeOf(u) != w || c.PosOf(u) != i {
				t.Fatalf("round trip failed at (%d,%d)", w, i)
			}
		}
	}
	if c.Dim() != 4 {
		t.Error("Dim accessor")
	}
}

func TestCCCVertexTransitive(t *testing.T) {
	c := NewCCC(3)
	checkVertexTransitive(t, c)
	// Also check a non-trivial target with both coordinates shifted.
	phi := c.AutomorphismTo(c.Node(5, 2))
	if phi(0) != c.Node(5, 2) {
		t.Fatal("phi(0) wrong")
	}
	checkAutomorphism(t, c.Graph(), phi)
}

func TestCCCPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"dim 2":      func() { NewCCC(2) },
		"node range": func() { NewCCC(3).Node(8, 0) },
		"pos range":  func() { NewCCC(3).Node(0, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestCCCLabels(t *testing.T) {
	c := NewCCC(3)
	if got := c.Graph().NodeLabel(c.Node(5, 1)); got != "(101,1)" {
		t.Errorf("label = %q", got)
	}
}
