// Package topology provides generators for the interconnection networks the
// paper applies its bounds to: d-dimensional meshes and tori, butterflies
// (plain and wrap-around), hypercubes, and further node-symmetric families
// (rings, circulants, de Bruijn, shuffle-exchange, complete graphs), plus
// chains, stars and random regular graphs for contrast.
//
// Every generator returns a concrete type that wraps a *graph.Graph and
// carries family-specific structure (coordinates, levels, rows). Families
// that are vertex-transitive additionally implement VertexTransitive,
// exposing the automorphism that maps node 0 to any chosen node; the
// translation-invariant path systems of Theorem 1.5 are built from these.
package topology

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/rng"
)

// Topology is a named network.
type Topology interface {
	// Graph returns the underlying undirected graph of routers.
	Graph() *graph.Graph
	// Name returns a short human-readable identifier such as "torus(2,8)".
	Name() string
}

// VertexTransitive is implemented by node-symmetric families
// (Definition 1.4 of the paper) for which we can produce, for every node u,
// an automorphism mapping node 0 to u. The paper's Theorem 1.5 path system
// translates one canonical shortest-path star through these automorphisms.
type VertexTransitive interface {
	Topology
	// AutomorphismTo returns a graph automorphism phi with phi(0) = u.
	AutomorphismTo(u graph.NodeID) func(graph.NodeID) graph.NodeID
}

// base supplies the Topology boilerplate for all concrete families.
type base struct {
	g    *graph.Graph
	name string
}

// Graph returns the underlying undirected router graph.
func (b *base) Graph() *graph.Graph { return b.g }

// Name returns the family identifier, e.g. "torus(2,8)".
func (b *base) Name() string { return b.name }

// Chain is the path graph on n nodes (not node-symmetric).
type Chain struct{ base }

// NewChain builds the chain 0-1-...-(n-1). It panics if n < 2.
func NewChain(n int) *Chain {
	if n < 2 {
		panic("topology: chain needs at least 2 nodes")
	}
	g := graph.New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return &Chain{base{g: g, name: fmt.Sprintf("chain(%d)", n)}}
}

// Ring is the cycle graph on n nodes; it is vertex-transitive under
// rotation.
type Ring struct {
	base
	n int
}

// NewRing builds the n-cycle. It panics if n < 3.
func NewRing(n int) *Ring {
	if n < 3 {
		panic("topology: ring needs at least 3 nodes")
	}
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n)
	}
	return &Ring{base: base{g: g, name: fmt.Sprintf("ring(%d)", n)}, n: n}
}

// AutomorphismTo implements VertexTransitive by rotation.
func (r *Ring) AutomorphismTo(u graph.NodeID) func(graph.NodeID) graph.NodeID {
	n := r.n
	return func(x graph.NodeID) graph.NodeID { return (x + u) % n }
}

// Complete is the complete graph K_n; vertex-transitive under any
// transposition-extending permutation (we use rotation of labels).
type Complete struct {
	base
	n int
}

// NewComplete builds K_n. It panics if n < 2.
func NewComplete(n int) *Complete {
	if n < 2 {
		panic("topology: complete graph needs at least 2 nodes")
	}
	g := graph.New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(i, j)
		}
	}
	return &Complete{base: base{g: g, name: fmt.Sprintf("complete(%d)", n)}, n: n}
}

// AutomorphismTo implements VertexTransitive: label rotation is an
// automorphism of K_n.
func (c *Complete) AutomorphismTo(u graph.NodeID) func(graph.NodeID) graph.NodeID {
	n := c.n
	return func(x graph.NodeID) graph.NodeID { return (x + u) % n }
}

// Star is the star graph K_{1,n-1} with center 0 (maximally asymmetric;
// used as a stress case for congestion).
type Star struct{ base }

// NewStar builds a star with n nodes, node 0 in the center. It panics if
// n < 2.
func NewStar(n int) *Star {
	if n < 2 {
		panic("topology: star needs at least 2 nodes")
	}
	g := graph.New(n)
	for i := 1; i < n; i++ {
		g.AddEdge(0, i)
	}
	return &Star{base{g: g, name: fmt.Sprintf("star(%d)", n)}}
}

// Circulant is the circulant graph C_n(offsets): node i is adjacent to
// i±o (mod n) for each offset o. Circulants are the canonical example of
// bounded-degree node-symmetric networks beyond tori.
type Circulant struct {
	base
	n       int
	offsets []int
}

// NewCirculant builds C_n(offsets). Offsets must be in [1, n/2]; it panics
// otherwise or if n < 3 or offsets is empty.
func NewCirculant(n int, offsets []int) *Circulant {
	if n < 3 {
		panic("topology: circulant needs at least 3 nodes")
	}
	if len(offsets) == 0 {
		panic("topology: circulant needs at least one offset")
	}
	g := graph.New(n)
	for _, o := range offsets {
		if o < 1 || o > n/2 {
			panic(fmt.Sprintf("topology: circulant offset %d out of [1, %d]", o, n/2))
		}
		for i := 0; i < n; i++ {
			g.AddEdge(i, (i+o)%n)
		}
	}
	return &Circulant{
		base:    base{g: g, name: fmt.Sprintf("circulant(%d,%v)", n, offsets)},
		n:       n,
		offsets: append([]int(nil), offsets...),
	}
}

// AutomorphismTo implements VertexTransitive by rotation.
func (c *Circulant) AutomorphismTo(u graph.NodeID) func(graph.NodeID) graph.NodeID {
	n := c.n
	return func(x graph.NodeID) graph.NodeID { return (x + u) % n }
}

// DeBruijn is the undirected binary de Bruijn graph on 2^dim nodes: node u
// is adjacent to (2u) mod n and (2u+1) mod n. Mentioned in the paper's
// related work as a popular interconnection network.
type DeBruijn struct {
	base
	dim int
}

// NewDeBruijn builds the binary de Bruijn graph of the given dimension
// (n = 2^dim nodes). It panics if dim < 2.
func NewDeBruijn(dim int) *DeBruijn {
	if dim < 2 {
		panic("topology: de Bruijn needs dimension >= 2")
	}
	n := 1 << dim
	g := graph.New(n)
	for u := 0; u < n; u++ {
		for b := 0; b < 2; b++ {
			v := (2*u + b) % n
			if u != v {
				g.AddEdge(u, v)
			}
		}
	}
	return &DeBruijn{base: base{g: g, name: fmt.Sprintf("debruijn(%d)", dim)}, dim: dim}
}

// ShuffleExchange is the shuffle-exchange graph on 2^dim nodes: node u is
// adjacent to u^1 (exchange) and to rol(u) (shuffle).
type ShuffleExchange struct {
	base
	dim int
}

// NewShuffleExchange builds the shuffle-exchange graph of the given
// dimension. It panics if dim < 2.
func NewShuffleExchange(dim int) *ShuffleExchange {
	if dim < 2 {
		panic("topology: shuffle-exchange needs dimension >= 2")
	}
	n := 1 << dim
	g := graph.New(n)
	for u := 0; u < n; u++ {
		g.AddEdge(u, u^1) // exchange
		shuffled := ((u << 1) | (u >> (dim - 1))) & (n - 1)
		if shuffled != u {
			g.AddEdge(u, shuffled) // shuffle
		}
	}
	return &ShuffleExchange{base: base{g: g, name: fmt.Sprintf("shuffle-exchange(%d)", dim)}, dim: dim}
}

// RandomRegular is an (approximately) d-regular random graph built by the
// pairing model with retry; used as a contrast topology with expander-like
// behaviour.
type RandomRegular struct{ base }

// NewRandomRegular builds a connected random d-regular simple graph on n
// nodes using the configuration model with restarts. n*d must be even,
// n > d >= 2. The construction retries until it produces a simple
// connected graph, which happens quickly for the sizes used here.
func NewRandomRegular(n, d int, src *rng.Source) *RandomRegular {
	if d < 2 || d >= n {
		panic("topology: random regular needs 2 <= d < n")
	}
	if n*d%2 != 0 {
		panic("topology: random regular needs n*d even")
	}
	for attempt := 0; ; attempt++ {
		if attempt > 10000 {
			panic("topology: random regular generation did not converge")
		}
		g := tryRandomRegular(n, d, src)
		if g != nil && g.Connected() {
			return &RandomRegular{base{g: g, name: fmt.Sprintf("random-regular(%d,%d)", n, d)}}
		}
	}
}

func tryRandomRegular(n, d int, src *rng.Source) *graph.Graph {
	stubs := make([]int, 0, n*d)
	for u := 0; u < n; u++ {
		for k := 0; k < d; k++ {
			stubs = append(stubs, u)
		}
	}
	src.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	g := graph.New(n)
	for i := 0; i < len(stubs); i += 2 {
		u, v := stubs[i], stubs[i+1]
		if u == v || g.HasEdge(u, v) {
			return nil // not simple; retry
		}
		g.AddEdge(u, v)
	}
	return g
}
