package topology

import (
	"fmt"

	"repro/internal/graph"
)

// Mesh is the d-dimensional mesh with a common side length: nodes are
// coordinate vectors in [side]^dims connected along each axis without
// wrap-around. Theorem 1.6 of the paper routes random functions on it.
type Mesh struct {
	base
	dims, side int
	strides    []int
}

// NewMesh builds a dims-dimensional mesh of the given side length
// (side^dims nodes). It panics unless dims >= 1 and side >= 2.
//
// The edge walk generates each undirected edge exactly once (every node
// emits its +1 neighbor per axis), so it stages through graph.Builder:
// million-node meshes build in a handful of flat allocations instead of a
// map plus three growing slices per node.
func NewMesh(dims, side int) *Mesh {
	checkMeshArgs(dims, side)
	m := &Mesh{dims: dims, side: side, strides: strides(dims, side)}
	n := intPow(side, dims)
	b := graph.NewBuilder(n)
	b.Grow(dims * (n / side) * (side - 1))
	c := make([]int, dims) // running coordinate vector: no per-node coordOf allocation
	for u := 0; u < n; u++ {
		for d := 0; d < dims; d++ {
			if c[d]+1 < side {
				b.AddEdge(u, u+m.strides[d])
			}
		}
		incCoord(c, side)
	}
	g := b.Finalize()
	g.SetGeometry(graph.Geometry{Kind: "mesh", Dims: boxDims(dims, side)})
	g.SetLabeler(func(u graph.NodeID) string { return fmt.Sprint(m.coordOf(u)) })
	m.base = base{g: g, name: fmt.Sprintf("mesh(%d,%d)", dims, side)}
	return m
}

// incCoord advances the mixed-radix coordinate vector by one node ID.
func incCoord(c []int, side int) {
	for d := 0; d < len(c); d++ {
		c[d]++
		if c[d] < side {
			return
		}
		c[d] = 0
	}
}

// boxDims returns the per-dimension extent vector [side]*dims.
func boxDims(dims, side int) []int {
	ds := make([]int, dims)
	for d := range ds {
		ds[d] = side
	}
	return ds
}

// Torus is the d-dimensional torus (mesh with wrap-around); it is
// vertex-transitive under coordinate-wise translation and the standard
// example of a node-symmetric network (Theorem 1.5).
type Torus struct {
	base
	dims, side int
	strides    []int
}

// NewTorus builds a dims-dimensional torus of the given side length. It
// panics unless dims >= 1 and side >= 3 (side 2 would create double edges).
func NewTorus(dims, side int) *Torus {
	checkMeshArgs(dims, side)
	if side < 3 {
		panic("topology: torus needs side >= 3")
	}
	t := &Torus{dims: dims, side: side, strides: strides(dims, side)}
	n := intPow(side, dims)
	// Each node emits its +1 (wrapping) neighbor per axis, so with side >= 3
	// every undirected edge appears exactly once: builder-eligible.
	b := graph.NewBuilder(n)
	b.Grow(dims * n)
	c := make([]int, dims)
	for u := 0; u < n; u++ {
		for d := 0; d < dims; d++ {
			next := c[d] + 1
			if next == side {
				next = 0
			}
			v := u + (next-c[d])*t.strides[d]
			b.AddEdge(u, v)
		}
		incCoord(c, side)
	}
	g := b.Finalize()
	g.SetGeometry(graph.Geometry{Kind: "torus", Dims: boxDims(dims, side)})
	g.SetLabeler(func(u graph.NodeID) string { return fmt.Sprint(t.coordOf(u)) })
	t.base = base{g: g, name: fmt.Sprintf("torus(%d,%d)", dims, side)}
	return t
}

func checkMeshArgs(dims, side int) {
	if dims < 1 {
		panic("topology: mesh/torus needs dims >= 1")
	}
	if side < 2 {
		panic("topology: mesh/torus needs side >= 2")
	}
	if f := float64(intPow(side, dims)); f > 1<<31 {
		panic("topology: mesh/torus too large")
	}
}

func strides(dims, side int) []int {
	s := make([]int, dims)
	st := 1
	for d := 0; d < dims; d++ {
		s[d] = st
		st *= side
	}
	return s
}

func intPow(b, e int) int {
	r := 1
	for i := 0; i < e; i++ {
		r *= b
	}
	return r
}

// Dims returns the number of dimensions.
func (m *Mesh) Dims() int { return m.dims }

// Side returns the side length.
func (m *Mesh) Side() int { return m.side }

// Coord returns the coordinate vector of node u.
func (m *Mesh) Coord(u graph.NodeID) []int { return m.coordOf(u) }

// NodeAt returns the node with the given coordinate vector.
func (m *Mesh) NodeAt(c []int) graph.NodeID { return nodeAt(c, m.strides, m.side) }

func (m *Mesh) coordOf(u graph.NodeID) []int { return coordOf(u, m.dims, m.side) }

// Dims returns the number of dimensions.
func (t *Torus) Dims() int { return t.dims }

// Side returns the side length.
func (t *Torus) Side() int { return t.side }

// Coord returns the coordinate vector of node u.
func (t *Torus) Coord(u graph.NodeID) []int { return t.coordOf(u) }

// NodeAt returns the node with the given coordinate vector.
func (t *Torus) NodeAt(c []int) graph.NodeID { return nodeAt(c, t.strides, t.side) }

func (t *Torus) coordOf(u graph.NodeID) []int { return coordOf(u, t.dims, t.side) }

// AutomorphismTo implements VertexTransitive: coordinate-wise translation
// by the coordinates of u.
func (t *Torus) AutomorphismTo(u graph.NodeID) func(graph.NodeID) graph.NodeID {
	shift := t.coordOf(u)
	dims, side, str := t.dims, t.side, t.strides
	return func(x graph.NodeID) graph.NodeID {
		c := coordOf(x, dims, side)
		out := 0
		for d := 0; d < dims; d++ {
			out += ((c[d] + shift[d]) % side) * str[d]
		}
		return out
	}
}

func coordOf(u graph.NodeID, dims, side int) []int {
	c := make([]int, dims)
	for d := 0; d < dims; d++ {
		c[d] = u % side
		u /= side
	}
	return c
}

func nodeAt(c []int, strides []int, side int) graph.NodeID {
	if len(c) != len(strides) {
		panic(fmt.Sprintf("topology: coordinate dimension %d != %d", len(c), len(strides)))
	}
	u := 0
	for d, x := range c {
		if x < 0 || x >= side {
			panic(fmt.Sprintf("topology: coordinate %d out of [0,%d)", x, side))
		}
		u += x * strides[d]
	}
	return u
}

// Hypercube is the dim-dimensional binary hypercube; vertex-transitive
// under XOR translation.
type Hypercube struct {
	base
	dim int
}

// NewHypercube builds the hypercube on 2^dim nodes. It panics if dim < 1.
func NewHypercube(dim int) *Hypercube {
	if dim < 1 {
		panic("topology: hypercube needs dim >= 1")
	}
	if dim > 24 {
		panic("topology: hypercube too large")
	}
	n := 1 << dim
	b := graph.NewBuilder(n)
	b.Grow(dim * n / 2)
	for u := 0; u < n; u++ {
		for d := 0; d < dim; d++ {
			v := u ^ (1 << d)
			if u < v {
				b.AddEdge(u, v)
			}
		}
	}
	g := b.Finalize()
	// A dim-cube is the side-2 mesh on [2]^dim; registering it that way
	// lets the box partitioner split it without a special case.
	g.SetGeometry(graph.Geometry{Kind: "mesh", Dims: boxDims(dim, 2)})
	g.SetLabeler(func(u graph.NodeID) string { return fmt.Sprintf("%0*b", dim, u) })
	return &Hypercube{base: base{g: g, name: fmt.Sprintf("hypercube(%d)", dim)}, dim: dim}
}

// Dim returns the number of dimensions.
func (h *Hypercube) Dim() int { return h.dim }

// AutomorphismTo implements VertexTransitive: XOR by u.
func (h *Hypercube) AutomorphismTo(u graph.NodeID) func(graph.NodeID) graph.NodeID {
	return func(x graph.NodeID) graph.NodeID { return x ^ u }
}
