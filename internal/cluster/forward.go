package cluster

import (
	"net/http"
	"strings"

	"repro/internal/jobs"
)

// viaHeader carries the names of the nodes a forwarded request has
// already visited, comma-separated. It is both the hop counter and the
// loop detector: a node that sees itself in the list, or a list at the
// hop budget, executes locally instead of forwarding again — the
// bounded-retry discipline that keeps forwarding livelock-free.
const viaHeader = "X-Optnet-Via"

// parseVia splits a Via header into its visited-node names.
func parseVia(h string) []string {
	if h == "" {
		return nil
	}
	parts := strings.Split(h, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// shouldForward decides whether a request for key should be forwarded,
// and to whom. It returns false when this node owns the key, when the
// hop budget is spent, or when the request has looped back.
func (n *Node) shouldForward(key, via string) (Peer, bool) {
	owner, ok := Owner(n.cfg.Peers, key)
	if !ok || owner.Name == n.cfg.Self {
		return Peer{}, false
	}
	hops := parseVia(via)
	if len(hops) >= n.cfg.MaxHops {
		return Peer{}, false
	}
	for _, h := range hops {
		if h == n.cfg.Self || h == owner.Name {
			return Peer{}, false // loop: execute here rather than bounce
		}
	}
	return owner, true
}

// peerClient returns a jobs client for the peer, carrying the extended
// Via chain. Forwarded submits get one 429 retry (the owner's
// Retry-After hint still applies); anything worse falls back locally.
func (n *Node) peerClient(p Peer, via string) *jobs.Client {
	hdr := http.Header{}
	chain := n.cfg.Self
	if via != "" {
		chain = via + "," + n.cfg.Self
	}
	hdr.Set(viaHeader, chain)
	return &jobs.Client{
		BaseURL:     p.URL,
		HTTPClient:  n.httpClient(),
		Header:      hdr,
		RetryBudget: 1,
	}
}

// forwardSubmit forwards a decoded submit to the owner. On any
// transport failure the caller degrades to local execution, so a dead
// owner costs placement, never availability.
func (n *Node) forwardSubmit(owner Peer, via string, req jobs.SubmitRequest) (jobs.JobStatus, error) {
	st, err := n.peerClient(owner, via).Submit(req.Spec, req.Priority)
	if err != nil {
		return jobs.JobStatus{}, err
	}
	n.m.forwards.Add(1)
	return st, nil
}
