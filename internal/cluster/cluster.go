// Package cluster lets N optnetd nodes serve one logical job namespace.
//
// Three mechanisms, in the paper's spirit of simple decentralized schemes
// over global coordination:
//
//   - Membership + ownership: a static peer list with rendezvous
//     (highest-random-weight) hashing from job key to owner node. Any
//     node accepts a submit and forwards it to the owner over the
//     existing HTTP/JSON API, with bounded hops and loop detection; an
//     unreachable owner degrades to local execution instead of an error.
//
//   - Trial-granular work stealing: an owner decomposes a sweep into
//     trial leases (per-trial rng streams are pre-split, so trials are
//     relocatable); idle peers pull batches from /internal/steal, run
//     them on their own reused engines, and return per-trial summaries +
//     telemetry snapshots. The owner folds outcomes strictly in trial
//     order through the existing checkpoint path, so the distributed
//     Result is byte-identical to a single-node run.
//
//   - Segment replication with read-repair: every locally appended
//     record ships asynchronously to R peers, sealed JSONL segments ship
//     whole, and a store miss consults replicas before computing. A node
//     rejoining after a crash back-fills segments from its peers, so a
//     crash mid-sweep loses no completed trial.
package cluster

import (
	"fmt"
	"log"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/jobs"
	"repro/internal/telemetry"
)

// Peer identifies one cluster member.
type Peer struct {
	// Name is the member's unique, stable identity (hashed for
	// ownership; renaming a node reshuffles placement).
	Name string `json:"name"`
	// URL is the member's base HTTP URL (e.g. "http://10.0.0.7:9090").
	URL string `json:"url"`
}

// Config configures a Node.
type Config struct {
	// Self is this node's name; it must appear in Peers.
	Self string
	// Peers is the full static membership, including self.
	Peers []Peer
	// Replicas is the number of additional copies of each record and
	// sealed segment shipped to peers (default 1, capped at the number
	// of other peers).
	Replicas int
	// MaxHops bounds submit forwarding (default 2): a submit that has
	// already been forwarded MaxHops times executes where it lands.
	MaxHops int
	// StealInterval is the idle-thief poll period (default 250ms);
	// <0 disables stealing entirely (the node neither steals nor offers).
	StealInterval time.Duration
	// StealBatch is the maximum trials handed out per lease (default 8).
	StealBatch int
	// LeaseTTL is how long a stolen lease may stay outstanding before
	// its trials flow back to the owner (default 10s).
	LeaseTTL time.Duration
	// Now is the cluster's clock for lease expiry. The caller injects it
	// (cmd/optnetd passes time.Now); nil falls back to a frozen zero
	// clock, which disables lease expiry but nothing else.
	Now func() time.Time
	// HTTPClient overrides http.DefaultClient for peer traffic.
	HTTPClient *http.Client
	// Logf sinks diagnostics (default log.Printf).
	Logf func(format string, args ...any)
}

// Metrics is the node's cluster gauge set, appended to /metrics under
// the optnetd_cluster_ namespace.
type Metrics struct {
	// Forwards counts submits forwarded to their owner.
	Forwards uint64 `json:"forwards"`
	// ForwardFallbacks counts submits executed locally because the owner
	// was unreachable or the hop budget ran out.
	ForwardFallbacks uint64 `json:"forward_fallbacks"`
	// TrialsLeased counts trials handed to thieves by this owner.
	TrialsLeased uint64 `json:"trials_leased"`
	// TrialsStolen counts trials this node executed for other owners.
	TrialsStolen uint64 `json:"trials_stolen"`
	// ReplRecords and ReplSegments count successful replica pushes.
	ReplRecords uint64 `json:"repl_records"`
	// ReplSegments counts successful sealed-segment pushes.
	ReplSegments uint64 `json:"repl_segments"`
	// ReplDrops counts replication queue overflows (copies not shipped).
	ReplDrops uint64 `json:"repl_drops"`
	// RepairHits and RepairMisses count read-repair probes by outcome.
	RepairHits uint64 `json:"repair_hits"`
	// RepairMisses counts read-repair probes that found no replica.
	RepairMisses uint64 `json:"repair_misses"`
}

// counters is the atomic backing for Metrics.
type counters struct {
	forwards         atomic.Uint64
	forwardFallbacks atomic.Uint64
	trialsLeased     atomic.Uint64
	trialsStolen     atomic.Uint64
	replRecords      atomic.Uint64
	replSegments     atomic.Uint64
	replDrops        atomic.Uint64
	repairHits       atomic.Uint64
	repairMisses     atomic.Uint64
}

// Node is one cluster member: it wraps a local scheduler with ownership
// forwarding, offers and steals trial leases, and replicates its store.
// Construct with New, wire into an executor with Wire, then Start.
type Node struct {
	cfg    Config
	others []Peer // every peer but self, in listed order

	exec  *jobs.Executor
	store *jobs.Store
	sched *jobs.Scheduler
	live  *telemetry.Live
	inner http.Handler // the wrapped jobs.Server handler

	steal *stealCoordinator
	repl  *replicator

	m counters

	mu      sync.Mutex
	started bool          //optlint:guardedby mu
	closed  bool          //optlint:guardedby mu
	stop    chan struct{} // closed by Close
	wg      sync.WaitGroup
}

// New validates the config and returns an unstarted node.
func New(cfg Config) (*Node, error) {
	if cfg.Self == "" {
		return nil, fmt.Errorf("cluster: empty self name")
	}
	if cfg.Replicas == 0 {
		cfg.Replicas = 1
	}
	if cfg.MaxHops <= 0 {
		cfg.MaxHops = 2
	}
	if cfg.StealInterval == 0 {
		cfg.StealInterval = 250 * time.Millisecond
	}
	if cfg.StealBatch <= 0 {
		cfg.StealBatch = 8
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 10 * time.Second
	}
	if cfg.Now == nil {
		cfg.Now = func() time.Time { return time.Time{} }
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	seen := map[string]bool{}
	self := false
	var others []Peer
	for _, p := range cfg.Peers {
		if p.Name == "" || p.URL == "" {
			return nil, fmt.Errorf("cluster: peer needs name and url, got %+v", p)
		}
		if seen[p.Name] {
			return nil, fmt.Errorf("cluster: duplicate peer name %q", p.Name)
		}
		seen[p.Name] = true
		if p.Name == cfg.Self {
			self = true
		} else {
			others = append(others, p)
		}
	}
	if !self {
		return nil, fmt.Errorf("cluster: self %q not in peer list", cfg.Self)
	}
	n := &Node{cfg: cfg, others: others, stop: make(chan struct{})}
	n.steal = newStealCoordinator(n)
	n.repl = newReplicator(n)
	return n, nil
}

// httpClient returns the configured or default peer HTTP client.
func (n *Node) httpClient() *http.Client {
	if n.cfg.HTTPClient != nil {
		return n.cfg.HTTPClient
	}
	return http.DefaultClient
}

// Wire hooks the node into the executor: remote trial distribution for
// sweeps this node owns, read-repair lookups on store misses, and store
// replication hooks. Call before the scheduler starts executing jobs.
func (n *Node) Wire(exec *jobs.Executor) {
	n.exec = exec
	n.store = exec.Store
	if n.cfg.StealInterval > 0 {
		exec.Distribute = n.steal
	}
	exec.Lookup = n.repl.lookup
	if n.store != nil {
		n.store.Observer = n.repl.observeRecord
		n.store.OnSeal = n.repl.observeSeal
	}
}

// Start attaches the scheduler and live telemetry, builds the inner
// jobs handler, and launches the background loops: the replication
// pusher, the segment back-fill, and (unless disabled) the idle thief.
func (n *Node) Start(sched *jobs.Scheduler, live *telemetry.Live) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.started {
		return
	}
	n.started = true
	n.sched = sched
	n.live = live
	n.inner = (&jobs.Server{Sched: sched, Live: live}).Handler()
	n.wg.Add(1)
	go n.repl.run(&n.wg)
	if n.store != nil && len(n.others) > 0 {
		n.wg.Add(1)
		go n.backfill(&n.wg)
	}
	if n.cfg.StealInterval > 0 && len(n.others) > 0 {
		n.wg.Add(1)
		go n.thief(&n.wg)
	}
}

// Close stops the node's background loops and waits for them. The
// scheduler and store are owned by the caller and closed separately.
func (n *Node) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	n.mu.Unlock()
	close(n.stop)
	n.wg.Wait()
}

// Metrics snapshots the cluster counters.
func (n *Node) Metrics() Metrics {
	return Metrics{
		Forwards:         n.m.forwards.Load(),
		ForwardFallbacks: n.m.forwardFallbacks.Load(),
		TrialsLeased:     n.m.trialsLeased.Load(),
		TrialsStolen:     n.m.trialsStolen.Load(),
		ReplRecords:      n.m.replRecords.Load(),
		ReplSegments:     n.m.replSegments.Load(),
		ReplDrops:        n.m.replDrops.Load(),
		RepairHits:       n.m.repairHits.Load(),
		RepairMisses:     n.m.repairMisses.Load(),
	}
}

// replicaTargets returns the first Replicas other peers in rendezvous
// order of key — the same order read-repair probes, so a probe's first
// candidate is usually a node that holds the copy.
func (n *Node) replicaTargets(key string) []Peer {
	ranked := Rank(n.others, key)
	r := n.cfg.Replicas
	if r > len(ranked) {
		r = len(ranked)
	}
	return ranked[:r]
}
