package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/jobs"
	"repro/internal/sim"
)

// StealRequest is the POST /internal/steal body: an idle peer asking an
// owner for up to Max trials.
type StealRequest struct {
	// Worker is the thief's node name (lease bookkeeping/diagnostics).
	Worker string `json:"worker"`
	// Max bounds the batch size the thief is willing to take.
	Max int `json:"max"`
}

// StealWork is a granted lease: execute trials [From, To) of Spec and
// post the outcomes back with the Lease id before the owner's lease TTL
// reclaims them.
type StealWork struct {
	// Key is the owning sweep's job key.
	Key string `json:"key"`
	// Spec is the normalized sweep spec (self-contained: the thief
	// re-derives the per-trial rng streams from it).
	Spec jobs.Spec `json:"spec"`
	// From and To bound the leased trial range, half-open.
	From int `json:"from"`
	// To is the exclusive upper bound.
	To int `json:"to"`
	// Lease identifies the grant for the completion post.
	Lease int64 `json:"lease"`
}

// StealComplete is the POST /internal/steal/complete body: the executed
// outcomes of one lease.
type StealComplete struct {
	// Key is the owning sweep's job key.
	Key string `json:"key"`
	// Lease echoes the grant.
	Lease int64 `json:"lease"`
	// Worker is the thief's node name.
	Worker string `json:"worker"`
	// Outcomes carry one summary + telemetry snapshot per trial.
	Outcomes []jobs.TrialOutcome `json:"outcomes"`
}

// stealCoordinator tracks this owner's distributable sweeps. It
// implements jobs.TrialDistributor: the executor calls Distribute when a
// sweep starts, thieves lease batches over HTTP, and the session feeds
// completed batches back to the executor's in-order fold.
type stealCoordinator struct {
	node *Node

	mu       sync.Mutex
	sessions map[string]*stealSession //optlint:guardedby mu
	leaseSeq int64                    //optlint:guardedby mu
}

// newStealCoordinator returns an empty coordinator for the node.
func newStealCoordinator(n *Node) *stealCoordinator {
	return &stealCoordinator{node: n, sessions: make(map[string]*stealSession)}
}

// Distribute implements jobs.TrialDistributor. Sweeps no larger than
// one steal batch are not worth the coordination and run sequentially.
func (c *stealCoordinator) Distribute(key string, spec jobs.Spec, start, total int) jobs.TrialSession {
	if len(c.node.others) == 0 || total-start <= c.node.cfg.StealBatch {
		return nil
	}
	s := &stealSession{
		co:        c,
		key:       key,
		spec:      spec,
		total:     total,
		lo:        start,
		leases:    make(map[int64]*trialLease),
		completed: make(chan jobs.RemoteBatch, 64),
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sessions[key] = s
	return s
}

// steal grants a lease from any active session with unclaimed trials.
func (c *stealCoordinator) steal(req StealRequest) (StealWork, bool) {
	max := req.Max
	if max <= 0 || max > c.node.cfg.StealBatch {
		max = c.node.cfg.StealBatch
	}
	c.mu.Lock()
	keys := make([]string, 0, len(c.sessions))
	for k := range c.sessions {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	sessions := make([]*stealSession, 0, len(keys))
	for _, k := range keys {
		sessions = append(sessions, c.sessions[k])
	}
	c.mu.Unlock()
	for _, s := range sessions {
		if work, ok := s.lease(req.Worker, max); ok {
			c.node.m.trialsLeased.Add(uint64(work.To - work.From))
			return work, true
		}
	}
	return StealWork{}, false
}

// complete routes a thief's finished batch to its session.
func (c *stealCoordinator) complete(sc StealComplete) error {
	c.mu.Lock()
	s, ok := c.sessions[sc.Key]
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("cluster: no active sweep %s (lease expired or sweep done)", sc.Key)
	}
	return s.complete(sc)
}

// drop unregisters a finished session.
func (c *stealCoordinator) drop(key string, s *stealSession) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.sessions[key] == s {
		delete(c.sessions, key)
	}
}

// nextLease allocates a cluster-unique lease id.
func (c *stealCoordinator) nextLease() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.leaseSeq++
	return c.leaseSeq
}

// trialLease is one outstanding grant.
type trialLease struct {
	from, to int
	worker   string
	expires  time.Time // zero with a frozen clock: never expires
}

// stealSession is the owner-side state of one distributable sweep; it
// implements jobs.TrialSession for the executor's fold loop.
type stealSession struct {
	co    *stealCoordinator
	key   string
	spec  jobs.Spec
	total int

	mu        sync.Mutex
	lo        int                   //optlint:guardedby mu
	reclaimed []int                 //optlint:guardedby mu
	leases    map[int64]*trialLease //optlint:guardedby mu
	closed    bool                  //optlint:guardedby mu
	completed chan jobs.RemoteBatch
}

// expireLocked reclaims trials of overdue leases; the owner re-executes
// them via ClaimLocal. Duplicates are harmless: trials are deterministic
// and the fold skips already-folded indices.
//
//optlint:locked mu
func (s *stealSession) expireLocked() {
	now := s.co.node.cfg.Now()
	if now.IsZero() {
		return // frozen clock: expiry disabled
	}
	//optlint:allow mapiter order-independent: reclaimed is sorted after the sweep
	for id, l := range s.leases {
		if l.expires.IsZero() || now.Before(l.expires) {
			continue
		}
		for i := l.from; i < l.to; i++ {
			s.reclaimed = append(s.reclaimed, i)
		}
		delete(s.leases, id)
	}
	sort.Ints(s.reclaimed)
}

// ClaimLocal implements jobs.TrialSession: the owner takes the lowest
// available trial — reclaimed ones first, so the fold pointer unblocks
// as fast as possible after a thief dies.
func (s *stealSession) ClaimLocal() (int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked()
	if len(s.reclaimed) > 0 {
		i := s.reclaimed[0]
		s.reclaimed = s.reclaimed[1:]
		return i, true
	}
	if s.lo < s.total {
		i := s.lo
		s.lo++
		return i, true
	}
	return 0, false
}

// lease grants up to max contiguous never-claimed trials to a thief.
// Reclaimed trials are never re-leased — the owner runs those itself.
func (s *stealSession) lease(worker string, max int) (StealWork, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.lo >= s.total {
		return StealWork{}, false
	}
	s.expireLocked()
	from := s.lo
	to := from + max
	if to > s.total {
		to = s.total
	}
	s.lo = to
	id := s.co.nextLease()
	l := &trialLease{from: from, to: to, worker: worker}
	if now := s.co.node.cfg.Now(); !now.IsZero() {
		l.expires = now.Add(s.co.node.cfg.LeaseTTL)
	}
	s.leases[id] = l
	return StealWork{Key: s.key, Spec: s.spec, From: from, To: to, Lease: id}, true
}

// complete accepts a thief's outcomes and queues them for the fold. A
// full queue refuses the batch and reclaims the lease instead of
// blocking the peer's HTTP handler; the trials re-run locally.
func (s *stealSession) complete(sc StealComplete) error {
	s.mu.Lock()
	l, ok := s.leases[sc.Lease]
	if ok {
		delete(s.leases, sc.Lease)
	}
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return fmt.Errorf("cluster: sweep %s already finished", sc.Key)
	}
	select {
	case s.completed <- jobs.RemoteBatch{From: batchFrom(sc, l), To: batchTo(sc, l), Outcomes: sc.Outcomes}:
		return nil
	default:
		if ok {
			s.mu.Lock()
			for i := l.from; i < l.to; i++ {
				s.reclaimed = append(s.reclaimed, i)
			}
			sort.Ints(s.reclaimed)
			s.mu.Unlock()
		}
		return fmt.Errorf("cluster: sweep %s completion queue full", sc.Key)
	}
}

// batchFrom and batchTo report the lease range when known (diagnostics
// only; the fold trusts each outcome's own trial index).
func batchFrom(sc StealComplete, l *trialLease) int {
	if l != nil {
		return l.from
	}
	if len(sc.Outcomes) > 0 {
		return sc.Outcomes[0].Summary.Trial
	}
	return 0
}

// batchTo mirrors batchFrom for the exclusive upper bound.
func batchTo(sc StealComplete, l *trialLease) int {
	if l != nil {
		return l.to
	}
	if n := len(sc.Outcomes); n > 0 {
		return sc.Outcomes[n-1].Summary.Trial + 1
	}
	return 0
}

// Completed implements jobs.TrialSession.
func (s *stealSession) Completed() <-chan jobs.RemoteBatch { return s.completed }

// Close implements jobs.TrialSession: the sweep finished (or failed);
// stop granting leases and refuse late completions.
func (s *stealSession) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.co.drop(s.key, s)
}

// thief is the idle-peer loop: when the local scheduler has nothing to
// do, poll other peers for leases, execute them on a thief-owned reused
// engine, and post the outcomes back.
func (n *Node) thief(wg *sync.WaitGroup) {
	defer wg.Done()
	eng := sim.NewEngine() // reused across all stolen batches
	tick := time.NewTicker(n.cfg.StealInterval)
	defer tick.Stop()
	rot := 0
	for {
		select {
		case <-n.stop:
			return
		case <-tick.C:
		}
		m := n.sched.Metrics()
		if m.QueueDepth > 0 || m.Running > 0 {
			continue // local work first; stealing is for idle capacity
		}
		// Rotate through peers; stop at the first one with work and drain
		// it until it runs dry or local work arrives.
		for range n.others {
			p := n.others[rot%len(n.others)]
			rot++
			if n.stealFrom(p, eng) {
				break
			}
		}
	}
}

// stealFrom asks one peer for a lease and executes it; reports whether
// the peer had work.
func (n *Node) stealFrom(p Peer, eng *sim.Engine) bool {
	work, ok, err := n.requestSteal(p)
	if err != nil || !ok {
		return false
	}
	outs, err := jobs.RunTrialRange(work.Spec, eng, work.From, work.To)
	if err != nil {
		n.cfg.Logf("cluster: %s: stolen trials [%d,%d) of %s failed: %v", n.cfg.Self, work.From, work.To, work.Key, err)
		return true // the lease expires and the owner re-runs the range
	}
	n.m.trialsStolen.Add(uint64(len(outs)))
	sc := StealComplete{Key: work.Key, Lease: work.Lease, Worker: n.cfg.Self, Outcomes: outs}
	if err := n.postJSON(p, "/internal/steal/complete", sc, nil); err != nil {
		n.cfg.Logf("cluster: %s: returning stolen trials to %s failed: %v", n.cfg.Self, p.Name, err)
	}
	return true
}

// requestSteal posts a steal request to the peer; ok is false when the
// peer has no work (204).
func (n *Node) requestSteal(p Peer) (StealWork, bool, error) {
	var work StealWork
	status, err := n.postJSONStatus(p, "/internal/steal", StealRequest{Worker: n.cfg.Self, Max: n.cfg.StealBatch}, &work)
	if err != nil {
		return StealWork{}, false, err
	}
	if status == http.StatusNoContent {
		return StealWork{}, false, nil
	}
	return work, true, nil
}

// postJSON posts v to the peer path and decodes the response into out
// (out nil: body discarded). Non-2xx statuses are errors.
func (n *Node) postJSON(p Peer, path string, v, out any) error {
	status, err := n.postJSONStatus(p, path, v, out)
	if err != nil {
		return err
	}
	if status < 200 || status > 299 {
		return fmt.Errorf("cluster: %s%s: HTTP %d", p.Name, path, status)
	}
	return nil
}

// postJSONStatus is postJSON returning the status code; a 204 skips
// decoding. 4xx/5xx decode the error envelope when present.
func (n *Node) postJSONStatus(p Peer, path string, v, out any) (int, error) {
	body, err := json.Marshal(v)
	if err != nil {
		return 0, err
	}
	resp, err := n.httpClient().Post(p.URL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	//optlint:allow errsink response body is read-only; close cannot lose data
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return 0, err
	}
	if resp.StatusCode >= 400 {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return resp.StatusCode, fmt.Errorf("cluster: %s%s: %s (HTTP %d)", p.Name, path, e.Error, resp.StatusCode)
		}
		return resp.StatusCode, fmt.Errorf("cluster: %s%s: HTTP %d", p.Name, path, resp.StatusCode)
	}
	if out == nil || resp.StatusCode == http.StatusNoContent {
		return resp.StatusCode, nil
	}
	return resp.StatusCode, json.Unmarshal(data, out)
}
