package cluster

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"repro/internal/jobs"
)

// Handler returns the node's HTTP handler: the full jobs API with
// ownership forwarding layered on top, plus the peer-only /internal
// endpoints (work stealing, record replication, segment shipping).
// /internal is unauthenticated by design — the cluster assumes a
// private network, like the rest of the daemon's API.
func (n *Node) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", n.submit)
	mux.HandleFunc("GET /jobs/{key}", n.status)
	mux.HandleFunc("GET /jobs/{key}/result", n.result)
	mux.HandleFunc("GET /metrics", n.metrics)
	mux.HandleFunc("POST /internal/steal", n.handleSteal)
	mux.HandleFunc("POST /internal/steal/complete", n.handleStealComplete)
	mux.HandleFunc("POST /internal/store", n.handleStorePut)
	// Store keys contain slashes (result/<hex>, ckpt/<hex>), hence the
	// rest-of-path wildcard.
	mux.HandleFunc("GET /internal/store/{key...}", n.handleStoreGet)
	mux.HandleFunc("GET /internal/segments", n.handleSegmentList)
	mux.HandleFunc("GET /internal/segments/{name}", n.handleSegmentGet)
	mux.HandleFunc("POST /internal/segments/{name}", n.handleSegmentPut)
	// Everything else — streams, cancels, snapshots — serves locally.
	mux.Handle("/", n.inner)
	return mux
}

// writeJSON writes v with the given status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// The client hanging up mid-response is the only failure mode and it
	// has nowhere to surface.
	_ = enc.Encode(v)
}

// errorBody is the JSON error envelope, matching the jobs server's.
type errorBody struct {
	Error string `json:"error"`
}

// submit handles POST /jobs: forward to the key's owner when the hop
// budget allows, execute locally otherwise (including when the owner is
// unreachable — placement is best effort, availability is not).
func (n *Node) submit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 16<<20))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request body: " + err.Error()})
		return
	}
	var req jobs.SubmitRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request body: " + err.Error()})
		return
	}
	key, err := req.Spec.Key()
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	via := r.Header.Get(viaHeader)
	if owner, ok := n.shouldForward(key, via); ok {
		st, err := n.forwardSubmit(owner, via, req)
		if err == nil {
			code := http.StatusAccepted
			if st.State == jobs.StateDone {
				code = http.StatusOK
			}
			writeJSON(w, code, st)
			return
		}
		n.m.forwardFallbacks.Add(1)
		n.cfg.Logf("cluster: %s: forward %s to owner %s failed (%v); executing locally", n.cfg.Self, key, owner.Name, err)
	}
	n.localSubmit(w, req)
}

// localSubmit runs a submit on the local scheduler, mirroring the jobs
// server's status mapping.
func (n *Node) localSubmit(w http.ResponseWriter, req jobs.SubmitRequest) {
	st, err := n.sched.Submit(req.Spec, req.Priority)
	switch {
	case errors.Is(err, jobs.ErrBusy):
		w.Header().Set("Retry-After", fmt.Sprintf("%d", int(n.sched.RetryAfter().Seconds())))
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: err.Error()})
		return
	case err != nil:
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	code := http.StatusAccepted
	if st.State == jobs.StateDone {
		code = http.StatusOK
	}
	writeJSON(w, code, st)
}

// status handles GET /jobs/{key}: serve locally known jobs, otherwise
// ask the owner.
func (n *Node) status(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if _, err := n.sched.Status(key); err == nil {
		n.inner.ServeHTTP(w, r)
		return
	}
	via := r.Header.Get(viaHeader)
	owner, ok := n.shouldForward(key, via)
	if !ok {
		n.inner.ServeHTTP(w, r)
		return
	}
	st, err := n.peerClient(owner, via).Status(key)
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// result handles GET /jobs/{key}/result, forwarding to the owner for
// jobs this node never saw.
func (n *Node) result(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if _, err := n.sched.Status(key); err == nil {
		n.inner.ServeHTTP(w, r)
		return
	}
	via := r.Header.Get(viaHeader)
	owner, ok := n.shouldForward(key, via)
	if !ok {
		n.inner.ServeHTTP(w, r)
		return
	}
	res, err := n.peerClient(owner, via).Result(key)
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// metrics handles GET /metrics: the jobs server's output with the
// optnetd_cluster_ gauges appended.
func (n *Node) metrics(w http.ResponseWriter, r *http.Request) {
	n.inner.ServeHTTP(w, r)
	m := n.Metrics()
	bw := bufio.NewWriter(w)
	gauge := func(name, help string, v uint64) {
		fmt.Fprintf(bw, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge("optnetd_cluster_forwards_total", "Submits forwarded to their owner.", m.Forwards)
	gauge("optnetd_cluster_forward_fallbacks_total", "Submits executed locally after a failed forward.", m.ForwardFallbacks)
	gauge("optnetd_cluster_trials_leased_total", "Trials handed to thieves by this owner.", m.TrialsLeased)
	gauge("optnetd_cluster_trials_stolen_total", "Trials executed for other owners.", m.TrialsStolen)
	gauge("optnetd_cluster_repl_records_total", "Record copies shipped to peers.", m.ReplRecords)
	gauge("optnetd_cluster_repl_segments_total", "Sealed segments shipped to peers.", m.ReplSegments)
	gauge("optnetd_cluster_repl_drops_total", "Replication queue overflows.", m.ReplDrops)
	gauge("optnetd_cluster_repair_hits_total", "Store misses answered by a replica.", m.RepairHits)
	gauge("optnetd_cluster_repair_misses_total", "Store misses no replica could answer.", m.RepairMisses)
	if err := bw.Flush(); err != nil {
		n.cfg.Logf("cluster: /metrics response truncated: %v", err)
	}
}

// handleSteal handles POST /internal/steal: grant a trial lease or 204.
func (n *Node) handleSteal(w http.ResponseWriter, r *http.Request) {
	var req StealRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	work, ok := n.steal.steal(req)
	if !ok {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	writeJSON(w, http.StatusOK, work)
}

// handleStealComplete handles POST /internal/steal/complete.
func (n *Node) handleStealComplete(w http.ResponseWriter, r *http.Request) {
	var sc StealComplete
	if err := json.NewDecoder(io.LimitReader(r.Body, 256<<20)).Decode(&sc); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	if err := n.steal.complete(sc); err != nil {
		// Gone or congested: the thief drops the batch and the lease TTL
		// re-runs the trials; nothing is lost either way.
		writeJSON(w, http.StatusConflict, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, struct{}{})
}

// handleStorePut handles POST /internal/store: ingest one replicated
// record. PutRaw skips the observer, so the copy is not re-replicated.
func (n *Node) handleStorePut(w http.ResponseWriter, r *http.Request) {
	if n.store == nil {
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "no store on this node"})
		return
	}
	var it replItem
	if err := json.NewDecoder(io.LimitReader(r.Body, 64<<20)).Decode(&it); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	if it.Key == "" || len(it.Value) == 0 {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "record needs key and value"})
		return
	}
	if err := n.store.PutRaw(it.Key, it.Value); err != nil {
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, struct{}{})
}

// handleStoreGet handles GET /internal/store/{key}: raw value or 404.
func (n *Node) handleStoreGet(w http.ResponseWriter, r *http.Request) {
	if n.store == nil {
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "no store on this node"})
		return
	}
	raw, ok := n.store.Get(r.PathValue("key"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown key"})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	if _, err := w.Write(raw); err != nil {
		n.cfg.Logf("cluster: /internal/store response truncated: %v", err)
	}
}

// handleSegmentList handles GET /internal/segments.
func (n *Node) handleSegmentList(w http.ResponseWriter, r *http.Request) {
	if n.store == nil {
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "no store on this node"})
		return
	}
	infos, err := n.store.Segments()
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, infos)
}

// handleSegmentGet handles GET /internal/segments/{name}.
func (n *Node) handleSegmentGet(w http.ResponseWriter, r *http.Request) {
	if n.store == nil {
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "no store on this node"})
		return
	}
	data, err := n.store.ReadSegment(r.PathValue("name"))
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: err.Error()})
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	if _, err := w.Write(data); err != nil {
		n.cfg.Logf("cluster: /internal/segments response truncated: %v", err)
	}
}

// handleSegmentPut handles POST /internal/segments/{name}?origin=peer:
// import a shipped segment (gap fill only; local data always wins).
func (n *Node) handleSegmentPut(w http.ResponseWriter, r *http.Request) {
	if n.store == nil {
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "no store on this node"})
		return
	}
	origin := r.URL.Query().Get("origin")
	data, err := io.ReadAll(io.LimitReader(r.Body, 256<<20))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	added, err := n.store.ImportSegment(origin, r.PathValue("name"), data)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"applied": added})
}
