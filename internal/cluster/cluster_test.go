package cluster

import (
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/jobs"
	"repro/internal/telemetry"
	"repro/internal/testutil"
)

// lateHandler lets an httptest server start before the node behind it
// exists: peer URLs must be known to build the nodes, and the nodes must
// exist to build the handlers.
type lateHandler struct {
	mu sync.RWMutex
	h  http.Handler //optlint:guardedby mu
}

// set installs the real handler.
func (l *lateHandler) set(h http.Handler) {
	l.mu.Lock()
	l.h = h
	l.mu.Unlock()
}

// ServeHTTP delegates to the installed handler, 503 before it exists.
func (l *lateHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	l.mu.RLock()
	h := l.h
	l.mu.RUnlock()
	if h == nil {
		http.Error(w, "node not ready", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

// testNode is one in-process cluster member with all its handles.
type testNode struct {
	name  string
	store *jobs.Store
	live  *telemetry.Live
	exec  *jobs.Executor
	node  *Node
	sched *jobs.Scheduler
	srv   *httptest.Server
	dead  bool
}

// client returns a jobs client speaking to this node's public API.
func (tn *testNode) client() *jobs.Client {
	return &jobs.Client{BaseURL: tn.srv.URL}
}

// kill hard-stops the node: cancel whatever runs, stop serving, stop the
// background loops, and close scheduler and store. Anything not yet
// replicated is lost, like a real crash (modulo the store's own fsync).
func (tn *testNode) kill(t *testing.T, runningKey string) {
	t.Helper()
	if runningKey != "" {
		// In-process goroutines cannot be SIGKILLed; canceling at the next
		// trial boundary is the hard-stop equivalent — the job ends
		// unfinished and only replicated checkpoints survive for peers.
		_ = tn.sched.Cancel(runningKey)
	}
	tn.srv.Close()
	tn.node.Close()
	tn.sched.Close()
	if err := tn.store.Close(); err != nil {
		t.Fatalf("closing %s store: %v", tn.name, err)
	}
	tn.dead = true
}

// startCluster boots one in-process node per name, all serving one
// namespace, and registers teardown. tweak adjusts each node's config
// before construction (nil = defaults).
func startCluster(t *testing.T, names []string, tweak func(*Config)) []*testNode {
	t.Helper()
	handlers := make([]*lateHandler, len(names))
	nodes := make([]*testNode, len(names))
	var peers []Peer
	for i, name := range names {
		handlers[i] = &lateHandler{}
		srv := httptest.NewServer(handlers[i])
		nodes[i] = &testNode{name: name, srv: srv}
		peers = append(peers, Peer{Name: name, URL: srv.URL})
	}
	for i, name := range names {
		store, err := jobs.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		live := telemetry.NewLive()
		exec := &jobs.Executor{Store: store, Live: live}
		cfg := Config{Self: name, Peers: peers, Now: time.Now}
		if tweak != nil {
			tweak(&cfg)
		}
		node, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		node.Wire(exec)
		sched := jobs.NewScheduler(exec, jobs.Options{Workers: 1, QueueSize: 16})
		node.Start(sched, live)
		handlers[i].set(node.Handler())
		tn := nodes[i]
		tn.store, tn.live, tn.exec, tn.node, tn.sched = store, live, exec, node, sched
	}
	t.Cleanup(func() {
		for _, tn := range nodes {
			if tn.dead {
				continue
			}
			tn.srv.Close()
			tn.node.Close()
			tn.sched.Close()
			if err := tn.store.Close(); err != nil {
				t.Errorf("closing %s store: %v", tn.name, err)
			}
		}
	})
	return nodes
}

// sweepSpec is the test job: a permutation sweep on a 2-D torus, sized
// so one trial takes long enough for peers to act mid-sweep.
func sweepSpec(seed uint64, trials, side int) jobs.Spec {
	return jobs.Spec{Route: &jobs.RouteSpec{
		Network:  jobs.NetworkSpec{Kind: "torus", Dims: 2, Side: side},
		Workload: jobs.WorkloadSpec{Kind: "permutation"},
		Protocol: jobs.ProtocolSpec{Bandwidth: 2, Length: 4},
		Seed:     seed,
		Trials:   trials,
	}}
}

// ownerOf splits nodes into the key's owner and the rest.
func ownerOf(t *testing.T, nodes []*testNode, key string) (*testNode, []*testNode) {
	t.Helper()
	var peers []Peer
	for _, tn := range nodes {
		peers = append(peers, Peer{Name: tn.name, URL: tn.srv.URL})
	}
	owner, ok := Owner(peers, key)
	if !ok {
		t.Fatal("no owner")
	}
	var o *testNode
	var rest []*testNode
	for _, tn := range nodes {
		if tn.name == owner.Name {
			o = tn
		} else {
			rest = append(rest, tn)
		}
	}
	return o, rest
}

// TestRendezvousDeterministicAndStable pins the ownership function:
// identical on every node, covering all peers, and removing one peer
// remaps only that peer's keys.
func TestRendezvousDeterministicAndStable(t *testing.T) {
	peers := []Peer{{Name: "a", URL: "u"}, {Name: "b", URL: "u"}, {Name: "c", URL: "u"}}
	counts := map[string]int{}
	for i := 0; i < 300; i++ {
		key := string(rune('k')) + string(rune('0'+i%10)) + string(rune('a'+i%26)) + string(rune('A'+i%26))
		o1, _ := Owner(peers, key)
		o2, _ := Owner(peers, key)
		if o1 != o2 {
			t.Fatalf("owner of %q unstable: %v vs %v", key, o1, o2)
		}
		counts[o1.Name]++
		// Minimal disruption: drop a non-owner peer and the owner must not
		// change.
		var without []Peer
		for _, p := range peers {
			if p.Name != o1.Name {
				without = append(without, p)
			}
		}
		shrunk := []Peer{without[0], {Name: o1.Name, URL: "u"}}
		if o3, _ := Owner(shrunk, key); o3.Name != o1.Name {
			t.Fatalf("removing a non-owner reassigned %q: %s -> %s", key, o1.Name, o3.Name)
		}
	}
	for _, p := range peers {
		if counts[p.Name] == 0 {
			t.Fatalf("peer %s owns no keys out of 300: %v", p.Name, counts)
		}
	}
	ranked := Rank(peers, "some-key")
	if len(ranked) != 3 {
		t.Fatalf("rank dropped peers: %v", ranked)
	}
	if o, _ := Owner(peers, "some-key"); ranked[0].Name != o.Name {
		t.Fatalf("rank[0] %s disagrees with owner %s", ranked[0].Name, o.Name)
	}
}

// TestShouldForward pins the hop budget and loop detection.
func TestShouldForward(t *testing.T) {
	peers := []Peer{{Name: "a", URL: "u"}, {Name: "b", URL: "u"}, {Name: "c", URL: "u"}}
	// A key owned by someone: find one b does not own.
	key := "k"
	for i := 0; ; i++ {
		o, _ := Owner(peers, key)
		if o.Name != "b" {
			break
		}
		key = "k" + string(rune('a'+i))
	}
	n := &Node{cfg: Config{Self: "b", Peers: peers, MaxHops: 2}}
	owner, _ := Owner(peers, key)
	if got, ok := n.shouldForward(key, ""); !ok || got.Name != owner.Name {
		t.Fatalf("fresh request should forward to %s, got %v/%v", owner.Name, got, ok)
	}
	if _, ok := n.shouldForward(key, "x,y"); ok {
		t.Fatal("hop budget spent but still forwarding")
	}
	if _, ok := n.shouldForward(key, "b"); ok {
		t.Fatal("request already visited self but still forwarding (loop)")
	}
	if _, ok := n.shouldForward(key, owner.Name); ok {
		t.Fatal("request already visited the owner but still forwarding (loop)")
	}
	self := &Node{cfg: Config{Self: owner.Name, Peers: peers, MaxHops: 2}}
	if _, ok := self.shouldForward(key, ""); ok {
		t.Fatal("owner forwarding its own key")
	}
}

// TestForwardedSubmitReachesOwner submits to a non-owner and verifies
// the job lands on (and is served from) the owner.
func TestForwardedSubmitReachesOwner(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	nodes := startCluster(t, []string{"a", "b", "c"}, func(c *Config) {
		c.StealInterval = -1 // isolate forwarding from stealing
	})
	spec := sweepSpec(7, 2, 4)
	key, err := spec.Key()
	if err != nil {
		t.Fatal(err)
	}
	owner, rest := ownerOf(t, nodes, key)
	st, err := rest[0].client().Submit(spec, 0)
	if err != nil {
		t.Fatalf("submit to non-owner: %v", err)
	}
	if st.Key != key {
		t.Fatalf("status key %s, want %s", st.Key, key)
	}
	res, err := rest[0].client().Result(key)
	if err != nil {
		t.Fatalf("result via non-owner: %v", err)
	}
	if res.Key != key || len(res.Trials) != 2 {
		t.Fatalf("bad result: key=%s trials=%d", res.Key, len(res.Trials))
	}
	// The owner's scheduler executed it; the non-owner's never saw it.
	if _, err := owner.sched.Status(key); err != nil {
		t.Fatalf("owner does not know the job: %v", err)
	}
	if _, err := rest[0].sched.Status(key); err == nil {
		t.Fatal("non-owner ran the job locally instead of forwarding")
	}
	if m := rest[0].node.Metrics(); m.Forwards == 0 {
		t.Fatalf("no forward counted: %+v", m)
	}
	// Submitting the same spec to the other non-owner is a forwarded
	// cache/singleflight hit: done immediately.
	st2, err := rest[1].client().Submit(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st2.State != jobs.StateDone {
		t.Fatalf("second submit state %s, want done", st2.State)
	}
}
