package cluster

import (
	"encoding/json"
	"testing"
	"time"

	"repro/internal/jobs"
	"repro/internal/sim"
	"repro/internal/testutil"
)

// ckptView mirrors the jobs checkpoint record's progress field.
type ckptView struct {
	Done int `json:"done"`
}

// TestClusterKillNodeMidSweep is the crash-recovery integration test —
// and the CI cluster-smoke scenario: three in-process nodes, a sweep
// submitted to a NON-owner (exercising forwarding), the owner
// hard-stopped after at least one checkpoint replicated, and the
// re-submitted job resuming on a survivor from the replicated
// checkpoint. It proves three things:
//
//  1. the final Result is byte-identical to a single-node reference run;
//  2. no completed trial is recomputed or lost — the survivor executes
//     exactly the unfinished suffix [k, total), where k is the replicated
//     checkpoint's progress at takeover; the witness is its telemetry
//     Runs counter, compared against a single-node run of the k-trial
//     prefix (trials are deterministic, so the prefix cost is exact);
//  3. the finished result replicates onward, so the OTHER survivor
//     answers the same submit as a pure cache hit.
//
// Work stealing is disabled so the trial accounting is exact; the
// differential steal test covers stealing separately.
func TestClusterKillNodeMidSweep(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	nodes := startCluster(t, []string{"a", "b", "c"}, func(c *Config) {
		c.StealInterval = -1
		c.Replicas = 2 // every record reaches both other nodes
	})
	// ~3.4ms per trial: the sweep runs for a few hundred milliseconds, so
	// the kill lands mid-way even though checkpoint replication (large
	// per-trial telemetry snapshots) lags the sweep.
	spec := sweepSpec(23, 96, 32)
	key, err := spec.Key()
	if err != nil {
		t.Fatal(err)
	}
	total := spec.Route.Trials
	ref, _, err := (&jobs.Executor{}).Run(spec, sim.NewEngine(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	owner, rest := ownerOf(t, nodes, key)
	s1, s2 := rest[0], rest[1]
	t.Logf("owner=%s survivors=%s,%s", owner.name, s1.name, s2.name)

	// Submit through a non-owner: the spec forwards to the owner.
	if _, err := s1.client().Submit(spec, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := owner.sched.Status(key); err != nil {
		t.Fatalf("owner never received the forwarded job: %v", err)
	}

	// Wait until the survivor holds a replicated checkpoint with real
	// progress, then hard-stop the owner mid-sweep.
	waitFor(t, 10*time.Second, func() bool {
		var ck ckptView
		ok, err := s1.store.GetJSON(jobs.CheckpointKey(key), &ck)
		return err == nil && ok && ck.Done >= 2
	}, "replicated checkpoint on survivor")
	owner.kill(t, key)

	// The replicated progress at takeover: trials [0, k) must never run
	// again.
	var ck ckptView
	ok, err := s1.store.GetJSON(jobs.CheckpointKey(key), &ck)
	if err != nil || !ok {
		t.Fatalf("survivor checkpoint vanished: ok=%v err=%v", ok, err)
	}
	k := ck.Done
	if k <= 0 || k >= total {
		t.Fatalf("checkpoint progress %d of %d: the kill missed the mid-sweep window", k, total)
	}
	runsBefore := s1.live.Snapshot().Runs
	// Runs counts protocol rounds, not trials, and rounds per trial vary;
	// a single-node run of the k-trial prefix gives the exact Runs cost
	// of the trials the survivor must NOT repeat.
	prefix := spec
	pr := *prefix.Route
	pr.Trials = k
	prefix.Route = &pr
	refPrefix, _, err := (&jobs.Executor{}).Run(prefix, sim.NewEngine(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Re-submit to the survivor. Forwarding to the dead owner fails and
	// degrades to local execution, which resumes from the replicated
	// checkpoint.
	if _, err := s1.client().Submit(spec, 0); err != nil {
		t.Fatalf("re-submit to survivor: %v", err)
	}
	res, err := s1.client().Result(key)
	if err != nil {
		t.Fatal(err)
	}

	refJSON, err := json.Marshal(ref)
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	if string(refJSON) != string(gotJSON) {
		t.Fatalf("resumed result differs from single-node reference:\nref: %.400s\ngot: %.400s", refJSON, gotJSON)
	}

	// No completed trial recomputed or lost: the survivor's simulation
	// work equals the full sweep minus the checkpointed prefix, exactly.
	executed := s1.live.Snapshot().Runs - runsBefore
	want := ref.Telemetry.Runs - refPrefix.Telemetry.Runs
	if executed != want {
		t.Fatalf("survivor ran %d protocol rounds, want exactly %d (full %d - prefix(%d trials) %d)",
			executed, want, ref.Telemetry.Runs, k, refPrefix.Telemetry.Runs)
	}
	if m := s1.node.Metrics(); m.ForwardFallbacks == 0 {
		t.Fatalf("survivor should have fallen back from the dead owner: %+v", m)
	}

	// The finished result replicates to the other survivor, which then
	// answers the same submit as a pure cache hit.
	var hit jobs.JobStatus
	waitFor(t, 10*time.Second, func() bool {
		st, err := s2.client().Submit(spec, 0)
		if err != nil {
			return false
		}
		hit = st
		return st.State == jobs.StateDone && st.FromCache
	}, "cache hit on second survivor")
	if hit.Key != key {
		t.Fatalf("cache hit for wrong key: %+v", hit)
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, timeout time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
