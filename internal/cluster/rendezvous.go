package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
)

// score is the rendezvous weight of (peer, key): the first eight bytes
// of sha256(name || 0x00 || key). Every node computes the same scores
// from the static peer list alone, so ownership needs no coordination,
// and removing one node remaps only that node's keys.
func score(peerName, key string) uint64 {
	h := sha256.New()
	//optlint:allow errsink hash.Hash writes are documented to never fail
	_, _ = h.Write([]byte(peerName))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(key))
	var sum [sha256.Size]byte
	return binary.BigEndian.Uint64(h.Sum(sum[:0]))
}

// Rank orders peers by descending rendezvous weight for key, breaking
// (astronomically unlikely) score ties by name so every node agrees.
func Rank(peers []Peer, key string) []Peer {
	ranked := append([]Peer(nil), peers...)
	sort.SliceStable(ranked, func(i, j int) bool {
		si, sj := score(ranked[i].Name, key), score(ranked[j].Name, key)
		if si != sj {
			return si > sj
		}
		return ranked[i].Name < ranked[j].Name
	})
	return ranked
}

// Owner returns the highest-weight peer for key; ok is false for an
// empty peer list.
func Owner(peers []Peer, key string) (Peer, bool) {
	if len(peers) == 0 {
		return Peer{}, false
	}
	best := peers[0]
	bestScore := score(best.Name, key)
	for _, p := range peers[1:] {
		s := score(p.Name, key)
		if s > bestScore || (s == bestScore && p.Name < best.Name) {
			best, bestScore = p, s
		}
	}
	return best, true
}

// Owns reports whether this node is the rendezvous owner of key.
func (n *Node) Owns(key string) bool {
	owner, ok := Owner(n.cfg.Peers, key)
	return ok && owner.Name == n.cfg.Self
}
