package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sync"

	"repro/internal/jobs"
)

// replItem is one queued replication push: a single record (Key set) or
// a sealed segment (Segment set).
type replItem struct {
	Key     string          `json:"key,omitempty"`
	Value   json.RawMessage `json:"value,omitempty"`
	Segment string          `json:"segment,omitempty"`
}

// replQueueCap bounds the in-memory replication backlog. Overflow drops
// the oldest items (counted in the repl_drops metric): the local store
// remains the source of truth, and the sealed-segment ship plus peer
// back-fill re-establish the copies the drop skipped.
const replQueueCap = 4096

// replicator ships this node's store writes to peers and answers store
// misses from their replicas. Hook methods (observeRecord, observeSeal)
// are called under the store mutex and must not re-enter the store; they
// only enqueue. The run loop does all the I/O.
type replicator struct {
	node *Node

	mu    sync.Mutex
	queue []replItem //optlint:guardedby mu
	wake  chan struct{}
}

// newReplicator returns an idle replicator for the node.
func newReplicator(n *Node) *replicator {
	return &replicator{node: n, wake: make(chan struct{}, 1)}
}

// observeRecord is the Store.Observer hook: every locally originated
// append queues a push of that record to its replica peers. Replicated
// ingests arrive via PutRaw, which skips the observer, so copies never
// ping-pong between nodes.
func (r *replicator) observeRecord(key string, value json.RawMessage) {
	r.enqueue(replItem{Key: key, Value: value})
}

// observeSeal is the Store.OnSeal hook: a sealed segment ships whole,
// giving peers a dense copy even if individual record pushes were
// dropped under load.
func (r *replicator) observeSeal(name string) {
	r.enqueue(replItem{Segment: name})
}

// enqueue appends an item and nudges the run loop, dropping the oldest
// backlog on overflow rather than stalling the store's append path.
func (r *replicator) enqueue(it replItem) {
	r.mu.Lock()
	if len(r.queue) >= replQueueCap {
		n := copy(r.queue, r.queue[1:])
		r.queue = r.queue[:n]
		r.node.m.replDrops.Add(1)
	}
	r.queue = append(r.queue, it)
	r.mu.Unlock()
	select {
	case r.wake <- struct{}{}:
	default:
	}
}

// run is the replication pusher loop; it drains the queue on every wake
// and exits when the node closes.
func (r *replicator) run(wg *sync.WaitGroup) {
	defer wg.Done()
	for {
		select {
		case <-r.node.stop:
			return
		case <-r.wake:
		}
		for {
			r.mu.Lock()
			if len(r.queue) == 0 {
				r.mu.Unlock()
				break
			}
			it := r.queue[0]
			r.queue = r.queue[1:]
			r.mu.Unlock()
			r.push(it)
		}
	}
}

// push ships one item to its replica peers; failures are logged and
// counted, never retried here — the segment ship and back-fill are the
// durability backstop.
func (r *replicator) push(it replItem) {
	n := r.node
	if it.Segment != "" {
		r.pushSegment(it.Segment)
		return
	}
	for _, p := range n.replicaTargets(it.Key) {
		if err := n.postJSON(p, "/internal/store", replItem{Key: it.Key, Value: it.Value}, nil); err != nil {
			n.cfg.Logf("cluster: %s: replicate %s to %s: %v", n.cfg.Self, it.Key, p.Name, err)
			continue
		}
		n.m.replRecords.Add(1)
	}
}

// pushSegment reads the sealed segment and ships it to the replica
// peers chosen by the segment's identity.
func (r *replicator) pushSegment(name string) {
	n := r.node
	if n.store == nil {
		return
	}
	data, err := n.store.ReadSegment(name)
	if err != nil {
		n.cfg.Logf("cluster: %s: read sealed segment %s: %v", n.cfg.Self, name, err)
		return
	}
	for _, p := range n.replicaTargets("segment:" + n.cfg.Self + ":" + name) {
		if err := n.sendSegment(p, name, data); err != nil {
			n.cfg.Logf("cluster: %s: ship segment %s to %s: %v", n.cfg.Self, name, p.Name, err)
			continue
		}
		n.m.replSegments.Add(1)
	}
}

// sendSegment posts raw segment bytes to one peer.
func (n *Node) sendSegment(p Peer, name string, data []byte) error {
	u := p.URL + "/internal/segments/" + url.PathEscape(name) + "?origin=" + url.QueryEscape(n.cfg.Self)
	req, err := http.NewRequest(http.MethodPost, u, bytes.NewReader(data))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := n.httpClient().Do(req)
	if err != nil {
		return err
	}
	//optlint:allow errsink response body is read-only; close cannot lose data
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return fmt.Errorf("cluster: segment post to %s: HTTP %d", p.Name, resp.StatusCode)
	}
	return nil
}

// lookup is the Executor.Lookup read-repair hook: on a local store miss
// the worker probes replicas in rendezvous order before computing. The
// executor persists a hit via PutRaw, completing the repair.
func (r *replicator) lookup(storeKey string) (json.RawMessage, bool) {
	n := r.node
	probes := n.cfg.Replicas + 1
	ranked := Rank(n.others, storeKey)
	if probes > len(ranked) {
		probes = len(ranked)
	}
	for _, p := range ranked[:probes] {
		raw, ok := n.fetchRecord(p, storeKey)
		if ok {
			n.m.repairHits.Add(1)
			return raw, true
		}
	}
	if probes > 0 {
		n.m.repairMisses.Add(1)
	}
	return nil, false
}

// fetchRecord asks one peer for a raw store value. Store keys are
// slash-separated hex/label segments, passed through unescaped to match
// the server's rest-of-path wildcard.
func (n *Node) fetchRecord(p Peer, storeKey string) (json.RawMessage, bool) {
	resp, err := n.httpClient().Get(p.URL + "/internal/store/" + storeKey)
	if err != nil {
		return nil, false
	}
	//optlint:allow errsink response body is read-only; close cannot lose data
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil || resp.StatusCode != http.StatusOK || !json.Valid(data) {
		return nil, false
	}
	return json.RawMessage(data), true
}

// backfill runs once at start: fetch every peer's sealed segments this
// node has not yet imported, so a node rejoining after a crash recovers
// the records (checkpoints included) that replicated while it was down.
func (n *Node) backfill(wg *sync.WaitGroup) {
	defer wg.Done()
	for _, p := range n.others {
		select {
		case <-n.stop:
			return
		default:
		}
		var infos []jobs.SegmentInfo
		if err := n.getJSON(p, "/internal/segments", &infos); err != nil {
			n.cfg.Logf("cluster: %s: backfill list from %s: %v", n.cfg.Self, p.Name, err)
			continue
		}
		for _, info := range infos {
			if info.Active {
				continue // still growing; it ships when sealed
			}
			data, err := n.fetchSegment(p, info.Name)
			if err != nil {
				n.cfg.Logf("cluster: %s: backfill %s from %s: %v", n.cfg.Self, info.Name, p.Name, err)
				continue
			}
			added, err := n.store.ImportSegment(p.Name, info.Name, data)
			if err != nil {
				n.cfg.Logf("cluster: %s: import %s from %s: %v", n.cfg.Self, info.Name, p.Name, err)
				continue
			}
			if added > 0 {
				n.cfg.Logf("cluster: %s: back-filled %d records from %s/%s", n.cfg.Self, added, p.Name, info.Name)
			}
		}
	}
}

// getJSON fetches a JSON document from a peer path.
func (n *Node) getJSON(p Peer, path string, out any) error {
	resp, err := n.httpClient().Get(p.URL + path)
	if err != nil {
		return err
	}
	//optlint:allow errsink response body is read-only; close cannot lose data
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: %s%s: HTTP %d", p.Name, path, resp.StatusCode)
	}
	return json.Unmarshal(data, out)
}

// fetchSegment downloads one raw segment from a peer.
func (n *Node) fetchSegment(p Peer, name string) ([]byte, error) {
	resp, err := n.httpClient().Get(p.URL + "/internal/segments/" + url.PathEscape(name))
	if err != nil {
		return nil, err
	}
	//optlint:allow errsink response body is read-only; close cannot lose data
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 256<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: segment fetch from %s: HTTP %d", p.Name, resp.StatusCode)
	}
	return data, nil
}
