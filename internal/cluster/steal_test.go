package cluster

import (
	"encoding/json"
	"testing"
	"time"

	"repro/internal/jobs"
	"repro/internal/sim"
	"repro/internal/testutil"
)

// TestDistributedSweepByteIdentical is the differential test for work
// stealing: a sweep executed across two nodes — the owner folding while
// an idle peer steals trial batches — must produce a Result (summaries,
// aggregate, and telemetry snapshot) byte-identical to a single-node
// run of the same spec. Trials are relocatable because their rng
// streams are pre-split from the master seed; the fold is exact because
// the owner applies outcomes strictly in trial order through
// telemetry.Snapshot.Add, which is lossless for JSON-round-tripped
// snapshots.
func TestDistributedSweepByteIdentical(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	nodes := startCluster(t, []string{"a", "b"}, func(c *Config) {
		c.StealInterval = time.Millisecond
		c.StealBatch = 4
	})
	// ~0.6ms per trial: the sweep runs for tens of milliseconds, so the
	// 1ms thief poll gets many chances to lease batches.
	spec := sweepSpec(11, 64, 16)
	key, err := spec.Key()
	if err != nil {
		t.Fatal(err)
	}
	// Single-node reference, computed before the cluster touches the
	// spec: a bare executor with no store and no peers.
	ref, _, err := (&jobs.Executor{}).Run(spec, sim.NewEngine(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	owner, rest := ownerOf(t, nodes, key)
	thief := rest[0]
	if _, err := owner.client().Submit(spec, 0); err != nil {
		t.Fatal(err)
	}
	res, err := owner.client().Result(key)
	if err != nil {
		t.Fatal(err)
	}

	refJSON, err := json.Marshal(ref)
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	if string(refJSON) != string(gotJSON) {
		t.Fatalf("distributed result differs from single-node run:\nref: %.400s\ngot: %.400s", refJSON, gotJSON)
	}
	snapRef, err := json.Marshal(ref.Telemetry)
	if err != nil {
		t.Fatal(err)
	}
	snapGot, err := json.Marshal(res.Telemetry)
	if err != nil {
		t.Fatal(err)
	}
	if string(snapRef) != string(snapGot) {
		t.Fatal("distributed telemetry snapshot differs from single-node run")
	}

	// The run must actually have been distributed: the thief executed
	// trials the owner leased out.
	if m := thief.node.Metrics(); m.TrialsStolen == 0 {
		t.Fatalf("thief stole no trials; the differential proved nothing: %+v", m)
	}
	if m := owner.node.Metrics(); m.TrialsLeased == 0 {
		t.Fatalf("owner leased no trials: %+v", m)
	}
}

// TestStealSessionLeaseExpiry pins lease reclaim: trials granted to a
// thief that never returns flow back to the owner's ClaimLocal after
// the TTL.
func TestStealSessionLeaseExpiry(t *testing.T) {
	clock := time.Unix(1000, 0)
	n := &Node{cfg: Config{
		Self:       "a",
		Peers:      []Peer{{Name: "a", URL: "u"}, {Name: "b", URL: "u"}},
		StealBatch: 4,
		LeaseTTL:   time.Second,
		Now:        func() time.Time { return clock },
	}}
	n.others = []Peer{{Name: "b", URL: "u"}}
	n.steal = newStealCoordinator(n)
	sess := n.steal.Distribute("k", jobs.Spec{}, 0, 10)
	if sess == nil {
		t.Fatal("Distribute returned nil with an eligible sweep")
	}
	defer sess.Close()

	work, ok := n.steal.steal(StealRequest{Worker: "b", Max: 4})
	if !ok || work.From != 0 || work.To != 4 {
		t.Fatalf("lease = %+v ok=%v, want [0,4)", work, ok)
	}
	// Owner claims past the leased range.
	if i, ok := sess.ClaimLocal(); !ok || i != 4 {
		t.Fatalf("ClaimLocal = %d,%v, want 4", i, ok)
	}
	// Clock passes the TTL: the leased trials come back, lowest first,
	// before any new range.
	clock = clock.Add(2 * time.Second)
	for want := 0; want < 4; want++ {
		i, ok := sess.ClaimLocal()
		if !ok || i != want {
			t.Fatalf("after expiry ClaimLocal = %d,%v, want %d", i, ok, want)
		}
	}
	if i, ok := sess.ClaimLocal(); !ok || i != 5 {
		t.Fatalf("ClaimLocal after reclaim = %d,%v, want 5", i, ok)
	}
	// A completion for the expired lease is refused or folded without
	// harm: the session no longer tracks it, but outcomes are routed by
	// trial index anyway, so duplicates are benign.
	err := n.steal.complete(StealComplete{Key: "k", Lease: work.Lease, Worker: "b"})
	if err != nil {
		t.Logf("late completion rejected: %v (acceptable)", err)
	}
}

// TestDistributeDeclinesSmallSweeps pins the cost gate: sweeps that fit
// in one steal batch run sequentially.
func TestDistributeDeclinesSmallSweeps(t *testing.T) {
	n := &Node{cfg: Config{Self: "a", StealBatch: 8}}
	n.others = []Peer{{Name: "b", URL: "u"}}
	n.steal = newStealCoordinator(n)
	if sess := n.steal.Distribute("k", jobs.Spec{}, 0, 8); sess != nil {
		sess.Close()
		t.Fatal("distributed a sweep no larger than one batch")
	}
	if sess := n.steal.Distribute("k", jobs.Spec{}, 92, 100); sess != nil {
		sess.Close()
		t.Fatal("distributed a near-finished resume no larger than one batch")
	}
}
