// Package graph provides the network model underlying the all-optical
// routing simulator: an undirected multigraph of routers in which every
// undirected edge consists of two directed optical links, one per
// direction, exactly as in Section 1.1 of Flammini & Scheideler (SPAA'97).
//
// Nodes are dense integers [0, N). Every undirected edge {u, v} yields two
// Links with distinct LinkIDs; the simulator's conflict domain is a
// (LinkID, wavelength, time step) triple, so the directed view is the one
// the rest of the system works with.
package graph

import (
	"fmt"
	"io"
)

// NodeID identifies a router. Nodes are dense integers in [0, NumNodes).
type NodeID = int

// LinkID identifies one directed optical link. For the undirected edge
// {u,v} added as the k-th edge, the links u->v and v->u receive IDs 2k and
// 2k+1; Reverse flips between them.
type LinkID = int

// Link is one directed optical link.
type Link struct {
	From, To NodeID
}

// adjEntry pairs a neighbor with the connecting link ID so the hot
// LinkBetween scan reads one small contiguous array per node instead of
// bouncing through the global links table for every candidate. int32
// coordinates keep a whole degree-4 row inside half a cache line.
type adjEntry struct{ to, id int32 }

// Graph is an undirected network whose edges are pairs of directed links.
// Construct with New and AddEdge; a Graph is immutable once shared.
type Graph struct {
	n     int
	links []Link         // links[id] = directed link
	out   [][]LinkID     // out[u] = outgoing link IDs
	in    [][]LinkID     // in[u] = incoming link IDs
	adj   [][]adjEntry   // adj[u] = (neighbor, link) pairs, scan-friendly
	index map[uint64]int // packed (from,to) -> LinkID; nil on sparse CSR graphs
	label func(NodeID) string
	geo   Geometry
}

// New returns an empty graph on n nodes. It panics if n <= 0.
func New(n int) *Graph {
	if n <= 0 {
		panic("graph: New needs at least one node")
	}
	return &Graph{
		n:     n,
		out:   make([][]LinkID, n),
		in:    make([][]LinkID, n),
		adj:   make([][]adjEntry, n),
		index: make(map[uint64]int),
	}
}

func pack(u, v NodeID) uint64 { return uint64(uint32(u))<<32 | uint64(uint32(v)) }

// SetLabeler installs an optional node-label function used by NodeLabel
// (topology generators install coordinate labels for debugging output).
func (g *Graph) SetLabeler(f func(NodeID) string) { g.label = f }

// NodeLabel returns a human-readable label for node u.
func (g *Graph) NodeLabel(u NodeID) string {
	if g.label != nil {
		return g.label(u)
	}
	return fmt.Sprintf("%d", u)
}

// NumNodes returns the number of routers.
func (g *Graph) NumNodes() int { return g.n }

// NumLinks returns the number of directed links (twice the edge count).
func (g *Graph) NumLinks() int { return len(g.links) }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int { return len(g.links) / 2 }

// AddEdge adds the undirected edge {u, v}, creating links u->v and v->u.
// It panics on out-of-range nodes or self-loops and is a no-op if the edge
// already exists. On a Builder-finalized graph, the first AddEdge call
// rebuilds the pair-index map that Finalize skipped.
func (g *Graph) AddEdge(u, v NodeID) {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		panic(fmt.Sprintf("graph: AddEdge(%d, %d) out of range [0,%d)", u, v, g.n))
	}
	if u == v {
		panic(fmt.Sprintf("graph: self-loop at node %d", u))
	}
	if g.index == nil {
		g.buildIndex()
	}
	if _, ok := g.index[pack(u, v)]; ok {
		return
	}
	g.addLink(u, v)
	g.addLink(v, u)
}

// buildIndex (re)constructs the pair-index map from the link table.
func (g *Graph) buildIndex() {
	g.index = make(map[uint64]int, len(g.links))
	for id, l := range g.links {
		g.index[pack(l.From, l.To)] = id
	}
}

func (g *Graph) addLink(u, v NodeID) {
	id := len(g.links)
	g.links = append(g.links, Link{From: u, To: v})
	g.index[pack(u, v)] = id
	g.out[u] = append(g.out[u], id)
	g.in[v] = append(g.in[v], id)
	g.adj[u] = append(g.adj[u], adjEntry{to: int32(v), id: int32(id)})
}

// HasEdge reports whether the undirected edge {u, v} exists.
func (g *Graph) HasEdge(u, v NodeID) bool {
	if g.index == nil {
		_, ok := g.LinkBetween(u, v)
		return ok
	}
	_, ok := g.index[pack(u, v)]
	return ok
}

// linkScanMaxDegree bounds the adjacency-list scan in LinkBetween: up to
// this degree a linear walk of out[u] beats the hash lookup (the simulator
// resolves every path hop through LinkBetween each round, so this is a hot
// call); denser nodes fall back to the map.
const linkScanMaxDegree = 16

// LinkBetween returns the directed link ID for u->v, and whether it exists.
func (g *Graph) LinkBetween(u, v NodeID) (LinkID, bool) {
	if u < 0 || u >= g.n {
		return 0, false
	}
	if adj := g.adj[u]; len(adj) <= linkScanMaxDegree {
		for _, a := range adj {
			if int(a.to) == v {
				return int(a.id), true
			}
		}
		return 0, false
	}
	id, ok := g.index[pack(u, v)]
	return id, ok
}

// Link returns the endpoints of a directed link.
func (g *Graph) Link(id LinkID) Link { return g.links[id] }

// Reverse returns the link ID of the opposite direction of id. The two
// directions of the k-th undirected edge are always created together as
// IDs 2k and 2k+1 (see AddEdge), so the reverse is the XOR of the low bit.
func (g *Graph) Reverse(id LinkID) LinkID { return id ^ 1 }

// Out returns the outgoing link IDs of u. The caller must not modify it.
func (g *Graph) Out(u NodeID) []LinkID { return g.out[u] }

// In returns the incoming link IDs of u. The caller must not modify it.
func (g *Graph) In(u NodeID) []LinkID { return g.in[u] }

// Degree returns the undirected degree of u.
func (g *Graph) Degree(u NodeID) int { return len(g.out[u]) }

// MaxDegree returns the maximum undirected degree over all nodes.
func (g *Graph) MaxDegree() int {
	max := 0
	for u := 0; u < g.n; u++ {
		if d := g.Degree(u); d > max {
			max = d
		}
	}
	return max
}

// Neighbors returns the neighbors of u in insertion order.
func (g *Graph) Neighbors(u NodeID) []NodeID {
	ns := make([]NodeID, len(g.out[u]))
	for i, id := range g.out[u] {
		ns[i] = g.links[id].To
	}
	return ns
}

// BFS returns the distance (in edges) from src to every node; unreachable
// nodes get -1.
func (g *Graph) BFS(src NodeID) []int {
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []NodeID{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, id := range g.out[u] {
			v := g.links[id].To
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// ShortestPath returns one shortest path from src to dst as a node
// sequence, or nil if dst is unreachable. Ties are broken by link
// insertion order, so the result is deterministic.
func (g *Graph) ShortestPath(src, dst NodeID) Path {
	if src == dst {
		return Path{src}
	}
	parent := make([]NodeID, g.n)
	for i := range parent {
		parent[i] = -1
	}
	parent[src] = src
	queue := []NodeID{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, id := range g.out[u] {
			v := g.links[id].To
			if parent[v] < 0 {
				parent[v] = u
				if v == dst {
					return reconstruct(parent, src, dst)
				}
				queue = append(queue, v)
			}
		}
	}
	return nil
}

func reconstruct(parent []NodeID, src, dst NodeID) Path {
	var rev []NodeID
	for v := dst; ; v = parent[v] {
		rev = append(rev, v)
		if v == src {
			break
		}
	}
	p := make(Path, len(rev))
	for i, v := range rev {
		p[len(rev)-1-i] = v
	}
	return p
}

// Connected reports whether the graph is connected (true for the
// single-node graph).
func (g *Graph) Connected() bool {
	dist := g.BFS(0)
	for _, d := range dist {
		if d < 0 {
			return false
		}
	}
	return true
}

// Diameter returns the largest finite shortest-path distance, running a
// BFS from every node. It returns -1 for disconnected graphs. Intended for
// the moderate sizes used in experiments.
func (g *Graph) Diameter() int {
	diam := 0
	for u := 0; u < g.n; u++ {
		for _, d := range g.BFS(u) {
			if d < 0 {
				return -1
			}
			if d > diam {
				diam = d
			}
		}
	}
	return diam
}

// Eccentricity returns the largest distance from u, or -1 if some node is
// unreachable from u.
func (g *Graph) Eccentricity(u NodeID) int {
	ecc := 0
	for _, d := range g.BFS(u) {
		if d < 0 {
			return -1
		}
		if d > ecc {
			ecc = d
		}
	}
	return ecc
}

// WriteDot renders the graph in Graphviz DOT format, one line per
// undirected edge, with node labels from the installed labeler.
func (g *Graph) WriteDot(w io.Writer, name string) {
	if name == "" {
		name = "topology"
	}
	fmt.Fprintf(w, "graph %q {\n", name)
	fmt.Fprintln(w, "  node [shape=circle];")
	for u := 0; u < g.NumNodes(); u++ {
		fmt.Fprintf(w, "  n%d [label=%q];\n", u, g.NodeLabel(u))
	}
	for id := 0; id < g.NumLinks(); id++ {
		l := g.links[id]
		if l.From < l.To { // one line per undirected edge
			fmt.Fprintf(w, "  n%d -- n%d;\n", l.From, l.To)
		}
	}
	fmt.Fprintln(w, "}")
}
