package graph

// Geometry describes how a topology generator laid its nodes out, when the
// layout has more structure than the bare adjacency exposes. The sharded
// simulator's partitioner keys its strategy off this record: meshes and
// tori split into coordinate boxes, butterflies into (level, row) bands,
// and a graph without geometry falls back to BFS growth. A zero Geometry
// (Kind == "") means "no known layout".
type Geometry struct {
	// Kind is "mesh", "torus", or "butterfly"; "" when unknown. A
	// hypercube registers as a mesh with side-2 extents — the two are the
	// same graph.
	Kind string
	// Dims holds the per-dimension extents for mesh/torus kinds; index 0
	// is the stride-1 axis (node ID = sum of coord[d] * stride[d]).
	Dims []int
	// Levels and Rows give the butterfly layout: node ID = level*Rows+row.
	Levels, Rows int
	// Wrapped marks the wrap-around butterfly (level k identified with 0).
	Wrapped bool
}

// SetGeometry records the generator's layout metadata on the graph.
func (g *Graph) SetGeometry(geo Geometry) { g.geo = geo }

// Geometry returns the layout metadata recorded by the generator, or the
// zero Geometry when none was set. The caller must not modify Dims.
func (g *Graph) Geometry() Geometry { return g.geo }
