package graph

import (
	"testing"
)

func TestPathBasics(t *testing.T) {
	p := Path{0, 1, 2, 3}
	if p.Source() != 0 || p.Dest() != 3 || p.Len() != 3 {
		t.Errorf("basics wrong: src=%d dst=%d len=%d", p.Source(), p.Dest(), p.Len())
	}
	if (Path{5}).Len() != 0 {
		t.Error("single-node path should have 0 links")
	}
	if Path(nil).Len() != 0 {
		t.Error("nil path should have 0 links")
	}
}

func TestPathPanicsOnEmpty(t *testing.T) {
	for name, f := range map[string]func(){
		"Source": func() { Path{}.Source() },
		"Dest":   func() { Path{}.Dest() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s on empty path did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestPathValidate(t *testing.T) {
	g := ringGraph(5)
	if err := (Path{0, 1, 2}).Validate(g); err != nil {
		t.Errorf("valid path rejected: %v", err)
	}
	if err := (Path{0, 2}).Validate(g); err == nil {
		t.Error("chord path accepted on ring")
	}
	if err := (Path{}).Validate(g); err == nil {
		t.Error("empty path accepted")
	}
	if err := (Path{0, 9}).Validate(g); err == nil {
		t.Error("out-of-range node accepted")
	}
	if err := (Path{-1}).Validate(g); err == nil {
		t.Error("negative node accepted")
	}
}

func TestPathLinks(t *testing.T) {
	g := ringGraph(4)
	p := Path{0, 1, 2}
	ids := p.Links(g)
	if len(ids) != 2 {
		t.Fatalf("links = %v", ids)
	}
	if g.Link(ids[0]).From != 0 || g.Link(ids[0]).To != 1 {
		t.Errorf("first link wrong: %+v", g.Link(ids[0]))
	}
	if g.Link(ids[1]).From != 1 || g.Link(ids[1]).To != 2 {
		t.Errorf("second link wrong: %+v", g.Link(ids[1]))
	}
	defer func() {
		if recover() == nil {
			t.Error("Links on invalid path did not panic")
		}
	}()
	Path{0, 2}.Links(g)
}

func TestPathReversed(t *testing.T) {
	p := Path{0, 1, 2}
	r := p.Reversed()
	if r[0] != 2 || r[1] != 1 || r[2] != 0 {
		t.Errorf("Reversed = %v", r)
	}
	// Original untouched.
	if p[0] != 0 {
		t.Error("Reversed mutated the original")
	}
	// Reversal on the graph uses the opposite directed links.
	g := ringGraph(4)
	fwd := p.Links(g)
	bwd := r.Links(g)
	if g.Reverse(fwd[0]) != bwd[1] || g.Reverse(fwd[1]) != bwd[0] {
		t.Error("reversed path does not use reverse links in reverse order")
	}
}

func TestPathIsSimple(t *testing.T) {
	if !(Path{0, 1, 2}).IsSimple() {
		t.Error("simple path misclassified")
	}
	if (Path{0, 1, 0}).IsSimple() {
		t.Error("cycle misclassified as simple")
	}
}

func TestPathIndexOfCloneString(t *testing.T) {
	p := Path{4, 7, 9}
	if p.IndexOf(7) != 1 || p.IndexOf(5) != -1 {
		t.Error("IndexOf wrong")
	}
	c := p.Clone()
	c[0] = 99
	if p[0] != 4 {
		t.Error("Clone aliases original")
	}
	if p.String() != "4->7->9" {
		t.Errorf("String = %q", p.String())
	}
}
