package graph

import "fmt"

// Path is a walk through the network given as a node sequence. A path with
// k+1 nodes uses k directed links. The trivial path of a single node has
// zero links. Paths are the unit the routing protocol operates on: one
// worm is sent along each path of a collection.
type Path []NodeID

// Source returns the first node of the path. It panics on an empty path.
func (p Path) Source() NodeID {
	if len(p) == 0 {
		panic("graph: Source of empty path")
	}
	return p[0]
}

// Dest returns the last node of the path. It panics on an empty path.
func (p Path) Dest() NodeID {
	if len(p) == 0 {
		panic("graph: Dest of empty path")
	}
	return p[len(p)-1]
}

// Len returns the number of directed links the path uses.
func (p Path) Len() int {
	if len(p) == 0 {
		return 0
	}
	return len(p) - 1
}

// Validate checks that every consecutive node pair is joined by a link of
// g and that the path is non-empty.
func (p Path) Validate(g *Graph) error {
	if len(p) == 0 {
		return fmt.Errorf("graph: empty path")
	}
	for _, u := range p {
		if u < 0 || u >= g.NumNodes() {
			return fmt.Errorf("graph: path node %d out of range [0,%d)", u, g.NumNodes())
		}
	}
	for i := 0; i+1 < len(p); i++ {
		if _, ok := g.LinkBetween(p[i], p[i+1]); !ok {
			return fmt.Errorf("graph: path step %d: no link %d->%d", i, p[i], p[i+1])
		}
	}
	return nil
}

// Links resolves the path to its directed link IDs. It panics if the path
// does not validate against g.
func (p Path) Links(g *Graph) []LinkID {
	ids := make([]LinkID, p.Len())
	for i := 0; i+1 < len(p); i++ {
		id, ok := g.LinkBetween(p[i], p[i+1])
		if !ok {
			panic(fmt.Sprintf("graph: path uses missing link %d->%d", p[i], p[i+1]))
		}
		ids[i] = id
	}
	return ids
}

// Reversed returns the path traversed backwards (used by acknowledgements,
// which travel the reverse links of the message path).
func (p Path) Reversed() Path {
	r := make(Path, len(p))
	for i, v := range p {
		r[len(p)-1-i] = v
	}
	return r
}

// IsSimple reports whether the path visits no node twice.
func (p Path) IsSimple() bool {
	seen := make(map[NodeID]bool, len(p))
	for _, v := range p {
		if seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

// IndexOf returns the position of node u in the path, or -1.
func (p Path) IndexOf(u NodeID) int {
	for i, v := range p {
		if v == u {
			return i
		}
	}
	return -1
}

// Clone returns an independent copy of the path.
func (p Path) Clone() Path {
	return append(Path(nil), p...)
}

// String renders the path as "0->3->7".
func (p Path) String() string {
	s := ""
	for i, v := range p {
		if i > 0 {
			s += "->"
		}
		s += fmt.Sprintf("%d", v)
	}
	return s
}
