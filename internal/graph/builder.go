package graph

import "fmt"

// Builder accumulates the edge list of a graph whose generator guarantees
// every undirected edge is produced exactly once, then lays the adjacency
// out in one flat CSR-style pass. The incremental Graph path (New +
// AddEdge) keeps a map keyed by node pair for deduplication and grows one
// slice per node; at a million nodes that map alone costs hundreds of
// megabytes and millions of allocations. The builder needs neither: edges
// land in one flat array, Finalize counting-sorts them into shared backing
// arrays, and the per-node views are subslices of those arrays.
//
// Builder does NOT deduplicate. Generators that can emit coincident pairs
// (de Bruijn graphs, circulants with repeated offsets) must keep using
// Graph.AddEdge, which silently drops duplicates.
type Builder struct {
	n     int
	edges []builderEdge
}

// builderEdge is a recorded undirected edge; int32 halves the staging
// footprint (node counts are bounded well below 2^31 by checkMeshArgs-style
// guards and the int32 occupancy keys downstream).
type builderEdge struct{ u, v int32 }

// NewBuilder returns a builder for a graph on n nodes. It panics if n <= 0.
func NewBuilder(n int) *Builder {
	if n <= 0 {
		panic("graph: NewBuilder needs at least one node")
	}
	return &Builder{n: n}
}

// Grow pre-allocates capacity for extra additional edges, so a generator
// that knows its edge count stages the whole list in one allocation.
func (b *Builder) Grow(extra int) {
	if need := len(b.edges) + extra; need > cap(b.edges) {
		next := make([]builderEdge, len(b.edges), need)
		copy(next, b.edges)
		b.edges = next
	}
}

// NumNodes returns the node count the builder was created with.
func (b *Builder) NumNodes() int { return b.n }

// AddEdge records the undirected edge {u, v}. It panics on out-of-range
// nodes or self-loops. The caller must not record the same edge twice (see
// the type comment); Finalize would materialize a multigraph.
func (b *Builder) AddEdge(u, v NodeID) {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		panic(fmt.Sprintf("graph: AddEdge(%d, %d) out of range [0,%d)", u, v, b.n))
	}
	if u == v {
		panic(fmt.Sprintf("graph: self-loop at node %d", u))
	}
	b.edges = append(b.edges, builderEdge{u: int32(u), v: int32(v)})
}

// Finalize builds the Graph. Link IDs match what the incremental path
// would have produced for the same AddEdge sequence: the k-th recorded
// edge {u, v} becomes links 2k (u->v) and 2k+1 (v->u), and every per-node
// list is ordered by ascending link ID. The pair-index map is built only
// when some node's degree exceeds the LinkBetween scan threshold; sparse
// graphs (meshes, tori, butterflies) skip it entirely.
//
// The builder must not be reused after Finalize.
func (b *Builder) Finalize() *Graph {
	n := b.n
	nLinks := 2 * len(b.edges)
	links := make([]Link, nLinks)
	// Out-degree equals in-degree at every node (each incident edge
	// contributes one outgoing and one incoming link), so one offset table
	// serves all three per-node layouts.
	off := make([]int32, n+1)
	for _, e := range b.edges {
		off[e.u+1]++
		off[e.v+1]++
	}
	for k, e := range b.edges {
		links[2*k] = Link{From: int(e.u), To: int(e.v)}
		links[2*k+1] = Link{From: int(e.v), To: int(e.u)}
	}
	maxDeg := 0
	for u := 0; u < n; u++ {
		if d := int(off[u+1]); d > maxDeg {
			maxDeg = d
		}
		off[u+1] += off[u]
	}
	outFlat := make([]LinkID, nLinks)
	inFlat := make([]LinkID, nLinks)
	adjFlat := make([]adjEntry, nLinks)
	outPos := make([]int32, n)
	inPos := make([]int32, n)
	for u := 0; u < n; u++ {
		outPos[u] = off[u]
		inPos[u] = off[u]
	}
	for id := 0; id < nLinks; id++ {
		l := links[id]
		p := outPos[l.From]
		outFlat[p] = id
		adjFlat[p] = adjEntry{to: int32(l.To), id: int32(id)}
		outPos[l.From] = p + 1
		q := inPos[l.To]
		inFlat[q] = id
		inPos[l.To] = q + 1
	}
	g := &Graph{
		n:     n,
		links: links,
		out:   make([][]LinkID, n),
		in:    make([][]LinkID, n),
		adj:   make([][]adjEntry, n),
	}
	for u := 0; u < n; u++ {
		lo, hi := off[u], off[u+1]
		// Full-slice expressions pin capacity so a later AddEdge append
		// copies out instead of clobbering the neighbor's region.
		g.out[u] = outFlat[lo:hi:hi]
		g.in[u] = inFlat[lo:hi:hi]
		g.adj[u] = adjFlat[lo:hi:hi]
	}
	if maxDeg > linkScanMaxDegree {
		g.buildIndex()
	}
	b.edges = nil
	return g
}
