package graph

import (
	"fmt"
	"math/rand/v2"
	"testing"
)

// rebuildIncremental replays g's undirected edges, in link-ID order, through
// the incremental New+AddEdge path.
func rebuildIncremental(g *Graph) *Graph {
	h := New(g.NumNodes())
	for id := 0; id < g.NumLinks(); id += 2 {
		l := g.Link(id)
		h.AddEdge(l.From, l.To)
	}
	return h
}

// checkSameGraph asserts the two graphs agree on every accessor the rest of
// the system uses: link table, per-node out/in lists (order included),
// LinkBetween, and HasEdge.
func checkSameGraph(t *testing.T, got, want *Graph) {
	t.Helper()
	if got.NumNodes() != want.NumNodes() || got.NumLinks() != want.NumLinks() {
		t.Fatalf("size mismatch: got %d nodes %d links, want %d nodes %d links",
			got.NumNodes(), got.NumLinks(), want.NumNodes(), want.NumLinks())
	}
	for id := 0; id < want.NumLinks(); id++ {
		if got.Link(id) != want.Link(id) {
			t.Fatalf("link %d: got %v want %v", id, got.Link(id), want.Link(id))
		}
	}
	for u := 0; u < want.NumNodes(); u++ {
		gOut, wOut := got.Out(u), want.Out(u)
		if len(gOut) != len(wOut) {
			t.Fatalf("node %d: out degree %d want %d", u, len(gOut), len(wOut))
		}
		for i := range wOut {
			if gOut[i] != wOut[i] {
				t.Fatalf("node %d out[%d]: got %d want %d", u, i, gOut[i], wOut[i])
			}
		}
		gIn, wIn := got.In(u), want.In(u)
		if len(gIn) != len(wIn) {
			t.Fatalf("node %d: in degree %d want %d", u, len(gIn), len(wIn))
		}
		for i := range wIn {
			if gIn[i] != wIn[i] {
				t.Fatalf("node %d in[%d]: got %d want %d", u, i, gIn[i], wIn[i])
			}
		}
		for _, id := range wOut {
			v := want.Link(id).To
			gotID, ok := got.LinkBetween(u, v)
			if !ok || gotID != id {
				t.Fatalf("LinkBetween(%d,%d): got %d,%v want %d,true", u, v, gotID, ok, id)
			}
			if !got.HasEdge(u, v) || !got.HasEdge(v, u) {
				t.Fatalf("HasEdge(%d,%d) false", u, v)
			}
		}
	}
}

func TestBuilderMatchesIncremental(t *testing.T) {
	cases := []struct {
		name  string
		edges [][2]int
		n     int
	}{
		{"path4", [][2]int{{0, 1}, {1, 2}, {2, 3}}, 4},
		{"cycle5", [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}}, 5},
		{"star+chord", [][2]int{{0, 1}, {0, 2}, {0, 3}, {0, 4}, {3, 4}}, 5},
		{"isolated-node", [][2]int{{0, 2}}, 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := NewBuilder(tc.n)
			want := New(tc.n)
			for _, e := range tc.edges {
				b.AddEdge(e[0], e[1])
				want.AddEdge(e[0], e[1])
			}
			checkSameGraph(t, b.Finalize(), want)
		})
	}
}

func TestBuilderMatchesIncrementalRandom(t *testing.T) {
	src := rand.New(rand.NewPCG(41, 1))
	for trial := 0; trial < 20; trial++ {
		n := 2 + src.IntN(40)
		b := NewBuilder(n)
		want := New(n)
		seen := map[[2]int]bool{}
		for e := 0; e < 3*n; e++ {
			u, v := src.IntN(n), src.IntN(n)
			if u == v {
				continue
			}
			if u > v {
				u, v = v, u
			}
			if seen[[2]int{u, v}] {
				continue // the builder contract: no duplicate edges
			}
			seen[[2]int{u, v}] = true
			b.AddEdge(u, v)
			want.AddEdge(u, v)
		}
		got := b.Finalize()
		checkSameGraph(t, got, want)
		if got.Reverse(0) != 1 || (got.NumLinks() >= 4 && got.Reverse(3) != 2) {
			t.Fatalf("trial %d: Reverse pairing broken", trial)
		}
	}
}

// A dense builder graph (degree above the scan threshold) must construct
// its pair-index map so LinkBetween stays correct past the scan path.
func TestBuilderDenseIndex(t *testing.T) {
	const n = 20 // complete graph: degree 19 > linkScanMaxDegree
	b := NewBuilder(n)
	want := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			b.AddEdge(u, v)
			want.AddEdge(u, v)
		}
	}
	got := b.Finalize()
	if got.index == nil {
		t.Fatalf("dense finalized graph has no pair index")
	}
	checkSameGraph(t, got, want)
}

// AddEdge after Finalize must rebuild the skipped index, deduplicate, and
// not corrupt neighboring nodes' CSR regions.
func TestBuilderAddEdgeAfterFinalize(t *testing.T) {
	b := NewBuilder(5)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	g := b.Finalize()
	if g.index != nil {
		t.Fatalf("sparse finalized graph built an index eagerly")
	}
	before := fmt.Sprint(g.Out(0), g.Out(1), g.Out(2), g.Out(3))
	g.AddEdge(1, 2) // duplicate: no-op
	if g.NumLinks() != 6 {
		t.Fatalf("duplicate AddEdge changed link count to %d", g.NumLinks())
	}
	g.AddEdge(3, 4)
	if id, ok := g.LinkBetween(3, 4); !ok || g.Link(id) != (Link{From: 3, To: 4}) {
		t.Fatalf("appended edge not resolvable")
	}
	if after := fmt.Sprint(g.Out(0), g.Out(1), g.Out(2), g.Out(3)[:1]); len(before) > 0 && after != before {
		t.Fatalf("append corrupted existing adjacency:\n before %s\n after  %s", before, after)
	}
	want := rebuildIncremental(g)
	checkSameGraph(t, g, want)
}

func TestGeometryRoundTrip(t *testing.T) {
	g := New(4)
	if geo := g.Geometry(); geo.Kind != "" {
		t.Fatalf("fresh graph has geometry %+v", geo)
	}
	g.SetGeometry(Geometry{Kind: "torus", Dims: []int{2, 2}})
	geo := g.Geometry()
	if geo.Kind != "torus" || len(geo.Dims) != 2 {
		t.Fatalf("geometry round trip: %+v", geo)
	}
}
