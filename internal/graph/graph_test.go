package graph

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// ringGraph builds a cycle on n nodes.
func ringGraph(n int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n)
	}
	return g
}

func TestNewPanicsOnZeroNodes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0)
}

func TestAddEdgeBasics(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	if g.NumEdges() != 2 || g.NumLinks() != 4 {
		t.Fatalf("edges/links = %d/%d, want 2/4", g.NumEdges(), g.NumLinks())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("HasEdge should be symmetric")
	}
	if g.HasEdge(0, 2) {
		t.Error("nonexistent edge reported")
	}
	// Duplicate add is a no-op.
	g.AddEdge(1, 0)
	if g.NumEdges() != 2 {
		t.Errorf("duplicate AddEdge changed edge count to %d", g.NumEdges())
	}
}

func TestAddEdgePanics(t *testing.T) {
	for name, f := range map[string]func(){
		"self-loop":    func() { New(2).AddEdge(1, 1) },
		"out-of-range": func() { New(2).AddEdge(0, 5) },
		"negative":     func() { New(2).AddEdge(-1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestLinkDirections(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1)
	fwd, ok := g.LinkBetween(0, 1)
	if !ok {
		t.Fatal("missing forward link")
	}
	bwd, ok := g.LinkBetween(1, 0)
	if !ok {
		t.Fatal("missing backward link")
	}
	if fwd == bwd {
		t.Fatal("forward and backward links must be distinct")
	}
	if g.Link(fwd) != (Link{From: 0, To: 1}) {
		t.Errorf("fwd link endpoints wrong: %+v", g.Link(fwd))
	}
	if g.Reverse(fwd) != bwd || g.Reverse(bwd) != fwd {
		t.Error("Reverse is not an involution between the two directions")
	}
}

func TestOutInDegree(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(0, 3)
	if g.Degree(0) != 3 || g.Degree(1) != 1 {
		t.Errorf("degrees wrong: %d, %d", g.Degree(0), g.Degree(1))
	}
	if len(g.Out(0)) != 3 || len(g.In(0)) != 3 {
		t.Errorf("out/in sizes at hub: %d/%d", len(g.Out(0)), len(g.In(0)))
	}
	if g.MaxDegree() != 3 {
		t.Errorf("MaxDegree = %d, want 3", g.MaxDegree())
	}
	ns := g.Neighbors(0)
	if len(ns) != 3 || ns[0] != 1 || ns[1] != 2 || ns[2] != 3 {
		t.Errorf("Neighbors(0) = %v", ns)
	}
}

func TestBFSRing(t *testing.T) {
	g := ringGraph(6)
	dist := g.BFS(0)
	want := []int{0, 1, 2, 3, 2, 1}
	for i, d := range dist {
		if d != want[i] {
			t.Errorf("dist[%d] = %d, want %d", i, d, want[i])
		}
	}
}

func TestBFSDisconnected(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	dist := g.BFS(0)
	if dist[2] != -1 || dist[3] != -1 {
		t.Errorf("unreachable nodes should have distance -1: %v", dist)
	}
	if g.Connected() {
		t.Error("disconnected graph reported as connected")
	}
	if g.Diameter() != -1 {
		t.Error("disconnected diameter should be -1")
	}
	if g.Eccentricity(0) != -1 {
		t.Error("eccentricity with unreachable nodes should be -1")
	}
}

func TestShortestPath(t *testing.T) {
	g := ringGraph(8)
	p := g.ShortestPath(0, 3)
	if p.Len() != 3 || p.Source() != 0 || p.Dest() != 3 {
		t.Fatalf("shortest path 0->3 on ring8: %v", p)
	}
	if err := p.Validate(g); err != nil {
		t.Fatal(err)
	}
	if q := g.ShortestPath(2, 2); len(q) != 1 || q[0] != 2 {
		t.Errorf("trivial path = %v", q)
	}
	g2 := New(3)
	g2.AddEdge(0, 1)
	if g.ShortestPath(0, 0) == nil {
		t.Error("self path should not be nil")
	}
	if p := g2.ShortestPath(0, 2); p != nil {
		t.Errorf("unreachable path should be nil, got %v", p)
	}
}

func TestDiameterAndEccentricity(t *testing.T) {
	g := ringGraph(10)
	if d := g.Diameter(); d != 5 {
		t.Errorf("ring10 diameter = %d, want 5", d)
	}
	if e := g.Eccentricity(3); e != 5 {
		t.Errorf("ring10 eccentricity = %d, want 5", e)
	}
}

func TestConnectedSingleNode(t *testing.T) {
	if !New(1).Connected() {
		t.Error("single node graph should be connected")
	}
}

func TestNodeLabel(t *testing.T) {
	g := New(2)
	if g.NodeLabel(1) != "1" {
		t.Errorf("default label = %q", g.NodeLabel(1))
	}
	g.SetLabeler(func(u NodeID) string { return "n" })
	if g.NodeLabel(0) != "n" {
		t.Error("custom labeler ignored")
	}
}

func TestShortestPathIsShortestProperty(t *testing.T) {
	r := rng.New(202)
	check := func(seed uint16) bool {
		src := rng.New(uint64(seed))
		n := 5 + src.Intn(20)
		g := New(n)
		// Random connected graph: spanning chain + extra edges.
		for i := 1; i < n; i++ {
			g.AddEdge(i-1, i)
		}
		for k := 0; k < n; k++ {
			u, v := src.Intn(n), src.Intn(n)
			if u != v {
				g.AddEdge(u, v)
			}
		}
		a, b := r.Intn(n), r.Intn(n)
		p := g.ShortestPath(a, b)
		if p == nil {
			return false
		}
		return p.Len() == g.BFS(a)[b] && p.Validate(g) == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBFSTriangleInequalityProperty(t *testing.T) {
	check := func(seed uint16) bool {
		src := rng.New(uint64(seed))
		n := 4 + src.Intn(16)
		g := New(n)
		for i := 1; i < n; i++ {
			g.AddEdge(src.Intn(i), i)
		}
		u, v, w := src.Intn(n), src.Intn(n), src.Intn(n)
		du := g.BFS(u)
		dv := g.BFS(v)
		return du[w] <= du[v]+dv[w]
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteDot(t *testing.T) {
	g := ringGraph(3)
	var buf bytes.Buffer
	g.WriteDot(&buf, "")
	out := buf.String()
	for _, want := range []string{"graph \"topology\"", "n0 -- n1", "n1 -- n2", "n0 -- n2", "}"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
	// Exactly one line per undirected edge.
	if got := strings.Count(out, " -- "); got != 3 {
		t.Errorf("edge lines = %d, want 3", got)
	}
	var named bytes.Buffer
	g.WriteDot(&named, "ring")
	if !strings.Contains(named.String(), "graph \"ring\"") {
		t.Error("custom name ignored")
	}
}

// TestReversePairing pins the 2k/2k+1 link pairing that Reverse relies
// on: for every link, Reverse must return the directed opposite, agree
// with an index lookup, and be an involution.
func TestReversePairing(t *testing.T) {
	g := New(7)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	g.AddEdge(3, 4)
	g.AddEdge(4, 5)
	g.AddEdge(5, 6)
	g.AddEdge(6, 3)
	g.AddEdge(0, 6)
	for id := 0; id < g.NumLinks(); id++ {
		l := g.Link(id)
		rev := g.Reverse(id)
		rl := g.Link(rev)
		if rl.From != l.To || rl.To != l.From {
			t.Fatalf("Reverse(%d) = %d: %v is not the opposite of %v", id, rev, rl, l)
		}
		if byIndex, ok := g.LinkBetween(l.To, l.From); !ok || byIndex != rev {
			t.Fatalf("Reverse(%d) = %d, LinkBetween gives %d (ok=%v)", id, rev, byIndex, ok)
		}
		if g.Reverse(rev) != id {
			t.Fatalf("Reverse is not an involution at link %d", id)
		}
	}
}

// TestLinkBetweenScanAndMapAgree drives LinkBetween through both the
// small-degree adjacency scan and the high-degree map fallback (a star
// center exceeding linkScanMaxDegree) and checks every present and
// absent pair, including out-of-range nodes.
func TestLinkBetweenScanAndMapAgree(t *testing.T) {
	const leaves = linkScanMaxDegree + 8
	g := New(leaves + 2)
	for v := 1; v <= leaves; v++ {
		g.AddEdge(0, v) // node 0 ends up beyond the scan threshold
	}
	g.AddEdge(1, 2) // a low-degree pair
	for u := 0; u < g.NumNodes(); u++ {
		for v := 0; v < g.NumNodes(); v++ {
			id, ok := g.LinkBetween(u, v)
			wantID, wantOK := g.index[pack(u, v)]
			if ok != wantOK || (ok && id != wantID) {
				t.Fatalf("LinkBetween(%d,%d) = %d,%v; index says %d,%v", u, v, id, ok, wantID, wantOK)
			}
			if ok {
				l := g.Link(id)
				if l.From != u || l.To != v {
					t.Fatalf("LinkBetween(%d,%d) returned link %v", u, v, l)
				}
			}
		}
	}
	if _, ok := g.LinkBetween(-1, 0); ok {
		t.Error("negative node must not resolve")
	}
	if _, ok := g.LinkBetween(g.NumNodes(), 0); ok {
		t.Error("out-of-range node must not resolve")
	}
}
