// Package workload generates open-loop traffic for the dynamic routing
// regime: seeded arrival processes (Poisson, bursty on/off, diurnal
// multi-period, heavy-tailed fan-in bursts) composed per cohort with
// source and destination distributions (uniform, hotspot-weighted,
// bit-reversal/transpose structured), materialized into a versioned,
// replayable Trace.
//
// Everything is deterministic: a Spec plus its seed fully determines the
// generated trace, all randomness flows through internal/rng with
// pre-split per-cohort streams (adding a cohort never perturbs the
// arrivals of earlier cohorts), and the trace's canonical encoding
// (internal/canon) content-addresses it — identical workloads, however
// spelled, produce byte-identical traces and share one optnetd job key.
//
// The closed batch workloads of the paper (permutations, q-functions)
// live in internal/paths; this package covers the other axis of the
// dynamic RWA literature the paper cites: sustained load, saturation
// knees, and latency tails under continuous arrivals.
package workload

import "fmt"

// Arrival-process kinds accepted by ArrivalSpec.Kind.
const (
	// KindPoisson is a homogeneous Poisson process: independent
	// exponential inter-arrival times at a constant rate.
	KindPoisson = "poisson"
	// KindOnOff is a two-state modulated Poisson process: exponential ON
	// periods emitting at the configured rate alternate with silent
	// exponential OFF periods — the classic bursty source.
	KindOnOff = "onoff"
	// KindDiurnal is a non-homogeneous Poisson process whose rate is the
	// base rate plus one triangle wave per configured period — a
	// multi-period day/week load shape, sampled by thinning.
	KindDiurnal = "diurnal"
	// KindBursts is a heavy-tailed fan-in process: burst epochs arrive as
	// a Poisson process and each carries a Pareto-distributed number of
	// requests that all target one destination — a transient hotspot.
	KindBursts = "bursts"
)

// Distribution kinds accepted by Dist.Kind.
const (
	// DistUniform draws nodes uniformly.
	DistUniform = "uniform"
	// DistZipf draws from a fixed hotspot set with Zipf weights: spot i
	// has weight (i+1)^-skew. The set is drawn once per cohort from the
	// generation stream.
	DistZipf = "zipf"
	// DistBitReverse (destinations only) pairs each source with its
	// bit-reversed index — the structured permutation traffic of FFT-style
	// supercomputer workloads.
	DistBitReverse = "bitreverse"
	// DistTranspose (destinations only) pairs each source with the node
	// whose index swaps the high and low halves of its bits — matrix
	// transpose traffic.
	DistTranspose = "transpose"
)

// Spec declares an open-loop workload: the node universe, the generation
// horizon, the master seed, and one or more traffic cohorts whose
// arrivals are merged in step order. The zero-value fields of a spec all
// have documented defaults (see Normalized), so two spellings of the
// same workload generate byte-identical traces.
type Spec struct {
	// Nodes is the number of network nodes traffic is drawn over.
	Nodes int `json:"nodes"`
	// Horizon is the number of steps arrivals are generated for; every
	// arrival step lies in [0, Horizon).
	Horizon int `json:"horizon"`
	// Seed drives all generation randomness.
	Seed uint64 `json:"seed"`
	// Cohorts are independent traffic sources (1..64).
	Cohorts []Cohort `json:"cohorts"`
}

// Cohort is one traffic class: an arrival process plus source and
// destination distributions. Cohort randomness is pre-split from the
// spec's master stream in declaration order.
type Cohort struct {
	// Name labels the cohort in traces and reports (informational).
	Name string `json:"name"`
	// Arrivals is the cohort's arrival process.
	Arrivals ArrivalSpec `json:"arrivals"`
	// Sources distributes request sources (uniform or zipf).
	Sources Dist `json:"sources"`
	// Destinations distributes request destinations (any Dist kind).
	Destinations Dist `json:"destinations"`
}

// ArrivalSpec parameterizes one arrival process. Fields that do not
// apply to the selected kind are zeroed by normalization so they cannot
// split content addresses.
type ArrivalSpec struct {
	// Kind selects the process (default poisson).
	Kind string `json:"kind"`
	// Rate is the mean arrival rate in requests per step: the constant
	// rate (poisson), the ON-state rate (onoff), the base rate
	// (diurnal), or the burst-epoch rate (bursts).
	Rate float64 `json:"rate"`
	// OnSteps and OffSteps are the mean ON/OFF durations of the onoff
	// process (defaults 16 and 48).
	OnSteps float64 `json:"on_steps"`
	// OffSteps is the mean silent-period duration.
	OffSteps float64 `json:"off_steps"`
	// Periods are the diurnal components added to the base rate.
	Periods []Period `json:"periods"`
	// BurstAlpha is the Pareto tail exponent of burst sizes (default
	// 1.5; smaller is heavier).
	BurstAlpha float64 `json:"burst_alpha"`
	// BurstMax caps one burst's size (default 256).
	BurstMax int `json:"burst_max"`
}

// Period is one diurnal component: a triangle wave of the given period
// whose contribution oscillates between 0 and Amplitude requests/step.
type Period struct {
	// Steps is the wave period in steps (>= 2).
	Steps int `json:"steps"`
	// Amplitude is the wave's peak rate contribution.
	Amplitude float64 `json:"amplitude"`
}

// Dist parameterizes a node distribution.
type Dist struct {
	// Kind selects the distribution (default uniform).
	Kind string `json:"kind"`
	// Spots is the hotspot-set size of a zipf distribution (default 8,
	// clamped to the node count).
	Spots int `json:"spots"`
	// Skew is the zipf exponent (default 1.2).
	Skew float64 `json:"skew"`
}

// Generation bounds: they keep one spec from materializing an unbounded
// trace and bound what the decoder accepts.
const (
	maxCohorts  = 64
	maxNodes    = 1 << 20
	maxHorizon  = 1 << 24
	maxRate     = 64
	maxPeriods  = 8
	maxBurstCap = 4096
	// MaxTraceArrivals bounds a single trace; Generate fails beyond it
	// and the decoder rejects traces that claim more.
	MaxTraceArrivals = 1 << 21
)

// Normalized returns a copy of the spec with every defaultable field
// explicit and every inapplicable field zeroed, so equal workloads —
// however spelled — normalize to identical specs and therefore identical
// traces and content addresses.
func (s Spec) Normalized() Spec {
	out := s
	out.Cohorts = make([]Cohort, len(s.Cohorts))
	for i, c := range s.Cohorts {
		a := c.Arrivals
		if a.Kind == "" {
			a.Kind = KindPoisson
		}
		switch a.Kind {
		case KindOnOff:
			if a.OnSteps <= 0 {
				a.OnSteps = 16
			}
			if a.OffSteps <= 0 {
				a.OffSteps = 48
			}
		default:
			a.OnSteps, a.OffSteps = 0, 0
		}
		if a.Kind == KindDiurnal {
			a.Periods = append([]Period{}, a.Periods...)
		} else {
			a.Periods = []Period{}
		}
		if a.Kind == KindBursts {
			if a.BurstAlpha <= 0 {
				a.BurstAlpha = 1.5
			}
			if a.BurstMax <= 0 {
				a.BurstMax = 256
			}
		} else {
			a.BurstAlpha, a.BurstMax = 0, 0
		}
		c.Arrivals = a
		c.Sources = c.Sources.normalized(s.Nodes)
		c.Destinations = c.Destinations.normalized(s.Nodes)
		out.Cohorts[i] = c
	}
	return out
}

// normalized applies the distribution defaults against the node count.
func (d Dist) normalized(nodes int) Dist {
	if d.Kind == "" {
		d.Kind = DistUniform
	}
	if d.Kind == DistZipf {
		if d.Spots <= 0 {
			d.Spots = 8
		}
		if nodes > 0 && d.Spots > nodes {
			d.Spots = nodes
		}
		if d.Skew <= 0 {
			d.Skew = 1.2
		}
	} else {
		d.Spots, d.Skew = 0, 0
	}
	return d
}

// Validate checks the spec's kinds and bounds. It accepts both raw and
// normalized specs (defaults are applied before checking).
func (s Spec) Validate() error {
	n := s.Normalized()
	if n.Nodes < 2 || n.Nodes > maxNodes {
		return fmt.Errorf("workload: nodes %d out of range [2, %d]", n.Nodes, maxNodes)
	}
	if n.Horizon < 1 || n.Horizon > maxHorizon {
		return fmt.Errorf("workload: horizon %d out of range [1, %d]", n.Horizon, maxHorizon)
	}
	if len(n.Cohorts) < 1 || len(n.Cohorts) > maxCohorts {
		return fmt.Errorf("workload: %d cohorts out of range [1, %d]", len(n.Cohorts), maxCohorts)
	}
	for i, c := range n.Cohorts {
		if err := c.Arrivals.validate(); err != nil {
			return fmt.Errorf("workload: cohort %d: %w", i, err)
		}
		if err := c.Sources.validate(n.Nodes, false); err != nil {
			return fmt.Errorf("workload: cohort %d sources: %w", i, err)
		}
		if err := c.Destinations.validate(n.Nodes, true); err != nil {
			return fmt.Errorf("workload: cohort %d destinations: %w", i, err)
		}
	}
	return nil
}

// validate checks one (normalized) arrival spec.
func (a ArrivalSpec) validate() error {
	switch a.Kind {
	case KindPoisson, KindOnOff, KindDiurnal, KindBursts:
	default:
		return fmt.Errorf("unknown arrival kind %q", a.Kind)
	}
	if a.Rate <= 0 || a.Rate > maxRate {
		return fmt.Errorf("rate %v out of range (0, %d]", a.Rate, maxRate)
	}
	if a.Kind == KindOnOff {
		if a.OnSteps < 1 || a.OnSteps > 1e6 || a.OffSteps < 1 || a.OffSteps > 1e6 {
			return fmt.Errorf("onoff durations %v/%v out of range [1, 1e6]", a.OnSteps, a.OffSteps)
		}
	}
	if a.Kind == KindDiurnal {
		if len(a.Periods) < 1 || len(a.Periods) > maxPeriods {
			return fmt.Errorf("diurnal needs 1..%d periods", maxPeriods)
		}
		for _, p := range a.Periods {
			if p.Steps < 2 {
				return fmt.Errorf("diurnal period %d steps < 2", p.Steps)
			}
			if p.Amplitude < 0 || p.Amplitude > maxRate {
				return fmt.Errorf("diurnal amplitude %v out of range [0, %d]", p.Amplitude, maxRate)
			}
		}
	}
	if a.Kind == KindBursts {
		if a.BurstAlpha < 0.5 || a.BurstAlpha > 8 {
			return fmt.Errorf("burst alpha %v out of range [0.5, 8]", a.BurstAlpha)
		}
		if a.BurstMax < 1 || a.BurstMax > maxBurstCap {
			return fmt.Errorf("burst max %d out of range [1, %d]", a.BurstMax, maxBurstCap)
		}
	}
	return nil
}

// validate checks one (normalized) distribution; derived kinds are
// destination-only.
func (d Dist) validate(nodes int, dst bool) error {
	switch d.Kind {
	case DistUniform:
	case DistZipf:
		if d.Spots < 1 || d.Spots > nodes {
			return fmt.Errorf("zipf spots %d out of range [1, %d]", d.Spots, nodes)
		}
		if d.Skew < 0 || d.Skew > 8 {
			return fmt.Errorf("zipf skew %v out of range [0, 8]", d.Skew)
		}
	case DistBitReverse, DistTranspose:
		if !dst {
			return fmt.Errorf("%s applies to destinations only", d.Kind)
		}
	default:
		return fmt.Errorf("unknown distribution kind %q", d.Kind)
	}
	return nil
}
