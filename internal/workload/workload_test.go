package workload

import (
	"reflect"
	"testing"
)

func specFixture() Spec {
	return Spec{
		Nodes:   16,
		Horizon: 200,
		Seed:    42,
		Cohorts: []Cohort{
			{Name: "base", Arrivals: ArrivalSpec{Kind: KindPoisson, Rate: 0.5}},
			{
				Name:         "bursty",
				Arrivals:     ArrivalSpec{Kind: KindOnOff, Rate: 1.5},
				Destinations: Dist{Kind: DistZipf, Spots: 4},
			},
		},
	}
}

func mustGenerate(t *testing.T, s Spec) *Trace {
	t.Helper()
	tr, err := s.Generate()
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return tr
}

func TestGenerateDeterministic(t *testing.T) {
	a := mustGenerate(t, specFixture())
	b := mustGenerate(t, specFixture())
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same spec generated different traces")
	}
	if len(a.Arrivals) == 0 {
		t.Fatalf("fixture generated no arrivals")
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("generated trace invalid: %v", err)
	}
}

func TestGenerateSeedMatters(t *testing.T) {
	s := specFixture()
	a := mustGenerate(t, s)
	s.Seed++
	b := mustGenerate(t, s)
	if reflect.DeepEqual(a.Arrivals, b.Arrivals) {
		t.Fatalf("different seeds generated identical arrivals")
	}
}

// TestGenerateCohortStreamsIsolated pins the pre-split stream contract:
// appending a cohort must not perturb the arrivals of earlier cohorts.
func TestGenerateCohortStreamsIsolated(t *testing.T) {
	s := specFixture()
	base := mustGenerate(t, s)
	s.Cohorts = append(s.Cohorts, Cohort{
		Name:     "extra",
		Arrivals: ArrivalSpec{Kind: KindBursts, Rate: 0.05},
	})
	grown := mustGenerate(t, s)

	filter := func(tr *Trace, maxCohort int) []Arrival {
		var out []Arrival
		for _, a := range tr.Arrivals {
			if a.Cohort <= maxCohort {
				out = append(out, a)
			}
		}
		return out
	}
	if !reflect.DeepEqual(filter(base, 1), filter(grown, 1)) {
		t.Fatalf("adding a cohort perturbed earlier cohorts' arrivals")
	}
}

func TestGenerateNormalizationInvariance(t *testing.T) {
	raw := Spec{
		Nodes:   16,
		Horizon: 100,
		Seed:    7,
		Cohorts: []Cohort{{
			// All fields defaultable: kind, distributions omitted.
			Arrivals: ArrivalSpec{Rate: 1, OnSteps: 99, BurstMax: 17}, // inapplicable fields
		}},
	}
	explicit := Spec{
		Nodes:   16,
		Horizon: 100,
		Seed:    7,
		Cohorts: []Cohort{{
			Arrivals:     ArrivalSpec{Kind: KindPoisson, Rate: 1},
			Sources:      Dist{Kind: DistUniform},
			Destinations: Dist{Kind: DistUniform},
		}},
	}
	a := mustGenerate(t, raw)
	b := mustGenerate(t, explicit)
	ka, err := a.Key()
	if err != nil {
		t.Fatalf("Key: %v", err)
	}
	kb, err := b.Key()
	if err != nil {
		t.Fatalf("Key: %v", err)
	}
	if ka != kb {
		t.Fatalf("equivalent spellings produced different content addresses:\n%s\n%s", ka, kb)
	}
}

func TestGenerateArrivalProcesses(t *testing.T) {
	cases := []struct {
		name string
		arr  ArrivalSpec
	}{
		{"poisson", ArrivalSpec{Kind: KindPoisson, Rate: 1}},
		{"onoff", ArrivalSpec{Kind: KindOnOff, Rate: 2, OnSteps: 10, OffSteps: 30}},
		{"diurnal", ArrivalSpec{Kind: KindDiurnal, Rate: 0.3, Periods: []Period{{Steps: 50, Amplitude: 1}, {Steps: 7, Amplitude: 0.2}}}},
		{"bursts", ArrivalSpec{Kind: KindBursts, Rate: 0.1, BurstAlpha: 1.2, BurstMax: 32}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := Spec{Nodes: 32, Horizon: 500, Seed: 3, Cohorts: []Cohort{{Arrivals: tc.arr}}}
			tr := mustGenerate(t, s)
			if len(tr.Arrivals) == 0 {
				t.Fatalf("%s generated no arrivals over 500 steps", tc.name)
			}
			if err := tr.Validate(); err != nil {
				t.Fatalf("invalid trace: %v", err)
			}
		})
	}
}

// TestGenerateBurstFanIn checks the fan-in property: a multi-request
// burst epoch shares one destination.
func TestGenerateBurstFanIn(t *testing.T) {
	s := Spec{
		Nodes:   64,
		Horizon: 2000,
		Seed:    11,
		Cohorts: []Cohort{{Arrivals: ArrivalSpec{Kind: KindBursts, Rate: 0.05, BurstAlpha: 0.8, BurstMax: 64}}},
	}
	tr := mustGenerate(t, s)
	byStep := map[int][]Arrival{}
	for _, a := range tr.Arrivals {
		byStep[a.Step] = append(byStep[a.Step], a)
	}
	sawMulti := false
	for _, as := range byStep {
		if len(as) < 3 {
			continue
		}
		sawMulti = true
		dsts := map[int]bool{}
		for _, a := range as {
			dsts[a.Dst] = true
		}
		// A fan-in burst shares exactly one destination; two distinct
		// epochs can land on the same integer step, so allow two.
		if len(dsts) > 2 {
			t.Fatalf("burst of %d requests spread over %d destinations", len(as), len(dsts))
		}
	}
	if !sawMulti {
		t.Fatalf("heavy-tailed burst process generated no multi-request epochs")
	}
}

func TestGenerateDerivedDistributions(t *testing.T) {
	for _, kind := range []string{DistBitReverse, DistTranspose} {
		t.Run(kind, func(t *testing.T) {
			s := Spec{
				Nodes:   16,
				Horizon: 300,
				Seed:    5,
				Cohorts: []Cohort{{
					Arrivals:     ArrivalSpec{Kind: KindPoisson, Rate: 1},
					Destinations: Dist{Kind: kind},
				}},
			}
			tr := mustGenerate(t, s)
			for _, a := range tr.Arrivals {
				want := (&sampler{kind: kind, nodes: 16, rbits: 4}).derive(a.Src)
				if want == a.Src {
					want = (a.Src + 1) % 16
				}
				if a.Dst != want {
					t.Fatalf("src %d: dst %d, want derived %d", a.Src, a.Dst, want)
				}
			}
		})
	}
}

func TestGenerateZipfConcentrates(t *testing.T) {
	s := Spec{
		Nodes:   256,
		Horizon: 1000,
		Seed:    9,
		Cohorts: []Cohort{{
			Arrivals:     ArrivalSpec{Kind: KindPoisson, Rate: 2},
			Destinations: Dist{Kind: DistZipf, Spots: 4, Skew: 1.5},
		}},
	}
	tr := mustGenerate(t, s)
	st := tr.Stats()
	// Self-pair redraws can leak a destination outside the hotspot set,
	// but the bulk must land on the 4 spots.
	if st.Destinations > 12 {
		t.Fatalf("zipf(4) traffic hit %d distinct destinations", st.Destinations)
	}
	if st.TopDestShare < 0.25 {
		t.Fatalf("zipf(4, 1.5) top destination share %.3f, want >= 0.25", st.TopDestShare)
	}
}

func TestSpecValidateRejects(t *testing.T) {
	base := specFixture()
	cases := []struct {
		name string
		mut  func(*Spec)
	}{
		{"no cohorts", func(s *Spec) { s.Cohorts = nil }},
		{"one node", func(s *Spec) { s.Nodes = 1 }},
		{"zero horizon", func(s *Spec) { s.Horizon = 0 }},
		{"huge horizon", func(s *Spec) { s.Horizon = maxHorizon + 1 }},
		{"zero rate", func(s *Spec) { s.Cohorts[0].Arrivals.Rate = 0 }},
		{"huge rate", func(s *Spec) { s.Cohorts[0].Arrivals.Rate = maxRate + 1 }},
		{"bad arrival kind", func(s *Spec) { s.Cohorts[0].Arrivals.Kind = "sinusoid" }},
		{"bad dist kind", func(s *Spec) { s.Cohorts[0].Sources.Kind = "gaussian" }},
		{"derived source", func(s *Spec) { s.Cohorts[0].Sources.Kind = DistBitReverse }},
		{"diurnal no periods", func(s *Spec) { s.Cohorts[0].Arrivals.Kind = KindDiurnal }},
		{"diurnal short period", func(s *Spec) {
			s.Cohorts[0].Arrivals.Kind = KindDiurnal
			s.Cohorts[0].Arrivals.Periods = []Period{{Steps: 1, Amplitude: 1}}
		}},
		{"burst alpha low", func(s *Spec) {
			s.Cohorts[0].Arrivals.Kind = KindBursts
			s.Cohorts[0].Arrivals.BurstAlpha = 0.1
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := base
			s.Cohorts = append([]Cohort{}, base.Cohorts...)
			tc.mut(&s)
			if err := s.Validate(); err == nil {
				t.Fatalf("Validate accepted %s", tc.name)
			}
			if _, err := s.Generate(); err == nil {
				t.Fatalf("Generate accepted %s", tc.name)
			}
		})
	}
}

func TestTraceValidateRejects(t *testing.T) {
	mk := func() *Trace {
		return &Trace{
			Version: TraceVersion, Nodes: 8, Horizon: 10,
			Arrivals: []Arrival{{Step: 1, Src: 0, Dst: 3}, {Step: 4, Src: 2, Dst: 7}},
		}
	}
	cases := []struct {
		name string
		mut  func(*Trace)
	}{
		{"bad version", func(tr *Trace) { tr.Version = 2 }},
		{"step out of order", func(tr *Trace) { tr.Arrivals[0].Step = 9 }},
		{"step beyond horizon", func(tr *Trace) { tr.Arrivals[1].Step = 10 }},
		{"negative step", func(tr *Trace) { tr.Arrivals[0].Step = -1; tr.Arrivals[1].Step = -1 }},
		{"src out of range", func(tr *Trace) { tr.Arrivals[0].Src = 8 }},
		{"self pair", func(tr *Trace) { tr.Arrivals[0].Dst = 0 }},
		{"negative cohort", func(tr *Trace) { tr.Arrivals[0].Cohort = -1 }},
		{"spec geometry mismatch", func(tr *Trace) {
			s := specFixture()
			n := s.Normalized()
			tr.Spec = &n
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr := mk()
			tc.mut(tr)
			if err := tr.Validate(); err == nil {
				t.Fatalf("Validate accepted %s", tc.name)
			}
		})
	}
	if err := mk().Validate(); err != nil {
		t.Fatalf("baseline trace invalid: %v", err)
	}
}

func TestStats(t *testing.T) {
	tr := &Trace{
		Version: TraceVersion, Nodes: 8, Horizon: 10,
		Arrivals: []Arrival{
			{Step: 1, Src: 0, Dst: 3},
			{Step: 4, Src: 2, Dst: 3, Cohort: 1},
			{Step: 4, Src: 5, Dst: 3, Cohort: 1},
			{Step: 6, Src: 0, Dst: 1},
		},
	}
	st := tr.Stats()
	if st.Arrivals != 4 {
		t.Fatalf("Arrivals = %d", st.Arrivals)
	}
	if !reflect.DeepEqual(st.PerCohort, []int{2, 2}) {
		t.Fatalf("PerCohort = %v", st.PerCohort)
	}
	if st.PeakStep != 4 || st.PeakCount != 2 {
		t.Fatalf("peak = step %d count %d", st.PeakStep, st.PeakCount)
	}
	if st.Sources != 3 || st.Destinations != 2 {
		t.Fatalf("sources %d destinations %d", st.Sources, st.Destinations)
	}
	if st.TopDestShare != 0.75 {
		t.Fatalf("TopDestShare = %v", st.TopDestShare)
	}
	if st.OfferedLoad != 0.4 {
		t.Fatalf("OfferedLoad = %v", st.OfferedLoad)
	}
}
