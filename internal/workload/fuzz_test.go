package workload

import (
	"bytes"
	"testing"
)

// FuzzDecode hammers the trace decoder with arbitrary bytes: it must
// reject damage cleanly — an error, never a panic or a runaway
// allocation — and anything it does accept must re-encode to the exact
// input bytes (the envelope admits one spelling per trace).
func FuzzDecode(f *testing.F) {
	tr, err := specFixture().Generate()
	if err != nil {
		f.Fatalf("Generate: %v", err)
	}
	enc, err := tr.Encode()
	if err != nil {
		f.Fatalf("Encode: %v", err)
	}
	f.Add(enc)
	f.Add(enc[:len(enc)-1])
	f.Add(enc[:8])
	f.Add([]byte{})
	f.Add([]byte("OWTR"))
	bumped := append([]byte{}, enc...)
	bumped[5] = 99
	f.Add(bumped)
	corrupt := append([]byte{}, enc...)
	corrupt[len(corrupt)/2] ^= 0x10
	f.Add(corrupt)
	small := &Trace{Version: TraceVersion, Nodes: 2, Horizon: 1, Arrivals: []Arrival{{Src: 0, Dst: 1}}}
	if e, err := small.Encode(); err == nil {
		f.Add(e)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		dec, err := Decode(data)
		if err != nil {
			return
		}
		if verr := dec.Validate(); verr != nil {
			t.Fatalf("Decode accepted an invalid trace: %v", verr)
		}
		re, err := dec.Encode()
		if err != nil {
			t.Fatalf("accepted trace failed to re-encode: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("accepted input is not canonical: re-encoding differs (%d vs %d bytes)", len(re), len(data))
		}
	})
}
