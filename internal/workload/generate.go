package workload

import (
	"fmt"
	"math"
	"math/bits"
	"sort"

	"repro/internal/rng"
)

// Generate materializes the spec into a trace. Generation is
// deterministic: the master stream rng.New(spec.Seed) is pre-split into
// three streams per cohort in declaration order (arrival times, pair
// draws, distribution setup), so equal normalized specs produce
// byte-identical traces and appending a cohort never perturbs the
// arrivals of earlier ones. Cohort arrival lists are merged stably by
// step, earlier cohorts first within a step.
func (s Spec) Generate() (*Trace, error) {
	n := s.Normalized()
	if err := n.Validate(); err != nil {
		return nil, err
	}
	master := rng.New(n.Seed)
	var all []Arrival
	for ci := range n.Cohorts {
		c := &n.Cohorts[ci]
		arrSrc, pairSrc, distSrc := master.Split(), master.Split(), master.Split()
		bursts, err := sampleEpochs(c.Arrivals, n.Horizon, arrSrc)
		if err != nil {
			return nil, fmt.Errorf("workload: cohort %d: %w", ci, err)
		}
		srcs := newSampler(c.Sources, n.Nodes, distSrc)
		dsts := newSampler(c.Destinations, n.Nodes, distSrc)
		for _, b := range bursts {
			if len(all)+b.count > MaxTraceArrivals {
				return nil, fmt.Errorf("workload: spec generates more than %d arrivals; lower the rate or horizon", MaxTraceArrivals)
			}
			// A multi-request burst fans in: one destination draw is
			// shared by the whole burst.
			shared := -1
			if b.count > 1 && !dsts.derived() {
				shared = dsts.sample(pairSrc)
			}
			for k := 0; k < b.count; k++ {
				src := srcs.sample(pairSrc)
				dst := shared
				if dsts.derived() {
					dst = dsts.derive(src)
				} else if dst < 0 {
					dst = dsts.sample(pairSrc)
				}
				if dst == src {
					if shared >= 0 {
						// A fan-in burst targets exactly one destination, so
						// resolve the collision by shifting the source.
						src = (src + 1) % n.Nodes
					} else {
						dst = resolveSelfPair(src, dst, n.Nodes, dsts, pairSrc)
					}
				}
				all = append(all, Arrival{Step: b.step, Src: src, Dst: dst, Cohort: ci})
			}
		}
	}
	// Stable by step: per-cohort lists are already step-sorted, so equal
	// steps keep cohort order and intra-cohort sequence.
	sort.SliceStable(all, func(i, j int) bool { return all[i].Step < all[j].Step })
	if all == nil {
		all = []Arrival{}
	}
	spec := n
	return &Trace{
		Version:  TraceVersion,
		Nodes:    n.Nodes,
		Horizon:  n.Horizon,
		Spec:     &spec,
		Arrivals: all,
	}, nil
}

// resolveSelfPair replaces a self-addressed draw deterministically: an
// independent destination distribution is redrawn a few times, then (and
// for derived kinds immediately) the destination shifts to the next node.
func resolveSelfPair(src, dst, nodes int, dsts *sampler, pairSrc *rng.Source) int {
	if !dsts.derived() {
		for tries := 0; tries < 8 && dst == src; tries++ {
			dst = dsts.sample(pairSrc)
		}
	}
	if dst == src {
		dst = (src + 1) % nodes
	}
	return dst
}

// epoch is one arrival epoch: count requests sharing one step (count > 1
// only for the bursts process).
type epoch struct {
	step  int
	count int
}

// sampleEpochs draws the arrival epochs of one cohort over [0, horizon).
func sampleEpochs(a ArrivalSpec, horizon int, src *rng.Source) ([]epoch, error) {
	var out []epoch
	emit := func(step, count int) error {
		out = append(out, epoch{step: step, count: count})
		if len(out) > MaxTraceArrivals {
			return fmt.Errorf("more than %d arrival epochs; lower the rate or horizon", MaxTraceArrivals)
		}
		return nil
	}
	switch a.Kind {
	case KindPoisson:
		t := 0.0
		for {
			t += expInterval(src, a.Rate)
			if int(t) >= horizon {
				return out, nil
			}
			if err := emit(int(t), 1); err != nil {
				return nil, err
			}
		}
	case KindOnOff:
		// Alternate exponential ON/OFF periods starting ON; arrivals are
		// Poisson at the ON rate inside ON windows only.
		tState, on := 0.0, true
		for tState < float64(horizon) {
			dur := expInterval(src, 1) * pickMean(on, a.OnSteps, a.OffSteps)
			if on {
				t := tState
				for {
					t += expInterval(src, a.Rate)
					if t >= tState+dur || int(t) >= horizon {
						break
					}
					if err := emit(int(t), 1); err != nil {
						return nil, err
					}
				}
			}
			tState += dur
			on = !on
		}
		return out, nil
	case KindDiurnal:
		// Thinning: homogeneous candidates at the peak rate, accepted
		// with probability rate(t)/peak.
		peak := a.Rate
		for _, p := range a.Periods {
			peak += p.Amplitude
		}
		t := 0.0
		for {
			t += expInterval(src, peak)
			if int(t) >= horizon {
				return out, nil
			}
			if src.Float64()*peak <= diurnalRate(a, t) {
				if err := emit(int(t), 1); err != nil {
					return nil, err
				}
			}
		}
	case KindBursts:
		// Poisson burst epochs carrying Pareto(alpha)-sized fan-ins.
		t := 0.0
		for {
			t += expInterval(src, a.Rate)
			if int(t) >= horizon {
				return out, nil
			}
			size := paretoSize(src, a.BurstAlpha, a.BurstMax)
			if err := emit(int(t), size); err != nil {
				return nil, err
			}
		}
	}
	return nil, fmt.Errorf("unknown arrival kind %q", a.Kind)
}

// pickMean selects the mean state duration for the current on/off state.
func pickMean(on bool, onSteps, offSteps float64) float64 {
	if on {
		return onSteps
	}
	return offSteps
}

// diurnalRate evaluates the multi-period rate at time t: the base rate
// plus one triangle wave per period. Triangle waves (not sinusoids) keep
// the arithmetic to IEEE +,*,/ so generation is bit-identical across
// platforms.
func diurnalRate(a ArrivalSpec, t float64) float64 {
	r := a.Rate
	for _, p := range a.Periods {
		phase := math.Mod(t, float64(p.Steps)) / float64(p.Steps)
		r += p.Amplitude * (1 - math.Abs(2*phase-1))
	}
	return r
}

// expInterval draws an exponential inter-arrival time with the given
// rate (mean 1/rate).
func expInterval(src *rng.Source, rate float64) float64 {
	u := src.Float64()
	for u == 0 {
		u = src.Float64()
	}
	return -math.Log(u) / rate
}

// paretoSize draws a Pareto(alpha, x_m = 1) burst size clipped to
// [1, cap].
func paretoSize(src *rng.Source, alpha float64, sizeCap int) int {
	u := src.Float64()
	for u == 0 {
		u = src.Float64()
	}
	x := math.Pow(u, -1/alpha)
	if x >= float64(sizeCap) {
		return sizeCap
	}
	size := int(x)
	if size < 1 {
		return 1
	}
	return size
}

// sampler draws nodes from one (normalized) distribution. Zipf samplers
// fix their hotspot set and cumulative weights at construction from the
// cohort's distribution stream.
type sampler struct {
	kind  string
	nodes int
	rbits uint // index width for the derived kinds
	spots []int
	cum   []float64
}

// newSampler builds the sampler, consuming setup randomness from
// distSrc (zipf hotspot sets only).
func newSampler(d Dist, nodes int, distSrc *rng.Source) *sampler {
	s := &sampler{kind: d.Kind, nodes: nodes, rbits: uint(bits.Len(uint(nodes - 1)))}
	if d.Kind == DistZipf {
		perm := distSrc.Perm(nodes)
		s.spots = perm[:d.Spots]
		s.cum = make([]float64, d.Spots)
		total := 0.0
		for i := 0; i < d.Spots; i++ {
			total += math.Pow(float64(i+1), -d.Skew)
			s.cum[i] = total
		}
	}
	return s
}

// derived reports whether the distribution derives the destination from
// the source instead of drawing independently.
func (s *sampler) derived() bool {
	return s.kind == DistBitReverse || s.kind == DistTranspose
}

// sample draws one node (independent kinds only).
func (s *sampler) sample(src *rng.Source) int {
	if s.kind == DistZipf {
		u := src.Float64() * s.cum[len(s.cum)-1]
		i := sort.SearchFloat64s(s.cum, u)
		if i >= len(s.spots) {
			i = len(s.spots) - 1
		}
		return s.spots[i]
	}
	return src.Intn(s.nodes)
}

// derive maps a source to its structured destination. Out-of-range
// images (non-power-of-two node counts) wrap modulo the node count.
func (s *sampler) derive(src int) int {
	var img uint
	switch s.kind {
	case DistBitReverse:
		img = uint(bits.Reverse(uint(src)) >> (bits.UintSize - s.rbits))
	case DistTranspose:
		half := s.rbits / 2
		lo := uint(src) & (1<<half - 1)
		hi := uint(src) >> half
		img = lo<<(s.rbits-half) | hi
	default:
		return src
	}
	return int(img) % s.nodes
}
