package workload

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"reflect"
	"testing"

	"repro/internal/canon"
)

// goldenTraceKey pins the content address of the fixture trace. It
// changes only if the canonical encoding, the spec normalization, or the
// generator's stream discipline changes — all format breaks that must be
// deliberate (and accompanied by a TraceVersion bump when the envelope
// payload is affected).
const goldenTraceKey = "77d8742876a35cd8f96ba47b49db41340e7104cf4179648a8f30b33d81cc4280"

func TestTraceGoldenKey(t *testing.T) {
	tr := mustGenerate(t, specFixture())
	key, err := tr.Key()
	if err != nil {
		t.Fatalf("Key: %v", err)
	}
	if key != goldenTraceKey {
		t.Fatalf("trace content address drifted:\n  got  %s\n  want %s\nif the encoding change is deliberate, bump TraceVersion and repin", key, goldenTraceKey)
	}
}

func TestTraceEncodeDecodeRoundTrip(t *testing.T) {
	tr := mustGenerate(t, specFixture())
	enc, err := tr.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	dec, err := Decode(enc)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(tr, dec) {
		t.Fatalf("decoded trace differs from original")
	}
	enc2, err := dec.Encode()
	if err != nil {
		t.Fatalf("re-Encode: %v", err)
	}
	if !bytes.Equal(enc, enc2) {
		t.Fatalf("re-encoding is not byte-identical")
	}
	k1, err := tr.Key()
	if err != nil {
		t.Fatalf("Key: %v", err)
	}
	k2, err := dec.Key()
	if err != nil {
		t.Fatalf("decoded Key: %v", err)
	}
	if k1 != k2 {
		t.Fatalf("decoded trace has a different content address")
	}
}

func TestTraceEncodeDeterministic(t *testing.T) {
	a, err := mustGenerate(t, specFixture()).Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	b, err := mustGenerate(t, specFixture()).Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("same spec encoded to different bytes")
	}
}

func TestDecodeRejectsDamage(t *testing.T) {
	enc, err := mustGenerate(t, specFixture()).Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	cases := []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"empty", func(b []byte) []byte { return nil }},
		{"header only", func(b []byte) []byte { return b[:8] }},
		{"truncated payload", func(b []byte) []byte { return b[:len(b)/2] }},
		{"truncated checksum", func(b []byte) []byte { return b[:len(b)-5] }},
		{"bad magic", func(b []byte) []byte { b[0] ^= 0xff; return b }},
		{"version bump", func(b []byte) []byte { b[5] = 2; return b }},
		{"length lies high", func(b []byte) []byte { b[6] = 0xff; return b }},
		{"length lies low", func(b []byte) []byte { b[9]--; return b }},
		{"payload bitflip", func(b []byte) []byte { b[20] ^= 0x40; return b }},
		{"checksum bitflip", func(b []byte) []byte { b[len(b)-1] ^= 1; return b }},
		{"trailing garbage", func(b []byte) []byte { return append(b, 0xaa) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			buf := tc.mut(append([]byte{}, enc...))
			tr, err := Decode(buf)
			if err == nil {
				t.Fatalf("Decode accepted damaged input (%s): %+v", tc.name, tr)
			}
		})
	}
	// The pristine copy still decodes — the mutations above worked on copies.
	if _, err := Decode(enc); err != nil {
		t.Fatalf("pristine encoding stopped decoding: %v", err)
	}
}

// TestDecodeRejectsInvalidPayload covers well-formed envelopes whose JSON
// payload violates trace semantics: the decoder must run full validation,
// not just checksum the bytes.
func TestDecodeRejectsInvalidPayload(t *testing.T) {
	bad := &Trace{
		Version: TraceVersion, Nodes: 8, Horizon: 10,
		Arrivals: []Arrival{{Step: 3, Src: 1, Dst: 1}}, // self pair
	}
	// Encode validates and would refuse, so build the envelope by hand
	// around the invalid payload.
	payload, err := canon.Marshal(bad)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if _, err := Decode(rebuildEnvelope(payload)); err == nil {
		t.Fatalf("Decode accepted a self-addressed arrival")
	}
}

// rebuildEnvelope wraps an arbitrary payload in a well-formed trace
// envelope (correct magic, version, length, checksum).
func rebuildEnvelope(payload []byte) []byte {
	out := make([]byte, 0, traceHeaderLen+len(payload)+traceSumLen)
	out = append(out, traceMagic[:]...)
	out = binary.BigEndian.AppendUint16(out, TraceVersion)
	out = binary.BigEndian.AppendUint32(out, uint32(len(payload)))
	out = append(out, payload...)
	sum := sha256.Sum256(payload)
	return append(out, sum[:]...)
}
