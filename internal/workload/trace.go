package workload

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"

	"repro/internal/canon"
	"repro/internal/paths"
	"repro/internal/sim"
)

// TraceVersion is the current trace-format version. Decoders reject
// other versions cleanly: replayability is a compatibility promise, and
// silently reinterpreting a future format would break it.
const TraceVersion = 1

// traceMagic opens every encoded trace.
var traceMagic = [4]byte{'O', 'W', 'T', 'R'}

// envelope layout: magic (4) | version uint16 BE (2) | payload length
// uint32 BE (4) | payload (canonical JSON) | SHA-256 of payload (32).
const (
	traceHeaderLen = 10
	traceSumLen    = sha256.Size
)

// Arrival is one request of a trace: at Step, node Src asks to send one
// message to node Dst. Cohort indexes the generating spec's cohort (for
// provenance and per-cohort reporting).
type Arrival struct {
	// Step is the arrival step in [0, Horizon).
	Step int `json:"step"`
	// Src is the source node.
	Src int `json:"src"`
	// Dst is the destination node (never equal to Src).
	Dst int `json:"dst"`
	// Cohort is the index of the generating cohort.
	Cohort int `json:"cohort"`
}

// Trace is a materialized workload: the full arrival list plus the
// generating spec for provenance. A trace is the replayable unit — its
// canonical encoding (internal/canon) is its content address, so equal
// workloads dedupe in the optnetd store and replay byte-identically.
type Trace struct {
	// Version is the trace-format version (TraceVersion).
	Version int `json:"version"`
	// Nodes is the node universe arrivals are drawn over.
	Nodes int `json:"nodes"`
	// Horizon is the generation horizon; every Step is below it.
	Horizon int `json:"horizon"`
	// Spec is the normalized generating spec (nil for hand-built traces).
	Spec *Spec `json:"spec"`
	// Arrivals are the requests in nondecreasing step order.
	Arrivals []Arrival `json:"arrivals"`
}

// Validate checks the trace's internal consistency: version, bounds,
// step ordering, self-pair freedom, and (when the generating spec is
// present) spec agreement.
func (t *Trace) Validate() error {
	if t == nil {
		return fmt.Errorf("workload: nil trace")
	}
	if t.Version != TraceVersion {
		return fmt.Errorf("workload: unsupported trace version %d (have %d)", t.Version, TraceVersion)
	}
	if t.Nodes < 2 || t.Nodes > maxNodes {
		return fmt.Errorf("workload: trace nodes %d out of range [2, %d]", t.Nodes, maxNodes)
	}
	if t.Horizon < 1 || t.Horizon > maxHorizon {
		return fmt.Errorf("workload: trace horizon %d out of range [1, %d]", t.Horizon, maxHorizon)
	}
	if len(t.Arrivals) > MaxTraceArrivals {
		return fmt.Errorf("workload: trace has %d arrivals, cap %d", len(t.Arrivals), MaxTraceArrivals)
	}
	cohorts := maxCohorts
	if t.Spec != nil {
		if err := t.Spec.Validate(); err != nil {
			return err
		}
		if t.Spec.Nodes != t.Nodes || t.Spec.Horizon != t.Horizon {
			return fmt.Errorf("workload: trace geometry %d/%d disagrees with its spec %d/%d",
				t.Nodes, t.Horizon, t.Spec.Nodes, t.Spec.Horizon)
		}
		cohorts = len(t.Spec.Cohorts)
	}
	prev := 0
	for i, a := range t.Arrivals {
		if a.Step < 0 || a.Step >= t.Horizon {
			return fmt.Errorf("workload: arrival %d step %d out of [0, %d)", i, a.Step, t.Horizon)
		}
		if a.Step < prev {
			return fmt.Errorf("workload: arrival %d step %d out of order (previous %d)", i, a.Step, prev)
		}
		prev = a.Step
		if a.Src < 0 || a.Src >= t.Nodes || a.Dst < 0 || a.Dst >= t.Nodes {
			return fmt.Errorf("workload: arrival %d pair (%d, %d) out of [0, %d)", i, a.Src, a.Dst, t.Nodes)
		}
		if a.Src == a.Dst {
			return fmt.Errorf("workload: arrival %d is self-addressed (node %d)", i, a.Src)
		}
		if a.Cohort < 0 || a.Cohort >= cohorts {
			return fmt.Errorf("workload: arrival %d cohort %d out of [0, %d)", i, a.Cohort, cohorts)
		}
	}
	return nil
}

// Key returns the trace's content address: the hex SHA-256 of its
// canonical encoding. Equal traces — independently generated or decoded
// from disk — share a key.
func (t *Trace) Key() (string, error) {
	if err := t.Validate(); err != nil {
		return "", err
	}
	return canon.Hash(t)
}

// Encode serializes the trace into the versioned envelope: a magic +
// version + length header, the canonical JSON payload, and a SHA-256
// payload checksum. The payload bytes are canonical, so Encode is
// deterministic and the encoding doubles as the content address's
// preimage.
func (t *Trace) Encode() ([]byte, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	payload, err := canon.Marshal(t)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, traceHeaderLen+len(payload)+traceSumLen)
	out = append(out, traceMagic[:]...)
	out = binary.BigEndian.AppendUint16(out, TraceVersion)
	out = binary.BigEndian.AppendUint32(out, uint32(len(payload)))
	out = append(out, payload...)
	sum := sha256.Sum256(payload)
	return append(out, sum[:]...), nil
}

// Decode parses an encoded trace. Corrupted, truncated, or
// version-bumped inputs are rejected with an error — never a panic —
// mirroring the job store's posture toward torn tails: damaged state is
// surfaced, not reinterpreted.
func Decode(data []byte) (*Trace, error) {
	if len(data) < traceHeaderLen+traceSumLen {
		return nil, fmt.Errorf("workload: trace truncated at %d bytes (header needs %d)", len(data), traceHeaderLen+traceSumLen)
	}
	if [4]byte(data[:4]) != traceMagic {
		return nil, fmt.Errorf("workload: bad trace magic %q", data[:4])
	}
	version := int(binary.BigEndian.Uint16(data[4:6]))
	if version != TraceVersion {
		return nil, fmt.Errorf("workload: unsupported trace version %d (have %d)", version, TraceVersion)
	}
	plen := int(binary.BigEndian.Uint32(data[6:10]))
	if plen != len(data)-traceHeaderLen-traceSumLen {
		return nil, fmt.Errorf("workload: trace payload length %d disagrees with input size %d", plen, len(data))
	}
	payload := data[traceHeaderLen : traceHeaderLen+plen]
	sum := sha256.Sum256(payload)
	if [traceSumLen]byte(data[traceHeaderLen+plen:]) != sum {
		return nil, fmt.Errorf("workload: trace checksum mismatch (corrupted payload)")
	}
	var t Trace
	if err := json.Unmarshal(payload, &t); err != nil {
		return nil, fmt.Errorf("workload: trace payload: %w", err)
	}
	if t.Version != version {
		return nil, fmt.Errorf("workload: payload version %d disagrees with envelope %d", t.Version, version)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	// The format admits one spelling per trace: the payload must be the
	// canonical encoding, so an encoded trace's bytes are exactly its
	// content address's preimage.
	canonical, err := canon.Marshal(&t)
	if err != nil {
		return nil, err
	}
	if !bytes.Equal(payload, canonical) {
		return nil, fmt.Errorf("workload: trace payload is not in canonical form")
	}
	return &t, nil
}

// Requests materializes the trace against a routed network: one
// sim.Request per arrival, with the path chosen by the selector at the
// arrival's source/destination and IDs equal to arrival indices. Paths
// are fixed up front, as in the paper.
func (t *Trace) Requests(sel paths.Selector, length int) []sim.Request {
	reqs := make([]sim.Request, len(t.Arrivals))
	for i, a := range t.Arrivals {
		reqs[i] = sim.Request{
			ID:      i,
			Path:    sel(a.Src, a.Dst),
			Length:  length,
			Arrival: a.Step,
		}
	}
	return reqs
}

// Stats summarizes a trace for inspection tooling.
type Stats struct {
	// Arrivals is the total request count.
	Arrivals int
	// PerCohort counts requests per cohort index.
	PerCohort []int
	// OfferedLoad is Arrivals / Horizon in requests per step.
	OfferedLoad float64
	// PeakStep is the step with the most arrivals; PeakCount its count.
	PeakStep int
	// PeakCount is the arrival count of the peak step.
	PeakCount int
	// Sources and Destinations count distinct endpoints.
	Sources int
	// Destinations counts distinct destination nodes.
	Destinations int
	// TopDestShare is the fraction of arrivals targeting the most popular
	// destination — the fan-in concentration measure.
	TopDestShare float64
}

// Stats computes the trace's summary.
func (t *Trace) Stats() Stats {
	s := Stats{Arrivals: len(t.Arrivals), PeakStep: -1}
	if t.Horizon > 0 {
		s.OfferedLoad = float64(len(t.Arrivals)) / float64(t.Horizon)
	}
	maxCohort := 0
	for _, a := range t.Arrivals {
		if a.Cohort > maxCohort {
			maxCohort = a.Cohort
		}
	}
	s.PerCohort = make([]int, maxCohort+1)
	srcSeen := make([]bool, t.Nodes)
	dstCount := make([]int, t.Nodes)
	stepCount := make(map[int]int, 64)
	for _, a := range t.Arrivals {
		s.PerCohort[a.Cohort]++
		srcSeen[a.Src] = true
		dstCount[a.Dst]++
		stepCount[a.Step]++
		if c := stepCount[a.Step]; c > s.PeakCount || (c == s.PeakCount && (s.PeakStep < 0 || a.Step < s.PeakStep)) {
			s.PeakCount, s.PeakStep = c, a.Step
		}
	}
	topDest := 0
	for i := 0; i < t.Nodes; i++ {
		if srcSeen[i] {
			s.Sources++
		}
		if dstCount[i] > 0 {
			s.Destinations++
		}
		if dstCount[i] > topDest {
			topDest = dstCount[i]
		}
	}
	if len(t.Arrivals) > 0 {
		s.TopDestShare = float64(topDest) / float64(len(t.Arrivals))
	}
	return s
}
