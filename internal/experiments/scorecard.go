package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/lowerbound"
	"repro/internal/optical"
	"repro/internal/paths"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/witness"
)

// S1Scorecard runs compact versions of the headline checks and prints one
// verdict per claim of the paper — the one-screen reproduction summary.
// Each verdict is computed from fresh seeded runs, not hard-coded.
func S1Scorecard(o Options) (*Table, error) {
	t := &Table{
		ID:      "S1",
		Title:   "Reproduction scorecard: one verdict per headline claim",
		Columns: []string{"claim", "evidence", "holds"},
	}
	src := rng.New(o.Seed ^ 0x51)
	scale := 1
	if o.Quick {
		scale = 0
	}

	// Claim 1: the protocol delivers every leveled workload within the
	// Thm 1.1 round budget T = sqrt(log_a n) + loglog_b n (x a small
	// constant).
	{
		k := 6 + 2*scale
		b := topology.NewButterfly(k)
		prs := paths.ButterflyRandomQFunction(b, 2, src.Split())
		c, err := paths.Build(b.Graph(), prs, paths.ButterflySelector(b))
		if err != nil {
			return nil, err
		}
		res, err := core.Run(c, core.Config{
			Bandwidth: 2, Length: 4, Rule: optical.ServeFirst, AckLength: 1,
		}, src.Split())
		if err != nil {
			return nil, err
		}
		budget := 3 * roundBound11(res.Params)
		t.AddRow("Thm 1.1: leveled rounds within T budget",
			fmt.Sprintf("%d rounds vs budget %.1f", res.TotalRounds, budget),
			res.AllDelivered && float64(res.TotalRounds) <= budget)
	}

	// Claim 2: serve-first on cyclic gadgets needs more rounds than
	// priority (Thm 1.2 vs 1.3 separation).
	{
		structs := 64 << (4 * scale)
		gad := lowerbound.Cyclic(structs, 6, 4)
		sf, err := runTrials(gad.Collection, core.Config{
			Bandwidth: 1, Length: 4, Rule: optical.ServeFirst,
			Schedule: core.ConstantSchedule{Delta: 8}, MaxRounds: 500,
		}, o.trials(5), src)
		if err != nil {
			return nil, err
		}
		pr, err := runTrials(gad.Collection, core.Config{
			Bandwidth: 1, Length: 4, Rule: optical.Priority,
			Priorities: core.RandomRanks{},
			Schedule:   core.ConstantSchedule{Delta: 8}, MaxRounds: 500,
		}, o.trials(5), src)
		if err != nil {
			return nil, err
		}
		t.AddRow("Thm 1.2 vs 1.3: priority beats serve-first on cycles",
			fmt.Sprintf("SF %.1f vs priority %.1f rounds", sf.meanRounds(), pr.meanRounds()),
			sf.meanRounds() > pr.meanRounds())
	}

	// Claim 3: Lemma 2.4 — congestion at most ~halves per round under the
	// halving schedule.
	{
		cgst := 128 << (2 * scale)
		gad := lowerbound.Identical(1, cgst, 6)
		res, err := core.Run(gad.Collection, core.Config{
			Bandwidth: 1, Length: 4, Rule: optical.ServeFirst,
			TrackCongestion: true, MaxRounds: 100,
		}, src.Split())
		if err != nil {
			return nil, err
		}
		ok := res.AllDelivered
		for i := 1; i < len(res.Rounds); i++ {
			prev := float64(res.Rounds[i-1].ResidualCongestion)
			cur := float64(res.Rounds[i].ResidualCongestion)
			if cur > math.Max(prev/2, 4*math.Log2(float64(cgst))) {
				ok = false
			}
		}
		t.AddRow("Lemma 2.4: congestion halves per round",
			fmt.Sprintf("%d rounds from C=%d", res.TotalRounds, cgst), ok)
	}

	// Claim 4: Claim 2.6 — no proper blocking cycles for priority routing
	// on short-cut free collections.
	{
		tor := topology.NewTorus(2, 6+4*scale)
		prs := paths.RandomPermutation(tor.Graph().NumNodes(), src.Split())
		c, err := paths.Build(tor.Graph(), prs, paths.DimOrderTorus(tor))
		if err != nil {
			return nil, err
		}
		res, err := core.Run(c, core.Config{
			Bandwidth: 1, Length: 4, Rule: optical.Priority,
			Priorities: core.RandomRanks{}, RecordCollisions: true,
		}, src.Split())
		if err != nil {
			return nil, err
		}
		a := witness.Analyze(res.RoundTraces)
		t.AddRow("Claim 2.6: priority blocking graphs are forests",
			fmt.Sprintf("%d proper cycles in %d rounds", a.TotalProperCycles(), res.TotalRounds),
			a.SatisfiesClaim26())
	}

	// Claim 5: Thm 1.6 — mesh round counts essentially flat in n.
	{
		small, err := meshRounds(6, src, o)
		if err != nil {
			return nil, err
		}
		big, err := meshRounds(12+12*scale, src, o)
		if err != nil {
			return nil, err
		}
		t.AddRow("Thm 1.6: mesh rounds ~flat in n (loglog growth)",
			fmt.Sprintf("side 6: %.1f rounds, side %d: %.1f rounds", small, 12+12*scale, big),
			big <= small+2)
	}

	// Claim 6: the fitted E4 growth is steeper than the fitted E2 growth
	// per log2 n (serve-first penalty on cyclic collections).
	{
		var e2x, e2y, e4x, e4y []float64
		for _, structs := range []int{8, 64, 512} {
			g1 := lowerbound.Staggered(structs, 4, 12, 4)
			ts1, err := runTrials(g1.Collection, core.Config{
				Bandwidth: 1, Length: 4, Rule: optical.ServeFirst,
				Schedule: core.ConstantSchedule{Delta: 8}, MaxRounds: 500,
			}, o.trials(5), src)
			if err != nil {
				return nil, err
			}
			e2x = append(e2x, log2(float64(g1.Collection.Size())))
			e2y = append(e2y, ts1.meanRounds())
			g2 := lowerbound.Cyclic(structs, 6, 4)
			ts2, err := runTrials(g2.Collection, core.Config{
				Bandwidth: 1, Length: 4, Rule: optical.ServeFirst,
				Schedule: core.ConstantSchedule{Delta: 8}, MaxRounds: 500,
			}, o.trials(5), src)
			if err != nil {
				return nil, err
			}
			e4x = append(e4x, log2(float64(g2.Collection.Size())))
			e4y = append(e4y, ts2.meanRounds())
		}
		f2, err2 := stats.FitLinear(e2x, e2y)
		f4, err4 := stats.FitLinear(e4x, e4y)
		ok := err2 == nil && err4 == nil && f4.Slope > f2.Slope
		t.AddRow("Lower bounds: cyclic growth steeper than staggered",
			fmt.Sprintf("slopes %.2f vs %.2f per log2 n", f4.Slope, f2.Slope), ok)
	}
	return t, nil
}

// meshRounds returns the mean protocol round count for a random function
// on a 2-D mesh of the given side.
func meshRounds(side int, src *rng.Source, o Options) (float64, error) {
	m := topology.NewMesh(2, side)
	prs := paths.RandomFunction(m.Graph().NumNodes(), src.Split())
	c, err := paths.Build(m.Graph(), prs, paths.DimOrderMesh(m))
	if err != nil {
		return 0, err
	}
	ts, err := runTrials(c, core.Config{
		Bandwidth: 2, Length: 4, Rule: optical.ServeFirst, AckLength: 1,
	}, o.trials(5), src)
	if err != nil {
		return 0, err
	}
	return ts.meanRounds(), nil
}
