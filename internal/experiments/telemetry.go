package experiments

import (
	"repro/internal/telemetry"
)

// liveTelemetry, when set, receives the merged telemetry of every
// protocol trial the harness runs: each runTrials worker drives its own
// Collector (the hot path stays allocation-free and lock-free) and
// absorbs it into this aggregate after every trial, so an HTTP exporter
// scraping the aggregate sees progress while long experiments run.
var liveTelemetry *telemetry.Live

// SetLive installs (or, with nil, removes) the live telemetry aggregate
// the trial harness publishes into. Call it before running experiments;
// it must not be called while experiments are in flight.
func SetLive(l *telemetry.Live) { liveTelemetry = l }

// trialShards, when > 1, makes every runTrials worker execute its
// protocol rounds on a sharded cluster simulator instead of a plain
// engine. Results are byte-identical either way (the sharded runner is
// differentially pinned against the single-engine reference), so tables
// produced at any shard count agree bit for bit.
var trialShards int

// SetShards installs the shard count for subsequent experiment trials
// (0 or 1 restores the plain engine). Like SetLive, it must not be
// called while experiments are in flight.
func SetShards(n int) { trialShards = n }

// Shards reports the currently installed shard count.
func Shards() int { return trialShards }
