package experiments

import (
	"repro/internal/telemetry"
)

// liveTelemetry, when set, receives the merged telemetry of every
// protocol trial the harness runs: each runTrials worker drives its own
// Collector (the hot path stays allocation-free and lock-free) and
// absorbs it into this aggregate after every trial, so an HTTP exporter
// scraping the aggregate sees progress while long experiments run.
var liveTelemetry *telemetry.Live

// SetLive installs (or, with nil, removes) the live telemetry aggregate
// the trial harness publishes into. Call it before running experiments;
// it must not be called while experiments are in flight.
func SetLive(l *telemetry.Live) { liveTelemetry = l }
