package experiments

import (
	"math"

	"repro/internal/core"
	"repro/internal/optical"
	"repro/internal/paths"
	"repro/internal/rng"
	"repro/internal/topology"
)

// E1LeveledUpper reproduces Main Theorem 1.1's upper bound: routing random
// q-functions along the leveled unique paths of butterflies with
// serve-first routers. The measured time divided by the theorem's bound
// L*C/B + (sqrt(log_a n)+loglog_b n)(D+L+L log n/B) should stay roughly
// constant across the size ladder.
func E1LeveledUpper(o Options) (*Table, error) {
	t := &Table{
		ID:    "E1",
		Title: "Main Thm 1.1 upper bound (leveled, serve-first): butterfly random q-functions",
		Notes: []string{
			"bound = L*C/B + (sqrt(log_a n)+loglog_b n)*(D+L+L*log n/B); time/bound should be ~flat",
		},
		Columns: []string{"k", "n", "D", "C~", "rounds", "Tbound", "time", "bound", "time/bound", "ok"},
	}
	ks := []int{4, 5, 6, 7, 8, 9, 10}
	if o.Quick {
		ks = []int{3, 4}
	}
	src := rng.New(o.Seed ^ 0xE1)
	const q, L, B = 2, 4, 2
	for _, k := range ks {
		b := topology.NewButterfly(k)
		prs := paths.ButterflyRandomQFunction(b, q, src.Split())
		c, err := paths.Build(b.Graph(), prs, paths.ButterflySelector(b))
		if err != nil {
			return nil, err
		}
		ts, err := runTrials(c, core.Config{
			Bandwidth: B, Length: L, Rule: optical.ServeFirst, AckLength: 1,
		}, o.trials(5), src)
		if err != nil {
			return nil, err
		}
		p := ts.Params
		t.AddRow(k, p.N, p.Dilation, p.PathCongestion,
			ts.meanRounds(), roundBound11(p), ts.meanTime(), timeBound11(p),
			ts.meanTime()/timeBound11(p), ts.completedStr())
	}
	return t, nil
}

// E3ShortcutFreeUpper reproduces Main Theorem 1.2's upper bound: routing
// random functions along dimension-order torus paths (short-cut free, not
// leveled) with serve-first routers.
func E3ShortcutFreeUpper(o Options) (*Table, error) {
	t := &Table{
		ID:    "E3",
		Title: "Main Thm 1.2 upper bound (short-cut free, serve-first): torus random functions",
		Notes: []string{
			"bound = L*C/B + (log_a n+loglog_b n)*(D+L+L*log^1.5 n/B)",
		},
		Columns: []string{"side", "n", "D", "C~", "rounds", "Tbound", "time", "bound", "time/bound", "ok"},
	}
	sides := []int{6, 8, 12, 16, 24, 32}
	if o.Quick {
		sides = []int{5, 6}
	}
	src := rng.New(o.Seed ^ 0xE3)
	const L, B = 4, 2
	for _, side := range sides {
		tor := topology.NewTorus(2, side)
		prs := paths.RandomFunction(tor.Graph().NumNodes(), src.Split())
		c, err := paths.Build(tor.Graph(), prs, paths.DimOrderTorus(tor))
		if err != nil {
			return nil, err
		}
		ts, err := runTrials(c, core.Config{
			Bandwidth: B, Length: L, Rule: optical.ServeFirst, AckLength: 1,
		}, o.trials(5), src)
		if err != nil {
			return nil, err
		}
		p := ts.Params
		t.AddRow(side, p.N, p.Dilation, p.PathCongestion,
			ts.meanRounds(), roundBound12(p), ts.meanTime(), timeBound12(p),
			ts.meanTime()/timeBound12(p), ts.completedStr())
	}
	return t, nil
}

// E7NodeSymmetric reproduces Theorem 1.5: routing a random function on
// bounded-degree node-symmetric networks with priority routers over a
// translation-invariant shortest-path system. The path congestion should
// be O(D^2 + log n) and the time O(L*D^2/B + (sqrt(log_D n)+loglog n)(D+L)).
func E7NodeSymmetric(o Options) (*Table, error) {
	t := &Table{
		ID:    "E7",
		Title: "Thm 1.5 (node-symmetric, priority): random functions on translation path systems",
		Notes: []string{
			"check C~ = O(D^2 + log n) and time = O(L*D^2/B + (sqrt(log_D n)+loglog n)*(D+L))",
		},
		Columns: []string{"network", "n", "D", "C~", "D^2+logn", "rounds", "Tpred", "time", "bound", "time/bound", "ok"},
	}
	type spec struct {
		name string
		vt   topology.VertexTransitive
	}
	var specs []spec
	if o.Quick {
		specs = []spec{
			{"torus(2,5)", topology.NewTorus(2, 5)},
			{"hypercube(4)", topology.NewHypercube(4)},
		}
	} else {
		specs = []spec{
			{"torus(2,8)", topology.NewTorus(2, 8)},
			{"torus(2,12)", topology.NewTorus(2, 12)},
			{"torus(3,6)", topology.NewTorus(3, 6)},
			{"hypercube(7)", topology.NewHypercube(7)},
			{"circulant(128,{1,8,27})", topology.NewCirculant(128, []int{1, 8, 27})},
			{"wrapped-butterfly(4)", topology.NewWrappedButterfly(4)},
			{"ccc(5)", topology.NewCCC(5)},
			{"star-graph(5)", topology.NewStarGraph(5)},
		}
	}
	src := rng.New(o.Seed ^ 0xE7)
	const L, B = 4, 2
	for _, sp := range specs {
		g := sp.vt.Graph()
		prs := paths.RandomFunction(g.NumNodes(), src.Split())
		sel := paths.TranslationSystem(sp.vt)
		c, err := paths.Build(g, prs, sel)
		if err != nil {
			return nil, err
		}
		ts, err := runTrials(c, core.Config{
			Bandwidth: B, Length: L, Rule: optical.Priority,
			Priorities: core.RandomRanks{}, AckLength: 1,
		}, o.trials(5), src)
		if err != nil {
			return nil, err
		}
		p := ts.Params
		diam := g.Eccentricity(0) // = diameter for vertex-transitive graphs
		d2 := float64(diam*diam) + log2(float64(g.NumNodes()))
		tpred := math.Sqrt(logBase(float64(maxi(diam, 2)), float64(p.N))) +
			math.Log2(math.Max(log2(float64(p.N)), 2))
		bound := float64(L)*float64(diam*diam)/float64(B) +
			tpred*float64(diam+L)
		t.AddRow(sp.name, g.NumNodes(), diam, p.PathCongestion, d2,
			ts.meanRounds(), tpred, ts.meanTime(), bound,
			ts.meanTime()/math.Max(bound, 1), ts.completedStr())
	}
	return t, nil
}

// E8Meshes reproduces Theorem 1.6: random functions on d-dimensional
// meshes with serve-first routers and dimension-order paths. The round
// count should stay O(sqrt(d) + loglog n) — in particular essentially flat
// in n for fixed d (the paper's exponential improvement over the O(log n)
// rounds of Cypher et al.).
func E8Meshes(o Options) (*Table, error) {
	t := &Table{
		ID:    "E8",
		Title: "Thm 1.6 (meshes, serve-first): random functions, dimension-order paths",
		Notes: []string{
			"rounds should track sqrt(d)+loglog n: near-flat growth in n for fixed d",
		},
		Columns: []string{"d", "side", "n", "D", "C~", "rounds", "sqrt(d)+loglog n", "time", "ok"},
	}
	type cfg struct{ d, side int }
	var cfgs []cfg
	if o.Quick {
		cfgs = []cfg{{1, 16}, {2, 5}}
	} else {
		cfgs = []cfg{
			{1, 32}, {1, 128}, {1, 512}, {1, 2048},
			{2, 8}, {2, 16}, {2, 24}, {2, 32},
			{3, 6}, {3, 8},
		}
	}
	src := rng.New(o.Seed ^ 0xE8)
	const L, B = 4, 2
	for _, cf := range cfgs {
		m := topology.NewMesh(cf.d, cf.side)
		n := m.Graph().NumNodes()
		prs := paths.RandomFunction(n, src.Split())
		c, err := paths.Build(m.Graph(), prs, paths.DimOrderMesh(m))
		if err != nil {
			return nil, err
		}
		ts, err := runTrials(c, core.Config{
			Bandwidth: B, Length: L, Rule: optical.ServeFirst, AckLength: 1,
		}, o.trials(5), src)
		if err != nil {
			return nil, err
		}
		p := ts.Params
		pred := math.Sqrt(float64(cf.d)) + math.Log2(math.Max(log2(float64(n)), 2))
		t.AddRow(cf.d, cf.side, n, p.Dilation, p.PathCongestion,
			ts.meanRounds(), pred, ts.meanTime(), ts.completedStr())
	}
	return t, nil
}

// E9ButterflyQ reproduces Theorem 1.7: random q-functions from the inputs
// to the outputs of a butterfly for growing q. The L*q*log n/B term makes
// total time grow ~linearly in q, while the round count shrinks like
// sqrt(log n / log(q log n)).
func E9ButterflyQ(o Options) (*Table, error) {
	t := &Table{
		ID:    "E9",
		Title: "Thm 1.7 (butterfly, serve-first): random q-functions, q ladder",
		Notes: []string{
			"bound = L*q*log n/B + sqrt(log n/log(q log n))*(L + log n + L*log n/B)",
		},
		Columns: []string{"q", "n", "D", "C~", "rounds", "Tpred", "time", "bound", "time/bound", "ok"},
	}
	k := 7
	qs := []int{1, 2, 4, 8}
	if o.Quick {
		k = 4
		qs = []int{1, 2}
	}
	src := rng.New(o.Seed ^ 0xE9)
	const L, B = 4, 2
	b := topology.NewButterfly(k)
	for _, q := range qs {
		prs := paths.ButterflyRandomQFunction(b, q, src.Split())
		c, err := paths.Build(b.Graph(), prs, paths.ButterflySelector(b))
		if err != nil {
			return nil, err
		}
		ts, err := runTrials(c, core.Config{
			Bandwidth: B, Length: L, Rule: optical.ServeFirst, AckLength: 1,
		}, o.trials(5), src)
		if err != nil {
			return nil, err
		}
		p := ts.Params
		logn := float64(k) // the theorem's log n is the butterfly dimension
		tpred := math.Sqrt(logn / math.Max(math.Log2(float64(q)*logn), 1))
		bound := float64(L*q)*logn/float64(B) +
			tpred*(float64(L)+logn+float64(L)*logn/float64(B))
		t.AddRow(q, p.N, p.Dilation, p.PathCongestion,
			ts.meanRounds(), tpred, ts.meanTime(), bound,
			ts.meanTime()/math.Max(bound, 1), ts.completedStr())
	}
	return t, nil
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}
