package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/lowerbound"
	"repro/internal/optical"
	"repro/internal/rng"
	"repro/internal/stats"
)

// E2StaggeredLower reproduces the lower bound of Main Theorems 1.1/1.3
// (Section 2.2, Figure 5): staggered structures force Omega(sqrt(log_a n))
// rounds even though each structure has constant congestion. The delay
// range is held constant (as the optimal adversary-facing choice Delta =
// O(L) of the proof) and the measured round count should grow like
// sqrt(log n / log(B*Delta/L)).
func E2StaggeredLower(o Options) (*Table, error) {
	t := &Table{
		ID:    "E2",
		Title: "Main Thm 1.1/1.3 lower bound (Fig. 5): staggered chains, fixed Delta",
		Notes: []string{
			"rounds should grow ~ sqrt(log n): chain eliminations repeat across rounds",
		},
		Columns: []string{"structs", "per", "n", "rounds(mean)", "rounds(max)", "sqrt(log n)", "ok"},
	}
	type cfg struct{ structures, per int }
	var cfgs []cfg
	if o.Quick {
		cfgs = []cfg{{4, 3}, {16, 3}}
	} else {
		cfgs = []cfg{{8, 3}, {32, 4}, {128, 4}, {512, 5}, {2048, 5}, {8192, 6}}
	}
	src := rng.New(o.Seed ^ 0xE2)
	const L, B = 4, 1
	var xs, ys []float64
	for _, cf := range cfgs {
		d := (L-1)/2 + 1
		D := cf.per*d + 4
		b := lowerbound.Staggered(cf.structures, cf.per, D, L)
		ts, err := runTrials(b.Collection, core.Config{
			Bandwidth: B, Length: L, Rule: optical.ServeFirst,
			Schedule:  core.ConstantSchedule{Delta: 2 * L},
			MaxRounds: 400,
		}, o.trials(5), src)
		if err != nil {
			return nil, err
		}
		n := b.Collection.Size()
		xs = append(xs, math.Sqrt(log2(float64(n))))
		ys = append(ys, ts.meanRounds())
		t.AddRow(cf.structures, cf.per, n,
			ts.meanRounds(), stats.Max(ts.Rounds), math.Sqrt(log2(float64(n))),
			ts.completedStr())
	}
	if fit, err := stats.FitLinear(xs, ys); err == nil {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"fit rounds ~ %.2f*sqrt(log n) + %.2f (R^2 = %.3f)", fit.Slope, fit.Intercept, fit.R2))
	}
	return t, nil
}

// E4CyclicLower reproduces the lower bound of Main Theorem 1.2
// (Section 3.2, Figure 6): cyclic 3-path structures under the serve-first
// rule force Omega(log_a n) rounds with a fixed delay range — each
// structure independently stays fully blocked with constant probability
// per round, so clearing n/6 structures takes ~log n rounds.
func E4CyclicLower(o Options) (*Table, error) {
	t := &Table{
		ID:    "E4",
		Title: "Main Thm 1.2 lower bound (Fig. 6): cyclic triples, serve-first, fixed Delta",
		Notes: []string{
			"rounds should grow ~ log n (vs sqrt(log n) for E2): the serve-first penalty",
		},
		Columns: []string{"structs", "n", "rounds(mean)", "rounds(max)", "log2 n", "ok"},
	}
	var structs []int
	if o.Quick {
		structs = []int{4, 16}
	} else {
		structs = []int{8, 32, 128, 512, 2048, 8192}
	}
	src := rng.New(o.Seed ^ 0xE4)
	const L, B = 4, 1
	var xs, ys []float64
	for _, s := range structs {
		b := lowerbound.Cyclic(s, L/2+4, L)
		ts, err := runTrials(b.Collection, core.Config{
			Bandwidth: B, Length: L, Rule: optical.ServeFirst,
			Schedule:  core.ConstantSchedule{Delta: 2 * L},
			MaxRounds: 1000,
		}, o.trials(5), src)
		if err != nil {
			return nil, err
		}
		n := b.Collection.Size()
		xs = append(xs, log2(float64(n)))
		ys = append(ys, ts.meanRounds())
		t.AddRow(s, n, ts.meanRounds(), stats.Max(ts.Rounds), log2(float64(n)),
			ts.completedStr())
	}
	if fit, err := stats.FitLinear(xs, ys); err == nil {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"fit rounds ~ %.2f*log2(n) + %.2f (R^2 = %.3f)", fit.Slope, fit.Intercept, fit.R2))
	}
	return t, nil
}

// E5PriorityVsServeFirst is the paper's headline separation (Main Thm 1.2
// vs 1.3): on the same cyclic short-cut free collections, priority routers
// with per-round random distinct ranks beat serve-first routers, because
// the priority rule breaks mutual-elimination cycles (Claim 2.6's
// argument). The advantage grows with n.
func E5PriorityVsServeFirst(o Options) (*Table, error) {
	t := &Table{
		ID:    "E5",
		Title: "Thm 1.2 vs 1.3: serve-first vs priority on cyclic structures",
		Notes: []string{
			"priority breaks blocking cycles: rounds(SF)/rounds(Prio) should grow with n",
		},
		Columns: []string{"structs", "n", "SF rounds", "Prio rounds", "SF/Prio", "SF ok", "Prio ok"},
	}
	var structs []int
	if o.Quick {
		structs = []int{4, 16}
	} else {
		structs = []int{8, 32, 128, 512, 2048, 8192}
	}
	src := rng.New(o.Seed ^ 0xE5)
	const L, B = 4, 1
	for _, s := range structs {
		b := lowerbound.Cyclic(s, L/2+4, L)
		sf, err := runTrials(b.Collection, core.Config{
			Bandwidth: B, Length: L, Rule: optical.ServeFirst,
			Schedule:  core.ConstantSchedule{Delta: 2 * L},
			MaxRounds: 1000,
		}, o.trials(5), src)
		if err != nil {
			return nil, err
		}
		pr, err := runTrials(b.Collection, core.Config{
			Bandwidth: B, Length: L, Rule: optical.Priority,
			Priorities: core.RandomRanks{},
			Schedule:   core.ConstantSchedule{Delta: 2 * L},
			MaxRounds:  1000,
		}, o.trials(5), src)
		if err != nil {
			return nil, err
		}
		ratio := sf.meanRounds() / math.Max(pr.meanRounds(), 1)
		t.AddRow(s, b.Collection.Size(), sf.meanRounds(), pr.meanRounds(), ratio,
			sf.completedStr(), pr.completedStr())
	}
	return t, nil
}

// E6CongestionDecay reproduces Lemma 2.4 (and the flavor of Lemma 2.10):
// on a type-2 structure of C identical paths, the residual path congestion
// under the halving schedule drops to at most max(C/2^(t-1), O(log n))
// per round, w.h.p.
func E6CongestionDecay(o Options) (*Table, error) {
	congestion := 256
	if o.Quick {
		congestion = 32
	}
	t := &Table{
		ID:    "E6",
		Title: "Lemma 2.4: residual path congestion per round on C identical paths",
		Notes: []string{
			"residual C_t should stay below ~max(C/2^(t-1), c*log n) with the halving schedule",
		},
		Columns: []string{"round", "Delta_t", "residual C~_t", "C/2^(t-1)", "survived"},
	}
	src := rng.New(o.Seed ^ 0xE6)
	const L, B, D = 4, 1, 6
	b := lowerbound.Identical(1, congestion, D)
	res, err := core.Run(b.Collection, core.Config{
		Bandwidth: B, Length: L, Rule: optical.ServeFirst,
		TrackCongestion: true,
		MaxRounds:       200,
	}, src)
	if err != nil {
		return nil, err
	}
	for _, r := range res.Rounds {
		pred := float64(congestion) / math.Pow(2, float64(r.Round-1))
		t.AddRow(r.Round, r.DelayRange, r.ResidualCongestion, pred, r.ActiveBefore)
	}
	if res.AllDelivered {
		t.Notes = append(t.Notes, "all worms delivered")
	} else {
		t.Notes = append(t.Notes, "WARNING: protocol incomplete")
	}
	return t, nil
}
