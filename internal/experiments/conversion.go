package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/optical"
	"repro/internal/paths"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/topology"
)

// E10Conversion addresses the paper's framing question ("how far one can
// get without wavelength conversion", Section 1.2/4): the same workloads
// routed with and without wavelength conversion at every router, across a
// bandwidth ladder. Conversion mainly removes the residual-collision
// rounds; the first-round L*C/B transmission term is unchanged, so the
// advantage is a constant factor — consistent with the paper's thesis
// that simple converter-free routers already achieve near-optimal time.
func E10Conversion(o Options) (*Table, error) {
	t := &Table{
		ID:    "E10",
		Title: "Sec. 4 extension: wavelength conversion vs none (torus random functions)",
		Notes: []string{
			"conversion removes retry rounds but not the L*C/B term",
		},
		Columns: []string{"B", "no-conv rounds", "no-conv time", "conv rounds", "conv time", "time ratio", "ok"},
	}
	side := 12
	if o.Quick {
		side = 5
	}
	src := rng.New(o.Seed ^ 0x10)
	tor := topology.NewTorus(2, side)
	prs := paths.RandomFunction(tor.Graph().NumNodes(), src.Split())
	c, err := paths.Build(tor.Graph(), prs, paths.DimOrderTorus(tor))
	if err != nil {
		return nil, err
	}
	const L = 8
	for _, B := range []int{2, 4, 8} {
		base, err := runTrials(c, core.Config{
			Bandwidth: B, Length: L, Rule: optical.ServeFirst, AckLength: 1,
		}, o.trials(5), src)
		if err != nil {
			return nil, err
		}
		conv, err := runTrials(c, core.Config{
			Bandwidth: B, Length: L, Rule: optical.ServeFirst, AckLength: 1,
			Conversion: sim.FullConversion,
		}, o.trials(5), src)
		if err != nil {
			return nil, err
		}
		t.AddRow(B, base.meanRounds(), base.meanTime(), conv.meanRounds(), conv.meanTime(),
			base.meanTime()/conv.meanTime(),
			fmt.Sprintf("%s/%s", base.completedStr(), conv.completedStr()))
	}
	return t, nil
}

// E11SparseConversion explores the paper's closing question (Section 4,
// citing Lee & Li [23]): what if only a few routers can convert
// wavelengths? The fraction of converting routers is swept from 0 to 1;
// the benefit should saturate well below full deployment.
func E11SparseConversion(o Options) (*Table, error) {
	t := &Table{
		ID:    "E11",
		Title: "Sec. 4 open question: sparse wavelength conversion (fraction sweep)",
		Notes: []string{
			"collision retries shrink as the converting fraction grows; gains saturate early",
		},
		Columns: []string{"fraction", "rounds", "time", "collisions/round1", "ok"},
	}
	side := 12
	if o.Quick {
		side = 5
	}
	src := rng.New(o.Seed ^ 0x11)
	tor := topology.NewTorus(2, side)
	n := tor.Graph().NumNodes()
	prs := paths.RandomFunction(n, src.Split())
	c, err := paths.Build(tor.Graph(), prs, paths.DimOrderTorus(tor))
	if err != nil {
		return nil, err
	}
	const L, B = 8, 3
	for _, fr := range []float64{0, 0.25, 0.5, 0.75, 1} {
		// A deterministic converting subset of the routers.
		perm := rng.New(o.Seed ^ 0x1111).Perm(n)
		cut := int(fr * float64(n))
		converts := make(map[graph.NodeID]bool, cut)
		for _, u := range perm[:cut] {
			converts[u] = true
		}
		var conv func(graph.NodeID) bool
		if cut > 0 {
			conv = func(u graph.NodeID) bool { return converts[u] }
		}
		rounds, times, coll1 := 0.0, 0.0, 0.0
		trials := o.trials(5)
		completed := 0
		for i := 0; i < trials; i++ {
			res, err := core.Run(c, core.Config{
				Bandwidth: B, Length: L, Rule: optical.ServeFirst, AckLength: 1,
				Conversion: conv,
			}, src.Split())
			if err != nil {
				return nil, err
			}
			rounds += float64(res.TotalRounds)
			times += float64(res.TotalTime)
			coll1 += float64(res.Rounds[0].Collisions)
			if res.AllDelivered {
				completed++
			}
		}
		ft := float64(trials)
		t.AddRow(fr, rounds/ft, times/ft, coll1/ft, fmt.Sprintf("%d/%d", completed, trials))
	}
	return t, nil
}
