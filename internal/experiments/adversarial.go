package experiments

import (
	"repro/internal/core"
	"repro/internal/optical"
	"repro/internal/paths"
	"repro/internal/rng"
	"repro/internal/topology"
)

// E17AdversarialPermutations contrasts the random workloads of the
// application theorems with classic worst-case permutations. The paper's
// bounds are stated in terms of the path congestion C~, so deterministic
// permutations that concentrate traffic (bit-reversal and transpose under
// dimension-order routing) should cost proportionally more time — the
// protocol has no bad inputs beyond what C~ already predicts.
func E17AdversarialPermutations(o Options) (*Table, error) {
	t := &Table{
		ID:    "E17",
		Title: "Random vs adversarial permutations: C~ predicts the cost",
		Notes: []string{
			"time/C~ stays flat across random and adversarial permutations:",
			"the path congestion fully predicts the cost, no hidden bad cases",
		},
		Columns: []string{"network", "permutation", "n", "C~", "rounds", "time", "time/C~", "ok"},
	}
	k := 8 // mesh side 2^(k/2), butterfly dim k
	if o.Quick {
		k = 4
	}
	src := rng.New(o.Seed ^ 0x17)
	const L, B = 4, 2

	// Mesh scenarios: random vs transpose vs bit-reversal (row-major ids).
	side := 1 << (k / 2)
	m := topology.NewMesh(2, side)
	n := m.Graph().NumNodes()
	meshWLs := []struct {
		name string
		prs  []paths.Pair
	}{
		{"random", paths.RandomPermutation(n, src.Split())},
		{"transpose", paths.Transpose(side)},
		{"bit-reversal", paths.BitReversal(k)},
	}
	for _, wl := range meshWLs {
		c, err := paths.Build(m.Graph(), wl.prs, paths.DimOrderMesh(m))
		if err != nil {
			return nil, err
		}
		ts, err := runTrials(c, core.Config{
			Bandwidth: B, Length: L, Rule: optical.ServeFirst, AckLength: 1,
		}, o.trials(5), src)
		if err != nil {
			return nil, err
		}
		p := ts.Params
		t.AddRow(m.Name(), wl.name, p.N, p.PathCongestion, ts.meanRounds(),
			ts.meanTime(), ts.meanTime()/float64(p.PathCongestion), ts.completedStr())
	}

	// Butterfly scenarios: random vs bit-reversal input-output permutation.
	bf := topology.NewButterfly(k)
	rev := make([]int, bf.Rows())
	for r := range rev {
		for b := 0; b < k; b++ {
			if r&(1<<b) != 0 {
				rev[r] |= 1 << (k - 1 - b)
			}
		}
	}
	bfWLs := []struct {
		name string
		prs  []paths.Pair
	}{
		{"random", paths.ButterflyRandomQFunction(bf, 1, src.Split())},
		{"bit-reversal", paths.ButterflyPermutation(bf, rev)},
	}
	for _, wl := range bfWLs {
		c, err := paths.Build(bf.Graph(), wl.prs, paths.ButterflySelector(bf))
		if err != nil {
			return nil, err
		}
		ts, err := runTrials(c, core.Config{
			Bandwidth: B, Length: L, Rule: optical.ServeFirst, AckLength: 1,
		}, o.trials(5), src)
		if err != nil {
			return nil, err
		}
		p := ts.Params
		t.AddRow(bf.Name(), wl.name, p.N, p.PathCongestion, ts.meanRounds(),
			ts.meanTime(), ts.meanTime()/float64(p.PathCongestion), ts.completedStr())
	}
	return t, nil
}
