package experiments

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/optical"
	"repro/internal/paths"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topology"
)

// E16ElectronicBaseline compares the paper's bufferless all-optical
// protocol with the electronic store-and-forward router its introduction
// argues against. In raw step counts the electronic router wins at these
// network sizes: it buffers at every hop and never retries, and its
// per-hop serialization (hops*L) is cheap when D is small. But a step of
// electronic routing is slower than a step of optical transmission — the
// paper cites ~50 Gbit/s electronic modulation against ~25 THz fiber
// bandwidth, a gap of two to three orders of magnitude. The break-even
// column reports how much slower the electronic clock may be before the
// optical protocol wins outright: a single-digit factor, far below the
// technology gap.
func E16ElectronicBaseline(o Options) (*Table, error) {
	t := &Table{
		ID:    "E16",
		Title: "Intro contrast: all-optical trial-and-failure vs electronic store-and-forward",
		Notes: []string{
			"optical = measured makespan incl. retries; SaF = store-and-forward;",
			"wormhole = buffered stalling wormhole (the strongest electronic router)",
			"break-even = optical/wormhole: the electronic clock slowdown at which",
			"optical wins (the paper cites a ~500x optics-vs-electronics gap)",
		},
		Columns: []string{"workload", "L", "B", "optical steps", "SaF steps", "wormhole steps", "break-even vs WH", "ok"},
	}
	side := 12
	if o.Quick {
		side = 5
	}
	src := rng.New(o.Seed ^ 0x16)
	// A mesh, not a torus: dimension-order channel dependencies are
	// acyclic on meshes, so the buffered wormhole baseline cannot
	// deadlock (on tori its wrap-around cycles do deadlock — the
	// wormhole tests demonstrate that separately).
	msh := topology.NewMesh(2, side)
	n := msh.Graph().NumNodes()

	type wlSpec struct {
		name string
		prs  []paths.Pair
	}
	workloads := []wlSpec{
		{"permutation", paths.RandomPermutation(n, src.Split())},
		{"random function", paths.RandomFunction(n, src.Split())},
		{"4-function", paths.RandomQFunction(4, n, src.Split())},
	}
	const B = 2
	for _, wl := range workloads {
		c, err := paths.Build(msh.Graph(), wl.prs, paths.DimOrderMesh(msh))
		if err != nil {
			return nil, err
		}
		for _, L := range []int{4, 16} {
			opt, err := runTrials(c, core.Config{
				Bandwidth: B, Length: L, Rule: optical.ServeFirst, AckLength: 1,
			}, o.trials(5), src)
			if err != nil {
				return nil, err
			}
			saf, err := baseline.RunCollection(c, L, B)
			if err != nil {
				return nil, err
			}
			wh, err := baseline.RunWormholeCollection(c, L, B)
			if err != nil {
				return nil, err
			}
			whStr := fmt.Sprintf("%d", wh.Makespan)
			if len(wh.Deadlocked) > 0 {
				whStr += " (deadlock)"
			}
			measured := mean(opt.Measured)
			t.AddRow(wl.name, L, B, measured, saf.Makespan, whStr,
				measured/float64(wh.Makespan), opt.completedStr())
		}
	}
	return t, nil
}

// A7Synchronization asks whether the paper's synchronized rounds matter:
// the same batch routed (a) by the trial-and-failure protocol with its
// global round structure and (b) by fully unsynchronized per-source
// retries with exponential backoff (the dynamic machinery with all
// arrivals at step 0). Unsynchronized retries avoid waiting for the round
// horizon, so they finish earlier in wall-clock makespan — the round
// structure buys analyzability, not speed.
func A7Synchronization(o Options) (*Table, error) {
	t := &Table{
		ID:    "A7",
		Title: "Ablation: synchronized rounds vs unsynchronized per-source retries",
		Notes: []string{
			"same batch, same link model; 'sync' uses the protocol's accounted time,",
			"'async' the measured makespan of free-running retries",
		},
		Columns: []string{"B", "sync rounds", "sync time", "async attempts/worm", "async makespan", "async p95 latency", "ok"},
	}
	c, src, err := ablationWorkload(o, o.Seed^0xA7)
	if err != nil {
		return nil, err
	}
	const L = 4
	for _, B := range []int{1, 2, 4} {
		syncRes, err := runTrials(c, core.Config{
			Bandwidth: B, Length: L, Rule: optical.ServeFirst, AckLength: 1,
		}, o.trials(5), src)
		if err != nil {
			return nil, err
		}
		reqs := make([]sim.Request, c.Size())
		for i := range reqs {
			reqs[i] = sim.Request{ID: i, Path: c.Path(i), Length: L}
		}
		async, err := sim.RunDynamic(c.Graph(), reqs, sim.DynamicConfig{
			Sim:   sim.Config{Bandwidth: B, Rule: optical.ServeFirst, AckLength: 1},
			Retry: sim.ExponentialBackoff{Base: 2 * L},
		}, src.Split())
		if err != nil {
			return nil, err
		}
		var lats []float64
		delivered := 0
		for _, oc := range async.Outcomes {
			if oc.Delivered {
				delivered++
				lats = append(lats, float64(oc.Latency))
			}
		}
		p95 := 0.0
		if len(lats) > 0 {
			p95 = stats.Quantile(lats, 0.95)
		}
		t.AddRow(B, syncRes.meanRounds(), syncRes.meanTime(),
			float64(async.TotalAttempts)/float64(len(reqs)),
			async.Makespan, p95,
			delivered == len(reqs))
	}
	return t, nil
}
