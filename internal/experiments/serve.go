package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// JobRunner adapts the experiment registry to the job server's
// experiment seam (jobs.ExperimentRunner). The returned function runs
// one experiment and yields its canonical table JSON plus the rendered
// text report — exactly the two artifacts the result store memoizes, so
// a cached experiment replays byte-for-byte. The unnamed function type
// keeps this package independent of internal/jobs (the dependency
// points the other way: cmd/optnetd wires the two together).
func JobRunner() func(id string, seed uint64, trials int, quick bool) (json.RawMessage, string, error) {
	return func(id string, seed uint64, trials int, quick bool) (json.RawMessage, string, error) {
		tbl, err := Run(id, Options{Seed: seed, Trials: trials, Quick: quick})
		if err != nil {
			return nil, "", fmt.Errorf("experiments: %s: %w", id, err)
		}
		var jb bytes.Buffer
		if err := tbl.WriteJSON(&jb); err != nil {
			return nil, "", err
		}
		var tb bytes.Buffer
		tbl.Fprint(&tb)
		return json.RawMessage(jb.Bytes()), tb.String(), nil
	}
}
