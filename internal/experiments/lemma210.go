package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/lowerbound"
	"repro/internal/optical"
	"repro/internal/rng"
)

// E14Lemma210 reproduces Lemma 2.10 / Appendix A.3: on a type-2 structure
// of C identical paths with a FIXED delay range Delta >= L*(C/B + 2), the
// number of surviving worms can only decay doubly exponentially — the
// lemma's lower bound is C / gamma^(2^(t-1)-1) with
// gamma = 32*B*Delta/((L-1)*C). Consequently clearing the structure takes
// Theta(log log C) rounds, the loglog term of the main theorems.
func E14Lemma210(o Options) (*Table, error) {
	t := &Table{
		ID:    "E14",
		Title: "Lemma 2.10: doubly-exponential survivor decay on C identical paths, fixed Delta",
		Notes: []string{
			"the per-round decay factor itself grows (doubly exponential decay),",
			"so rounds-to-clear ~ loglog C; Lemma 2.10's explicit lower bound holds",
			"with lots of room (its constant 32 is loose, like all proof constants)",
		},
		Columns: []string{"C", "round", "survivors(mean)", "decay factor", "lemma bound", "loglog C"},
	}
	congestions := []int{64, 256, 1024}
	if o.Quick {
		congestions = []int{16, 64}
	}
	src := rng.New(o.Seed ^ 0x14)
	const L, B, D = 4, 1, 6
	for _, C := range congestions {
		delta := L * (C/B + 2) // the lemma's minimum delay range
		gamma := 32.0 * float64(B*delta) / float64((L-1)*C)
		trials := o.trials(5)
		// survivors[t] accumulates the active count at the START of round
		// t+1 over trials; rounds beyond a trial's finish add zero.
		var survivors []float64
		maxRounds := 0
		for i := 0; i < trials; i++ {
			b := lowerbound.Identical(1, C, D)
			res, err := core.Run(b.Collection, core.Config{
				Bandwidth: B, Length: L, Rule: optical.ServeFirst,
				Schedule:  core.ConstantSchedule{Delta: delta},
				MaxRounds: 100,
			}, src.Split())
			if err != nil {
				return nil, err
			}
			for r, st := range res.Rounds {
				for len(survivors) <= r {
					survivors = append(survivors, 0)
				}
				survivors[r] += float64(st.ActiveBefore)
			}
			if res.TotalRounds > maxRounds {
				maxRounds = res.TotalRounds
			}
		}
		loglog := math.Log2(math.Max(math.Log2(float64(C)), 2))
		for r := 0; r < maxRounds; r++ {
			bound := float64(C) / math.Pow(gamma, math.Pow(2, float64(r))-1)
			cur := survivors[r] / float64(trials)
			decay := "-"
			if r > 0 && cur > 0 {
				decay = fmt.Sprintf("%.1f", survivors[r-1]/float64(trials)/cur)
			}
			t.AddRow(C, r+1, cur, decay, fmt.Sprintf("%.3g", bound), loglog)
		}
	}
	return t, nil
}

// A5Constants calibrates the halving schedule's leading constant C1
// against the paper's 32: how small can the delay ranges go before the
// protocol starts needing extra rounds or failing? The total time is
// roughly proportional to C1 once C1 dominates, so the practical optimum
// sits far below the proof constant.
func A5Constants(o Options) (*Table, error) {
	t := &Table{
		ID:    "A5",
		Title: "Ablation: halving-schedule constant C1 (paper uses 32)",
		Notes: []string{
			"smaller C1 = shorter rounds but more retries; the optimum is far below 32",
		},
		Columns: []string{"C1", "rounds", "time", "ok"},
	}
	c, src, err := ablationWorkload(o, o.Seed^0xA5)
	if err != nil {
		return nil, err
	}
	for _, c1 := range []float64{0.25, 0.5, 1, 2, 4, 8, 16, 32} {
		ts, err := runTrials(c, core.Config{
			Bandwidth: 2, Length: 4, Rule: optical.ServeFirst,
			Schedule:  core.HalvingSchedule{C1: c1, C2: c1 / 2, C3: c1 / 2},
			AckLength: 1,
		}, o.trials(5), src)
		if err != nil {
			return nil, err
		}
		t.AddRow(c1, ts.meanRounds(), ts.meanTime(), ts.completedStr())
	}
	return t, nil
}
