package experiments

import (
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/optical"
	"repro/internal/paths"
	"repro/internal/rng"
	"repro/internal/topology"
)

// The robustness family stresses the Trial-and-Failure protocol beyond
// the paper's fault-free model: links fail and recover mid-run, acks are
// swallowed, couplers stick. The protocol's own retry discipline is the
// repair mechanism — a worm whose attempt dies at a dark link is simply
// not acknowledged and retries next round, and degraded-mode rounds
// additionally reroute around links known to be down at round start (see
// core.Config.Faults). The tables report what faults actually cost:
// delivery stays complete while rounds and accounted time inflate.

// robustnessLadder runs the fault ladder for one collection and rule and
// appends one row per outage count. Each trial draws an independent
// random plan from its own rng stream, scaled to the fault-free runtime
// so outages actually overlap the run.
func robustnessLadder(t *Table, c *paths.Collection, rule optical.Rule, outages []int, o Options, src *rng.Source) error {
	const L, B = 4, 2
	cfg := core.Config{Bandwidth: B, Length: L, Rule: rule, AckLength: 1}
	base, err := runTrials(c, cfg, o.trials(5), src)
	if err != nil {
		return err
	}
	g := c.Graph()
	horizon := max(int(base.meanTime()), 16)
	for _, k := range outages {
		ts := base
		if k > 0 {
			gen := faults.GenConfig{
				Horizon:     horizon,
				LinkOutages: k,
				AckLosses:   k / 2,
				MinDuration: horizon / 8,
				MaxDuration: horizon / 2,
			}
			prep := func(trial int, tcfg *core.Config, tsrc *rng.Source) {
				tcfg.Faults = faults.MustRandom(g, B, gen, tsrc.Split())
			}
			ts, err = runTrialsPrep(c, cfg, o.trials(5), src, prep)
			if err != nil {
				return err
			}
		}
		t.AddRow(rule.String(), k, ts.Params.N,
			ts.meanRounds(), ts.meanTime(), ts.meanTime()/base.meanTime(),
			ts.meanDelivered(), ts.meanFaultKills(), ts.meanRerouted(),
			ts.completedStr())
	}
	return nil
}

var robustnessColumns = []string{
	"rule", "outages", "n", "rounds", "time", "time/base",
	"delivered", "fault-kills", "rerouted", "ok",
}

// R1MeshRobustness sweeps random link-outage plans over a mesh with
// dimension-order routes under both contention rules. Outage windows are
// drawn across the fault-free runtime, with ack-loss faults riding along
// at half the outage count.
func R1MeshRobustness(o Options) (*Table, error) {
	t := &Table{
		ID:    "R1",
		Title: "Robustness: random link outages on a mesh (dim-order routes)",
		Notes: []string{
			"per-trial random fault plans scaled to the fault-free runtime",
			"fault kills retry like collisions; reroutes dodge links down at round start",
		},
		Columns: robustnessColumns,
	}
	side := 8
	outages := []int{0, 2, 4, 8}
	if o.Quick {
		side = 5
		outages = []int{0, 2, 4}
	}
	src := rng.New(o.Seed ^ 0x51)
	m := topology.NewMesh(2, side)
	prs := paths.RandomFunction(m.Graph().NumNodes(), src.Split())
	c, err := paths.Build(m.Graph(), prs, paths.DimOrderMesh(m))
	if err != nil {
		return nil, err
	}
	for _, rule := range []optical.Rule{optical.ServeFirst, optical.Priority} {
		if err := robustnessLadder(t, c, rule, outages, o, src.Split()); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// R2ButterflyRobustness repeats the outage sweep on a butterfly routed by
// random q-functions — the paper's leveled showcase topology. The
// butterfly's unique input-output paths leave no reroute slack, so
// outages translate purely into retry rounds, a sharper contrast to the
// mesh where detours absorb part of the damage.
func R2ButterflyRobustness(o Options) (*Table, error) {
	t := &Table{
		ID:    "R2",
		Title: "Robustness: random link outages on a butterfly (random q-functions)",
		Notes: []string{
			"unique butterfly paths cannot detour: faults cost retry rounds only",
		},
		Columns: robustnessColumns,
	}
	k := 4
	outages := []int{0, 2, 4, 8}
	if o.Quick {
		k = 3
		outages = []int{0, 2, 4}
	}
	src := rng.New(o.Seed ^ 0x52)
	b := topology.NewButterfly(k)
	prs := paths.ButterflyRandomQFunction(b, 1, src.Split())
	c, err := paths.Build(b.Graph(), prs, paths.ButterflySelector(b))
	if err != nil {
		return nil, err
	}
	for _, rule := range []optical.Rule{optical.ServeFirst, optical.Priority} {
		if err := robustnessLadder(t, c, rule, outages, o, src.Split()); err != nil {
			return nil, err
		}
	}
	return t, nil
}
