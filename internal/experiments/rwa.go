package experiments

import (
	"repro/internal/core"
	"repro/internal/optical"
	"repro/internal/paths"
	"repro/internal/rng"
	"repro/internal/topology"
)

// E13RWAContrast contrasts the paper's protocol with the static
// routing-and-wavelength-assignment literature it departs from
// (Section 1.2): a conflict-free wavelength assignment lets all worms
// launch at once (time = D + L) but needs at least edge-congestion many
// wavelengths; the Trial-and-Failure protocol works with ANY bandwidth B,
// paying retry rounds instead. The table reports the wavelengths a greedy
// RWA uses against the protocol's time at small fixed B.
func E13RWAContrast(o Options) (*Table, error) {
	t := &Table{
		ID:    "E13",
		Title: "Sec. 1.2 contrast: static RWA wavelengths vs Trial-and-Failure at fixed B",
		Notes: []string{
			"RWA time = D+L with 'needed' wavelengths; the protocol delivers with any B",
		},
		Columns: []string{"side", "n", "C(edge)", "RWA needed", "RWA time", "B", "T&F rounds", "T&F time", "ok"},
	}
	sides := []int{8, 16, 24}
	if o.Quick {
		sides = []int{5, 6}
	}
	src := rng.New(o.Seed ^ 0x13)
	const L = 4
	for _, side := range sides {
		tor := topology.NewTorus(2, side)
		prs := paths.RandomFunction(tor.Graph().NumNodes(), src.Split())
		c, err := paths.Build(tor.Graph(), prs, paths.DimOrderTorus(tor))
		if err != nil {
			return nil, err
		}
		colors, needed := c.GreedyWavelengthAssignment()
		if !c.ValidWavelengthAssignment(colors) {
			panic("experiments: greedy RWA produced an invalid assignment")
		}
		rwaTime := c.Dilation() + L
		for _, B := range []int{1, 2} {
			ts, err := runTrials(c, core.Config{
				Bandwidth: B, Length: L, Rule: optical.ServeFirst, AckLength: 1,
			}, o.trials(5), src)
			if err != nil {
				return nil, err
			}
			t.AddRow(side, c.Size(), c.EdgeCongestion(), needed, rwaTime,
				B, ts.meanRounds(), ts.meanTime(), ts.completedStr())
		}
	}
	return t, nil
}
