package experiments

import (
	"testing"

	"repro/internal/core"
	"repro/internal/optical"
	"repro/internal/paths"
	"repro/internal/rng"
	"repro/internal/telemetry"
	"repro/internal/topology"
)

// TestRunTrialsPublishesLiveTelemetry: with a live aggregate installed,
// the trial harness' concurrent workers must publish per-trial deltas into
// it, and the aggregate must account for every trial; without one, results
// are identical (the probe never steers).
func TestRunTrialsPublishesLiveTelemetry(t *testing.T) {
	tor := topology.NewTorus(2, 4)
	prs := paths.RandomPermutation(tor.Graph().NumNodes(), rng.New(3))
	col, err := paths.Build(tor.Graph(), prs, paths.DimOrderTorus(tor))
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{Bandwidth: 2, Length: 3, Rule: optical.ServeFirst, AckLength: 1}
	const trials = 6

	live := telemetry.NewLive()
	SetLive(live)
	defer SetLive(nil)
	withTel, err := runTrials(col, cfg, trials, rng.New(77))
	if err != nil {
		t.Fatal(err)
	}
	SetLive(nil)
	without, err := runTrials(col, cfg, trials, rng.New(77))
	if err != nil {
		t.Fatal(err)
	}
	for i := range withTel.Rounds {
		if withTel.Rounds[i] != without.Rounds[i] || withTel.Measured[i] != without.Measured[i] {
			t.Fatalf("trial %d: telemetry changed the result: %v/%v vs %v/%v", i,
				withTel.Rounds[i], withTel.Measured[i], without.Rounds[i], without.Measured[i])
		}
	}

	s := live.Snapshot()
	var rounds uint64
	for _, r := range withTel.Rounds {
		rounds += uint64(r)
	}
	if s.Runs != rounds || s.RoundsObserved != rounds {
		t.Errorf("aggregate runs/rounds = %d/%d, want %d (sum over %d trials)",
			s.Runs, s.RoundsObserved, rounds, trials)
	}
	wantAcked := uint64(trials * col.Size())
	if withTel.Completed == trials && s.Acked != wantAcked {
		t.Errorf("aggregate acked = %d, want %d", s.Acked, wantAcked)
	}
	if s.Steps == 0 || s.MessageBusySlotSteps == 0 {
		t.Errorf("aggregate saw no engine activity: %+v", s)
	}
}
