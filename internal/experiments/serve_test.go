package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestWriteJSONGolden pins the canonical table encoding byte-for-byte.
// The job store content-addresses stored experiment output, so any drift
// here silently orphans cached results — update only deliberately.
func TestWriteJSONGolden(t *testing.T) {
	tbl := &Table{
		ID:      "X1",
		Title:   "golden",
		Notes:   []string{"a note"},
		Columns: []string{"n", "value"},
	}
	tbl.AddRow(4, 1.5)
	tbl.AddRow(8, 0.1)
	var buf bytes.Buffer
	if err := tbl.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	const want = `{
  "id": "X1",
  "title": "golden",
  "notes": [
    "a note"
  ],
  "columns": [
    "n",
    "value"
  ],
  "rows": [
    [
      4,
      1.5
    ],
    [
      8,
      0.1
    ]
  ]
}
`
	if buf.String() != want {
		t.Errorf("canonical table encoding drifted:\n got: %q\nwant: %q", buf.String(), want)
	}
}

// TestWriteJSONDeterministic: two renderings of one table are identical.
func TestWriteJSONDeterministic(t *testing.T) {
	tbl := &Table{ID: "X2", Title: "det", Columns: []string{"a"}}
	tbl.AddRow("v")
	var b1, b2 bytes.Buffer
	if err := tbl.WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := tbl.WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Error("same table rendered differently")
	}
}

// TestJobRunner: the adapter executes an experiment and returns its two
// serving artifacts, deterministically.
func TestJobRunner(t *testing.T) {
	run := JobRunner()
	table, text, err := run("A4", 1, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		ID   string  `json:"id"`
		Rows [][]any `json:"rows"`
	}
	if err := json.Unmarshal(table, &decoded); err != nil {
		t.Fatalf("adapter table is not valid JSON: %v", err)
	}
	if decoded.ID != "A4" || len(decoded.Rows) == 0 {
		t.Errorf("adapter table: %+v", decoded)
	}
	if !strings.Contains(text, "A4") {
		t.Errorf("adapter text missing the experiment header:\n%s", text)
	}
	table2, text2, err := run("A4", 1, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	if string(table2) != string(table) || text2 != text {
		t.Error("adapter output is not deterministic across calls")
	}
	if _, _, err := run("NOPE", 1, 1, true); err == nil {
		t.Error("unknown experiment accepted")
	}
}
