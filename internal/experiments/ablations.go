package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/lowerbound"
	"repro/internal/optical"
	"repro/internal/paths"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/witness"
)

// ablationWorkload builds the shared workload of the A-series ablations:
// a random function on a 2-D torus with dimension-order paths.
func ablationWorkload(o Options, seed uint64) (*paths.Collection, *rng.Source, error) {
	side := 12
	if o.Quick {
		side = 5
	}
	src := rng.New(seed)
	tor := topology.NewTorus(2, side)
	prs := paths.RandomFunction(tor.Graph().NumNodes(), src.Split())
	c, err := paths.Build(tor.Graph(), prs, paths.DimOrderTorus(tor))
	return c, src, err
}

// A1Schedules compares delay schedules on one workload: the paper's
// halving schedule against a fixed range and doubling backoff. The
// halving schedule's total time should win once C is large, because
// Sum Delta_t telescopes to O(L*C/B) instead of T*L*C/B.
func A1Schedules(o Options) (*Table, error) {
	t := &Table{
		ID:      "A1",
		Title:   "Ablation: delay schedules (halving vs fixed vs doubling)",
		Columns: []string{"schedule", "rounds", "time", "measured", "ok"},
	}
	c, src, err := ablationWorkload(o, o.Seed^0xA1)
	if err != nil {
		return nil, err
	}
	scheds := []core.DelaySchedule{
		core.HalvingSchedule{},
		core.PaperExact(),
		core.FixedSchedule{Factor: 2},
		core.DoublingSchedule{},
	}
	names := []string{"halving", "paper-exact", "fixed", "doubling"}
	for i, s := range scheds {
		ts, err := runTrials(c, core.Config{
			Bandwidth: 2, Length: 4, Rule: optical.ServeFirst,
			Schedule: s, AckLength: 1,
		}, o.trials(5), src)
		if err != nil {
			return nil, err
		}
		t.AddRow(names[i], ts.meanRounds(), ts.meanTime(), mean(ts.Measured), ts.completedStr())
	}
	return t, nil
}

// A2Wreckage compares the Drain (physical wreckage) and Vanish (analysis)
// policies: the round counts should agree within noise, validating that
// the paper's clean pairwise model predicts the physical one.
func A2Wreckage(o Options) (*Table, error) {
	t := &Table{
		ID:      "A2",
		Title:   "Ablation: wreckage policy (drain vs vanish)",
		Columns: []string{"policy", "rule", "rounds", "time", "ok"},
	}
	c, src, err := ablationWorkload(o, o.Seed^0xA2)
	if err != nil {
		return nil, err
	}
	for _, rule := range []optical.Rule{optical.ServeFirst, optical.Priority} {
		for _, pol := range []sim.WreckagePolicy{sim.Drain, sim.Vanish} {
			ts, err := runTrials(c, core.Config{
				Bandwidth: 2, Length: 4, Rule: rule,
				Priorities: core.RandomRanks{},
				Wreckage:   pol, AckLength: 1,
			}, o.trials(5), src)
			if err != nil {
				return nil, err
			}
			t.AddRow(pol.String(), rule.String(), ts.meanRounds(), ts.meanTime(), ts.completedStr())
		}
	}
	return t, nil
}

// A3Acks compares acknowledgement models: oracle (instant), single-flit
// ack worms, and full-length ack worms in the reserved band. Real acks
// cost duplicate deliveries but must not change the round-count shape
// (the paper doubles C to account for them).
func A3Acks(o Options) (*Table, error) {
	t := &Table{
		ID:      "A3",
		Title:   "Ablation: acknowledgement model (oracle vs 1-flit vs L-flit acks)",
		Columns: []string{"ackLen", "rounds", "time", "duplicates", "ok"},
	}
	c, src, err := ablationWorkload(o, o.Seed^0xA3)
	if err != nil {
		return nil, err
	}
	const L = 4
	for _, ack := range []int{0, 1, L} {
		rounds, times, dups, completed := 0.0, 0.0, 0, 0
		n := o.trials(5)
		for i := 0; i < n; i++ {
			res, err := core.Run(c, core.Config{
				Bandwidth: 2, Length: L, Rule: optical.ServeFirst, AckLength: ack,
			}, src.Split())
			if err != nil {
				return nil, err
			}
			rounds += float64(res.TotalRounds)
			times += float64(res.TotalTime)
			dups += res.DuplicateAcks
			if res.AllDelivered {
				completed++
			}
		}
		t.AddRow(ack, rounds/float64(n), times/float64(n), dups, completed)
	}
	return t, nil
}

// A4TiePolicy compares the simultaneous-arrival policies of the
// serve-first coupler: eliminating all contenders versus letting an
// arbitrary one win. The shape must be insensitive to this modelling
// freedom.
func A4TiePolicy(o Options) (*Table, error) {
	t := &Table{
		ID:      "A4",
		Title:   "Ablation: serve-first tie policy on simultaneous arrivals",
		Columns: []string{"tie", "rounds", "time", "ok"},
	}
	c, src, err := ablationWorkload(o, o.Seed^0xA4)
	if err != nil {
		return nil, err
	}
	names := map[optical.TiePolicy]string{
		optical.TieEliminateAll:    "eliminate-all",
		optical.TieArbitraryWinner: "arbitrary-winner",
	}
	for _, tie := range []optical.TiePolicy{optical.TieEliminateAll, optical.TieArbitraryWinner} {
		ts, err := runTrials(c, core.Config{
			Bandwidth: 2, Length: 4, Rule: optical.ServeFirst,
			Tie: tie, AckLength: 1,
		}, o.trials(5), src)
		if err != nil {
			return nil, err
		}
		t.AddRow(names[tie], ts.meanRounds(), ts.meanTime(), ts.completedStr())
	}
	return t, nil
}

// F4Witness reproduces Figure 4 / Claim 2.6 empirically: per-round
// blocking graphs are forests for leveled serve-first and short-cut free
// priority routing, while cyclic gadgets under serve-first exhibit
// directed blocking cycles.
func F4Witness(o Options) (*Table, error) {
	t := &Table{
		ID:      "F4",
		Title:   "Claim 2.6: blocking graphs from traces (forest property and cycles)",
		Columns: []string{"scenario", "rounds", "tieCycles", "properCycles", "claim2.6", "maxDepth"},
	}
	src := rng.New(o.Seed ^ 0xF4)
	k := 5
	structs := 64
	if o.Quick {
		k = 3
		structs = 8
	}

	// Scenario 1: leveled butterfly, serve-first.
	b := topology.NewButterfly(k)
	prs := paths.ButterflyRandomQFunction(b, 2, src.Split())
	c1, err := paths.Build(b.Graph(), prs, paths.ButterflySelector(b))
	if err != nil {
		return nil, err
	}
	if err := f4Row(t, "leveled butterfly / serve-first", c1, core.Config{
		Bandwidth: 1, Length: 4, Rule: optical.ServeFirst, RecordCollisions: true,
	}, src); err != nil {
		return nil, err
	}

	// Scenario 2: short-cut free torus, priority.
	tor := topology.NewTorus(2, 2*k)
	prs2 := paths.RandomPermutation(tor.Graph().NumNodes(), src.Split())
	c2, err := paths.Build(tor.Graph(), prs2, paths.DimOrderTorus(tor))
	if err != nil {
		return nil, err
	}
	if err := f4Row(t, "shortcut-free torus / priority", c2, core.Config{
		Bandwidth: 1, Length: 4, Rule: optical.Priority,
		Priorities: core.RandomRanks{}, RecordCollisions: true,
	}, src); err != nil {
		return nil, err
	}

	// Scenario 3: cyclic gadget, serve-first: cycles expected.
	lb := lowerbound.Cyclic(structs, 6, 4)
	if err := f4Row(t, "cyclic gadget / serve-first", lb.Collection, core.Config{
		Bandwidth: 1, Length: 4, Rule: optical.ServeFirst,
		Schedule: core.ConstantSchedule{Delta: 4}, MaxRounds: 500,
		RecordCollisions: true,
	}, src); err != nil {
		return nil, err
	}
	return t, nil
}

func f4Row(t *Table, name string, c *paths.Collection, cfg core.Config, src *rng.Source) error {
	res, err := core.Run(c, cfg, src.Split())
	if err != nil {
		return err
	}
	a := witness.Analyze(res.RoundTraces)
	maxDepth := 0
	for i := 0; i < c.Size(); i++ {
		if d := a.WitnessDepth(i); d > maxDepth {
			maxDepth = d
		}
	}
	t.AddRow(name, res.TotalRounds, a.TotalCycles()-a.TotalProperCycles(),
		a.TotalProperCycles(), a.SatisfiesClaim26(), maxDepth)
	return nil
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// A6WavelengthChoice compares the paper's uniformly random wavelength
// draws against a conflict-aware static choice (greedy RWA coloring
// reduced mod B). With B at least the coloring size the first round is
// collision-free; below it the coloring still separates most conflicting
// pairs, trading a global precomputation for fewer retry rounds — the
// paper's random choice needs no coordination at all, which is its point.
func A6WavelengthChoice(o Options) (*Table, error) {
	t := &Table{
		ID:      "A6",
		Title:   "Ablation: wavelength choice (random vs RWA-colored mod B)",
		Columns: []string{"B", "policy", "rounds", "time", "round1 collisions", "ok"},
	}
	c, src, err := ablationWorkload(o, o.Seed^0xA6)
	if err != nil {
		return nil, err
	}
	_, needed := c.GreedyWavelengthAssignment()
	t.Notes = append(t.Notes, fmt.Sprintf("greedy RWA coloring of this workload uses %d wavelengths", needed))
	for _, B := range []int{2, 4, needed} {
		for _, pol := range []core.WavelengthPolicy{core.RandomWavelengths{}, &core.ColoredWavelengths{}} {
			trials := o.trials(5)
			rounds, times, coll1, completed := 0.0, 0.0, 0.0, 0
			for i := 0; i < trials; i++ {
				res, err := core.Run(c, core.Config{
					Bandwidth: B, Length: 4, Rule: optical.ServeFirst,
					Wavelengths: pol, AckLength: 1,
				}, src.Split())
				if err != nil {
					return nil, err
				}
				rounds += float64(res.TotalRounds)
				times += float64(res.TotalTime)
				coll1 += float64(res.Rounds[0].Collisions)
				if res.AllDelivered {
					completed++
				}
			}
			ft := float64(trials)
			t.AddRow(B, pol.Name(), rounds/ft, times/ft, coll1/ft,
				fmt.Sprintf("%d/%d", completed, trials))
		}
	}
	return t, nil
}

// F5WitnessDepths measures the paper's central proof object directly: the
// distribution of witness-tree depths (how many consecutive rounds each
// worm kept failing) on a congested workload. The upper-bound argument
// shows Pr[depth >= t] decays so fast that T = sqrt(log_a n) + loglog_b n
// bounds the maximum w.h.p.; empirically the histogram collapses
// geometrically or faster.
func F5WitnessDepths(o Options) (*Table, error) {
	t := &Table{
		ID:    "F5",
		Title: "Witness-tree depth distribution (Sec. 2.1's proof object, measured)",
		Notes: []string{
			"count(depth >= t) should collapse at least geometrically in t",
		},
		Columns: []string{"depth", "worms", "fraction"},
	}
	side := 16
	if o.Quick {
		side = 6
	}
	src := rng.New(o.Seed ^ 0xF5)
	tor := topology.NewTorus(2, side)
	// A congested workload: a random 4-function at B=1.
	prs := paths.RandomQFunction(4, tor.Graph().NumNodes(), src.Split())
	c, err := paths.Build(tor.Graph(), prs, paths.DimOrderTorus(tor))
	if err != nil {
		return nil, err
	}
	res, err := core.Run(c, core.Config{
		Bandwidth: 1, Length: 4, Rule: optical.ServeFirst,
		RecordCollisions: true,
	}, src.Split())
	if err != nil {
		return nil, err
	}
	a := witness.Analyze(res.RoundTraces)
	counts := map[int]int{}
	maxDepth := 0
	for i := 0; i < c.Size(); i++ {
		d := a.WitnessDepth(i)
		counts[d]++
		if d > maxDepth {
			maxDepth = d
		}
	}
	n := float64(c.Size())
	for d := 0; d <= maxDepth; d++ {
		t.AddRow(d, counts[d], float64(counts[d])/n)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("n=%d worms, C~=%d, %d rounds to clear", c.Size(),
			res.Params.PathCongestion, res.TotalRounds))
	return t, nil
}
