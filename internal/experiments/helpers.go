package experiments

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/paths"
	"repro/internal/shardsim"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// trialStats aggregates protocol runs over repeated trials.
type trialStats struct {
	Rounds     []float64
	Time       []float64 // the paper's accounted time
	Measured   []float64 // simulated makespan sum
	Delivered  []float64 // per-trial fraction of worms acknowledged
	FaultKills []float64 // per-trial fault-killed trains (degraded runs)
	Rerouted   []float64 // per-trial degraded-mode reroutes
	Completed  int
	Params     core.Params
}

// trialPrep customizes one trial's configuration before it runs. The
// robustness experiments use it to draw an independent fault plan per
// trial; drawing only from the trial's own stream keeps the whole table
// reproducible regardless of worker scheduling.
type trialPrep func(trial int, cfg *core.Config, src *rng.Source)

// runTrials executes the protocol `trials` times with independent rng
// streams split from src and aggregates the results. Trials are striped
// over a fixed pool of workers (one per core), each holding its own pooled
// simulator engine so the hot path allocates nothing in steady state;
// determinism is preserved because every stream is split from src before
// any goroutine starts and results are collected by index.
func runTrials(c *paths.Collection, cfg core.Config, trials int, src *rng.Source) (*trialStats, error) {
	return runTrialsPrep(c, cfg, trials, src, nil)
}

// runTrialsPrep is runTrials with a per-trial configuration hook.
func runTrialsPrep(c *paths.Collection, cfg core.Config, trials int, src *rng.Source, prep trialPrep) (*trialStats, error) {
	sources := src.SplitN(trials)
	results := make([]*core.Result, trials)
	errs := make([]error, trials)
	workers := runtime.GOMAXPROCS(0)
	if workers > trials {
		workers = trials
	}
	var wg sync.WaitGroup
	var next atomic.Int64
	live := liveTelemetry
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var eng core.Simulator = sim.NewEngine() // goroutine-local; never shared
			if trialShards > 1 {
				eng = shardsim.New(trialShards)
			}
			wcfg := cfg
			var col *telemetry.Collector
			if live != nil {
				// Per-goroutine collector: hooks stay lock-free; the merged
				// deltas land in the shared aggregate after every trial.
				col = telemetry.NewCollector()
				wcfg.Probe = col
			}
			for {
				i := int(next.Add(1)) - 1
				if i >= trials {
					return
				}
				tcfg := wcfg
				if prep != nil {
					prep(i, &tcfg, sources[i])
				}
				results[i], errs[i] = core.RunWithSimulator(c, tcfg, sources[i], eng)
				if col != nil {
					live.Absorb(col)
				}
			}
		}()
	}
	wg.Wait()
	ts := &trialStats{}
	for i := 0; i < trials; i++ {
		if errs[i] != nil {
			return nil, errs[i]
		}
		res := results[i]
		ts.Rounds = append(ts.Rounds, float64(res.TotalRounds))
		ts.Time = append(ts.Time, float64(res.TotalTime))
		ts.Measured = append(ts.Measured, float64(res.MeasuredTime))
		if n := res.Params.N; n > 0 {
			ts.Delivered = append(ts.Delivered, float64(n-len(res.StillActive))/float64(n))
		}
		ts.FaultKills = append(ts.FaultKills, float64(res.TotalFaultKills))
		ts.Rerouted = append(ts.Rerouted, float64(res.TotalRerouted))
		if res.AllDelivered {
			ts.Completed++
		}
		ts.Params = res.Params
	}
	return ts, nil
}

func (ts *trialStats) meanRounds() float64     { return stats.Mean(ts.Rounds) }
func (ts *trialStats) meanTime() float64       { return stats.Mean(ts.Time) }
func (ts *trialStats) meanDelivered() float64  { return stats.Mean(ts.Delivered) }
func (ts *trialStats) meanFaultKills() float64 { return stats.Mean(ts.FaultKills) }
func (ts *trialStats) meanRerouted() float64   { return stats.Mean(ts.Rerouted) }

// completedStr formats "completed/trials".
func (ts *trialStats) completedStr() string {
	return fmt.Sprintf("%d/%d", ts.Completed, len(ts.Rounds))
}

// log2 of x clamped at >= 2 so the paper's log n terms stay positive.
func log2(x float64) float64 { return math.Log2(math.Max(x, 2)) }

// paperAlpha is alpha = C + B*(D/L + 1) + 2 of the main theorems.
func paperAlpha(p core.Params) float64 {
	return float64(p.PathCongestion) +
		float64(p.Bandwidth)*(float64(p.Dilation)/float64(p.Length)+1) + 2
}

// paperBeta is beta = alpha/C + 2.
func paperBeta(p core.Params) float64 {
	return paperAlpha(p)/math.Max(float64(p.PathCongestion), 1) + 2
}

// logBase returns log_base(x), clamped to be >= 0 with base > 1.
func logBase(base, x float64) float64 {
	base = math.Max(base, 2)
	x = math.Max(x, 2)
	return math.Log(x) / math.Log(base)
}

// roundBound11 is the round count T of Main Theorems 1.1/1.3:
// sqrt(log_alpha n) + log log_beta n.
func roundBound11(p core.Params) float64 {
	n := float64(p.N)
	t := math.Sqrt(logBase(paperAlpha(p), n)) + math.Log2(math.Max(logBase(paperBeta(p), n), 2))
	return math.Max(t, 1)
}

// roundBound12 is the round count of Main Theorem 1.2:
// log_alpha n + log log_beta n.
func roundBound12(p core.Params) float64 {
	n := float64(p.N)
	t := logBase(paperAlpha(p), n) + math.Log2(math.Max(logBase(paperBeta(p), n), 2))
	return math.Max(t, 1)
}

// timeBound11 is the full runtime bound of Main Theorems 1.1/1.3:
// L*C/B + T*(D + L + L*log n/B).
func timeBound11(p core.Params) float64 {
	l, b := float64(p.Length), float64(p.Bandwidth)
	return l*float64(p.PathCongestion)/b +
		roundBound11(p)*(float64(p.Dilation)+l+l*log2(float64(p.N))/b)
}

// timeBound12 is the runtime bound of Main Theorem 1.2:
// L*C/B + T*(D + L + L*log^{3/2} n/B).
func timeBound12(p core.Params) float64 {
	l, b := float64(p.Length), float64(p.Bandwidth)
	logn := log2(float64(p.N))
	return l*float64(p.PathCongestion)/b +
		roundBound12(p)*(float64(p.Dilation)+l+l*math.Pow(logn, 1.5)/b)
}
