package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/optical"
	"repro/internal/paths"
	"repro/internal/rng"
	"repro/internal/topology"
)

// E12MultiHop explores the paper's final Section 4 suggestion: allowing
// each worm a bounded number of hops (conversions to electrical form at
// intermediate routers). Splitting paths into h optical segments shrinks
// the per-stage dilation to ~D/h but repeats the protocol's L*C/B
// transmission term once per stage. The measured totals grow with h,
// quantifying the paper's implicit thesis: with a good delay schedule the
// single-hop trial-and-failure protocol is already near-optimal, so
// electrical buffering stages only add overhead at these congestion
// levels.
func E12MultiHop(o Options) (*Table, error) {
	t := &Table{
		ID:    "E12",
		Title: "Sec. 4 extension: bounded hops (electrical buffering at intermediate routers)",
		Notes: []string{
			"stage-synchronous hops repeat the L*C/B term: time grows with h here",
		},
		Columns: []string{"hops", "segD", "stages", "rounds", "time", "ok"},
	}
	side := 16
	if o.Quick {
		side = 6
	}
	src := rng.New(o.Seed ^ 0x12)
	tor := topology.NewTorus(2, side)
	prs := paths.RandomFunction(tor.Graph().NumNodes(), src.Split())
	c, err := paths.Build(tor.Graph(), prs, paths.DimOrderTorus(tor))
	if err != nil {
		return nil, err
	}
	const L, B = 4, 2
	for _, hops := range []int{1, 2, 4, 8} {
		trials := o.trials(5)
		rounds, times, completed, stages, segD := 0.0, 0.0, 0, 0, 0
		for i := 0; i < trials; i++ {
			mh, err := core.RunMultiHop(c, hops, core.Config{
				Bandwidth: B, Length: L, Rule: optical.ServeFirst, AckLength: 1,
			}, src.Split())
			if err != nil {
				return nil, err
			}
			rounds += float64(mh.TotalRounds)
			times += float64(mh.TotalTime)
			if mh.AllDelivered {
				completed++
			}
			stages = len(mh.Stages)
			segD = mh.SegmentDilation
		}
		ft := float64(trials)
		t.AddRow(hops, segD, stages, rounds/ft, times/ft,
			fmt.Sprintf("%d/%d", completed, trials))
	}
	return t, nil
}
