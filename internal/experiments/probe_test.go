package experiments

import (
	"os"
	"testing"
)

func TestProbeFull(t *testing.T) {
	id := os.Getenv("PROBE")
	if id == "" {
		t.Skip("probe only")
	}
	tbl, err := Run(id, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	tbl.Fprint(os.Stdout)
}
