package experiments

import (
	"fmt"
	"math"

	"repro/internal/optical"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topology"
)

// E15DynamicLoad runs the trial-and-failure discipline in continuous
// operation (the dynamic setting of Ramaswami & Sivarajan [34], which the
// paper cites as the other regime): Poisson-like request arrivals on a
// torus, each source retrying independently with exponential backoff. As
// the offered load approaches the network's capacity the latency and the
// attempt count blow up — the classic saturation knee.
func E15DynamicLoad(o Options) (*Table, error) {
	t := &Table{
		ID:    "E15",
		Title: "Dynamic operation: Poisson arrivals, independent retries with backoff",
		Notes: []string{
			"latency and attempts/request rise sharply at the saturation knee",
		},
		Columns: []string{"load(req/step)", "requests", "delivered", "attempts/req", "lat(mean)", "lat(p95)"},
	}
	side := 8
	horizon := 2000
	if o.Quick {
		side = 5
		horizon = 300
	}
	tor := topology.NewTorus(2, side)
	g := tor.Graph()
	n := g.NumNodes()
	const L, B = 4, 2
	for _, load := range []float64{0.05, 0.5, 2, 8, 32} {
		src := rng.New(o.Seed ^ 0x15)
		var reqs []sim.Request
		tArr := 0.0
		id := 0
		for {
			// Poisson process: exponential inter-arrival times; several
			// requests may share one integer step at high load.
			u := src.Float64()
			for u == 0 {
				u = src.Float64()
			}
			tArr += -math.Log(u) / load
			if int(tArr) >= horizon {
				break
			}
			s, d := src.Intn(n), src.Intn(n)
			if s == d {
				continue
			}
			reqs = append(reqs, sim.Request{
				ID: id, Path: g.ShortestPath(s, d), Length: L, Arrival: int(tArr),
			})
			id++
		}
		if len(reqs) == 0 {
			continue
		}
		res, err := sim.RunDynamic(g, reqs, sim.DynamicConfig{
			Sim:         sim.Config{Bandwidth: B, Rule: optical.ServeFirst, AckLength: 1},
			Retry:       sim.ExponentialBackoff{Base: 2 * L},
			MaxAttempts: 40,
		}, src.Split())
		if err != nil {
			return nil, err
		}
		delivered := 0
		var lats []float64
		for _, oc := range res.Outcomes {
			if oc.Delivered {
				delivered++
				lats = append(lats, float64(oc.Latency))
			}
		}
		latMean, latP95 := 0.0, 0.0
		if len(lats) > 0 {
			latMean = stats.Mean(lats)
			latP95 = stats.Quantile(lats, 0.95)
		}
		t.AddRow(load, len(reqs),
			fmt.Sprintf("%d/%d", delivered, len(reqs)),
			float64(res.TotalAttempts)/float64(len(reqs)),
			latMean, latP95)
	}
	return t, nil
}
