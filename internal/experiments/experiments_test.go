package experiments

import (
	"bytes"
	"encoding/json"
	"strconv"
	"strings"
	"testing"
)

func quickOpts() Options { return Options{Seed: 12345, Quick: true, Trials: 2} }

func TestRegistryAndIDs(t *testing.T) {
	ids := IDs()
	if len(ids) != len(Registry) {
		t.Fatal("IDs incomplete")
	}
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Fatal("IDs not sorted")
		}
	}
	if _, err := Run("nope", quickOpts()); err == nil {
		t.Error("unknown ID accepted")
	}
}

func TestAllExperimentsQuick(t *testing.T) {
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			tbl, err := Run(id, quickOpts())
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			if tbl.ID != id {
				t.Errorf("table ID = %q", tbl.ID)
			}
			if len(tbl.Rows) == 0 {
				t.Errorf("%s produced no rows", id)
			}
			for _, r := range tbl.Rows {
				if len(r) != len(tbl.Columns) {
					t.Errorf("%s row width %d != %d columns", id, len(r), len(tbl.Columns))
				}
			}
			var buf bytes.Buffer
			tbl.Fprint(&buf)
			if !strings.Contains(buf.String(), id) {
				t.Errorf("printed table missing ID")
			}
		})
	}
}

func TestRunAll(t *testing.T) {
	var buf bytes.Buffer
	if err := RunAll(quickOpts(), &buf); err != nil {
		t.Fatal(err)
	}
	for _, id := range IDs() {
		if !strings.Contains(buf.String(), "== "+id+":") {
			t.Errorf("RunAll output missing %s", id)
		}
	}
}

func TestDeterministicTables(t *testing.T) {
	a, err := Run("E5", quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run("E5", quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != len(b.Rows) {
		t.Fatal("row counts differ")
	}
	for i := range a.Rows {
		for j := range a.Rows[i] {
			if a.Rows[i][j] != b.Rows[i][j] {
				t.Fatalf("cell (%d,%d) differs: %q vs %q", i, j, a.Rows[i][j], b.Rows[i][j])
			}
		}
	}
}

// TestE5Separation checks the headline result's direction even at quick
// scale: serve-first needs at least as many rounds as priority on the
// cyclic gadgets (strictly more at full scale).
func TestE5Separation(t *testing.T) {
	tbl, err := Run("E5", Options{Seed: 999, Quick: true, Trials: 4})
	if err != nil {
		t.Fatal(err)
	}
	last := tbl.Rows[len(tbl.Rows)-1]
	sf, err1 := strconv.ParseFloat(last[2], 64)
	pr, err2 := strconv.ParseFloat(last[3], 64)
	if err1 != nil || err2 != nil {
		t.Fatalf("cannot parse rounds from row %v", last)
	}
	if sf < pr {
		t.Errorf("serve-first rounds %.2f < priority rounds %.2f: separation inverted", sf, pr)
	}
}

// TestE6Decay checks the congestion column is non-increasing and the
// protocol finishes.
func TestE6Decay(t *testing.T) {
	tbl, err := Run("E6", quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	prev := 1 << 30
	for _, r := range tbl.Rows {
		cur, err := strconv.Atoi(r[2])
		if err != nil {
			t.Fatalf("residual congestion cell %q", r[2])
		}
		if cur > prev {
			t.Errorf("residual congestion grew: %d -> %d", prev, cur)
		}
		prev = cur
	}
	joined := strings.Join(tbl.Notes, " ")
	if !strings.Contains(joined, "all worms delivered") {
		t.Errorf("E6 did not complete: notes = %v", tbl.Notes)
	}
}

// TestF4CyclesOnlyInCyclicGadget: the forest property must hold for the
// leveled and priority scenarios.
func TestF4Forests(t *testing.T) {
	tbl, err := Run("F4", quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tbl.Rows {
		name, claim := r[0], r[4]
		if strings.Contains(name, "leveled") || strings.Contains(name, "priority") {
			if claim != "true" {
				t.Errorf("%s: claim2.6 = %s, want true", name, claim)
			}
		}
	}
}

func TestOptionsTrials(t *testing.T) {
	if (Options{}).trials(5) != 5 {
		t.Error("default trials")
	}
	if (Options{Trials: 7}).trials(5) != 7 {
		t.Error("explicit trials")
	}
	if (Options{Quick: true}).trials(10) != 3 {
		t.Error("quick trials")
	}
}

func TestTableAddRowFormatting(t *testing.T) {
	tbl := &Table{ID: "X", Columns: []string{"a", "b"}}
	tbl.AddRow(1.23456, "s")
	if tbl.Rows[0][0] != "1.23" || tbl.Rows[0][1] != "s" {
		t.Errorf("row = %v", tbl.Rows[0])
	}
}

func TestWriteJSON(t *testing.T) {
	tbl := &Table{
		ID: "X", Title: "demo", Notes: []string{"n"},
		Columns: []string{"a", "b"},
	}
	tbl.AddRow(1, "two")
	var buf bytes.Buffer
	if err := tbl.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		ID      string     `json:"id"`
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.ID != "X" || len(decoded.Rows) != 1 || decoded.Rows[0][1] != "two" {
		t.Errorf("decoded = %+v", decoded)
	}
}

// TestScorecardAllHold asserts every headline claim verifies at quick
// scale — the continuous-integration face of the reproduction.
func TestScorecardAllHold(t *testing.T) {
	tbl, err := Run("S1", Options{Seed: 7, Quick: true, Trials: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tbl.Rows {
		if r[2] != "true" {
			t.Errorf("claim %q does not hold: %v", r[0], r)
		}
	}
}
