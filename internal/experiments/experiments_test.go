package experiments

import (
	"bytes"
	"encoding/json"
	"strconv"
	"strings"
	"testing"
)

func quickOpts() Options { return Options{Seed: 12345, Quick: true, Trials: 2} }

func TestRegistryAndIDs(t *testing.T) {
	ids := IDs()
	if len(ids) != len(Registry) {
		t.Fatal("IDs incomplete")
	}
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Fatal("IDs not sorted")
		}
	}
	if _, err := Run("nope", quickOpts()); err == nil {
		t.Error("unknown ID accepted")
	}
}

func TestAllExperimentsQuick(t *testing.T) {
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			tbl, err := Run(id, quickOpts())
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			if tbl.ID != id {
				t.Errorf("table ID = %q", tbl.ID)
			}
			if len(tbl.Rows) == 0 {
				t.Errorf("%s produced no rows", id)
			}
			for _, r := range tbl.Rows {
				if len(r) != len(tbl.Columns) {
					t.Errorf("%s row width %d != %d columns", id, len(r), len(tbl.Columns))
				}
			}
			var buf bytes.Buffer
			tbl.Fprint(&buf)
			if !strings.Contains(buf.String(), id) {
				t.Errorf("printed table missing ID")
			}
		})
	}
}

func TestRunAll(t *testing.T) {
	var buf bytes.Buffer
	if err := RunAll(quickOpts(), &buf); err != nil {
		t.Fatal(err)
	}
	for _, id := range IDs() {
		if !strings.Contains(buf.String(), "== "+id+":") {
			t.Errorf("RunAll output missing %s", id)
		}
	}
}

func TestDeterministicTables(t *testing.T) {
	a, err := Run("E5", quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run("E5", quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != len(b.Rows) {
		t.Fatal("row counts differ")
	}
	for i := range a.Rows {
		for j := range a.Rows[i] {
			if a.Rows[i][j] != b.Rows[i][j] {
				t.Fatalf("cell (%d,%d) differs: %q vs %q", i, j, a.Rows[i][j], b.Rows[i][j])
			}
		}
	}
}

// TestE5Separation checks the headline result's direction even at quick
// scale: serve-first needs at least as many rounds as priority on the
// cyclic gadgets (strictly more at full scale).
func TestE5Separation(t *testing.T) {
	tbl, err := Run("E5", Options{Seed: 999, Quick: true, Trials: 4})
	if err != nil {
		t.Fatal(err)
	}
	last := tbl.Rows[len(tbl.Rows)-1]
	sf, ok1 := cellFloat(last[2])
	pr, ok2 := cellFloat(last[3])
	if !ok1 || !ok2 {
		t.Fatalf("cannot read rounds from row %v", last)
	}
	if sf < pr {
		t.Errorf("serve-first rounds %.2f < priority rounds %.2f: separation inverted", sf, pr)
	}
}

// TestE6Decay checks the congestion column is non-increasing and the
// protocol finishes.
func TestE6Decay(t *testing.T) {
	tbl, err := Run("E6", quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	prev := 1 << 30
	for _, r := range tbl.Rows {
		cur, ok := r[2].(int)
		if !ok {
			t.Fatalf("residual congestion cell %v (%T)", r[2], r[2])
		}
		if cur > prev {
			t.Errorf("residual congestion grew: %d -> %d", prev, cur)
		}
		prev = cur
	}
	joined := strings.Join(tbl.Notes, " ")
	if !strings.Contains(joined, "all worms delivered") {
		t.Errorf("E6 did not complete: notes = %v", tbl.Notes)
	}
}

// TestF4CyclesOnlyInCyclicGadget: the forest property must hold for the
// leveled and priority scenarios.
func TestF4Forests(t *testing.T) {
	tbl, err := Run("F4", quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tbl.Rows {
		name, claim := r[0].(string), r[4]
		if strings.Contains(name, "leveled") || strings.Contains(name, "priority") {
			if claim != true {
				t.Errorf("%s: claim2.6 = %v, want true", name, claim)
			}
		}
	}
}

func TestOptionsTrials(t *testing.T) {
	if (Options{}).trials(5) != 5 {
		t.Error("default trials")
	}
	if (Options{Trials: 7}).trials(5) != 7 {
		t.Error("explicit trials")
	}
	if (Options{Quick: true}).trials(10) != 3 {
		t.Error("quick trials")
	}
}

// TestTableAddRowFormatting: rows store the raw values; %.2f rounding is
// applied only by the text renderer.
func TestTableAddRowFormatting(t *testing.T) {
	tbl := &Table{ID: "X", Columns: []string{"a", "b"}}
	tbl.AddRow(1.23456, "s")
	if tbl.Rows[0][0] != 1.23456 || tbl.Rows[0][1] != "s" {
		t.Errorf("row = %v, want raw values", tbl.Rows[0])
	}
	if got := CellString(tbl.Rows[0][0]); got != "1.23" {
		t.Errorf("CellString = %q, want 1.23", got)
	}
	var buf bytes.Buffer
	tbl.Fprint(&buf)
	if !strings.Contains(buf.String(), "1.23") || strings.Contains(buf.String(), "1.23456") {
		t.Errorf("Fprint must round floats to 2 decimals:\n%s", buf.String())
	}
}

// TestWriteJSONPrecision is the regression test for the lossy-table bug:
// AddRow used to stringify every float64 to %.2f at insertion time, so
// WriteJSON emitted permanently rounded values. JSON must now carry the
// full-precision number.
func TestWriteJSONPrecision(t *testing.T) {
	tbl := &Table{ID: "X", Columns: []string{"v"}}
	const v = 1.2345678901234567
	tbl.AddRow(v)
	var buf bytes.Buffer
	if err := tbl.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Rows [][]any `json:"rows"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	got, ok := decoded.Rows[0][0].(float64)
	if !ok {
		t.Fatalf("JSON cell is %T, want a number", decoded.Rows[0][0])
	}
	if got != v {
		t.Errorf("JSON round-trip lost precision: %v != %v", got, v)
	}
}

func TestWriteJSON(t *testing.T) {
	tbl := &Table{
		ID: "X", Title: "demo", Notes: []string{"n"},
		Columns: []string{"a", "b"},
	}
	tbl.AddRow(1, "two")
	var buf bytes.Buffer
	if err := tbl.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		ID      string   `json:"id"`
		Columns []string `json:"columns"`
		Rows    [][]any  `json:"rows"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.ID != "X" || len(decoded.Rows) != 1 || decoded.Rows[0][1] != "two" {
		t.Errorf("decoded = %+v", decoded)
	}
}

// cellFloat reads a numeric table cell regardless of its concrete type.
func cellFloat(v any) (float64, bool) {
	switch x := v.(type) {
	case float64:
		return x, true
	case int:
		return float64(x), true
	case string:
		f, err := strconv.ParseFloat(x, 64)
		return f, err == nil
	}
	return 0, false
}

// TestScorecardAllHold asserts every headline claim verifies at quick
// scale — the continuous-integration face of the reproduction.
func TestScorecardAllHold(t *testing.T) {
	tbl, err := Run("S1", Options{Seed: 7, Quick: true, Trials: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tbl.Rows {
		if r[2] != true {
			t.Errorf("claim %v does not hold: %v", r[0], r)
		}
	}
}
