// Package experiments implements the benchmark harness: one runnable
// experiment per theorem, figure and ablation of the paper, as indexed in
// DESIGN.md. Each experiment returns a Table whose rows are the series the
// paper's bound predicts; EXPERIMENTS.md records paper-vs-measured.
//
// All experiments are driven by a single seed and a Quick flag (smaller
// ladders for tests and benches), and print deterministically.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/canon"
)

// Options control an experiment run.
type Options struct {
	// Seed drives all randomness; equal seeds reproduce tables exactly.
	Seed uint64
	// Trials is the number of Monte-Carlo repetitions per configuration
	// (0 means the experiment's default).
	Trials int
	// Quick shrinks problem-size ladders for tests and benchmarks.
	Quick bool
}

func (o Options) trials(def int) int {
	if o.Trials > 0 {
		return o.Trials
	}
	if o.Quick && def > 3 {
		return 3
	}
	return def
}

// Table is a printable experiment result. Rows hold the raw values passed
// to AddRow; formatting happens only at text-print time (CellString), so
// WriteJSON keeps full numeric precision for downstream plotting.
type Table struct {
	ID      string
	Title   string
	Notes   []string
	Columns []string
	Rows    [][]any
}

// AddRow appends a row of raw, unformatted values.
func (t *Table) AddRow(vals ...any) {
	t.Rows = append(t.Rows, append([]any(nil), vals...))
}

// CellString renders one cell for aligned-text display: float64 values as
// %.2f, everything else with %v.
func CellString(v any) string {
	if x, ok := v.(float64); ok {
		return fmt.Sprintf("%.2f", x)
	}
	return fmt.Sprintf("%v", v)
}

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	for _, n := range t.Notes {
		fmt.Fprintf(w, "   %s\n", n)
	}
	rows := make([][]string, len(t.Rows))
	for i, r := range t.Rows {
		rows[i] = make([]string, len(r))
		for j, cell := range r {
			rows[i][j] = CellString(cell)
		}
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range rows {
		for i, cell := range r {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintf(w, "   %s\n", strings.Join(parts, "  "))
	}
	printRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	printRow(sep)
	for _, r := range rows {
		printRow(r)
	}
	fmt.Fprintln(w)
}

// WriteJSON renders the table as a JSON object with id, title, notes,
// columns and rows — for downstream plotting tools. Numeric cells are
// emitted as JSON numbers at full precision (they are only rounded for
// the text rendering). The encoding is canonical (internal/canon): the
// same table always serializes to the same bytes, so stored experiment
// results can be compared and content-addressed byte-for-byte.
func (t *Table) WriteJSON(w io.Writer) error {
	b, err := canon.MarshalIndent(struct {
		ID      string   `json:"id"`
		Title   string   `json:"title"`
		Notes   []string `json:"notes"`
		Columns []string `json:"columns"`
		Rows    [][]any  `json:"rows"`
	}{t.ID, t.Title, t.Notes, t.Columns, t.Rows}, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Runner is an experiment entry point.
type Runner func(Options) (*Table, error)

// Registry maps experiment IDs to their runners.
var Registry = map[string]Runner{
	"E1":  E1LeveledUpper,
	"E2":  E2StaggeredLower,
	"E3":  E3ShortcutFreeUpper,
	"E4":  E4CyclicLower,
	"E5":  E5PriorityVsServeFirst,
	"E6":  E6CongestionDecay,
	"E7":  E7NodeSymmetric,
	"E8":  E8Meshes,
	"E9":  E9ButterflyQ,
	"E10": E10Conversion,
	"E11": E11SparseConversion,
	"E12": E12MultiHop,
	"E13": E13RWAContrast,
	"E14": E14Lemma210,
	"E15": E15DynamicLoad,
	"E16": E16ElectronicBaseline,
	"E17": E17AdversarialPermutations,
	"A1":  A1Schedules,
	"A2":  A2Wreckage,
	"A3":  A3Acks,
	"A4":  A4TiePolicy,
	"A5":  A5Constants,
	"A6":  A6WavelengthChoice,
	"A7":  A7Synchronization,
	"F4":  F4Witness,
	"F5":  F5WitnessDepths,
	"R1":  R1MeshRobustness,
	"R2":  R2ButterflyRobustness,
	"W1":  W1Saturation,
	"S1":  S1Scorecard,
}

// IDs returns the registered experiment identifiers in order.
func IDs() []string {
	ids := make([]string, 0, len(Registry))
	for id := range Registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run executes one experiment by ID.
func Run(id string, o Options) (*Table, error) {
	r, ok := Registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	return r(o)
}

// RunAll executes every experiment in ID order.
func RunAll(o Options, w io.Writer) error {
	for _, id := range IDs() {
		tbl, err := Run(id, o)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		tbl.Fprint(w)
	}
	return nil
}
