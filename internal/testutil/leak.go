// Package testutil holds hand-rolled test infrastructure shared across
// the repository's packages. Its centerpiece is a goroutine-leak checker
// built directly on runtime.Stack — no external leak-detection
// dependency — so scheduler and HTTP tests can assert that every
// goroutine they start is gone when the test ends.
package testutil

import (
	"fmt"
	"runtime"
	"strings"
	"time"
)

// TB is the subset of testing.TB the leak checker needs; taking the
// interface keeps this package importable from both tests and benchmarks
// and lets the self-test substitute a recorder.
type TB interface {
	Helper()
	Cleanup(func())
	Errorf(format string, args ...any)
}

// VerifyNoLeaks snapshots the live goroutines and registers a cleanup
// that fails the test if, after a grace period, goroutines started during
// the test are still running. Call it first in the test body:
//
//	func TestServerStream(t *testing.T) {
//		testutil.VerifyNoLeaks(t)
//		...
//	}
//
// Runtime-owned goroutines (GC workers, signal handling, the testing
// harness itself) are ignored, as are goroutines that already existed at
// the snapshot. Goroutines legitimately winding down get retries with
// backoff before the checker declares a leak, so a worker draining after
// Close does not flake the test.
func VerifyNoLeaks(tb TB) {
	tb.Helper()
	before := goroutineIDs(stacks())
	tb.Cleanup(func() {
		var leaked []goroutineStack
		deadline := time.Now().Add(leakGrace)
		for wait := time.Millisecond; ; wait *= 2 {
			leaked = leakedSince(before)
			if len(leaked) == 0 {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			if wait > 250*time.Millisecond {
				wait = 250 * time.Millisecond
			}
			time.Sleep(wait)
		}
		var b strings.Builder
		for _, g := range leaked {
			fmt.Fprintf(&b, "\n%s", g.dump)
		}
		tb.Errorf("%d goroutine(s) leaked by this test:%s", len(leaked), b.String())
	})
}

// leakGrace is how long the cleanup keeps retrying before calling a
// surviving goroutine a leak; the self-test shortens it.
var leakGrace = 5 * time.Second

// goroutineStack is one parsed block of a runtime.Stack(…, true) dump.
type goroutineStack struct {
	id   string // the runtime's goroutine number, as text
	top  string // first function on the stack, e.g. "repro/internal/jobs.(*Scheduler).worker"
	dump string // the raw block, for failure messages
}

// allowedPrefixes are call prefixes of goroutines the checker never
// charges to the test: the testing harness, runtime-internal workers and
// signal plumbing. Everything else that appears after the snapshot is a
// candidate leak.
var allowedPrefixes = []string{
	"testing.",
	"runtime.",
	"os/signal.",
	"runtime/pprof.",
}

// leakedSince returns the goroutines running now that were not in the
// before set and are not runtime-owned.
func leakedSince(before map[string]bool) []goroutineStack {
	var leaked []goroutineStack
	for _, g := range stacks() {
		if before[g.id] || allowed(g) {
			continue
		}
		leaked = append(leaked, g)
	}
	return leaked
}

// allowed reports whether the goroutine belongs to the runtime or test
// harness rather than to code under test.
func allowed(g goroutineStack) bool {
	for _, p := range allowedPrefixes {
		if strings.HasPrefix(g.top, p) {
			return true
		}
	}
	return false
}

// stacks captures and parses every live goroutine's stack.
func stacks() []goroutineStack {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	var gs []goroutineStack
	for _, block := range strings.Split(string(buf), "\n\n") {
		if g, ok := parseStack(block); ok {
			gs = append(gs, g)
		}
	}
	return gs
}

// parseStack extracts the goroutine id and topmost function from one
// stack block of the form:
//
//	goroutine 7 [chan receive]:
//	repro/internal/jobs.(*Scheduler).worker(0xc000100000)
//		/root/repo/internal/jobs/sched.go:257 +0x85
//	created by repro/internal/jobs.NewScheduler in goroutine 6
//		...
func parseStack(block string) (goroutineStack, bool) {
	lines := strings.Split(strings.TrimRight(block, "\n"), "\n")
	if len(lines) < 2 || !strings.HasPrefix(lines[0], "goroutine ") {
		return goroutineStack{}, false
	}
	header := strings.TrimPrefix(lines[0], "goroutine ")
	id, _, ok := strings.Cut(header, " ")
	if !ok {
		return goroutineStack{}, false
	}
	top := lines[1]
	if i := strings.LastIndex(top, "("); i > 0 {
		top = top[:i]
	}
	return goroutineStack{id: id, top: top, dump: block}, true
}

// goroutineIDs collects the id set of a parsed snapshot.
func goroutineIDs(gs []goroutineStack) map[string]bool {
	ids := make(map[string]bool, len(gs))
	for _, g := range gs {
		ids[g.id] = true
	}
	return ids
}
