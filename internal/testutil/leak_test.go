package testutil

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// recorder is a minimal TB capturing what the checker does.
type recorder struct {
	cleanups []func()
	errors   []string
}

func (r *recorder) Helper()          {}
func (r *recorder) Cleanup(f func()) { r.cleanups = append(r.cleanups, f) }
func (r *recorder) runCleanups() {
	for _, f := range r.cleanups {
		f()
	}
}
func (r *recorder) Errorf(format string, args ...any) {
	r.errors = append(r.errors, fmt.Sprintf(format, args...))
}

func TestVerifyNoLeaksCleanPass(t *testing.T) {
	rec := &recorder{}
	VerifyNoLeaks(rec)
	rec.runCleanups()
	if len(rec.errors) != 0 {
		t.Fatalf("clean test reported leaks: %v", rec.errors)
	}
}

func TestVerifyNoLeaksCatchesBlockedGoroutine(t *testing.T) {
	oldGrace := leakGrace
	leakGrace = 100 * time.Millisecond
	defer func() { leakGrace = oldGrace }()

	rec := &recorder{}
	VerifyNoLeaks(rec)

	block := make(chan struct{})
	started := make(chan struct{})
	go func() {
		close(started)
		<-block
	}()
	<-started

	rec.runCleanups()
	close(block)

	if len(rec.errors) != 1 {
		t.Fatalf("got %d errors, want 1: %v", len(rec.errors), rec.errors)
	}
	if !strings.Contains(rec.errors[0], "goroutine(s) leaked") ||
		!strings.Contains(rec.errors[0], "TestVerifyNoLeaksCatchesBlockedGoroutine") {
		t.Errorf("leak report does not identify the leaked goroutine:\n%s", rec.errors[0])
	}
}

func TestVerifyNoLeaksWaitsForWindDown(t *testing.T) {
	// A goroutine that exits shortly after the test body must not flake
	// the checker: the retry loop absorbs the wind-down.
	VerifyNoLeaks(t)
	done := make(chan struct{})
	go func() {
		time.Sleep(50 * time.Millisecond)
		close(done)
	}()
	_ = done
}

func TestParseStack(t *testing.T) {
	block := "goroutine 7 [chan receive]:\n" +
		"repro/internal/jobs.(*Scheduler).worker(0xc000100000)\n" +
		"\t/root/repo/internal/jobs/sched.go:257 +0x85\n" +
		"created by repro/internal/jobs.NewScheduler in goroutine 6\n" +
		"\t/root/repo/internal/jobs/sched.go:191 +0x1d1\n"
	g, ok := parseStack(block)
	if !ok {
		t.Fatal("parseStack rejected a well-formed block")
	}
	if g.id != "7" {
		t.Errorf("id = %q, want 7", g.id)
	}
	if g.top != "repro/internal/jobs.(*Scheduler).worker" {
		t.Errorf("top = %q", g.top)
	}
	if allowed(g) {
		t.Error("a scheduler worker must not be allowlisted")
	}
	if runtime, ok := parseStack("goroutine 2 [force gc (idle)]:\nruntime.gopark(0x0, 0x0, 0x0, 0x0, 0x0)\n\t/usr/local/go/src/runtime/proc.go:402\n"); !ok || !allowed(runtime) {
		t.Error("runtime goroutines must be allowlisted")
	}
}

func TestStacksSeesSelf(t *testing.T) {
	for _, g := range stacks() {
		if strings.Contains(g.dump, "TestStacksSeesSelf") {
			return
		}
	}
	t.Error("snapshot does not contain the calling test's own goroutine")
}
