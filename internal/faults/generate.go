package faults

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/rng"
)

// GenConfig parameterizes random plan generation. Counts select how many
// faults of each kind to draw; targets, start steps and durations are
// drawn uniformly from the given source, so the plan is a deterministic
// function of (graph, bandwidth, config, source state).
type GenConfig struct {
	// Horizon is the exclusive upper bound on fault start steps; it
	// should cover the portion of the run worth disturbing. Required >= 1
	// when any count is nonzero.
	Horizon int
	// LinkOutages, WavelengthOutages, AckLosses and StuckCouplers count
	// the faults of each kind to draw.
	LinkOutages       int
	WavelengthOutages int
	AckLosses         int
	StuckCouplers     int
	// MinDuration and MaxDuration bound the drawn fault durations
	// (inclusive). MinDuration defaults to 1; MaxDuration defaults to
	// Horizon (and is raised to MinDuration if set below it).
	MinDuration int
	MaxDuration int
}

// Random draws a plan from src under cfg. The draw order is fixed (link
// outages, wavelength outages, ack losses, stuck couplers; per fault:
// target, start, duration), so identical inputs reproduce the identical
// plan. The result always passes Validate for (g, bandwidth).
func Random(g *graph.Graph, bandwidth int, cfg GenConfig, src *rng.Source) (*Plan, error) {
	total := cfg.LinkOutages + cfg.WavelengthOutages + cfg.AckLosses + cfg.StuckCouplers
	p := &Plan{}
	if total == 0 {
		return p, nil
	}
	if cfg.Horizon < 1 {
		return nil, fmt.Errorf("faults: Horizon %d < 1 with %d faults requested", cfg.Horizon, total)
	}
	if bandwidth < 1 {
		return nil, fmt.Errorf("faults: bandwidth %d < 1", bandwidth)
	}
	if g.NumLinks() == 0 && total > cfg.StuckCouplers {
		return nil, fmt.Errorf("faults: graph has no links")
	}
	minD := cfg.MinDuration
	if minD < 1 {
		minD = 1
	}
	maxD := cfg.MaxDuration
	if maxD < 1 {
		maxD = cfg.Horizon
	}
	if maxD < minD {
		maxD = minD
	}
	window := func() (start, end int) {
		start = src.Intn(cfg.Horizon)
		return start, start + minD + src.Intn(maxD-minD+1)
	}
	for i := 0; i < cfg.LinkOutages; i++ {
		f := Fault{Kind: LinkOutage, Link: src.Intn(g.NumLinks())}
		f.Start, f.End = window()
		p.Faults = append(p.Faults, f)
	}
	for i := 0; i < cfg.WavelengthOutages; i++ {
		f := Fault{
			Kind:       WavelengthOutage,
			Link:       src.Intn(g.NumLinks()),
			Band:       src.Intn(2),
			Wavelength: src.Intn(bandwidth),
		}
		f.Start, f.End = window()
		p.Faults = append(p.Faults, f)
	}
	for i := 0; i < cfg.AckLosses; i++ {
		f := Fault{Kind: AckLoss, Link: src.Intn(g.NumLinks())}
		f.Start, f.End = window()
		p.Faults = append(p.Faults, f)
	}
	for i := 0; i < cfg.StuckCouplers; i++ {
		f := Fault{Kind: StuckCoupler, Node: src.Intn(g.NumNodes())}
		f.Start, f.End = window()
		p.Faults = append(p.Faults, f)
	}
	return p, nil
}

// MustRandom is Random that panics on error; for static configurations
// known to be valid.
func MustRandom(g *graph.Graph, bandwidth int, cfg GenConfig, src *rng.Source) *Plan {
	p, err := Random(g, bandwidth, cfg, src)
	if err != nil {
		panic(err)
	}
	return p
}
