package faults

import (
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

func line(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

func TestFaultActiveAt(t *testing.T) {
	f := Fault{Kind: LinkOutage, Link: 0, Start: 5, End: 10}
	for _, tc := range []struct {
		t    int
		want bool
	}{{4, false}, {5, true}, {9, true}, {10, false}} {
		if got := f.ActiveAt(tc.t); got != tc.want {
			t.Errorf("ActiveAt(%d) = %t, want %t", tc.t, got, tc.want)
		}
	}
	open := Fault{Kind: LinkOutage, Link: 0, Start: 3}
	if open.ActiveAt(2) || !open.ActiveAt(3) || !open.ActiveAt(1<<20) {
		t.Error("open-ended fault has wrong activity window")
	}
}

func TestPlanValidate(t *testing.T) {
	g := line(4)
	bad := []Plan{
		{Faults: []Fault{{Kind: LinkOutage, Link: g.NumLinks()}}},
		{Faults: []Fault{{Kind: LinkOutage, Link: -1}}},
		{Faults: []Fault{{Kind: WavelengthOutage, Link: 0, Wavelength: 2}}},
		{Faults: []Fault{{Kind: WavelengthOutage, Link: 0, Band: 2}}},
		{Faults: []Fault{{Kind: StuckCoupler, Node: 4}}},
		{Faults: []Fault{{Kind: Kind(99), Link: 0}}},
		{Faults: []Fault{{Kind: LinkOutage, Link: 0, Start: -1}}},
		{Faults: []Fault{{Kind: LinkOutage, Link: 0, Start: 5, End: 5}}},
		{Faults: []Fault{{Kind: AckLoss, Link: 0, Start: 5, End: 3}}},
	}
	for i := range bad {
		if err := bad[i].Validate(g, 2); err == nil {
			t.Errorf("plan %d: Validate accepted an invalid fault", i)
		}
	}
	ok := Plan{Faults: []Fault{
		{Kind: LinkOutage, Link: 0, Start: 0, End: 10},
		{Kind: WavelengthOutage, Link: 1, Band: 1, Wavelength: 1, Start: 2},
		{Kind: AckLoss, Link: 2, Start: 1, End: 2},
		{Kind: StuckCoupler, Node: 3, Start: 0},
	}}
	if err := ok.Validate(g, 2); err != nil {
		t.Fatalf("Validate rejected a valid plan: %v", err)
	}
	var nilPlan *Plan
	if err := nilPlan.Validate(g, 2); err != nil {
		t.Fatalf("nil plan should validate: %v", err)
	}
}

func TestCompileOrdersRepairsBeforeActivations(t *testing.T) {
	g := line(3)
	p := &Plan{Faults: []Fault{
		{Kind: LinkOutage, Link: 1, Start: 10, End: 20}, // activation at 10
		{Kind: LinkOutage, Link: 0, Start: 0, End: 10},  // repair at 10
		{Kind: AckLoss, Link: 2, Start: 10},             // activation at 10, after link 1's (plan order)
	}}
	s, err := p.Compile(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	ev := s.Events()
	if len(ev) != 5 {
		t.Fatalf("got %d events, want 5", len(ev))
	}
	// Order: start@0, repair@10, start@10 (link 1), start@10 (ack loss),
	// repair@20 (link 1).
	want := []struct {
		step  int
		start bool
		link  graph.LinkID
	}{{0, true, 0}, {10, false, 0}, {10, true, 1}, {10, true, 2}, {20, false, 1}}
	for i, w := range want {
		if ev[i].Step != w.step || ev[i].Start != w.start || ev[i].Fault.Link != w.link {
			t.Errorf("event %d = {step %d start %t link %d}, want %+v",
				i, ev[i].Step, ev[i].Start, ev[i].Fault.Link, w)
		}
	}
	if s.Empty() {
		t.Error("schedule with events reports Empty")
	}
	if !s.Matches(g.NumLinks(), g.NumNodes(), 2) || s.Matches(g.NumLinks(), g.NumNodes(), 3) {
		t.Error("Matches does not pin the compiled geometry")
	}
}

func TestCompileEmptyAndNil(t *testing.T) {
	g := line(3)
	var nilPlan *Plan
	s, err := nilPlan.Compile(g, 2)
	if err != nil || !s.Empty() {
		t.Fatalf("nil plan: schedule empty=%t err=%v", s.Empty(), err)
	}
	s2, err := (&Plan{}).Compile(g, 2)
	if err != nil || !s2.Empty() {
		t.Fatalf("empty plan: schedule empty=%t err=%v", s2.Empty(), err)
	}
}

func TestShift(t *testing.T) {
	p := &Plan{Faults: []Fault{
		{Kind: LinkOutage, Link: 0, Start: 0, End: 10},  // over before offset: dropped
		{Kind: LinkOutage, Link: 1, Start: 5, End: 25},  // straddles: clamped
		{Kind: AckLoss, Link: 2, Start: 30, End: 40},    // future: translated
		{Kind: StuckCoupler, Node: 0, Start: 2, End: 0}, // open: stays open
	}}
	q := p.Shift(20)
	want := []Fault{
		{Kind: LinkOutage, Link: 1, Start: 0, End: 5},
		{Kind: AckLoss, Link: 2, Start: 10, End: 20},
		{Kind: StuckCoupler, Node: 0, Start: 0, End: 0},
	}
	if !reflect.DeepEqual(q.Faults, want) {
		t.Errorf("Shift(20) = %+v, want %+v", q.Faults, want)
	}
	if p.Shift(0) != p {
		t.Error("Shift(0) should return the plan unchanged")
	}
	var nilPlan *Plan
	if nilPlan.Shift(5) != nil {
		t.Error("nil plan shifts to nil")
	}
}

func TestDownLinksAt(t *testing.T) {
	p := &Plan{Faults: []Fault{
		{Kind: LinkOutage, Link: 3, Start: 0, End: 10},
		{Kind: LinkOutage, Link: 1, Start: 5, End: 15},
		{Kind: LinkOutage, Link: 3, Start: 2, End: 20}, // duplicate link
		{Kind: AckLoss, Link: 0, Start: 0, End: 100},   // not a link outage
	}}
	if got := p.DownLinksAt(7); !reflect.DeepEqual(got, []graph.LinkID{1, 3}) {
		t.Errorf("DownLinksAt(7) = %v, want [1 3]", got)
	}
	if got := p.DownLinksAt(12); !reflect.DeepEqual(got, []graph.LinkID{1, 3}) {
		t.Errorf("DownLinksAt(12) = %v, want [1 3]", got)
	}
	if got := p.DownLinksAt(50); len(got) != 0 {
		t.Errorf("DownLinksAt(50) = %v, want empty", got)
	}
	var nilPlan *Plan
	if nilPlan.DownLinksAt(0) != nil {
		t.Error("nil plan has no down links")
	}
}

func TestRandomDeterministicAndValid(t *testing.T) {
	g := line(6)
	cfg := GenConfig{
		Horizon:           100,
		LinkOutages:       3,
		WavelengthOutages: 2,
		AckLosses:         2,
		StuckCouplers:     1,
		MinDuration:       5,
		MaxDuration:       20,
	}
	p1 := MustRandom(g, 3, cfg, rng.New(42))
	p2 := MustRandom(g, 3, cfg, rng.New(42))
	if !reflect.DeepEqual(p1, p2) {
		t.Fatal("same seed must reproduce the same plan")
	}
	p3 := MustRandom(g, 3, cfg, rng.New(43))
	if reflect.DeepEqual(p1, p3) {
		t.Fatal("different seeds produced identical plans (suspicious)")
	}
	if err := p1.Validate(g, 3); err != nil {
		t.Fatalf("generated plan fails validation: %v", err)
	}
	if got := len(p1.Faults); got != 8 {
		t.Fatalf("generated %d faults, want 8", got)
	}
	counts := map[Kind]int{}
	for _, f := range p1.Faults {
		counts[f.Kind]++
		if f.Start < 0 || f.Start >= cfg.Horizon {
			t.Errorf("fault start %d outside [0,%d)", f.Start, cfg.Horizon)
		}
		if d := f.End - f.Start; d < cfg.MinDuration || d > cfg.MaxDuration {
			t.Errorf("fault duration %d outside [%d,%d]", d, cfg.MinDuration, cfg.MaxDuration)
		}
	}
	if counts[LinkOutage] != 3 || counts[WavelengthOutage] != 2 || counts[AckLoss] != 2 || counts[StuckCoupler] != 1 {
		t.Errorf("kind counts = %v", counts)
	}
}

func TestRandomErrors(t *testing.T) {
	g := line(3)
	if _, err := Random(g, 2, GenConfig{LinkOutages: 1}, rng.New(1)); err == nil {
		t.Error("missing horizon should error")
	}
	if _, err := Random(g, 0, GenConfig{Horizon: 10, LinkOutages: 1}, rng.New(1)); err == nil {
		t.Error("bad bandwidth should error")
	}
	p, err := Random(g, 2, GenConfig{}, rng.New(1))
	if err != nil || !p.Empty() {
		t.Errorf("zero-count config should yield the empty plan, got %+v, %v", p, err)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		LinkOutage: "link-outage", WavelengthOutage: "wavelength-outage",
		AckLoss: "ack-loss", StuckCoupler: "stuck-coupler", Kind(7): "Kind(7)",
	} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}
