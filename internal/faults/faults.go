// Package faults provides deterministic fault injection for the routing
// simulator: declarative failure plans (link outages and repairs,
// per-wavelength outages, acknowledgement loss, stuck couplers) compiled
// into a step-indexed event schedule the simulator consumes, plus random
// plan generators driven by internal/rng so a single seed reproduces an
// entire faulty run.
//
// A Plan speaks protocol time: fault windows are absolute step intervals
// [Start, End) measured from the start of the run the plan is attached
// to. The protocol core re-anchors a plan per round with Shift, so one
// plan describes the whole protocol execution while each round's
// simulation sees only the window that overlaps it.
//
// The package sits below the simulator (it depends only on internal/graph
// and internal/rng), so sim, core and the experiment harness can all
// share the same plan types without import cycles.
package faults

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// Kind enumerates the failure modes the simulator can inject.
type Kind int

const (
	// LinkOutage takes one directed link dark for the fault window: flits
	// occupying the link are destroyed at activation, and no train (message
	// or acknowledgement) may enter it until repair.
	LinkOutage Kind = iota
	// WavelengthOutage darkens a single (band, link, wavelength) slot —
	// the failure of one laser or filter rather than the whole fiber.
	WavelengthOutage
	// AckLoss makes acknowledgement trains entering the link vanish for
	// the window (a failed detector on the reserved ack band). Message
	// traffic on the link is unaffected, as are acks already in flight
	// past the link.
	AckLoss
	// StuckCoupler freezes the contention logic of one router: while
	// active, every conflict at links leaving the node keeps the current
	// occupant (or admits the lowest-ID entrant when the slot is free),
	// regardless of the configured rule, tie policy, or ranks, and
	// wavelength conversion at the node is disabled.
	StuckCoupler

	numKinds
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case LinkOutage:
		return "link-outage"
	case WavelengthOutage:
		return "wavelength-outage"
	case AckLoss:
		return "ack-loss"
	case StuckCoupler:
		return "stuck-coupler"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Fault is one failure with a half-open activity window [Start, End).
// End <= 0 means the fault is never repaired.
type Fault struct {
	// Kind selects the failure mode.
	Kind Kind
	// Link is the directed link affected (LinkOutage, WavelengthOutage,
	// AckLoss).
	Link graph.LinkID
	// Node is the router affected (StuckCoupler only).
	Node graph.NodeID
	// Band is the wavelength band of a WavelengthOutage: 0 for the
	// message band, 1 for the reserved ack band.
	Band int
	// Wavelength is the darkened wavelength of a WavelengthOutage.
	Wavelength int
	// Start is the first step the fault is active; must be >= 0.
	Start int
	// End is the first step the fault is repaired; End <= 0 means never.
	End int
}

// ActiveAt reports whether the fault is active at step t.
func (f Fault) ActiveAt(t int) bool {
	return t >= f.Start && (f.End <= 0 || t < f.End)
}

// validate checks one fault against the target geometry.
func (f Fault) validate(links, nodes, bandwidth int) error {
	switch f.Kind {
	case LinkOutage, AckLoss:
		if f.Link < 0 || f.Link >= links {
			return fmt.Errorf("link %d out of [0,%d)", f.Link, links)
		}
	case WavelengthOutage:
		if f.Link < 0 || f.Link >= links {
			return fmt.Errorf("link %d out of [0,%d)", f.Link, links)
		}
		if f.Band < 0 || f.Band > 1 {
			return fmt.Errorf("band %d out of [0,2)", f.Band)
		}
		if f.Wavelength < 0 || f.Wavelength >= bandwidth {
			return fmt.Errorf("wavelength %d out of [0,%d)", f.Wavelength, bandwidth)
		}
	case StuckCoupler:
		if f.Node < 0 || f.Node >= nodes {
			return fmt.Errorf("node %d out of [0,%d)", f.Node, nodes)
		}
	default:
		return fmt.Errorf("unknown kind %d", int(f.Kind))
	}
	if f.Start < 0 {
		return fmt.Errorf("negative start %d", f.Start)
	}
	if f.End > 0 && f.End <= f.Start {
		return fmt.Errorf("empty window [%d,%d)", f.Start, f.End)
	}
	return nil
}

// Plan is a declarative set of faults. The zero value (and nil) is the
// empty plan. Plans are immutable once shared; Shift returns new plans.
type Plan struct {
	Faults []Fault
}

// Empty reports whether the plan injects nothing.
func (p *Plan) Empty() bool { return p == nil || len(p.Faults) == 0 }

// Validate checks every fault against the graph and bandwidth.
func (p *Plan) Validate(g *graph.Graph, bandwidth int) error {
	if p == nil {
		return nil
	}
	if bandwidth < 1 {
		return fmt.Errorf("faults: bandwidth %d < 1", bandwidth)
	}
	for i, f := range p.Faults {
		if err := f.validate(g.NumLinks(), g.NumNodes(), bandwidth); err != nil {
			return fmt.Errorf("faults: fault %d (%s): %w", i, f.Kind, err)
		}
	}
	return nil
}

// Shift returns the plan as seen from protocol time offset: faults fully
// repaired before offset are dropped, and the remaining windows are
// translated by -offset (Start clamped at 0, open ends stay open). The
// protocol core uses this to hand each round the sub-plan overlapping it.
func (p *Plan) Shift(offset int) *Plan {
	if p == nil || offset <= 0 {
		return p
	}
	q := &Plan{}
	for _, f := range p.Faults {
		if f.End > 0 && f.End <= offset {
			continue
		}
		f.Start -= offset
		if f.Start < 0 {
			f.Start = 0
		}
		if f.End > 0 {
			f.End -= offset
		}
		q.Faults = append(q.Faults, f)
	}
	return q
}

// DownLinksAt returns the sorted, deduplicated directed links taken dark
// by a LinkOutage active at step t. Degraded-mode path selection uses
// this to route around links known down at round start.
func (p *Plan) DownLinksAt(t int) []graph.LinkID {
	if p == nil {
		return nil
	}
	var down []graph.LinkID
	for _, f := range p.Faults {
		if f.Kind == LinkOutage && f.ActiveAt(t) {
			down = append(down, f.Link)
		}
	}
	sort.Ints(down)
	out := down[:0]
	for i, id := range down {
		if i == 0 || id != down[i-1] {
			out = append(out, id)
		}
	}
	return out
}

// Event is one schedule entry: fault ev.Fault activates (Start true) or
// is repaired (Start false) at step ev.Step.
type Event struct {
	Step  int
	Start bool
	Fault Fault
}

// Schedule is a compiled, immutable plan: events sorted by step with
// repairs ordered before activations at the same step, pinned to the
// geometry it was compiled for so the simulator can reject mismatched
// attachments.
type Schedule struct {
	events []Event
	links  int
	nodes  int
	bw     int
}

// Compile validates the plan against g and bandwidth and flattens it into
// a step-indexed schedule. A nil or empty plan compiles to an empty
// schedule, which the simulator treats exactly like no schedule at all.
func (p *Plan) Compile(g *graph.Graph, bandwidth int) (*Schedule, error) {
	if err := p.Validate(g, bandwidth); err != nil {
		return nil, err
	}
	s := &Schedule{links: g.NumLinks(), nodes: g.NumNodes(), bw: bandwidth}
	if p == nil {
		return s, nil
	}
	for _, f := range p.Faults {
		s.events = append(s.events, Event{Step: f.Start, Start: true, Fault: f})
		if f.End > 0 {
			s.events = append(s.events, Event{Step: f.End, Start: false, Fault: f})
		}
	}
	// Repairs sort before activations at the same step so a link repaired
	// and re-failed at one step ends up dark, not doubly counted. The
	// stable sort keeps plan order among equal keys, making compilation a
	// pure function of the plan.
	sort.SliceStable(s.events, func(i, j int) bool {
		a, b := s.events[i], s.events[j]
		if a.Step != b.Step {
			return a.Step < b.Step
		}
		return !a.Start && b.Start
	})
	return s, nil
}

// MustCompile is Compile that panics on error; for plans correct by
// construction (e.g. generator output).
func (p *Plan) MustCompile(g *graph.Graph, bandwidth int) *Schedule {
	s, err := p.Compile(g, bandwidth)
	if err != nil {
		panic(err)
	}
	return s
}

// Events returns the compiled events in application order. The caller
// must not modify the result.
func (s *Schedule) Events() []Event { return s.events }

// Empty reports whether the schedule contains no events.
func (s *Schedule) Empty() bool { return len(s.events) == 0 }

// Matches reports whether the schedule was compiled for the given
// geometry. The simulator rejects schedules compiled for a different
// graph or bandwidth instead of silently indexing out of range.
func (s *Schedule) Matches(links, nodes, bandwidth int) bool {
	return s.links == links && s.nodes == nodes && s.bw == bandwidth
}
