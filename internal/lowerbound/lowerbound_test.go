package lowerbound

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/optical"
	"repro/internal/sim"
)

func TestStaggeredStructure(t *testing.T) {
	for _, L := range []int{2, 3, 4, 5, 7} {
		d := (L-1)/2 + 1
		D := 3*d + 4
		b := Staggered(1, 4, D, L)
		c := b.Collection
		if c.Size() != 4 {
			t.Fatalf("L=%d: size = %d", L, c.Size())
		}
		if c.Dilation() != D {
			t.Fatalf("L=%d: dilation = %d, want %d", L, c.Dilation(), D)
		}
		// Consecutive paths share exactly one edge; others none.
		for i := 0; i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				shared := sharedLinks(c.Graph(), c.Path(i), c.Path(j))
				want := 0
				if j == i+1 {
					want = 1
				}
				if shared != want {
					t.Errorf("L=%d: paths %d,%d share %d links, want %d", L, i, j, shared, want)
				}
			}
		}
		// The shared edge with path i+1 sits at offset d of path i and at
		// offset 0 of path i+1 (the "starts (i-1)d levels later" stagger).
		if !c.IsLeveled() {
			t.Errorf("L=%d: staggered structure must be leveled", L)
		}
		if !c.IsShortCutFree() {
			t.Errorf("L=%d: staggered structure must be short-cut free", L)
		}
		if len(b.Structures) != 1 || len(b.Structures[0]) != 4 {
			t.Error("structure index wrong")
		}
		if b.Ranks[0] != 0 || b.Ranks[3] != 3 {
			t.Errorf("adversarial ranks = %v", b.Ranks[:4])
		}
	}
}

func sharedLinks(g *graph.Graph, p, q graph.Path) int {
	in := map[graph.LinkID]bool{}
	for _, id := range p.Links(g) {
		in[id] = true
	}
	n := 0
	for _, id := range q.Links(g) {
		if in[id] {
			n++
		}
	}
	return n
}

func TestStaggeredSharedEdgeOffsets(t *testing.T) {
	L := 5 // d = 3
	d := 3
	b := Staggered(1, 3, 10, L)
	c := b.Collection
	g := c.Graph()
	for i := 0; i+1 < 3; i++ {
		p, q := c.Path(i), c.Path(i+1)
		// Path i's link at offset d equals path i+1's link at offset 0.
		pl, ql := p.Links(g), q.Links(g)
		if pl[d] != ql[0] {
			t.Errorf("paths %d,%d: shared edge not at offsets (%d, 0)", i, i+1, d)
		}
	}
}

func TestStaggeredMultipleStructuresDisjoint(t *testing.T) {
	b := Staggered(3, 3, 8, 3)
	c := b.Collection
	if c.Size() != 9 || len(b.Structures) != 3 {
		t.Fatal("sizes")
	}
	// Paths of different structures share nothing.
	for _, i := range b.Structures[0] {
		for _, j := range b.Structures[1] {
			if sharedLinks(c.Graph(), c.Path(i), c.Path(j)) != 0 {
				t.Fatal("structures must be disjoint")
			}
		}
	}
}

// TestStaggeredChainElimination verifies the Lemma 2.8 mechanism: with the
// right delays, worm i+1 blocks worm i, so in one round only the last worm
// survives.
func TestStaggeredChainElimination(t *testing.T) {
	L := 4 // d = 2
	m := 4
	b := Staggered(1, m, 12, L)
	c := b.Collection
	g := c.Graph()
	// All worms same wavelength, same delay: worm i+1 enters the shared
	// edge (its offset 0) at delay; worm i reaches that edge (offset d) at
	// delay+d, finding worm i+1's occupancy [delay, delay+L-1] since
	// d <= L-1. So every worm except the last is eliminated.
	worms := make([]sim.Worm, m)
	for i := 0; i < m; i++ {
		worms[i] = sim.Worm{ID: i, Path: c.Path(i), Length: L, Delay: 5, Wavelength: 0}
	}
	res, err := sim.Run(g, worms, sim.Config{
		Bandwidth: 1, Rule: optical.ServeFirst, Wreckage: sim.Drain,
		RecordCollisions: true, CheckInvariants: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < m-1; i++ {
		if res.Outcomes[i].Delivered {
			t.Errorf("worm %d should be blocked by worm %d", i, i+1)
		}
	}
	if !res.Outcomes[m-1].Delivered {
		t.Error("last worm has no blocker and must be delivered")
	}
}

func TestCyclicStructure(t *testing.T) {
	for _, L := range []int{2, 3, 4, 5, 8} {
		q := L / 2
		if q < 1 {
			q = 1
		}
		D := q + 5
		b := Cyclic(2, D, L)
		c := b.Collection
		if c.Size() != 6 {
			t.Fatalf("L=%d: size = %d", L, c.Size())
		}
		// Within a structure, every pair of paths shares exactly one edge.
		for _, st := range b.Structures {
			for x := 0; x < 3; x++ {
				for y := x + 1; y < 3; y++ {
					n := sharedLinks(c.Graph(), c.Path(st[x]), c.Path(st[y]))
					if n != 1 {
						t.Errorf("L=%d: cyclic paths %d,%d share %d links, want 1", L, x, y, n)
					}
				}
			}
		}
		if !c.IsShortCutFree() {
			t.Errorf("L=%d: cyclic structure must be short-cut free", L)
		}
		if c.IsLeveled() {
			t.Errorf("L=%d: cyclic structure must NOT be leveled", L)
		}
	}
}

// TestCyclicMutualElimination verifies the Figure 6 mechanism: with equal
// delays and one wavelength, the three worms eliminate each other in a
// directed cycle under serve-first (nobody survives), whereas the priority
// rule with distinct ranks lets at least one worm through.
func TestCyclicMutualElimination(t *testing.T) {
	for _, L := range []int{2, 4, 6} {
		b := Cyclic(1, L/2+4, L)
		c := b.Collection
		g := c.Graph()
		worms := make([]sim.Worm, 3)
		for i := 0; i < 3; i++ {
			worms[i] = sim.Worm{ID: i, Path: c.Path(i), Length: L, Delay: 3, Wavelength: 0, Rank: i}
		}
		resSF, err := sim.Run(g, worms, sim.Config{
			Bandwidth: 1, Rule: optical.ServeFirst, Wreckage: sim.Drain,
			RecordCollisions: true, CheckInvariants: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if resSF.DeliveredCount != 0 {
			t.Errorf("L=%d serve-first: %d delivered, want 0 (mutual elimination)",
				L, resSF.DeliveredCount)
		}
		resPrio, err := sim.Run(g, worms, sim.Config{
			Bandwidth: 1, Rule: optical.Priority, Wreckage: sim.Drain,
			RecordCollisions: true, CheckInvariants: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if resPrio.DeliveredCount < 1 {
			t.Errorf("L=%d priority: %d delivered, want >= 1 (cycle broken)",
				L, resPrio.DeliveredCount)
		}
	}
}

func TestIdenticalStructure(t *testing.T) {
	b := Identical(2, 5, 7)
	c := b.Collection
	if c.Size() != 10 {
		t.Fatal("size")
	}
	if c.PathCongestion() != 5 {
		t.Errorf("path congestion = %d, want 5", c.PathCongestion())
	}
	if c.Dilation() != 7 {
		t.Errorf("dilation = %d", c.Dilation())
	}
	if !c.IsLeveled() || !c.IsShortCutFree() {
		t.Error("identical paths must be leveled and short-cut free")
	}
}

func TestMixed(t *testing.T) {
	b := Mixed("staggered", 2, 3, 2, 4, 10, 3)
	if b.Collection.Size() != 2*3+2*4 {
		t.Fatalf("size = %d", b.Collection.Size())
	}
	if len(b.Structures) != 4 {
		t.Fatalf("structures = %d", len(b.Structures))
	}
	// Worm indices must partition [0, size).
	seen := map[int]bool{}
	for _, st := range b.Structures {
		for _, w := range st {
			if seen[w] {
				t.Fatal("worm in two structures")
			}
			seen[w] = true
		}
	}
	if len(seen) != b.Collection.Size() {
		t.Fatal("structures do not cover all worms")
	}
	if len(b.Ranks) != b.Collection.Size() {
		t.Fatal("ranks length")
	}
	// Stats still sane after merge.
	if b.Collection.PathCongestion() != 4 {
		t.Errorf("merged path congestion = %d, want 4", b.Collection.PathCongestion())
	}

	b2 := Mixed("cyclic", 2, 0, 1, 3, 8, 4)
	if b2.Collection.Size() != 2*3+3 {
		t.Fatalf("cyclic mixed size = %d", b2.Collection.Size())
	}
}

func TestGeneratorPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"staggered structures 0": func() { Staggered(0, 2, 8, 3) },
		"staggered L 1":          func() { Staggered(1, 2, 8, 1) },
		"staggered D short":      func() { Staggered(1, 2, 1, 5) },
		"cyclic structures 0":    func() { Cyclic(0, 8, 3) },
		"cyclic L 1":             func() { Cyclic(1, 8, 1) },
		"cyclic D short":         func() { Cyclic(1, 1, 8) },
		"identical 0":            func() { Identical(0, 2, 3) },
		"identical D 0":          func() { Identical(1, 2, 0) },
		"mixed bad kind":         func() { Mixed("weird", 1, 2, 1, 2, 8, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}
