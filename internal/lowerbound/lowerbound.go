// Package lowerbound builds the adversarial path collections from the
// paper's lower-bound proofs:
//
//   - Staggered structures (Section 2.2, Figure 5): sqrt(log n) paths of
//     length D where path i+1 starts d = floor((L-1)/2)+1 levels after
//     path i and shares exactly one edge with it. With suitable delays a
//     chain of worms eliminates its predecessors, forcing the
//     Omega(sqrt(log_alpha n)) round count of Main Theorems 1.1/1.3.
//   - Cyclic structures (Section 3.2, Figure 6): three paths of length D
//     pairwise sharing an edge so that the three worms can block each
//     other in a directed cycle. Under the serve-first rule these force
//     the Omega(log_alpha n) rounds of Main Theorem 1.2; the priority rule
//     breaks the cycle (Main Theorem 1.3).
//   - Identical structures (the type-2 collections of both sections):
//     C-tilde identical paths of length D, forcing the L*C/B term and the
//     log log round count.
//
// Each generator returns a Build with the union graph, the path
// collection, and the per-structure worm index ranges, plus the
// adversarial rank assignment used by Main Theorem 1.3's lower bound.
package lowerbound

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/paths"
)

// Build is a generated gadget collection.
type Build struct {
	Graph *graph.Graph
	// Collection holds the paths of all structures, structure by
	// structure in order.
	Collection *paths.Collection
	// Structures[k] lists the worm (path) indices of structure k.
	Structures [][]int
	// Ranks is the adversarial priority assignment of Section 2.2: within
	// each staggered structure the worm on path i gets rank i (later
	// paths preferred). Zero for other gadget kinds.
	Ranks []int
}

// builder incrementally allocates nodes of the union graph.
type builder struct {
	edges   [][2]int
	n       int
	paths   []graph.Path
	structs [][]int
	ranks   []int
}

func (b *builder) node() int {
	b.n++
	return b.n - 1
}

func (b *builder) edge(u, v int) { b.edges = append(b.edges, [2]int{u, v}) }

func (b *builder) finish() *Build {
	if b.n == 0 {
		b.n = 1
	}
	g := graph.New(b.n)
	for _, e := range b.edges {
		g.AddEdge(e[0], e[1])
	}
	return &Build{
		Graph:      g,
		Collection: paths.MustCollection(g, b.paths),
		Structures: b.structs,
		Ranks:      b.ranks,
	}
}

// Staggered builds `structures` copies of the Figure 5 gadget, each with
// `pathsPer` paths of length D, for worms of length L. It panics unless
// pathsPer >= 1, L >= 2, and D is large enough to fit the stagger
// (D >= d+1 where d = floor((L-1)/2)+1).
func Staggered(structures, pathsPer, D, L int) *Build {
	if structures < 1 || pathsPer < 1 {
		panic("lowerbound: need at least one structure and one path")
	}
	if L < 2 {
		panic("lowerbound: staggered structures need L >= 2")
	}
	d := (L-1)/2 + 1
	if D < d+1 {
		panic(fmt.Sprintf("lowerbound: D=%d too short for stagger d=%d", D, d))
	}
	b := &builder{}
	for s := 0; s < structures; s++ {
		b.staggeredStructure(pathsPer, D, d)
	}
	return b.finish()
}

// staggeredStructure adds one Figure 5 gadget: path i (0-based) spans
// levels [i*d, i*d+D]; paths i and i+1 share the single edge from level
// (i+1)*d to (i+1)*d+1.
func (b *builder) staggeredStructure(pathsPer, D, d int) {
	// Shared edge j (between paths j-1 and j, 1-based j) gets two nodes.
	type shared struct{ a, z int }
	sh := make([]shared, pathsPer) // sh[j] used for j >= 1
	for j := 1; j < pathsPer; j++ {
		sh[j] = shared{a: b.node(), z: b.node()}
	}
	var idxs []int
	for i := 0; i < pathsPer; i++ {
		p := make(graph.Path, 0, D+1)
		// Offsets within path i: the shared edge with path i-1 sits at
		// offset 0 (levels i*d .. i*d+1), the one with path i+1 at offset
		// d (levels (i+1)*d .. (i+1)*d+1).
		for off := 0; off <= D; off++ {
			var u int
			switch {
			case i >= 1 && off == 0:
				u = sh[i].a
			case i >= 1 && off == 1:
				u = sh[i].z
			case i+1 < pathsPer && off == d:
				u = sh[i+1].a
			case i+1 < pathsPer && off == d+1:
				u = sh[i+1].z
			default:
				u = b.node()
			}
			p = append(p, u)
		}
		// d == 1 makes offsets 1 and d coincide; the switch above gives
		// priority to the i-1 edge, so re-check consistency: for d == 1,
		// offset 1 must be both sh[i].z and sh[i+1].a. Merge by rewriting.
		if d == 1 && i >= 1 && i+1 < pathsPer {
			// p[1] was set to sh[i].z by the switch; sh[i+1].a must be
			// the same node for the shared edge with path i+1 to exist.
			sh[i+1].a = p[1]
		}
		for k := 0; k+1 < len(p); k++ {
			b.edge(p[k], p[k+1])
		}
		b.paths = append(b.paths, p)
		b.ranks = append(b.ranks, i) // adversarial: later paths win
		idxs = append(idxs, len(b.paths)-1)
	}
	b.structs = append(b.structs, idxs)
}

// Cyclic builds `structures` copies of the Figure 6 gadget for worms of
// length L: three paths of length D; path j uses shared edge E_j at
// offset 0 and shared edge E_{(j+1) mod 3} at offset q = floor(L/2), so
// that three worms with similar delays eliminate each other in a directed
// cycle under the serve-first rule. It panics unless L >= 2 and
// D >= q+1.
func Cyclic(structures, D, L int) *Build {
	if structures < 1 {
		panic("lowerbound: need at least one structure")
	}
	if L < 2 {
		panic("lowerbound: cyclic structures need L >= 2")
	}
	q := L / 2
	if q < 1 {
		q = 1
	}
	if D < q+1 {
		panic(fmt.Sprintf("lowerbound: D=%d too short for offset q=%d", D, q))
	}
	b := &builder{}
	for s := 0; s < structures; s++ {
		b.cyclicStructure(D, q)
	}
	return b.finish()
}

// cyclicStructure adds one Figure 6 gadget. Shared edges E_0, E_1, E_2;
// path j starts with E_j (offset 0) and passes E_{(j+1)%3} at offset q.
// For q == 1 the end of E_j coincides with the start of E_{j+1}, so the
// three shared edges form a triangle on three nodes.
func (b *builder) cyclicStructure(D, q int) {
	type shared struct{ a, z int }
	var sh [3]shared
	if q == 1 {
		var x [3]int
		for j := range x {
			x[j] = b.node()
		}
		for j := range sh {
			sh[j] = shared{a: x[j], z: x[(j+1)%3]}
		}
	} else {
		for j := range sh {
			sh[j] = shared{a: b.node(), z: b.node()}
		}
	}
	var idxs []int
	for j := 0; j < 3; j++ {
		own := sh[j]
		next := sh[(j+1)%3]
		p := make(graph.Path, 0, D+1)
		for off := 0; off <= D; off++ {
			var u int
			switch {
			case off == 0:
				u = own.a
			case off == 1:
				u = own.z // for q == 1 this equals next.a
			case off == q:
				u = next.a
			case off == q+1:
				u = next.z
			default:
				u = b.node()
			}
			p = append(p, u)
		}
		for k := 0; k+1 < len(p); k++ {
			b.edge(p[k], p[k+1])
		}
		b.paths = append(b.paths, p)
		b.ranks = append(b.ranks, 0)
		idxs = append(idxs, len(b.paths)-1)
	}
	b.structs = append(b.structs, idxs)
}

// Identical builds `structures` type-2 gadgets, each consisting of
// `pathsPer` identical paths of length D (path congestion exactly
// pathsPer within a structure).
func Identical(structures, pathsPer, D int) *Build {
	if structures < 1 || pathsPer < 1 {
		panic("lowerbound: need at least one structure and one path")
	}
	if D < 1 {
		panic("lowerbound: paths need length >= 1")
	}
	b := &builder{}
	for s := 0; s < structures; s++ {
		p := make(graph.Path, D+1)
		for i := range p {
			p[i] = b.node()
		}
		for k := 0; k+1 < len(p); k++ {
			b.edge(p[k], p[k+1])
		}
		var idxs []int
		for c := 0; c < pathsPer; c++ {
			b.paths = append(b.paths, p.Clone())
			b.ranks = append(b.ranks, c)
			idxs = append(idxs, len(b.paths)-1)
		}
		b.structs = append(b.structs, idxs)
	}
	return b.finish()
}

// Mixed builds the full lower-bound collection of Section 2.2: half the
// worms in staggered (or cyclic) type-1 structures, half in identical
// type-2 structures, as the proofs combine both. kind is "staggered" or
// "cyclic".
func Mixed(kind string, type1Structures, pathsPer, type2Structures, congestion, D, L int) *Build {
	var t1 *Build
	switch kind {
	case "staggered":
		t1 = Staggered(type1Structures, pathsPer, D, L)
	case "cyclic":
		t1 = Cyclic(type1Structures, D, L)
	default:
		panic(fmt.Sprintf("lowerbound: unknown type-1 kind %q", kind))
	}
	t2 := Identical(type2Structures, congestion, D)
	return merge(t1, t2)
}

// merge concatenates two builds into one disjoint union.
func merge(a, b *Build) *Build {
	off := a.Graph.NumNodes()
	nb := &builder{n: off + b.Graph.NumNodes()}
	// Re-add a's edges and paths verbatim.
	for id := 0; id < a.Graph.NumLinks(); id += 2 {
		l := a.Graph.Link(id)
		nb.edge(l.From, l.To)
	}
	for id := 0; id < b.Graph.NumLinks(); id += 2 {
		l := b.Graph.Link(id)
		nb.edge(l.From+off, l.To+off)
	}
	for i := 0; i < a.Collection.Size(); i++ {
		nb.paths = append(nb.paths, a.Collection.Path(i))
	}
	for i := 0; i < b.Collection.Size(); i++ {
		p := b.Collection.Path(i)
		shifted := make(graph.Path, len(p))
		for k, u := range p {
			shifted[k] = u + off
		}
		nb.paths = append(nb.paths, shifted)
	}
	nb.structs = append(nb.structs, a.Structures...)
	base := a.Collection.Size()
	for _, st := range b.Structures {
		shifted := make([]int, len(st))
		for i, w := range st {
			shifted[i] = w + base
		}
		nb.structs = append(nb.structs, shifted)
	}
	nb.ranks = append(append([]int{}, a.Ranks...), b.Ranks...)
	return nb.finish()
}
