// Package shardsim partitions a topology into N shards and simulates them
// in lockstep under one deterministic clock, producing results
// byte-identical to the single-engine reference (see ClusterSimulator).
//
// The partitioner is an edge-cut splitter with per-topology strategies
// keyed off graph.Geometry: meshes and tori (and hypercubes, which
// register as side-2 meshes) split into coordinate boxes by repeated
// bisection of the largest extent; butterflies split into level bands
// first and rows second; graphs without geometry fall back to
// deterministic multi-source BFS growth. Every strategy is a pure
// function of the graph — no randomness — so a fixed topology always
// yields the same partition.
package shardsim

import (
	"fmt"

	"repro/internal/graph"
)

// Partition assigns every node of a graph to exactly one shard.
type Partition struct {
	// Shards is the shard count N requested at build time. Shards may be
	// empty when N exceeds what the strategy can split (e.g. more shards
	// than nodes).
	Shards int
	// Owner[u] is the shard owning node u.
	Owner []int32
	// LinkOwner[id] is the shard owning directed link id: the owner of the
	// link's From node (a coupler arbitrates the links leaving its node, so
	// contention for a link always resolves on the shard owning its tail).
	LinkOwner []int32
	// Strategy names the splitter that produced this partition: "whole"
	// (N=1), "box" (mesh/torus bisection), "bands" (butterfly), or "bfs".
	Strategy string
}

// PartitionGraph splits g into shards parts. It panics if shards < 1.
func PartitionGraph(g *graph.Graph, shards int) *Partition {
	if shards < 1 {
		panic(fmt.Sprintf("shardsim: shards %d < 1", shards))
	}
	n := g.NumNodes()
	p := &Partition{Shards: shards, Owner: make([]int32, n)}
	if shards == 1 {
		p.Strategy = "whole"
	} else {
		switch geo := g.Geometry(); geo.Kind {
		case "mesh", "torus":
			p.Strategy = "box"
			boxSplit(p.Owner, geo.Dims, shards, -1)
		case "butterfly":
			// Node ID = level*Rows + row: rows are the stride-1 axis,
			// levels the stride-Rows axis (axis index 1). Preferring the
			// level axis yields contiguous level bands while the bands
			// stay at least one level thick, then falls back to row splits.
			p.Strategy = "bands"
			boxSplit(p.Owner, []int{geo.Rows, geo.Levels}, shards, 1)
		default:
			p.Strategy = "bfs"
			bfsSplit(p.Owner, g, shards)
		}
	}
	p.LinkOwner = make([]int32, g.NumLinks())
	for id := range p.LinkOwner {
		p.LinkOwner[id] = p.Owner[g.Link(id).From]
	}
	return p
}

// CutLinks returns the directed links whose endpoints live on different
// shards, in ascending link-ID order. Because every undirected edge is a
// reverse pair (IDs 2k, 2k+1), the set is symmetric: a link is in the cut
// iff its reverse is.
func (p *Partition) CutLinks(g *graph.Graph) []graph.LinkID {
	var cut []graph.LinkID
	for id := 0; id < g.NumLinks(); id++ {
		l := g.Link(id)
		if p.Owner[l.From] != p.Owner[l.To] {
			cut = append(cut, id)
		}
	}
	return cut
}

// Counts returns the number of nodes owned by each shard.
func (p *Partition) Counts() []int {
	counts := make([]int, p.Shards)
	for _, s := range p.Owner {
		counts[s]++
	}
	return counts
}

// splitBox is one axis-aligned sub-box of the coordinate grid, with
// exclusive upper bounds.
type splitBox struct {
	lo, hi []int
}

func (b *splitBox) volume() int {
	v := 1
	for d := range b.lo {
		v *= b.hi[d] - b.lo[d]
	}
	return v
}

// boxSplit bisects the coordinate grid dims into shards boxes and writes
// box index s into owner[] for every node of box s. Each round splits the
// most populous splittable box (ties: lowest box index) at the floor
// midpoint of its largest extent (ties: lowest axis). preferAxis >= 0
// biases axis choice: that axis is split first whenever its extent is
// still at least 2 (the butterfly level-band rule).
func boxSplit(owner []int32, dims []int, shards, preferAxis int) {
	boxes := []splitBox{{lo: make([]int, len(dims)), hi: append([]int(nil), dims...)}}
	for len(boxes) < shards {
		best, bestVol := -1, 1
		for i := range boxes {
			if v := boxes[i].volume(); v > bestVol {
				best, bestVol = i, v
			}
		}
		if best < 0 {
			break // every remaining box is a single node; excess shards stay empty
		}
		b := &boxes[best]
		axis := -1
		if preferAxis >= 0 && b.hi[preferAxis]-b.lo[preferAxis] >= 2 {
			axis = preferAxis
		} else {
			ext := 1
			for d := range dims {
				if e := b.hi[d] - b.lo[d]; e > ext {
					axis, ext = d, e
				}
			}
		}
		mid := b.lo[axis] + (b.hi[axis]-b.lo[axis])/2
		nb := splitBox{lo: append([]int(nil), b.lo...), hi: append([]int(nil), b.hi...)}
		nb.lo[axis] = mid
		b.hi[axis] = mid
		boxes = append(boxes, nb)
	}
	// Paint owners: walk each box with a mixed-radix odometer over the
	// global strides (axis 0 is stride 1).
	strides := make([]int, len(dims))
	st := 1
	for d := range dims {
		strides[d] = st
		st *= dims[d]
	}
	coord := make([]int, len(dims))
	for s := range boxes {
		b := &boxes[s]
		copy(coord, b.lo)
		for {
			u := 0
			for d := range coord {
				u += coord[d] * strides[d]
			}
			owner[u] = int32(s)
			d := 0
			for d < len(coord) {
				coord[d]++
				if coord[d] < b.hi[d] {
					break
				}
				coord[d] = b.lo[d]
				d++
			}
			if d == len(coord) {
				break
			}
		}
	}
}

// bfsSplit grows shards regions by round-robin breadth-first expansion
// from evenly spaced seed nodes. Each shard claims at most ceil(n/shards)
// nodes; nodes unreached when every frontier drains (disconnected
// components, capped shards) go to the least-loaded shard. Determinism:
// seeds, frontier order, and adjacency order are all fixed by the graph.
func bfsSplit(owner []int32, g *graph.Graph, shards int) {
	n := g.NumNodes()
	for u := range owner {
		owner[u] = -1
	}
	maxPer := (n + shards - 1) / shards
	queues := make([][]graph.NodeID, shards)
	counts := make([]int, shards)
	claim := func(u graph.NodeID, s int) {
		owner[u] = int32(s)
		counts[s]++
		queues[s] = append(queues[s], u)
	}
	for s := 0; s < shards; s++ {
		seed := s * n / shards
		for probe := 0; probe < n; probe++ {
			u := (seed + probe) % n
			if owner[u] < 0 {
				claim(u, s)
				break
			}
		}
	}
	for live := true; live; {
		live = false
		for s := 0; s < shards; s++ {
			if len(queues[s]) == 0 {
				continue
			}
			u := queues[s][0]
			queues[s] = queues[s][1:]
			live = true
			if counts[s] >= maxPer {
				queues[s] = nil
				continue
			}
			for _, id := range g.Out(u) {
				v := g.Link(id).To
				if owner[v] < 0 && counts[s] < maxPer {
					claim(v, s)
				}
			}
		}
	}
	for u := 0; u < n; u++ {
		if owner[u] >= 0 {
			continue
		}
		best := 0
		for s := 1; s < shards; s++ {
			if counts[s] < counts[best] {
				best = s
			}
		}
		owner[u] = int32(best)
		counts[best]++
	}
}
