package shardsim

import (
	"sync"

	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// ClusterSimulator runs simulations partitioned across N engine shards
// in lockstep under one deterministic clock. Results are byte-identical
// to the single-engine reference: configurations outside the sharded
// fast path (rules other than ServeFirst, Vanish wreckage, probes that
// are not telemetry Collectors) transparently fall back to the plain
// engine, so callers never need to pre-check eligibility.
//
// A ClusterSimulator is not safe for concurrent use; the job layer
// already gives each worker its own simulator, matching how plain
// engines are owned today.
type ClusterSimulator struct {
	shards int
	eng    *sim.Engine
	sr     sim.ShardedRun

	mu sync.Mutex
	// part caches the partition of the last graph seen, keyed by the
	// graph value itself: sweeps run thousands of trials on one topology,
	// and the partitioner walks every node. The cache is guarded for the
	// benefit of read-only inspection (Partition) from monitoring code.
	partGraph *graph.Graph //optlint:guardedby mu
	part      *Partition   //optlint:guardedby mu

	// slotCols are the per-shard collectors fed by the lockstep runner's
	// slot events; they are folded into the caller's collector after each
	// run and reset, so they carry no state between runs.
	slotCols []*telemetry.Collector
}

// New returns a simulator splitting work across the given number of
// shards. shards < 1 is treated as 1 (the plain single-engine path).
func New(shards int) *ClusterSimulator {
	if shards < 1 {
		shards = 1
	}
	return &ClusterSimulator{shards: shards, eng: sim.NewEngine()}
}

// Shards reports the configured shard count.
func (c *ClusterSimulator) Shards() int { return c.shards }

// Partition returns the cached partition for g, computing it on first
// use. The partition is a pure function of the graph, so the cache never
// goes stale while the graph is unchanged (graphs are immutable after
// construction everywhere in this codebase).
func (c *ClusterSimulator) Partition(g *graph.Graph) *Partition {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.partGraph != g || c.part == nil {
		c.part = PartitionGraph(g, c.shards)
		c.partGraph = g
	}
	return c.part
}

// BoundaryHandoffs reports the cumulative worm-head handoffs exchanged
// between shards across all sharded runs of this simulator.
func (c *ClusterSimulator) BoundaryHandoffs() uint64 { return c.sr.BoundaryHandoffs }

// BoundaryWords reports the cumulative packed occupancy words shipped
// between shards across all sharded runs.
func (c *ClusterSimulator) BoundaryWords() uint64 { return c.sr.BoundaryWords }

// Run simulates one batch of worms. Eligible configurations execute on
// the lockstep sharded runner; everything else falls back to the plain
// engine. Either way the returned result is byte-identical to what
// sim.Run would produce, and remains owned by the simulator until the
// next Run call (the same contract as Engine.Run).
func (c *ClusterSimulator) Run(g *graph.Graph, worms []sim.Worm, cfg sim.Config) (*sim.Result, error) {
	col, colOK := cfg.Probe.(*telemetry.Collector)
	if c.shards == 1 || !sim.ShardedSupported(cfg) || (cfg.Probe != nil && !colOK) {
		return c.eng.Run(g, worms, cfg)
	}
	p := c.Partition(g)
	c.sr.Shards = p.Shards
	c.sr.LinkOwner = p.LinkOwner
	if col != nil {
		if len(c.slotCols) != p.Shards {
			c.slotCols = make([]*telemetry.Collector, p.Shards)
			for s := range c.slotCols {
				c.slotCols[s] = telemetry.NewCollector()
			}
		}
		if cap(c.sr.SlotProbes) < p.Shards {
			c.sr.SlotProbes = make([]telemetry.Probe, p.Shards)
		}
		c.sr.SlotProbes = c.sr.SlotProbes[:p.Shards]
		for s, sc := range c.slotCols {
			sc.Provision(g.NumLinks(), cfg.Bandwidth)
			c.sr.SlotProbes[s] = sc
		}
	} else {
		c.sr.SlotProbes = nil
	}
	before := [2]uint64{c.sr.BoundaryHandoffs, c.sr.BoundaryWords}
	res, err := c.eng.RunSharded(g, worms, cfg, &c.sr)
	if col != nil {
		// Fold the per-shard slot streams and this run's boundary traffic
		// into the caller's collector even on error: partial observations
		// match what a single engine would have recorded before failing.
		for _, sc := range c.slotCols {
			col.Merge(sc)
			sc.Reset()
		}
		col.AddBoundaryTraffic(c.sr.BoundaryHandoffs-before[0], c.sr.BoundaryWords-before[1])
	}
	return res, err
}

// RunDynamic simulates continuous operation with retries. Dynamic runs
// interleave per-request bookkeeping with stepping and are dominated by
// small launch batches, so they execute on the plain engine; the method
// exists so the cluster simulator satisfies the job layer's Simulator
// interface without callers special-casing trace-backed specs.
func (c *ClusterSimulator) RunDynamic(g *graph.Graph, reqs []sim.Request, cfg sim.DynamicConfig, src *rng.Source) (*sim.DynamicResult, error) {
	return sim.RunDynamicWithEngine(c.eng, g, reqs, cfg, src)
}
