package shardsim

import (
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/faults"
	"repro/internal/graph"
	"repro/internal/optical"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/topology"
)

// randomWorms mirrors the sim package's test generator: random simple
// shortest paths with random wavelengths, delays, and a rank permutation.
func randomWorms(g *graph.Graph, src *rng.Source, count, maxLen, maxDelay, bandwidth int) []sim.Worm {
	n := g.NumNodes()
	var worms []sim.Worm
	ranks := src.Perm(count)
	for id := 0; id < count; id++ {
		s := src.Intn(n)
		d := src.Intn(n)
		if s == d {
			continue
		}
		p := g.ShortestPath(graph.NodeID(s), graph.NodeID(d))
		if p == nil {
			continue
		}
		worms = append(worms, sim.Worm{
			ID:         id,
			Path:       p,
			Length:     1 + src.Intn(maxLen),
			Delay:      src.Intn(maxDelay + 1),
			Wavelength: src.Intn(bandwidth),
			Rank:       ranks[id],
		})
	}
	return worms
}

func compareRuns(t *testing.T, label string, got, want *sim.Result) {
	t.Helper()
	if len(got.Outcomes) != len(want.Outcomes) {
		t.Fatalf("%s: outcome counts %d vs %d", label, len(got.Outcomes), len(want.Outcomes))
	}
	for i := range got.Outcomes {
		if got.Outcomes[i] != want.Outcomes[i] {
			t.Fatalf("%s: outcome %d: %+v vs %+v", label, i, got.Outcomes[i], want.Outcomes[i])
		}
	}
	if got.CollisionCount != want.CollisionCount || got.Makespan != want.Makespan ||
		got.DeliveredCount != want.DeliveredCount || got.AckedCount != want.AckedCount ||
		got.FaultKillCount != want.FaultKillCount {
		t.Fatalf("%s: aggregates differ: %+v vs %+v", label, got, want)
	}
	if len(got.Collisions) != len(want.Collisions) {
		t.Fatalf("%s: collision logs %d vs %d", label, len(got.Collisions), len(want.Collisions))
	}
	for i := range got.Collisions {
		if got.Collisions[i] != want.Collisions[i] {
			t.Fatalf("%s: collision %d: %+v vs %+v", label, i, got.Collisions[i], want.Collisions[i])
		}
	}
}

func copyResult(r *sim.Result) *sim.Result {
	cp := *r
	cp.Outcomes = append([]sim.Outcome(nil), r.Outcomes...)
	cp.Collisions = append([]sim.Collision(nil), r.Collisions...)
	return &cp
}

// TestClusterVsEngineAcrossTopologies is the satellite fuzz arm: the
// cluster simulator with the real partitioner, across topologies hitting
// every partition strategy, pinned byte-for-byte against both the packed
// and the flat single-engine references.
func TestClusterVsEngineAcrossTopologies(t *testing.T) {
	topos := []struct {
		name string
		g    *graph.Graph
	}{
		{"torus2x4", topology.NewTorus(2, 4).Graph()},       // box strategy
		{"butterfly3", topology.NewButterfly(3).Graph()},    // bands strategy
		{"debruijn4", topology.NewDeBruijn(4).Graph()},      // bfs fallback
		{"mesh2x5", topology.NewMesh(2, 5).Graph()},         // box, odd side
		{"ring12", topology.NewRing(12).Graph()},            // bfs fallback
	}
	refEng := sim.NewEngine()
	seed := uint64(70000)
	for _, tp := range topos {
		for _, shards := range []int{1, 2, 4, 8} {
			cs := New(shards)
			for _, conv := range []func(graph.NodeID) bool{nil, sim.FullConversion} {
				for _, ack := range []int{0, 2} {
					seed++
					src := rng.New(seed)
					worms := randomWorms(tp.g, src, 24, 4, 8, 2)
					cfg := sim.Config{
						Bandwidth:        2,
						Rule:             optical.ServeFirst,
						Tie:              optical.TieEliminateAll,
						Wreckage:         sim.Drain,
						Conversion:       conv,
						AckLength:        ack,
						RecordCollisions: true,
						CheckInvariants:  true,
					}
					label := fmt.Sprintf("%s/shards=%d/conv=%v/ack=%d", tp.name, shards, conv != nil, ack)
					got, err := cs.Run(tp.g, worms, cfg)
					if err != nil {
						t.Fatalf("%s: cluster: %v", label, err)
					}
					gotCopy := copyResult(got)
					packed, err := refEng.Run(tp.g, worms, cfg)
					if err != nil {
						t.Fatalf("%s: packed: %v", label, err)
					}
					compareRuns(t, label+"/vs-packed", gotCopy, packed)
					cfg.ForceFlat = true
					flat, err := refEng.Run(tp.g, worms, cfg)
					if err != nil {
						t.Fatalf("%s: flat: %v", label, err)
					}
					compareRuns(t, label+"/vs-flat", gotCopy, flat)
				}
			}
		}
	}
}

// TestClusterFaultArm pins sharded execution under random fault plans —
// the ISSUE's required faults arm — against the flat reference.
func TestClusterFaultArm(t *testing.T) {
	g := topology.NewTorus(2, 4).Graph()
	refEng := sim.NewEngine()
	seed := uint64(81000)
	for _, shards := range []int{2, 4, 8} {
		cs := New(shards)
		for trial := 0; trial < 3; trial++ {
			seed++
			src := rng.New(seed)
			worms := randomWorms(g, src, 28, 4, 6, 2)
			plan := faults.MustRandom(g, 2, faults.GenConfig{
				Horizon: 20, LinkOutages: 6, WavelengthOutages: 5,
				AckLosses: 3, StuckCouplers: 2,
				MinDuration: 4, MaxDuration: 14,
			}, src.Split())
			cfg := sim.Config{
				Bandwidth:        2,
				Rule:             optical.ServeFirst,
				Wreckage:         sim.Drain,
				AckLength:        2,
				RecordCollisions: true,
				CheckInvariants:  true,
				Faults:           plan.MustCompile(g, 2),
			}
			label := fmt.Sprintf("shards=%d/trial=%d", shards, trial)
			got, err := cs.Run(g, worms, cfg)
			if err != nil {
				t.Fatalf("%s: cluster: %v", label, err)
			}
			gotCopy := copyResult(got)
			refCfg := cfg
			refCfg.ForceFlat = true
			flat, err := refEng.Run(g, worms, refCfg)
			if err != nil {
				t.Fatalf("%s: flat: %v", label, err)
			}
			compareRuns(t, label, gotCopy, flat)
		}
	}
}

// TestClusterFallback: ineligible configurations silently run on the
// plain engine and still match the reference.
func TestClusterFallback(t *testing.T) {
	g := topology.NewTorus(2, 4).Graph()
	cs := New(4)
	refEng := sim.NewEngine()
	src := rng.New(90210)
	worms := randomWorms(g, src, 16, 4, 6, 2)
	for _, cfg := range []sim.Config{
		{Bandwidth: 2, Rule: optical.Priority, Wreckage: sim.Drain, RecordCollisions: true},
		{Bandwidth: 2, Rule: optical.ServeFirst, Wreckage: sim.Vanish, RecordCollisions: true},
	} {
		got, err := cs.Run(g, worms, cfg)
		if err != nil {
			t.Fatalf("fallback run: %v", err)
		}
		gotCopy := copyResult(got)
		want, err := refEng.Run(g, worms, cfg)
		if err != nil {
			t.Fatal(err)
		}
		compareRuns(t, fmt.Sprintf("rule=%v/wreck=%v", cfg.Rule, cfg.Wreckage), gotCopy, want)
	}
	if cs.BoundaryHandoffs() != 0 || cs.BoundaryWords() != 0 {
		t.Fatal("fallback runs must not record boundary traffic")
	}
}

// TestClusterTelemetry: a caller handing the cluster simulator a plain
// Collector gets the same merged snapshot a single-engine run produces,
// plus the boundary-traffic counters.
func TestClusterTelemetry(t *testing.T) {
	g := topology.NewTorus(2, 4).Graph()
	src := rng.New(4242)
	worms := randomWorms(g, src, 24, 4, 8, 2)
	base := sim.Config{
		Bandwidth: 2, Rule: optical.ServeFirst, Wreckage: sim.Drain,
		AckLength: 2, CheckInvariants: true,
	}

	refCol := telemetry.NewCollector()
	refCfg := base
	refCfg.Probe = refCol
	if _, err := sim.NewEngine().Run(g, worms, refCfg); err != nil {
		t.Fatal(err)
	}
	refSnap := refCol.Snapshot()

	cs := New(4)
	col := telemetry.NewCollector()
	cfg := base
	cfg.Probe = col
	if _, err := cs.Run(g, worms, cfg); err != nil {
		t.Fatal(err)
	}
	snap := col.Snapshot()

	if snap.BoundaryHandoffs != cs.BoundaryHandoffs() || snap.BoundaryWords != cs.BoundaryWords() {
		t.Fatalf("boundary counters not folded: snap %d/%d vs simulator %d/%d",
			snap.BoundaryHandoffs, snap.BoundaryWords, cs.BoundaryHandoffs(), cs.BoundaryWords())
	}
	if snap.BoundaryHandoffs == 0 || snap.BoundaryWords == 0 {
		t.Fatal("expected boundary traffic on a 4-shard torus run")
	}
	// Everything except the (sharding-only) boundary counters must match
	// the single-engine collector exactly.
	snap.BoundaryHandoffs, snap.BoundaryWords = 0, 0
	want, err := json.Marshal(refSnap)
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	if string(want) != string(got) {
		t.Fatalf("cluster telemetry differs from reference:\nref:     %s\ncluster: %s", want, got)
	}
}

// TestClusterDynamicDelegates: trace-style dynamic runs execute
// unsharded but deterministically identical to sim.RunDynamic.
func TestClusterDynamicDelegates(t *testing.T) {
	g := topology.NewTorus(2, 4).Graph()
	reqs := []sim.Request{
		{ID: 0, Path: g.ShortestPath(0, 5), Arrival: 0, Length: 2},
		{ID: 1, Path: g.ShortestPath(3, 6), Arrival: 1, Length: 3},
		{ID: 2, Path: g.ShortestPath(7, 1), Arrival: 2, Length: 1},
	}
	cfg := sim.DynamicConfig{Sim: sim.Config{
		Bandwidth: 2, Rule: optical.ServeFirst, Wreckage: sim.Drain, AckLength: 1,
	}}
	cs := New(4)
	got, err := cs.RunDynamic(g, reqs, cfg, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	gotOutcomes := append([]sim.DynamicOutcome(nil), got.Outcomes...)
	want, err := sim.RunDynamic(g, reqs, cfg, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if got.Makespan != want.Makespan || got.TotalAttempts != want.TotalAttempts {
		t.Fatalf("dynamic aggregates differ: %+v vs %+v", got, want)
	}
	for i := range gotOutcomes {
		if gotOutcomes[i] != want.Outcomes[i] {
			t.Fatalf("dynamic outcome %d: %+v vs %+v", i, gotOutcomes[i], want.Outcomes[i])
		}
	}
}
