package shardsim

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/topology"
)

func partitionGraphs() []struct {
	name string
	g    *graph.Graph
} {
	return []struct {
		name string
		g    *graph.Graph
	}{
		{"torus(2,8)", topology.NewTorus(2, 8).Graph()},
		{"torus(3,4)", topology.NewTorus(3, 4).Graph()},
		{"mesh(2,9)", topology.NewMesh(2, 9).Graph()},
		{"hypercube(6)", topology.NewHypercube(6).Graph()},
		{"butterfly(4)", topology.NewButterfly(4).Graph()},
		{"wrapped-butterfly(4)", topology.NewWrappedButterfly(4).Graph()},
		{"debruijn(4)", topology.NewDeBruijn(4).Graph()}, // no geometry: BFS strategy
		{"ring(37)", topology.NewRing(37).Graph()},
	}
}

// Every node lands in exactly one shard, in range, and every shard's link
// ownership follows the From-node rule.
func TestPartitionCoverage(t *testing.T) {
	for _, tc := range partitionGraphs() {
		for _, shards := range []int{1, 2, 3, 4, 8} {
			p := PartitionGraph(tc.g, shards)
			if p.Shards != shards {
				t.Fatalf("%s/%d: Shards = %d", tc.name, shards, p.Shards)
			}
			if len(p.Owner) != tc.g.NumNodes() || len(p.LinkOwner) != tc.g.NumLinks() {
				t.Fatalf("%s/%d: owner table sizes %d/%d", tc.name, shards, len(p.Owner), len(p.LinkOwner))
			}
			for u, s := range p.Owner {
				if s < 0 || int(s) >= shards {
					t.Fatalf("%s/%d: node %d owner %d out of range", tc.name, shards, u, s)
				}
			}
			for id, s := range p.LinkOwner {
				if want := p.Owner[tc.g.Link(id).From]; s != want {
					t.Fatalf("%s/%d: link %d owner %d, From owner %d", tc.name, shards, id, s, want)
				}
			}
			total := 0
			for _, c := range p.Counts() {
				total += c
			}
			if total != tc.g.NumNodes() {
				t.Fatalf("%s/%d: counts sum %d != %d nodes", tc.name, shards, total, tc.g.NumNodes())
			}
		}
	}
}

// The boundary set is symmetric: a directed link crosses the cut iff its
// reverse does.
func TestPartitionBoundarySymmetric(t *testing.T) {
	for _, tc := range partitionGraphs() {
		for _, shards := range []int{2, 4, 8} {
			p := PartitionGraph(tc.g, shards)
			cut := p.CutLinks(tc.g)
			inCut := make(map[graph.LinkID]bool, len(cut))
			for _, id := range cut {
				inCut[id] = true
			}
			for _, id := range cut {
				if !inCut[tc.g.Reverse(id)] {
					t.Fatalf("%s/%d: link %d in cut but reverse %d is not",
						tc.name, shards, id, tc.g.Reverse(id))
				}
			}
			// And the cut is exactly the owner-disagreement set.
			for id := 0; id < tc.g.NumLinks(); id++ {
				l := tc.g.Link(id)
				if crosses := p.Owner[l.From] != p.Owner[l.To]; crosses != inCut[id] {
					t.Fatalf("%s/%d: link %d cut membership %v, owners %d->%d",
						tc.name, shards, id, inCut[id], p.Owner[l.From], p.Owner[l.To])
				}
			}
		}
	}
}

// Partitioning is a pure function of the topology: two independently built
// instances of the same graph partition identically.
func TestPartitionDeterministic(t *testing.T) {
	builders := []struct {
		name  string
		build func() *graph.Graph
	}{
		{"torus(2,8)", func() *graph.Graph { return topology.NewTorus(2, 8).Graph() }},
		{"butterfly(4)", func() *graph.Graph { return topology.NewButterfly(4).Graph() }},
		{"debruijn(4)", func() *graph.Graph { return topology.NewDeBruijn(4).Graph() }},
	}
	for _, tc := range builders {
		for _, shards := range []int{2, 4, 7} {
			a := PartitionGraph(tc.build(), shards)
			b := PartitionGraph(tc.build(), shards)
			if a.Strategy != b.Strategy {
				t.Fatalf("%s/%d: strategies %q vs %q", tc.name, shards, a.Strategy, b.Strategy)
			}
			for u := range a.Owner {
				if a.Owner[u] != b.Owner[u] {
					t.Fatalf("%s/%d: node %d owner %d vs %d", tc.name, shards, u, a.Owner[u], b.Owner[u])
				}
			}
		}
	}
}

// N=1 is the whole graph on shard 0 with an empty cut.
func TestPartitionSingleShard(t *testing.T) {
	for _, tc := range partitionGraphs() {
		p := PartitionGraph(tc.g, 1)
		if p.Strategy != "whole" {
			t.Fatalf("%s: strategy %q", tc.name, p.Strategy)
		}
		for u, s := range p.Owner {
			if s != 0 {
				t.Fatalf("%s: node %d owner %d", tc.name, u, s)
			}
		}
		if cut := p.CutLinks(tc.g); len(cut) != 0 {
			t.Fatalf("%s: single shard has %d cut links", tc.name, len(cut))
		}
	}
}

// Strategy selection follows the recorded geometry, and the box strategies
// produce reasonably balanced shards on power-of-two grids.
func TestPartitionStrategies(t *testing.T) {
	if p := PartitionGraph(topology.NewTorus(2, 8).Graph(), 4); p.Strategy != "box" {
		t.Fatalf("torus strategy %q", p.Strategy)
	}
	if p := PartitionGraph(topology.NewButterfly(4).Graph(), 4); p.Strategy != "bands" {
		t.Fatalf("butterfly strategy %q", p.Strategy)
	}
	if p := PartitionGraph(topology.NewDeBruijn(4).Graph(), 4); p.Strategy != "bfs" {
		t.Fatalf("debruijn strategy %q", p.Strategy)
	}
	p := PartitionGraph(topology.NewTorus(2, 8).Graph(), 4)
	for s, c := range p.Counts() {
		if c != 16 {
			t.Fatalf("torus(2,8)/4: shard %d has %d nodes, want 16", s, c)
		}
	}
	// Butterfly level bands: with shards == levels every shard is exactly
	// one level (which level maps to which shard is an implementation
	// detail of the bisection order).
	bf := topology.NewWrappedButterfly(4)
	p = PartitionGraph(bf.Graph(), 4)
	levelOf := make(map[int32]int)
	for u, s := range p.Owner {
		l := bf.LevelOf(u)
		if seen, ok := levelOf[s]; ok && seen != l {
			t.Fatalf("shard %d spans levels %d and %d", s, seen, l)
		}
		levelOf[s] = l
	}
	if len(levelOf) != 4 {
		t.Fatalf("level bands: %d distinct shards, want 4", len(levelOf))
	}
}

// More shards than nodes: excess shards stay empty, everything else holds.
func TestPartitionMoreShardsThanNodes(t *testing.T) {
	g := topology.NewRing(5).Graph()
	p := PartitionGraph(g, 8)
	total := 0
	for _, c := range p.Counts() {
		total += c
	}
	if total != 5 {
		t.Fatalf("counts sum %d", total)
	}
	for u, s := range p.Owner {
		if s < 0 || s >= 8 {
			t.Fatalf("node %d owner %d", u, s)
		}
	}
}
