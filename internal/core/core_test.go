package core

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/optical"
	"repro/internal/paths"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topology"
)

func torusPermCollection(t *testing.T, side int, seed uint64) *paths.Collection {
	t.Helper()
	tor := topology.NewTorus(2, side)
	src := rng.New(seed)
	prs := paths.RandomPermutation(tor.Graph().NumNodes(), src)
	c, err := paths.Build(tor.Graph(), prs, paths.DimOrderTorus(tor))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestRunDeliversEverything(t *testing.T) {
	c := torusPermCollection(t, 5, 1)
	res, err := Run(c, Config{
		Bandwidth:       2,
		Length:          3,
		Rule:            optical.ServeFirst,
		AckLength:       1,
		CheckInvariants: true,
	}, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllDelivered {
		t.Fatalf("not all delivered after %d rounds; still active: %v",
			res.TotalRounds, res.StillActive)
	}
	if res.TotalRounds < 1 {
		t.Error("no rounds recorded")
	}
	if res.TotalTime <= 0 || res.MeasuredTime <= 0 {
		t.Error("times not accounted")
	}
	// Accounting identity: each round contributes Delta + 2(D+L).
	sum := 0
	for _, r := range res.Rounds {
		want := r.DelayRange + 2*(res.Params.Dilation+res.Params.Length)
		if r.AccountedTime != want {
			t.Errorf("round %d accounted %d, want %d", r.Round, r.AccountedTime, want)
		}
		sum += r.AccountedTime
	}
	if sum != res.TotalTime {
		t.Errorf("TotalTime %d != sum %d", res.TotalTime, sum)
	}
}

func TestRunPriorityDelivers(t *testing.T) {
	c := torusPermCollection(t, 5, 3)
	res, err := Run(c, Config{
		Bandwidth:       1,
		Length:          2,
		Rule:            optical.Priority,
		Priorities:      RandomRanks{},
		AckLength:       1,
		CheckInvariants: true,
	}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllDelivered {
		t.Fatalf("priority run incomplete: %d still active", len(res.StillActive))
	}
}

func TestActiveCountsMonotone(t *testing.T) {
	c := torusPermCollection(t, 6, 5)
	res, err := Run(c, Config{
		Bandwidth: 1, Length: 2, Rule: optical.ServeFirst, AckLength: 1,
	}, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	prev := c.Size() + 1
	for _, r := range res.Rounds {
		if r.ActiveBefore > prev {
			t.Fatalf("active count grew: %d -> %d", prev, r.ActiveBefore)
		}
		if r.ActiveBefore <= 0 {
			t.Fatal("round run with no active worms")
		}
		prev = r.ActiveBefore - r.Acked
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	c := torusPermCollection(t, 5, 11)
	run := func() *Result {
		res, err := Run(c, Config{
			Bandwidth: 2, Length: 2, Rule: optical.ServeFirst, AckLength: 1,
		}, rng.New(123))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.TotalRounds != b.TotalRounds || a.TotalTime != b.TotalTime {
		t.Fatalf("nondeterministic: %d/%d vs %d/%d rounds/time",
			a.TotalRounds, a.TotalTime, b.TotalRounds, b.TotalTime)
	}
	for i := range a.Rounds {
		if a.Rounds[i] != b.Rounds[i] {
			t.Fatalf("round %d stats differ", i)
		}
	}
}

func TestEmptyCollection(t *testing.T) {
	g := topology.NewChain(3).Graph()
	c, err := paths.NewCollection(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(c, Config{Bandwidth: 1, Length: 1}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllDelivered || res.TotalRounds != 0 {
		t.Error("empty collection should be trivially complete")
	}
}

func TestConfigValidation(t *testing.T) {
	c := torusPermCollection(t, 5, 2)
	if _, err := Run(c, Config{Bandwidth: 0, Length: 1}, rng.New(1)); err == nil {
		t.Error("bandwidth 0 accepted")
	}
	if _, err := Run(c, Config{Bandwidth: 1, Length: 0}, rng.New(1)); err == nil {
		t.Error("length 0 accepted")
	}
}

func TestMaxRoundsCap(t *testing.T) {
	// An impossible workload: two identical paths on one wavelength with
	// delay range 1 always collide (same delay, same wavelength, B=1).
	g := topology.NewChain(4).Graph()
	c, err := paths.NewCollection(g, []graph.Path{
		{0, 1, 2, 3}, {0, 1, 2, 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(c, Config{
		Bandwidth: 1,
		Length:    2,
		Rule:      optical.ServeFirst,
		Schedule:  ConstantSchedule{Delta: 1},
		MaxRounds: 5,
	}, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if res.AllDelivered {
		t.Fatal("identical forced collisions cannot all deliver")
	}
	if res.TotalRounds != 5 {
		t.Errorf("rounds = %d, want cap 5", res.TotalRounds)
	}
	if len(res.StillActive) != 2 {
		t.Errorf("still active = %v", res.StillActive)
	}
}

func TestTrackCongestionHalves(t *testing.T) {
	// With TieEliminateAll and Delta 1 every round keeps congestion at 2;
	// instead verify plumbing: residual congestion is reported and
	// non-increasing on a real workload.
	c := torusPermCollection(t, 6, 21)
	res, err := Run(c, Config{
		Bandwidth:       1,
		Length:          2,
		Rule:            optical.ServeFirst,
		AckLength:       0,
		TrackCongestion: true,
	}, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds[0].ResidualCongestion != res.Params.PathCongestion {
		t.Errorf("round 1 residual %d != initial C %d",
			res.Rounds[0].ResidualCongestion, res.Params.PathCongestion)
	}
	for i := 1; i < len(res.Rounds); i++ {
		if res.Rounds[i].ResidualCongestion > res.Rounds[i-1].ResidualCongestion {
			t.Errorf("residual congestion grew between rounds %d and %d", i, i+1)
		}
	}
}

func TestRecordCollisionsTraces(t *testing.T) {
	c := torusPermCollection(t, 5, 8)
	res, err := Run(c, Config{
		Bandwidth: 1, Length: 2, Rule: optical.ServeFirst,
		RecordCollisions: true,
	}, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.RoundTraces) != res.TotalRounds {
		t.Fatalf("traces %d != rounds %d", len(res.RoundTraces), res.TotalRounds)
	}
	total := 0
	for i, tr := range res.RoundTraces {
		if len(tr) != res.Rounds[i].Collisions {
			t.Errorf("round %d trace length mismatch", i+1)
		}
		total += len(tr)
	}
	_ = total
}

func TestSchedules(t *testing.T) {
	p := Params{N: 1024, Dilation: 10, PathCongestion: 64, Length: 4, Bandwidth: 2}
	h := HalvingSchedule{}
	prev := h.Range(1, p)
	if prev <= p.Dilation+p.Length {
		t.Error("halving round 1 must exceed D+L")
	}
	for t2 := 2; t2 < 12; t2++ {
		cur := h.Range(t2, p)
		if cur > prev {
			t.Errorf("halving schedule grew at round %d: %d -> %d", t2, prev, cur)
		}
		prev = cur
	}
	// Floor: for large t the range stabilizes.
	if h.Range(30, p) != h.Range(40, p) {
		t.Error("halving schedule should reach a floor")
	}

	f := FixedSchedule{}
	if f.Range(1, p) != f.Range(9, p) {
		t.Error("fixed schedule must be constant")
	}

	d := DoublingSchedule{Base: 2}
	if d.Range(2, p) <= d.Range(1, p) {
		t.Error("doubling schedule must grow")
	}
	if d.Range(50, p) != d.Range(31, p) {
		t.Error("doubling schedule shift must clamp")
	}

	cs := ConstantSchedule{Delta: 7}
	if cs.Range(3, p) != 7 {
		t.Error("constant schedule")
	}
	if (ConstantSchedule{Delta: 0}).Range(1, p) != 1 {
		t.Error("constant schedule floor of 1")
	}

	for _, s := range []DelaySchedule{h, f, d, cs} {
		if s.Name() == "" {
			t.Error("schedule without name")
		}
	}
}

func TestPaperExactLargerThanPractical(t *testing.T) {
	p := Params{N: 256, Dilation: 8, PathCongestion: 32, Length: 4, Bandwidth: 2}
	if PaperExact().Range(1, p) <= (HalvingSchedule{}).Range(1, p) {
		t.Error("paper-exact constants must dominate the practical defaults")
	}
}

func TestPriorityAssigners(t *testing.T) {
	src := rng.New(3)
	active := []int{4, 7, 9}

	rr := RandomRanks{}.Assign(1, active, src)
	if len(rr) != 3 {
		t.Fatal("rank count")
	}
	seen := map[int]bool{}
	for _, r := range rr {
		if seen[r] {
			t.Fatal("random ranks not distinct")
		}
		seen[r] = true
	}

	sr := StaticRanks{}.Assign(1, active, src)
	if sr[0] != 4 || sr[1] != 7 || sr[2] != 9 {
		t.Errorf("static ranks = %v", sr)
	}

	er := ExplicitRanks{Ranks: []int{0, 0, 0, 0, 40, 0, 0, 70, 0, 90}}.Assign(1, active, src)
	if er[0] != 40 || er[1] != 70 || er[2] != 90 {
		t.Errorf("explicit ranks = %v", er)
	}
}

func TestParamsLog2N(t *testing.T) {
	if (Params{N: 8}).Log2N() != 3 {
		t.Error("Log2N(8)")
	}
	if (Params{N: 0}).Log2N() != 1 {
		t.Error("Log2N floor at N=2")
	}
}

func TestOracleVsRealAcks(t *testing.T) {
	// With oracle acks there can be no duplicate deliveries.
	c := torusPermCollection(t, 5, 31)
	res, err := Run(c, Config{
		Bandwidth: 1, Length: 2, Rule: optical.ServeFirst, AckLength: 0,
	}, rng.New(17))
	if err != nil {
		t.Fatal(err)
	}
	if res.DuplicateAcks != 0 {
		t.Errorf("oracle acks produced %d duplicates", res.DuplicateAcks)
	}
}

func TestWavelengthPolicies(t *testing.T) {
	c := torusPermCollection(t, 5, 41)
	src := rng.New(8)
	active := make([]int, c.Size())
	for i := range active {
		active[i] = i
	}

	rw := (RandomWavelengths{}).Assign(1, active, c, 4, src)
	if len(rw) != len(active) {
		t.Fatal("random policy length")
	}
	for _, w := range rw {
		if w < 0 || w >= 4 {
			t.Fatalf("random wavelength %d out of range", w)
		}
	}

	cw := &ColoredWavelengths{}
	colors, needed := c.GreedyWavelengthAssignment()
	got := cw.Assign(1, active, c, needed, src)
	// With B >= needed, the assignment equals the coloring: collision-free.
	for i, idx := range active {
		if got[i] != colors[idx] {
			t.Fatalf("colored policy diverges from coloring at %d", idx)
		}
	}
	// Cached across rounds: same output.
	again := cw.Assign(2, active, c, needed, src)
	for i := range got {
		if got[i] != again[i] {
			t.Fatal("colored policy not stable across rounds")
		}
	}
	if (RandomWavelengths{}).Name() != "random" || cw.Name() != "colored" {
		t.Error("policy names")
	}
}

func TestColoredWavelengthsCollisionFreeFirstRound(t *testing.T) {
	c := torusPermCollection(t, 6, 17)
	_, needed := c.GreedyWavelengthAssignment()
	res, err := Run(c, Config{
		Bandwidth:   needed,
		Length:      4,
		Rule:        optical.ServeFirst,
		Wavelengths: &ColoredWavelengths{},
	}, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalRounds != 1 {
		t.Fatalf("rounds = %d, want 1 (static RWA seeding)", res.TotalRounds)
	}
	if res.Rounds[0].Collisions != 0 {
		t.Errorf("collisions = %d, want 0", res.Rounds[0].Collisions)
	}
}

func TestHeterogeneousLengths(t *testing.T) {
	c := torusPermCollection(t, 5, 51)
	lengths := make([]int, c.Size())
	for i := range lengths {
		lengths[i] = 1 + i%6
	}
	res, err := Run(c, Config{
		Bandwidth: 2, Length: 1, Lengths: lengths,
		Rule: optical.ServeFirst, AckLength: 1, CheckInvariants: true,
	}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllDelivered {
		t.Fatal("heterogeneous workload incomplete")
	}
	if res.Params.Length != 6 {
		t.Errorf("params length = %d, want max 6", res.Params.Length)
	}
	// Validation.
	if _, err := Run(c, Config{Bandwidth: 1, Length: 1, Lengths: []int{1}}, rng.New(1)); err == nil {
		t.Error("wrong Lengths size accepted")
	}
	bad := make([]int, c.Size())
	if _, err := Run(c, Config{Bandwidth: 1, Length: 1, Lengths: bad}, rng.New(1)); err == nil {
		t.Error("zero per-worm length accepted")
	}
}

func TestDrainVanishStatisticallyIndistinguishable(t *testing.T) {
	// Ablation A2's claim, tested properly: the distribution of total
	// rounds under Drain and Vanish wreckage should not differ at the 0.1%
	// level on a moderate workload.
	c := torusPermCollection(t, 6, 61)
	sample := func(pol sim.WreckagePolicy, seed uint64) []float64 {
		src := rng.New(seed)
		var xs []float64
		for i := 0; i < 40; i++ {
			res, err := Run(c, Config{
				Bandwidth: 1, Length: 3, Rule: optical.ServeFirst,
				Wreckage: pol,
			}, src.Split())
			if err != nil {
				t.Fatal(err)
			}
			xs = append(xs, float64(res.TotalRounds))
		}
		return xs
	}
	drain := sample(sim.Drain, 100)
	vanish := sample(sim.Vanish, 200)
	_, p, err := stats.WelchT(drain, vanish)
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.001 {
		t.Errorf("drain and vanish round counts differ significantly (p = %v)", p)
	}
}

func TestWormRounds(t *testing.T) {
	c := torusPermCollection(t, 5, 71)
	res, err := Run(c, Config{
		Bandwidth: 1, Length: 2, Rule: optical.ServeFirst, AckLength: 1,
	}, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.WormRounds) != c.Size() {
		t.Fatal("WormRounds length")
	}
	maxRound := 0
	for i, r := range res.WormRounds {
		if res.AllDelivered && r < 1 {
			t.Fatalf("worm %d has no completion round", i)
		}
		if r > res.TotalRounds {
			t.Fatalf("worm %d round %d beyond total %d", i, r, res.TotalRounds)
		}
		if r > maxRound {
			maxRound = r
		}
	}
	if res.AllDelivered && maxRound != res.TotalRounds {
		t.Errorf("last completion round %d != total rounds %d", maxRound, res.TotalRounds)
	}
}
