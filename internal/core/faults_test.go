package core

import (
	"reflect"
	"testing"

	"repro/internal/faults"
	"repro/internal/graph"
	"repro/internal/optical"
	"repro/internal/paths"
	"repro/internal/rng"
	"repro/internal/telemetry"
	"repro/internal/topology"
)

func TestDegradedRunDeliversDespiteOutages(t *testing.T) {
	c := torusPermCollection(t, 5, 3)
	g := c.Graph()
	// Down a handful of links for the whole early protocol; repairs land
	// well within the round budget, so everything still delivers.
	plan := &faults.Plan{Faults: []faults.Fault{
		{Kind: faults.LinkOutage, Link: 0, Start: 0, End: 200},
		{Kind: faults.LinkOutage, Link: 7, Start: 0, End: 200},
		{Kind: faults.AckLoss, Link: 3, Start: 0, End: 150},
	}}
	res, err := Run(c, Config{
		Bandwidth:       2,
		Length:          3,
		Rule:            optical.ServeFirst,
		AckLength:       1,
		CheckInvariants: true,
		Faults:          plan,
	}, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllDelivered {
		t.Fatalf("degraded run failed to deliver; still active: %v", res.StillActive)
	}
	if res.TotalRerouted == 0 {
		t.Error("no worm was rerouted although links 0 and 7 were down at round start")
	}
	sumKills, sumRerouted := 0, 0
	for _, r := range res.Rounds {
		sumKills += r.FaultKills
		sumRerouted += r.Rerouted
	}
	if sumKills != res.TotalFaultKills || sumRerouted != res.TotalRerouted {
		t.Errorf("totals %d/%d do not match round sums %d/%d",
			res.TotalFaultKills, res.TotalRerouted, sumKills, sumRerouted)
	}
	// The first round starts with both outages active: every path through
	// link 0 or 7 either reroutes or dies at the dark link, never crosses.
	_ = g
}

func TestDegradedRunValidatesPlan(t *testing.T) {
	c := torusPermCollection(t, 4, 1)
	bad := &faults.Plan{Faults: []faults.Fault{
		{Kind: faults.LinkOutage, Link: 10_000, Start: 0, End: 0},
	}}
	if _, err := Run(c, Config{Bandwidth: 1, Length: 2, Faults: bad}, rng.New(1)); err == nil {
		t.Fatal("accepted a plan referencing a nonexistent link")
	}
}

func TestDegradedRerouteAvoidsDownLink(t *testing.T) {
	// Ring of 4 with one worm routed 0->1->2; downing 0->1 forever forces
	// the deterministic detour 0->3->2 in round 1 and delivery anyway.
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 0)
	c := paths.MustCollection(g, []graph.Path{{0, 1, 2}})
	l01, _ := g.LinkBetween(0, 1)
	plan := &faults.Plan{Faults: []faults.Fault{
		{Kind: faults.LinkOutage, Link: l01, Start: 0, End: 0},
	}}
	res, err := Run(c, Config{Bandwidth: 1, Length: 2, Faults: plan}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllDelivered {
		t.Fatalf("worm not delivered around a permanent outage: %+v", res)
	}
	if res.TotalRerouted < 1 {
		t.Error("delivery without a recorded reroute")
	}
	if res.TotalFaultKills != 0 {
		t.Errorf("rerouted worm still hit the fault %d times", res.TotalFaultKills)
	}
}

func TestDegradedUnreachableRetriesUntilRepair(t *testing.T) {
	// Chain 0-1-2: both directions of edge {1,2} down for the first
	// rounds cut node 2 off entirely. The worm keeps its path, dies at the
	// outage, and delivers after the repair.
	g := graph.New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	c := paths.MustCollection(g, []graph.Path{{0, 1, 2}})
	l12, _ := g.LinkBetween(1, 2)
	l21, _ := g.LinkBetween(2, 1)
	plan := &faults.Plan{Faults: []faults.Fault{
		{Kind: faults.LinkOutage, Link: l12, Start: 0, End: 40},
		{Kind: faults.LinkOutage, Link: l21, Start: 0, End: 40},
	}}
	res, err := Run(c, Config{Bandwidth: 1, Length: 2, AckLength: 1, Faults: plan}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllDelivered {
		t.Fatalf("worm never delivered after repair: %+v", res)
	}
	if res.TotalFaultKills == 0 {
		t.Error("expected early attempts to die at the outage")
	}
	if res.TotalRerouted != 0 {
		t.Errorf("rerouted %d times although no alternative route exists", res.TotalRerouted)
	}
	if res.TotalRounds < 2 {
		t.Errorf("delivered in %d rounds; the outage should cost at least one retry", res.TotalRounds)
	}
}

// TestDegradedReplayDeterminism is the replay satellite: one seed and one
// generated plan reproduce identical results AND identical telemetry
// snapshots across independent runs (the CI race job runs this under
// -race as well).
func TestDegradedReplayDeterminism(t *testing.T) {
	run := func() (*Result, *telemetry.Snapshot) {
		tor := topology.NewTorus(2, 5)
		src := rng.New(1234)
		prs := paths.RandomPermutation(tor.Graph().NumNodes(), src)
		c, err := paths.Build(tor.Graph(), prs, paths.DimOrderTorus(tor))
		if err != nil {
			t.Fatal(err)
		}
		plan := faults.MustRandom(c.Graph(), 2, faults.GenConfig{
			Horizon: 120, LinkOutages: 6, WavelengthOutages: 3, AckLosses: 3,
			StuckCouplers: 2, MinDuration: 10, MaxDuration: 60,
		}, src.Split())
		col := telemetry.NewCollector()
		res, err := Run(c, Config{
			Bandwidth:       2,
			Length:          3,
			Rule:            optical.Priority,
			AckLength:       1,
			CheckInvariants: true,
			Faults:          plan,
			Probe:           col,
		}, src)
		if err != nil {
			t.Fatal(err)
		}
		return res, col.Snapshot()
	}
	r1, s1 := run()
	r2, s2 := run()
	if !reflect.DeepEqual(r1, r2) {
		t.Fatal("degraded protocol runs with one seed diverged")
	}
	if !reflect.DeepEqual(s1, s2) {
		t.Fatalf("telemetry snapshots diverged:\n%+v\n%+v", s1, s2)
	}
	if !r1.AllDelivered {
		t.Errorf("replay scenario did not deliver; still active: %v", r1.StillActive)
	}
}
