package core

import (
	"sync"

	"repro/internal/paths"
	"repro/internal/rng"
)

// WavelengthPolicy chooses each active worm's wavelength per round. The
// paper's protocol draws uniformly at random (RandomWavelengths); a
// conflict-aware static choice (ColoredWavelengths) seeds the round with
// a greedy RWA coloring reduced mod B, so worms that share links prefer
// different wavelengths whenever B permits.
type WavelengthPolicy interface {
	// Assign returns a wavelength in [0, bandwidth) for each active worm
	// index.
	Assign(round int, active []int, c *paths.Collection, bandwidth int, src *rng.Source) []int
	// Name identifies the policy in reports.
	Name() string
}

// RandomWavelengths is the paper's policy: independent uniform draws.
type RandomWavelengths struct{}

// Assign implements WavelengthPolicy.
func (RandomWavelengths) Assign(round int, active []int, c *paths.Collection, bandwidth int, src *rng.Source) []int {
	out := make([]int, len(active))
	for i := range out {
		out[i] = src.Intn(bandwidth)
	}
	return out
}

// Name implements WavelengthPolicy.
func (RandomWavelengths) Name() string { return "random" }

// ColoredWavelengths assigns the greedy conflict-graph color of each path
// reduced modulo B. With B at least the greedy color count the first
// round is collision-free (a static RWA); with smaller B the coloring
// still separates most conflicting pairs. The coloring is computed once
// per collection and reused across rounds.
// A ColoredWavelengths value may be shared by concurrent runs; the
// coloring cache is guarded.
type ColoredWavelengths struct {
	mu        sync.Mutex
	colorsFor *paths.Collection
	colors    []int
}

// Assign implements WavelengthPolicy.
func (p *ColoredWavelengths) Assign(round int, active []int, c *paths.Collection, bandwidth int, src *rng.Source) []int {
	p.mu.Lock()
	if p.colorsFor != c {
		p.colors, _ = c.GreedyWavelengthAssignment()
		p.colorsFor = c
	}
	colors := p.colors
	p.mu.Unlock()
	out := make([]int, len(active))
	for i, idx := range active {
		out[i] = colors[idx] % bandwidth
	}
	return out
}

// Name implements WavelengthPolicy.
func (p *ColoredWavelengths) Name() string { return "colored" }
