package core

import (
	"reflect"
	"testing"

	"repro/internal/optical"
	"repro/internal/rng"
	"repro/internal/telemetry"
)

// roundRecorder records only the protocol-level hooks, forwarding nothing.
type roundRecorder struct {
	telemetry.Collector // engine-level hooks inherit the collector
	started             []telemetry.RoundInfo
	finished            []telemetry.RoundInfo
}

// RoundStarted records the round opening.
func (r *roundRecorder) RoundStarted(round, delayRange, active int) {
	r.started = append(r.started, telemetry.RoundInfo{Round: round, DelayRange: delayRange, Active: active})
	r.Collector.RoundStarted(round, delayRange, active)
}

// RoundFinished records the round summary.
func (r *roundRecorder) RoundFinished(info telemetry.RoundInfo) {
	r.finished = append(r.finished, info)
	r.Collector.RoundFinished(info)
}

// TestProbeRoundHooks checks the protocol fires RoundStarted/RoundFinished
// in matched, ordered pairs whose payloads agree with the RoundStats the
// protocol itself reports — and that attaching the probe does not perturb
// the run.
func TestProbeRoundHooks(t *testing.T) {
	c := torusPermCollection(t, 5, 11)
	cfg := Config{
		Bandwidth: 2,
		Length:    3,
		Rule:      optical.ServeFirst,
		AckLength: 1,
	}
	rec := &roundRecorder{Collector: *telemetry.NewCollector()}
	cfg.Probe = rec
	probed, err := Run(c, cfg, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Probe = nil
	plain, err := Run(c, cfg, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(probed.Rounds, plain.Rounds) ||
		probed.TotalTime != plain.TotalTime ||
		probed.MeasuredTime != plain.MeasuredTime {
		t.Errorf("probe changed the protocol result:\nprobed %+v\nplain  %+v", probed, plain)
	}

	if len(rec.started) != len(rec.finished) || len(rec.finished) != probed.TotalRounds {
		t.Fatalf("hook counts: %d started, %d finished, %d rounds",
			len(rec.started), len(rec.finished), probed.TotalRounds)
	}
	for i, rs := range probed.Rounds {
		if got := rec.started[i]; got.Round != rs.Round || got.DelayRange != rs.DelayRange || got.Active != rs.ActiveBefore {
			t.Errorf("RoundStarted[%d] = %+v vs stats %+v", i, got, rs)
		}
		want := telemetry.RoundInfo{
			Round:              rs.Round,
			DelayRange:         rs.DelayRange,
			Active:             rs.ActiveBefore,
			Delivered:          rs.Delivered,
			Acked:              rs.Acked,
			Collisions:         rs.Collisions,
			Makespan:           rs.Makespan,
			ResidualCongestion: rs.ResidualCongestion,
		}
		if rec.finished[i] != want {
			t.Errorf("RoundFinished[%d] = %+v, want %+v", i, rec.finished[i], want)
		}
	}

	// The embedded collector observed one engine run per protocol round and
	// every worm's eventual acknowledgement.
	s := rec.Collector.Snapshot()
	if s.Runs != uint64(probed.TotalRounds) || s.RoundsObserved != uint64(probed.TotalRounds) {
		t.Errorf("collector runs/rounds = %d/%d, want %d", s.Runs, s.RoundsObserved, probed.TotalRounds)
	}
	n := c.Size()
	if probed.AllDelivered && s.Acked != uint64(n) {
		t.Errorf("collector acked %d of %d worms", s.Acked, n)
	}
	// Retries histogram: one observation per acked worm, with the round
	// histogram consistent with the per-round Acked counts.
	var ackSum uint64
	for _, rs := range probed.Rounds {
		ackSum += uint64(rs.Acked) * uint64(rs.Round)
	}
	if s.RoundsToAck.Count != s.Acked || s.RoundsToAck.Sum != ackSum {
		t.Errorf("rounds-to-ack count/sum = %d/%d, want %d/%d",
			s.RoundsToAck.Count, s.RoundsToAck.Sum, s.Acked, ackSum)
	}
}

// TestRoundUtilizationBands pins the satellite fix: Utilization is
// message-band occupancy over message-band capacity, and ack traffic is
// reported separately, so the two never mix denominators.
func TestRoundUtilizationBands(t *testing.T) {
	c := torusPermCollection(t, 4, 2)
	res, err := Run(c, Config{
		Bandwidth: 2,
		Length:    3,
		Rule:      optical.ServeFirst,
		AckLength: 1,
	}, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	for _, rs := range res.Rounds {
		if rs.Utilization < 0 || rs.Utilization > 1 {
			t.Errorf("round %d: Utilization %v out of [0,1]", rs.Round, rs.Utilization)
		}
		if rs.AckUtilization < 0 || rs.AckUtilization > 1 {
			t.Errorf("round %d: AckUtilization %v out of [0,1]", rs.Round, rs.AckUtilization)
		}
	}
	// With L=3 worms against 1-flit acks the message band must dominate.
	if res.Rounds[0].Utilization <= res.Rounds[0].AckUtilization {
		t.Errorf("round 1: message utilization %v should exceed ack utilization %v",
			res.Rounds[0].Utilization, res.Rounds[0].AckUtilization)
	}
}
