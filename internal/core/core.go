// Package core implements the paper's primary contribution: the
// Trial-and-Failure protocol of Section 1.3.
//
// All n worms start active. In round t every active worm is sent from its
// source with a random startup delay drawn from [0, Delta_t) and a random
// wavelength drawn from [0, B); a worm that fully reaches its destination
// triggers an acknowledgement back to its source, and an acknowledged
// worm becomes inactive. Rounds repeat until every worm is inactive.
//
// The delay-range sequence Delta_t is pluggable (DelaySchedule); the
// default HalvingSchedule follows Lemma 2.4: the residual path congestion
// halves every round w.h.p., so Delta_t shrinks geometrically down to the
// O(L log n / B) + D + L floor. Under priority routers a
// PriorityAssigner provides per-round distinct ranks (the paper's upper
// bound holds for any such assignment).
package core

import (
	"fmt"
	"math"

	"repro/internal/faults"
	"repro/internal/graph"
	"repro/internal/optical"
	"repro/internal/paths"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Params are the routing-problem parameters the paper's bounds are stated
// in. They are computed from the collection once per Run.
type Params struct {
	N              int // number of worms
	Dilation       int // D
	PathCongestion int // C-tilde
	Length         int // L (worm length in flits)
	Bandwidth      int // B (wavelengths per band)
}

// Log2N returns log2(max(N,2)), the "log n" of the paper's formulas.
func (p Params) Log2N() float64 { return math.Log2(float64(maxInt(p.N, 2))) }

// DelaySchedule produces the per-round delay range Delta_t (the startup
// delay is drawn uniformly from [0, Delta_t)).
type DelaySchedule interface {
	// Range returns Delta_t >= 1 for 1-based round t.
	Range(t int, p Params) int
	// Name identifies the schedule in reports.
	Name() string
}

// HalvingSchedule is the paper's schedule (Lemma 2.4 and Section 2.1):
//
//	Delta_t = max(C1*L*Ct/B, C2*L*C/(B*log n), C3*L*log n/B) + D + L
//
// with Ct = max(C/2^(t-1), log n) the expected residual path congestion.
// The paper's proof constants are C1 = 32, C2 = 32, C3 = 40*e^2*delta;
// they guarantee the w.h.p. statements but are far larger than needed in
// practice, so the zero value uses practical constants (2, 1, 1). Use
// PaperExact for the proof constants.
type HalvingSchedule struct {
	C1, C2, C3 float64
}

// PaperExact returns the schedule with the constants used in the paper's
// proofs (delta taken as 1).
func PaperExact() HalvingSchedule {
	return HalvingSchedule{C1: 32, C2: 32, C3: 40 * math.E * math.E}
}

// Range implements DelaySchedule.
func (h HalvingSchedule) Range(t int, p Params) int {
	c1, c2, c3 := h.C1, h.C2, h.C3
	if c1 == 0 {
		c1 = 2
	}
	if c2 == 0 {
		c2 = 1
	}
	if c3 == 0 {
		c3 = 1
	}
	logn := p.Log2N()
	l := float64(p.Length)
	b := float64(p.Bandwidth)
	c := float64(p.PathCongestion)
	ct := math.Max(c/math.Pow(2, float64(t-1)), logn)
	delta := math.Max(c1*l*ct/b, math.Max(c2*l*c/(b*logn), c3*l*logn/b))
	r := int(math.Ceil(delta)) + p.Dilation + p.Length
	return maxInt(r, 1)
}

// Name implements DelaySchedule.
func (h HalvingSchedule) Name() string { return "halving" }

// FixedSchedule keeps Delta_t constant at Factor*L*C/B + D + L: the
// no-backoff baseline used by the A1 ablation. Factor 0 means 1.
type FixedSchedule struct {
	Factor float64
}

// Range implements DelaySchedule.
func (f FixedSchedule) Range(t int, p Params) int {
	factor := f.Factor
	if factor == 0 {
		factor = 1
	}
	delta := factor * float64(p.Length) * float64(p.PathCongestion) / float64(p.Bandwidth)
	return maxInt(int(math.Ceil(delta))+p.Dilation+p.Length, 1)
}

// Name implements DelaySchedule.
func (f FixedSchedule) Name() string { return "fixed" }

// DoublingSchedule is the classic exponential-backoff ablation:
// Delta_t = Base * 2^(t-1) + D + L, Base 0 meaning L.
type DoublingSchedule struct {
	Base int
}

// Range implements DelaySchedule.
func (d DoublingSchedule) Range(t int, p Params) int {
	base := d.Base
	if base == 0 {
		base = p.Length
	}
	if t > 30 {
		t = 30 // clamp the shift; ranges beyond this are absurd anyway
	}
	return maxInt(base<<(uint(t-1))+p.Dilation+p.Length, 1)
}

// Name implements DelaySchedule.
func (d DoublingSchedule) Name() string { return "doubling" }

// ConstantSchedule returns a literal Delta for every round (used by the
// lower-bound experiments, which pick Delta explicitly).
type ConstantSchedule struct {
	Delta int
}

// Range implements DelaySchedule.
func (c ConstantSchedule) Range(t int, p Params) int { return maxInt(c.Delta, 1) }

// Name implements DelaySchedule.
func (c ConstantSchedule) Name() string { return "constant" }

// PriorityAssigner provides per-round worm ranks for priority routers.
// Ranks within one round must be pairwise distinct (the paper's condition
// that no two worms of the same rank can meet).
type PriorityAssigner interface {
	// Assign returns a rank for each of the given active worm indices.
	Assign(round int, active []int, src *rng.Source) []int
}

// RandomRanks draws a fresh uniformly random rank permutation each round.
type RandomRanks struct{}

// Assign implements PriorityAssigner.
func (RandomRanks) Assign(round int, active []int, src *rng.Source) []int {
	return src.Perm(len(active))
}

// StaticRanks ranks worms by their index, constant across rounds.
type StaticRanks struct{}

// Assign implements PriorityAssigner.
func (StaticRanks) Assign(round int, active []int, src *rng.Source) []int {
	ranks := make([]int, len(active))
	for i, idx := range active {
		ranks[i] = idx
	}
	return ranks
}

// ExplicitRanks assigns the fixed rank Ranks[wormIndex] every round; used
// by the adversarial lower-bound constructions.
type ExplicitRanks struct {
	Ranks []int
}

// Assign implements PriorityAssigner.
func (e ExplicitRanks) Assign(round int, active []int, src *rng.Source) []int {
	ranks := make([]int, len(active))
	for i, idx := range active {
		ranks[i] = e.Ranks[idx]
	}
	return ranks
}

// Config parameterizes a protocol run.
type Config struct {
	// Bandwidth is B >= 1.
	Bandwidth int
	// Length is the worm length L >= 1.
	Length int
	// Lengths optionally gives each worm its own length (indexed like the
	// collection); the schedule then uses the maximum. All entries must be
	// >= 1 and the slice must match the collection size.
	Lengths []int
	// Rule selects serve-first or priority routers.
	Rule optical.Rule
	// Schedule provides Delta_t; nil means HalvingSchedule{}.
	Schedule DelaySchedule
	// Priorities provides ranks under the Priority rule; nil means
	// RandomRanks. Ignored under ServeFirst.
	Priorities PriorityAssigner
	// Wavelengths chooses per-round wavelengths; nil means the paper's
	// uniform random draws.
	Wavelengths WavelengthPolicy
	// MaxRounds caps the protocol; 0 derives 64 + 8*ceil(log2 n). Hitting
	// the cap is reported in the result, not an error.
	MaxRounds int
	// Wreckage, Tie and AckLength configure the simulator (see sim).
	Wreckage sim.WreckagePolicy
	Tie      optical.TiePolicy
	// Conversion enables wavelength conversion at routers for which the
	// predicate holds (nil = no conversion, the paper's main setting).
	Conversion func(graph.NodeID) bool
	// AckLength 0 selects oracle acknowledgements.
	AckLength int
	// RecordCollisions retains per-round collision traces for witness
	// analysis.
	RecordCollisions bool
	// Faults optionally runs the protocol in degraded mode against a fault
	// plan (see internal/faults). Plan timestamps are PROTOCOL time — the
	// cumulative AccountedTime of finished rounds — and each round receives
	// the plan re-anchored to its own local steps via Plan.Shift. At every
	// round start, still-active worms whose paths cross a link that is down
	// at that instant are deterministically rerouted around the outage
	// (paths.ShortestPathAvoiding); worms whose destination is unreachable
	// keep their original path and retry until a repair. Nil keeps the
	// protocol exactly fault-free.
	Faults *faults.Plan
	// TrackCongestion computes the residual path congestion of the active
	// sub-collection at the start of every round (costly; used by the
	// Lemma 2.4 / 2.10 experiments).
	TrackCongestion bool
	// CheckInvariants enables the simulator's internal checks.
	CheckInvariants bool
	// Probe optionally receives telemetry events: the protocol-level
	// round hooks (RoundStarted with the round's delay range,
	// RoundFinished with the round summary including residual congestion
	// when tracked) plus every engine-level event of the per-round
	// simulations. Attaching a probe never changes results.
	Probe telemetry.Probe
}

// RoundStats summarizes one round of the protocol.
type RoundStats struct {
	Round         int
	DelayRange    int // Delta_t
	ActiveBefore  int // worms active at round start
	Delivered     int // fully delivered this round
	Acked         int // acknowledged this round (become inactive)
	Collisions    int
	Makespan      int // measured steps of the round's simulation
	AccountedTime int // Delta_t + 2*(D+L), the paper's round accounting
	// ResidualCongestion is the path congestion of the active
	// sub-collection at round start (-1 unless TrackCongestion).
	ResidualCongestion int
	// Utilization is the fraction of message-band (link, wavelength,
	// step) capacity the round's message traffic occupied;
	// acknowledgement traffic lives in the reserved band and is reported
	// by AckUtilization.
	Utilization float64
	// AckUtilization is the ack band's occupied capacity fraction.
	AckUtilization float64
	// FaultKills counts trains the round's fault schedule destroyed
	// (kept separate from Collisions; see sim.Result.FaultKillCount).
	FaultKills int
	// Rerouted counts active worms steered around down links this round.
	Rerouted int
}

// Result is the full account of one protocol run.
type Result struct {
	Params        Params
	Rounds        []RoundStats
	TotalRounds   int
	TotalTime     int  // sum of AccountedTime (the paper's runtime)
	MeasuredTime  int  // sum of measured makespans
	AllDelivered  bool // every worm acknowledged within MaxRounds
	StillActive   []int
	RoundTraces   [][]sim.Collision // per round, when RecordCollisions
	ScheduleName  string
	DuplicateAcks int // deliveries whose ack was lost (retried although delivered)
	// TotalFaultKills and TotalRerouted sum the per-round degraded-mode
	// counters (both 0 on fault-free runs).
	TotalFaultKills int
	TotalRerouted   int
	// WormRounds[i] is the round in which worm i was acknowledged
	// (0 = never within MaxRounds).
	WormRounds []int
}

// Run executes the Trial-and-Failure protocol on the collection. The
// caller's rng source drives all randomness, making runs reproducible.
func Run(c *paths.Collection, cfg Config, src *rng.Source) (*Result, error) {
	return RunWithEngine(c, cfg, src, sim.NewEngine())
}

// RunWithEngine is Run with a caller-provided simulator engine. The engine
// is reused for every round, and callers that execute many protocol runs
// (Monte-Carlo trial loops, parameter ladders) should hold one engine per
// goroutine and pass it here so the simulator's scratch memory is recycled
// across runs. The engine must not be shared between goroutines.
func RunWithEngine(c *paths.Collection, cfg Config, src *rng.Source, eng *sim.Engine) (*Result, error) {
	return RunWithSimulator(c, cfg, src, eng)
}

// Simulator abstracts the per-round worm executor so the protocol loop
// can run on either a plain engine or a sharded cluster simulator
// (shardsim.ClusterSimulator). Implementations own the returned Result
// until the next Run call, exactly like sim.Engine.
type Simulator interface {
	Run(g *graph.Graph, worms []sim.Worm, cfg sim.Config) (*sim.Result, error)
}

// RunWithSimulator is RunWithEngine generalized over the Simulator
// interface. Round structure, randomness, and results are identical
// whichever implementation executes the rounds.
func RunWithSimulator(c *paths.Collection, cfg Config, src *rng.Source, eng Simulator) (*Result, error) {
	if c.Size() == 0 {
		return &Result{AllDelivered: true, ScheduleName: scheduleOf(cfg).Name()}, nil
	}
	if cfg.Bandwidth < 1 {
		return nil, fmt.Errorf("core: bandwidth %d < 1", cfg.Bandwidth)
	}
	if cfg.Length < 1 {
		return nil, fmt.Errorf("core: worm length %d < 1", cfg.Length)
	}
	if cfg.Lengths != nil {
		if len(cfg.Lengths) != c.Size() {
			return nil, fmt.Errorf("core: %d per-worm lengths for %d worms", len(cfg.Lengths), c.Size())
		}
		for i, l := range cfg.Lengths {
			if l < 1 {
				return nil, fmt.Errorf("core: worm %d length %d < 1", i, l)
			}
		}
	}
	sched := scheduleOf(cfg)
	prio := cfg.Priorities
	if prio == nil {
		prio = RandomRanks{}
	}
	waves := cfg.Wavelengths
	if waves == nil {
		waves = RandomWavelengths{}
	}
	maxLen := cfg.Length
	for _, l := range cfg.Lengths {
		if l > maxLen {
			maxLen = l
		}
	}
	params := Params{
		N:              c.Size(),
		Dilation:       c.Dilation(),
		PathCongestion: c.PathCongestion(),
		Length:         maxLen,
		Bandwidth:      cfg.Bandwidth,
	}
	maxRounds := cfg.MaxRounds
	if maxRounds == 0 {
		maxRounds = 64 + 8*int(math.Ceil(params.Log2N()))
	}

	res := &Result{Params: params, ScheduleName: sched.Name(), WormRounds: make([]int, c.Size())}
	active := make([]int, c.Size())
	for i := range active {
		active[i] = i
	}
	g := c.Graph()
	worms := make([]sim.Worm, 0, c.Size()) // reused across rounds

	// Degraded mode: protocol time elapsed before the current round, used
	// to anchor the fault plan, plus a per-round down-link lookup.
	degraded := cfg.Faults != nil && !cfg.Faults.Empty()
	offset := 0
	var blocked []bool
	if degraded {
		if err := cfg.Faults.Validate(g, cfg.Bandwidth); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		blocked = make([]bool, g.NumLinks())
	}

	for t := 1; len(active) > 0 && t <= maxRounds; t++ {
		delta := sched.Range(t, params)
		stats := RoundStats{
			Round:              t,
			DelayRange:         delta,
			ActiveBefore:       len(active),
			AccountedTime:      delta + 2*(params.Dilation+params.Length),
			ResidualCongestion: -1,
		}
		if cfg.TrackCongestion {
			stats.ResidualCongestion = residualCongestion(c, active)
		}
		if cfg.Probe != nil {
			cfg.Probe.RoundStarted(t, delta, len(active))
		}

		// Re-anchor the fault plan to this round's local steps and note
		// which links are down right now so worms can route around them.
		var roundFaults *faults.Schedule
		var isBlocked func(graph.LinkID) bool
		if degraded {
			sched, err := cfg.Faults.Shift(offset).Compile(g, cfg.Bandwidth)
			if err != nil {
				return nil, fmt.Errorf("core: round %d: %w", t, err)
			}
			roundFaults = sched
			for i := range blocked {
				blocked[i] = false
			}
			for _, id := range cfg.Faults.DownLinksAt(offset) {
				blocked[id] = true
			}
			isBlocked = func(id graph.LinkID) bool { return blocked[id] }
		}

		var ranks []int
		if cfg.Rule == optical.Priority {
			ranks = prio.Assign(t, active, src)
		}
		lambdas := waves.Assign(t, active, c, cfg.Bandwidth, src)
		worms = worms[:len(active)]
		for i, idx := range active {
			length := cfg.Length
			if cfg.Lengths != nil {
				length = cfg.Lengths[idx]
			}
			path := c.Path(idx)
			if degraded && pathHitsDownLink(c, idx, blocked) {
				// Deterministic detour; an unreachable destination keeps
				// the original path (the attempt dies at the outage and
				// retries next round, by which time a repair may land).
				if alt := paths.ShortestPathAvoiding(g, path.Source(), path.Dest(), isBlocked); alt != nil {
					path = alt
					stats.Rerouted++
				}
			}
			w := sim.Worm{
				ID:         idx,
				Path:       path,
				Length:     length,
				Delay:      src.Intn(delta),
				Wavelength: lambdas[i],
			}
			if ranks != nil {
				w.Rank = ranks[i]
			}
			worms[i] = w
		}
		simRes, err := eng.Run(g, worms, sim.Config{
			Bandwidth:        cfg.Bandwidth,
			Rule:             cfg.Rule,
			Tie:              cfg.Tie,
			Wreckage:         cfg.Wreckage,
			Conversion:       cfg.Conversion,
			AckLength:        cfg.AckLength,
			RecordCollisions: cfg.RecordCollisions,
			CheckInvariants:  cfg.CheckInvariants,
			Faults:           roundFaults,
			Probe:            cfg.Probe,
		})
		if err != nil {
			return nil, fmt.Errorf("core: round %d: %w", t, err)
		}

		var still []int
		for i, idx := range active {
			o := simRes.Outcomes[i]
			if o.Delivered {
				stats.Delivered++
			}
			if o.Acked {
				stats.Acked++
				res.WormRounds[idx] = t
			} else {
				if o.Delivered {
					res.DuplicateAcks++
				}
				still = append(still, idx)
			}
		}
		stats.Collisions = simRes.CollisionCount
		stats.Makespan = simRes.Makespan
		stats.Utilization = simRes.Utilization(g.NumLinks(), cfg.Bandwidth)
		stats.AckUtilization = simRes.AckUtilization(g.NumLinks(), cfg.Bandwidth)
		stats.FaultKills = simRes.FaultKillCount
		if cfg.Probe != nil {
			cfg.Probe.RoundFinished(telemetry.RoundInfo{
				Round:              t,
				DelayRange:         delta,
				Active:             stats.ActiveBefore,
				Delivered:          stats.Delivered,
				Acked:              stats.Acked,
				Collisions:         stats.Collisions,
				Makespan:           stats.Makespan,
				ResidualCongestion: stats.ResidualCongestion,
				FaultKills:         stats.FaultKills,
				Rerouted:           stats.Rerouted,
			})
		}
		if cfg.RecordCollisions {
			// The engine owns simRes.Collisions and recycles it next round;
			// retained traces need their own copy.
			res.RoundTraces = append(res.RoundTraces, append([]sim.Collision(nil), simRes.Collisions...))
		}
		res.Rounds = append(res.Rounds, stats)
		res.TotalTime += stats.AccountedTime
		res.MeasuredTime += stats.Makespan
		res.TotalFaultKills += stats.FaultKills
		res.TotalRerouted += stats.Rerouted
		offset += stats.AccountedTime
		active = still
	}
	res.TotalRounds = len(res.Rounds)
	res.AllDelivered = len(active) == 0
	res.StillActive = active
	return res, nil
}

// pathHitsDownLink reports whether worm idx's original path crosses a
// link marked down in the blocked lookup.
func pathHitsDownLink(c *paths.Collection, idx int, blocked []bool) bool {
	for _, id := range c.PathLinks(idx) {
		if blocked[id] {
			return true
		}
	}
	return false
}

func scheduleOf(cfg Config) DelaySchedule {
	if cfg.Schedule != nil {
		return cfg.Schedule
	}
	return HalvingSchedule{}
}

// residualCongestion computes the path congestion (paper's C-tilde,
// counting the path itself) restricted to the still-active worms.
func residualCongestion(c *paths.Collection, active []int) int {
	isActive := make(map[int]bool, len(active))
	for _, idx := range active {
		isActive[idx] = true
	}
	best := 0
	seen := make(map[int]bool)
	for _, idx := range active {
		clear(seen)
		count := 0
		for _, id := range c.PathLinks(idx) {
			for _, j := range c.LinkUsers(graph.LinkID(id)) {
				if isActive[j] && !seen[j] {
					seen[j] = true
					count++
				}
			}
		}
		if count > best {
			best = count
		}
	}
	return best
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
