package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/optical"
	"repro/internal/paths"
	"repro/internal/rng"
	"repro/internal/topology"
)

// The full Trial-and-Failure pipeline: build a network, select paths,
// route with the paper's halving schedule.
func ExampleRun() {
	tor := topology.NewTorus(2, 5)
	prs := paths.RandomPermutation(tor.Graph().NumNodes(), rng.New(3))
	c, err := paths.Build(tor.Graph(), prs, paths.DimOrderTorus(tor))
	if err != nil {
		panic(err)
	}
	res, err := core.Run(c, core.Config{
		Bandwidth: 2,
		Length:    4,
		Rule:      optical.ServeFirst,
		AckLength: 1,
	}, rng.New(7))
	if err != nil {
		panic(err)
	}
	fmt.Println("all delivered:", res.AllDelivered)
	fmt.Println("schedule:", res.ScheduleName)
	// Output:
	// all delivered: true
	// schedule: halving
}

// Multi-hop staging splits each path into optical segments with
// electrical buffering between stages (the paper's Section 4 extension).
func ExampleRunMultiHop() {
	tor := topology.NewTorus(2, 5)
	prs := paths.RandomFunction(tor.Graph().NumNodes(), rng.New(4))
	c, err := paths.Build(tor.Graph(), prs, paths.DimOrderTorus(tor))
	if err != nil {
		panic(err)
	}
	mh, err := core.RunMultiHop(c, 2, core.Config{
		Bandwidth: 2, Length: 4, Rule: optical.ServeFirst,
	}, rng.New(5))
	if err != nil {
		panic(err)
	}
	fmt.Println("stages:", len(mh.Stages), "all delivered:", mh.AllDelivered)
	// Output: stages: 2 all delivered: true
}
