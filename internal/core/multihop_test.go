package core

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/optical"
	"repro/internal/paths"
	"repro/internal/rng"
	"repro/internal/topology"
)

func TestSplitPathsBasic(t *testing.T) {
	g := topology.NewChain(11).Graph()
	p := make(graph.Path, 11)
	for i := range p {
		p[i] = i
	}
	c := paths.MustCollection(g, []graph.Path{p}) // one path of 10 links
	stages, err := SplitPaths(c, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(stages) != 3 {
		t.Fatalf("stages = %d", len(stages))
	}
	// 10 links over 3 segments: 4 + 3 + 3.
	lens := []int{stages[0].Path(0).Len(), stages[1].Path(0).Len(), stages[2].Path(0).Len()}
	if lens[0] != 4 || lens[1] != 3 || lens[2] != 3 {
		t.Errorf("segment lengths = %v, want [4 3 3]", lens)
	}
	// Continuity: each segment starts where the previous ended.
	if stages[0].Path(0).Dest() != stages[1].Path(0).Source() ||
		stages[1].Path(0).Dest() != stages[2].Path(0).Source() {
		t.Error("segments not contiguous")
	}
	// Endpoints preserved.
	if stages[0].Path(0).Source() != 0 || stages[2].Path(0).Dest() != 10 {
		t.Error("endpoints lost")
	}
}

func TestSplitPathsShortPath(t *testing.T) {
	g := topology.NewChain(4).Graph()
	c := paths.MustCollection(g, []graph.Path{{0, 1}, {0, 1, 2, 3}})
	stages, err := SplitPaths(c, 3)
	if err != nil {
		t.Fatal(err)
	}
	// The 1-link path contributes only to stage 0.
	if stages[0].Size() != 2 {
		t.Errorf("stage 0 size = %d, want 2", stages[0].Size())
	}
	if stages[1].Size() != 1 || stages[2].Size() != 1 {
		t.Errorf("later stage sizes = %d, %d, want 1, 1", stages[1].Size(), stages[2].Size())
	}
}

func TestSplitPathsErrors(t *testing.T) {
	g := topology.NewChain(3).Graph()
	c := paths.MustCollection(g, []graph.Path{{0, 1, 2}})
	if _, err := SplitPaths(c, 0); err == nil {
		t.Error("hops 0 accepted")
	}
}

func TestRunMultiHopEqualsRunForOneHop(t *testing.T) {
	tor := topology.NewTorus(2, 5)
	src := rng.New(3)
	prs := paths.RandomPermutation(tor.Graph().NumNodes(), src)
	c, err := paths.Build(tor.Graph(), prs, paths.DimOrderTorus(tor))
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Bandwidth: 2, Length: 4, Rule: optical.ServeFirst, AckLength: 1}
	mh, err := RunMultiHop(c, 1, cfg, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	// One hop: a single stage whose result equals a direct Run with the
	// same derived stream.
	if len(mh.Stages) != 1 {
		t.Fatalf("stages = %d", len(mh.Stages))
	}
	direct, err := Run(c, cfg, rng.New(9).Split())
	if err != nil {
		t.Fatal(err)
	}
	if mh.TotalRounds != direct.TotalRounds || mh.TotalTime != direct.TotalTime {
		t.Errorf("1-hop multihop (%d rounds, %d time) != direct (%d, %d)",
			mh.TotalRounds, mh.TotalTime, direct.TotalRounds, direct.TotalTime)
	}
}

func TestRunMultiHopDelivers(t *testing.T) {
	tor := topology.NewTorus(2, 6)
	src := rng.New(5)
	prs := paths.RandomFunction(tor.Graph().NumNodes(), src)
	c, err := paths.Build(tor.Graph(), prs, paths.DimOrderTorus(tor))
	if err != nil {
		t.Fatal(err)
	}
	for _, hops := range []int{1, 2, 3} {
		mh, err := RunMultiHop(c, hops, Config{
			Bandwidth: 2, Length: 4, Rule: optical.ServeFirst, AckLength: 1,
			CheckInvariants: true,
		}, rng.New(11))
		if err != nil {
			t.Fatal(err)
		}
		if !mh.AllDelivered {
			t.Errorf("hops=%d: not all delivered", hops)
		}
		if hops > 1 && mh.SegmentDilation >= c.Dilation() && c.Dilation() > 1 {
			t.Errorf("hops=%d: segment dilation %d did not shrink from %d",
				hops, mh.SegmentDilation, c.Dilation())
		}
	}
}

func TestMultiHopSegmentDilationShrinks(t *testing.T) {
	g := topology.NewChain(17).Graph()
	p := make(graph.Path, 17)
	for i := range p {
		p[i] = i
	}
	c := paths.MustCollection(g, []graph.Path{p})
	for _, tc := range []struct{ hops, wantMax int }{{1, 16}, {2, 8}, {4, 4}, {16, 1}} {
		stages, err := SplitPaths(c, tc.hops)
		if err != nil {
			t.Fatal(err)
		}
		max := 0
		for _, st := range stages {
			if d := st.Dilation(); d > max {
				max = d
			}
		}
		if max != tc.wantMax {
			t.Errorf("hops=%d: max segment dilation %d, want %d", tc.hops, max, tc.wantMax)
		}
	}
}
