package core

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/paths"
	"repro/internal/rng"
)

// Multi-hop routing is the paper's closing suggestion (Section 4): allow
// each worm a bounded number of hops — conversions to and from electrical
// form at intermediate routers, where the message can be buffered and
// re-launched. A worm with h hops traverses its path as h optical
// segments; each segment is an independent all-optical worm, so the
// Trial-and-Failure protocol runs once per stage on the collection of
// stage segments. Stages are synchronized: stage s+1 starts after stage s
// completes (the simple, analyzable discipline; pipelining would only
// help).

// MultiHopResult aggregates the per-stage protocol results.
type MultiHopResult struct {
	// Stages holds one protocol Result per hop stage.
	Stages []*Result
	// TotalRounds and TotalTime sum over the stages.
	TotalRounds int
	TotalTime   int
	// AllDelivered reports whether every worm completed every stage.
	AllDelivered bool
	// SegmentDilation is the dilation of the longest single segment.
	SegmentDilation int
}

// SplitPaths cuts every path of the collection into at most hops segments
// of near-equal length, returning one collection per stage. Paths shorter
// than the hop count contribute to fewer stages. Segment s of a path
// starts where segment s-1 ended (the buffering router).
func SplitPaths(c *paths.Collection, hops int) ([]*paths.Collection, error) {
	if hops < 1 {
		return nil, fmt.Errorf("core: hops %d < 1", hops)
	}
	g := c.Graph()
	stages := make([][]graph.Path, hops)
	for i := 0; i < c.Size(); i++ {
		p := c.Path(i)
		k := p.Len()
		segs := hops
		if k < segs {
			segs = k
		}
		// Near-equal split: the first (k mod segs) segments get one
		// extra link.
		base := k / segs
		extra := k % segs
		pos := 0
		for s := 0; s < segs; s++ {
			ln := base
			if s < extra {
				ln++
			}
			seg := p[pos : pos+ln+1]
			stages[s] = append(stages[s], seg.Clone())
			pos += ln
		}
	}
	out := make([]*paths.Collection, 0, hops)
	for _, ps := range stages {
		if len(ps) == 0 {
			continue
		}
		col, err := paths.NewCollection(g, ps)
		if err != nil {
			return nil, err
		}
		out = append(out, col)
	}
	return out, nil
}

// RunMultiHop routes the collection in at most hops optical stages,
// running the Trial-and-Failure protocol per stage. hops = 1 is exactly
// Run. The per-stage parameters (dilation, path congestion) are
// recomputed per stage, so the delay schedule adapts to the shorter
// segments.
func RunMultiHop(c *paths.Collection, hops int, cfg Config, src *rng.Source) (*MultiHopResult, error) {
	stageCols, err := SplitPaths(c, hops)
	if err != nil {
		return nil, err
	}
	res := &MultiHopResult{AllDelivered: true}
	for _, col := range stageCols {
		r, err := Run(col, cfg, src.Split())
		if err != nil {
			return nil, err
		}
		res.Stages = append(res.Stages, r)
		res.TotalRounds += r.TotalRounds
		res.TotalTime += r.TotalTime
		if !r.AllDelivered {
			res.AllDelivered = false
		}
		if d := r.Params.Dilation; d > res.SegmentDilation {
			res.SegmentDilation = d
		}
	}
	return res, nil
}
