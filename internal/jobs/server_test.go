package jobs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/telemetry"
	"repro/internal/testutil"
)

// newTestServer boots a full stack — store, executor, scheduler, HTTP
// handler — and returns the test server plus a client pointed at it.
func newTestServer(t *testing.T, opts Options) (*httptest.Server, *Client, *Scheduler) {
	t.Helper()
	// Runs after the server, scheduler and store cleanups (LIFO): an HTTP
	// handler still streaming or a worker still running is a failure.
	testutil.VerifyNoLeaks(t)
	store, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	live := telemetry.NewLive()
	sched := NewScheduler(&Executor{Store: store, Live: live}, opts)
	t.Cleanup(sched.Close)
	srv := httptest.NewServer((&Server{Sched: sched, Live: live}).Handler())
	t.Cleanup(srv.Close)
	return srv, &Client{BaseURL: srv.URL, HTTPClient: srv.Client()}, sched
}

// TestServerSubmitTwiceCacheHit is the end-to-end acceptance check: the
// same spec submitted twice over HTTP is simulated once; the second
// submission is answered from the store, byte-identical.
func TestServerSubmitTwiceCacheHit(t *testing.T) {
	srv, c, sched := newTestServer(t, Options{})
	spec := testSpec(42, 2)

	st, err := c.Submit(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateQueued && st.State != StateRunning && st.State != StateDone {
		t.Fatalf("first submit state %s", st.State)
	}
	first, err := c.Result(st.Key)
	if err != nil {
		t.Fatal(err)
	}
	if first.Key != st.Key || len(first.Trials) != 2 {
		t.Fatalf("first result malformed: %+v", first)
	}

	// Drop the in-memory job record so only the store can answer.
	sched.mu.Lock()
	delete(sched.jobs, st.Key)
	sched.mu.Unlock()

	st2, err := c.Submit(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st2.State != StateDone || !st2.FromCache {
		t.Fatalf("second submit not served from cache: %+v", st2)
	}
	second, err := c.Result(st.Key)
	if err != nil {
		t.Fatal(err)
	}
	fb, _ := json.Marshal(first)
	sb, _ := json.Marshal(second)
	if !bytes.Equal(fb, sb) {
		t.Error("cached result differs from original over HTTP")
	}

	// The raw submit status code distinguishes hit (200) from accepted
	// (202).
	body, _ := json.Marshal(SubmitRequest{Spec: spec})
	resp, err := srv.Client().Post(srv.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("cache-hit submit returned %d, want 200", resp.StatusCode)
	}
}

// TestServerBackpressure429: a full queue yields HTTP 429 with a
// Retry-After header.
func TestServerBackpressure429(t *testing.T) {
	srv, c, _ := newTestServer(t, Options{Workers: 1, QueueSize: 1, RetryAfter: 3 * time.Second})
	// Occupy the worker, then the queue.
	st, err := c.Submit(testSpec(900, 10000), 0)
	if err != nil {
		t.Fatal(err)
	}
	for {
		cur, err := c.Status(st.Key)
		if err != nil {
			t.Fatal(err)
		}
		if cur.State == StateRunning {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := c.Submit(testSpec(901, 1), 0); err != nil {
		t.Fatal(err)
	}
	body, _ := json.Marshal(SubmitRequest{Spec: testSpec(902, 1)})
	resp, err := srv.Client().Post(srv.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "3" {
		t.Errorf("Retry-After = %q, want \"3\"", ra)
	}
	if err := c.Cancel(st.Key); err != nil {
		t.Fatal(err)
	}
}

// TestServerStream: the NDJSON stream ends with a settled state.
func TestServerStream(t *testing.T) {
	srv, c, _ := newTestServer(t, Options{})
	st, err := c.Submit(testSpec(55, 5), 0)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Client().Get(srv.URL + "/jobs/" + st.Key + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("stream content type %q", ct)
	}
	var last JobStatus
	lines := 0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		lines++
	}
	if lines == 0 {
		t.Fatal("empty stream")
	}
	if last.State != StateDone {
		t.Errorf("final streamed state %s", last.State)
	}
	if last.DoneTrials != 5 {
		t.Errorf("final streamed progress %d/5", last.DoneTrials)
	}
}

// TestServerCancelAndErrors: DELETE cancels; unknown keys 404; bad specs
// 400.
func TestServerCancelAndErrors(t *testing.T) {
	srv, c, _ := newTestServer(t, Options{Workers: 1})
	st, err := c.Submit(testSpec(66, 10000), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Cancel(st.Key); err != nil {
		t.Fatal(err)
	}
	for {
		cur, err := c.Status(st.Key)
		if err != nil {
			t.Fatal(err)
		}
		if cur.State == StateCanceled {
			break
		}
		time.Sleep(time.Millisecond)
	}

	if _, err := c.Status("deadbeef"); err == nil || !strings.Contains(err.Error(), "HTTP 404") {
		t.Errorf("unknown status error: %v", err)
	}
	if err := c.Cancel("deadbeef"); err == nil {
		t.Error("unknown cancel succeeded")
	}
	if _, err := c.Submit(Spec{}, 0); err == nil || !strings.Contains(err.Error(), "HTTP 400") {
		t.Errorf("invalid spec error: %v", err)
	}
	resp, err := srv.Client().Post(srv.URL+"/jobs", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage body status %d", resp.StatusCode)
	}
}

// TestServerMetrics: /metrics exposes telemetry and the optnetd_ gauges;
// /snapshot serves the telemetry snapshot.
func TestServerMetrics(t *testing.T) {
	srv, c, _ := newTestServer(t, Options{})
	st, err := c.Submit(testSpec(77, 2), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Result(st.Key); err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"optnetd_queue_depth",
		"optnetd_jobs_running",
		"optnetd_cache_hits_total",
		"optnetd_cache_misses_total 1",
		"optnetd_cache_hit_ratio",
		"optnetd_jobs_completed_total 1",
		"optnetd_jobs_per_second",
		"optnetd_store_entries 1",
		"optnet_runs_total 2", // telemetry flowed into Live
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	snap, err := srv.Client().Get(srv.URL + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Body.Close()
	var s telemetry.Snapshot
	if err := json.NewDecoder(snap.Body).Decode(&s); err != nil {
		t.Fatal(err)
	}
	if s.Runs != 2 {
		t.Errorf("/snapshot runs = %d, want 2", s.Runs)
	}
}

// failingResponseWriter drops every body write, like a scraper that
// disconnected after the status line.
type failingResponseWriter struct{ header http.Header }

func (f *failingResponseWriter) Header() http.Header {
	if f.header == nil {
		f.header = http.Header{}
	}
	return f.header
}

func (f *failingResponseWriter) WriteHeader(int) {}

func (f *failingResponseWriter) Write([]byte) (int, error) {
	return 0, errors.New("connection reset by peer")
}

// TestServerMetricsTruncatedWrite pins the /metrics error path: a failed
// response write must be reported through httpLogf, not silently
// swallowed the way the old unbuffered fmt.Fprintf calls did.
func TestServerMetricsTruncatedWrite(t *testing.T) {
	sched := newTestScheduler(t, Options{})
	srv := &Server{Sched: sched}

	var logged []string
	old := httpLogf
	httpLogf = func(format string, args ...any) {
		logged = append(logged, fmt.Sprintf(format, args...))
	}
	defer func() { httpLogf = old }()

	srv.metrics(&failingResponseWriter{}, httptest.NewRequest("GET", "/metrics", nil))

	if len(logged) != 1 || !strings.Contains(logged[0], "/metrics response truncated") {
		t.Fatalf("expected one truncated-response log line, got %v", logged)
	}
}

// TestServerMetricsBuffered checks the happy path still renders every
// gauge after the buffering change.
func TestServerMetricsBuffered(t *testing.T) {
	sched := newTestScheduler(t, Options{})
	srv := &Server{Sched: sched}
	rr := httptest.NewRecorder()
	srv.metrics(rr, httptest.NewRequest("GET", "/metrics", nil))
	body := rr.Body.String()
	for _, want := range []string{
		"optnetd_queue_depth", "optnetd_jobs_running", "optnetd_cache_hits_total",
		"optnetd_jobs_completed_total", "optnetd_store_entries",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics output missing %s:\n%s", want, body)
		}
	}
}
