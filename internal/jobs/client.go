package jobs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Client talks to an optnetd server. The zero value is not usable; set
// BaseURL (e.g. "http://localhost:9090").
type Client struct {
	// BaseURL is the server root, without a trailing slash.
	BaseURL string
	// HTTPClient overrides http.DefaultClient when set.
	HTTPClient *http.Client
}

// httpClient returns the configured or default HTTP client.
func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// url joins the base URL and path.
func (c *Client) url(path string) string {
	return strings.TrimSuffix(c.BaseURL, "/") + path
}

// decode reads one JSON response, translating error envelopes and
// non-2xx statuses into errors.
func decode(resp *http.Response, out any) error {
	//optlint:allow errsink the body is read-only and fully drained below; close cannot lose data
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode >= 400 {
		var e errorBody
		if json.Unmarshal(body, &e) == nil && e.Error != "" {
			return fmt.Errorf("jobs: server: %s (HTTP %d)", e.Error, resp.StatusCode)
		}
		return fmt.Errorf("jobs: server: HTTP %d", resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(body, out)
}

// Submit submits the spec and returns the job's status. A previously
// stored result comes back already done with FromCache set.
func (c *Client) Submit(spec Spec, priority int) (JobStatus, error) {
	body, err := json.Marshal(SubmitRequest{Spec: spec, Priority: priority})
	if err != nil {
		return JobStatus{}, err
	}
	resp, err := c.httpClient().Post(c.url("/jobs"), "application/json", bytes.NewReader(body))
	if err != nil {
		return JobStatus{}, err
	}
	var st JobStatus
	if err := decode(resp, &st); err != nil {
		return JobStatus{}, err
	}
	return st, nil
}

// Status fetches the job's current status.
func (c *Client) Status(key string) (JobStatus, error) {
	resp, err := c.httpClient().Get(c.url("/jobs/" + key))
	if err != nil {
		return JobStatus{}, err
	}
	var st JobStatus
	if err := decode(resp, &st); err != nil {
		return JobStatus{}, err
	}
	return st, nil
}

// Result fetches the job's result, blocking server-side until the job
// settles.
func (c *Client) Result(key string) (*Result, error) {
	resp, err := c.httpClient().Get(c.url("/jobs/" + key + "/result?wait=1"))
	if err != nil {
		return nil, err
	}
	var res Result
	if err := decode(resp, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// Cancel cancels the job.
func (c *Client) Cancel(key string) error {
	req, err := http.NewRequest(http.MethodDelete, c.url("/jobs/"+key), nil)
	if err != nil {
		return err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	return decode(resp, nil)
}
