package jobs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Client talks to an optnetd server. The zero value is not usable; set
// BaseURL (e.g. "http://localhost:9090").
//
// Submit retries 429 backpressure responses: the server's Retry-After
// hint seeds a capped exponential backoff with deterministic jitter, so
// a burst of rejected clients spreads out instead of re-stampeding the
// queue in lockstep. All other methods fail fast.
type Client struct {
	// BaseURL is the server root, without a trailing slash.
	BaseURL string
	// HTTPClient overrides http.DefaultClient when set.
	HTTPClient *http.Client
	// Header fields are added to every request. Cluster forwarding uses
	// this for hop accounting (X-Optnet-Via); plain clients leave it nil.
	Header http.Header
	// RetryBudget is the maximum number of retried Submit attempts after
	// a 429 (so a submit makes at most RetryBudget+1 requests). Zero
	// selects the default of 4; negative disables retrying.
	RetryBudget int
	// BackoffCap bounds one backoff sleep (default 5s).
	BackoffCap time.Duration
	// Sleep is the backoff sleep seam (default time.Sleep); tests inject
	// a recorder.
	Sleep func(time.Duration)
}

// defaultRetryBudget is the 429 retry budget when the caller sets none.
const defaultRetryBudget = 4

// httpClient returns the configured or default HTTP client.
func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// url joins the base URL and path.
func (c *Client) url(path string) string {
	return strings.TrimSuffix(c.BaseURL, "/") + path
}

// do issues one request with the client's extra header fields applied.
func (c *Client) do(method, url string, body []byte) (*http.Response, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	for k, vs := range c.Header {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	return c.httpClient().Do(req)
}

// decode reads one JSON response, translating error envelopes and
// non-2xx statuses into errors.
func decode(resp *http.Response, out any) error {
	//optlint:allow errsink the body is read-only and fully drained below; close cannot lose data
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode >= 400 {
		var e errorBody
		if json.Unmarshal(body, &e) == nil && e.Error != "" {
			return fmt.Errorf("jobs: server: %s (HTTP %d)", e.Error, resp.StatusCode)
		}
		return fmt.Errorf("jobs: server: HTTP %d", resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(body, out)
}

// backoffDelay computes the sleep before retry number attempt (0-based):
// the server's Retry-After hint (or 100ms absent one) doubled per
// attempt, capped, plus up to 25% deterministic jitter keyed on the
// request and attempt. Hash-derived jitter keeps the client free of
// ambient randomness (reproducible tests) while still de-synchronizing
// distinct keys and attempts.
func (c *Client) backoffDelay(key string, attempt int, retryAfter time.Duration) time.Duration {
	base := retryAfter
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	maxDelay := c.BackoffCap
	if maxDelay <= 0 {
		maxDelay = 5 * time.Second
	}
	d := base << uint(attempt)
	if d > maxDelay || d <= 0 { // <= 0: shift overflow
		d = maxDelay
	}
	h := fnv.New64a()
	_, _ = io.WriteString(h, c.BaseURL)
	_, _ = io.WriteString(h, key)
	_, _ = io.WriteString(h, strconv.Itoa(attempt))
	jitter := time.Duration(h.Sum64() % uint64(d/4+1))
	return d + jitter
}

// retryAfterHint parses a 429 response's Retry-After header (seconds).
func retryAfterHint(resp *http.Response) time.Duration {
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// Submit submits the spec and returns the job's status. A previously
// stored result comes back already done with FromCache set. A 429 (full
// queue) is retried with capped exponential backoff seeded by the
// server's Retry-After hint until the retry budget is exhausted.
func (c *Client) Submit(spec Spec, priority int) (JobStatus, error) {
	body, err := json.Marshal(SubmitRequest{Spec: spec, Priority: priority})
	if err != nil {
		return JobStatus{}, err
	}
	key, _ := spec.Key() // jitter seed only; the server re-validates
	budget := c.RetryBudget
	if budget == 0 {
		budget = defaultRetryBudget
	}
	if budget < 0 {
		budget = 0
	}
	sleep := c.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	for attempt := 0; ; attempt++ {
		resp, err := c.do(http.MethodPost, c.url("/jobs"), body)
		if err != nil {
			return JobStatus{}, err
		}
		if resp.StatusCode == http.StatusTooManyRequests && attempt < budget {
			hint := retryAfterHint(resp)
			_ = decode(resp, nil) // drains and closes; a 429 always decodes to an error
			sleep(c.backoffDelay(key, attempt, hint))
			continue
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			if err := decode(resp, nil); err != nil {
				return JobStatus{}, fmt.Errorf("jobs: retry budget exhausted after %d attempts: %w", attempt+1, err)
			}
			return JobStatus{}, fmt.Errorf("jobs: retry budget exhausted after %d attempts", attempt+1)
		}
		var st JobStatus
		if err := decode(resp, &st); err != nil {
			return JobStatus{}, err
		}
		return st, nil
	}
}

// Status fetches the job's current status.
func (c *Client) Status(key string) (JobStatus, error) {
	resp, err := c.do(http.MethodGet, c.url("/jobs/"+key), nil)
	if err != nil {
		return JobStatus{}, err
	}
	var st JobStatus
	if err := decode(resp, &st); err != nil {
		return JobStatus{}, err
	}
	return st, nil
}

// Result fetches the job's result, blocking server-side until the job
// settles.
func (c *Client) Result(key string) (*Result, error) {
	resp, err := c.do(http.MethodGet, c.url("/jobs/"+key+"/result?wait=1"), nil)
	if err != nil {
		return nil, err
	}
	var res Result
	if err := decode(resp, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// Cancel cancels the job.
func (c *Client) Cancel(key string) error {
	resp, err := c.do(http.MethodDelete, c.url("/jobs/"+key), nil)
	if err != nil {
		return err
	}
	return decode(resp, nil)
}
