package jobs

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/testutil"
)

// clientSpec is a minimal valid route spec for client tests.
func clientSpec() Spec {
	return Spec{Route: &RouteSpec{
		Network:  NetworkSpec{Kind: "torus", Dims: 2, Side: 4},
		Workload: WorkloadSpec{Kind: "permutation"},
		Protocol: ProtocolSpec{Bandwidth: 2, Length: 4},
		Seed:     1,
		Trials:   1,
	}}
}

// TestClientSubmitRetries429 drives Submit against servers that answer
// 429 a configured number of times, covering backoff-then-success and
// retry-budget exhaustion.
func TestClientSubmitRetries429(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	cases := []struct {
		name       string
		rejections int64 // 429s before the server accepts
		budget     int   // client retry budget (0 = default 4)
		retryAfter string
		wantOK     bool
		wantSleeps int
	}{
		{name: "success first try", rejections: 0, budget: 2, wantOK: true, wantSleeps: 0},
		{name: "429 then success", rejections: 1, budget: 2, retryAfter: "1", wantOK: true, wantSleeps: 1},
		{name: "429s within budget", rejections: 4, budget: 0, retryAfter: "1", wantOK: true, wantSleeps: 4},
		{name: "budget exhausted", rejections: 3, budget: 2, retryAfter: "1", wantOK: false, wantSleeps: 2},
		{name: "retries disabled", rejections: 1, budget: -1, wantOK: false, wantSleeps: 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var submits atomic.Int64
			srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if submits.Add(1) <= tc.rejections {
					if tc.retryAfter != "" {
						w.Header().Set("Retry-After", tc.retryAfter)
					}
					writeJSON(w, http.StatusTooManyRequests, errorBody{Error: "jobs: queue full"})
					return
				}
				writeJSON(w, http.StatusAccepted, JobStatus{Key: "k", State: StateQueued})
			}))
			defer srv.Close()

			var sleeps []time.Duration
			c := &Client{
				BaseURL:     srv.URL,
				RetryBudget: tc.budget,
				Sleep:       func(d time.Duration) { sleeps = append(sleeps, d) },
			}
			st, err := c.Submit(clientSpec(), 0)
			if tc.wantOK {
				if err != nil {
					t.Fatalf("Submit: %v", err)
				}
				if st.Key != "k" {
					t.Fatalf("got status %+v", st)
				}
			} else {
				if err == nil {
					t.Fatalf("Submit succeeded, want budget exhaustion (status %+v)", st)
				}
				if !strings.Contains(err.Error(), "retry budget exhausted") {
					t.Fatalf("error %q does not name the exhausted budget", err)
				}
			}
			if len(sleeps) != tc.wantSleeps {
				t.Fatalf("slept %d times (%v), want %d", len(sleeps), sleeps, tc.wantSleeps)
			}
			// Every backoff must honor the server's hint as its floor and
			// stay under the cap plus jitter headroom.
			for i, d := range sleeps {
				if tc.retryAfter == "1" && d < time.Second {
					t.Errorf("sleep %d = %v shorter than the Retry-After hint", i, d)
				}
				if d > 10*time.Second {
					t.Errorf("sleep %d = %v exceeds any sane cap", i, d)
				}
			}
		})
	}
}

// TestClientBackoffDeterministic pins the jitter seam: the same
// (base URL, key, attempt) triple always produces the same delay, and
// delays are capped.
func TestClientBackoffDeterministic(t *testing.T) {
	c := &Client{BaseURL: "http://x", BackoffCap: 2 * time.Second}
	d1 := c.backoffDelay("k", 3, 500*time.Millisecond)
	d2 := c.backoffDelay("k", 3, 500*time.Millisecond)
	if d1 != d2 {
		t.Fatalf("backoff not deterministic: %v vs %v", d1, d2)
	}
	// 500ms << 3 = 4s caps at 2s, plus at most 25% jitter.
	if d1 < 2*time.Second || d1 > 2*time.Second+2*time.Second/4+time.Millisecond {
		t.Fatalf("capped delay %v outside [cap, cap+25%%]", d1)
	}
	if d3 := c.backoffDelay("other", 3, 500*time.Millisecond); d3 == d1 {
		t.Logf("distinct keys share a jitter value (legal, just unlucky)")
	}
}

// TestClientHeaderApplied verifies the extra header fields ride on every
// request — the cluster layer's forwarding hop accounting depends on it.
func TestClientHeaderApplied(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	var got atomic.Value
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got.Store(r.Header.Get("X-Optnet-Via"))
		writeJSON(w, http.StatusAccepted, JobStatus{Key: "k"})
	}))
	defer srv.Close()
	c := &Client{BaseURL: srv.URL, Header: http.Header{"X-Optnet-Via": []string{"a,b"}}}
	if _, err := c.Submit(clientSpec(), 0); err != nil {
		t.Fatal(err)
	}
	if v, _ := got.Load().(string); v != "a,b" {
		t.Fatalf("header not forwarded: got %q", v)
	}
}
