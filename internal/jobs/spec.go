// Package jobs turns simulation requests into an online workload: a
// canonical job specification is content-addressed into a key, results
// are memoized in a disk-backed store, and a bounded scheduler serves
// concurrent submissions on per-worker reused engines with per-trial
// checkpointing, so identical requests are cache hits and killed sweeps
// resume byte-identically.
//
// The package sits above the simulation internals (core, paths, sim,
// telemetry, faults) and below the serving layer (cmd/optnetd and the
// optnet re-exports); it must not import internal/experiments — the
// experiment harness instead injects an ExperimentRunner.
package jobs

import (
	"fmt"

	"repro/internal/canon"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/graph"
	"repro/internal/optical"
	"repro/internal/paths"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Spec is the canonical description of one job. Exactly one of Route,
// Experiment and Dynamic must be set. The job key is the SHA-256 of the
// normalized spec's canonical encoding (see canon), so two requests that
// spell the same configuration differently — defaults omitted vs.
// explicit, JSON fields reordered — share one key and one stored result.
type Spec struct {
	// Route runs the Trial-and-Failure protocol on a declared network,
	// workload and parameter set for a number of trials.
	Route *RouteSpec `json:"route,omitempty"`
	// Experiment runs one of the repo's named experiment tables (A1, E7,
	// R1, ...) through the injected ExperimentRunner.
	Experiment *ExperimentSpec `json:"experiment,omitempty"`
	// Dynamic replays an open-loop workload trace (internal/workload)
	// through sim.RunDynamic on a declared network. The full trace is part
	// of the spec, so the job key content-addresses the exact arrivals:
	// identical workloads dedupe in the store however they were generated.
	Dynamic *DynamicSpec `json:"dynamic,omitempty"`
}

// RouteSpec declares a protocol sweep: the network, the request workload
// drawn on it, the protocol parameters, an optional fault plan, and the
// master seed and trial count. All randomness derives from Seed, so the
// spec fully determines the result.
type RouteSpec struct {
	// Network declares the topology.
	Network NetworkSpec `json:"network"`
	// Workload declares the routing-request generator.
	Workload WorkloadSpec `json:"workload"`
	// Protocol declares the Trial-and-Failure parameters.
	Protocol ProtocolSpec `json:"protocol"`
	// Faults optionally runs the sweep in degraded mode (see
	// internal/faults). The plan is part of the content address.
	Faults *faults.Plan `json:"faults"`
	// Seed is the master seed; the workload stream and every trial stream
	// are split from it in a fixed order.
	Seed uint64 `json:"seed"`
	// Trials is the number of protocol runs to aggregate (default 1).
	Trials int `json:"trials"`
}

// NetworkSpec declares a topology by kind plus the kind's parameters.
type NetworkSpec struct {
	// Kind is one of torus, mesh, hypercube, butterfly, ring, circulant,
	// ccc, star.
	Kind string `json:"kind"`
	// Dims and Side size a torus or mesh (side^dims nodes).
	Dims int `json:"dims"`
	// Side is the torus/mesh side length.
	Side int `json:"side"`
	// Dim sizes a hypercube, butterfly, CCC or star graph.
	Dim int `json:"dim"`
	// Size is the node count of a ring or circulant.
	Size int `json:"size"`
	// Offsets are the circulant's chord offsets.
	Offsets []int `json:"offsets"`
}

// WorkloadSpec declares the request set routed in every trial. The pairs
// are drawn once per job from the workload stream, so all trials of one
// job route the same collection (the per-trial randomness is the
// protocol's delays, wavelengths and ranks).
type WorkloadSpec struct {
	// Kind is one of permutation, function, qfunction.
	Kind string `json:"kind"`
	// Q is the per-source message count for qfunction (default 1).
	Q int `json:"q"`
}

// ProtocolSpec declares the Trial-and-Failure parameters in serializable
// form; enum fields use the String() names of their internal types.
type ProtocolSpec struct {
	// Bandwidth is B, the wavelengths per band (default 1).
	Bandwidth int `json:"bandwidth"`
	// Length is the worm length L in flits (default 1).
	Length int `json:"length"`
	// Rule is serve-first (default) or priority.
	Rule string `json:"rule"`
	// Tie is eliminate-all (default) or arbitrary-winner.
	Tie string `json:"tie"`
	// Wreckage is drain (default) or vanish.
	Wreckage string `json:"wreckage"`
	// Schedule is halving (default), fixed or doubling.
	Schedule string `json:"schedule"`
	// Conversion enables wavelength conversion at every router.
	Conversion bool `json:"conversion"`
	// AckLength is the ack-train length; 0 selects oracle acks.
	AckLength int `json:"ack_length"`
	// MaxRounds caps the protocol; 0 derives the core default.
	MaxRounds int `json:"max_rounds"`
}

// ExperimentSpec names one experiment table run.
type ExperimentSpec struct {
	// ID is the experiment identifier (A1, E7, R1, ...).
	ID string `json:"id"`
	// Seed is the experiment master seed.
	Seed uint64 `json:"seed"`
	// Trials is the per-configuration trial count (0 = experiment default).
	Trials int `json:"trials"`
	// Quick selects the reduced problem sizes.
	Quick bool `json:"quick"`
}

// Normalized returns a deep copy of the spec with every defaultable field
// made explicit, so that a request that omits a default and one that
// spells it out content-address identically.
func (s Spec) Normalized() Spec {
	out := s
	if s.Route != nil {
		r := *s.Route
		if r.Trials <= 0 {
			r.Trials = 1
		}
		// Offsets is canonically a non-nil slice (and only meaningful for
		// circulants), so the in-memory form matches a store round trip.
		if r.Network.Kind != "circulant" {
			r.Network.Offsets = []int{}
		} else {
			r.Network.Offsets = append([]int{}, r.Network.Offsets...)
		}
		if r.Workload.Kind == "" {
			r.Workload.Kind = "permutation"
		}
		if r.Workload.Kind != "qfunction" {
			r.Workload.Q = 0
		} else if r.Workload.Q <= 0 {
			r.Workload.Q = 1
		}
		if r.Protocol.Bandwidth <= 0 {
			r.Protocol.Bandwidth = 1
		}
		if r.Protocol.Length <= 0 {
			r.Protocol.Length = 1
		}
		if r.Protocol.Rule == "" {
			r.Protocol.Rule = "serve-first"
		}
		if r.Protocol.Tie == "" {
			r.Protocol.Tie = "eliminate-all"
		}
		if r.Protocol.Wreckage == "" {
			r.Protocol.Wreckage = "drain"
		}
		if r.Protocol.Schedule == "" {
			r.Protocol.Schedule = "halving"
		}
		if r.Faults != nil && len(r.Faults.Faults) == 0 {
			r.Faults = nil
		}
		out.Route = &r
	}
	if s.Experiment != nil {
		e := *s.Experiment
		out.Experiment = &e
	}
	if s.Dynamic != nil {
		out.Dynamic = s.Dynamic.normalized()
	}
	return out
}

// Validate checks the spec against the supported kinds and size limits
// (limits keep a single submission from monopolizing a worker).
func (s Spec) Validate() error {
	set := 0
	if s.Route != nil {
		set++
	}
	if s.Experiment != nil {
		set++
	}
	if s.Dynamic != nil {
		set++
	}
	if set != 1 {
		return fmt.Errorf("jobs: spec needs exactly one of route, experiment and dynamic")
	}
	if s.Experiment != nil {
		if s.Experiment.ID == "" {
			return fmt.Errorf("jobs: experiment spec needs an id")
		}
		return nil
	}
	if s.Dynamic != nil {
		return s.Dynamic.validate()
	}
	r := s.Route
	if r.Trials < 0 || r.Trials > 10000 {
		return fmt.Errorf("jobs: trials %d out of range [0, 10000]", r.Trials)
	}
	if err := r.Network.validate(); err != nil {
		return err
	}
	switch r.Workload.Kind {
	case "", "permutation", "function", "qfunction":
	default:
		return fmt.Errorf("jobs: unknown workload kind %q", r.Workload.Kind)
	}
	if r.Workload.Q < 0 || r.Workload.Q > 64 {
		return fmt.Errorf("jobs: workload q %d out of range [0, 64]", r.Workload.Q)
	}
	p := r.Protocol
	if p.Bandwidth < 0 || p.Bandwidth > 256 {
		return fmt.Errorf("jobs: bandwidth %d out of range [0, 256]", p.Bandwidth)
	}
	if p.Length < 0 || p.Length > 4096 {
		return fmt.Errorf("jobs: length %d out of range [0, 4096]", p.Length)
	}
	if p.AckLength < 0 || p.MaxRounds < 0 {
		return fmt.Errorf("jobs: ack_length and max_rounds must be >= 0")
	}
	switch p.Rule {
	case "", "serve-first", "priority":
	default:
		return fmt.Errorf("jobs: unknown rule %q", p.Rule)
	}
	switch p.Tie {
	case "", "eliminate-all", "arbitrary-winner":
	default:
		return fmt.Errorf("jobs: unknown tie policy %q", p.Tie)
	}
	switch p.Wreckage {
	case "", "drain", "vanish":
	default:
		return fmt.Errorf("jobs: unknown wreckage policy %q", p.Wreckage)
	}
	switch p.Schedule {
	case "", "halving", "fixed", "doubling":
	default:
		return fmt.Errorf("jobs: unknown schedule %q", p.Schedule)
	}
	return nil
}

// validate checks one network declaration's kind and size bounds.
func (n NetworkSpec) validate() error {
	inRange := func(name string, v, lo, hi int) error {
		if v < lo || v > hi {
			return fmt.Errorf("jobs: network %s %d out of range [%d, %d]", name, v, lo, hi)
		}
		return nil
	}
	switch n.Kind {
	case "torus", "mesh":
		if err := inRange("dims", n.Dims, 1, 4); err != nil {
			return err
		}
		return inRange("side", n.Side, 2, 64)
	case "hypercube":
		return inRange("dim", n.Dim, 1, 12)
	case "butterfly":
		return inRange("dim", n.Dim, 1, 8)
	case "ring":
		return inRange("size", n.Size, 2, 4096)
	case "circulant":
		if len(n.Offsets) == 0 || len(n.Offsets) > 8 {
			return fmt.Errorf("jobs: circulant needs 1..8 offsets")
		}
		for _, o := range n.Offsets {
			if o < 1 || o >= n.Size {
				return fmt.Errorf("jobs: circulant offset %d out of range [1, size)", o)
			}
		}
		return inRange("size", n.Size, 3, 4096)
	case "ccc":
		return inRange("dim", n.Dim, 2, 8)
	case "star":
		return inRange("dim", n.Dim, 2, 7)
	default:
		return fmt.Errorf("jobs: unknown network kind %q", n.Kind)
	}
}

// Key returns the job's content address: the SHA-256 hex of the
// normalized spec's canonical encoding. Equal configurations — however
// spelled — share a key; any parameter change produces a fresh one.
func (s Spec) Key() (string, error) {
	if err := s.Validate(); err != nil {
		return "", err
	}
	return canon.Hash(s.Normalized())
}

// runSetup is a materialized route job: the routed collection, the
// protocol configuration, and one pre-split rng stream per trial.
// Re-materializing the same normalized spec yields identical streams, so
// a resumed sweep can skip the first k sources and continue exactly where
// the killed run stopped.
type runSetup struct {
	col       *paths.Collection
	cfg       core.Config
	trialSrcs []*rng.Source
}

// setup materializes the (normalized) route spec. The derivation order is
// fixed and load-bearing: master -> workload stream -> per-trial streams.
func (r *RouteSpec) setup() (*runSetup, error) {
	master := rng.New(r.Seed)
	wlSrc := master.Split()
	trialSrcs := master.SplitN(r.Trials)

	col, err := buildCollection(r.Network, r.Workload, wlSrc)
	if err != nil {
		return nil, err
	}
	p := r.Protocol
	cfg := core.Config{
		Bandwidth: p.Bandwidth,
		Length:    p.Length,
		AckLength: p.AckLength,
		MaxRounds: p.MaxRounds,
		Faults:    r.Faults,
	}
	if p.Rule == "priority" {
		cfg.Rule = optical.Priority
	}
	if p.Tie == "arbitrary-winner" {
		cfg.Tie = optical.TieArbitraryWinner
	}
	if p.Wreckage == "vanish" {
		cfg.Wreckage = sim.Vanish
	}
	switch p.Schedule {
	case "fixed":
		cfg.Schedule = core.FixedSchedule{}
	case "doubling":
		cfg.Schedule = core.DoublingSchedule{}
	}
	if p.Conversion {
		cfg.Conversion = sim.FullConversion
	}
	if cfg.Faults != nil {
		if err := cfg.Faults.Validate(col.Graph(), cfg.Bandwidth); err != nil {
			return nil, fmt.Errorf("jobs: %w", err)
		}
	}
	return &runSetup{col: col, cfg: cfg, trialSrcs: trialSrcs}, nil
}

// buildCollection constructs the network, draws the workload from the
// dedicated stream and routes it with the topology's canonical selector.
func buildCollection(n NetworkSpec, w WorkloadSpec, src *rng.Source) (*paths.Collection, error) {
	if n.Kind == "butterfly" {
		b := topology.NewButterfly(n.Dim)
		var prs []paths.Pair
		switch w.Kind {
		case "permutation":
			prs = paths.ButterflyPermutation(b, src.Perm(len(b.Inputs())))
		case "function":
			prs = paths.ButterflyRandomQFunction(b, 1, src)
		case "qfunction":
			prs = paths.ButterflyRandomQFunction(b, w.Q, src)
		default:
			return nil, fmt.Errorf("jobs: unknown workload kind %q", w.Kind)
		}
		return paths.Build(b.Graph(), prs, paths.ButterflySelector(b))
	}

	g, sel, err := buildNetwork(n)
	if err != nil {
		return nil, err
	}
	var prs []paths.Pair
	switch w.Kind {
	case "permutation":
		prs = paths.RandomPermutation(g.NumNodes(), src)
	case "function":
		prs = paths.RandomFunction(g.NumNodes(), src)
	case "qfunction":
		prs = paths.RandomQFunction(w.Q, g.NumNodes(), src)
	default:
		return nil, fmt.Errorf("jobs: unknown workload kind %q", w.Kind)
	}
	return paths.Build(g, prs, sel)
}

// buildNetwork constructs a node-addressed topology's graph and its
// canonical selector. Butterflies are excluded: their selector routes
// input terminals to output terminals, not node to node, so they get a
// dedicated path in buildCollection (and are rejected for dynamic jobs).
func buildNetwork(n NetworkSpec) (*graph.Graph, paths.Selector, error) {
	switch n.Kind {
	case "torus":
		t := topology.NewTorus(n.Dims, n.Side)
		return t.Graph(), paths.DimOrderTorus(t), nil
	case "mesh":
		m := topology.NewMesh(n.Dims, n.Side)
		return m.Graph(), paths.DimOrderMesh(m), nil
	case "hypercube":
		h := topology.NewHypercube(n.Dim)
		return h.Graph(), paths.BitFixing(h), nil
	case "ring":
		r := topology.NewRing(n.Size)
		return r.Graph(), paths.TranslationSystem(r), nil
	case "circulant":
		c := topology.NewCirculant(n.Size, n.Offsets)
		return c.Graph(), paths.TranslationSystem(c), nil
	case "ccc":
		c := topology.NewCCC(n.Dim)
		return c.Graph(), paths.TranslationSystem(c), nil
	case "star":
		s := topology.NewStarGraph(n.Dim)
		return s.Graph(), paths.TranslationSystem(s), nil
	default:
		return nil, nil, fmt.Errorf("jobs: unknown network kind %q", n.Kind)
	}
}
