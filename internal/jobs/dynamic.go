package jobs

import (
	"fmt"

	"repro/internal/faults"
	"repro/internal/graph"
	"repro/internal/optical"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// DynamicSpec declares an open-loop trace-replay job: the network, the
// workload trace driven through sim.RunDynamic, the retry-protocol
// parameters, an optional fault plan, and the master seed and trial
// count. The trace carries the arrivals verbatim (it is the
// content-addressed unit); Seed drives only the protocol's randomness
// (wavelengths, ranks, backoff draws), split per trial so trials are
// relocatable and resumable sweeps replay byte-identically.
type DynamicSpec struct {
	// Network declares the topology. Every kind except butterfly is
	// accepted (the butterfly selector routes input to output terminals,
	// not node to node).
	Network NetworkSpec `json:"network"`
	// Trace is the replayed workload; its node count must match the
	// network's.
	Trace *workload.Trace `json:"trace"`
	// Protocol declares the open-loop retry parameters.
	Protocol DynamicProtocolSpec `json:"protocol"`
	// Faults optionally replays the trace in degraded mode; the plan is
	// part of the content address.
	Faults *faults.Plan `json:"faults"`
	// Seed is the protocol master seed (one split per trial).
	Seed uint64 `json:"seed"`
	// Trials is the number of replays to aggregate (default 1).
	Trials int `json:"trials"`
}

// DynamicProtocolSpec declares sim.DynamicConfig in serializable form.
type DynamicProtocolSpec struct {
	// Bandwidth is B, the wavelengths per band (default 1).
	Bandwidth int `json:"bandwidth"`
	// Length is the worm length L in flits (default 1).
	Length int `json:"length"`
	// Rule is serve-first (default) or priority.
	Rule string `json:"rule"`
	// AckLength is the ack-train length; 0 selects oracle acks.
	AckLength int `json:"ack_length"`
	// Backoff is exponential (default) or fixed.
	Backoff string `json:"backoff"`
	// BackoffBase is the first-attempt delay range (default 2*Length).
	BackoffBase int `json:"backoff_base"`
	// BackoffCap caps the exponential range (default 1024*BackoffBase;
	// ignored for fixed backoff).
	BackoffCap int `json:"backoff_cap"`
	// MaxAttempts abandons a request after this many launches (default
	// sim.DefaultMaxAttempts = 50).
	MaxAttempts int `json:"max_attempts"`
	// MaxSteps bounds the whole run; 0 derives the RunDynamic default.
	MaxSteps int `json:"max_steps"`
}

// normalized returns a deep copy with every defaultable field explicit,
// mirroring Spec.Normalized for the other job kinds.
func (d *DynamicSpec) normalized() *DynamicSpec {
	out := *d
	if out.Network.Kind != "circulant" {
		out.Network.Offsets = []int{}
	} else {
		out.Network.Offsets = append([]int{}, out.Network.Offsets...)
	}
	p := &out.Protocol
	if p.Bandwidth <= 0 {
		p.Bandwidth = 1
	}
	if p.Length <= 0 {
		p.Length = 1
	}
	if p.Rule == "" {
		p.Rule = "serve-first"
	}
	if p.Backoff == "" {
		p.Backoff = "exponential"
	}
	if p.BackoffBase <= 0 {
		p.BackoffBase = 2 * p.Length
	}
	if p.Backoff == "fixed" {
		p.BackoffCap = 0
	} else if p.BackoffCap <= 0 {
		p.BackoffCap = 1024 * p.BackoffBase
	}
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = sim.DefaultMaxAttempts
	}
	if out.Faults != nil && len(out.Faults.Faults) == 0 {
		out.Faults = nil
	}
	if out.Trials <= 0 {
		out.Trials = 1
	}
	return &out
}

// validate checks a dynamic spec's kinds and bounds. The trace itself is
// fully validated (ordering, ranges, spec agreement); the trace-vs-
// network node-count check needs the materialized graph and happens in
// setup, following the fault plan's precedent.
func (d *DynamicSpec) validate() error {
	if d.Network.Kind == "butterfly" {
		return fmt.Errorf("jobs: dynamic jobs do not support butterfly networks (input/output-terminal routing)")
	}
	if err := d.Network.validate(); err != nil {
		return err
	}
	if d.Trace == nil {
		return fmt.Errorf("jobs: dynamic spec needs a trace")
	}
	if err := d.Trace.Validate(); err != nil {
		return fmt.Errorf("jobs: %w", err)
	}
	if d.Trials < 0 || d.Trials > 10000 {
		return fmt.Errorf("jobs: trials %d out of range [0, 10000]", d.Trials)
	}
	p := d.Protocol
	if p.Bandwidth < 0 || p.Bandwidth > 256 {
		return fmt.Errorf("jobs: bandwidth %d out of range [0, 256]", p.Bandwidth)
	}
	if p.Length < 0 || p.Length > 4096 {
		return fmt.Errorf("jobs: length %d out of range [0, 4096]", p.Length)
	}
	if p.AckLength < 0 || p.MaxSteps < 0 {
		return fmt.Errorf("jobs: ack_length and max_steps must be >= 0")
	}
	if p.MaxAttempts < 0 || p.MaxAttempts > 10000 {
		return fmt.Errorf("jobs: max_attempts %d out of range [0, 10000]", p.MaxAttempts)
	}
	if p.BackoffBase < 0 || p.BackoffCap < 0 {
		return fmt.Errorf("jobs: backoff parameters must be >= 0")
	}
	switch p.Rule {
	case "", "serve-first", "priority":
	default:
		return fmt.Errorf("jobs: unknown rule %q", p.Rule)
	}
	switch p.Backoff {
	case "", "exponential", "fixed":
	default:
		return fmt.Errorf("jobs: unknown backoff policy %q", p.Backoff)
	}
	return nil
}

// dynamicSetup is a materialized dynamic job: the graph, the trace's
// routed requests, the run configuration, and one pre-split protocol
// stream per trial.
type dynamicSetup struct {
	g         *graph.Graph
	reqs      []sim.Request
	cfg       sim.DynamicConfig
	trialSrcs []*rng.Source
}

// setup materializes the (normalized) dynamic spec. Paths are fixed up
// front by the topology's canonical selector; the per-trial streams are
// split from the master in a fixed order so a resumed sweep continues
// exactly where a killed run stopped.
func (d *DynamicSpec) setup() (*dynamicSetup, error) {
	g, sel, err := buildNetwork(d.Network)
	if err != nil {
		return nil, err
	}
	if d.Trace.Nodes != g.NumNodes() {
		return nil, fmt.Errorf("jobs: trace spans %d nodes but the %s network has %d",
			d.Trace.Nodes, d.Network.Kind, g.NumNodes())
	}
	p := d.Protocol
	cfg := sim.DynamicConfig{
		Sim: sim.Config{
			Bandwidth: p.Bandwidth,
			AckLength: p.AckLength,
			MaxSteps:  p.MaxSteps,
		},
		MaxAttempts: p.MaxAttempts,
	}
	if p.Rule == "priority" {
		cfg.Sim.Rule = optical.Priority
	}
	if p.Backoff == "fixed" {
		cfg.Retry = sim.FixedBackoff{Range: p.BackoffBase}
	} else {
		cfg.Retry = sim.ExponentialBackoff{Base: p.BackoffBase, Cap: p.BackoffCap}
	}
	if d.Faults != nil {
		sched, err := d.Faults.Compile(g, p.Bandwidth)
		if err != nil {
			return nil, fmt.Errorf("jobs: %w", err)
		}
		cfg.Sim.Faults = sched
	}
	master := rng.New(d.Seed)
	return &dynamicSetup{
		g:         g,
		reqs:      d.Trace.Requests(sel, p.Length),
		cfg:       cfg,
		trialSrcs: master.SplitN(d.Trials),
	}, nil
}

// DynamicTrialSummary is the per-trial slice of a dynamic job's result.
// All fields are integral, so the JSON round trip through the store is
// exact and resumed sweeps aggregate byte-identically.
type DynamicTrialSummary struct {
	// Trial is the 0-based trial index.
	Trial int `json:"trial"`
	// Requests is the trace's request count.
	Requests int `json:"requests"`
	// Delivered and GaveUp partition the finished requests.
	Delivered int `json:"delivered"`
	// GaveUp counts requests abandoned at the attempt budget.
	GaveUp int `json:"gave_up"`
	// Attempts is the total number of launches.
	Attempts int `json:"attempts"`
	// Makespan is the run's final simulated step.
	Makespan int `json:"makespan"`
	// FaultKills counts attempts destroyed by injected faults.
	FaultKills int `json:"fault_kills"`
	// LatencySum sums delivered requests' arrival-to-delivery latencies.
	LatencySum int `json:"latency_sum"`
	// LatencyMax is the largest delivered latency (0 if none delivered).
	LatencyMax int `json:"latency_max"`
}

// DynamicAggregate summarizes a dynamic job's trials, recomputed from
// the trial summaries (never accumulated incrementally) so resumed and
// uninterrupted sweeps agree exactly.
type DynamicAggregate struct {
	// Trials is the number of replays aggregated.
	Trials int `json:"trials"`
	// Requests, Delivered, GaveUp and Attempts sum the per-trial columns.
	Requests int `json:"requests"`
	// Delivered counts delivered requests across trials.
	Delivered int `json:"delivered"`
	// GaveUp counts abandoned requests across trials.
	GaveUp int `json:"gave_up"`
	// Attempts counts launches across trials.
	Attempts int `json:"attempts"`
	// FaultKills counts fault-destroyed attempts across trials.
	FaultKills int `json:"fault_kills"`
	// MeanLatency is the mean delivered latency across trials.
	MeanLatency float64 `json:"mean_latency"`
	// MaxLatency is the largest delivered latency across trials.
	MaxLatency int `json:"max_latency"`
	// MeanMakespan is the mean per-trial makespan.
	MeanMakespan float64 `json:"mean_makespan"`
}

// aggregateDynamic folds dynamic trial summaries into the job-level
// aggregate.
func aggregateDynamic(trials []DynamicTrialSummary) DynamicAggregate {
	a := DynamicAggregate{Trials: len(trials)}
	latencySum, makespanSum := 0, 0
	for _, t := range trials {
		a.Requests += t.Requests
		a.Delivered += t.Delivered
		a.GaveUp += t.GaveUp
		a.Attempts += t.Attempts
		a.FaultKills += t.FaultKills
		latencySum += t.LatencySum
		if t.LatencyMax > a.MaxLatency {
			a.MaxLatency = t.LatencyMax
		}
		makespanSum += t.Makespan
	}
	if a.Delivered > 0 {
		a.MeanLatency = float64(latencySum) / float64(a.Delivered)
	}
	if a.Trials > 0 {
		a.MeanMakespan = float64(makespanSum) / float64(a.Trials)
	}
	return a
}

// runDynamic executes (or resumes) a dynamic trace-replay sweep trial by
// trial, mirroring runRoute: the checkpoint after every trial makes
// kill-at-any-trial resume byte-identical, and the folded telemetry
// snapshot accumulates every trial's engine events.
func (e *Executor) runDynamic(key string, norm Spec, eng Simulator, progress func(done, total int), canceled func() bool) (*Result, error) {
	d := norm.Dynamic
	setup, err := d.setup()
	if err != nil {
		return nil, err
	}
	summaries := make([]DynamicTrialSummary, 0, d.Trials)
	folded := &telemetry.Snapshot{}
	start := 0
	if e.Store != nil || e.Lookup != nil {
		var ck checkpoint
		ok, err := e.lookupJSON(checkpointKey(key), &ck)
		if err != nil {
			return nil, err
		}
		if ok && ck.Key == key && ck.Done == len(ck.DynamicTrials) && ck.Done <= d.Trials && ck.Telemetry != nil {
			summaries = append(summaries, ck.DynamicTrials...)
			folded = ck.Telemetry
			start = ck.Done
		}
	}
	if progress != nil {
		progress(start, d.Trials)
	}
	col := telemetry.NewCollector()
	cfg := setup.cfg
	cfg.Sim.Probe = col
	for i := start; i < d.Trials; i++ {
		if canceled != nil && canceled() {
			return nil, ErrCanceled
		}
		res, err := eng.RunDynamic(setup.g, setup.reqs, cfg, setup.trialSrcs[i])
		if err != nil {
			return nil, err
		}
		s := DynamicTrialSummary{
			Trial:      i,
			Requests:   len(res.Outcomes),
			Attempts:   res.TotalAttempts,
			Makespan:   res.Makespan,
			FaultKills: res.FaultKills,
		}
		for _, o := range res.Outcomes {
			if o.Delivered {
				s.Delivered++
				s.LatencySum += o.Latency
				if o.Latency > s.LatencyMax {
					s.LatencyMax = o.Latency
				}
			}
			if o.GaveUp {
				s.GaveUp++
			}
		}
		summaries = append(summaries, s)
		snap := col.Snapshot()
		if e.Live != nil {
			e.Live.Absorb(col) // resets col for the next trial
		} else {
			col.Reset()
		}
		if err := folded.Add(snap); err != nil {
			return nil, err
		}
		if e.Store != nil {
			ck := checkpoint{Key: key, Done: i + 1, DynamicTrials: summaries, Telemetry: folded}
			if err := e.Store.Put(checkpointKey(key), ck); err != nil {
				return nil, err
			}
		}
		if progress != nil {
			progress(i+1, d.Trials)
		}
	}
	return &Result{
		Key:              key,
		Spec:             norm,
		DynamicTrials:    summaries,
		DynamicAggregate: aggregateDynamic(summaries),
		Telemetry:        folded,
	}, nil
}
