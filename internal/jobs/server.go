package jobs

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"time"

	"repro/internal/telemetry"
)

// Server exposes the scheduler over HTTP/JSON:
//
//	POST   /jobs              submit {"spec": ..., "priority": n}
//	GET    /jobs/{key}        status
//	GET    /jobs/{key}/result result (202 while pending; ?wait=1 blocks)
//	GET    /jobs/{key}/stream NDJSON status stream until the job settles
//	DELETE /jobs/{key}        cancel
//	GET    /metrics           telemetry + optnetd_ serving gauges
//	GET    /snapshot          telemetry snapshot as JSON
//
// A full queue answers 429 with a Retry-After header.
type Server struct {
	// Sched serves the jobs.
	Sched *Scheduler
	// Live is the telemetry aggregate rendered by /metrics and /snapshot;
	// nil serves only the serving gauges.
	Live *telemetry.Live
}

// SubmitRequest is the POST /jobs body.
type SubmitRequest struct {
	// Spec is the job to run.
	Spec Spec `json:"spec"`
	// Priority orders the queue (higher first, FIFO within).
	Priority int `json:"priority"`
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.submit)
	mux.HandleFunc("GET /jobs/{key}", s.status)
	mux.HandleFunc("GET /jobs/{key}/result", s.result)
	mux.HandleFunc("GET /jobs/{key}/stream", s.stream)
	mux.HandleFunc("DELETE /jobs/{key}", s.cancel)
	mux.HandleFunc("GET /metrics", s.metrics)
	mux.HandleFunc("GET /snapshot", s.snapshot)
	return mux
}

// writeJSON writes v with the given status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

// submit handles POST /jobs.
func (s *Server) submit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request body: " + err.Error()})
		return
	}
	st, err := s.Sched.Submit(req.Spec, req.Priority)
	switch {
	case errors.Is(err, ErrBusy):
		w.Header().Set("Retry-After", strconv.Itoa(int(s.Sched.RetryAfter()/time.Second)))
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: err.Error()})
		return
	case err != nil:
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	code := http.StatusAccepted
	if st.State == StateDone {
		code = http.StatusOK
	}
	writeJSON(w, code, st)
}

// status handles GET /jobs/{key}.
func (s *Server) status(w http.ResponseWriter, r *http.Request) {
	st, err := s.Sched.Status(r.PathValue("key"))
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// result handles GET /jobs/{key}/result; ?wait=1 blocks until the job
// settles (bounded by the request context).
func (s *Server) result(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if r.URL.Query().Get("wait") == "1" {
		done, err := s.Sched.Done(key)
		if err != nil {
			writeJSON(w, http.StatusNotFound, errorBody{Error: err.Error()})
			return
		}
		select {
		case <-done:
		case <-r.Context().Done():
			writeJSON(w, http.StatusRequestTimeout, errorBody{Error: "client gave up waiting"})
			return
		}
	}
	res, st, err := s.Sched.Result(key)
	switch {
	case errors.Is(err, ErrUnknownJob):
		writeJSON(w, http.StatusNotFound, errorBody{Error: err.Error()})
	case err != nil:
		writeJSON(w, http.StatusConflict, st)
	case res == nil:
		writeJSON(w, http.StatusAccepted, st)
	default:
		writeJSON(w, http.StatusOK, res)
	}
}

// stream handles GET /jobs/{key}/stream: one status line per progress
// change (NDJSON), final line when the job settles.
func (s *Server) stream(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	done, err := s.Sched.Done(key)
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: err.Error()})
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	tick := time.NewTicker(50 * time.Millisecond)
	defer tick.Stop()
	var last JobStatus
	emit := func() bool {
		st, err := s.Sched.Status(key)
		if err != nil {
			return false
		}
		if st != last {
			last = st
			_ = enc.Encode(st)
			if flusher != nil {
				flusher.Flush()
			}
		}
		return true
	}
	if !emit() {
		return
	}
	for {
		select {
		case <-done:
			emit()
			return
		case <-r.Context().Done():
			return
		case <-tick.C:
			if !emit() {
				return
			}
		}
	}
}

// cancel handles DELETE /jobs/{key}.
func (s *Server) cancel(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if err := s.Sched.Cancel(key); err != nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: err.Error()})
		return
	}
	st, err := s.Sched.Status(key)
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// metrics handles GET /metrics: the telemetry aggregate in Prometheus
// text format followed by the optnetd_ serving gauges.
func (s *Server) metrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if s.Live != nil {
		if err := s.Live.Snapshot().WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
	}
	m := s.Sched.Metrics()
	// Gauges render into a buffer first: writes to the concrete
	// *bufio.Writer cannot fail, and the one real failure mode — the
	// scraper hanging up mid-response — surfaces at the checked Flush.
	bw := bufio.NewWriter(w)
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(bw, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	gauge("optnetd_queue_depth", "Jobs waiting in the priority queue.", float64(m.QueueDepth))
	gauge("optnetd_jobs_running", "Jobs currently executing.", float64(m.Running))
	gauge("optnetd_cache_hits_total", "Submissions answered from the result store.", float64(m.CacheHits))
	gauge("optnetd_cache_misses_total", "Submissions that had to simulate.", float64(m.CacheMisses))
	gauge("optnetd_cache_hit_ratio", "Cache hits over completed submissions.", m.CacheHitRatio)
	gauge("optnetd_jobs_completed_total", "Jobs finished in any state.", float64(m.JobsDone))
	gauge("optnetd_jobs_per_second", "Job completion rate since start.", m.JobsPerSecond)
	if m.StoreEntries >= 0 {
		gauge("optnetd_store_entries", "Live keys in the result store.", float64(m.StoreEntries))
	}
	if err := bw.Flush(); err != nil {
		// The scraper disconnected mid-response; the status line is already
		// sent, so surfacing the failure to it is impossible. Count nothing:
		// /metrics must stay side-effect free.
		httpLogf("jobs: /metrics response truncated: %v", err)
	}
}

// httpLogf reports server-side I/O failures that cannot reach the client.
// It is a variable so tests can capture the message.
var httpLogf = log.Printf

// snapshot handles GET /snapshot.
func (s *Server) snapshot(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if s.Live == nil {
		writeJSON(w, http.StatusOK, &telemetry.Snapshot{})
		return
	}
	if err := s.Live.Snapshot().WriteJSON(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
