package jobs

import (
	"encoding/json"
	"testing"

	"repro/internal/shardsim"
	"repro/internal/sim"
)

// stripBoundary zeroes the sharding-only boundary-traffic counters on a
// result's telemetry so it can be compared byte-for-byte with a
// single-engine run. It returns the counters it removed.
func stripBoundary(r *Result) (handoffs, words uint64) {
	if r.Telemetry == nil {
		return 0, 0
	}
	handoffs, words = r.Telemetry.BoundaryHandoffs, r.Telemetry.BoundaryWords
	r.Telemetry.BoundaryHandoffs, r.Telemetry.BoundaryWords = 0, 0
	return handoffs, words
}

// TestExecutorShardedMatchesEngine: the same route spec executed on a
// plain engine and on cluster simulators of several shard counts yields
// identical results — trial summaries, aggregates, and telemetry match
// byte for byte; only the sharding-only boundary-traffic counters are
// extra. That property lets Options.Shards change without rekeying any
// job or invalidating any stored result.
func TestExecutorShardedMatchesEngine(t *testing.T) {
	exec := &Executor{}
	spec := testSpec(11, 4)
	want, _, err := exec.Run(spec, sim.NewEngine(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 2, 4, 8} {
		got, _, err := exec.Run(spec, shardsim.New(shards), nil, nil)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		handoffs, words := stripBoundary(got)
		if shards > 1 && (handoffs == 0 || words == 0) {
			t.Fatalf("shards=%d: expected boundary traffic in job telemetry, got %d/%d", shards, handoffs, words)
		}
		gotJSON, err := json.Marshal(got)
		if err != nil {
			t.Fatal(err)
		}
		if string(gotJSON) != string(wantJSON) {
			t.Fatalf("shards=%d: result diverged from single-engine run:\n engine: %s\nsharded: %s",
				shards, wantJSON, gotJSON)
		}
	}
}

// TestSchedulerShardsOption: a scheduler configured with Shards executes
// jobs on cluster simulators and still reproduces the single-engine
// result bytes.
func TestSchedulerShardsOption(t *testing.T) {
	ref, _, err := (&Executor{}).Run(testSpec(23, 3), sim.NewEngine(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	refJSON, err := json.Marshal(ref)
	if err != nil {
		t.Fatal(err)
	}

	sched := NewScheduler(&Executor{}, Options{Workers: 2, Shards: 4})
	defer sched.Close()
	st, err := sched.Submit(testSpec(23, 3), 0)
	if err != nil {
		t.Fatal(err)
	}
	done, err := sched.Done(st.Key)
	if err != nil {
		t.Fatal(err)
	}
	<-done
	res, _, err := sched.Result(st.Key)
	if err != nil {
		t.Fatal(err)
	}
	stripBoundary(res)
	gotJSON, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	if string(gotJSON) != string(refJSON) {
		t.Fatalf("sharded scheduler result diverged:\n engine: %s\nsharded: %s", refJSON, gotJSON)
	}
}
