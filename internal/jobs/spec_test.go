package jobs

import (
	"encoding/json"
	"testing"
)

// testSpec is the canonical small route job used across the package's
// tests: a 3x3 torus permutation, two wavelengths, four trials.
func testSpec(seed uint64, trials int) Spec {
	return Spec{Route: &RouteSpec{
		Network:  NetworkSpec{Kind: "torus", Dims: 2, Side: 3},
		Workload: WorkloadSpec{Kind: "permutation"},
		Protocol: ProtocolSpec{Bandwidth: 2, Length: 2},
		Seed:     seed,
		Trials:   trials,
	}}
}

// TestSpecKeyGolden pins a job key. Keys are content addresses of the
// canonical spec encoding: if this value drifts, every stored result in
// every deployed store is orphaned. Do not update casually.
// (Repinned once when the dynamic job kind was added: canon emits every
// Spec field explicitly, so growing the schema rekeys all jobs.)
func TestSpecKeyGolden(t *testing.T) {
	key, err := testSpec(7, 4).Key()
	if err != nil {
		t.Fatal(err)
	}
	const want = "c94e6205db9314edcb541c76a68a26a8353126f79d4bdb49504c0b095cc9eb3a"
	if key != want {
		t.Errorf("job key drifted:\n got %s\nwant %s", key, want)
	}
}

// TestSpecKeyNormalization: omitted defaults and explicit defaults are
// the same job.
func TestSpecKeyNormalization(t *testing.T) {
	minimal := Spec{Route: &RouteSpec{
		Network: NetworkSpec{Kind: "torus", Dims: 2, Side: 3},
		Seed:    1,
	}}
	explicit := Spec{Route: &RouteSpec{
		Network:  NetworkSpec{Kind: "torus", Dims: 2, Side: 3},
		Workload: WorkloadSpec{Kind: "permutation"},
		Protocol: ProtocolSpec{
			Bandwidth: 1, Length: 1,
			Rule: "serve-first", Tie: "eliminate-all",
			Wreckage: "drain", Schedule: "halving",
		},
		Seed:   1,
		Trials: 1,
	}}
	k1, err := minimal.Key()
	if err != nil {
		t.Fatal(err)
	}
	k2, err := explicit.Key()
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Errorf("defaulted and explicit specs keyed differently: %s vs %s", k1, k2)
	}
	// Any parameter change must change the key.
	other := explicit
	r := *other.Route
	r.Seed = 2
	other.Route = &r
	k3, err := other.Key()
	if err != nil {
		t.Fatal(err)
	}
	if k3 == k1 {
		t.Error("different seeds share a key")
	}
}

// TestSpecKeyJSONOrderInsensitive: the key survives a trip through
// differently ordered JSON, which is how HTTP clients actually send it.
func TestSpecKeyJSONOrderInsensitive(t *testing.T) {
	var a, b Spec
	ja := `{"route":{"seed":9,"network":{"kind":"ring","size":8},"trials":2}}`
	jb := `{"route":{"trials":2,"network":{"size":8,"kind":"ring"},"seed":9}}`
	if err := json.Unmarshal([]byte(ja), &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(jb), &b); err != nil {
		t.Fatal(err)
	}
	ka, err := a.Key()
	if err != nil {
		t.Fatal(err)
	}
	kb, err := b.Key()
	if err != nil {
		t.Fatal(err)
	}
	if ka != kb {
		t.Errorf("field order changed the key: %s vs %s", ka, kb)
	}
}

// TestSpecValidate rejects malformed specs with telling messages.
func TestSpecValidate(t *testing.T) {
	cases := map[string]Spec{
		"neither":         {},
		"both":            {Route: &RouteSpec{Network: NetworkSpec{Kind: "ring", Size: 4}}, Experiment: &ExperimentSpec{ID: "A1"}},
		"unknown network": {Route: &RouteSpec{Network: NetworkSpec{Kind: "klein-bottle"}}},
		"huge torus":      {Route: &RouteSpec{Network: NetworkSpec{Kind: "torus", Dims: 9, Side: 3}}},
		"bad workload":    {Route: &RouteSpec{Network: NetworkSpec{Kind: "ring", Size: 4}, Workload: WorkloadSpec{Kind: "chaos"}}},
		"bad rule":        {Route: &RouteSpec{Network: NetworkSpec{Kind: "ring", Size: 4}, Protocol: ProtocolSpec{Rule: "anarchy"}}},
		"bad offsets":     {Route: &RouteSpec{Network: NetworkSpec{Kind: "circulant", Size: 8, Offsets: []int{9}}}},
		"no exp id":       {Experiment: &ExperimentSpec{}},
		"trials":          {Route: &RouteSpec{Network: NetworkSpec{Kind: "ring", Size: 4}, Trials: 1 << 20}},
	}
	for name, s := range cases {
		if err := s.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", name, s)
		}
	}
	ok := testSpec(1, 1)
	if err := ok.Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}

// TestSpecSetupNetworks materializes one spec per supported topology and
// workload kind, checking the collection is non-trivial.
func TestSpecSetupNetworks(t *testing.T) {
	nets := []NetworkSpec{
		{Kind: "torus", Dims: 2, Side: 3},
		{Kind: "mesh", Dims: 2, Side: 3},
		{Kind: "hypercube", Dim: 3},
		{Kind: "butterfly", Dim: 2},
		{Kind: "ring", Size: 6},
		{Kind: "circulant", Size: 8, Offsets: []int{1, 3}},
		{Kind: "ccc", Dim: 3},
		{Kind: "star", Dim: 3},
	}
	for _, n := range nets {
		for _, wl := range []string{"permutation", "function", "qfunction"} {
			s := Spec{Route: &RouteSpec{
				Network:  n,
				Workload: WorkloadSpec{Kind: wl, Q: 2},
				Seed:     3,
				Trials:   1,
			}}.Normalized()
			setup, err := s.Route.setup()
			if err != nil {
				t.Fatalf("%s/%s: %v", n.Kind, wl, err)
			}
			if setup.col.Size() == 0 {
				t.Errorf("%s/%s: empty collection", n.Kind, wl)
			}
			if len(setup.trialSrcs) != 1 {
				t.Errorf("%s/%s: %d trial sources", n.Kind, wl, len(setup.trialSrcs))
			}
		}
	}
}

// TestSpecSetupDeterministic: materializing twice yields identical
// workloads (same pair multiset routed, same parameters).
func TestSpecSetupDeterministic(t *testing.T) {
	s := testSpec(11, 3).Normalized()
	a, err := s.Route.setup()
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Route.setup()
	if err != nil {
		t.Fatal(err)
	}
	if a.col.Size() != b.col.Size() {
		t.Fatalf("sizes differ: %d vs %d", a.col.Size(), b.col.Size())
	}
	for i := 0; i < a.col.Size(); i++ {
		pa, pb := a.col.Path(i), b.col.Path(i)
		if len(pa) != len(pb) {
			t.Fatalf("path %d lengths differ", i)
		}
		for j := range pa {
			if pa[j] != pb[j] {
				t.Fatalf("path %d differs at %d", i, j)
			}
		}
	}
}

// TestNormalizedDoesNotMutate: Normalized is a copy, not an in-place fix.
func TestNormalizedDoesNotMutate(t *testing.T) {
	s := Spec{Route: &RouteSpec{Network: NetworkSpec{Kind: "ring", Size: 4}, Seed: 1}}
	_ = s.Normalized()
	if s.Route.Trials != 0 || s.Route.Workload.Kind != "" {
		t.Errorf("Normalized mutated the receiver: %+v", s.Route)
	}
}

// TestExperimentKeyIncludesEverything: experiment keys separate on every
// field.
func TestExperimentKeyIncludesEverything(t *testing.T) {
	base := Spec{Experiment: &ExperimentSpec{ID: "A4", Seed: 1, Trials: 5}}
	keys := map[string]string{}
	for name, s := range map[string]Spec{
		"base":   base,
		"id":     {Experiment: &ExperimentSpec{ID: "A1", Seed: 1, Trials: 5}},
		"seed":   {Experiment: &ExperimentSpec{ID: "A4", Seed: 2, Trials: 5}},
		"trials": {Experiment: &ExperimentSpec{ID: "A4", Seed: 1, Trials: 6}},
		"quick":  {Experiment: &ExperimentSpec{ID: "A4", Seed: 1, Trials: 5, Quick: true}},
	} {
		k, err := s.Key()
		if err != nil {
			t.Fatal(err)
		}
		if prev, ok := keys[k]; ok {
			t.Errorf("%s and %s share key %s", name, prev, k)
		}
		keys[k] = name
	}
}
