package jobs

import (
	"container/heap"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/shardsim"
	"repro/internal/sim"
)

// ErrBusy is returned by Submit when the queue is at capacity; servers
// translate it into a 429 with the scheduler's RetryAfter hint.
var ErrBusy = errors.New("jobs: queue full")

// ErrUnknownJob is returned for keys the scheduler has never seen.
var ErrUnknownJob = errors.New("jobs: unknown job")

// JobState enumerates a job's lifecycle.
type JobState string

// Job lifecycle states.
const (
	// StateQueued means the job waits in the priority queue.
	StateQueued JobState = "queued"
	// StateRunning means a worker is executing the job.
	StateRunning JobState = "running"
	// StateDone means the job finished and its result is available.
	StateDone JobState = "done"
	// StateFailed means the job finished with an error.
	StateFailed JobState = "failed"
	// StateCanceled means the job was canceled; its checkpoint, if any,
	// is retained for a later resume.
	StateCanceled JobState = "canceled"
)

// JobStatus is a point-in-time, serializable view of one job.
type JobStatus struct {
	// Key is the job's content address.
	Key string `json:"key"`
	// State is the job's lifecycle state.
	State JobState `json:"state"`
	// Priority is the submission priority (higher runs first).
	Priority int `json:"priority"`
	// FromCache reports whether the result came from the store without
	// re-simulation.
	FromCache bool `json:"from_cache"`
	// DoneTrials and TotalTrials report sweep progress.
	DoneTrials int `json:"done_trials"`
	// TotalTrials is the sweep's trial count (0 for experiment jobs until
	// known).
	TotalTrials int `json:"total_trials"`
	// Error is the failure message for failed/canceled jobs.
	Error string `json:"error,omitempty"`
}

// job is the scheduler's internal record; its mutable fields are guarded
// by the scheduler mutex except cancel and doneTrials, which the worker
// touches mid-run.
type job struct {
	key      string
	spec     Spec
	priority int
	seq      uint64
	heapIdx  int //optlint:guardedby mu

	state       JobState //optlint:guardedby mu
	fromCache   bool     //optlint:guardedby mu
	totalTrials int
	doneTrials  atomic.Int64
	cancel      atomic.Bool
	err         error   //optlint:guardedby mu
	result      *Result //optlint:guardedby mu
	done        chan struct{}
}

// jobHeap orders queued jobs by descending priority, FIFO within a
// priority (ascending sequence number).
type jobHeap []*job

// Len implements heap.Interface.
func (h jobHeap) Len() int { return len(h) }

// Less implements heap.Interface: higher priority first, then FIFO.
//
//optlint:locked mu
func (h jobHeap) Less(i, j int) bool {
	if h[i].priority != h[j].priority {
		return h[i].priority > h[j].priority
	}
	return h[i].seq < h[j].seq
}

// Swap implements heap.Interface, maintaining each job's heap index.
//
//optlint:locked mu
func (h jobHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heapIdx = i
	h[j].heapIdx = j
}

// Push implements heap.Interface.
//
//optlint:locked mu
func (h *jobHeap) Push(x any) {
	j := x.(*job)
	j.heapIdx = len(*h)
	*h = append(*h, j)
}

// Pop implements heap.Interface.
//
//optlint:locked mu
func (h *jobHeap) Pop() any {
	old := *h
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	j.heapIdx = -1
	*h = old[:n-1]
	return j
}

// Options configure a Scheduler.
type Options struct {
	// Workers is the worker-goroutine count (default 1). Each worker owns
	// one reused sim.Engine, preserving the allocation-free steady state.
	Workers int
	// Shards splits every eligible simulation across this many lockstep
	// engine shards (shardsim.ClusterSimulator). 0 or 1 keeps the plain
	// per-worker engine. Sharding never changes results or job keys:
	// sharded runs are byte-identical to single-engine runs, so caches
	// and checkpoints written at one shard count resume at another.
	Shards int
	// QueueSize bounds the number of queued jobs (default 64); further
	// submissions get ErrBusy.
	QueueSize int
	// RetryAfter is the backpressure hint returned with ErrBusy
	// (default 1s).
	RetryAfter time.Duration
	// Now is the scheduler's clock. The caller injects it (cmd/optnetd
	// passes time.Now); nil falls back to a frozen zero clock, which only
	// zeroes the jobs-per-second gauge — scheduling itself is clock-free.
	Now func() time.Time
}

// Scheduler serves job submissions: it deduplicates identical in-flight
// jobs (singleflight by content address), short-circuits store hits,
// queues the rest in a bounded priority queue, and executes them on
// worker goroutines with per-worker reused engines.
type Scheduler struct {
	exec *Executor
	opts Options

	mu     sync.Mutex
	cond   *sync.Cond
	queue  jobHeap         //optlint:guardedby mu
	jobs   map[string]*job //optlint:guardedby mu
	seq    uint64          //optlint:guardedby mu
	closed bool            //optlint:guardedby mu
	wg     sync.WaitGroup

	started     time.Time
	running     int    //optlint:guardedby mu
	cacheHits   uint64 //optlint:guardedby mu
	cacheMisses uint64 //optlint:guardedby mu
	jobsDone    uint64 //optlint:guardedby mu
}

// NewScheduler starts a scheduler over the executor with opts defaults
// filled in. Call Close to stop the workers.
func NewScheduler(exec *Executor, opts Options) *Scheduler {
	if opts.Workers < 1 {
		opts.Workers = 1
	}
	if opts.QueueSize < 1 {
		opts.QueueSize = 64
	}
	if opts.RetryAfter <= 0 {
		opts.RetryAfter = time.Second
	}
	if opts.Now == nil {
		opts.Now = func() time.Time { return time.Time{} }
	}
	s := &Scheduler{
		exec:    exec,
		opts:    opts,
		jobs:    make(map[string]*job),
		started: opts.Now(),
	}
	s.cond = sync.NewCond(&s.mu)
	for w := 0; w < opts.Workers; w++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// RetryAfter returns the backpressure hint for ErrBusy responses.
func (s *Scheduler) RetryAfter() time.Duration { return s.opts.RetryAfter }

// Submit enqueues the spec and returns its status. An identical job
// already queued or running is joined, not duplicated (singleflight); a
// stored result makes the job done immediately without consuming a
// queue slot or waking a worker — the pure-cache-hit path matters after
// a restart, when the singleflight map is cold but the store is warm; a
// full queue returns ErrBusy.
func (s *Scheduler) Submit(spec Spec, priority int) (JobStatus, error) {
	key, err := spec.Key()
	if err != nil {
		return JobStatus{}, err
	}
	norm := spec.Normalized()
	totalTrials := 0
	if norm.Route != nil {
		totalTrials = norm.Route.Trials
	}

	// Probe the local store before taking the scheduler mutex: decoding a
	// cached result can be megabytes of JSON, and holding the lock across
	// it would stall every worker's state transition on a pure cache hit.
	// Only the local index is consulted here — a remote read-repair probe
	// would put peer latency on every cold submit; the worker's Run path
	// consults replicas before computing instead.
	var cached *Result
	if s.exec.Store != nil {
		var res Result
		if ok, err := s.exec.Store.GetJSON(resultKey(key), &res); err == nil && ok {
			res.reload()
			cached = &res
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return JobStatus{}, fmt.Errorf("jobs: scheduler closed")
	}
	if j, ok := s.jobs[key]; ok && j.state != StateFailed && j.state != StateCanceled {
		// Singleflight: queued, running and completed jobs are shared.
		return s.statusLocked(j), nil
	}
	if cached != nil {
		j := &job{
			key: key, spec: norm, priority: priority,
			state: StateDone, fromCache: true,
			totalTrials: totalTrials, result: cached,
			done: make(chan struct{}),
		}
		j.doneTrials.Store(int64(totalTrials))
		close(j.done)
		s.jobs[key] = j
		s.cacheHits++
		s.jobsDone++
		return s.statusLocked(j), nil
	}
	if len(s.queue) >= s.opts.QueueSize {
		return JobStatus{}, ErrBusy
	}
	s.seq++
	j := &job{
		key: key, spec: norm, priority: priority, seq: s.seq,
		state: StateQueued, totalTrials: totalTrials,
		done: make(chan struct{}),
	}
	s.jobs[key] = j
	heap.Push(&s.queue, j)
	s.cond.Signal()
	return s.statusLocked(j), nil
}

// worker executes queued jobs on a goroutine-owned engine until Close.
func (s *Scheduler) worker() {
	defer s.wg.Done()
	var eng Simulator = sim.NewEngine() // reused across all of this worker's jobs
	if s.opts.Shards > 1 {
		eng = shardsim.New(s.opts.Shards)
	}
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.closed {
			s.cond.Wait()
		}
		if s.closed {
			s.mu.Unlock()
			return
		}
		j := heap.Pop(&s.queue).(*job)
		j.state = StateRunning
		s.running++
		s.mu.Unlock()

		progress := func(done, total int) {
			j.doneTrials.Store(int64(done))
		}
		res, fromCache, err := s.exec.Run(j.spec, eng, progress, j.cancel.Load)

		s.mu.Lock()
		s.running--
		s.jobsDone++
		switch {
		case errors.Is(err, ErrCanceled):
			j.state = StateCanceled
			j.err = err
		case err != nil:
			j.state = StateFailed
			j.err = err
			s.cacheMisses++
		default:
			j.state = StateDone
			j.result = res
			j.fromCache = fromCache
			if fromCache {
				s.cacheHits++
			} else {
				s.cacheMisses++
			}
		}
		close(j.done)
		s.mu.Unlock()
	}
}

// statusLocked snapshots a job; callers hold the scheduler mutex.
//
//optlint:locked mu
func (s *Scheduler) statusLocked(j *job) JobStatus {
	st := JobStatus{
		Key:         j.key,
		State:       j.state,
		Priority:    j.priority,
		FromCache:   j.fromCache,
		DoneTrials:  int(j.doneTrials.Load()),
		TotalTrials: j.totalTrials,
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	return st
}

// Status returns the job's current status.
func (s *Scheduler) Status(key string) (JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[key]
	if !ok {
		return JobStatus{}, ErrUnknownJob
	}
	return s.statusLocked(j), nil
}

// Result returns the finished job's result; ok is false while the job is
// still pending.
func (s *Scheduler) Result(key string) (*Result, JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[key]
	if !ok {
		return nil, JobStatus{}, ErrUnknownJob
	}
	st := s.statusLocked(j)
	if j.state == StateFailed || j.state == StateCanceled {
		return nil, st, j.err
	}
	return j.result, st, nil
}

// Done returns a channel closed when the job finishes (in any state).
func (s *Scheduler) Done(key string) (<-chan struct{}, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[key]
	if !ok {
		return nil, ErrUnknownJob
	}
	return j.done, nil
}

// Cancel cancels a queued or running job. A queued job is removed from
// the queue immediately; a running sweep stops at the next trial
// boundary, retaining its checkpoint for a later resume.
func (s *Scheduler) Cancel(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[key]
	if !ok {
		return ErrUnknownJob
	}
	switch j.state {
	case StateQueued:
		heap.Remove(&s.queue, j.heapIdx)
		j.state = StateCanceled
		j.err = ErrCanceled
		s.jobsDone++
		close(j.done)
	case StateRunning:
		j.cancel.Store(true)
	}
	return nil
}

// Metrics is the scheduler's serving gauge set, exported under the
// optnetd_ namespace by the server's /metrics.
type Metrics struct {
	// QueueDepth is the number of queued jobs.
	QueueDepth int `json:"queue_depth"`
	// Running is the number of jobs being executed.
	Running int `json:"running"`
	// CacheHits and CacheMisses count completed submissions by whether
	// the store answered them.
	CacheHits uint64 `json:"cache_hits"`
	// CacheMisses counts jobs that had to simulate.
	CacheMisses uint64 `json:"cache_misses"`
	// CacheHitRatio is hits / (hits + misses), 0 before any completion.
	CacheHitRatio float64 `json:"cache_hit_ratio"`
	// JobsDone counts finished jobs (any final state).
	JobsDone uint64 `json:"jobs_done"`
	// JobsPerSecond is the completion rate since the scheduler started
	// (0 without an injected clock).
	JobsPerSecond float64 `json:"jobs_per_second"`
	// StoreEntries is the store's live key count (-1 without a store).
	StoreEntries int `json:"store_entries"`
}

// Metrics snapshots the serving gauges.
func (s *Scheduler) Metrics() Metrics {
	s.mu.Lock()
	m := Metrics{
		QueueDepth:   len(s.queue),
		Running:      s.running,
		CacheHits:    s.cacheHits,
		CacheMisses:  s.cacheMisses,
		JobsDone:     s.jobsDone,
		StoreEntries: -1,
	}
	elapsed := s.opts.Now().Sub(s.started).Seconds()
	s.mu.Unlock()
	if total := m.CacheHits + m.CacheMisses; total > 0 {
		m.CacheHitRatio = float64(m.CacheHits) / float64(total)
	}
	if elapsed > 0 {
		m.JobsPerSecond = float64(m.JobsDone) / elapsed
	}
	if s.exec.Store != nil {
		m.StoreEntries = s.exec.Store.Len()
	}
	return m
}

// Close stops the workers after their current jobs and waits for them.
// Queued jobs are left unfinished (their checkpoints, if any, persist).
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
}
