package jobs

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/testutil"
)

// newTestScheduler builds a scheduler over a temp store with the given
// options, registering cleanup.
func newTestScheduler(t *testing.T, opts Options) *Scheduler {
	t.Helper()
	// Registered before the store/scheduler cleanups, so it runs after
	// them (LIFO) and verifies every worker goroutine actually exited.
	testutil.VerifyNoLeaks(t)
	store, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	s := NewScheduler(&Executor{Store: store}, opts)
	t.Cleanup(s.Close)
	return s
}

// waitDone blocks until the job settles or the test times out.
func waitDone(t *testing.T, s *Scheduler, key string) JobStatus {
	t.Helper()
	done, err := s.Done(key)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatalf("job %s never settled", key)
	}
	st, err := s.Status(key)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestSchedulerCacheHit: the second submission of an identical job is
// served from the store as an immediately-done job.
func TestSchedulerCacheHit(t *testing.T) {
	s := newTestScheduler(t, Options{})
	spec := testSpec(21, 2)

	st, err := s.Submit(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	first := waitDone(t, s, st.Key)
	if first.State != StateDone || first.FromCache {
		t.Fatalf("first submission: %+v", first)
	}

	// Re-submit after forgetting the job record: only the store can
	// answer now.
	s.mu.Lock()
	delete(s.jobs, st.Key)
	s.mu.Unlock()
	again, err := s.Submit(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if again.State != StateDone || !again.FromCache {
		t.Fatalf("resubmission not served from store: %+v", again)
	}
	m := s.Metrics()
	if m.CacheHits != 1 || m.CacheMisses != 1 {
		t.Errorf("metrics hits=%d misses=%d, want 1/1", m.CacheHits, m.CacheMisses)
	}
	if m.CacheHitRatio != 0.5 {
		t.Errorf("hit ratio %v, want 0.5", m.CacheHitRatio)
	}
}

// TestSchedulerSingleflight: concurrent submissions of one job share a
// single execution.
func TestSchedulerSingleflight(t *testing.T) {
	s := newTestScheduler(t, Options{Workers: 2})
	spec := testSpec(33, 3)
	var wg sync.WaitGroup
	keys := make([]string, 8)
	for i := range keys {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := s.Submit(spec, 0)
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			keys[i] = st.Key
		}(i)
	}
	wg.Wait()
	for _, k := range keys[1:] {
		if k != keys[0] {
			t.Fatalf("keys diverged: %v", keys)
		}
	}
	waitDone(t, s, keys[0])
	m := s.Metrics()
	if m.CacheHits+m.CacheMisses != 1 {
		t.Errorf("%d executions for 8 identical submissions", m.CacheHits+m.CacheMisses)
	}
}

// TestSchedulerBackpressure: a full queue rejects with ErrBusy and the
// configured retry hint.
func TestSchedulerBackpressure(t *testing.T) {
	// No workers draining: occupy the single worker with a slow job
	// first, then fill the queue.
	s := newTestScheduler(t, Options{Workers: 1, QueueSize: 2, RetryAfter: 7 * time.Second})
	if got := s.RetryAfter(); got != 7*time.Second {
		t.Errorf("RetryAfter = %v", got)
	}
	slow := testSpec(999, 10000)
	st, err := s.Submit(slow, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the worker to take it so the queue is truly empty.
	for {
		cur, err := s.Status(st.Key)
		if err != nil {
			t.Fatal(err)
		}
		if cur.State == StateRunning {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := s.Submit(testSpec(1000, 1), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(testSpec(1001, 1), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(testSpec(1002, 1), 0); !errors.Is(err, ErrBusy) {
		t.Fatalf("overfull queue: want ErrBusy, got %v", err)
	}
	if err := s.Cancel(st.Key); err != nil {
		t.Fatal(err)
	}
	if st := waitDone(t, s, st.Key); st.State != StateCanceled {
		t.Errorf("slow job state %s after cancel", st.State)
	}
}

// TestSchedulerPriority: higher priority queued jobs run first; equal
// priorities run FIFO.
func TestSchedulerPriority(t *testing.T) {
	s := newTestScheduler(t, Options{Workers: 1, QueueSize: 16})
	// Block the worker.
	blocker, err := s.Submit(testSpec(500, 10000), 0)
	if err != nil {
		t.Fatal(err)
	}
	for {
		cur, _ := s.Status(blocker.Key)
		if cur.State == StateRunning {
			break
		}
		time.Sleep(time.Millisecond)
	}
	low, err := s.Submit(testSpec(501, 1), 1)
	if err != nil {
		t.Fatal(err)
	}
	high, err := s.Submit(testSpec(502, 1), 5)
	if err != nil {
		t.Fatal(err)
	}
	// Pop order is deterministic under the scheduler mutex.
	s.mu.Lock()
	if s.queue[0].key != high.Key {
		t.Errorf("queue head %s, want high-priority %s", s.queue[0].key, high.Key)
	}
	s.mu.Unlock()
	if err := s.Cancel(blocker.Key); err != nil {
		t.Fatal(err)
	}
	waitDone(t, s, low.Key)
	waitDone(t, s, high.Key)
}

// TestSchedulerCancelQueued: canceling a queued job removes it without
// running it.
func TestSchedulerCancelQueued(t *testing.T) {
	s := newTestScheduler(t, Options{Workers: 1, QueueSize: 8})
	blocker, err := s.Submit(testSpec(600, 10000), 0)
	if err != nil {
		t.Fatal(err)
	}
	for {
		cur, _ := s.Status(blocker.Key)
		if cur.State == StateRunning {
			break
		}
		time.Sleep(time.Millisecond)
	}
	queued, err := s.Submit(testSpec(601, 1), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Cancel(queued.Key); err != nil {
		t.Fatal(err)
	}
	if st := waitDone(t, s, queued.Key); st.State != StateCanceled {
		t.Errorf("queued job state %s after cancel", st.State)
	}
	if _, _, err := s.Result(queued.Key); !errors.Is(err, ErrCanceled) {
		t.Errorf("Result of canceled job: %v", err)
	}
	// A canceled job is replaceable: resubmitting runs it.
	if err := s.Cancel(blocker.Key); err != nil {
		t.Fatal(err)
	}
	waitDone(t, s, blocker.Key)
	again, err := s.Submit(testSpec(601, 1), 0)
	if err != nil {
		t.Fatal(err)
	}
	if st := waitDone(t, s, again.Key); st.State != StateDone {
		t.Errorf("resubmitted job state %s", st.State)
	}
}

// TestSchedulerCancelRunningResumes: canceling a running sweep keeps its
// checkpoint; resubmission resumes rather than restarting.
func TestSchedulerCancelRunningResumes(t *testing.T) {
	store, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	s := NewScheduler(&Executor{Store: store}, Options{Workers: 1})
	defer s.Close()

	spec := testSpec(77, 300)
	st, err := s.Submit(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Let it make some progress, then cancel.
	for {
		cur, _ := s.Status(st.Key)
		if cur.DoneTrials >= 3 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if err := s.Cancel(st.Key); err != nil {
		t.Fatal(err)
	}
	final := waitDone(t, s, st.Key)
	if final.State != StateCanceled {
		t.Fatalf("state %s after cancel", final.State)
	}
	var ck checkpoint
	if ok, err := store.GetJSON(checkpointKey(st.Key), &ck); err != nil || !ok {
		t.Fatalf("checkpoint missing after running cancel: %v", err)
	}
	if ck.Done < 3 {
		t.Errorf("checkpoint at %d trials, expected >= 3", ck.Done)
	}

	// Resubmit; the sweep resumes and completes.
	again, err := s.Submit(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if done := waitDone(t, s, again.Key); done.State != StateDone {
		t.Fatalf("resumed job state %s (%s)", done.State, done.Error)
	}
	res, _, err := s.Result(again.Key)
	if err != nil || res == nil {
		t.Fatalf("no result after resume: %v", err)
	}
	if len(res.Trials) != 300 {
		t.Errorf("resumed result has %d trials", len(res.Trials))
	}
}

// TestSchedulerUnknownJob: lookups on unseen keys fail cleanly.
func TestSchedulerUnknownJob(t *testing.T) {
	s := newTestScheduler(t, Options{})
	if _, err := s.Status("nope"); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("Status: %v", err)
	}
	if _, _, err := s.Result("nope"); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("Result: %v", err)
	}
	if _, err := s.Done("nope"); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("Done: %v", err)
	}
	if err := s.Cancel("nope"); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("Cancel: %v", err)
	}
	if _, err := s.Submit(Spec{}, 0); err == nil {
		t.Error("invalid spec accepted")
	}
}

// TestWorkerEngineZeroAlloc pins the acceptance criterion "per-worker
// engines stay allocation-free with the jobs layer attached": an engine
// warmed by a full job run through Executor.Run (collector probe and
// all) still performs zero allocations per simulated round on that
// job's own workload. The jobs layer may allocate around the simulator
// (summaries, snapshots, JSON); the engine hot path must not.
func TestWorkerEngineZeroAlloc(t *testing.T) {
	spec := testSpec(3, 2).Normalized()
	setup, err := spec.Route.setup()
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	// Warm the engine exactly as a worker does: one complete job.
	if _, _, err := (&Executor{}).Run(spec, eng, nil, nil); err != nil {
		t.Fatal(err)
	}
	// Steady state on the job's workload, probe attached as in runRoute.
	g := setup.col.Graph()
	col := telemetry.NewCollector()
	worms := make([]sim.Worm, setup.col.Size())
	for i := range worms {
		worms[i] = sim.Worm{
			ID: i, Path: setup.col.Path(i), Length: setup.cfg.Length,
			Delay: i % 4, Wavelength: i % setup.cfg.Bandwidth,
		}
	}
	simCfg := sim.Config{
		Bandwidth: setup.cfg.Bandwidth,
		AckLength: setup.cfg.AckLength,
		Probe:     col,
	}
	if _, err := eng.Run(g, worms, simCfg); err != nil { // warm the collector
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(50, func() {
		if _, err := eng.Run(g, worms, simCfg); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Errorf("worker engine allocates %v times per round after jobs-layer warmup, want 0", avg)
	}
}
