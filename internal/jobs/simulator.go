package jobs

import (
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/sim"
)

// Simulator is the per-worker executor a Scheduler hands its jobs: a
// plain *sim.Engine by default, or a *shardsim.ClusterSimulator when
// Options.Shards > 1. Both produce byte-identical results for the same
// spec, so sharding never rekeys a job — content addresses, checkpoints,
// and cached results carry over unchanged between shard counts.
//
// Implementations own the returned results until the next call and are
// not safe for concurrent use, matching sim.Engine; the scheduler gives
// each worker goroutine its own instance.
type Simulator interface {
	Run(g *graph.Graph, worms []sim.Worm, cfg sim.Config) (*sim.Result, error)
	RunDynamic(g *graph.Graph, reqs []sim.Request, cfg sim.DynamicConfig, src *rng.Source) (*sim.DynamicResult, error)
}
