package jobs

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/canon"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// resultBytes canonically encodes a result for byte-level comparison.
func resultBytes(t *testing.T, r *Result) []byte {
	t.Helper()
	b, err := canon.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestRunCacheHit: the second identical submission is answered from the
// store without re-simulation.
func TestRunCacheHit(t *testing.T) {
	store, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	exec := &Executor{Store: store}
	eng := sim.NewEngine()
	spec := testSpec(42, 3)

	first, fromCache, err := exec.Run(spec, eng, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if fromCache {
		t.Fatal("first run claimed a cache hit")
	}
	second, fromCache, err := exec.Run(spec, eng, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !fromCache {
		t.Fatal("second identical run did not hit the cache")
	}
	if !bytes.Equal(resultBytes(t, first), resultBytes(t, second)) {
		t.Error("cached result differs from computed result")
	}
	// A cache hit must not re-simulate: poison the engine check by
	// asserting the third run with a nil engine still succeeds.
	third, fromCache, err := exec.Run(spec, nil, nil, nil)
	if err != nil || !fromCache {
		t.Fatalf("cached run touched the simulator: fromCache=%v err=%v", fromCache, err)
	}
	if !bytes.Equal(resultBytes(t, first), resultBytes(t, third)) {
		t.Error("cache round trip changed the result")
	}
}

// TestRunResumeByteIdentical is the PR's core promise: a sweep killed at
// every possible trial boundary resumes from its checkpoint to a final
// Result — aggregate AND telemetry snapshot — byte-identical to an
// uninterrupted run.
func TestRunResumeByteIdentical(t *testing.T) {
	const trials = 4
	spec := testSpec(1234, trials)

	// Uninterrupted reference run (its own store, no interference).
	refStore, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer refStore.Close()
	refExec := &Executor{Store: refStore}
	ref, _, err := refExec.Run(spec, sim.NewEngine(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	refBytes := resultBytes(t, ref)

	for kill := 1; kill < trials; kill++ {
		store, err := Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		exec := &Executor{Store: store}
		// "Crash" after `kill` trials: cancel fires once the progress
		// callback reports kill completed trials.
		done := 0
		canceled := func() bool { return done >= kill }
		progress := func(d, total int) { done = d }
		_, _, err = exec.Run(spec, sim.NewEngine(), progress, canceled)
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("kill=%d: want ErrCanceled, got %v", kill, err)
		}
		var ck checkpoint
		if ok, err := store.GetJSON(checkpointKey(mustKey(t, spec)), &ck); err != nil || !ok {
			t.Fatalf("kill=%d: checkpoint missing after cancel: %v", kill, err)
		}
		if ck.Done != kill {
			t.Fatalf("kill=%d: checkpoint at %d trials", kill, ck.Done)
		}

		// Resume on a FRESH executor and engine — as a restarted process
		// would — and compare bytes.
		resumed, fromCache, err := (&Executor{Store: store}).Run(spec, sim.NewEngine(), nil, nil)
		if err != nil {
			t.Fatalf("kill=%d: resume: %v", kill, err)
		}
		if fromCache {
			t.Fatalf("kill=%d: resume claimed a cache hit", kill)
		}
		if got := resultBytes(t, resumed); !bytes.Equal(got, refBytes) {
			t.Errorf("kill=%d: resumed result differs from uninterrupted run:\n got %s\nwant %s", kill, got, refBytes)
		}
		// The checkpoint is cleaned up after completion.
		if _, ok := store.Get(checkpointKey(mustKey(t, spec))); ok {
			t.Errorf("kill=%d: checkpoint not tombstoned after completion", kill)
		}
		store.Close()
	}
}

// TestRunResumeSurvivesProcessRestart: same differential, but the store
// is closed and reopened between the kill and the resume, and the
// checkpoint segment is truncated mid-record first — the resume then
// falls back to an earlier checkpoint (or a fresh run) and must still
// match.
func TestRunResumeAcrossReopenWithTornTail(t *testing.T) {
	const trials = 3
	spec := testSpec(777, trials)
	dir := t.TempDir()

	ref, _, err := (&Executor{}).Run(spec, sim.NewEngine(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	refBytes := resultBytes(t, ref)

	store, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	done := 0
	_, _, err = (&Executor{Store: store}).Run(spec, sim.NewEngine(),
		func(d, total int) { done = d }, func() bool { return done >= 2 })
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	store.Close()

	// Tear the last appended record (the trial-2 checkpoint).
	segs, err := segmentNames(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("segments: %v %v", segs, err)
	}
	path := filepath.Join(dir, segs[len(segs)-1])
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b[:len(b)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	reopened, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	resumed, _, err := (&Executor{Store: reopened}).Run(spec, sim.NewEngine(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := resultBytes(t, resumed); !bytes.Equal(got, refBytes) {
		t.Errorf("resume after torn checkpoint differs:\n got %s\nwant %s", got, refBytes)
	}
}

// TestRunLiveTelemetry: trials feed the live aggregate; the result's
// folded snapshot agrees with it (same single job, nothing else absorbed).
func TestRunLiveTelemetry(t *testing.T) {
	live := telemetry.NewLive()
	exec := &Executor{Live: live}
	res, _, err := exec.Run(testSpec(5, 2), sim.NewEngine(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Telemetry == nil || res.Telemetry.Runs == 0 {
		t.Fatal("no telemetry folded into the result")
	}
	ls := live.Snapshot()
	if ls.Runs != res.Telemetry.Runs || ls.Steps != res.Telemetry.Steps {
		t.Errorf("live aggregate (%d runs, %d steps) disagrees with folded (%d, %d)",
			ls.Runs, ls.Steps, res.Telemetry.Runs, res.Telemetry.Steps)
	}
}

// TestRunExperimentDelegation: experiment jobs run through the injected
// runner and memoize its table and text.
func TestRunExperimentDelegation(t *testing.T) {
	store, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	calls := 0
	exec := &Executor{
		Store: store,
		Experiments: func(id string, seed uint64, trials int, quick bool) (json.RawMessage, string, error) {
			calls++
			return json.RawMessage(`{"id":"` + id + `"}`), "table text\n", nil
		},
	}
	spec := Spec{Experiment: &ExperimentSpec{ID: "A4", Seed: 9, Trials: 2, Quick: true}}
	first, fromCache, err := exec.Run(spec, nil, nil, nil)
	if err != nil || fromCache {
		t.Fatalf("first experiment run: fromCache=%v err=%v", fromCache, err)
	}
	if string(first.Table) != `{"id":"A4"}` || first.Text != "table text\n" {
		t.Errorf("runner output not carried: %s / %q", first.Table, first.Text)
	}
	second, fromCache, err := exec.Run(spec, nil, nil, nil)
	if err != nil || !fromCache {
		t.Fatalf("second experiment run: fromCache=%v err=%v", fromCache, err)
	}
	if calls != 1 {
		t.Errorf("runner called %d times, want 1 (second must be a cache hit)", calls)
	}
	if string(second.Table) != string(first.Table) || second.Text != first.Text {
		t.Error("cached experiment differs")
	}
	// No runner configured -> a clear error.
	if _, _, err := (&Executor{}).Run(spec, nil, nil, nil); err == nil {
		t.Error("experiment without runner must fail")
	}
}

// mustKey returns the spec key or fails the test.
func mustKey(t *testing.T, s Spec) string {
	t.Helper()
	k, err := s.Key()
	if err != nil {
		t.Fatal(err)
	}
	return k
}
