package jobs

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// TestStoreHitMiss: basic put/get/overwrite/tombstone semantics.
func TestStoreHitMiss(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, ok := s.Get("missing"); ok {
		t.Fatal("empty store returned a value")
	}
	if err := s.Put("k1", map[string]int{"b": 2, "a": 1}); err != nil {
		t.Fatal(err)
	}
	raw, ok := s.Get("k1")
	if !ok {
		t.Fatal("put value not found")
	}
	if string(raw) != `{"a":1,"b":2}` {
		t.Errorf("stored value not canonical: %s", raw)
	}
	if err := s.Put("k1", "second"); err != nil {
		t.Fatal(err)
	}
	if raw, _ := s.Get("k1"); string(raw) != `"second"` {
		t.Errorf("overwrite lost: %s", raw)
	}
	if err := s.Delete("k1"); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("k1"); ok {
		t.Fatal("tombstoned key still present")
	}
	if s.Len() != 0 {
		t.Errorf("Len = %d after delete", s.Len())
	}
}

// TestStoreReopen: the index rebuilds from segments, including
// overwrites and tombstones, and new appends go to a fresh segment.
func TestStoreReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenWithSegmentBytes(dir, 128)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := s.Put(fmt.Sprintf("key-%02d", i), i); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Put("key-03", "rewritten"); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("key-05"); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	segsBefore, _ := segmentNames(dir)
	if len(segsBefore) < 2 {
		t.Fatalf("expected multiple segments, got %v", segsBefore)
	}

	r, err := OpenWithSegmentBytes(dir, 128)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != 19 {
		t.Errorf("reopened Len = %d, want 19", r.Len())
	}
	if raw, _ := r.Get("key-03"); string(raw) != `"rewritten"` {
		t.Errorf("overwrite lost across reopen: %s", raw)
	}
	if _, ok := r.Get("key-05"); ok {
		t.Error("tombstone lost across reopen")
	}
	if err := r.Put("fresh", 1); err != nil {
		t.Fatal(err)
	}
	segsAfter, _ := segmentNames(dir)
	if len(segsAfter) != len(segsBefore)+1 {
		t.Errorf("reopen appended into an old segment: %v -> %v", segsBefore, segsAfter)
	}
}

// TestStoreCorruptTailRecovery: a segment truncated mid-record keeps its
// valid prefix; the torn tail is skipped and the store stays usable.
func TestStoreCorruptTailRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := s.Put(fmt.Sprintf("key-%d", i), map[string]int{"v": i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := segmentNames(dir)
	if len(segs) != 1 {
		t.Fatalf("want one segment, got %v", segs)
	}
	path := filepath.Join(dir, segs[0])
	// Truncate mid-record: crash while appending key-9.
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b[:len(b)-9], 0o644); err != nil {
		t.Fatal(err)
	}

	r, err := Open(dir)
	if err != nil {
		t.Fatalf("corrupt tail must not fail open: %v", err)
	}
	defer r.Close()
	if r.Len() != 9 {
		t.Errorf("Len = %d after torn tail, want 9", r.Len())
	}
	if _, ok := r.Get("key-8"); !ok {
		t.Error("intact prefix record lost")
	}
	if _, ok := r.Get("key-9"); ok {
		t.Error("torn record resurrected")
	}
	if r.SkippedTails() != 1 {
		t.Errorf("SkippedTails = %d, want 1", r.SkippedTails())
	}
	// The store must stay writable, into a fresh segment.
	if err := r.Put("key-9", map[string]int{"v": 9}); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 10 {
		t.Errorf("Len = %d after repair write", r.Len())
	}
}

// TestStoreGarbageLineRecovery: non-JSON garbage mid-file also stops the
// replay without failing the open.
func TestStoreGarbageLineRecovery(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "seg-000001.jsonl")
	content := `{"k":"good","v":1}` + "\n" + "!!garbage!!\n" + `{"k":"after","v":2}` + "\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, ok := s.Get("good"); !ok {
		t.Error("record before garbage lost")
	}
	if _, ok := s.Get("after"); ok {
		t.Error("record after garbage must be skipped (tail is untrusted)")
	}
	if s.SkippedTails() != 1 {
		t.Errorf("SkippedTails = %d", s.SkippedTails())
	}
}

// TestStoreConcurrentReadersDuringRoll: readers run lock-compatible with
// appends that force segment rolls; run with -race this is the
// concurrency pin for the store.
func TestStoreConcurrentReadersDuringRoll(t *testing.T) {
	s, err := OpenWithSegmentBytes(t.TempDir(), 64) // tiny: rolls constantly
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put("stable", "value"); err != nil {
		t.Fatal(err)
	}
	const writes = 300
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if raw, ok := s.Get("stable"); !ok || string(raw) != `"value"` {
					t.Error("reader saw missing/garbled value during rolls")
					return
				}
				_, _ = s.Get("churn")
				_ = s.Len()
			}
		}()
	}
	for i := 0; i < writes; i++ {
		if err := s.Put("churn", i); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if raw, _ := s.Get("churn"); string(raw) != fmt.Sprintf("%d", writes-1) {
		t.Errorf("final churn value %s", raw)
	}
}
