package jobs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/canon"
)

// Store is the content-addressed result store: an append-only log of
// key/value records in JSONL segment files plus an in-memory index of the
// latest value per key. Records are appended to the current segment until
// it exceeds the roll threshold; the segment is then fsynced, closed and
// a new one started, so every sealed segment is durable. A null value is
// a tombstone removing the key.
//
// On open the store replays all segments in name order. A segment whose
// tail fails to parse — the signature of a crash mid-append — keeps its
// valid prefix; the corrupt tail is skipped and counted, and appends go
// to a fresh segment, never into a possibly-torn file.
//
// Store is safe for concurrent use: reads share an RLock over the index
// only, so lookups proceed during appends and segment rolls.
type Store struct {
	mu          sync.RWMutex
	dir         string
	index       map[string]json.RawMessage //optlint:guardedby mu
	seg         *os.File                   //optlint:guardedby mu
	segBytes    int64                      //optlint:guardedby mu
	segSeq      int                        //optlint:guardedby mu
	maxSegBytes int64
	skippedTail int //optlint:guardedby mu
}

// storeRecord is one JSONL line: the key and its (raw) value.
type storeRecord struct {
	K string          `json:"k"`
	V json.RawMessage `json:"v"`
}

// DefaultSegmentBytes is the roll threshold for segments opened by Open.
const DefaultSegmentBytes = 4 << 20

// Open opens (creating if needed) a store rooted at dir.
func Open(dir string) (*Store, error) {
	return OpenWithSegmentBytes(dir, DefaultSegmentBytes)
}

// OpenWithSegmentBytes is Open with an explicit segment roll threshold
// (tests use tiny segments to force rolls).
func OpenWithSegmentBytes(dir string, maxSegBytes int64) (*Store, error) {
	if maxSegBytes < 1 {
		return nil, fmt.Errorf("jobs: segment size %d < 1", maxSegBytes)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobs: open store: %w", err)
	}
	s := &Store{
		dir:         dir,
		index:       make(map[string]json.RawMessage),
		maxSegBytes: maxSegBytes,
	}
	names, err := segmentNames(dir)
	if err != nil {
		return nil, err
	}
	// Replay mutates the guarded index before s escapes this function, so
	// no other goroutine can observe it yet — but taking the lock anyway
	// costs nothing, keeps the guardedby contract checkable, and protects
	// any future caller that shares the store before Open returns.
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, name := range names {
		if seq := segmentSeq(name); seq > s.segSeq {
			s.segSeq = seq
		}
		if err := s.replay(filepath.Join(dir, name)); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// segmentNames lists the store's segment files in replay (name) order.
func segmentNames(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("jobs: open store: %w", err)
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasPrefix(name, "seg-") && strings.HasSuffix(name, ".jsonl") {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names, nil
}

// segmentSeq parses the numeric part of seg-NNNNNN.jsonl (0 if malformed;
// such files still replay, they just don't advance the sequence).
func segmentSeq(name string) int {
	var seq int
	if _, err := fmt.Sscanf(name, "seg-%06d.jsonl", &seq); err != nil {
		return 0
	}
	return seq
}

// replay loads one segment into the index, stopping at the first
// unparseable line (a torn append) and counting the skipped tail.
//
//optlint:locked mu
func (s *Store) replay(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("jobs: replay %s: %w", path, err)
	}
	//optlint:allow errsink segment is opened read-only for replay; close cannot lose data
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64*1024), 64<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec storeRecord
		if err := json.Unmarshal(line, &rec); err != nil || rec.K == "" {
			// Torn or garbage tail: keep what parsed, skip the rest.
			s.skippedTail++
			return nil
		}
		s.apply(rec)
	}
	if err := sc.Err(); err != nil {
		// An over-long or unreadable tail is the same case as a torn one.
		s.skippedTail++
	}
	return nil
}

// apply folds one record into the index (null value = tombstone).
//
//optlint:locked mu
func (s *Store) apply(rec storeRecord) {
	if len(rec.V) == 0 || string(rec.V) == "null" {
		delete(s.index, rec.K)
		return
	}
	s.index[rec.K] = rec.V
}

// Get returns the latest value stored for key. The returned bytes are
// shared and must not be modified.
func (s *Store) Get(key string) (json.RawMessage, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.index[key]
	return v, ok
}

// GetJSON unmarshals the latest value for key into out, reporting whether
// the key was present.
func (s *Store) GetJSON(key string, out any) (bool, error) {
	raw, ok := s.Get(key)
	if !ok {
		return false, nil
	}
	if err := json.Unmarshal(raw, out); err != nil {
		return true, fmt.Errorf("jobs: stored value for %s: %w", key, err)
	}
	return true, nil
}

// Put appends key -> v (canonically encoded) and updates the index.
func (s *Store) Put(key string, v any) error {
	if key == "" {
		return fmt.Errorf("jobs: empty store key")
	}
	raw, err := canon.Marshal(v)
	if err != nil {
		return err
	}
	return s.append(storeRecord{K: key, V: raw})
}

// Delete appends a tombstone for key.
func (s *Store) Delete(key string) error {
	return s.append(storeRecord{K: key})
}

// append writes one record line, rolling the segment first when the
// current one is full.
func (s *Store) append(rec storeRecord) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.seg == nil || s.segBytes+int64(len(line)) > s.maxSegBytes {
		if err := s.rollLocked(); err != nil {
			return err
		}
	}
	if _, err := s.seg.Write(line); err != nil {
		return fmt.Errorf("jobs: append: %w", err)
	}
	s.segBytes += int64(len(line))
	s.apply(rec)
	return nil
}

// rollLocked seals the current segment (fsync + close) and opens the
// next. Callers hold the write lock.
//
//optlint:locked mu
func (s *Store) rollLocked() error {
	if s.seg != nil {
		if err := s.seg.Sync(); err != nil {
			return fmt.Errorf("jobs: seal segment: %w", err)
		}
		if err := s.seg.Close(); err != nil {
			return fmt.Errorf("jobs: seal segment: %w", err)
		}
		s.seg = nil
	}
	s.segSeq++
	path := filepath.Join(s.dir, fmt.Sprintf("seg-%06d.jsonl", s.segSeq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("jobs: open segment: %w", err)
	}
	s.seg = f
	s.segBytes = 0
	return nil
}

// Sync fsyncs the current segment, making everything appended so far
// durable without waiting for a roll.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.seg == nil {
		return nil
	}
	return s.seg.Sync()
}

// Close seals the current segment. The store must not be used after.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.seg == nil {
		return nil
	}
	if err := s.seg.Sync(); err != nil {
		return err
	}
	err := s.seg.Close()
	s.seg = nil
	return err
}

// Len returns the number of live keys.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.index)
}

// SkippedTails reports how many segment tails were skipped as corrupt
// during Open — observability for crash recovery.
func (s *Store) SkippedTails() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.skippedTail
}
