package jobs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/canon"
)

// Store is the content-addressed result store: an append-only log of
// key/value records in JSONL segment files plus an in-memory index of the
// latest value per key. Records are appended to the current segment until
// it exceeds the roll threshold; the segment is then fsynced, closed and
// a new one started, so every sealed segment is durable. A null value is
// a tombstone removing the key.
//
// On open the store replays all segments in name order. A segment whose
// tail fails to parse — the signature of a crash mid-append — keeps its
// valid prefix; the corrupt tail is skipped and counted, and appends go
// to a fresh segment, never into a possibly-torn file.
//
// Store is safe for concurrent use: reads share an RLock over the index
// only, so lookups proceed during appends and segment rolls.
//
// Two hooks open the store to replication (see internal/cluster):
// Observer fires on every locally originated Put with the key and its
// canonical value; OnSeal fires with a segment's name when it is sealed
// by a roll. Both are called with the store mutex held and must not call
// back into the store — enqueue and return.
type Store struct {
	mu          sync.RWMutex
	dir         string
	index       map[string]json.RawMessage //optlint:guardedby mu
	seg         *os.File                   //optlint:guardedby mu
	segBytes    int64                      //optlint:guardedby mu
	segSeq      int                        //optlint:guardedby mu
	maxSegBytes int64
	skippedTail int //optlint:guardedby mu

	// Observer, when set, observes every locally originated append of a
	// real value (tombstones and replicated ingests are not reported).
	// Called under the store mutex: do not call back into the store.
	Observer func(key string, value json.RawMessage)
	// OnSeal, when set, observes every segment seal (fsync + close on a
	// roll) with the sealed segment's file name. Called under the store
	// mutex: do not call back into the store.
	OnSeal func(name string)
}

// storeRecord is one JSONL line: the key and its (raw) value.
type storeRecord struct {
	K string          `json:"k"`
	V json.RawMessage `json:"v"`
}

// DefaultSegmentBytes is the roll threshold for segments opened by Open.
const DefaultSegmentBytes = 4 << 20

// Open opens (creating if needed) a store rooted at dir.
func Open(dir string) (*Store, error) {
	return OpenWithSegmentBytes(dir, DefaultSegmentBytes)
}

// OpenWithSegmentBytes is Open with an explicit segment roll threshold
// (tests use tiny segments to force rolls).
func OpenWithSegmentBytes(dir string, maxSegBytes int64) (*Store, error) {
	if maxSegBytes < 1 {
		return nil, fmt.Errorf("jobs: segment size %d < 1", maxSegBytes)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobs: open store: %w", err)
	}
	s := &Store{
		dir:         dir,
		index:       make(map[string]json.RawMessage),
		maxSegBytes: maxSegBytes,
	}
	names, err := segmentNames(dir)
	if err != nil {
		return nil, err
	}
	// Replay mutates the guarded index before s escapes this function, so
	// no other goroutine can observe it yet — but taking the lock anyway
	// costs nothing, keeps the guardedby contract checkable, and protects
	// any future caller that shares the store before Open returns.
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, name := range names {
		if seq := segmentSeq(name); seq > s.segSeq {
			s.segSeq = seq
		}
		if err := s.replay(filepath.Join(dir, name)); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// segmentNames lists the store's segment files in replay (name) order.
// Replicated segments imported from peers (rep-<origin>-seg-NNNNNN.jsonl)
// sort before local ones ("rep-" < "seg-"), so local appends always win
// when both spell a value for the same key.
func segmentNames(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("jobs: open store: %w", err)
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && !strings.HasSuffix(name, ".jsonl") {
			continue
		}
		if !e.IsDir() && (strings.HasPrefix(name, "seg-") || strings.HasPrefix(name, "rep-")) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names, nil
}

// segmentSeq parses the numeric part of seg-NNNNNN.jsonl (0 if malformed;
// such files still replay, they just don't advance the sequence).
func segmentSeq(name string) int {
	var seq int
	if _, err := fmt.Sscanf(name, "seg-%06d.jsonl", &seq); err != nil {
		return 0
	}
	return seq
}

// replay loads one segment into the index, stopping at the first
// unparseable line (a torn append) and counting the skipped tail.
//
//optlint:locked mu
func (s *Store) replay(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("jobs: replay %s: %w", path, err)
	}
	//optlint:allow errsink segment is opened read-only for replay; close cannot lose data
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64*1024), 64<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec storeRecord
		if err := json.Unmarshal(line, &rec); err != nil || rec.K == "" {
			// Torn or garbage tail: keep what parsed, skip the rest.
			s.skippedTail++
			return nil
		}
		s.apply(rec)
	}
	if err := sc.Err(); err != nil {
		// An over-long or unreadable tail is the same case as a torn one.
		s.skippedTail++
	}
	return nil
}

// apply folds one record into the index (null value = tombstone).
//
//optlint:locked mu
func (s *Store) apply(rec storeRecord) {
	if len(rec.V) == 0 || string(rec.V) == "null" {
		delete(s.index, rec.K)
		return
	}
	s.index[rec.K] = rec.V
}

// Get returns the latest value stored for key. The returned bytes are
// shared and must not be modified.
func (s *Store) Get(key string) (json.RawMessage, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.index[key]
	return v, ok
}

// GetJSON unmarshals the latest value for key into out, reporting whether
// the key was present.
func (s *Store) GetJSON(key string, out any) (bool, error) {
	raw, ok := s.Get(key)
	if !ok {
		return false, nil
	}
	if err := json.Unmarshal(raw, out); err != nil {
		return true, fmt.Errorf("jobs: stored value for %s: %w", key, err)
	}
	return true, nil
}

// Put appends key -> v (canonically encoded) and updates the index. The
// Observer, if set, sees the append: Put is the locally originated write
// path, the one replication must fan out.
func (s *Store) Put(key string, v any) error {
	if key == "" {
		return fmt.Errorf("jobs: empty store key")
	}
	raw, err := canon.Marshal(v)
	if err != nil {
		return err
	}
	return s.append(storeRecord{K: key, V: raw}, true)
}

// PutRaw appends an already-encoded value for key without notifying the
// Observer. It is the replication ingest path: the value was canonically
// encoded (and observed) at its origin, so re-marshaling could only
// corrupt it and re-observing it would ping-pong records between
// replicas forever.
func (s *Store) PutRaw(key string, raw json.RawMessage) error {
	if key == "" {
		return fmt.Errorf("jobs: empty store key")
	}
	if len(raw) == 0 || string(raw) == "null" {
		return fmt.Errorf("jobs: PutRaw of a tombstone for %s", key)
	}
	return s.append(storeRecord{K: key, V: raw}, false)
}

// Delete appends a tombstone for key.
func (s *Store) Delete(key string) error {
	return s.append(storeRecord{K: key}, false)
}

// append writes one record line, rolling the segment first when the
// current one is full. local marks an Observer-visible origin write.
func (s *Store) append(rec storeRecord, local bool) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.seg == nil || s.segBytes+int64(len(line)) > s.maxSegBytes {
		if err := s.rollLocked(); err != nil {
			return err
		}
	}
	if _, err := s.seg.Write(line); err != nil {
		return fmt.Errorf("jobs: append: %w", err)
	}
	s.segBytes += int64(len(line))
	s.apply(rec)
	if local && s.Observer != nil {
		s.Observer(rec.K, rec.V)
	}
	return nil
}

// rollLocked seals the current segment (fsync + close) and opens the
// next. Callers hold the write lock.
//
//optlint:locked mu
func (s *Store) rollLocked() error {
	if s.seg != nil {
		if err := s.seg.Sync(); err != nil {
			return fmt.Errorf("jobs: seal segment: %w", err)
		}
		if err := s.seg.Close(); err != nil {
			return fmt.Errorf("jobs: seal segment: %w", err)
		}
		s.seg = nil
		if s.OnSeal != nil {
			s.OnSeal(fmt.Sprintf("seg-%06d.jsonl", s.segSeq))
		}
	}
	s.segSeq++
	path := filepath.Join(s.dir, fmt.Sprintf("seg-%06d.jsonl", s.segSeq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("jobs: open segment: %w", err)
	}
	s.seg = f
	s.segBytes = 0
	return nil
}

// Sync fsyncs the current segment, making everything appended so far
// durable without waiting for a roll.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.seg == nil {
		return nil
	}
	return s.seg.Sync()
}

// Close seals the current segment. The store must not be used after.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.seg == nil {
		return nil
	}
	if err := s.seg.Sync(); err != nil {
		return err
	}
	err := s.seg.Close()
	s.seg = nil
	return err
}

// Len returns the number of live keys.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.index)
}

// SkippedTails reports how many segment tails were skipped as corrupt
// during Open — observability for crash recovery.
func (s *Store) SkippedTails() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.skippedTail
}

// SegmentInfo describes one of the store's own (locally written) segment
// files for replication: name, current size, and whether it is still the
// active append target (an active segment may grow after being listed).
type SegmentInfo struct {
	// Name is the segment file name (seg-NNNNNN.jsonl).
	Name string `json:"name"`
	// Size is the file size in bytes when listed.
	Size int64 `json:"size"`
	// Active reports whether the segment is still being appended to.
	Active bool `json:"active"`
}

// Segments lists the store's locally written segments in name order.
// Imported replica segments (rep-*) are excluded: each node serves only
// its own data, so shipped segments never chain origins.
func (s *Store) Segments() ([]SegmentInfo, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("jobs: list segments: %w", err)
	}
	active := ""
	if s.seg != nil {
		active = filepath.Base(s.seg.Name())
	}
	var infos []SegmentInfo
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, "seg-") || !strings.HasSuffix(name, ".jsonl") {
			continue
		}
		fi, err := e.Info()
		if err != nil {
			return nil, fmt.Errorf("jobs: list segments: %w", err)
		}
		infos = append(infos, SegmentInfo{Name: name, Size: fi.Size(), Active: name == active})
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	return infos, nil
}

// validSegmentName reports whether name is a well-formed local segment
// file name — the only names ReadSegment and ImportSegment accept, so a
// peer-supplied name can never traverse outside the store directory.
func validSegmentName(name string) bool {
	var seq int
	_, err := fmt.Sscanf(name, "seg-%06d.jsonl", &seq)
	return err == nil && name == fmt.Sprintf("seg-%06d.jsonl", seq)
}

// ReadSegment returns the named local segment's bytes. Reading the
// active segment is allowed — the read lock holds off appends, so the
// copy is never torn mid-line.
func (s *Store) ReadSegment(name string) ([]byte, error) {
	if !validSegmentName(name) {
		return nil, fmt.Errorf("jobs: bad segment name %q", name)
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	data, err := os.ReadFile(filepath.Join(s.dir, name))
	if err != nil {
		return nil, fmt.Errorf("jobs: read segment: %w", err)
	}
	return data, nil
}

// ImportSegment ingests a segment shipped from the named origin peer:
// the file lands as rep-<origin>-<name> (replayed before local segments
// on a future open) and its records fill gaps in the live index. Import
// is strictly additive — a record is applied only when its key is absent
// locally, and tombstones are ignored — so replicated data can never
// overwrite or delete anything this node wrote itself. Re-importing the
// same segment (e.g. after the origin's active segment grew) rewrites
// the file and re-runs the gap fill, which is idempotent. Returns the
// number of records applied to the index.
func (s *Store) ImportSegment(origin, name string, data []byte) (int, error) {
	if !validSegmentName(name) {
		return 0, fmt.Errorf("jobs: bad segment name %q", name)
	}
	if origin == "" || strings.ContainsAny(origin, "/\\ \t\n") {
		return 0, fmt.Errorf("jobs: bad segment origin %q", origin)
	}
	// Parse outside the lock; a torn tail (origin crashed or the segment
	// was copied mid-append) keeps the valid prefix, like replay.
	var recs []storeRecord
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 64*1024), 64<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec storeRecord
		if err := json.Unmarshal(line, &rec); err != nil || rec.K == "" {
			break
		}
		recs = append(recs, rec)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	path := filepath.Join(s.dir, "rep-"+origin+"-"+name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return 0, fmt.Errorf("jobs: import segment: %w", err)
	}
	added := 0
	for _, rec := range recs {
		if len(rec.V) == 0 || string(rec.V) == "null" {
			continue // tombstone: imports never delete
		}
		if _, ok := s.index[rec.K]; ok {
			continue // gap fill only: local data wins
		}
		s.index[rec.K] = rec.V
		added++
	}
	return added, nil
}
