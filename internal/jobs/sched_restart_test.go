package jobs

import (
	"encoding/json"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/testutil"
)

// TestSubmitCacheHitAfterRestart is the regression test for the
// cold-singleflight store-hit path: after a daemon restart the in-memory
// job map is empty but the store is warm, and a submit of an
// already-stored job must come back done without consuming a queue slot
// or waking the (busy) worker. The scenario pins it down hard: one
// worker, wedged on a blocking job; a queue filled to capacity; then the
// cached submit — which must succeed while any non-cached submit gets
// ErrBusy.
func TestSubmitCacheHitAfterRestart(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	store, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := store.Close(); err != nil {
			t.Fatal(err)
		}
	}()

	// First life of the daemon: run a sweep to completion so the store
	// holds its result.
	spec := clientSpec()
	warm := &Executor{Store: store}
	ref, fromCache, err := warm.Run(spec, sim.NewEngine(), nil, nil)
	if err != nil || fromCache {
		t.Fatalf("warmup run: err=%v fromCache=%v", err, fromCache)
	}

	// Second life: fresh scheduler (cold singleflight map), one worker
	// wedged on a blocking experiment job.
	block := make(chan struct{})
	release := make(chan struct{})
	exec := &Executor{
		Store: store,
		Experiments: func(id string, seed uint64, trials int, quick bool) (json.RawMessage, string, error) {
			close(block)
			<-release
			return json.RawMessage(`{}`), "done", nil
		},
	}
	sched := NewScheduler(exec, Options{Workers: 1, QueueSize: 1})
	defer sched.Close()
	defer close(release)

	if _, err := sched.Submit(Spec{Experiment: &ExperimentSpec{ID: "blocker", Seed: 1}}, 0); err != nil {
		t.Fatalf("blocking submit: %v", err)
	}
	select {
	case <-block:
	case <-time.After(5 * time.Second):
		t.Fatal("worker never picked up the blocking job")
	}

	// Fill the queue to capacity with a job that is not in the store.
	filler := clientSpec()
	filler.Route.Seed = 999
	if _, err := sched.Submit(filler, 0); err != nil {
		t.Fatalf("queue-filling submit: %v", err)
	}
	if _, err := sched.Submit(Spec{Experiment: &ExperimentSpec{ID: "overflow", Seed: 2}}, 0); err != ErrBusy {
		t.Fatalf("overflow submit: got %v, want ErrBusy (queue must be full)", err)
	}

	// The cached submit must bypass the full queue and the busy worker.
	st, err := sched.Submit(spec, 0)
	if err != nil {
		t.Fatalf("cached submit after restart: %v (must not consume a queue slot)", err)
	}
	if st.State != StateDone || !st.FromCache {
		t.Fatalf("cached submit state %+v, want done from cache", st)
	}
	if st.DoneTrials != st.TotalTrials || st.TotalTrials != spec.Route.Trials {
		t.Fatalf("cached submit progress %d/%d, want %d/%d", st.DoneTrials, st.TotalTrials, spec.Route.Trials, spec.Route.Trials)
	}

	// The worker never ran it: the filler job is still the only queued
	// entry and the cache hit is counted.
	m := sched.Metrics()
	if m.QueueDepth != 1 {
		t.Fatalf("queue depth %d after cache hit, want 1 (slot consumed?)", m.QueueDepth)
	}
	if m.CacheHits != 1 {
		t.Fatalf("cache hits %d, want 1", m.CacheHits)
	}
	if fst, err := sched.Status(mustKey(t, filler)); err != nil || fst.State != StateQueued {
		t.Fatalf("filler status %+v err=%v, want still queued", fst, err)
	}

	// And the served result is the stored one.
	res, _, err := sched.Result(mustKey(t, spec))
	if err != nil {
		t.Fatal(err)
	}
	refJSON, _ := json.Marshal(ref)
	gotJSON, _ := json.Marshal(res)
	if string(refJSON) != string(gotJSON) {
		t.Fatal("cached result differs from the stored result")
	}
}
