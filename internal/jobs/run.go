package jobs

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/telemetry"
)

// ErrCanceled is returned for a job canceled before it finished. The
// checkpoint written after the last completed trial is retained, so a
// resubmission resumes instead of starting over.
var ErrCanceled = errors.New("jobs: job canceled")

// ExperimentRunner executes one named experiment table and returns its
// canonical JSON encoding plus the pre-rendered text report. The harness
// in internal/experiments provides it (see experiments.JobRunner); the
// indirection keeps this package from importing the experiment harness.
type ExperimentRunner func(id string, seed uint64, trials int, quick bool) (table json.RawMessage, text string, err error)

// TrialSummary is the per-trial slice of a route job's result: the exact
// integers needed to rebuild the aggregate, so a checkpointed prefix plus
// re-run suffix reproduces an uninterrupted run byte for byte.
type TrialSummary struct {
	// Trial is the 0-based trial index.
	Trial int `json:"trial"`
	// Rounds is the protocol's round count.
	Rounds int `json:"rounds"`
	// Time is the paper's accounted runtime.
	Time int `json:"time"`
	// Measured is the summed simulated makespan.
	Measured int `json:"measured"`
	// Worms and Acked give the trial's delivery fraction.
	Worms int `json:"worms"`
	// Acked counts acknowledged worms.
	Acked int `json:"acked"`
	// FaultKills counts fault-destroyed trains (degraded runs).
	FaultKills int `json:"fault_kills"`
	// Rerouted counts degraded-mode reroutes.
	Rerouted int `json:"rerouted"`
	// Completed reports whether every worm was acknowledged in bounds.
	Completed bool `json:"completed"`
}

// Aggregate summarizes a route job's trials. It is recomputed from the
// trial summaries (never accumulated incrementally), so resumed and
// uninterrupted sweeps agree exactly.
type Aggregate struct {
	// Trials is the number of trials aggregated.
	Trials int `json:"trials"`
	// Completed counts trials where every worm was acknowledged.
	Completed int `json:"completed"`
	// TotalRounds, TotalTime and TotalMeasured sum the per-trial columns.
	TotalRounds int `json:"total_rounds"`
	// TotalTime sums the accounted runtimes.
	TotalTime int `json:"total_time"`
	// TotalMeasured sums the measured makespans.
	TotalMeasured int `json:"total_measured"`
	// MeanRounds and MeanTime are the per-trial means.
	MeanRounds float64 `json:"mean_rounds"`
	// MeanTime is the mean accounted runtime.
	MeanTime float64 `json:"mean_time"`
}

// aggregate folds trial summaries into the job-level aggregate.
func aggregate(trials []TrialSummary) Aggregate {
	a := Aggregate{Trials: len(trials)}
	for _, t := range trials {
		a.TotalRounds += t.Rounds
		a.TotalTime += t.Time
		a.TotalMeasured += t.Measured
		if t.Completed {
			a.Completed++
		}
	}
	if a.Trials > 0 {
		a.MeanRounds = float64(a.TotalRounds) / float64(a.Trials)
		a.MeanTime = float64(a.TotalTime) / float64(a.Trials)
	}
	return a
}

// Result is the stored outcome of one job. Route jobs carry trial
// summaries, the aggregate, and the folded telemetry snapshot; experiment
// jobs carry the table JSON and its rendered text, so serving a cached
// experiment reproduces the original output byte for byte.
type Result struct {
	// Key is the job's content address.
	Key string `json:"key"`
	// Spec is the normalized spec the key was computed from.
	Spec Spec `json:"spec"`
	// Params are the routing-problem parameters (route jobs).
	Params core.Params `json:"params"`
	// Trials are the per-trial summaries (route jobs).
	Trials []TrialSummary `json:"trials"`
	// Aggregate summarizes the trials (route jobs).
	Aggregate Aggregate `json:"aggregate"`
	// Telemetry is the fold of the per-trial snapshots (route and dynamic
	// jobs).
	Telemetry *telemetry.Snapshot `json:"telemetry"`
	// Table is the experiment table's canonical JSON (experiment jobs).
	Table json.RawMessage `json:"table,omitempty"`
	// Text is the experiment's rendered report (experiment jobs).
	Text string `json:"text,omitempty"`
	// DynamicTrials are the per-replay summaries (dynamic jobs).
	DynamicTrials []DynamicTrialSummary `json:"dynamic_trials,omitempty"`
	// DynamicAggregate summarizes the replays (dynamic jobs).
	DynamicAggregate DynamicAggregate `json:"dynamic_aggregate"`
}

// checkpoint is the durable mid-sweep state written after every completed
// trial: the summaries and folded telemetry of trials [0, Done). All
// numeric state is integral, so the JSON round trip through the store is
// exact and a resumed fold matches an in-memory one.
type checkpoint struct {
	Key       string              `json:"key"`
	Done      int                 `json:"done"`
	Trials    []TrialSummary      `json:"trials"`
	Telemetry *telemetry.Snapshot `json:"telemetry"`
	// DynamicTrials replaces Trials for dynamic trace-replay jobs.
	DynamicTrials []DynamicTrialSummary `json:"dynamic_trials,omitempty"`
}

// resultKey and checkpointKey namespace the store: both object kinds of
// one job live under its content address.
func resultKey(key string) string     { return "result/" + key }
func checkpointKey(key string) string { return "ckpt/" + key }

// ResultKey returns the store key of the job's result record; the
// cluster layer and operational tooling address replicated records
// through it.
func ResultKey(key string) string { return resultKey(key) }

// CheckpointKey returns the store key of the job's mid-sweep checkpoint
// record.
func CheckpointKey(key string) string { return checkpointKey(key) }

// reload fixes the one JSON asymmetry of a store round trip: a nil
// RawMessage is stored as the literal null, which unmarshals as the
// 4-byte token rather than nil. Normalizing it back keeps cached and
// freshly computed results byte-identical when re-encoded.
func (r *Result) reload() {
	if string(r.Table) == "null" {
		r.Table = nil
	}
}

// TrialOutcome is one executed trial of a route sweep: its summary plus
// its solo telemetry snapshot. It is the unit of work-stealing transfer —
// integral throughout, so the JSON trip from a stealing peer back to the
// owner is exact and the owner's fold is byte-identical to local
// execution.
type TrialOutcome struct {
	// Summary is the trial's result row.
	Summary TrialSummary `json:"summary"`
	// Snapshot is the telemetry of exactly this trial.
	Snapshot *telemetry.Snapshot `json:"snapshot"`
}

// RemoteBatch is a contiguous trial range completed by a remote peer.
type RemoteBatch struct {
	// From and To bound the claimed range [From, To).
	From int `json:"from"`
	// To is the exclusive upper bound.
	To int `json:"to"`
	// Outcomes are the executed trials, in trial order. An empty batch is
	// a wakeup poke (e.g. after a reclaim) carrying no results.
	Outcomes []TrialOutcome `json:"outcomes"`
}

// TrialSession is one sweep's distribution state, owned by the executing
// worker. ClaimLocal hands the worker the lowest trial not claimed by a
// remote peer; Completed delivers remotely executed batches (and
// occasional empty pokes). The channel is never closed; the owner bounds
// its waits and re-polls ClaimLocal, so an expired remote claim flows
// back to local execution. Close releases the session's registration.
type TrialSession interface {
	// ClaimLocal claims the lowest unclaimed trial for local execution.
	ClaimLocal() (trial int, ok bool)
	// Completed delivers remote batches; never closed.
	Completed() <-chan RemoteBatch
	// Close unregisters the session (idempotent).
	Close()
}

// TrialDistributor opens distribution sessions for route sweeps; the
// cluster layer implements it. Distribute may return nil to keep the
// sweep purely local (no peers, too few trials, stealing disabled).
type TrialDistributor interface {
	Distribute(key string, spec Spec, start, total int) TrialSession
}

// Executor runs jobs against an optional store and an optional live
// telemetry aggregate. It holds no per-job state: the engine is supplied
// by the calling worker so its scratch memory is reused across jobs.
type Executor struct {
	// Store memoizes results and checkpoints; nil disables persistence.
	Store *Store
	// Experiments runs experiment jobs; nil rejects them.
	Experiments ExperimentRunner
	// Live optionally receives every trial's telemetry for /metrics.
	Live *telemetry.Live
	// Distribute, when set, lets remote peers steal trial ranges of route
	// sweeps (see internal/cluster); nil keeps every sweep local.
	Distribute TrialDistributor
	// Lookup, when set, resolves store keys missing locally against the
	// cluster's replicas (read-repair); nil keeps lookups local.
	Lookup func(storeKey string) (json.RawMessage, bool)
}

// lookupJSON resolves a store key: the local store first, then the
// cluster read-repair hook. A remote hit is persisted locally with
// PutRaw — the replicated bytes are already canonical — so the next
// lookup is a local one.
func (e *Executor) lookupJSON(storeKey string, out any) (bool, error) {
	if e.Store != nil {
		ok, err := e.Store.GetJSON(storeKey, out)
		if err != nil || ok {
			return ok, err
		}
	}
	if e.Lookup == nil {
		return false, nil
	}
	raw, ok := e.Lookup(storeKey)
	if !ok {
		return false, nil
	}
	if err := json.Unmarshal(raw, out); err != nil {
		return false, fmt.Errorf("jobs: replicated value for %s: %w", storeKey, err)
	}
	if e.Store != nil {
		if err := e.Store.PutRaw(storeKey, raw); err != nil {
			return false, err
		}
	}
	return true, nil
}

// Run executes the spec on the worker's engine. It returns the cached
// result without re-simulation when the store already has one, resumes
// from the last checkpoint when one exists, and otherwise runs the full
// sweep, checkpointing after every trial. progress (optional) observes
// (completedTrials, totalTrials); canceled (optional) is polled between
// trials and stops the sweep with ErrCanceled, retaining the checkpoint.
// The second return reports whether the result came from the store.
func (e *Executor) Run(spec Spec, eng Simulator, progress func(done, total int), canceled func() bool) (*Result, bool, error) {
	key, err := spec.Key()
	if err != nil {
		return nil, false, err
	}
	norm := spec.Normalized()
	if e.Store != nil || e.Lookup != nil {
		var cached Result
		ok, err := e.lookupJSON(resultKey(key), &cached)
		if err != nil {
			return nil, false, err
		}
		if ok {
			cached.reload()
			return &cached, true, nil
		}
	}
	var res *Result
	switch {
	case norm.Experiment != nil:
		res, err = e.runExperiment(key, norm)
	case norm.Dynamic != nil:
		res, err = e.runDynamic(key, norm, eng, progress, canceled)
	default:
		res, err = e.runRoute(key, norm, eng, progress, canceled)
	}
	if err != nil {
		return nil, false, err
	}
	if e.Store != nil {
		if err := e.Store.Put(resultKey(key), res); err != nil {
			return nil, false, err
		}
		if err := e.Store.Delete(checkpointKey(key)); err != nil {
			return nil, false, err
		}
		if err := e.Store.Sync(); err != nil {
			return nil, false, err
		}
	}
	return res, false, nil
}

// runExperiment delegates to the injected experiment harness.
func (e *Executor) runExperiment(key string, norm Spec) (*Result, error) {
	if e.Experiments == nil {
		return nil, fmt.Errorf("jobs: no experiment runner configured")
	}
	x := norm.Experiment
	table, text, err := e.Experiments(x.ID, x.Seed, x.Trials, x.Quick)
	if err != nil {
		return nil, err
	}
	return &Result{Key: key, Spec: norm, Table: table, Text: text}, nil
}

// routeTrial executes one trial of a materialized route sweep on eng.
// cfg is the setup's config with the caller's probe attached.
func routeTrial(setup *runSetup, cfg core.Config, i int, eng Simulator) (TrialSummary, error) {
	res, err := core.RunWithSimulator(setup.col, cfg, setup.trialSrcs[i], eng)
	if err != nil {
		return TrialSummary{}, err
	}
	return TrialSummary{
		Trial:      i,
		Rounds:     res.TotalRounds,
		Time:       res.TotalTime,
		Measured:   res.MeasuredTime,
		Worms:      res.Params.N,
		Acked:      res.Params.N - len(res.StillActive),
		FaultKills: res.TotalFaultKills,
		Rerouted:   res.TotalRerouted,
		Completed:  res.AllDelivered,
	}, nil
}

// routeResult assembles a route sweep's final Result from its folded
// state; shared by the sequential and distributed paths so both produce
// the same bytes.
func routeResult(key string, norm Spec, setup *runSetup, summaries []TrialSummary, folded *telemetry.Snapshot) *Result {
	var params core.Params
	if setup.col.Size() > 0 {
		params = core.Params{
			N:              setup.col.Size(),
			Dilation:       setup.col.Dilation(),
			PathCongestion: setup.col.PathCongestion(),
			Length:         setup.cfg.Length,
			Bandwidth:      setup.cfg.Bandwidth,
		}
	}
	return &Result{
		Key:       key,
		Spec:      norm,
		Params:    params,
		Trials:    summaries,
		Aggregate: aggregate(summaries),
		Telemetry: folded,
	}
}

// runRoute executes (or resumes) a route sweep trial by trial. With a
// TrialDistributor attached, remote peers may steal trial ranges; the
// fold stays strictly in trial order either way, so the distributed
// result is byte-identical to a single-node run.
func (e *Executor) runRoute(key string, norm Spec, eng Simulator, progress func(done, total int), canceled func() bool) (*Result, error) {
	r := norm.Route
	setup, err := r.setup()
	if err != nil {
		return nil, err
	}
	summaries := make([]TrialSummary, 0, r.Trials)
	folded := &telemetry.Snapshot{}
	start := 0
	if e.Store != nil || e.Lookup != nil {
		// The checkpoint lookup consults replicas too: a sweep whose owner
		// died resumes on the next node from the replicated checkpoint.
		var ck checkpoint
		ok, err := e.lookupJSON(checkpointKey(key), &ck)
		if err != nil {
			return nil, err
		}
		if ok && ck.Key == key && ck.Done == len(ck.Trials) && ck.Done <= r.Trials && ck.Telemetry != nil {
			summaries = append(summaries, ck.Trials...)
			folded = ck.Telemetry
			start = ck.Done
		}
	}
	if progress != nil {
		progress(start, r.Trials)
	}
	if e.Distribute != nil {
		if sess := e.Distribute.Distribute(key, norm, start, r.Trials); sess != nil {
			return e.runRouteDistributed(key, norm, setup, summaries, folded, start, eng, progress, canceled, sess)
		}
	}
	col := telemetry.NewCollector()
	cfg := setup.cfg
	cfg.Probe = col
	for i := start; i < r.Trials; i++ {
		if canceled != nil && canceled() {
			return nil, ErrCanceled
		}
		sum, err := routeTrial(setup, cfg, i, eng)
		if err != nil {
			return nil, err
		}
		summaries = append(summaries, sum)
		snap := col.Snapshot()
		if e.Live != nil {
			e.Live.Absorb(col) // resets col for the next trial
		} else {
			col.Reset()
		}
		if err := folded.Add(snap); err != nil {
			return nil, err
		}
		if e.Store != nil {
			ck := checkpoint{Key: key, Done: i + 1, Trials: summaries, Telemetry: folded}
			if err := e.Store.Put(checkpointKey(key), ck); err != nil {
				return nil, err
			}
		}
		if progress != nil {
			progress(i+1, r.Trials)
		}
	}
	return routeResult(key, norm, setup, summaries, folded), nil
}

// distPollInterval bounds the owner's wait for remote batches, so
// cancellation and reclaimed trials are noticed promptly.
const distPollInterval = 50 * time.Millisecond

// runRouteDistributed executes a route sweep with remote help. The owner
// claims trials the session has not handed to peers and executes them on
// its own engine; remotely executed batches arrive on the session
// channel. Outcomes are buffered per trial index and folded strictly in
// trial order — each fold step appends the summary, adds the trial's
// snapshot via telemetry.Snapshot.Add and checkpoints, exactly like the
// sequential loop — so the result and every checkpoint are byte-identical
// to a single-node run of the same spec.
func (e *Executor) runRouteDistributed(key string, norm Spec, setup *runSetup, summaries []TrialSummary, folded *telemetry.Snapshot, start int, eng Simulator, progress func(done, total int), canceled func() bool, sess TrialSession) (*Result, error) {
	defer sess.Close()
	total := norm.Route.Trials
	col := telemetry.NewCollector()
	cfg := setup.cfg
	cfg.Probe = col

	pending := make(map[int]TrialOutcome) // completed, not yet folded
	next := start                         // fold pointer: len(summaries)
	fold := func() error {
		for {
			out, ok := pending[next]
			if !ok {
				return nil
			}
			delete(pending, next)
			summaries = append(summaries, out.Summary)
			if err := folded.Add(out.Snapshot); err != nil {
				return err
			}
			next++
			if e.Store != nil {
				ck := checkpoint{Key: key, Done: next, Trials: summaries, Telemetry: folded}
				if err := e.Store.Put(checkpointKey(key), ck); err != nil {
					return err
				}
			}
			if progress != nil {
				progress(next, total)
			}
		}
	}
	absorb := func(b RemoteBatch) {
		for _, out := range b.Outcomes {
			i := out.Summary.Trial
			if i < next || i >= total {
				continue // duplicate of an already-folded (reclaimed) trial
			}
			if _, ok := pending[i]; ok {
				continue
			}
			pending[i] = out
			if e.Live != nil {
				// Live gauges are best effort; the authoritative fold is the
				// result's snapshot, where a mismatch is a hard error.
				_ = e.Live.AddSnapshot(out.Snapshot)
			}
		}
	}

	for next < total {
		if canceled != nil && canceled() {
			return nil, ErrCanceled
		}
		if i, ok := sess.ClaimLocal(); ok {
			sum, err := routeTrial(setup, cfg, i, eng)
			if err != nil {
				return nil, err
			}
			snap := col.Snapshot()
			if e.Live != nil {
				e.Live.Absorb(col) // resets col for the next trial
			} else {
				col.Reset()
			}
			pending[i] = TrialOutcome{Summary: sum, Snapshot: snap}
		} else {
			// Every remaining trial is claimed remotely: wait for a batch,
			// bounded so expired claims (dead peer) flow back to ClaimLocal.
			select {
			case b := <-sess.Completed():
				absorb(b)
			case <-time.After(distPollInterval):
			}
		}
		// Drain whatever else has arrived, then fold the contiguous prefix.
	drained:
		for {
			select {
			case b := <-sess.Completed():
				absorb(b)
			default:
				break drained
			}
		}
		if err := fold(); err != nil {
			return nil, err
		}
	}
	return routeResult(key, norm, setup, summaries, folded), nil
}

// RunTrialRange executes trials [from, to) of a route sweep on eng,
// returning each trial's summary and solo telemetry snapshot. It is the
// work-stealing entry point: per-trial rng streams are pre-split from
// the spec's master seed in a fixed order, so any node can execute any
// trial range and the owner's in-order fold reproduces a single-node
// run byte for byte.
func RunTrialRange(spec Spec, eng Simulator, from, to int) ([]TrialOutcome, error) {
	if _, err := spec.Key(); err != nil {
		return nil, err
	}
	norm := spec.Normalized()
	if norm.Route == nil {
		return nil, fmt.Errorf("jobs: only route sweeps distribute trials")
	}
	r := norm.Route
	if from < 0 || to > r.Trials || from > to {
		return nil, fmt.Errorf("jobs: trial range [%d, %d) outside sweep of %d trials", from, to, r.Trials)
	}
	setup, err := r.setup()
	if err != nil {
		return nil, err
	}
	col := telemetry.NewCollector()
	cfg := setup.cfg
	cfg.Probe = col
	outs := make([]TrialOutcome, 0, to-from)
	for i := from; i < to; i++ {
		sum, err := routeTrial(setup, cfg, i, eng)
		if err != nil {
			return nil, err
		}
		snap := col.Snapshot()
		col.Reset()
		outs = append(outs, TrialOutcome{Summary: sum, Snapshot: snap})
	}
	return outs, nil
}
