package jobs

import (
	"encoding/json"
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// ErrCanceled is returned for a job canceled before it finished. The
// checkpoint written after the last completed trial is retained, so a
// resubmission resumes instead of starting over.
var ErrCanceled = errors.New("jobs: job canceled")

// ExperimentRunner executes one named experiment table and returns its
// canonical JSON encoding plus the pre-rendered text report. The harness
// in internal/experiments provides it (see experiments.JobRunner); the
// indirection keeps this package from importing the experiment harness.
type ExperimentRunner func(id string, seed uint64, trials int, quick bool) (table json.RawMessage, text string, err error)

// TrialSummary is the per-trial slice of a route job's result: the exact
// integers needed to rebuild the aggregate, so a checkpointed prefix plus
// re-run suffix reproduces an uninterrupted run byte for byte.
type TrialSummary struct {
	// Trial is the 0-based trial index.
	Trial int `json:"trial"`
	// Rounds is the protocol's round count.
	Rounds int `json:"rounds"`
	// Time is the paper's accounted runtime.
	Time int `json:"time"`
	// Measured is the summed simulated makespan.
	Measured int `json:"measured"`
	// Worms and Acked give the trial's delivery fraction.
	Worms int `json:"worms"`
	// Acked counts acknowledged worms.
	Acked int `json:"acked"`
	// FaultKills counts fault-destroyed trains (degraded runs).
	FaultKills int `json:"fault_kills"`
	// Rerouted counts degraded-mode reroutes.
	Rerouted int `json:"rerouted"`
	// Completed reports whether every worm was acknowledged in bounds.
	Completed bool `json:"completed"`
}

// Aggregate summarizes a route job's trials. It is recomputed from the
// trial summaries (never accumulated incrementally), so resumed and
// uninterrupted sweeps agree exactly.
type Aggregate struct {
	// Trials is the number of trials aggregated.
	Trials int `json:"trials"`
	// Completed counts trials where every worm was acknowledged.
	Completed int `json:"completed"`
	// TotalRounds, TotalTime and TotalMeasured sum the per-trial columns.
	TotalRounds int `json:"total_rounds"`
	// TotalTime sums the accounted runtimes.
	TotalTime int `json:"total_time"`
	// TotalMeasured sums the measured makespans.
	TotalMeasured int `json:"total_measured"`
	// MeanRounds and MeanTime are the per-trial means.
	MeanRounds float64 `json:"mean_rounds"`
	// MeanTime is the mean accounted runtime.
	MeanTime float64 `json:"mean_time"`
}

// aggregate folds trial summaries into the job-level aggregate.
func aggregate(trials []TrialSummary) Aggregate {
	a := Aggregate{Trials: len(trials)}
	for _, t := range trials {
		a.TotalRounds += t.Rounds
		a.TotalTime += t.Time
		a.TotalMeasured += t.Measured
		if t.Completed {
			a.Completed++
		}
	}
	if a.Trials > 0 {
		a.MeanRounds = float64(a.TotalRounds) / float64(a.Trials)
		a.MeanTime = float64(a.TotalTime) / float64(a.Trials)
	}
	return a
}

// Result is the stored outcome of one job. Route jobs carry trial
// summaries, the aggregate, and the folded telemetry snapshot; experiment
// jobs carry the table JSON and its rendered text, so serving a cached
// experiment reproduces the original output byte for byte.
type Result struct {
	// Key is the job's content address.
	Key string `json:"key"`
	// Spec is the normalized spec the key was computed from.
	Spec Spec `json:"spec"`
	// Params are the routing-problem parameters (route jobs).
	Params core.Params `json:"params"`
	// Trials are the per-trial summaries (route jobs).
	Trials []TrialSummary `json:"trials"`
	// Aggregate summarizes the trials (route jobs).
	Aggregate Aggregate `json:"aggregate"`
	// Telemetry is the fold of the per-trial snapshots (route and dynamic
	// jobs).
	Telemetry *telemetry.Snapshot `json:"telemetry"`
	// Table is the experiment table's canonical JSON (experiment jobs).
	Table json.RawMessage `json:"table,omitempty"`
	// Text is the experiment's rendered report (experiment jobs).
	Text string `json:"text,omitempty"`
	// DynamicTrials are the per-replay summaries (dynamic jobs).
	DynamicTrials []DynamicTrialSummary `json:"dynamic_trials,omitempty"`
	// DynamicAggregate summarizes the replays (dynamic jobs).
	DynamicAggregate DynamicAggregate `json:"dynamic_aggregate"`
}

// checkpoint is the durable mid-sweep state written after every completed
// trial: the summaries and folded telemetry of trials [0, Done). All
// numeric state is integral, so the JSON round trip through the store is
// exact and a resumed fold matches an in-memory one.
type checkpoint struct {
	Key       string              `json:"key"`
	Done      int                 `json:"done"`
	Trials    []TrialSummary      `json:"trials"`
	Telemetry *telemetry.Snapshot `json:"telemetry"`
	// DynamicTrials replaces Trials for dynamic trace-replay jobs.
	DynamicTrials []DynamicTrialSummary `json:"dynamic_trials,omitempty"`
}

// resultKey and checkpointKey namespace the store: both object kinds of
// one job live under its content address.
func resultKey(key string) string     { return "result/" + key }
func checkpointKey(key string) string { return "ckpt/" + key }

// reload fixes the one JSON asymmetry of a store round trip: a nil
// RawMessage is stored as the literal null, which unmarshals as the
// 4-byte token rather than nil. Normalizing it back keeps cached and
// freshly computed results byte-identical when re-encoded.
func (r *Result) reload() {
	if string(r.Table) == "null" {
		r.Table = nil
	}
}

// Executor runs jobs against an optional store and an optional live
// telemetry aggregate. It holds no per-job state: the engine is supplied
// by the calling worker so its scratch memory is reused across jobs.
type Executor struct {
	// Store memoizes results and checkpoints; nil disables persistence.
	Store *Store
	// Experiments runs experiment jobs; nil rejects them.
	Experiments ExperimentRunner
	// Live optionally receives every trial's telemetry for /metrics.
	Live *telemetry.Live
}

// Run executes the spec on the worker's engine. It returns the cached
// result without re-simulation when the store already has one, resumes
// from the last checkpoint when one exists, and otherwise runs the full
// sweep, checkpointing after every trial. progress (optional) observes
// (completedTrials, totalTrials); canceled (optional) is polled between
// trials and stops the sweep with ErrCanceled, retaining the checkpoint.
// The second return reports whether the result came from the store.
func (e *Executor) Run(spec Spec, eng *sim.Engine, progress func(done, total int), canceled func() bool) (*Result, bool, error) {
	key, err := spec.Key()
	if err != nil {
		return nil, false, err
	}
	norm := spec.Normalized()
	if e.Store != nil {
		var cached Result
		ok, err := e.Store.GetJSON(resultKey(key), &cached)
		if err != nil {
			return nil, false, err
		}
		if ok {
			cached.reload()
			return &cached, true, nil
		}
	}
	var res *Result
	switch {
	case norm.Experiment != nil:
		res, err = e.runExperiment(key, norm)
	case norm.Dynamic != nil:
		res, err = e.runDynamic(key, norm, eng, progress, canceled)
	default:
		res, err = e.runRoute(key, norm, eng, progress, canceled)
	}
	if err != nil {
		return nil, false, err
	}
	if e.Store != nil {
		if err := e.Store.Put(resultKey(key), res); err != nil {
			return nil, false, err
		}
		if err := e.Store.Delete(checkpointKey(key)); err != nil {
			return nil, false, err
		}
		if err := e.Store.Sync(); err != nil {
			return nil, false, err
		}
	}
	return res, false, nil
}

// runExperiment delegates to the injected experiment harness.
func (e *Executor) runExperiment(key string, norm Spec) (*Result, error) {
	if e.Experiments == nil {
		return nil, fmt.Errorf("jobs: no experiment runner configured")
	}
	x := norm.Experiment
	table, text, err := e.Experiments(x.ID, x.Seed, x.Trials, x.Quick)
	if err != nil {
		return nil, err
	}
	return &Result{Key: key, Spec: norm, Table: table, Text: text}, nil
}

// runRoute executes (or resumes) a route sweep trial by trial.
func (e *Executor) runRoute(key string, norm Spec, eng *sim.Engine, progress func(done, total int), canceled func() bool) (*Result, error) {
	r := norm.Route
	setup, err := r.setup()
	if err != nil {
		return nil, err
	}
	summaries := make([]TrialSummary, 0, r.Trials)
	folded := &telemetry.Snapshot{}
	start := 0
	if e.Store != nil {
		var ck checkpoint
		ok, err := e.Store.GetJSON(checkpointKey(key), &ck)
		if err != nil {
			return nil, err
		}
		if ok && ck.Key == key && ck.Done == len(ck.Trials) && ck.Done <= r.Trials && ck.Telemetry != nil {
			summaries = append(summaries, ck.Trials...)
			folded = ck.Telemetry
			start = ck.Done
		}
	}
	if progress != nil {
		progress(start, r.Trials)
	}
	col := telemetry.NewCollector()
	cfg := setup.cfg
	cfg.Probe = col
	for i := start; i < r.Trials; i++ {
		if canceled != nil && canceled() {
			return nil, ErrCanceled
		}
		res, err := core.RunWithEngine(setup.col, cfg, setup.trialSrcs[i], eng)
		if err != nil {
			return nil, err
		}
		summaries = append(summaries, TrialSummary{
			Trial:      i,
			Rounds:     res.TotalRounds,
			Time:       res.TotalTime,
			Measured:   res.MeasuredTime,
			Worms:      res.Params.N,
			Acked:      res.Params.N - len(res.StillActive),
			FaultKills: res.TotalFaultKills,
			Rerouted:   res.TotalRerouted,
			Completed:  res.AllDelivered,
		})
		snap := col.Snapshot()
		if e.Live != nil {
			e.Live.Absorb(col) // resets col for the next trial
		} else {
			col.Reset()
		}
		if err := folded.Add(snap); err != nil {
			return nil, err
		}
		if e.Store != nil {
			ck := checkpoint{Key: key, Done: i + 1, Trials: summaries, Telemetry: folded}
			if err := e.Store.Put(checkpointKey(key), ck); err != nil {
				return nil, err
			}
		}
		if progress != nil {
			progress(i+1, r.Trials)
		}
	}
	var params core.Params
	if setup.col.Size() > 0 {
		params = core.Params{
			N:              setup.col.Size(),
			Dilation:       setup.col.Dilation(),
			PathCongestion: setup.col.PathCongestion(),
			Length:         setup.cfg.Length,
			Bandwidth:      setup.cfg.Bandwidth,
		}
	}
	return &Result{
		Key:       key,
		Spec:      norm,
		Params:    params,
		Trials:    summaries,
		Aggregate: aggregate(summaries),
		Telemetry: folded,
	}, nil
}
