package jobs

import (
	"bytes"
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/canon"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// testTrace generates the fixture workload used by the dynamic job
// tests: two cohorts on 16 nodes, matching a 2-dim side-4 torus.
func testTrace(t testing.TB) *workload.Trace {
	t.Helper()
	tr, err := workload.Spec{
		Nodes:   16,
		Horizon: 120,
		Seed:    77,
		Cohorts: []workload.Cohort{
			{Name: "base", Arrivals: workload.ArrivalSpec{Kind: workload.KindPoisson, Rate: 0.4}},
			{
				Name:         "bursty",
				Arrivals:     workload.ArrivalSpec{Kind: workload.KindOnOff, Rate: 1},
				Destinations: workload.Dist{Kind: workload.DistZipf, Spots: 3},
			},
		},
	}.Generate()
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return tr
}

// testDynamicSpec wraps the fixture trace in a dynamic job spec.
func testDynamicSpec(t testing.TB, seed uint64, trials int) Spec {
	t.Helper()
	return Spec{Dynamic: &DynamicSpec{
		Network: NetworkSpec{Kind: "torus", Dims: 2, Side: 4},
		Trace:   testTrace(t),
		Protocol: DynamicProtocolSpec{
			Bandwidth: 2,
			Length:    3,
			AckLength: 1,
		},
		Seed:   seed,
		Trials: trials,
	}}
}

// goldenDynamicKey pins the content address of the fixture dynamic job.
// It covers the whole chain: workload generation, trace canonical form,
// and the dynamic spec's normalization. A drift means the content-address
// contract changed and every stored dynamic result is invalidated —
// deliberate changes must repin (and bump workload.TraceVersion when the
// trace payload itself changed).
const goldenDynamicKey = "635e567bdeb0a07b1d86315761559d1ad9f8e5cec72ad31bf0448570bd62cb9c"

func TestDynamicJobGoldenKey(t *testing.T) {
	key := mustKey(t, testDynamicSpec(t, 9, 2))
	if key != goldenDynamicKey {
		t.Fatalf("dynamic job key drifted:\n  got  %s\n  want %s", key, goldenDynamicKey)
	}
}

// TestDynamicKeyContentAddressed: independently generated but identical
// workloads share one job key; any parameter change produces a fresh one.
func TestDynamicKeyContentAddressed(t *testing.T) {
	base := mustKey(t, testDynamicSpec(t, 9, 2))
	if again := mustKey(t, testDynamicSpec(t, 9, 2)); again != base {
		t.Fatalf("regenerated identical workload changed the key: %s vs %s", again, base)
	}

	// An encode/decode round trip preserves the key too.
	spec := testDynamicSpec(t, 9, 2)
	enc, err := spec.Dynamic.Trace.Encode()
	if err != nil {
		t.Fatal(err)
	}
	dec, err := workload.Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	spec.Dynamic.Trace = dec
	if k := mustKey(t, spec); k != base {
		t.Fatalf("decoded trace changed the job key: %s vs %s", k, base)
	}

	mutations := map[string]func(*DynamicSpec){
		"seed":      func(d *DynamicSpec) { d.Seed++ },
		"trials":    func(d *DynamicSpec) { d.Trials++ },
		"bandwidth": func(d *DynamicSpec) { d.Protocol.Bandwidth++ },
		"trace":     func(d *DynamicSpec) { d.Trace.Arrivals = d.Trace.Arrivals[:len(d.Trace.Arrivals)-1] },
	}
	names := make([]string, 0, len(mutations))
	for name := range mutations {
		names = append(names, name)
	}
	for _, name := range names {
		s := testDynamicSpec(t, 9, 2)
		mutations[name](s.Dynamic)
		if k := mustKey(t, s); k == base {
			t.Errorf("mutating %s did not change the job key", name)
		}
	}
}

// TestDynamicReplayByteIdentical is the acceptance gate: a fixed-seed
// generated workload, its encoded-then-decoded trace, and an optnetd
// trace-job execution all produce byte-identical DynamicResults and
// telemetry snapshots.
func TestDynamicReplayByteIdentical(t *testing.T) {
	spec := testDynamicSpec(t, 5, 1).Normalized()
	d := spec.Dynamic

	run := func(tr *workload.Trace) (*sim.DynamicResult, []byte) {
		s := *d
		s.Trace = tr
		setup, err := s.setup()
		if err != nil {
			t.Fatal(err)
		}
		col := telemetry.NewCollector()
		cfg := setup.cfg
		cfg.Sim.Probe = col
		res, err := sim.RunDynamic(setup.g, setup.reqs, cfg, setup.trialSrcs[0])
		if err != nil {
			t.Fatal(err)
		}
		snap, err := canon.Marshal(col.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		return res, snap
	}

	genRes, genSnap := run(testTrace(t))

	enc, err := testTrace(t).Encode()
	if err != nil {
		t.Fatal(err)
	}
	dec, err := workload.Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	decRes, decSnap := run(dec)
	if !reflect.DeepEqual(genRes, decRes) {
		t.Fatal("decoded trace replayed to a different DynamicResult")
	}
	if !bytes.Equal(genSnap, decSnap) {
		t.Fatal("decoded trace replayed to a different telemetry snapshot")
	}

	// The job path: its single trial must summarize exactly this run, and
	// its telemetry snapshot must fold to the same bytes.
	store, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	exec := &Executor{Store: store}
	jobRes, fromCache, err := exec.Run(spec, sim.NewEngine(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if fromCache {
		t.Fatal("first run claimed a cache hit")
	}
	if len(jobRes.DynamicTrials) != 1 {
		t.Fatalf("trial count %d", len(jobRes.DynamicTrials))
	}
	s := jobRes.DynamicTrials[0]
	wantDelivered, wantGaveUp, wantLatency, wantMax := 0, 0, 0, 0
	for _, o := range genRes.Outcomes {
		if o.Delivered {
			wantDelivered++
			wantLatency += o.Latency
			if o.Latency > wantMax {
				wantMax = o.Latency
			}
		}
		if o.GaveUp {
			wantGaveUp++
		}
	}
	want := DynamicTrialSummary{
		Trial:      0,
		Requests:   len(genRes.Outcomes),
		Delivered:  wantDelivered,
		GaveUp:     wantGaveUp,
		Attempts:   genRes.TotalAttempts,
		Makespan:   genRes.Makespan,
		FaultKills: genRes.FaultKills,
		LatencySum: wantLatency,
		LatencyMax: wantMax,
	}
	if s != want {
		t.Fatalf("job trial summary %+v\nwant %+v", s, want)
	}
	jobSnap, err := canon.Marshal(jobRes.Telemetry)
	if err != nil {
		t.Fatal(err)
	}
	// The job folds its collector snapshot into an empty-geometry
	// Snapshot, which is exact; the folded bytes must match the direct
	// collector's.
	var folded telemetry.Snapshot
	var direct telemetry.Snapshot
	if err := json.Unmarshal(jobSnap, &folded); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(genSnap, &direct); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(folded, direct) {
		t.Fatalf("job telemetry differs from direct run:\n job   %s\n direct %s", jobSnap, genSnap)
	}

	// Resubmitting the (independently re-generated) identical workload is
	// a store cache hit with identical bytes.
	second, fromCache, err := exec.Run(testDynamicSpec(t, 5, 1), sim.NewEngine(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !fromCache {
		t.Fatal("identical regenerated workload missed the cache")
	}
	if !bytes.Equal(resultBytes(t, jobRes), resultBytes(t, second)) {
		t.Fatal("cached dynamic result differs")
	}
}

// TestDynamicRunResumeByteIdentical: a dynamic sweep killed at every
// trial boundary resumes from its checkpoint to a Result byte-identical
// to an uninterrupted run.
func TestDynamicRunResumeByteIdentical(t *testing.T) {
	const trials = 3
	spec := testDynamicSpec(t, 21, trials)

	refStore, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer refStore.Close()
	ref, _, err := (&Executor{Store: refStore}).Run(spec, sim.NewEngine(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	refBytes := resultBytes(t, ref)
	if ref.DynamicAggregate.Trials != trials || ref.DynamicAggregate.Delivered == 0 {
		t.Fatalf("fixture aggregate looks degenerate: %+v", ref.DynamicAggregate)
	}

	for kill := 1; kill < trials; kill++ {
		dir := t.TempDir()
		store, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		done := 0
		_, _, err = (&Executor{Store: store}).Run(spec, sim.NewEngine(),
			func(d, total int) { done = d },
			func() bool { return done >= kill })
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("kill=%d: want ErrCanceled, got %v", kill, err)
		}
		var ck checkpoint
		if ok, err := store.GetJSON(checkpointKey(mustKey(t, spec)), &ck); err != nil || !ok {
			t.Fatalf("kill=%d: checkpoint missing: %v", kill, err)
		}
		if ck.Done != kill || len(ck.DynamicTrials) != kill {
			t.Fatalf("kill=%d: checkpoint at %d trials (%d summaries)", kill, ck.Done, len(ck.DynamicTrials))
		}

		// Reopen the store as a restarted daemon would, then resume.
		store.Close()
		store, err = Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		resumed, fromCache, err := (&Executor{Store: store}).Run(spec, sim.NewEngine(), nil, nil)
		if err != nil {
			t.Fatalf("kill=%d: resume: %v", kill, err)
		}
		if fromCache {
			t.Fatalf("kill=%d: resume claimed a cache hit", kill)
		}
		if got := resultBytes(t, resumed); !bytes.Equal(got, refBytes) {
			t.Errorf("kill=%d: resumed result differs from uninterrupted run", kill)
		}
		store.Close()
	}
}

func TestDynamicSpecValidation(t *testing.T) {
	cases := map[string]func(*Spec){
		"butterfly network": func(s *Spec) { s.Dynamic.Network = NetworkSpec{Kind: "butterfly", Dim: 3} },
		"missing trace":     func(s *Spec) { s.Dynamic.Trace = nil },
		"invalid trace":     func(s *Spec) { s.Dynamic.Trace.Arrivals[0].Src = -1 },
		"two job kinds":     func(s *Spec) { s.Experiment = &ExperimentSpec{ID: "A1"} },
		"bad rule":          func(s *Spec) { s.Dynamic.Protocol.Rule = "lifo" },
		"bad backoff":       func(s *Spec) { s.Dynamic.Protocol.Backoff = "quadratic" },
		"huge trials":       func(s *Spec) { s.Dynamic.Trials = 20000 },
	}
	names := make([]string, 0, len(cases))
	for name := range cases {
		names = append(names, name)
	}
	for _, name := range names {
		s := testDynamicSpec(t, 1, 1)
		cases[name](&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}

	// Node-count mismatch surfaces at setup with a diagnosable message.
	s := testDynamicSpec(t, 1, 1)
	s.Dynamic.Network = NetworkSpec{Kind: "torus", Dims: 2, Side: 5}
	if err := s.Validate(); err != nil {
		t.Fatalf("mismatched sizes should pass static validation: %v", err)
	}
	_, _, err := (&Executor{}).Run(s, sim.NewEngine(), nil, nil)
	if err == nil || !strings.Contains(err.Error(), "nodes") {
		t.Fatalf("node-count mismatch not surfaced: %v", err)
	}
}
