package sim

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/optical"
	"repro/internal/rng"
	"repro/internal/topology"
)

func TestDynamicSingleRequest(t *testing.T) {
	g := chain(5)
	res, err := RunDynamic(g, []Request{
		{ID: 0, Path: graph.Path{0, 1, 2, 3, 4}, Length: 3, Arrival: 2},
	}, DynamicConfig{
		Sim: Config{Bandwidth: 1, Rule: optical.ServeFirst, CheckInvariants: true},
	}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	o := res.Outcomes[0]
	if !o.Delivered || o.Attempts != 1 || o.GaveUp {
		t.Fatalf("outcome = %+v", o)
	}
	// Delivered at arrival + k + L - 2 = 2 + 4 + 3 - 2 = 7; latency 5.
	if o.DeliveredAt != 7 || o.Latency != 5 {
		t.Errorf("deliveredAt=%d latency=%d, want 7/5", o.DeliveredAt, o.Latency)
	}
	if res.TotalAttempts != 1 {
		t.Errorf("total attempts = %d", res.TotalAttempts)
	}
}

func TestDynamicRetryAfterConflict(t *testing.T) {
	// A long-lived blocker occupies the link when the request first
	// arrives; the retry succeeds once the blocker has passed.
	g := chain(4)
	res, err := RunDynamic(g, []Request{
		{ID: 0, Path: graph.Path{0, 1, 2, 3}, Length: 20, Arrival: 0},
		{ID: 1, Path: graph.Path{0, 1, 2}, Length: 2, Arrival: 3},
	}, DynamicConfig{
		Sim:   Config{Bandwidth: 1, Rule: optical.ServeFirst, CheckInvariants: true},
		Retry: FixedBackoff{Range: 8},
	}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Outcomes[0].Delivered || res.Outcomes[0].Attempts != 1 {
		t.Fatalf("blocker outcome = %+v", res.Outcomes[0])
	}
	o := res.Outcomes[1]
	if !o.Delivered {
		t.Fatalf("request 1 never delivered: %+v", o)
	}
	if o.Attempts < 2 {
		t.Errorf("request 1 should have needed a retry, attempts = %d", o.Attempts)
	}
	if o.Latency <= o.DeliveredAt-o.Latency && o.Latency < 10 {
		t.Logf("latency = %d", o.Latency)
	}
	if res.TotalAttempts != res.Outcomes[0].Attempts+o.Attempts {
		t.Errorf("total attempts %d inconsistent", res.TotalAttempts)
	}
}

func TestDynamicGiveUp(t *testing.T) {
	// Permanent blocker: a worm so long it outlasts every retry window.
	g := chain(4)
	res, err := RunDynamic(g, []Request{
		{ID: 0, Path: graph.Path{0, 1, 2, 3}, Length: 4000, Arrival: 0},
		{ID: 1, Path: graph.Path{0, 1, 2}, Length: 2, Arrival: 5},
	}, DynamicConfig{
		Sim:         Config{Bandwidth: 1, Rule: optical.ServeFirst},
		Retry:       FixedBackoff{Range: 4},
		MaxAttempts: 3,
	}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	o := res.Outcomes[1]
	if o.Delivered || !o.GaveUp {
		t.Fatalf("request 1 should give up: %+v", o)
	}
	if o.Attempts != 3 {
		t.Errorf("attempts = %d, want 3", o.Attempts)
	}
}

func TestDynamicWithAcks(t *testing.T) {
	g := chain(4)
	res, err := RunDynamic(g, []Request{
		{ID: 0, Path: graph.Path{0, 1, 2, 3}, Length: 2, Arrival: 0},
		{ID: 1, Path: graph.Path{3, 2, 1, 0}, Length: 2, Arrival: 0},
	}, DynamicConfig{
		Sim: Config{Bandwidth: 1, Rule: optical.ServeFirst, AckLength: 1, CheckInvariants: true},
	}, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range res.Outcomes {
		if !o.Delivered {
			t.Errorf("request %d not delivered: %+v", i, o)
		}
	}
}

func TestDynamicDeterministic(t *testing.T) {
	tor := topology.NewTorus(2, 5)
	g := tor.Graph()
	build := func() []Request {
		src := rng.New(99)
		var reqs []Request
		for id := 0; id < 40; id++ {
			s, d := src.Intn(25), src.Intn(25)
			if s == d {
				continue
			}
			reqs = append(reqs, Request{
				ID: id, Path: g.ShortestPath(s, d), Length: 3, Arrival: src.Intn(60),
			})
		}
		return reqs
	}
	run := func() *DynamicResult {
		res, err := RunDynamic(g, build(), DynamicConfig{
			Sim: Config{Bandwidth: 2, Rule: optical.ServeFirst, AckLength: 1},
		}, rng.New(42))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.TotalAttempts != b.TotalAttempts || a.Makespan != b.Makespan {
		t.Fatal("nondeterministic dynamic run")
	}
	for i := range a.Outcomes {
		if a.Outcomes[i] != b.Outcomes[i] {
			t.Fatalf("outcome %d differs", i)
		}
	}
}

func TestDynamicLoadAllDelivered(t *testing.T) {
	// Moderate Poisson-ish load on a torus: everything should eventually
	// get through with exponential backoff.
	tor := topology.NewTorus(2, 6)
	g := tor.Graph()
	src := rng.New(11)
	var reqs []Request
	tArr := 0
	for id := 0; id < 120; id++ {
		tArr += src.Geometric(0.25) // mean inter-arrival 3 steps
		s, d := src.Intn(36), src.Intn(36)
		if s == d {
			d = (s + 1) % 36
		}
		reqs = append(reqs, Request{
			ID: id, Path: g.ShortestPath(s, d), Length: 4, Arrival: tArr,
		})
	}
	res, err := RunDynamic(g, reqs, DynamicConfig{
		Sim: Config{Bandwidth: 2, Rule: optical.ServeFirst, AckLength: 1},
	}, rng.New(13))
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range res.Outcomes {
		if !o.Delivered {
			t.Errorf("request %d undelivered (%+v)", i, o)
		}
	}
	if res.TotalAttempts < len(reqs) {
		t.Error("attempts below request count")
	}
}

func TestDynamicValidation(t *testing.T) {
	g := chain(3)
	cases := map[string]struct {
		reqs []Request
		cfg  DynamicConfig
	}{
		"bandwidth": {
			[]Request{{ID: 0, Path: graph.Path{0, 1}, Length: 1}},
			DynamicConfig{},
		},
		"dup id": {
			[]Request{
				{ID: 0, Path: graph.Path{0, 1}, Length: 1},
				{ID: 0, Path: graph.Path{1, 2}, Length: 1},
			},
			DynamicConfig{Sim: Config{Bandwidth: 1}},
		},
		"bad path": {
			[]Request{{ID: 0, Path: graph.Path{0, 2}, Length: 1}},
			DynamicConfig{Sim: Config{Bandwidth: 1}},
		},
		"zero length": {
			[]Request{{ID: 0, Path: graph.Path{0, 1}, Length: 0}},
			DynamicConfig{Sim: Config{Bandwidth: 1}},
		},
		"negative arrival": {
			[]Request{{ID: 0, Path: graph.Path{0, 1}, Length: 1, Arrival: -1}},
			DynamicConfig{Sim: Config{Bandwidth: 1}},
		},
	}
	for name, tc := range cases {
		if _, err := RunDynamic(g, tc.reqs, tc.cfg, rng.New(1)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestBackoffPolicies(t *testing.T) {
	tests := []struct {
		name    string
		policy  ExponentialBackoff
		attempt int
		want    int
	}{
		{"first attempt returns base", ExponentialBackoff{Base: 4, Cap: 64}, 1, 4},
		{"second attempt doubles", ExponentialBackoff{Base: 4, Cap: 64}, 2, 8},
		{"capped at ceiling", ExponentialBackoff{Base: 4, Cap: 64}, 10, 64},
		{"exactly at ceiling", ExponentialBackoff{Base: 4, Cap: 64}, 5, 64},
		{"zero value defaults base to 8", ExponentialBackoff{}, 1, 8},
		{"zero value defaults cap to 1024*base", ExponentialBackoff{}, 60, 8 * 1024},
		{"shift clamp at attempt 30", ExponentialBackoff{Base: 1, Cap: 1 << 40}, 30, 1 << 29},
		{"attempt 31 matches the clamp", ExponentialBackoff{Base: 1, Cap: 1 << 40}, 31, 1 << 29},
		{"huge attempt does not overflow", ExponentialBackoff{Base: 4}, 1 << 20, 4 * 1024},
	}
	for _, tc := range tests {
		if got := tc.policy.Backoff(tc.attempt); got != tc.want {
			t.Errorf("%s: Backoff(%d) = %d, want %d", tc.name, tc.attempt, got, tc.want)
		}
	}
	if (FixedBackoff{Range: 7}).Backoff(3) != 7 || (FixedBackoff{}).Backoff(1) != 1 {
		t.Error("fixed backoff values")
	}
	if (ExponentialBackoff{}).Name() != "exponential" || (FixedBackoff{}).Name() != "fixed" {
		t.Error("names")
	}
}

// TestDynamicMaxAttemptsBoundary pins give-up accounting at the attempt
// budget: the blocked request's final attempt leaves Attempts exactly at
// the effective MaxAttempts (including the documented 0 = 50 default),
// GaveUp set, and Delivered/GaveUp mutually exclusive for every request.
func TestDynamicMaxAttemptsBoundary(t *testing.T) {
	cases := []struct {
		name         string
		maxAttempts  int
		wantAttempts int
	}{
		{"one attempt", 1, 1},
		{"small budget", 3, 3},
		{"odd budget", 7, 7},
		{"zero means DefaultMaxAttempts", 0, DefaultMaxAttempts},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Permanent blocker: a worm so long it outlasts every retry
			// window of the blocked request.
			g := chain(4)
			res, err := RunDynamic(g, []Request{
				{ID: 0, Path: graph.Path{0, 1, 2, 3}, Length: 4000, Arrival: 0},
				{ID: 1, Path: graph.Path{0, 1, 2}, Length: 2, Arrival: 5},
			}, DynamicConfig{
				Sim:         Config{Bandwidth: 1, Rule: optical.ServeFirst, CheckInvariants: true},
				Retry:       FixedBackoff{Range: 4},
				MaxAttempts: tc.maxAttempts,
			}, rng.New(3))
			if err != nil {
				t.Fatal(err)
			}
			blocker, blocked := res.Outcomes[0], res.Outcomes[1]
			if !blocker.Delivered || blocker.GaveUp {
				t.Fatalf("blocker outcome = %+v", blocker)
			}
			if blocked.Delivered || !blocked.GaveUp {
				t.Fatalf("blocked request should give up: %+v", blocked)
			}
			if blocked.Attempts != tc.wantAttempts {
				t.Errorf("Attempts = %d, want exactly MaxAttempts = %d", blocked.Attempts, tc.wantAttempts)
			}
			if blocked.DeliveredAt != -1 || blocked.Latency != -1 {
				t.Errorf("given-up request has delivery fields set: %+v", blocked)
			}
			if res.TotalAttempts != blocker.Attempts+blocked.Attempts {
				t.Errorf("TotalAttempts = %d, want %d", res.TotalAttempts, blocker.Attempts+blocked.Attempts)
			}
			for i, o := range res.Outcomes {
				if o.Delivered && o.GaveUp {
					t.Errorf("request %d both Delivered and GaveUp", i)
				}
			}
		})
	}
}

// TestRunDynamicWithEngineReuse pins engine reuse: back-to-back runs on
// one engine match fresh-engine runs exactly.
func TestRunDynamicWithEngineReuse(t *testing.T) {
	tor := topology.NewTorus(2, 5)
	g := tor.Graph()
	build := func() []Request {
		src := rng.New(99)
		reqs := make([]Request, 0, 30)
		for i := 0; i < 30; i++ {
			a, b := src.Intn(10), src.Intn(10)
			if a == b {
				b = (b + 1) % 10
			}
			reqs = append(reqs, Request{ID: i, Path: g.ShortestPath(a, b), Length: 3, Arrival: src.Intn(40)})
		}
		return reqs
	}
	cfg := DynamicConfig{
		Sim:   Config{Bandwidth: 2, Rule: optical.ServeFirst, AckLength: 1, CheckInvariants: true},
		Retry: ExponentialBackoff{Base: 4},
	}
	e := NewEngine()
	for round := 0; round < 3; round++ {
		reused, err := RunDynamicWithEngine(e, g, build(), cfg, rng.New(123))
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := RunDynamic(g, build(), cfg, rng.New(123))
		if err != nil {
			t.Fatal(err)
		}
		if len(reused.Outcomes) != len(fresh.Outcomes) {
			t.Fatalf("round %d: outcome counts differ", round)
		}
		for i := range reused.Outcomes {
			if reused.Outcomes[i] != fresh.Outcomes[i] {
				t.Fatalf("round %d request %d: reused %+v fresh %+v", round, i, reused.Outcomes[i], fresh.Outcomes[i])
			}
		}
		if reused.TotalAttempts != fresh.TotalAttempts || reused.Makespan != fresh.Makespan || reused.FaultKills != fresh.FaultKills {
			t.Fatalf("round %d: aggregates differ: %+v vs %+v", round, reused, fresh)
		}
	}
}
