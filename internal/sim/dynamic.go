package sim

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/rng"
)

// Dynamic operation: instead of one synchronized batch (the paper's
// static rounds), requests arrive over time and every source retries its
// own message independently with randomized backoff until the
// acknowledgement arrives — the setting of the dynamic RWA literature the
// paper cites (Ramaswami & Sivarajan [34]), transplanted to the
// trial-and-failure discipline. A source detects a lost attempt when the
// acknowledgement deadline passes (the kinematics are deterministic, so
// the deadline is exact) and relaunches with a fresh random wavelength
// and a startup delay drawn from the retry policy's backoff range.

// Request is one dynamically arriving message.
type Request struct {
	// ID identifies the request; IDs must be distinct and >= 0.
	ID int
	// Path is the fixed route (selected up front, as in the paper).
	Path graph.Path
	// Length is the worm length L >= 1.
	Length int
	// Arrival is the step at which the source may first launch.
	Arrival int
}

// RetryPolicy yields the backoff delay range for each retry attempt.
type RetryPolicy interface {
	// Backoff returns the delay range (>= 1) for 1-based attempt a; the
	// actual extra delay is drawn uniformly from [0, Backoff(a)).
	Backoff(attempt int) int
	// Name identifies the policy in reports.
	Name() string
}

// ExponentialBackoff doubles the range per attempt: min(Base<<(a-1), Cap).
// Zero values default Base to 8 and Cap to 1024*Base.
type ExponentialBackoff struct {
	Base, Cap int
}

// Backoff implements RetryPolicy.
func (e ExponentialBackoff) Backoff(attempt int) int {
	base, ceiling := e.Base, e.Cap
	if base <= 0 {
		base = 8
	}
	if ceiling <= 0 {
		ceiling = 1024 * base
	}
	// Clamp the shift so the doubling cannot overflow; the range is
	// capped at ceiling well before attempt 30 for any sane Base.
	if attempt > 30 {
		attempt = 30
	}
	r := base << uint(attempt-1)
	if r > ceiling {
		r = ceiling
	}
	if r < 1 {
		r = 1
	}
	return r
}

// Name implements RetryPolicy.
func (e ExponentialBackoff) Name() string { return "exponential" }

// FixedBackoff keeps a constant delay range.
type FixedBackoff struct {
	Range int
}

// Backoff implements RetryPolicy.
func (f FixedBackoff) Backoff(int) int {
	if f.Range < 1 {
		return 1
	}
	return f.Range
}

// Name implements RetryPolicy.
func (f FixedBackoff) Name() string { return "fixed" }

// DefaultMaxAttempts is the launch budget applied when
// DynamicConfig.MaxAttempts is zero: a request is abandoned (GaveUp)
// after 50 unacknowledged launches.
const DefaultMaxAttempts = 50

// DynamicConfig parameterizes RunDynamic.
type DynamicConfig struct {
	// Sim provides the link-level parameters (bandwidth, rule, wreckage,
	// acknowledgements, conversion). Sim.MaxSteps bounds the whole run
	// when set; RecordCollisions and CheckInvariants are honored.
	Sim Config
	// Retry provides the per-attempt backoff; nil means
	// ExponentialBackoff{Base: 2*L} per request.
	Retry RetryPolicy
	// MaxAttempts gives up on a request after this many launches. Zero
	// means DefaultMaxAttempts (50) — a generous budget bounded by the
	// step guard anyway — so a zero-valued config retries, not
	// zero-attempts. A request whose final attempt's deadline passes
	// unacknowledged is marked GaveUp with Attempts == MaxAttempts;
	// Delivered and GaveUp are mutually exclusive.
	MaxAttempts int
}

// DynamicOutcome is the fate of one request.
type DynamicOutcome struct {
	Delivered bool
	GaveUp    bool
	Attempts  int
	// DeliveredAt is the completion step of the successful attempt
	// (-1 if never delivered); Latency is DeliveredAt - Arrival.
	DeliveredAt int
	Latency     int
}

// DynamicResult aggregates a dynamic run.
type DynamicResult struct {
	Outcomes      []DynamicOutcome
	TotalAttempts int
	Makespan      int
	// FaultKills counts attempts (messages and acks) destroyed by an
	// injected fault schedule (Sim.Faults). A fault-killed attempt is
	// indistinguishable from a contention loss to its source: the exact
	// ack deadline passes and the source relaunches with backoff.
	FaultKills int
}

// RunDynamic simulates continuous operation: every request launches at
// its arrival and retries with randomized backoff until acknowledged or
// out of attempts. All randomness (wavelengths, ranks, backoff draws)
// comes from src, so runs are reproducible.
func RunDynamic(g *graph.Graph, reqs []Request, cfg DynamicConfig, src *rng.Source) (*DynamicResult, error) {
	return RunDynamicWithEngine(NewEngine(), g, reqs, cfg, src)
}

// RunDynamic is RunDynamicWithEngine on this engine, in method form so
// *Engine satisfies the job layer's Simulator interface alongside the
// sharded cluster simulator.
func (e *Engine) RunDynamic(g *graph.Graph, reqs []Request, cfg DynamicConfig, src *rng.Source) (*DynamicResult, error) {
	return RunDynamicWithEngine(e, g, reqs, cfg, src)
}

// RunDynamicWithEngine is RunDynamic on a caller-owned engine, reusing
// its arenas and scratch across runs — the dynamic counterpart of
// core.RunWithEngine for callers (trace-backed jobs, benchmarks) that
// execute many runs. The engine is reset at entry; results are
// independent of prior use.
func RunDynamicWithEngine(e *Engine, g *graph.Graph, reqs []Request, cfg DynamicConfig, src *rng.Source) (*DynamicResult, error) {
	if cfg.Sim.Bandwidth < 1 {
		return nil, fmt.Errorf("sim: bandwidth %d < 1", cfg.Sim.Bandwidth)
	}
	if cfg.Sim.Faults != nil && !cfg.Sim.Faults.Matches(g.NumLinks(), g.NumNodes(), cfg.Sim.Bandwidth) {
		return nil, fmt.Errorf("sim: fault schedule compiled for a different graph or bandwidth")
	}
	seen := make(map[int]bool, len(reqs))
	maxArrival, maxPath, maxLen := 0, 0, 1
	for i, r := range reqs {
		if r.ID < 0 || seen[r.ID] {
			return nil, fmt.Errorf("sim: request %d has invalid or duplicate ID %d", i, r.ID)
		}
		seen[r.ID] = true
		if err := r.Path.Validate(g); err != nil {
			return nil, fmt.Errorf("sim: request %d: %w", r.ID, err)
		}
		if r.Path.Len() == 0 || r.Length < 1 || r.Arrival < 0 {
			return nil, fmt.Errorf("sim: request %d has invalid parameters", r.ID)
		}
		if r.Arrival > maxArrival {
			maxArrival = r.Arrival
		}
		if r.Path.Len() > maxPath {
			maxPath = r.Path.Len()
		}
		if r.Length > maxLen {
			maxLen = r.Length
		}
	}
	maxAttempts := cfg.MaxAttempts
	if maxAttempts == 0 {
		maxAttempts = DefaultMaxAttempts
	}
	retry := cfg.Retry
	if retry == nil {
		retry = ExponentialBackoff{Base: 2 * maxLen}
	}

	e.begin(g, cfg.Sim, 0)
	dres := &DynamicResult{Outcomes: make([]DynamicOutcome, len(reqs))}
	for i := range dres.Outcomes {
		dres.Outcomes[i] = DynamicOutcome{DeliveredAt: -1, Latency: -1}
	}

	// attempt bookkeeping: outcome slot index -> request index.
	type attemptInfo struct {
		req     int
		attempt int
	}
	var attempts []attemptInfo
	launches := make(map[int][]int) // step -> request indices to launch
	deadlines := make(map[int][]int)
	pendingChecks := 0

	// launch schedules attempt a of request ri at step t.
	launch := func(ri, a, t int) {
		r := &reqs[ri]
		dres.Outcomes[ri].Attempts = a
		outIdx := len(e.res.Outcomes)
		e.res.Outcomes = append(e.res.Outcomes, newOutcome())
		attempts = append(attempts, attemptInfo{req: ri, attempt: a})
		tr := e.arena.newTrain()
		tr.id = outIdx // unique per attempt
		tr.outIdx = outIdx
		tr.links = appendPathLinks(tr.links, g, r.Path)
		tr.start = t
		tr.length = r.Length
		tr.wavelength = src.Intn(cfg.Sim.Bandwidth)
		tr.rank = src.Intn(1 << 30)
		tr.band = MessageBand
		e.addTrain(tr)
		dres.TotalAttempts++
		// Exact ack deadline: message done by t+k+L-2; ack (if any) by
		// +1+k+ackLen-2. One extra step of slack.
		k := r.Path.Len()
		deadline := t + k + r.Length
		if cfg.Sim.AckLength > 0 {
			deadline += 1 + k + cfg.Sim.AckLength
		}
		deadlines[deadline] = append(deadlines[deadline], outIdx)
		pendingChecks++
	}

	for i, r := range reqs {
		launches[r.Arrival] = append(launches[r.Arrival], i)
	}

	maxSteps := cfg.Sim.MaxSteps
	if maxSteps == 0 {
		perAttempt := 2*(maxPath+maxLen+cfg.Sim.AckLength) + retry.Backoff(maxAttempts) + 8
		maxSteps = maxArrival + maxAttempts*perAttempt + 16
	}

	t := 0
	for steps := 0; len(launches) > 0 || pendingChecks > 0 || e.cal.pending > 0 || len(e.active) > 0; steps++ {
		if steps > maxSteps {
			return nil, fmt.Errorf("sim: dynamic run exceeded %d steps (raise Sim.MaxSteps or lower load)", maxSteps)
		}
		if len(e.active) == 0 {
			// Jump over idle time to the next event.
			next := -1
			consider := func(s int) {
				if s >= t && (next < 0 || s < next) {
					next = s
				}
			}
			//optlint:allow mapiter order-independent min-reduction over pending launch steps
			for s := range launches {
				consider(s)
			}
			//optlint:allow mapiter order-independent min-reduction over pending deadline steps
			for s := range deadlines {
				consider(s)
			}
			if s, ok := e.cal.next(t); ok {
				consider(s)
			}
			if next > t {
				t = next
			}
		}
		if ls, ok := launches[t]; ok {
			for _, ri := range ls {
				launch(ri, 1, t)
			}
			delete(launches, t)
		}
		e.step(t)
		if cfg.Sim.CheckInvariants {
			if err := e.checkInvariants(t); err != nil {
				return nil, err
			}
		}
		if ds, ok := deadlines[t]; ok {
			for _, outIdx := range ds {
				pendingChecks--
				ai := attempts[outIdx]
				o := e.res.Outcomes[outIdx]
				ro := &dres.Outcomes[ai.req]
				if o.Acked {
					if !ro.Delivered {
						ro.Delivered = true
						ro.DeliveredAt = o.DeliveredAt
						ro.Latency = o.DeliveredAt - reqs[ai.req].Arrival
					}
					continue
				}
				if ai.attempt >= maxAttempts {
					ro.GaveUp = true
					continue
				}
				next := t + 1 + src.Intn(retry.Backoff(ai.attempt))
				launch(ai.req, ai.attempt+1, next)
			}
			delete(deadlines, t)
		}
		t++
	}
	dres.Makespan = e.res.Makespan
	dres.FaultKills = e.res.FaultKillCount
	return dres, nil
}
