package sim

import (
	"fmt"
	"testing"

	"repro/internal/graph"
	"repro/internal/optical"
	"repro/internal/rng"
	"repro/internal/topology"
)

// TestConversionSavesEntrant: with conversion at every router, a worm
// that would lose a serve-first conflict shifts to a free wavelength and
// is delivered.
func TestConversionSavesEntrant(t *testing.T) {
	g := chain(4)
	worms := []Worm{
		{ID: 0, Path: graph.Path{0, 1, 2, 3}, Length: 3, Delay: 0, Wavelength: 0},
		{ID: 1, Path: graph.Path{0, 1, 2}, Length: 3, Delay: 1, Wavelength: 0},
	}
	// Without conversion worm 1 is eliminated entering link 0 at step 1.
	noConv := mustRun(t, g, worms, cfg(2))
	if noConv.Outcomes[1].Delivered {
		t.Fatal("baseline: worm 1 should lose without conversion")
	}
	// With conversion it shifts to wavelength 1 and completes.
	c := cfg(2)
	c.Conversion = FullConversion
	conv := mustRun(t, g, worms, c)
	if !conv.Outcomes[0].Delivered || !conv.Outcomes[1].Delivered {
		t.Fatalf("conversion: outcomes %+v", conv.Outcomes)
	}
	if conv.CollisionCount != 0 {
		t.Errorf("conversion resolved the conflict; collisions = %d", conv.CollisionCount)
	}
}

// TestConversionExhaustedStillCut: when every wavelength is busy, the
// entrant is cut even with conversion.
func TestConversionExhaustedStillCut(t *testing.T) {
	g := chain(4)
	worms := []Worm{
		{ID: 0, Path: graph.Path{0, 1, 2, 3}, Length: 4, Delay: 0, Wavelength: 0},
		{ID: 1, Path: graph.Path{0, 1, 2, 3}, Length: 4, Delay: 0, Wavelength: 1},
		{ID: 2, Path: graph.Path{0, 1, 2}, Length: 2, Delay: 1, Wavelength: 0},
	}
	c := cfg(2)
	c.Conversion = FullConversion
	res := mustRun(t, g, worms, c)
	if res.Outcomes[2].Delivered {
		t.Fatal("worm 2 must be cut: both wavelengths busy on link 0")
	}
	if !res.Outcomes[0].Delivered || !res.Outcomes[1].Delivered {
		t.Fatal("incumbents must survive")
	}
}

// TestPartialConversion: conversion only at selected routers.
func TestPartialConversion(t *testing.T) {
	g := chain(5)
	worms := []Worm{
		{ID: 0, Path: graph.Path{0, 1, 2, 3, 4}, Length: 6, Delay: 0, Wavelength: 0},
		// Enters link 2->3 (from router 2) at step 3, while worm 0 holds
		// it during [2, 7].
		{ID: 1, Path: graph.Path{2, 3, 4}, Length: 2, Delay: 3, Wavelength: 0},
	}
	c := cfg(2)
	c.Conversion = func(u graph.NodeID) bool { return u != 2 } // not at router 2
	res := mustRun(t, g, worms, c)
	if res.Outcomes[1].Delivered {
		t.Fatal("router 2 cannot convert; worm 1 must be cut")
	}
	c.Conversion = func(u graph.NodeID) bool { return u == 2 } // only router 2
	res = mustRun(t, g, worms, c)
	if !res.Outcomes[1].Delivered {
		t.Fatal("router 2 converts; worm 1 must be delivered")
	}
}

// TestConversionCarriesDownstream: after converting at link i the worm
// keeps the new wavelength on later links (no conversion back).
func TestConversionCarriesDownstream(t *testing.T) {
	g := chain(5)
	worms := []Worm{
		// Blocker on wavelength 0 at link 0 only.
		{ID: 0, Path: graph.Path{0, 1}, Length: 4, Delay: 0, Wavelength: 0},
		// Converts to wavelength 1 at link 0, then must conflict with a
		// wavelength-1 incumbent downstream.
		{ID: 1, Path: graph.Path{0, 1, 2, 3, 4}, Length: 2, Delay: 1, Wavelength: 0},
		// Wavelength-1 incumbent on link 2->3 during [2, 7]: worm 1
		// arrives there at step 4 on its converted wavelength... and
		// converts again to wavelength 0 (free there), surviving.
		{ID: 2, Path: graph.Path{2, 3}, Length: 6, Delay: 2, Wavelength: 1},
	}
	c := cfg(2)
	c.Conversion = FullConversion
	c.RecordCollisions = true
	res := mustRun(t, g, worms, c)
	if !res.Outcomes[1].Delivered {
		t.Fatalf("worm 1 should convert twice and be delivered: %+v", res.Outcomes[1])
	}
	// Now forbid conversion at router 2: the second conflict kills it.
	c.Conversion = func(u graph.NodeID) bool { return u == 0 }
	res = mustRun(t, g, worms, c)
	if res.Outcomes[1].Delivered {
		t.Fatal("worm 1 must be cut at link 2->3 when router 2 cannot convert")
	}
	if res.Outcomes[1].CutLink != 2 {
		t.Errorf("cut at link %d, want 2", res.Outcomes[1].CutLink)
	}
}

// TestConversionBandwidthOneNoEffect: with B=1 there is nothing to
// convert to.
func TestConversionBandwidthOneNoEffect(t *testing.T) {
	g := chain(4)
	worms := []Worm{
		{ID: 0, Path: graph.Path{0, 1, 2, 3}, Length: 3, Delay: 0, Wavelength: 0},
		{ID: 1, Path: graph.Path{0, 1, 2}, Length: 3, Delay: 1, Wavelength: 0},
	}
	c := cfg(1)
	c.Conversion = FullConversion
	res := mustRun(t, g, worms, c)
	if res.Outcomes[1].Delivered {
		t.Fatal("B=1: conversion cannot help")
	}
}

// TestConversionReferenceEquivalence fuzzes both engines with conversion
// enabled (full and partial) across rules and policies.
func TestConversionReferenceEquivalence(t *testing.T) {
	graphs := []*graph.Graph{
		topology.NewChain(8).Graph(),
		topology.NewTorus(2, 4).Graph(),
		topology.NewButterfly(3).Graph(),
	}
	trials := 300
	if testing.Short() {
		trials = 50
	}
	for trial := 0; trial < trials; trial++ {
		src := rng.New(uint64(77000 + trial))
		g := graphs[trial%len(graphs)]
		cfgs := []Config{
			{Bandwidth: 2, Rule: optical.ServeFirst, Wreckage: Drain, Conversion: FullConversion},
			{Bandwidth: 3, Rule: optical.ServeFirst, Wreckage: Vanish, Conversion: FullConversion},
			{Bandwidth: 2, Rule: optical.Priority, Wreckage: Drain, Conversion: FullConversion},
			{Bandwidth: 2, Rule: optical.ServeFirst, Wreckage: Drain, AckLength: 1, Conversion: FullConversion},
			{Bandwidth: 2, Rule: optical.ServeFirst, Wreckage: Drain,
				Conversion: func(u graph.NodeID) bool { return u%2 == 0 }},
		}
		cfg := cfgs[trial%len(cfgs)]
		worms := randomWorms(g, src, 2+src.Intn(10), 4, 5, cfg.Bandwidth)
		if len(worms) == 0 {
			continue
		}
		compareEngines(t, g, worms, cfg, fmt.Sprintf("conv trial %d", trial))
	}
}

// TestConversionReducesFailures: statistically, conversion strictly helps
// on a congested workload.
func TestConversionReducesFailures(t *testing.T) {
	tor := topology.NewTorus(2, 5)
	g := tor.Graph()
	src := rng.New(4242)
	worms := randomWorms(g, src, 60, 4, 4, 3)
	base := mustRun(t, g, worms, Config{
		Bandwidth: 3, Rule: optical.ServeFirst, Wreckage: Drain, CheckInvariants: true,
	})
	conv := mustRun(t, g, worms, Config{
		Bandwidth: 3, Rule: optical.ServeFirst, Wreckage: Drain,
		Conversion: FullConversion, CheckInvariants: true,
	})
	if conv.DeliveredCount < base.DeliveredCount {
		t.Errorf("conversion delivered %d < baseline %d", conv.DeliveredCount, base.DeliveredCount)
	}
	if conv.DeliveredCount == base.DeliveredCount {
		t.Logf("note: conversion made no difference on this seed (%d delivered)", base.DeliveredCount)
	}
}
