// Package sim implements the discrete-time simulator of bufferless
// all-optical wormhole routing from Section 1.1 of Flammini & Scheideler
// (SPAA'97).
//
// Worms are rigid trains of L flits moving one link per time step along a
// fixed path: the worm with startup delay s occupies link i of its path
// during steps [s+i, s+i+L-1] (flit j traverses link i during step s+i+j).
// Worms cannot be buffered: on a wavelength conflict at a link, the losing
// worm (the arriving one under the serve-first rule, the lower-ranked one
// under the priority rule) is cut at that link.
//
// The wreckage of a cut is modelled by the fragment system: the losing
// worm's flits that already passed the conflict link continue as a ghost
// train toward the destination (they still occupy links and contend); the
// flits behind keep flowing and are absorbed at the conflict link's
// coupler (a barrier). This is the Drain policy; the Vanish policy removes
// the loser instantly, which matches the pairwise accounting used in the
// paper's analysis. Both policies never deliver a cut worm.
//
// Acknowledgements travel the reversed links in a reserved second band of
// B wavelengths (the paper's simplification) and contend under the same
// rule; a source only learns of success when the ack fully arrives.
package sim

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/faults"
	"repro/internal/graph"
	"repro/internal/optical"
	"repro/internal/telemetry"
)

// WreckagePolicy selects what happens to a worm that loses a collision.
type WreckagePolicy int

const (
	// Drain keeps the loser's wreckage in the network: downstream flits
	// continue as a ghost, upstream flits drain into the conflict link's
	// coupler. The physically faithful default.
	Drain WreckagePolicy = iota
	// Vanish removes the loser's occupancy instantly — the clean model
	// that matches the paper's analysis of pairwise collisions.
	Vanish
)

// String names the policy.
func (w WreckagePolicy) String() string {
	switch w {
	case Drain:
		return "drain"
	case Vanish:
		return "vanish"
	default:
		return fmt.Sprintf("WreckagePolicy(%d)", int(w))
	}
}

// Config parameterizes one simulation run (one protocol round).
type Config struct {
	// Bandwidth is B, the number of wavelengths per band. Required >= 1.
	Bandwidth int
	// Rule is the contention-resolution rule of all couplers.
	Rule optical.Rule
	// Tie is the serve-first policy for simultaneous arrivals on a free
	// wavelength (default TieEliminateAll).
	Tie optical.TiePolicy
	// Wreckage selects the Drain (default) or Vanish policy.
	Wreckage WreckagePolicy
	// AckLength is the flit length of acknowledgement worms. 0 selects
	// oracle acknowledgements: sources learn success instantly and
	// without contention.
	AckLength int
	// Conversion enables wavelength conversion (the paper's Section 4
	// extension and the model of Cypher et al. [11]): when non-nil, a
	// worm whose head would lose a conflict entering a link may shift to
	// a free wavelength, provided Conversion(u) is true for the router u
	// the link leaves from. Only arriving heads convert — a preempted
	// incumbent is already mid-link and cannot. The worm keeps the new
	// wavelength from that link onward; its acknowledgement uses the
	// final wavelength. Use FullConversion for conversion everywhere.
	Conversion func(node graph.NodeID) bool
	// RecordCollisions retains a Collision entry for every lost conflict.
	RecordCollisions bool
	// Faults optionally attaches a compiled fault schedule (see
	// internal/faults): link and wavelength outages destroy and then block
	// traffic for their windows, ack-loss faults swallow acknowledgement
	// trains, stuck couplers freeze contention at a node. The schedule
	// must be compiled for this graph and bandwidth. A nil Faults — or a
	// compiled empty plan — keeps the run byte-for-byte identical to the
	// fault-free engine and allocation-free in steady state. Fault
	// timestamps are steps of this run (the protocol core re-anchors
	// plans per round via faults.Plan.Shift).
	Faults *faults.Schedule
	// Probe optionally receives engine events (see internal/telemetry):
	// run boundaries, per-step busy totals, slot claims and releases,
	// cuts, splits, deliveries and ack completions. A nil probe costs one
	// predictable branch per hook site; attaching a probe never changes
	// the simulation result.
	Probe telemetry.Probe
	// ForceFlat selects the legacy flat engine path — a global entrant
	// sort per step and linear conversion scans — instead of the default
	// word-packed path (per-(band,link) bitmask words with batched bucket
	// resolution). The two paths are result- and probe-identical; the
	// flat path exists for debugging and differential testing.
	ForceFlat bool
	// CheckInvariants enables per-step internal consistency checks
	// (occupancy table vs. fragment windows). For tests; slows the run.
	CheckInvariants bool
	// MaxSteps optionally bounds the simulation; 0 derives a safe bound
	// from the input. Exceeding the bound returns an error (a bug guard,
	// not an expected outcome).
	MaxSteps int
}

// Worm is one message to route in this round.
type Worm struct {
	// ID is the caller's identifier, reported back in outcomes and
	// collisions. IDs must be distinct and >= 0.
	ID int
	// Path is the node path; it must have at least one link.
	Path graph.Path
	// Length is L >= 1, the number of flits.
	Length int
	// Delay is the startup delay s >= 0: the head enters the first link
	// at step s.
	Delay int
	// Wavelength in [0, Bandwidth).
	Wavelength int
	// Rank is the priority (higher wins) under the Priority rule.
	Rank int
}

// FullConversion enables wavelength conversion at every router.
func FullConversion(graph.NodeID) bool { return true }

// Band distinguishes the message band from the reserved ack band.
type Band int

const (
	// MessageBand carries the worms.
	MessageBand Band = iota
	// AckBand carries the acknowledgements.
	AckBand
)

// Collision records one lost conflict.
type Collision struct {
	Time       int          // step at which the loser was cut
	Link       graph.LinkID // physical directed link
	Wavelength int
	Band       Band
	Loser      int  // worm ID that was cut
	Blocker    int  // worm ID that prevented it (may also have lost, on ties)
	LoserIsAck bool // the cut train was an acknowledgement
}

// Outcome is the fate of one worm in this round.
type Outcome struct {
	Delivered   bool // all L flits reached the destination
	Acked       bool // the source received the acknowledgement
	DeliveredAt int  // completion step; -1 if not delivered
	AckedAt     int  // ack completion step; -1 if not acked
	// CutLink and CutTime record the first cut of the MESSAGE worm only;
	// -1 if the message was never cut. A delivered worm whose
	// acknowledgement was destroyed keeps CutTime == -1.
	CutLink int // message path link index of the first cut
	CutTime int // step of the first message cut
	// AckCutLink and AckCutTime record the first cut of the worm's
	// acknowledgement train (an index into the REVERSED ack path); -1 if
	// the ack was never cut. A round with Delivered && !Acked &&
	// AckCutTime >= 0 lost the delivery notice to ack-band contention.
	AckCutLink int
	AckCutTime int
}

// Result is the full account of one simulated round.
type Result struct {
	// Outcomes[i] corresponds to worms[i] of the Run call.
	Outcomes []Outcome
	// Collisions in time order (only when RecordCollisions).
	Collisions []Collision
	// CollisionCount counts lost conflicts regardless of recording.
	CollisionCount int
	// FaultKillCount counts trains (messages and acks) destroyed by
	// injected faults. Fault kills are not collisions: they do not count
	// in CollisionCount, appear in Collisions, or set the outcome's
	// CutLink/CutTime, so contention statistics stay comparable between
	// faulty and fault-free runs.
	FaultKillCount int
	// Makespan is the last step at which anything happened.
	Makespan int
	// BusySlotSteps counts occupied (link, wavelength) slots summed over
	// steps across BOTH bands: it is always the documented sum
	// MessageBusySlotSteps + AckBusySlotSteps.
	BusySlotSteps int
	// MessageBusySlotSteps counts occupied message-band slots summed over
	// steps — the numerator of message-band link utilization.
	MessageBusySlotSteps int
	// AckBusySlotSteps counts occupied ack-band slots summed over steps.
	AckBusySlotSteps int
	// DeliveredCount and AckedCount summarize the outcomes.
	DeliveredCount, AckedCount int
}

// Utilization returns MessageBusySlotSteps normalized by the message-band
// capacity links*B*(makespan+1). Acknowledgement traffic occupies the
// reserved second band and is reported by AckUtilization; earlier
// versions mixed it into this numerator, overstating message-band load.
func (r *Result) Utilization(links, bandwidth int) float64 {
	return bandUtilization(r.MessageBusySlotSteps, links, bandwidth, r.Makespan)
}

// AckUtilization returns AckBusySlotSteps normalized by the ack-band
// capacity links*B*(makespan+1).
func (r *Result) AckUtilization(links, bandwidth int) float64 {
	return bandUtilization(r.AckBusySlotSteps, links, bandwidth, r.Makespan)
}

// bandUtilization normalizes one band's busy-slot total by that band's
// capacity links*B*(makespan+1).
func bandUtilization(busy, links, bandwidth, makespan int) float64 {
	if links <= 0 || bandwidth <= 0 || makespan < 0 {
		return 0
	}
	return float64(busy) / (float64(links) * float64(bandwidth) * float64(makespan+1))
}

// Delivered reports whether worm index i was fully delivered.
func (r *Result) Delivered(i int) bool { return r.Outcomes[i].Delivered }

// validator holds the scratch the worm-spec checks need. Pooling one on an
// Engine makes steady-state validation allocation-free: the ID set keeps
// its buckets across clear(), and the per-link stamp array replaces the
// per-worm distinct-link map. The revisit check resolves every path hop to
// its directed link anyway, so check also records the resolved link IDs;
// Engine.Run consumes them via links() instead of resolving the paths a
// second time.
type validator struct {
	ids     []int32 // per-ID generation stamp (dense IDs); overflow in idsBig
	idsBig  map[int]bool
	idGen   int32
	mark    []int32 // per-link generation stamp (int32 halves the footprint)
	gen     int32
	linkBuf []graph.LinkID // resolved links of all worms, concatenated
	off     []int          // off[i]..off[i+1] bounds worm i's links
}

// links returns the resolved directed link IDs of worm i from the last
// successful check call. The slice aliases validator scratch.
func (v *validator) links(i int) []graph.LinkID { return v.linkBuf[v.off[i]:v.off[i+1]] }

func (v *validator) check(g *graph.Graph, worms []Worm, cfg Config) error {
	if cfg.Bandwidth < 1 {
		return fmt.Errorf("sim: bandwidth %d < 1", cfg.Bandwidth)
	}
	if cfg.AckLength < 0 {
		return fmt.Errorf("sim: negative ack length %d", cfg.AckLength)
	}
	// The engine caches slot keys as int32 (train.keys, the optimistic
	// claim slot): bound the whole padded key space accordingly. Any
	// geometry near this limit is unrunnable anyway — the occupant table
	// alone would need tens of gigabytes.
	if shift := uint(bits.Len(uint(cfg.Bandwidth - 1))); uint64(2*g.NumLinks())<<shift > math.MaxInt32 {
		return fmt.Errorf("sim: occupancy key space (%d links, bandwidth %d) exceeds int32",
			g.NumLinks(), cfg.Bandwidth)
	}
	if cfg.Faults != nil && !cfg.Faults.Matches(g.NumLinks(), g.NumNodes(), cfg.Bandwidth) {
		return fmt.Errorf("sim: fault schedule compiled for a different graph or bandwidth")
	}
	v.idGen++
	if v.idGen == 0 { // stamp wrap: invalidate every stale stamp once
		clear(v.ids)
		v.idGen = 1
	}
	if v.idsBig != nil {
		clear(v.idsBig)
	}
	if len(v.mark) < g.NumLinks() {
		v.mark = make([]int32, g.NumLinks())
		v.gen = 0
	}
	v.linkBuf = v.linkBuf[:0]
	v.off = append(v.off[:0], 0)
	for i := range worms {
		w := &worms[i]
		if w.ID < 0 {
			return fmt.Errorf("sim: worm %d has negative ID %d", i, w.ID)
		}
		if v.markID(w.ID) {
			return fmt.Errorf("sim: duplicate worm ID %d", w.ID)
		}
		// One fused pass does the work Path.Validate plus a revisit scan
		// would: node bounds, link resolution, and the distinct-link check
		// (a worm occupies a contiguous run of DISTINCT links, Section 1.1;
		// a path revisiting a directed link would collide with itself,
		// which the model has no physics for). Error texts match what the
		// old wrapped Path.Validate produced.
		p := w.Path
		if len(p) == 0 {
			return fmt.Errorf("sim: worm %d: graph: empty path", w.ID)
		}
		if p[0] < 0 || p[0] >= g.NumNodes() {
			return fmt.Errorf("sim: worm %d: graph: path node %d out of range [0,%d)", w.ID, p[0], g.NumNodes())
		}
		if len(p) == 1 {
			return fmt.Errorf("sim: worm %d has a zero-length path", w.ID)
		}
		v.gen++
		for j := 0; j+1 < len(p); j++ {
			u, x := p[j], p[j+1]
			if x < 0 || x >= g.NumNodes() {
				return fmt.Errorf("sim: worm %d: graph: path node %d out of range [0,%d)", w.ID, x, g.NumNodes())
			}
			id, ok := g.LinkBetween(u, x)
			if !ok {
				return fmt.Errorf("sim: worm %d: graph: path step %d: no link %d->%d", w.ID, j, u, x)
			}
			if v.mark[id] == v.gen {
				return fmt.Errorf("sim: worm %d revisits a directed link", w.ID)
			}
			v.mark[id] = v.gen
			v.linkBuf = append(v.linkBuf, id)
		}
		v.off = append(v.off, len(v.linkBuf))
		if w.Length < 1 {
			return fmt.Errorf("sim: worm %d has length %d < 1", w.ID, w.Length)
		}
		if w.Delay < 0 {
			return fmt.Errorf("sim: worm %d has negative delay %d", w.ID, w.Delay)
		}
		if w.Wavelength < 0 || w.Wavelength >= cfg.Bandwidth {
			return fmt.Errorf("sim: worm %d wavelength %d out of [0,%d)", w.ID, w.Wavelength, cfg.Bandwidth)
		}
	}
	return nil
}

// idStampCap bounds the dense duplicate-ID stamp array; IDs at or above
// it (callers with sparse, huge identifiers) fall back to a map.
const idStampCap = 1 << 20

// markID records worm ID id in the duplicate set and reports whether it
// was already present. Small IDs use a generation-stamped array (no map
// work in steady state); huge IDs use the overflow map.
func (v *validator) markID(id int) (dup bool) {
	if id < idStampCap {
		if id >= len(v.ids) {
			next := make([]int32, id+1)
			copy(next, v.ids)
			v.ids = next
		}
		if v.ids[id] == v.idGen {
			return true
		}
		v.ids[id] = v.idGen
		return false
	}
	if v.idsBig == nil {
		v.idsBig = make(map[int]bool)
	}
	if v.idsBig[id] {
		return true
	}
	v.idsBig[id] = true
	return false
}

// validate checks the configuration and worm specs with one-shot scratch.
func validate(g *graph.Graph, worms []Worm, cfg Config) error {
	var v validator
	return v.check(g, worms, cfg)
}
