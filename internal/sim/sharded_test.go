package sim

import (
	"encoding/json"
	"errors"
	"fmt"
	"testing"

	"repro/internal/faults"
	"repro/internal/graph"
	"repro/internal/optical"
	"repro/internal/rng"
	"repro/internal/telemetry"
	"repro/internal/topology"
)

// blockOwners is the sim-level stand-in for shardsim.PartitionGraph
// (which cannot be imported here without a cycle): contiguous node-ID
// blocks, with link ownership following the From-node rule.
func blockOwners(g *graph.Graph, shards int) []int32 {
	n := g.NumNodes()
	owner := make([]int32, g.NumLinks())
	for id := range owner {
		owner[id] = int32(int(g.Link(id).From) * shards / n)
	}
	return owner
}

// compareCollisionLogs asserts the recorded collision lists are
// element-wise identical (compareResults only checks the count).
func compareCollisionLogs(t *testing.T, label string, fast, ref *Result) {
	t.Helper()
	if len(fast.Collisions) != len(ref.Collisions) {
		t.Fatalf("%s: collision logs %d vs %d entries", label, len(fast.Collisions), len(ref.Collisions))
	}
	for i := range fast.Collisions {
		if fast.Collisions[i] != ref.Collisions[i] {
			t.Fatalf("%s: collision %d: %+v vs %+v", label, i, fast.Collisions[i], ref.Collisions[i])
		}
	}
}

// TestShardedVsEngineMatrix is the migration gate of the lockstep
// sharded runner: for every shard count, tie policy, conversion
// predicate, and ack length on the fast path, a fixed-seed sharded run
// must reproduce the single-engine packed AND flat results byte for
// byte, including the ordered collision log.
func TestShardedVsEngineMatrix(t *testing.T) {
	g := topology.NewTorus(2, 4).Graph()
	shardedEng := NewEngine()
	refEng := NewEngine()
	sparse := func(n graph.NodeID) bool { return n%2 == 0 }
	conversions := []struct {
		name string
		fn   func(graph.NodeID) bool
	}{
		{"none", nil},
		{"full", FullConversion},
		{"sparse", sparse},
	}
	seed := uint64(31000)
	srByShards := map[int]*ShardedRun{}
	for _, shards := range []int{1, 2, 3, 4, 8} {
		srByShards[shards] = &ShardedRun{Shards: shards, LinkOwner: blockOwners(g, shards)}
	}
	for _, shards := range []int{1, 2, 3, 4, 8} {
		sr := srByShards[shards]
		for _, tie := range []optical.TiePolicy{optical.TieEliminateAll, optical.TieArbitraryWinner} {
			for _, conv := range conversions {
				for _, ack := range []int{0, 2} {
					for trial := 0; trial < 2; trial++ {
						seed++
						src := rng.New(seed)
						worms := randomWorms(g, src, 24, 4, 8, 2)
						cfg := Config{
							Bandwidth:        2,
							Rule:             optical.ServeFirst,
							Tie:              tie,
							Wreckage:         Drain,
							Conversion:       conv.fn,
							AckLength:        ack,
							RecordCollisions: true,
							CheckInvariants:  true,
						}
						label := fmt.Sprintf("shards=%d/%v/conv=%s/ack=%d/trial=%d",
							shards, tie, conv.name, ack, trial)
						got, err := shardedEng.RunSharded(g, worms, cfg, sr)
						if err != nil {
							t.Fatalf("%s: sharded: %v", label, err)
						}
						// Results are owned by their engine, so snapshot the
						// sharded outcome before running the references.
						shardedCopy := *got
						shardedCopy.Outcomes = append([]Outcome(nil), got.Outcomes...)
						shardedCopy.Collisions = append([]Collision(nil), got.Collisions...)
						packed, err := refEng.Run(g, worms, cfg)
						if err != nil {
							t.Fatalf("%s: packed: %v", label, err)
						}
						compareResults(t, label+"/vs-packed", &shardedCopy, packed)
						compareCollisionLogs(t, label+"/vs-packed", &shardedCopy, packed)
						cfg.ForceFlat = true
						flat, err := refEng.Run(g, worms, cfg)
						if err != nil {
							t.Fatalf("%s: flat: %v", label, err)
						}
						compareResults(t, label+"/vs-flat", &shardedCopy, flat)
						compareCollisionLogs(t, label+"/vs-flat", &shardedCopy, flat)
					}
				}
			}
		}
	}
}

// TestShardedFaultMatrix drives random fault plans — link and wavelength
// outages, ack losses, stuck couplers — through the sharded runner and
// pins it against the flat single-engine reference, fault kills
// included.
func TestShardedFaultMatrix(t *testing.T) {
	g := topology.NewTorus(2, 4).Graph()
	shardedEng := NewEngine()
	refEng := NewEngine()
	seed := uint64(42100)
	for _, shards := range []int{2, 4, 8} {
		sr := &ShardedRun{Shards: shards, LinkOwner: blockOwners(g, shards)}
		for _, conv := range []func(graph.NodeID) bool{nil, FullConversion} {
			for trial := 0; trial < 4; trial++ {
				seed++
				src := rng.New(seed)
				worms := randomWorms(g, src, 28, 4, 6, 2)
				plan := faults.MustRandom(g, 2, faults.GenConfig{
					Horizon: 20, LinkOutages: 6, WavelengthOutages: 5,
					AckLosses: 3, StuckCouplers: 2,
					MinDuration: 4, MaxDuration: 14,
				}, src.Split())
				cfg := Config{
					Bandwidth:        2,
					Rule:             optical.ServeFirst,
					Wreckage:         Drain,
					Conversion:       conv,
					AckLength:        2,
					RecordCollisions: true,
					CheckInvariants:  true,
					Faults:           plan.MustCompile(g, 2),
				}
				label := fmt.Sprintf("shards=%d/conv=%v/trial=%d", shards, conv != nil, trial)
				got, err := shardedEng.RunSharded(g, worms, cfg, sr)
				if err != nil {
					t.Fatalf("%s: sharded: %v", label, err)
				}
				shardedCopy := *got
				shardedCopy.Outcomes = append([]Outcome(nil), got.Outcomes...)
				shardedCopy.Collisions = append([]Collision(nil), got.Collisions...)
				cfg.ForceFlat = true
				flat, err := refEng.Run(g, worms, cfg)
				if err != nil {
					t.Fatalf("%s: flat: %v", label, err)
				}
				compareResults(t, label, &shardedCopy, flat)
				compareCollisionLogs(t, label, &shardedCopy, flat)
				if shardedCopy.FaultKillCount != flat.FaultKillCount {
					t.Fatalf("%s: FaultKillCount %d (sharded) vs %d (flat)",
						label, shardedCopy.FaultKillCount, flat.FaultKillCount)
				}
			}
		}
	}
}

// TestShardedTelemetryMatchesReference: a sharded run feeding a primary
// collector plus per-shard slot collectors must, after Merge, be
// snapshot-identical to a single-engine run feeding one collector.
func TestShardedTelemetryMatchesReference(t *testing.T) {
	g := topology.NewTorus(2, 4).Graph()
	src := rng.New(5150)
	worms := randomWorms(g, src, 24, 4, 8, 2)
	base := Config{
		Bandwidth: 2, Rule: optical.ServeFirst, Wreckage: Drain,
		AckLength: 2, RecordCollisions: true, CheckInvariants: true,
	}

	refCol := telemetry.NewCollector()
	refCfg := base
	refCfg.Probe = refCol
	if _, err := NewEngine().Run(g, worms, refCfg); err != nil {
		t.Fatal(err)
	}

	const shards = 4
	mainCol := telemetry.NewCollector()
	slotCols := make([]*telemetry.Collector, shards)
	slotProbes := make([]telemetry.Probe, shards)
	for s := range slotCols {
		slotCols[s] = telemetry.NewCollector()
		slotCols[s].Provision(g.NumLinks(), base.Bandwidth)
		slotProbes[s] = slotCols[s]
	}
	sr := &ShardedRun{Shards: shards, LinkOwner: blockOwners(g, shards), SlotProbes: slotProbes}
	shCfg := base
	shCfg.Probe = mainCol
	if _, err := NewEngine().RunSharded(g, worms, shCfg, sr); err != nil {
		t.Fatal(err)
	}
	for _, sc := range slotCols {
		mainCol.Merge(sc)
	}

	want, err := json.Marshal(refCol.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.Marshal(mainCol.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if string(want) != string(got) {
		t.Fatalf("merged sharded telemetry differs from reference:\nref:    %s\nsharded: %s", want, got)
	}
	if sr.BoundaryHandoffs == 0 {
		t.Fatal("expected cross-shard handoffs on a 4-shard torus workload")
	}
	if sr.BoundaryWords == 0 {
		t.Fatal("expected boundary words to be exchanged")
	}
}

// TestShardedBoundaryCountersDeterministic: boundary statistics are part
// of the deterministic contract — two identical runs produce identical
// counts.
func TestShardedBoundaryCountersDeterministic(t *testing.T) {
	g := topology.NewTorus(2, 4).Graph()
	cfg := Config{Bandwidth: 2, Rule: optical.ServeFirst, Wreckage: Drain, AckLength: 1}
	counts := make([][2]uint64, 2)
	for i := range counts {
		src := rng.New(808)
		worms := randomWorms(g, src, 24, 4, 8, 2)
		sr := &ShardedRun{Shards: 4, LinkOwner: blockOwners(g, 4)}
		if _, err := NewEngine().RunSharded(g, worms, cfg, sr); err != nil {
			t.Fatal(err)
		}
		counts[i] = [2]uint64{sr.BoundaryHandoffs, sr.BoundaryWords}
	}
	if counts[0] != counts[1] {
		t.Fatalf("boundary counters not deterministic: %v vs %v", counts[0], counts[1])
	}
	if counts[0][0] == 0 || counts[0][1] == 0 {
		t.Fatalf("expected nonzero boundary traffic, got %v", counts[0])
	}
}

// TestShardedUnsupported pins the fallback contract: configurations
// outside the fast path return ErrShardedUnsupported, and telemetry
// without per-shard probes is rejected.
func TestShardedUnsupported(t *testing.T) {
	g := topology.NewTorus(2, 4).Graph()
	src := rng.New(61)
	worms := randomWorms(g, src, 8, 4, 4, 2)
	sr := &ShardedRun{Shards: 2, LinkOwner: blockOwners(g, 2)}
	eng := NewEngine()

	cfg := Config{Bandwidth: 2, Rule: optical.Priority, Wreckage: Drain}
	if _, err := eng.RunSharded(g, worms, cfg, sr); !errors.Is(err, ErrShardedUnsupported) {
		t.Fatalf("Priority: err = %v, want ErrShardedUnsupported", err)
	}
	cfg = Config{Bandwidth: 2, Rule: optical.ServeFirst, Wreckage: Vanish}
	if _, err := eng.RunSharded(g, worms, cfg, sr); !errors.Is(err, ErrShardedUnsupported) {
		t.Fatalf("Vanish: err = %v, want ErrShardedUnsupported", err)
	}
	cfg = Config{Bandwidth: 2, Rule: optical.ServeFirst, Wreckage: Drain, Probe: telemetry.NewCollector()}
	if _, err := eng.RunSharded(g, worms, cfg, sr); err == nil || errors.Is(err, ErrShardedUnsupported) {
		t.Fatalf("probe without slot probes: err = %v, want a distinct error", err)
	}
	if ShardedSupported(Config{Rule: optical.ServeFirst, Wreckage: Drain}) != true {
		t.Fatal("ServeFirst+Drain must be supported")
	}
	if ShardedSupported(Config{Rule: optical.Priority}) {
		t.Fatal("Priority must not be supported")
	}
}

// TestShardedEngineReuse: a sharded engine reused across runs — and
// across shard counts — stays byte-identical to fresh references.
func TestShardedEngineReuse(t *testing.T) {
	g := topology.NewTorus(2, 4).Graph()
	eng := NewEngine()
	for trial := 0; trial < 6; trial++ {
		shards := []int{1, 2, 4, 8, 2, 4}[trial]
		src := rng.New(uint64(9900 + trial))
		worms := randomWorms(g, src, 20, 4, 8, 2)
		cfg := Config{
			Bandwidth: 2, Rule: optical.ServeFirst, Wreckage: Drain,
			AckLength: 1, RecordCollisions: true, CheckInvariants: true,
		}
		sr := &ShardedRun{Shards: shards, LinkOwner: blockOwners(g, shards)}
		got, err := eng.RunSharded(g, worms, cfg, sr)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		gotCopy := *got
		gotCopy.Outcomes = append([]Outcome(nil), got.Outcomes...)
		gotCopy.Collisions = append([]Collision(nil), got.Collisions...)
		ref, err := Run(g, worms, cfg)
		if err != nil {
			t.Fatalf("trial %d: reference: %v", trial, err)
		}
		compareResults(t, fmt.Sprintf("trial %d (shards=%d)", trial, shards), &gotCopy, ref)
		compareCollisionLogs(t, fmt.Sprintf("trial %d", trial), &gotCopy, ref)
	}
}
