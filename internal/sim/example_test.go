package sim_test

import (
	"fmt"
	"os"

	"repro/internal/graph"
	"repro/internal/optical"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/topology"
)

// A single round on a chain: one worm sails through, a later one is
// eliminated on the shared link under the serve-first rule.
func ExampleRun() {
	g := topology.NewChain(4).Graph()
	worms := []sim.Worm{
		{ID: 0, Path: graph.Path{0, 1, 2, 3}, Length: 2, Delay: 0, Wavelength: 0},
		{ID: 1, Path: graph.Path{0, 1, 2}, Length: 2, Delay: 1, Wavelength: 0},
	}
	res, err := sim.Run(g, worms, sim.Config{
		Bandwidth: 1,
		Rule:      optical.ServeFirst,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("worm 0 delivered:", res.Outcomes[0].Delivered)
	fmt.Println("worm 1 delivered:", res.Outcomes[1].Delivered)
	fmt.Println("worm 1 cut at link:", res.Outcomes[1].CutLink)
	// Output:
	// worm 0 delivered: true
	// worm 1 delivered: false
	// worm 1 cut at link: 0
}

// Trace renders the space-time diagram of a round.
func ExampleTrace() {
	g := topology.NewChain(4).Graph()
	worms := []sim.Worm{
		{ID: 0, Path: graph.Path{0, 1, 2, 3}, Length: 2, Delay: 0, Wavelength: 0},
	}
	_, tl, err := sim.Trace(g, worms, sim.Config{Bandwidth: 1, Rule: optical.ServeFirst})
	if err != nil {
		panic(err)
	}
	tl.Render(os.Stdout, sim.MessageBand)
	// Output:
	// space-time diagram (messages), 4 steps
	//   0->1   w0 |00..|
	//   1->2   w0 |.00.|
	//   2->3   w0 |..00|
}

// RunDynamic drives continuous operation with retries.
func ExampleRunDynamic() {
	g := topology.NewChain(4).Graph()
	reqs := []sim.Request{
		{ID: 0, Path: graph.Path{0, 1, 2, 3}, Length: 2, Arrival: 0},
	}
	res, err := sim.RunDynamic(g, reqs, sim.DynamicConfig{
		Sim: sim.Config{Bandwidth: 1, Rule: optical.ServeFirst},
	}, rng.New(1))
	if err != nil {
		panic(err)
	}
	fmt.Println("delivered:", res.Outcomes[0].Delivered, "attempts:", res.Outcomes[0].Attempts)
	// Output: delivered: true attempts: 1
}
